package gdsiiguard

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFlowParamsToCore(t *testing.T) {
	const k = 10
	cp, err := (*FlowParams)(nil).toCore(k)
	if err != nil {
		t.Fatalf("nil params: %v", err)
	}
	if cp.Op != "CS" || len(cp.ScaleM) != k {
		t.Errorf("nil params gave Op %q, %d scales", cp.Op, len(cp.ScaleM))
	}

	if _, err := (&FlowParams{Op: "GA"}).toCore(k); err == nil ||
		!strings.Contains(err.Error(), "unknown operator") {
		t.Errorf("unknown operator error = %v, want 'unknown operator'", err)
	}

	cp, err = (&FlowParams{Op: LocalDensityAdjust, LDAGridN: 16, LDAIters: 3}).toCore(k)
	if err != nil {
		t.Fatalf("LDA params: %v", err)
	}
	if string(cp.Op) != "LDA" || cp.LDAGridN != 16 || cp.LDAIters != 3 {
		t.Errorf("LDA overrides lost: %+v", cp)
	}

	if _, err := (&FlowParams{Op: LocalDensityAdjust, LDAGridN: 7}).toCore(k); err == nil {
		t.Error("inadmissible LDA grid accepted")
	}
}

// hardenedDEF produces a valid hardened DEF through the public API once
// per test run.
func hardenedDEF(t *testing.T) string {
	t.Helper()
	d, err := LoadBenchmark("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Harden(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteDEF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestLoadDEFErrorPaths(t *testing.T) {
	def := hardenedDEF(t)

	if _, err := LoadDEF(strings.NewReader(def), 0, nil); err == nil ||
		!strings.Contains(err.Error(), "clock period") {
		t.Errorf("zero clock error = %v, want 'clock period'", err)
	}
	if _, err := LoadDEF(strings.NewReader(def), -100, nil); err == nil {
		t.Error("negative clock accepted")
	}
	if _, err := LoadDEF(strings.NewReader(def), 2000, []string{"no_such_instance"}); err == nil ||
		!strings.Contains(err.Error(), "unknown asset") {
		t.Errorf("unknown asset error = %v, want 'unknown asset'", err)
	}
	if _, err := LoadDEF(strings.NewReader("THIS IS NOT A DEF FILE"), 2000, nil); err == nil {
		t.Error("malformed DEF accepted")
	}
	if _, err := LoadDEF(strings.NewReader(""), 2000, nil); err == nil {
		t.Error("empty DEF accepted")
	}
}

// defAssets extracts the key-register asset instance names from a DEF
// COMPONENTS section (criticality is not part of DEF, so a re-import must
// re-declare the assets).
func defAssets(def string) []string {
	var assets []string
	inComponents := false
	for _, line := range strings.Split(def, "\n") {
		fields := strings.Fields(line)
		switch {
		case len(fields) > 0 && fields[0] == "COMPONENTS":
			inComponents = true
		case len(fields) >= 2 && fields[0] == "END" && fields[1] == "COMPONENTS":
			inComponents = false
		case inComponents && len(fields) >= 2 && fields[0] == "-" && strings.HasPrefix(fields[1], "key_reg_"):
			assets = append(assets, fields[1])
		}
	}
	return assets
}

func TestDEFRoundTripMetricsSane(t *testing.T) {
	def := hardenedDEF(t)
	assets := defAssets(def)
	if len(assets) == 0 {
		t.Fatal("no key_reg_ components in exported DEF")
	}
	d, err := LoadDEF(strings.NewReader(def), 2000, assets)
	if err != nil {
		t.Fatalf("LoadDEF: %v", err)
	}
	if d.Name() != "PRESENT" {
		t.Errorf("round-tripped name = %q", d.Name())
	}
	if d.Assets() != len(assets) {
		t.Errorf("assets = %d, want %d", d.Assets(), len(assets))
	}
	m := d.Baseline()
	if m.Security != 1.0 {
		t.Errorf("re-imported baseline security = %g, want 1.0 by definition", m.Security)
	}
	if m.ERSites <= 0 || m.ERTracks <= 0 {
		t.Errorf("implausible exploitable regions: %d sites, %g tracks", m.ERSites, m.ERTracks)
	}
	if m.PowerMW <= 0 {
		t.Errorf("power = %g mW, want > 0", m.PowerMW)
	}
	if math.IsNaN(m.TNS) || math.IsNaN(m.WNS) || m.TNS > 0 {
		t.Errorf("timing insane: TNS %g, WNS %g", m.TNS, m.WNS)
	}
	if m.DRC < 0 {
		t.Errorf("DRC = %d", m.DRC)
	}
	// The re-imported design is itself hardenable.
	h2, err := d.Harden(nil)
	if err != nil {
		t.Fatalf("Harden after round trip: %v", err)
	}
	if h2.Metrics.Security >= 1.0 {
		t.Errorf("round-tripped harden security = %g, want < 1", h2.Metrics.Security)
	}
}
