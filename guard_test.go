package gdsiiguard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestBenchmarksListed(t *testing.T) {
	names := Benchmarks()
	if len(names) != 12 {
		t.Fatalf("benchmarks = %d, want 12", len(names))
	}
	want := map[string]bool{"AES_1": true, "openMSP430_2": true, "TDEA": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing designs: %v", want)
	}
}

func TestLoadBenchmarkAndHarden(t *testing.T) {
	d, err := LoadBenchmark("PRESENT")
	if err != nil {
		t.Fatalf("LoadBenchmark: %v", err)
	}
	if d.Name() != "PRESENT" {
		t.Errorf("Name = %q", d.Name())
	}
	base := d.Baseline()
	if base.Security != 1.0 {
		t.Errorf("baseline security = %g", base.Security)
	}
	if base.ERSites == 0 {
		t.Fatal("baseline has no exploitable sites")
	}
	if d.Assets() == 0 {
		t.Fatal("no assets")
	}
	h, err := d.Harden(nil)
	if err != nil {
		t.Fatalf("Harden: %v", err)
	}
	if h.Metrics.Security >= 1.0 {
		t.Errorf("hardened security = %g, want < 1", h.Metrics.Security)
	}
}

func TestHardenRejectsBadParams(t *testing.T) {
	d, err := LoadBenchmark("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Harden(&FlowParams{ScaleM: []float64{1.0}}); err == nil {
		t.Error("short ScaleM accepted")
	}
	if _, err := d.Harden(&FlowParams{Op: "BOGUS"}); err == nil {
		t.Error("bogus op accepted")
	}
}

func TestLoadUnknownBenchmark(t *testing.T) {
	if _, err := LoadBenchmark("DES_IMAGINARY"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestExportRoundTrip(t *testing.T) {
	d, err := LoadBenchmark("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Harden(nil)
	if err != nil {
		t.Fatal(err)
	}
	var defBuf, gdsBuf bytes.Buffer
	if err := h.WriteDEF(&defBuf); err != nil {
		t.Fatalf("WriteDEF: %v", err)
	}
	if !strings.Contains(defBuf.String(), "DESIGN PRESENT ;") {
		t.Error("DEF lacks design header")
	}
	if err := h.WriteGDSII(&gdsBuf); err != nil {
		t.Fatalf("WriteGDSII: %v", err)
	}
	if gdsBuf.Len() < 100 {
		t.Errorf("GDSII implausibly small: %d bytes", gdsBuf.Len())
	}
	// Re-import the DEF through the public API.
	d2, err := LoadDEF(&defBuf, 2000, nil)
	if err != nil {
		t.Fatalf("LoadDEF: %v", err)
	}
	if d2.Name() != "PRESENT" {
		t.Errorf("re-imported name = %q", d2.Name())
	}
}

func TestExploreSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is slow")
	}
	d, err := LoadBenchmark("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := d.Explore(ExploreOptions{PopSize: 6, Generations: 2, Seed: 3})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if ex.Evaluations == 0 || len(ex.Front) == 0 {
		t.Fatalf("exploration empty: %d evals, %d front", ex.Evaluations, len(ex.Front))
	}
	if ex.Knee < 0 || ex.Knee >= len(ex.Front) {
		t.Errorf("knee index %d out of front range %d", ex.Knee, len(ex.Front))
	}
	for i := 1; i < len(ex.Front); i++ {
		if ex.Front[i].Metrics.Security < ex.Front[i-1].Metrics.Security {
			t.Error("front not sorted by security")
		}
	}
}

func ExampleBenchmarks() {
	names := Benchmarks()
	fmt.Println(len(names), names[0])
	// Output: 12 AES_1
}
