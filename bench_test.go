package gdsiiguard

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index). These
// regenerate the published results in this repository's simulated
// substrate; bench output reports the headline numbers as custom metrics.
//
// The suite-level benchmarks are heavy (each iteration runs placements,
// routing, STA and a GA exploration); `go test -bench=. -benchtime=1x`
// runs each once.

import (
	"testing"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/experiments"
	"gdsiiguard/internal/opencell45"
)

// benchOptions returns a reduced-budget configuration for benchmarking.
func benchOptions(designs ...string) experiments.Options {
	return experiments.Options{
		Designs: designs,
		Quick:   true,
		Seed:    1,
	}
}

// BenchmarkTable1ParamSpace regenerates Table I: the flow parameter space
// enumeration and its size (≈945k for K = 10).
func BenchmarkTable1ParamSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.SpaceSize(opencell45.NumLayers) != 944784 {
			b.Fatal("parameter space size mismatch")
		}
		_ = experiments.Table1Report(opencell45.NumLayers)
	}
	b.ReportMetric(float64(core.SpaceSize(opencell45.NumLayers)), "configs")
}

// BenchmarkFig4SecurityComparison regenerates Fig. 4 on a representative
// subset: normalized free sites/tracks for ICAS, BISA, Ba et al. and
// GDSII-Guard. The headline metric is GDSII-Guard's average remaining free
// sites (paper: 1.3%).
func BenchmarkFig4SecurityComparison(b *testing.B) {
	opt := benchOptions("AES_1", "Camellia", "SEED", "PRESENT")
	var remaining float64
	for i := 0; i < b.N; i++ {
		suite, err := experiments.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		remaining = suite.Averages()[experiments.RowGuard][0]
	}
	b.ReportMetric(100*remaining, "%free-sites-left")
}

// BenchmarkTable2Overheads regenerates Table II on a representative subset:
// TNS/power/DRC for every defense row. Reported metrics: GDSII-Guard's
// power overhead over baseline.
func BenchmarkTable2Overheads(b *testing.B) {
	opt := benchOptions("AES_1", "PRESENT", "SEED")
	var pwrOverhead float64
	for i := 0; i < b.N; i++ {
		suite, err := experiments.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = suite.Table2Report()
		var sum float64
		var n int
		for _, d := range suite.Results {
			o, g := d.Metrics[experiments.RowOriginal], d.Metrics[experiments.RowGuard]
			if o.PowerMW > 0 {
				sum += g.PowerMW/o.PowerMW - 1
				n++
			}
		}
		if n > 0 {
			pwrOverhead = sum / float64(n)
		}
	}
	b.ReportMetric(100*pwrOverhead, "%pwr-overhead")
}

// BenchmarkFig5ParetoFronts regenerates one of the paper's four Fig. 5
// Pareto-front explorations (openMSP430_2; the full set runs in
// cmd/paperbench).
func BenchmarkFig5ParetoFronts(b *testing.B) {
	opt := benchOptions()
	var frontLen int
	for i := 0; i < b.N; i++ {
		pd, err := experiments.RunPareto("openMSP430_2", opt)
		if err != nil {
			b.Fatal(err)
		}
		frontLen = len(pd.Front)
	}
	b.ReportMetric(float64(frontLen), "front-points")
}

// BenchmarkRuntimeComparison regenerates §IV-D: defense runtimes on AES_2,
// the largest design. The paper's ordering (GDSII-Guard fastest among the
// full-strength defenses at 4.8h vs ICAS's 9.4h) maps here to measured
// wall time.
func BenchmarkRuntimeComparison(b *testing.B) {
	opt := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rc, err := experiments.RunRuntimeComparison("AES_2", opt)
		if err != nil {
			b.Fatal(err)
		}
		g := rc.Measured[experiments.RowGuard].Seconds()
		if g > 0 {
			ratio = rc.Measured[experiments.RowICAS].Seconds() / g
		}
	}
	b.ReportMetric(ratio, "icas/guard-time")
}

// BenchmarkAblationOperators regenerates A1: Cell Shift vs Local Density
// Adjustment on a loose- and a tight-timing design.
func BenchmarkAblationOperators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"Camellia", "SEED"} {
			if _, err := experiments.RunOperatorAblation(name, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationRWS regenerates A2: the Routing Width Scaling effect on
// free routing tracks.
func BenchmarkAblationRWS(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunRWSAblation("Camellia", 1)
		if err != nil {
			b.Fatal(err)
		}
		if r.Unscaled.ERTracks > 0 {
			reduction = 1 - r.Scaled.ERTracks/r.Unscaled.ERTracks
		}
	}
	b.ReportMetric(100*reduction, "%track-reduction")
}

// BenchmarkAblationNSGA2 regenerates A3: NSGA-II vs random search at equal
// evaluation budget.
func BenchmarkAblationNSGA2(b *testing.B) {
	opt := benchOptions()
	opt.GAPop, opt.GAGens = 6, 3
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSearchAblation("PRESENT", opt)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.RandomBest - r.NSGA2Best
	}
	b.ReportMetric(gap, "security-gap-vs-random")
}

// BenchmarkHardenPRESENT measures one end-to-end flow application on the
// smallest design — the library's unit of work.
func BenchmarkHardenPRESENT(b *testing.B) {
	d, err := LoadBenchmark("PRESENT")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Harden(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDicing regenerates A4: the dicing stage's contribution
// to Cell Shift (DESIGN.md §6.2).
func BenchmarkAblationDicing(b *testing.B) {
	var withoutDice, withDice int
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunDiceAblation("Camellia", 1)
		if err != nil {
			b.Fatal(err)
		}
		withoutDice, withDice = r.WithoutDice, r.WithDice
	}
	b.ReportMetric(float64(withoutDice), "ER-passes-only")
	b.ReportMetric(float64(withDice), "ER-with-dicing")
}
