// Package gdsiiguard is the public API of the GDSII-Guard reproduction: an
// ECO (Engineering Change Order) anti-Trojan layout-hardening flow with
// exploratory timing-security trade-offs, after Wei, Zhang and Luo
// (DAC 2023).
//
// The package wraps the internal physical-design substrate (placement,
// routing, STA, power, DRC, GDSII I/O) behind three operations:
//
//   - LoadBenchmark builds one of the twelve built-in evaluation designs,
//     places it, and evaluates its baseline metrics;
//   - Design.Harden applies one flow configuration (Cell Shift or Local
//     Density Adjustment plus Routing Width Scaling) and returns the
//     hardened layout with its security/timing/power/DRC metrics;
//   - Design.Explore runs the NSGA-II multi-objective optimizer over the
//     flow parameter space and returns the explored security-timing
//     Pareto front.
//
// Hardened layouts can be exported as DEF or binary GDSII.
package gdsiiguard

import (
	"context"
	"fmt"
	"io"
	"time"

	"gdsiiguard/internal/attack"
	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/experiments"
	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/sdc"
)

// Metrics reports the post-design evaluation of a layout (§II-C of the
// paper): the normalized security score, its raw components, timing, power
// and design-rule violations.
type Metrics struct {
	// Security is α·ERsites/base + (1−α)·ERtracks/base; the baseline
	// scores 1.0 and lower is more secure.
	Security float64
	// ERSites is the total free placement sites of all exploitable
	// regions; ERTracks the unused routing tracks over them.
	ERSites  int
	ERTracks float64
	// TNS and WNS are total/worst negative slack in picoseconds.
	TNS, WNS float64
	// PowerMW is total power in milliwatts.
	PowerMW float64
	// DRC is the design-rule violation count.
	DRC int
	// Runtime is the wall time of the producing step.
	Runtime time.Duration
}

func fromCore(m core.Metrics) Metrics {
	return Metrics{
		Security: m.Security,
		ERSites:  m.ERSites,
		ERTracks: m.ERTracks,
		TNS:      m.TNS,
		WNS:      m.WNS,
		PowerMW:  m.PowerMW,
		DRC:      m.DRC,
		Runtime:  m.Runtime,
	}
}

// Operator selects the anti-Trojan ECO placement operator.
type Operator string

// The two operators of §III-B.
const (
	CellShift          Operator = "CS"
	LocalDensityAdjust Operator = "LDA"
)

// FlowParams is one point of the flow parameter space (Table I).
type FlowParams struct {
	Op Operator
	// LDAGridN ∈ {2,4,8,16,32} and LDAIters ∈ {1,2,3} configure LDA.
	LDAGridN, LDAIters int
	// ScaleM holds the per-metal routing width scale factors, each in
	// {1.0, 1.2, 1.5}; nil means 1.0 everywhere.
	ScaleM []float64
}

func (p *FlowParams) toCore(k int) (core.Params, error) {
	out := core.DefaultParams(k)
	if p == nil {
		return out, nil
	}
	if p.Op != "" {
		if p.Op != CellShift && p.Op != LocalDensityAdjust {
			return out, fmt.Errorf("gdsiiguard: unknown operator %q (want %q or %q)",
				p.Op, CellShift, LocalDensityAdjust)
		}
		out.Op = core.Operator(p.Op)
	}
	if p.LDAGridN != 0 {
		out.LDAGridN = p.LDAGridN
	}
	if p.LDAIters != 0 {
		out.LDAIters = p.LDAIters
	}
	if p.ScaleM != nil {
		if len(p.ScaleM) != k {
			return out, fmt.Errorf("gdsiiguard: ScaleM needs %d entries, got %d", k, len(p.ScaleM))
		}
		copy(out.ScaleM, p.ScaleM)
	}
	return out, out.Validate(k)
}

// ErrorClass reports how a flow failure is classified: "transient"
// failures are safe to retry, "permanent" ones are deterministic for the
// input, "panic" marks a panic contained inside a flow stage, and
// "canceled" marks context cancellation or deadline expiry. It returns ""
// for nil. Callers can use it to decide between retrying a Harden/Explore
// call and giving up.
func ErrorClass(err error) string { return string(core.Classify(err)) }

// IsTransient reports whether err classifies as a transient failure, i.e.
// retrying the same call can succeed.
func IsTransient(err error) bool { return core.IsTransient(err) }

// Design is a placed, constrained benchmark design with its evaluated
// baseline.
type Design struct {
	name string
	base *core.Baseline
}

// Benchmarks lists the built-in benchmark design names (the paper's
// twelve-design evaluation suite).
func Benchmarks() []string { return benchdesigns.Names() }

// LoadBenchmark builds and evaluates a built-in benchmark design.
func LoadBenchmark(name string) (*Design, error) {
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons,
		Activity:    d.Spec.Activity,
		Seed:        1,
	})
	if err != nil {
		return nil, err
	}
	return &Design{name: name, base: base}, nil
}

// LoadDEF reads a placed DEF layout over the embedded 45nm library and
// evaluates it with the given clock period; assets names the
// security-critical instances.
func LoadDEF(r io.Reader, clockPS float64, assets []string) (*Design, error) {
	l, err := layout.ReadDEF(r, opencell45.MustLoad())
	if err != nil {
		return nil, err
	}
	if len(assets) > 0 {
		if _, err := l.Netlist.MarkCritical(assets); err != nil {
			return nil, err
		}
	}
	if clockPS <= 0 {
		return nil, fmt.Errorf("gdsiiguard: clock period must be positive")
	}
	cons := &sdc.Constraints{Clocks: []sdc.Clock{{Name: "clk", Port: "clk", PeriodPS: clockPS}}}
	base, err := core.EvalBaseline(l, core.FlowConfig{Constraints: cons, Seed: 1})
	if err != nil {
		return nil, err
	}
	return &Design{name: l.Netlist.Name, base: base}, nil
}

// Name returns the design name.
func (d *Design) Name() string { return d.name }

// Baseline returns the unhardened design's metrics (Security is 1.0 by
// definition).
func (d *Design) Baseline() Metrics { return fromCore(d.base.Metrics) }

// Assets returns the number of security-critical instances.
func (d *Design) Assets() int { return len(d.base.Layout.Netlist.CriticalInsts()) }

// Hardened is the outcome of one flow application.
type Hardened struct {
	Metrics Metrics
	result  *core.Result
}

// Harden applies one flow configuration (nil: the default Cell Shift flow
// with unscaled routing) and returns the hardened layout.
func (d *Design) Harden(p *FlowParams) (*Hardened, error) {
	return d.HardenCtx(context.Background(), p)
}

// HardenCtx is Harden with cooperative cancellation: the flow observes ctx
// between its stages and returns ctx.Err() promptly once ctx is cancelled
// or its deadline passes. A Design is safe for concurrent HardenCtx calls;
// the baseline is never modified.
func (d *Design) HardenCtx(ctx context.Context, p *FlowParams) (*Hardened, error) {
	cp, err := p.toCore(d.base.Layout.Lib().NumLayers())
	if err != nil {
		return nil, err
	}
	res, err := core.RunCtx(ctx, d.base, cp)
	if err != nil {
		return nil, err
	}
	return &Hardened{Metrics: fromCore(res.Metrics), result: res}, nil
}

// WriteDEF exports the hardened layout as DEF.
func (h *Hardened) WriteDEF(w io.Writer) error {
	return layout.WriteDEF(w, h.result.Layout)
}

// WriteGDSII exports the hardened layout (cells and routed wires) as a
// binary GDSII stream. The export streams record by record — the library
// is never materialized — so it holds at SoC scale in O(record) memory.
func (h *Hardened) WriteGDSII(w io.Writer) error {
	return gdsii.StreamLayout(w, h.result.Layout, h.result.Routes.WireSource(h.result.Layout))
}

// ExploreOptions sizes the NSGA-II exploration.
type ExploreOptions struct {
	// PopSize and Generations default to 16 and 8.
	PopSize, Generations int
	// Parallelism bounds concurrent flow evaluations (default NumCPU).
	Parallelism int
	// Seed drives all stochastic choices (default 1).
	Seed int64
	// Islands partitions the population into that many island-model
	// sub-populations with periodic elite migration. Only the
	// cluster-enabled guardd service honors it (default: the cluster's
	// configured island count); single-process Explore ignores it.
	Islands int
	// MigrationInterval is how many generations an island runs between
	// elite migrations; MigrationCount how many elites migrate each time.
	// Cluster mode only, defaults come from the cluster configuration.
	MigrationInterval, MigrationCount int
	// Checkpoint, when set, receives an opaque serialized snapshot of the
	// optimizer state after every completed generation; persisting the
	// latest blob makes the exploration resumable after a crash. The hook
	// runs synchronously on the optimizer goroutine; an error aborts the
	// exploration. Never serialized with the options.
	Checkpoint func(state []byte) error `json:"-"`
	// Resume, when non-empty, is a blob from a previous run's Checkpoint
	// hook; the exploration continues that run's trajectory instead of
	// starting over, and produces the exact front the uninterrupted run
	// would have. PopSize, Seed and the design must match the original
	// run. Never serialized with the options.
	Resume []byte `json:"-"`
}

// ParetoPoint is one solution of the explored front.
type ParetoPoint struct {
	Params  FlowParams
	Metrics Metrics
}

// IslandDegradation records the loss of one island during a distributed
// exploration: which island died, on which node, in which migration epoch,
// and the typed stage/class taxonomy of the failure (see ErrorClass).
type IslandDegradation struct {
	Island int
	Node   string
	Epoch  int
	Stage  string
	Class  string
	Err    string
}

// DeltaStats reports what the exploration's cross-chromosome delta
// evaluation reused versus recomputed: child chromosomes are evaluated
// relative to previously evaluated relatives (shared operator placements,
// warm-started routes) rather than from the baseline, with bit-identical
// results. All counters are totals across the exploration's evaluations.
type DeltaStats struct {
	// OpRuns counts ECO operator computations with no reuse; OpMemoHits
	// placements replayed from the shared memo; OpArenaHits evaluations
	// whose arena already held the placement; OpIterSteps LDA iterations
	// run on top of a reused prefix.
	OpRuns      int `json:"op_runs"`
	OpMemoHits  int `json:"op_memo_hits"`
	OpArenaHits int `json:"op_arena_hits"`
	OpIterSteps int `json:"op_iter_steps"`
	// RoutesWarm / RoutesCold count route stages warm-started from a donor
	// route versus routed cold; NetsReplayed / NetsRerouted the per-net
	// outcomes across all route stages.
	RoutesWarm   int `json:"routes_warm"`
	RoutesCold   int `json:"routes_cold"`
	NetsReplayed int `json:"nets_replayed"`
	NetsRerouted int `json:"nets_rerouted"`
	// StaFull / StaDelta count timing stages analyzed over the whole graph
	// versus delta-analyzed over changed-net cones; StaConeInsts /
	// StaConeNets total the cone sizes (combinational instances
	// re-evaluated, net required times recomputed) across the delta runs.
	StaFull      int `json:"sta_full"`
	StaDelta     int `json:"sta_delta"`
	StaConeInsts int `json:"sta_cone_insts"`
	StaConeNets  int `json:"sta_cone_nets"`
}

func deltaFromCore(d core.DeltaStats) DeltaStats {
	return DeltaStats{
		OpRuns:       d.OpRuns,
		OpMemoHits:   d.OpMemoHits,
		OpArenaHits:  d.OpArenaHits,
		OpIterSteps:  d.OpIterSteps,
		RoutesWarm:   d.RoutesWarm,
		RoutesCold:   d.RoutesCold,
		NetsReplayed: d.NetsReplayed,
		NetsRerouted: d.NetsRerouted,
		StaFull:      d.StaFull,
		StaDelta:     d.StaDelta,
		StaConeInsts: d.StaConeInsts,
		StaConeNets:  d.StaConeNets,
	}
}

// Exploration is the result of a Design.Explore run.
type Exploration struct {
	// Front is the feasible Pareto front, sorted by ascending security.
	Front []ParetoPoint
	// Evaluations counts distinct evaluated configurations.
	Evaluations int
	// Knee indexes the knee-point solution in Front (-1 if empty).
	Knee int
	// Failures counts evaluations that failed after retries and were
	// degraded to infeasible points instead of aborting the exploration.
	Failures int
	// Islands and Migrations describe a distributed island-model run: the
	// island count and the number of elite chromosomes migrated between
	// islands. Both are zero for single-process explorations.
	Islands    int
	Migrations int
	// Degraded lists islands lost mid-run; their contributions up to the
	// failing epoch are still merged into Front.
	Degraded []IslandDegradation
	// Delta reports cross-chromosome evaluation reuse (see DeltaStats).
	Delta DeltaStats
}

// Explore runs the multi-objective flow-parameter exploration (§III-D).
func (d *Design) Explore(opt ExploreOptions) (*Exploration, error) {
	return d.ExploreCtx(context.Background(), opt)
}

// ExploreCtx is Explore with cooperative cancellation: the optimizer and
// its evaluation workers observe ctx, so a cancelled exploration stops
// within roughly one flow evaluation's latency.
func (d *Design) ExploreCtx(ctx context.Context, opt ExploreOptions) (*Exploration, error) {
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	nopt := nsga2.Options{
		PopSize:     opt.PopSize,
		Generations: opt.Generations,
		Parallelism: opt.Parallelism,
		Seed:        seed,
	}
	if hook := opt.Checkpoint; hook != nil {
		nopt.Checkpoint = func(cp *nsga2.Checkpoint) error {
			blob, err := cp.Marshal()
			if err != nil {
				return err
			}
			return hook(blob)
		}
	}
	if len(opt.Resume) > 0 {
		cp, err := nsga2.UnmarshalCheckpoint(opt.Resume)
		if err != nil {
			return nil, err
		}
		nopt.Resume = cp
	}
	log, err := nsga2.OptimizeCtx(ctx, d.base, nopt)
	if err != nil {
		return nil, err
	}
	out := &Exploration{
		Evaluations: len(log.Evaluations),
		Knee:        -1,
		Failures:    len(log.Failures),
		Delta:       deltaFromCore(log.Delta),
	}
	for _, in := range log.Front {
		out.Front = append(out.Front, ParetoPoint{
			Params: FlowParams{
				Op:       Operator(in.Params.Op),
				LDAGridN: in.Params.LDAGridN,
				LDAIters: in.Params.LDAIters,
				ScaleM:   append([]float64(nil), in.Params.ScaleM...),
			},
			Metrics: fromCore(in.Metrics),
		})
	}
	if knee := experiments.SelectKnee(log.Front); knee != nil {
		for i, in := range log.Front {
			if in.Params.Key() == knee.Params.Key() {
				out.Knee = i
				break
			}
		}
	}
	return out, nil
}

// AttackResult summarizes a simulated fabrication-time Trojan insertion
// attempt (the paper's threat model run from the adversary's side).
type AttackResult struct {
	// Inserted reports whether the attacker found a viable implant site
	// and victim; Reason explains a failure.
	Inserted bool
	Reason   string
	// Victim is the tapped security-critical instance (when inserted).
	Victim string
	// TapDistUM is the tap routing distance in µm; SlackAfterPS the
	// victim's remaining slack with the implant charged.
	TapDistUM    float64
	SlackAfterPS float64
}

func fromAttack(r *attack.Result) *AttackResult {
	return &AttackResult{
		Inserted:     r.Inserted,
		Reason:       r.Reason,
		Victim:       r.Victim,
		TapDistUM:    r.TapDistUM,
		SlackAfterPS: r.SlackAfterPS,
	}
}

// SimulateAttack attempts an A2-style Trojan insertion on the unhardened
// baseline layout.
func (d *Design) SimulateAttack() (*AttackResult, error) {
	res, err := attack.Attempt(d.base.Layout, d.base.Routes, d.base.Timing,
		attack.DefaultTrojan(), d.base.Config.Security)
	if err != nil {
		return nil, err
	}
	return fromAttack(res), nil
}

// SimulateAttack attempts an A2-style Trojan insertion on the hardened
// layout, using the same security parameters the design was evaluated
// under (so baseline and hardened attack simulations are comparable).
func (h *Hardened) SimulateAttack() (*AttackResult, error) {
	res, err := attack.Attempt(h.result.Layout, h.result.Routes, h.result.Timing,
		attack.DefaultTrojan(), h.result.Config.Security)
	if err != nil {
		return nil, err
	}
	return fromAttack(res), nil
}
