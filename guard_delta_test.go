package gdsiiguard

import (
	"testing"

	"gdsiiguard/internal/nsga2"
)

// TestBenchmarkFrontUnchangedByDelta is the golden-front gate on real seed
// designs: exploring a built-in benchmark with cross-chromosome delta
// evaluation (the default) must produce exactly the Pareto front that
// from-scratch evaluation produces — same chromosomes, same metrics — while
// actually reusing work. This is the end-to-end complement to the
// synthetic-design equivalence tests in internal/core and internal/nsga2.
func TestBenchmarkFrontUnchangedByDelta(t *testing.T) {
	designs := []string{"PRESENT"}
	if !testing.Short() {
		designs = append(designs, "openMSP430_1")
	}
	for _, name := range designs {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := LoadBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := nsga2.Options{PopSize: 8, Generations: 3, Seed: 1}
			plainOpt := opt
			plainOpt.DisableDelta = true

			delta, err := nsga2.Optimize(d.base, opt)
			if err != nil {
				t.Fatalf("delta Optimize: %v", err)
			}
			plain, err := nsga2.Optimize(d.base, plainOpt)
			if err != nil {
				t.Fatalf("plain Optimize: %v", err)
			}

			if len(delta.Evaluations) != len(plain.Evaluations) {
				t.Fatalf("evaluation counts differ: %d != %d", len(delta.Evaluations), len(plain.Evaluations))
			}
			if len(delta.Front) != len(plain.Front) {
				t.Fatalf("front sizes differ: %d != %d", len(delta.Front), len(plain.Front))
			}
			for i := range plain.Front {
				g, w := delta.Front[i], plain.Front[i]
				if g.Params.Key() != w.Params.Key() {
					t.Errorf("front[%d]: params %s != %s", i, g.Params.Key(), w.Params.Key())
				}
				gm, wm := g.Metrics, w.Metrics
				gm.Runtime, wm.Runtime = 0, 0
				if gm != wm {
					t.Errorf("front[%d] (%s): metrics %+v != %+v", i, g.Params.Key(), gm, wm)
				}
			}
			st := delta.Delta
			t.Logf("%s delta stats: %+v", name, st)
			if st.OpMemoHits+st.OpArenaHits+st.OpIterSteps == 0 {
				t.Error("exploration exercised no operator reuse")
			}
		})
	}
}
