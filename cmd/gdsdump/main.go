// Command gdsdump inspects a GDSII stream file: library header, structure
// inventory, and element statistics.
//
// Usage:
//
//	gdsdump [-v] file.gds
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"gdsiiguard/internal/gdsii"
)

func main() {
	verbose := flag.Bool("v", false, "list elements per structure")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gdsdump [-v] file.gds")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "gdsdump:", err)
		os.Exit(1)
	}
}

// structCount is one structure's per-kind element tally.
type structCount struct {
	name           string
	nb, np, nr, nt int
}

func run(path string, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// One streaming pass with O(record) memory: the library is never
	// materialized, so SoC-scale files dump without loading.
	var (
		libName  string
		uu, mu   float64
		st       gdsii.Stats
		layers   = map[int16]bool{}
		cur      structCount
		perLines []structCount
	)
	err = gdsii.ReadStream(bufio.NewReader(f), gdsii.StreamHandler{
		OnLibrary: func(name string, userUnit, meterUnit float64) error {
			libName, uu, mu = name, userUnit, meterUnit
			return nil
		},
		OnBeginStruct: func(name string) error {
			st.Structs++
			cur = structCount{name: name}
			return nil
		},
		OnElement: func(e gdsii.Element) error {
			switch el := e.(type) {
			case gdsii.Boundary:
				st.Boundaries++
				cur.nb++
				layers[el.Layer] = true
			case gdsii.Path:
				st.Paths++
				cur.np++
				layers[el.Layer] = true
			case gdsii.SRef:
				st.SRefs++
				cur.nr++
			case gdsii.Text:
				st.Texts++
				cur.nt++
				layers[el.Layer] = true
			}
			return nil
		},
		OnEndStruct: func(string) error {
			if verbose {
				perLines = append(perLines, cur)
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	for ly := range layers {
		st.LayersUsed = append(st.LayersUsed, ly)
	}
	sort.Slice(st.LayersUsed, func(i, j int) bool { return st.LayersUsed[i] < st.LayersUsed[j] })

	fmt.Printf("library   %s\n", libName)
	fmt.Printf("units     user=%g meter=%g\n", uu, mu)
	fmt.Printf("structs   %d\n", st.Structs)
	fmt.Printf("elements  %d boundaries, %d paths, %d srefs, %d texts\n",
		st.Boundaries, st.Paths, st.SRefs, st.Texts)
	fmt.Printf("layers    %v\n", st.LayersUsed)
	for _, s := range perLines {
		fmt.Printf("  %-24s %5d boundaries %5d paths %5d srefs %5d texts\n",
			s.name, s.nb, s.np, s.nr, s.nt)
	}
	return nil
}
