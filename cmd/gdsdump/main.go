// Command gdsdump inspects a GDSII stream file: library header, structure
// inventory, and element statistics.
//
// Usage:
//
//	gdsdump [-v] file.gds
package main

import (
	"flag"
	"fmt"
	"os"

	"gdsiiguard/internal/gdsii"
)

func main() {
	verbose := flag.Bool("v", false, "list elements per structure")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gdsdump [-v] file.gds")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "gdsdump:", err)
		os.Exit(1)
	}
}

func run(path string, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	lib, err := gdsii.Read(f)
	if err != nil {
		return err
	}
	st := lib.Stats()
	fmt.Printf("library   %s\n", lib.Name)
	fmt.Printf("units     user=%g meter=%g\n", lib.UserUnit, lib.MeterUnit)
	fmt.Printf("structs   %d\n", st.Structs)
	fmt.Printf("elements  %d boundaries, %d paths, %d srefs, %d texts\n",
		st.Boundaries, st.Paths, st.SRefs, st.Texts)
	fmt.Printf("layers    %v\n", st.LayersUsed)
	if !verbose {
		return nil
	}
	for _, s := range lib.Structs {
		var nb, np, nr, nt int
		for _, e := range s.Elements {
			switch e.(type) {
			case gdsii.Boundary:
				nb++
			case gdsii.Path:
				np++
			case gdsii.SRef:
				nr++
			case gdsii.Text:
				nt++
			}
		}
		fmt.Printf("  %-24s %5d boundaries %5d paths %5d srefs %5d texts\n",
			s.Name, nb, np, nr, nt)
	}
	return nil
}
