// Command secmetrics evaluates the ISPD-2022-style layout security metrics
// (exploitable regions, free sites, free routing tracks) of a benchmark
// design or a DEF file.
//
// Usage:
//
//	secmetrics -design AES_1 [-thresh 20] [-v]
//	secmetrics -def layout.def -clock-ps 2000 [-assets a,b,c]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/security"
	"gdsiiguard/internal/sta"
)

func main() {
	var (
		design  = flag.String("design", "", "built-in benchmark design name")
		defIn   = flag.String("def", "", "input DEF file")
		clockPS = flag.Float64("clock-ps", 0, "clock period in ps (with -def)")
		assets  = flag.String("assets", "", "comma-separated critical instances (with -def)")
		thresh  = flag.Int("thresh", 20, "Thresh_ER: minimal exploitable-region weight")
		verbose = flag.Bool("v", false, "list every exploitable region")
		seed    = flag.Int64("seed", 1, "router seed")
	)
	flag.Parse()
	if err := run(*design, *defIn, *clockPS, *assets, *thresh, *verbose, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "secmetrics:", err)
		os.Exit(1)
	}
}

func run(design, defIn string, clockPS float64, assets string, thresh int, verbose bool, seed int64) error {
	var (
		l    *layout.Layout
		cons *sdc.Constraints
	)
	switch {
	case design != "":
		d, err := benchdesigns.Build(design)
		if err != nil {
			return err
		}
		l, cons = d.Layout, d.Cons
	case defIn != "":
		f, err := os.Open(defIn)
		if err != nil {
			return err
		}
		defer f.Close()
		l, err = layout.ReadDEF(f, opencell45.MustLoad())
		if err != nil {
			return err
		}
		if assets != "" {
			if _, err := l.Netlist.MarkCritical(strings.Split(assets, ",")); err != nil {
				return err
			}
		}
		if clockPS > 0 {
			cons = &sdc.Constraints{Clocks: []sdc.Clock{{Name: "clk", Port: "clk", PeriodPS: clockPS}}}
		}
	default:
		return fmt.Errorf("one of -design or -def is required")
	}

	routes, err := route.Route(l, route.Options{Seed: seed})
	if err != nil {
		return err
	}
	var timing *sta.Result
	if cons != nil {
		timing, err = sta.Analyze(l, sta.Options{Constraints: cons, Routes: routes})
		if err != nil {
			return err
		}
	}
	p := security.DefaultParams()
	p.ThreshER = thresh
	a, err := security.Assess(l, routes, timing, p)
	if err != nil {
		return err
	}
	fmt.Printf("design           %s\n", l.Netlist.Name)
	fmt.Printf("core             %d rows x %d sites, utilization %.1f%%\n",
		l.NumRows, l.SitesPerRow, 100*l.Utilization())
	fmt.Printf("assets           %d security-critical instances\n", a.Assets)
	fmt.Printf("free sites       %d\n", a.FreeSites)
	fmt.Printf("exploitable      %d sites within exploitable distance\n", a.ExploitableSites)
	fmt.Printf("ER sites         %d in %d regions (Thresh_ER=%d)\n", a.ERSites, len(a.Regions), thresh)
	fmt.Printf("ER tracks        %.0f unused routing tracks over exploitable regions\n", a.ERTracks)
	if timing != nil {
		fmt.Printf("timing           TNS=%.1fps WNS=%.1fps\n", timing.TNS, timing.WNS)
	}
	if verbose {
		regions := append([]security.Region(nil), a.Regions...)
		sort.Slice(regions, func(i, j int) bool { return regions[i].Sites > regions[j].Sites })
		for i, r := range regions {
			fmt.Printf("  region %3d: %5d sites, %d runs\n", i, r.Sites, len(r.Runs))
		}
	}
	return nil
}
