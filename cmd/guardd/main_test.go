package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gdsiiguard/internal/service"
)

func TestMetricsEndpoint(t *testing.T) {
	mgr := service.New(service.Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(newMux(mgr, false, nil, nil))
	defer srv.Close()

	// Run one job so the lifecycle metrics have data.
	job, err := mgr.Submit(service.Spec{Kind: service.KindAttack, Benchmark: "PRESENT", Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := job.Wait(); st != service.StateDone {
		t.Fatalf("job state = %s, err = %v", st, job.Err())
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"gdsiiguard_jobs_submitted_total{kind=\"attack\"} 1",
		"gdsiiguard_jobs_finished_total{kind=\"attack\",state=\"done\"} 1",
		"gdsiiguard_job_queue_wait_seconds_count",
		"gdsiiguard_job_exec_seconds_count{kind=\"attack\"}",
		"gdsiiguard_service_workers_busy_peak",
		"gdsiiguard_design_cache_lookups_total{result=\"miss\"}",
		"gdsiiguard_flow_stage_seconds_bucket",
		"gdsiiguard_route_seconds_count",
		"gdsiiguard_sta_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof stays off unless opted in.
	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}

func TestPprofOptIn(t *testing.T) {
	mgr := service.New(service.Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(newMux(mgr, true, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d with -pprof", resp.StatusCode)
	}
}

func TestSetupLogging(t *testing.T) {
	if err := setupLogging("debug"); err != nil {
		t.Errorf("setupLogging(debug): %v", err)
	}
	if err := setupLogging("nope"); err == nil {
		t.Error("setupLogging accepted a bogus level")
	}
}
