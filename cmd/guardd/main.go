// Command guardd serves the GDSII-Guard hardening flows as a long-running
// HTTP service: clients submit harden/explore/attack jobs against built-in
// benchmarks or uploaded DEF layouts, poll job status, and download the
// hardened DEF/GDSII artifacts.
//
// Usage:
//
//	guardd [-addr :8477] [-workers N] [-queue 64] [-job-timeout 15m]
//	       [-cache 8] [-retention 256] [-pprof] [-log-level info]
//
// Endpoints (JSON unless noted):
//
//	POST   /v1/jobs             submit a job
//	GET    /v1/jobs/{id}        job status + metrics
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/def    hardened DEF (text)
//	GET    /v1/jobs/{id}/gdsii  hardened GDSII (binary)
//	GET    /v1/benchmarks       built-in designs
//	GET    /v1/stats            queue/worker/cache statistics
//	GET    /metrics             Prometheus text-format process metrics
//
// With -pprof, the net/http/pprof profiling handlers are additionally
// served under /debug/pprof/. Structured logs (job lifecycle, optimizer
// generations at -log-level debug) go to stderr in logfmt.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the server stops accepting
// requests, queued and running jobs drain up to -drain-timeout, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdsiiguard/internal/obs"
	"gdsiiguard/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8477", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0: NumCPU)")
		queue        = flag.Int("queue", 64, "submission queue depth")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "default per-job timeout")
		cacheSize    = flag.Int("cache", 8, "design cache capacity")
		retention    = flag.Int("retention", 256, "finished jobs kept in the result store")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown drain budget")
		maxAttempts  = flag.Int("max-attempts", 2, "execution attempts per job (transient failures only)")
		retryBackoff = flag.Duration("retry-backoff", 250*time.Millisecond, "base delay before a transient-failure retry")
		withPprof    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logLevel     = flag.String("log-level", "info", "structured log level (debug, info, warn, error)")
	)
	flag.Parse()
	if err := setupLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "guardd:", err)
		os.Exit(2)
	}
	if err := run(*addr, *withPprof, service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		CacheSize:    *cacheSize,
		Retention:    *retention,
		MaxAttempts:  *maxAttempts,
		RetryBackoff: *retryBackoff,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "guardd:", err)
		os.Exit(1)
	}
}

// setupLogging routes the library's structured logs (discarded by default)
// to stderr at the requested level.
func setupLogging(level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	obs.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

// newMux wraps the service API with the operational endpoints: Prometheus
// metrics at /metrics and, opt-in, the pprof handlers.
func newMux(mgr *service.Manager, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	mux.Handle("GET /metrics", obs.Default().Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func run(addr string, withPprof bool, cfg service.Config, drainTimeout time.Duration) error {
	mgr := service.New(cfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           newMux(mgr, withPprof),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("guardd: listening on %s (%d workers, queue %d)",
			addr, mgr.Stats().Workers, cfg.QueueDepth)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("guardd: shutting down, draining jobs (budget %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("guardd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("guardd: drain incomplete, running jobs cancelled: %v", err)
	}
	log.Printf("guardd: bye")
	return <-errc
}
