// Command guardd serves the GDSII-Guard hardening flows as a long-running
// HTTP service: clients submit harden/explore/attack jobs against built-in
// benchmarks or uploaded DEF layouts, poll job status, and download the
// hardened DEF/GDSII artifacts.
//
// Usage:
//
//	guardd [-addr :8477] [-workers N] [-queue 64] [-job-timeout 15m]
//	       [-cache 8] [-retention 256] [-pprof] [-log-level info]
//	       [-state-dir DIR] [-route-workers N] [-sta-workers N]
//	       [-coordinator] [-worker] [-join URL] [-advertise URL]
//	       [-local-islands N] [-islands 4] [-migration-interval 2]
//	       [-migration-count 2]
//
// Endpoints (JSON unless noted):
//
//	POST   /v1/jobs             submit a job
//	GET    /v1/jobs/{id}        job status + metrics
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/def    hardened DEF (text)
//	GET    /v1/jobs/{id}/gdsii  hardened GDSII (binary)
//	GET    /v1/benchmarks       built-in designs
//	GET    /v1/stats            queue/worker/cache statistics
//	GET    /v1/healthz          process liveness
//	GET    /v1/readyz           drain-aware readiness
//	GET    /metrics             Prometheus text-format process metrics
//
// Cluster mode distributes island-model NSGA-II explorations across
// guardd nodes:
//
//   - `guardd -coordinator` accepts worker registrations on
//     POST /v1/cluster/join and fans explore jobs out island-by-island,
//     merging the per-island Pareto fronts. `-local-islands N` adds N
//     in-process workers, so `-coordinator -local-islands 4` is a whole
//     cluster in one binary (the same code path the distributed setup
//     runs, minus HTTP).
//   - `guardd -worker -join http://coordinator:8477 -advertise
//     http://me:8478` serves island epochs on POST /v1/cluster/island and
//     registers itself with the coordinator, retrying until it succeeds.
//
// With -pprof, the net/http/pprof profiling handlers are additionally
// served under /debug/pprof/. Structured logs (job lifecycle, optimizer
// generations at -log-level debug) go to stderr in logfmt.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the server stops accepting
// requests (readiness flips to 503 while liveness stays 200), queued and
// running jobs drain up to -drain-timeout, then the process exits.
//
// With -state-dir, guardd is crash-safe: job specs, state transitions,
// exploration checkpoints and results are written to per-job CRC-checked
// write-ahead logs under the directory, and a restart with the same
// -state-dir replays them — finished jobs reappear in the result store and
// interrupted jobs re-queue, resuming explorations from their last durable
// checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gdsiiguard/internal/cluster"
	"gdsiiguard/internal/durable"
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/obs"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/service"
	"gdsiiguard/internal/sta"
)

// clusterConfig carries the parsed cluster-mode flags.
type clusterConfig struct {
	coordinator  bool
	worker       bool
	join         string
	advertise    string
	nodeID       string
	localIslands int

	islands           int
	migrationInterval int
	migrationCount    int
	probeInterval     time.Duration
}

func main() {
	var (
		addr         = flag.String("addr", ":8477", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0: NumCPU)")
		queue        = flag.Int("queue", 64, "submission queue depth")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "default per-job timeout")
		cacheSize    = flag.Int("cache", 8, "design cache capacity")
		retention    = flag.Int("retention", 256, "finished jobs kept in the result store")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown drain budget")
		maxAttempts  = flag.Int("max-attempts", 2, "execution attempts per job (transient failures only)")
		retryBackoff = flag.Duration("retry-backoff", 250*time.Millisecond, "base delay before a transient-failure retry")
		withPprof    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logLevel     = flag.String("log-level", "info", "structured log level (debug, info, warn, error)")
		stateDir     = flag.String("state-dir", "", "durable state directory: jobs and exploration checkpoints survive restarts (empty: in-memory only)")
		routeWorkers = flag.Int("route-workers", 0, "wave-parallel routing workers per evaluation (0: GOMAXPROCS, 1: sequential)")
		staWorkers   = flag.Int("sta-workers", 0, "level-parallel STA workers per evaluation (0: GOMAXPROCS, 1: sequential)")
	)
	var cc clusterConfig
	flag.BoolVar(&cc.coordinator, "coordinator", false, "run as cluster coordinator (fan explore jobs out to joined workers)")
	flag.BoolVar(&cc.worker, "worker", false, "serve cluster island epochs on POST /v1/cluster/island")
	flag.StringVar(&cc.join, "join", "", "coordinator URL to register with (implies -worker)")
	flag.StringVar(&cc.advertise, "advertise", "", "this node's reachable base URL, sent on -join")
	flag.StringVar(&cc.nodeID, "node-id", "", "stable node identity (default: hostname + addr)")
	flag.IntVar(&cc.localIslands, "local-islands", 0, "in-process worker nodes on the coordinator (single-binary cluster)")
	flag.IntVar(&cc.islands, "islands", 4, "default island count for cluster explorations")
	flag.IntVar(&cc.migrationInterval, "migration-interval", 2, "generations per island between elite migrations")
	flag.IntVar(&cc.migrationCount, "migration-count", 2, "elite chromosomes migrated to the ring neighbor per epoch")
	flag.DurationVar(&cc.probeInterval, "probe-interval", 5*time.Second, "coordinator health-probe period")
	flag.Parse()
	route.SetWorkers(*routeWorkers)
	sta.SetWorkers(*staWorkers)
	if err := setupLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "guardd:", err)
		os.Exit(2)
	}
	if cc.join != "" {
		cc.worker = true
		if cc.advertise == "" {
			fmt.Fprintln(os.Stderr, "guardd: -join requires -advertise (the URL the coordinator reaches this node at)")
			os.Exit(2)
		}
	}
	if cc.nodeID == "" {
		host, _ := os.Hostname()
		cc.nodeID = host + *addr
	}
	// Crash-harness hook: GDSIIGUARD_CRASH_POINT arms a SIGKILL at a named
	// fault point, so the kill-and-restart recovery tests exercise the same
	// binary operators deploy. A no-op unless the variable is set.
	if _, err := fault.ArmCrashFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "guardd:", err)
		os.Exit(2)
	}
	cfg := service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		CacheSize:    *cacheSize,
		Retention:    *retention,
		MaxAttempts:  *maxAttempts,
		RetryBackoff: *retryBackoff,
	}
	if *stateDir != "" {
		st, err := durable.Open(*stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "guardd:", err)
			os.Exit(1)
		}
		defer st.Close()
		cfg.Store = st
	}
	if err := run(*addr, *withPprof, cfg, cc, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "guardd:", err)
		os.Exit(1)
	}
}

// setupLogging routes the library's structured logs (discarded by default)
// to stderr at the requested level.
func setupLogging(level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	obs.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

// newMux wraps the service API with the operational endpoints: Prometheus
// metrics at /metrics, the cluster endpoints in coordinator/worker mode
// and, opt-in, the pprof handlers.
func newMux(mgr *service.Manager, withPprof bool, workerH, coordH http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	mux.Handle("GET /metrics", obs.Default().Handler())
	if workerH != nil {
		mux.Handle("POST /v1/cluster/island", workerH)
	}
	if coordH != nil {
		mux.Handle("POST /v1/cluster/join", coordH)
		mux.Handle("GET /v1/cluster/nodes", coordH)
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func run(addr string, withPprof bool, cfg service.Config, cc clusterConfig, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var workerH, coordH http.Handler
	if cc.worker {
		workerH = cluster.NewWorkerHandler(cluster.NewWorker(cc.nodeID, cluster.WorkerOptions{}))
	}
	if cc.coordinator {
		ms := cluster.NewMembership()
		// Local islands share one evaluation budget: node-wide admission
		// control, and cluster-wide in the single-binary case.
		if cc.localIslands > 0 {
			slots := cfg.Workers
			if slots <= 0 {
				slots = runtime.NumCPU()
			}
			budget := nsga2.NewEvalBudget(slots)
			for i := 0; i < cc.localIslands; i++ {
				ms.Add(cluster.NewWorker(fmt.Sprintf("%s/local-%d", cc.nodeID, i),
					cluster.WorkerOptions{Budget: budget}))
			}
		}
		ms.StartProbing(ctx, cc.probeInterval)
		cfg.Cluster = cluster.NewDriver(ms, cluster.DriverOptions{
			Islands:           cc.islands,
			MigrationInterval: cc.migrationInterval,
			MigrationCount:    cc.migrationCount,
		})
		coordH = cluster.NewCoordinatorHandler(ms)
	}

	mgr := service.New(cfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           newMux(mgr, withPprof, workerH, coordH),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		mode := "standalone"
		switch {
		case cc.coordinator && cc.worker:
			mode = "coordinator+worker"
		case cc.coordinator:
			mode = "coordinator"
		case cc.worker:
			mode = "worker"
		}
		log.Printf("guardd: listening on %s (%d workers, queue %d, mode %s)",
			addr, mgr.Stats().Workers, cfg.QueueDepth, mode)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	if cc.join != "" {
		go func() {
			if err := cluster.JoinCoordinator(ctx, cc.join, cc.nodeID, cc.advertise); err != nil {
				log.Printf("guardd: cluster join failed: %v", err)
				return
			}
			log.Printf("guardd: joined coordinator %s as %s", cc.join, cc.nodeID)
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("guardd: shutting down, draining jobs (budget %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("guardd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("guardd: drain incomplete, running jobs cancelled: %v", err)
	}
	log.Printf("guardd: bye")
	return <-errc
}
