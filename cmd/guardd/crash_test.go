// Kill-and-restart crash harness: guardd is run as a real subprocess with a
// crash rule armed through the GDSIIGUARD_CRASH_POINT environment hook, so
// the process SIGKILLs itself mid-exploration at a chosen fault point — the
// closest deterministic stand-in for power loss. A second process started on
// the same -state-dir must recover the interrupted job, resume it from the
// last durable checkpoint, and finish with a Pareto front bit-identical to
// an uninterrupted run of the same spec.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// guarddBinary builds the guardd binary once per test run.
func guarddBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "guardd-crash-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "guardd")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// freePort reserves an ephemeral port and releases it for the daemon. The
// tiny reuse race is acceptable in tests.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// daemon is one guardd subprocess under test. exit is closed once the
// process has been reaped, so any number of waiters can observe it.
type daemon struct {
	cmd  *exec.Cmd
	base string
	exit chan struct{}
	log  *os.File
}

// startDaemon launches guardd with the given extra flags and environment,
// logging to a file under dir for post-mortem.
func startDaemon(t *testing.T, dir string, extraArgs, extraEnv []string) *daemon {
	t.Helper()
	port := freePort(t)
	args := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-log-level", "warn",
	}, extraArgs...)
	cmd := exec.Command(guarddBinary(t), args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	logf, err := os.CreateTemp(dir, "guardd-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{
		cmd:  cmd,
		base: fmt.Sprintf("http://127.0.0.1:%d", port),
		exit: make(chan struct{}),
		log:  logf,
	}
	go func() {
		_ = cmd.Wait()
		close(d.exit)
	}()
	t.Cleanup(func() {
		select {
		case <-d.exit:
		default:
			_ = cmd.Process.Kill()
			<-d.exit
		}
		logf.Close()
	})
	return d
}

// waitHealthy polls /v1/healthz until the daemon answers.
func (d *daemon) waitHealthy(t *testing.T) {
	t.Helper()
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(d.base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("guardd at %s never became healthy (log: %s)", d.base, d.log.Name())
}

// waitExit blocks until the process exits — for crash runs, the SIGKILL the
// armed fault rule delivers.
func (d *daemon) waitExit(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-d.exit:
	case <-time.After(timeout):
		t.Fatalf("guardd did not crash within %v (log: %s)", timeout, d.log.Name())
	}
}

// submit posts an explore job and returns its ID.
func (d *daemon) submit(t *testing.T, explore map[string]any) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"kind":      "explore",
		"benchmark": "PRESENT",
		"explore":   explore,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", resp.StatusCode, out)
	}
	return out["id"].(string)
}

// awaitFront polls the job until done and returns its exploration payload
// with the wall-clock runtime_ms stripped from every front point — the one
// field a bit-identical resume legitimately cannot reproduce.
func (d *daemon) awaitFront(t *testing.T, id string, timeout time.Duration) map[string]any {
	t.Helper()
	for deadline := time.Now().Add(timeout); time.Now().Before(deadline); {
		resp, err := http.Get(d.base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch out["state"] {
		case "done":
			ex, ok := out["exploration"].(map[string]any)
			if !ok {
				t.Fatalf("done job %s has no exploration: %v", id, out)
			}
			if front, ok := ex["front"].([]any); ok {
				for _, p := range front {
					if m, ok := p.(map[string]any)["metrics"].(map[string]any); ok {
						delete(m, "runtime_ms")
					}
				}
			}
			// Delta reuse counters depend on how much of the run was
			// re-executed after the crash, not on its results; the front
			// equality is the recovery gate.
			delete(ex, "delta")
			return ex
		case "failed", "cancelled":
			t.Fatalf("job %s reached %v: %v (log: %s)", id, out["state"], out["error"], d.log.Name())
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s not done within %v (log: %s)", id, timeout, d.log.Name())
	return nil
}

// crashScenario describes one SIGKILL point and the server/job shape that
// reaches it.
type crashScenario struct {
	name       string
	point      string   // GDSIIGUARD_CRASH_POINT value
	after      int      // calls exempted before the kill
	serverArgs []string // flags beyond -addr/-log-level/-state-dir
	explore    map[string]any
}

var crashScenarios = []crashScenario{
	{
		// Killed mid-WAL-append: spec, running-state and a few generation
		// checkpoints land, then the process dies before the next record.
		name:       "durable-append",
		point:      "durable.append",
		after:      4,
		serverArgs: []string{"-workers", "1"},
		explore: map[string]any{
			"pop_size": 6, "generations": 8, "parallelism": 1, "seed": 42,
		},
	},
	{
		// Killed inside the first mid-run snapshot compaction (the 8th
		// checkpoint under the default cadence): the snapshot publish dies
		// but the WAL it would replace is still intact.
		name:       "durable-snapshot",
		point:      "durable.snapshot",
		after:      0,
		serverArgs: []string{"-workers", "1"},
		explore: map[string]any{
			"pop_size": 6, "generations": 12, "parallelism": 1, "seed": 42,
		},
	},
	{
		// Killed at a coordinator epoch boundary of a single-binary
		// cluster: epochs 0-1 checkpointed, the restart resumes at epoch 2
		// instead of re-running the islands from scratch.
		name:  "cluster-epoch",
		point: "cluster.epoch",
		after: 2,
		serverArgs: []string{
			"-workers", "2", "-coordinator", "-local-islands", "2",
			"-islands", "2", "-migration-interval", "2", "-migration-count", "1",
		},
		explore: map[string]any{
			"pop_size": 4, "generations": 8, "parallelism": 1, "seed": 7,
		},
	},
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness skipped in -short mode")
	}
	guarddBinary(t) // build once before the parallel subtests fork

	for _, sc := range crashScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()

			// Golden: the same server shape and job, never interrupted.
			golden := startDaemon(t, dir, sc.serverArgs, nil)
			golden.waitHealthy(t)
			want := golden.awaitFront(t, golden.submit(t, sc.explore), 3*time.Minute)
			_ = golden.cmd.Process.Kill()

			// Crash run: same job on a durable state dir, SIGKILL armed at
			// the scenario's fault point.
			stateDir := filepath.Join(dir, "state")
			crashArgs := append([]string{"-state-dir", stateDir}, sc.serverArgs...)
			victim := startDaemon(t, dir, crashArgs, []string{
				"GDSIIGUARD_CRASH_POINT=" + sc.point,
				"GDSIIGUARD_CRASH_AFTER=" + strconv.Itoa(sc.after),
			})
			victim.waitHealthy(t)
			id := victim.submit(t, sc.explore)
			victim.waitExit(t, 3*time.Minute)

			// The kill must have landed after the spec was durable, or the
			// scenario proved nothing: the state dir holds the job's WAL.
			if _, err := os.Stat(filepath.Join(stateDir, "jobs", id+".wal")); err != nil {
				t.Fatalf("no WAL for %s after crash: %v", id, err)
			}

			// Restart on the same state dir with no crash armed: the job is
			// re-queued from its checkpoint and must reproduce the golden
			// front exactly.
			revived := startDaemon(t, dir, crashArgs, nil)
			revived.waitHealthy(t)
			got := revived.awaitFront(t, id, 3*time.Minute)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("resumed front diverged from uninterrupted run:\n got: %v\nwant: %v", got, want)
			}
		})
	}
}
