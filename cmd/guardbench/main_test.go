package main

import "testing"

func TestBenchDesignMeasuresAllPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full design benchmark")
	}
	db, err := benchDesign("PRESENT", 6, 2, 1)
	if err != nil {
		t.Fatalf("benchDesign: %v", err)
	}
	if db.BaselineSeconds <= 0 || db.HardenSeconds <= 0 || db.ExploreSeconds <= 0 {
		t.Errorf("unmeasured phase: %+v", db)
	}
	if db.TotalSeconds < db.BaselineSeconds+db.HardenSeconds+db.ExploreSeconds-0.01 {
		t.Errorf("total %.3fs below the sum of its phases", db.TotalSeconds)
	}
	if db.Evaluations == 0 {
		t.Error("exploration reported zero evaluations")
	}
	for _, stage := range []string{"route", "timing", "power", "security", "drc"} {
		s, ok := db.Stages[stage]
		if !ok || s.Count == 0 {
			t.Errorf("stage %q missing from the breakdown", stage)
			continue
		}
		if s.MeanSeconds <= 0 {
			t.Errorf("stage %q mean = %g", stage, s.MeanSeconds)
		}
	}
}

func TestStageDelta(t *testing.T) {
	before := map[string]StageLatency{"route": {Count: 2, TotalSecs: 1.0}}
	after := map[string]StageLatency{
		"route":  {Count: 6, TotalSecs: 3.0},
		"timing": {Count: 4, TotalSecs: 0.4},
	}
	d := stageDelta(before, after)
	if d["route"].Count != 4 || d["route"].TotalSecs != 2.0 || d["route"].MeanSeconds != 0.5 {
		t.Errorf("route delta = %+v", d["route"])
	}
	if d["timing"].Count != 4 || d["timing"].MeanSeconds != 0.1 {
		t.Errorf("timing delta = %+v", d["timing"])
	}
}
