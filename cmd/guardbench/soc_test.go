package main

import (
	"testing"

	"gdsiiguard/internal/benchdesigns"
)

// TestSoCHardenSmoke drives a scaled-down stamped SoC through the exact
// pipeline the SoC bench measures — streaming export/import, the mass
// scans, and the full harden with its delta ECO evaluation — so CI catches
// a broken stage without paying for the 10^5-cell designs. It deliberately
// runs under -short: this IS the smoke configuration.
func TestSoCHardenSmoke(t *testing.T) {
	spec, err := benchdesigns.SoCSpecOf("SoC_100k")
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 tiles with one macro position keeps every pipeline branch live
	// (stamping, macro blockage, stitching) at a few thousand cells.
	spec.Name = "SoC_smoke"
	spec.TilesX, spec.TilesY = 2, 2
	spec.MacroEvery = 3

	d, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sb := &SoCBench{Design: spec.Name, Stages: map[string]SoCStage{}, Cells: d.Cells}
	if err := benchSoCPipeline(d, sb); err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{"export", "import", "mass_seq", "mass_band", "harden_baseline", "harden_eco"} {
		if _, ok := sb.Stages[stage]; !ok {
			t.Errorf("stage %q missing from smoke bench", stage)
		}
	}
	if sb.GDSBytes == 0 {
		t.Error("streaming export produced no bytes")
	}
	if sb.HardenDelta == nil {
		t.Fatal("harden delta stats missing")
	}
	// benchSoCPipeline already fails if the ECO pass fell back to a full
	// STA; assert the positive side too — cones were actually propagated.
	if sb.HardenDelta.StaDelta == 0 || sb.HardenDelta.StaConeInsts == 0 {
		t.Errorf("delta STA did no cone work: %+v", *sb.HardenDelta)
	}
	if sb.HardenDelta.RoutesWarm == 0 {
		t.Errorf("harden ECO never warm-started routing: %+v", *sb.HardenDelta)
	}
	t.Logf("smoke SoC: %d cells, gds %s, delta %+v", sb.Cells, fmtBytes(sb.GDSBytes), *sb.HardenDelta)
}
