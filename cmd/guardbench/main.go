// Command guardbench runs built-in benchmark designs through the three
// core operations — baseline evaluation, a default-parameter hardening
// pass, and a short NSGA-II exploration — and writes the measured
// latencies to a machine-readable JSON file (default BENCH_baseline.json).
// Per-design end-to-end wall times come from direct measurement; the
// per-stage breakdown (route, timing, power, security, drc) is read from
// the flow's own gdsiiguard_flow_stage_seconds histogram, so the report
// and the /metrics endpoint of guardd can never disagree about what was
// measured.
//
// Usage:
//
//	guardbench [-designs PRESENT,openMSP430_1] [-short] [-pop 8] [-gens 3]
//	           [-seed 1] [-out BENCH_baseline.json]
//	           [-compare old.json] [-tolerance 0.25]
//	           [-route-workers N] [-sta-workers N]
//
// -short shrinks the exploration (pop 6, 2 generations) for CI smoke runs.
// -compare diffs the fresh report against a previously written one: every
// per-phase wall time and per-stage mean latency is printed with its
// percentage delta, and the process exits 3 when any of them is more than
// -tolerance (fractional) slower than before. Reports record the per-stage
// worker counts they were measured under; when those differ between the
// two reports (different machine, different -route-workers/-sta-workers),
// -compare still prints the deltas but warns and refuses to flag latency
// regressions — the numbers are not comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gdsiiguard"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/obs"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sta"
)

// StageLatency is the aggregated latency of one flow stage over a phase.
type StageLatency struct {
	Count       uint64  `json:"count"`
	TotalSecs   float64 `json:"total_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// DesignBench is the measured result for one design.
type DesignBench struct {
	Design          string                  `json:"design"`
	BaselineSeconds float64                 `json:"baseline_seconds"`
	HardenSeconds   float64                 `json:"harden_seconds"`
	ExploreSeconds  float64                 `json:"explore_seconds"`
	TotalSeconds    float64                 `json:"total_seconds"`
	Evaluations     int                     `json:"explore_evaluations"`
	FrontSize       int                     `json:"explore_front_size"`
	Stages          map[string]StageLatency `json:"stages"`
	// Delta reports what the exploration's cross-chromosome delta
	// evaluation reused: operator stage skips (memo/arena hits), LDA
	// iteration extensions, warm vs cold routes and per-net reroute
	// counts. Informational — compare never flags these as regressions.
	Delta gdsiiguard.DeltaStats `json:"delta"`
}

// WorkersReport records the parallelism the run resolved to, stage by
// stage: the wave-parallel router, the level-parallel STA engine and the
// band-parallel operator mass scans. Each count is what the stage would
// use on a large input on this machine under the run's -route-workers /
// -sta-workers settings (1 means the stage degenerated to its sequential
// path). Wall times measured under different worker counts are not
// comparable, so -compare warns and refuses to gate latencies when these
// differ between reports.
type WorkersReport struct {
	NumCPU int `json:"num_cpu"`
	Route  int `json:"route"`
	STA    int `json:"sta"`
	Band   int `json:"band"`
}

// resolvedWorkers snapshots the per-stage worker counts for the report,
// resolved at an input size large enough that only the setting and the
// machine's core count bind.
func resolvedWorkers() *WorkersReport {
	const large = 1 << 20
	return &WorkersReport{
		NumCPU: runtime.NumCPU(),
		Route:  route.ResolvedWorkers(large),
		STA:    sta.ResolvedWorkers(large),
		Band:   core.ResolvedOperatorBandWorkers(large),
	}
}

// Report is the full benchmark output.
type Report struct {
	GeneratedBy string `json:"generated_by"`
	Timestamp   string `json:"timestamp"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Short       bool   `json:"short"`
	PopSize     int    `json:"pop_size"`
	Generations int    `json:"generations"`
	Seed        int64  `json:"seed"`
	// Workers is the per-stage parallelism this report was measured under;
	// -compare refuses to gate latency deltas between reports whose worker
	// configurations differ.
	Workers *WorkersReport `json:"workers,omitempty"`
	Designs []DesignBench  `json:"designs"`
	// SoC holds the SoC-scale streaming-pipeline results: wall time AND
	// allocation volume per stage, so -compare gates memory regressions in
	// the streaming paths, not just latency. Skipped under -short.
	SoC          []SoCBench `json:"soc,omitempty"`
	SuiteSeconds float64    `json:"suite_seconds"`
}

func main() {
	var (
		designs = flag.String("designs", "PRESENT,openMSP430_1", "comma-separated benchmark designs")
		short   = flag.Bool("short", false, "shrink the exploration for smoke runs")
		pop     = flag.Int("pop", 8, "exploration population size")
		gens    = flag.Int("gens", 3, "exploration generations")
		seed    = flag.Int64("seed", 1, "exploration seed")
		soc     = flag.String("soc", "SoC_100k", "comma-separated SoC-scale designs for the streaming pipeline bench (skipped with -short; empty disables)")
		out     = flag.String("out", "BENCH_baseline.json", "output JSON path")
		compare = flag.String("compare", "", "old report JSON to diff against; exit 3 on regression")
		tol     = flag.Float64("tolerance", 0.25, "fractional slowdown allowed before -compare reports a regression")

		routeWorkers = flag.Int("route-workers", 0, "wave-parallel routing workers (0: GOMAXPROCS, 1: sequential)")
		staWorkers   = flag.Int("sta-workers", 0, "level-parallel STA workers (0: GOMAXPROCS, 1: sequential)")
	)
	flag.Parse()
	route.SetWorkers(*routeWorkers)
	sta.SetWorkers(*staWorkers)
	if *short {
		*pop, *gens = 6, 2
	}
	names := strings.Split(*designs, ",")
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "guardbench: no designs")
		os.Exit(2)
	}

	rep := Report{
		GeneratedBy: "guardbench",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Short:       *short,
		PopSize:     *pop,
		Generations: *gens,
		Seed:        *seed,
		Workers:     resolvedWorkers(),
	}
	t0 := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		db, err := benchDesign(name, *pop, *gens, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		rep.Designs = append(rep.Designs, *db)
		fmt.Printf("%-16s baseline %6.2fs  harden %6.2fs  explore %7.2fs (%d evals, front %d, op reuse %d, warm routes %d)\n",
			name, db.BaselineSeconds, db.HardenSeconds, db.ExploreSeconds,
			db.Evaluations, db.FrontSize,
			db.Delta.OpMemoHits+db.Delta.OpArenaHits, db.Delta.RoutesWarm)
	}
	if *soc != "" && !*short {
		for _, name := range strings.Split(*soc, ",") {
			name = strings.TrimSpace(name)
			sb, err := benchSoC(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "guardbench: soc %s: %v\n", name, err)
				os.Exit(1)
			}
			rep.SoC = append(rep.SoC, *sb)
			fmt.Printf("%-16s %d cells  generate %5.2fs  export %5.2fs (%s)  import %5.2fs  mass x%.1f (%d workers)  harden %6.2fs+%5.2fs (delta STA cones %d insts)\n",
				name, sb.Cells, sb.Stages["generate"].Seconds,
				sb.Stages["export"].Seconds, fmtBytes(sb.GDSBytes),
				sb.Stages["import"].Seconds, sb.MassSpeedup, sb.MassWorkers,
				sb.Stages["harden_baseline"].Seconds, sb.Stages["harden_eco"].Seconds,
				sb.HardenDelta.StaConeInsts)
		}
	}
	rep.SuiteSeconds = time.Since(t0).Seconds()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "guardbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "guardbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d designs, %.1fs)\n", *out, len(rep.Designs), rep.SuiteSeconds)

	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "guardbench: -compare:", err)
			os.Exit(1)
		}
		diff, regressed := compareReports(old, &rep, *tol)
		fmt.Print(diff)
		if regressed {
			fmt.Fprintf(os.Stderr, "guardbench: performance regression beyond %.0f%% tolerance vs %s\n",
				*tol*100, *compare)
			os.Exit(3)
		}
		if msg := workersMismatch(old, &rep); msg != "" {
			fmt.Fprintf(os.Stderr, "guardbench: -compare: %s; latency gating refused\n", msg)
		} else {
			fmt.Printf("no regression beyond %.0f%% tolerance vs %s\n", *tol*100, *compare)
		}
	}
}

// benchDesign measures one design's baseline, harden and explore phases.
func benchDesign(name string, pop, gens int, seed int64) (*DesignBench, error) {
	before := stageTotals()
	t0 := time.Now()
	d, err := gdsiiguard.LoadBenchmark(name)
	if err != nil {
		return nil, err
	}
	db := &DesignBench{Design: name, BaselineSeconds: time.Since(t0).Seconds()}

	t1 := time.Now()
	if _, err := d.Harden(nil); err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	db.HardenSeconds = time.Since(t1).Seconds()

	t2 := time.Now()
	ex, err := d.Explore(gdsiiguard.ExploreOptions{PopSize: pop, Generations: gens, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	db.ExploreSeconds = time.Since(t2).Seconds()
	db.Evaluations = ex.Evaluations
	db.FrontSize = len(ex.Front)
	db.Delta = ex.Delta
	db.TotalSeconds = time.Since(t0).Seconds()
	db.Stages = stageDelta(before, stageTotals())
	return db, nil
}

// stageTotals reads the per-stage flow histogram from the process registry.
func stageTotals() map[string]StageLatency {
	out := map[string]StageLatency{}
	for _, fam := range obs.Default().Snapshot() {
		if fam.Name != "gdsiiguard_flow_stage_seconds" {
			continue
		}
		for _, s := range fam.Series {
			out[s.Labels["stage"]] = StageLatency{Count: s.Count, TotalSecs: s.Sum}
		}
	}
	return out
}

// stageDelta subtracts two stageTotals snapshots and fills per-stage means.
func stageDelta(before, after map[string]StageLatency) map[string]StageLatency {
	out := map[string]StageLatency{}
	for stage, b := range after {
		d := StageLatency{Count: b.Count - before[stage].Count, TotalSecs: b.TotalSecs - before[stage].TotalSecs}
		if d.Count > 0 {
			d.MeanSeconds = d.TotalSecs / float64(d.Count)
			out[stage] = d
		}
	}
	return out
}
