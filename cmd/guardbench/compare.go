package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// loadReport reads a previously written benchmark report.
func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// regressionFloorSecs is the absolute slowdown below which a relative
// regression is never flagged: sub-millisecond stage means (power, drc)
// jitter by tens of percent run to run on a loaded machine, and a purely
// relative tolerance would turn that noise into CI failures.
const regressionFloorSecs = 0.005

// regressionFloorBytes is the analogous absolute floor for allocation
// volume in the SoC streaming stages: small-object churn varies a little
// with scheduling, but a streaming path that regresses to whole-library
// buffering allocates tens of megabytes more, far above this floor.
const regressionFloorBytes = 4 << 20

// workersMismatch reports how the two reports' worker configurations
// differ, or "" when they are comparable. Reports written before the
// workers section existed carry no configuration and compare as before
// (there is nothing to refuse on).
func workersMismatch(old, cur *Report) string {
	if old.Workers == nil || cur.Workers == nil {
		return ""
	}
	if *old.Workers == *cur.Workers {
		return ""
	}
	return fmt.Sprintf(
		"worker configuration mismatch: old cpu=%d route=%d sta=%d band=%d, new cpu=%d route=%d sta=%d band=%d",
		old.Workers.NumCPU, old.Workers.Route, old.Workers.STA, old.Workers.Band,
		cur.Workers.NumCPU, cur.Workers.Route, cur.Workers.STA, cur.Workers.Band)
}

// shapeMismatch reports why the two runs' latencies are not comparable when
// their exploration shapes differ ("" when they match). Per-stage means are
// composition-sensitive under delta evaluation — a smaller exploration
// amortizes reuse over fewer evaluations, so its per-call operator mean is
// legitimately higher — which makes a short-vs-full comparison a phantom
// regression generator, not a gate.
func shapeMismatch(old, cur *Report) string {
	if old.Short == cur.Short && old.PopSize == cur.PopSize && old.Generations == cur.Generations {
		return ""
	}
	return fmt.Sprintf(
		"exploration shape mismatch: old short=%t pop=%d gens=%d, new short=%t pop=%d gens=%d",
		old.Short, old.PopSize, old.Generations, cur.Short, cur.PopSize, cur.Generations)
}

// compareReports diffs two benchmark reports design by design: per-stage
// mean latencies and the per-phase end-to-end wall times, each with a
// percentage delta against the old report. It returns the rendered diff
// and whether any comparable number regressed beyond the tolerance
// (tolerance 0.25 = new may be up to 25% slower before it counts, and the
// absolute slowdown must also exceed regressionFloorSecs).
// Designs or stages present in only one report are noted but never count
// as regressions. Neither do any latency deltas when the two reports were
// measured under different worker configurations or exploration shapes:
// wall times from different parallelism (or per-call means from different
// reuse composition) are not comparable, so the diff leads with a warning
// and regression gating is refused for the whole comparison.
func compareReports(old, cur *Report, tolerance float64) (string, bool) {
	var b strings.Builder
	regressed := false
	gate := true
	for _, msg := range []string{workersMismatch(old, cur), shapeMismatch(old, cur)} {
		if msg == "" {
			continue
		}
		gate = false
		fmt.Fprintf(&b, "WARNING: %s\n", msg)
		fmt.Fprintf(&b, "WARNING: latency deltas below are informational; regression gating refused\n")
	}

	oldByName := map[string]DesignBench{}
	for _, d := range old.Designs {
		oldByName[d.Design] = d
	}

	line := func(design, metric string, was, now float64) {
		pct := 0.0
		if was > 0 {
			pct = (now - was) / was * 100
		}
		flag := ""
		if gate && was > 0 && now > was*(1+tolerance) && now-was > regressionFloorSecs {
			flag = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&b, "%-16s %-18s %8.3fs -> %8.3fs  (%+7.1f%%)%s\n",
			design, metric, was, now, pct, flag)
	}

	for _, d := range cur.Designs {
		prev, ok := oldByName[d.Design]
		if !ok {
			fmt.Fprintf(&b, "%-16s (no old data: skipped)\n", d.Design)
			continue
		}
		line(d.Design, "baseline", prev.BaselineSeconds, d.BaselineSeconds)
		line(d.Design, "harden", prev.HardenSeconds, d.HardenSeconds)
		line(d.Design, "explore", prev.ExploreSeconds, d.ExploreSeconds)
		line(d.Design, "total", prev.TotalSeconds, d.TotalSeconds)

		var stages []string
		for s := range d.Stages {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			ps, ok := prev.Stages[s]
			if !ok {
				fmt.Fprintf(&b, "%-16s stage %-12s (no old data: skipped)\n", d.Design, s)
				continue
			}
			line(d.Design, "stage "+s, ps.MeanSeconds, d.Stages[s].MeanSeconds)
		}
		for s := range prev.Stages {
			if _, ok := d.Stages[s]; !ok {
				fmt.Fprintf(&b, "%-16s stage %-12s (gone from new report)\n", d.Design, s)
			}
		}
	}
	for _, d := range old.Designs {
		found := false
		for _, c := range cur.Designs {
			if c.Design == d.Design {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(&b, "%-16s (not in new report)\n", d.Design)
		}
	}

	// SoC streaming stages: gate both wall time and allocation volume.
	// Missing entries (e.g. a -short run that skipped SoC) are noted, never
	// regressions — mirroring how missing designs are handled above.
	byteLine := func(design, metric string, was, now uint64) {
		pct := 0.0
		if was > 0 {
			pct = (float64(now) - float64(was)) / float64(was) * 100
		}
		flag := ""
		if gate && was > 0 && float64(now) > float64(was)*(1+tolerance) && now-was > regressionFloorBytes {
			flag = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&b, "%-16s %-18s %7.1fMB -> %7.1fMB  (%+7.1f%%)%s\n",
			design, metric, float64(was)/(1<<20), float64(now)/(1<<20), pct, flag)
	}
	oldSoC := map[string]SoCBench{}
	for _, s := range old.SoC {
		oldSoC[s.Design] = s
	}
	for _, s := range cur.SoC {
		prev, ok := oldSoC[s.Design]
		if !ok {
			fmt.Fprintf(&b, "%-16s (no old SoC data: skipped)\n", s.Design)
			continue
		}
		var stages []string
		for st := range s.Stages {
			stages = append(stages, st)
		}
		sort.Strings(stages)
		for _, st := range stages {
			ps, ok := prev.Stages[st]
			if !ok {
				fmt.Fprintf(&b, "%-16s soc %-14s (no old data: skipped)\n", s.Design, st)
				continue
			}
			line(s.Design, "soc "+st, ps.Seconds, s.Stages[st].Seconds)
			byteLine(s.Design, "soc "+st+" alloc", ps.AllocBytes, s.Stages[st].AllocBytes)
		}
	}
	for _, s := range old.SoC {
		found := false
		for _, c := range cur.SoC {
			if c.Design == s.Design {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(&b, "%-16s (SoC not in new report)\n", s.Design)
		}
	}
	return b.String(), regressed
}
