package main

import (
	"strings"
	"testing"
)

func report(design string, harden float64, stages map[string]StageLatency) *Report {
	return &Report{
		Designs: []DesignBench{{
			Design:          design,
			BaselineSeconds: 1.0,
			HardenSeconds:   harden,
			ExploreSeconds:  10.0,
			TotalSeconds:    11.0 + harden,
			Stages:          stages,
		}},
	}
}

func TestCompareReportsImprovement(t *testing.T) {
	old := report("PRESENT", 2.0, map[string]StageLatency{
		"operator": {Count: 28, TotalSecs: 18.0, MeanSeconds: 0.644},
	})
	cur := report("PRESENT", 0.5, map[string]StageLatency{
		"operator": {Count: 28, TotalSecs: 3.0, MeanSeconds: 0.107},
	})
	diff, regressed := compareReports(old, cur, 0.25)
	if regressed {
		t.Fatalf("improvement flagged as regression:\n%s", diff)
	}
	if !strings.Contains(diff, "stage operator") {
		t.Errorf("diff lacks stage line:\n%s", diff)
	}
	if !strings.Contains(diff, "-83.4%") {
		t.Errorf("diff lacks percentage delta:\n%s", diff)
	}
}

func TestCompareReportsRegression(t *testing.T) {
	old := report("PRESENT", 1.0, map[string]StageLatency{
		"operator": {Count: 28, TotalSecs: 3.0, MeanSeconds: 0.107},
	})
	cur := report("PRESENT", 1.0, map[string]StageLatency{
		"operator": {Count: 28, TotalSecs: 18.0, MeanSeconds: 0.644},
	})
	diff, regressed := compareReports(old, cur, 0.25)
	if !regressed {
		t.Fatalf("6x stage slowdown not flagged:\n%s", diff)
	}
	if !strings.Contains(diff, "REGRESSION") {
		t.Errorf("diff lacks REGRESSION marker:\n%s", diff)
	}
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	old := report("PRESENT", 1.0, nil)
	cur := report("PRESENT", 1.2, nil) // 20% slower, tolerance 25%
	if diff, regressed := compareReports(old, cur, 0.25); regressed {
		t.Fatalf("slowdown within tolerance flagged:\n%s", diff)
	}
	// The same slowdown beyond a tighter tolerance must flag.
	if _, regressed := compareReports(old, cur, 0.1); !regressed {
		t.Fatal("20% slowdown not flagged at 10% tolerance")
	}
}

func socReport(stages map[string]SoCStage) *Report {
	return &Report{SoC: []SoCBench{{Design: "SoC_100k", Cells: 134954, Stages: stages}}}
}

func TestCompareReportsSoCAllocRegression(t *testing.T) {
	old := socReport(map[string]SoCStage{
		"import": {Seconds: 0.1, AllocBytes: 20 << 20},
	})
	// Same wall time, 3x the allocation volume: the memory gate alone
	// must flag it — a streaming path silently buffering the whole
	// library barely moves latency on small inputs.
	cur := socReport(map[string]SoCStage{
		"import": {Seconds: 0.1, AllocBytes: 60 << 20},
	})
	diff, regressed := compareReports(old, cur, 0.25)
	if !regressed {
		t.Fatalf("3x alloc growth not flagged:\n%s", diff)
	}
	if !strings.Contains(diff, "soc import alloc") {
		t.Errorf("diff lacks alloc line:\n%s", diff)
	}
}

func TestCompareReportsSoCAllocWithinFloor(t *testing.T) {
	// +50% relative but only +1MB absolute: below regressionFloorBytes,
	// so small-object churn jitter never fails a run.
	old := socReport(map[string]SoCStage{
		"mass_seq": {Seconds: 0.006, AllocBytes: 2 << 20},
	})
	cur := socReport(map[string]SoCStage{
		"mass_seq": {Seconds: 0.006, AllocBytes: 3 << 20},
	})
	if diff, regressed := compareReports(old, cur, 0.25); regressed {
		t.Fatalf("sub-floor alloc growth flagged:\n%s", diff)
	}
}

func TestCompareReportsSoCMissing(t *testing.T) {
	// A -short run skips SoC entirely; that is a note, not a regression.
	old := socReport(map[string]SoCStage{"import": {Seconds: 0.1, AllocBytes: 20 << 20}})
	diff, regressed := compareReports(old, &Report{}, 0.25)
	if regressed {
		t.Fatalf("missing SoC section treated as regression:\n%s", diff)
	}
	if !strings.Contains(diff, "SoC not in new report") {
		t.Errorf("diff lacks missing-SoC note:\n%s", diff)
	}
}

func TestCompareReportsWorkerMismatch(t *testing.T) {
	old := report("PRESENT", 1.0, map[string]StageLatency{
		"route": {Count: 28, TotalSecs: 3.0, MeanSeconds: 0.107},
	})
	old.Workers = &WorkersReport{NumCPU: 1, Route: 1, STA: 1, Band: 1}
	cur := report("PRESENT", 10.0, map[string]StageLatency{
		"route": {Count: 28, TotalSecs: 18.0, MeanSeconds: 0.644},
	})
	cur.Workers = &WorkersReport{NumCPU: 8, Route: 8, STA: 8, Band: 8}

	// A 6x slowdown would normally flag; under mismatched worker configs
	// the numbers are not comparable, so the diff must warn and refuse.
	diff, regressed := compareReports(old, cur, 0.25)
	if regressed {
		t.Fatalf("regression gated despite worker mismatch:\n%s", diff)
	}
	if !strings.Contains(diff, "worker configuration mismatch") {
		t.Errorf("diff lacks mismatch warning:\n%s", diff)
	}
	if strings.Contains(diff, "REGRESSION") {
		t.Errorf("diff flags REGRESSION despite refusal:\n%s", diff)
	}

	// Matching configs gate as usual.
	cur.Workers = &WorkersReport{NumCPU: 1, Route: 1, STA: 1, Band: 1}
	if _, regressed := compareReports(old, cur, 0.25); !regressed {
		t.Fatal("6x slowdown not flagged with matching worker configs")
	}

	// Old reports without a workers section stay comparable (upgrade path).
	old.Workers = nil
	if _, regressed := compareReports(old, cur, 0.25); !regressed {
		t.Fatal("6x slowdown not flagged when old report predates workers section")
	}
}

func TestCompareReportsShapeMismatch(t *testing.T) {
	old := report("PRESENT", 1.0, map[string]StageLatency{
		"operator": {Count: 28, TotalSecs: 3.0, MeanSeconds: 0.107},
	})
	old.PopSize, old.Generations = 8, 3
	cur := report("PRESENT", 10.0, map[string]StageLatency{
		"operator": {Count: 16, TotalSecs: 10.0, MeanSeconds: 0.644},
	})
	cur.Short, cur.PopSize, cur.Generations = true, 6, 2

	// Per-stage means from different exploration shapes carry different
	// reuse composition; the diff must warn and refuse to gate.
	diff, regressed := compareReports(old, cur, 0.25)
	if regressed {
		t.Fatalf("regression gated despite shape mismatch:\n%s", diff)
	}
	if !strings.Contains(diff, "exploration shape mismatch") {
		t.Errorf("diff lacks shape warning:\n%s", diff)
	}
	if strings.Contains(diff, "REGRESSION") {
		t.Errorf("diff flags REGRESSION despite refusal:\n%s", diff)
	}

	// Matching shapes gate as usual.
	cur.Short, cur.PopSize, cur.Generations = false, 8, 3
	if _, regressed := compareReports(old, cur, 0.25); !regressed {
		t.Fatal("6x slowdown not flagged with matching shapes")
	}
}

func TestCompareReportsMissingData(t *testing.T) {
	old := report("PRESENT", 1.0, map[string]StageLatency{
		"operator": {MeanSeconds: 0.1},
		"route":    {MeanSeconds: 0.2},
	})
	cur := &Report{Designs: []DesignBench{
		{Design: "PRESENT", BaselineSeconds: 1.0, HardenSeconds: 1.0,
			ExploreSeconds: 10.0, TotalSeconds: 12.0,
			Stages: map[string]StageLatency{
				"operator": {MeanSeconds: 0.1},
				"timing":   {MeanSeconds: 0.3}, // new stage: no old data
			}},
		{Design: "AES_1"}, // design with no old data
	}}
	diff, regressed := compareReports(old, cur, 0.25)
	if regressed {
		t.Fatalf("missing data treated as regression:\n%s", diff)
	}
	for _, want := range []string{"no old data", "gone from new report"} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff lacks %q:\n%s", want, diff)
		}
	}
}
