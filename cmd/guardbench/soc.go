package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/gdsii"
)

// SoCStage is one SoC pipeline stage: wall time plus bytes allocated while
// it ran. Allocation volume is the memory gate for the streaming paths — a
// change that regresses the codec back to whole-library buffering shows up
// here long before it shows up in wall time.
type SoCStage struct {
	Seconds    float64 `json:"seconds"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// SoCBench is the measured result for one SoC-scale design. The pipeline is
// generate -> streaming export -> streaming import -> operator-stage mass
// (sequential, then band-parallel); a full harden/explore at 10^5+ cells is
// out of scope for a smoke benchmark, and the four stages cover exactly the
// code paths this scale exercises.
type SoCBench struct {
	Design   string `json:"design"`
	Cells    int    `json:"cells"`
	GDSBytes int64  `json:"gds_bytes"`
	// MassWorkers is how many band workers the parallel mass stage resolved
	// to on this machine; 1 means mass_band degenerated to the sequential
	// path (single-CPU runner) and MassSpeedup is just run-to-run noise.
	MassWorkers int                 `json:"mass_workers"`
	MassSpeedup float64             `json:"mass_speedup"`
	Stages      map[string]SoCStage `json:"stages"`
}

// socThreshER is the exploitable-region threshold used for the mass stages;
// it matches the core package's default hardening parameters.
const socThreshER = 20

// measureSoC runs fn and returns its wall time and allocation volume
// (MemStats.TotalAlloc delta — cumulative, unaffected by GC timing).
func measureSoC(fn func() error) (SoCStage, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := fn()
	secs := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	return SoCStage{Seconds: secs, AllocBytes: m1.TotalAlloc - m0.TotalAlloc}, err
}

// benchSoC measures one SoC-scale design through the streaming pipeline.
func benchSoC(name string) (*SoCBench, error) {
	sb := &SoCBench{Design: name, Stages: map[string]SoCStage{}}

	var d *benchdesigns.SoCDesign
	st, err := measureSoC(func() error {
		var err error
		d, err = benchdesigns.BuildSoC(name)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	sb.Stages["generate"] = st
	sb.Cells = d.Cells

	dir, err := os.MkdirTemp("", "guardbench-soc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, name+".gds")

	st, err = measureSoC(func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		if err := gdsii.StreamLayoutTiles(w, d.Layout, nil, d.Grid()); err != nil {
			return err
		}
		return w.Flush()
	})
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	sb.Stages["export"] = st
	if fi, err := os.Stat(path); err == nil {
		sb.GDSBytes = fi.Size()
	}

	st, err = measureSoC(func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, _, err = gdsii.StreamStats(bufio.NewReader(f))
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("import: %w", err)
	}
	sb.Stages["import"] = st

	// Best of three for the mass stages: a single 50ms run jitters badly
	// with GC timing, and the baseline must be stable enough to gate on.
	bestMass := func() (SoCStage, int) {
		best, mass := SoCStage{}, 0
		for i := 0; i < 3; i++ {
			runtime.GC() // don't bill one iteration for another's garbage
			st, _ := measureSoC(func() error {
				mass = core.ExploitableFreeMass(d.Layout, socThreshER)
				return nil
			})
			if i == 0 || st.Seconds < best.Seconds {
				best = st
			}
		}
		return best, mass
	}
	core.SetOperatorBandWorkers(1)
	st, massSeq := bestMass()
	sb.Stages["mass_seq"] = st
	core.SetOperatorBandWorkers(0) // all cores
	sb.MassWorkers = core.ResolvedOperatorBandWorkers(d.Layout.NumRows)
	st, massBand := bestMass()
	sb.Stages["mass_band"] = st
	if massSeq != massBand {
		return nil, fmt.Errorf("band-parallel mass %d != sequential %d", massBand, massSeq)
	}
	if band := sb.Stages["mass_band"].Seconds; band > 0 {
		sb.MassSpeedup = sb.Stages["mass_seq"].Seconds / band
	}
	return sb, nil
}

// fmtBytes renders a byte count human-readably for the progress line.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
