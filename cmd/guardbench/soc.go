package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sta"
)

// SoCStage is one SoC pipeline stage: wall time plus bytes allocated while
// it ran. Allocation volume is the memory gate for the streaming paths — a
// change that regresses the codec back to whole-library buffering shows up
// here long before it shows up in wall time.
type SoCStage struct {
	Seconds    float64 `json:"seconds"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// SoCBench is the measured result for one SoC-scale design. The pipeline is
// generate -> streaming export -> streaming import -> operator-stage mass
// (sequential, then band-parallel) -> full harden. The harden is the real
// thing at 10^5+ cells: harden_baseline pattern-routes every net and runs
// the levelized STA once (building the timing graph that every later
// analysis reuses), then harden_eco applies a tile-local ECO — a bounded
// set of cell relocations inside one logic tile — evaluated strictly as a
// delta: warm-started routing replays every untouched net from the
// baseline donor and delta STA re-propagates only the changed-net cones,
// never the whole graph (HardenDelta records the proof: sta_delta > 0,
// sta_full == 0, and cone sizes that are tile-bounded, not design-bounded).
type SoCBench struct {
	Design   string `json:"design"`
	Cells    int    `json:"cells"`
	GDSBytes int64  `json:"gds_bytes"`
	// MassWorkers is how many band workers the parallel mass stage resolved
	// to on this machine; 1 means mass_band degenerated to the sequential
	// path (single-CPU runner) and MassSpeedup is just run-to-run noise.
	MassWorkers int                 `json:"mass_workers"`
	MassSpeedup float64             `json:"mass_speedup"`
	Stages      map[string]SoCStage `json:"stages"`
	// HardenDelta is what the harden_eco delta evaluation reused: warm vs
	// cold routes, per-net replay counts, and delta vs full STA runs with
	// their cone sizes. Informational for -compare (never gated), but
	// benchSoC itself fails if the harden fell back to a whole-graph STA.
	HardenDelta *core.DeltaStats `json:"harden_delta,omitempty"`
}

// socThreshER is the exploitable-region threshold used for the mass stages;
// it matches the core package's default hardening parameters.
const socThreshER = 20

// measureSoC runs fn and returns its wall time and allocation volume
// (MemStats.TotalAlloc delta — cumulative, unaffected by GC timing).
func measureSoC(fn func() error) (SoCStage, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := fn()
	secs := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	return SoCStage{Seconds: secs, AllocBytes: m1.TotalAlloc - m0.TotalAlloc}, err
}

// benchSoC measures one SoC-scale design through the streaming pipeline.
func benchSoC(name string) (*SoCBench, error) {
	sb := &SoCBench{Design: name, Stages: map[string]SoCStage{}}

	var d *benchdesigns.SoCDesign
	st, err := measureSoC(func() error {
		var err error
		d, err = benchdesigns.BuildSoC(name)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	sb.Stages["generate"] = st
	sb.Cells = d.Cells
	if err := benchSoCPipeline(d, sb); err != nil {
		return nil, err
	}
	return sb, nil
}

// benchSoCPipeline runs the already-generated design through the measured
// stages: streaming export/import, the mass scans, and the full harden. It
// is separate from benchSoC so the smoke test can drive a scaled-down
// stamped design through the identical pipeline.
func benchSoCPipeline(d *benchdesigns.SoCDesign, sb *SoCBench) error {
	dir, err := os.MkdirTemp("", "guardbench-soc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, d.Spec.Name+".gds")

	st, err := measureSoC(func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		if err := gdsii.StreamLayoutTiles(w, d.Layout, nil, d.Grid()); err != nil {
			return err
		}
		return w.Flush()
	})
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	sb.Stages["export"] = st
	if fi, err := os.Stat(path); err == nil {
		sb.GDSBytes = fi.Size()
	}

	st, err = measureSoC(func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, _, err = gdsii.StreamStats(bufio.NewReader(f))
		return err
	})
	if err != nil {
		return fmt.Errorf("import: %w", err)
	}
	sb.Stages["import"] = st

	// Best of three for the mass stages: a single 50ms run jitters badly
	// with GC timing, and the baseline must be stable enough to gate on.
	bestMass := func() (SoCStage, int) {
		best, mass := SoCStage{}, 0
		for i := 0; i < 3; i++ {
			runtime.GC() // don't bill one iteration for another's garbage
			st, _ := measureSoC(func() error {
				mass = core.ExploitableFreeMass(d.Layout, socThreshER)
				return nil
			})
			if i == 0 || st.Seconds < best.Seconds {
				best = st
			}
		}
		return best, mass
	}
	core.SetOperatorBandWorkers(1)
	st, massSeq := bestMass()
	sb.Stages["mass_seq"] = st
	core.SetOperatorBandWorkers(0) // all cores
	sb.MassWorkers = core.ResolvedOperatorBandWorkers(d.Layout.NumRows)
	st, massBand := bestMass()
	sb.Stages["mass_band"] = st
	if massSeq != massBand {
		return fmt.Errorf("band-parallel mass %d != sequential %d", massBand, massSeq)
	}
	if band := sb.Stages["mass_band"].Seconds; band > 0 {
		sb.MassSpeedup = sb.Stages["mass_seq"].Seconds / band
	}

	// Full harden: baseline route + levelized STA over the whole design
	// (EvalBaseline builds the timing graph every later analysis reuses),
	// then a tile-local ECO evaluated strictly as a delta against it.
	var base *core.Baseline
	st, err = measureSoC(func() error {
		var err error
		base, err = core.EvalBaseline(d.Layout, core.FlowConfig{
			Constraints: d.Cons,
			Activity:    d.Spec.Tile.Activity,
			Seed:        1,
		})
		return err
	})
	if err != nil {
		return fmt.Errorf("harden baseline: %w", err)
	}
	sb.Stages["harden_baseline"] = st

	st, err = measureSoC(func() error { return socTileECO(d, base, sb) })
	if err != nil {
		return fmt.Errorf("harden eco: %w", err)
	}
	sb.Stages["harden_eco"] = st
	return nil
}

// socECOMoves bounds how many cells the tile-local ECO relocates. Small on
// purpose: the stage exists to show that a bounded local change costs a
// bounded re-analysis, independent of design size.
const socECOMoves = 48

// socECOMaxFanout is the largest net fanout a relocated cell may touch;
// cells on wider nets (clock trees) stay put so the change region stays
// tile-sized.
const socECOMaxFanout = 64

// socTileECO applies a tile-local ECO to a clone of the hardened baseline's
// layout — relocating up to socECOMoves movable cells inside one mid-die
// logic tile — and evaluates it strictly through the delta path: route.Warm
// replays every untouched net from the baseline donor and sta.AnalyzeDelta
// re-propagates only the changed-net cones. Either path declining is a hard
// failure, because at SoC scale falling back to cold route + whole-graph
// STA is exactly the regression this benchmark exists to catch.
func socTileECO(d *benchdesigns.SoCDesign, base *core.Baseline, sb *SoCBench) error {
	l := base.Layout.Clone()
	prefix := fmt.Sprintf("t%02d_%02d/", d.Spec.TilesY/2, d.Spec.TilesX/2)
	dirty := make([]bool, len(l.Netlist.Nets))
	moved := 0
	for _, in := range l.Netlist.Insts {
		if moved >= socECOMoves {
			break
		}
		if in.Fixed || !strings.HasPrefix(in.Name, prefix) {
			continue
		}
		// Keep off die-spanning nets (clock trees): a moved terminal on one
		// dirties the whole net, and its rerouted old+new segments would
		// grow the warm router's change region to the full die — promoting
		// every net that crosses it and defeating the tile-local replay.
		huge := false
		for _, c := range in.Conns {
			if c.Net.NumTerms() > socECOMaxFanout {
				huge = true
				break
			}
		}
		if huge {
			continue
		}
		from := l.PlacementOf(in)
		if !from.Placed {
			continue
		}
		// Relocate to the nearest free run within two rows: ECO operators
		// move cells locally, which is what keeps the change region small.
		w := in.Master.WidthSites
		row, site := -1, -1
		for dr := -2; dr <= 2 && site < 0; dr++ {
			r := from.Row + dr
			if r < 0 || r >= l.NumRows {
				continue
			}
			for _, run := range l.FreeRuns(r) {
				if run.Len >= w && (r != from.Row || run.Start != from.Site) {
					row, site = r, run.Start
					break
				}
			}
		}
		if site < 0 {
			continue
		}
		l.Unplace(in)
		if err := l.Place(in, row, site); err != nil {
			return fmt.Errorf("re-place %s: %w", in.Name, err)
		}
		for _, c := range in.Conns {
			dirty[c.Net.ID] = true
		}
		moved++
	}
	if moved == 0 {
		return fmt.Errorf("no movable cells in tile %s", prefix)
	}

	geo := route.BuildGeometry(l)
	wres, wst, err := route.Warm(l, base.Config.RouteOpts, geo, base.Routes, dirty)
	if err != nil {
		return fmt.Errorf("warm route: %w", err)
	}
	if wres == nil {
		return fmt.Errorf("warm route declined (%s): baseline is not a zero-victim donor", wst.Decline)
	}
	// The STA change mask is the warm route's ChangedNets plus the dirty
	// nets themselves — a moved cell shifts a net's HPWL-estimated RC even
	// when its route record is nil in both runs.
	changed := wst.ChangedNets
	for id, dt := range dirty {
		if dt {
			changed[id] = true
		}
	}
	tres, tds, err := sta.AnalyzeDelta(l,
		sta.Options{Constraints: base.Config.Constraints, Routes: wres},
		base.Timing, changed)
	if err != nil {
		return fmt.Errorf("delta STA: %w", err)
	}
	if tres == nil {
		return fmt.Errorf("delta STA declined: baseline timing carries no reusable graph")
	}
	sb.HardenDelta = &core.DeltaStats{
		RoutesWarm:   1,
		NetsReplayed: wst.Replayed,
		NetsRerouted: wst.Rerouted,
		StaDelta:     1,
		StaConeInsts: tds.ConeInsts,
		StaConeNets:  tds.ConeNets,
	}
	return nil
}

// fmtBytes renders a byte count human-readably for the progress line.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
