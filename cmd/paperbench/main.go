// Command paperbench regenerates the paper's evaluation tables and figures
// on the built-in benchmark suite.
//
// Usage:
//
//	paperbench -experiment fig4|fig5|table1|table2|runtime|ablations|all \
//	           [-quick] [-seed N] [-designs AES_1,MISTY] [-pop N] [-gens N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/experiments"
	"gdsiiguard/internal/opencell45"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig4, fig5, table1, table2, runtime, ablations, or all")
		quick      = flag.Bool("quick", false, "smaller GA budgets for a fast smoke run")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		designs    = flag.String("designs", "", "comma-separated design subset (default: full suite)")
		pop        = flag.Int("pop", 0, "GA population size override")
		gens       = flag.Int("gens", 0, "GA generation count override")
		par        = flag.Int("parallelism", 0, "worker bound (default NumCPU)")
		jsonOut    = flag.String("json", "", "also write suite results as JSON to this file (fig4/table2/suite/all)")
	)
	flag.Parse()

	opt := experiments.Options{
		Quick:       *quick,
		Seed:        *seed,
		GAPop:       *pop,
		GAGens:      *gens,
		Parallelism: *par,
	}
	if *designs != "" {
		opt.Designs = strings.Split(*designs, ",")
	}
	jsonPath = *jsonOut

	if err := run(*experiment, opt); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// jsonPath, when set, receives the suite results as JSON.
var jsonPath string

func writeJSON(suite *experiments.Suite) error {
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return suite.WriteJSON(f)
}

func run(experiment string, opt experiments.Options) error {
	switch experiment {
	case "table1":
		fmt.Print(experiments.Table1Report(opencell45.NumLayers))
		return nil
	case "fig4", "table2", "suite":
		suite, err := experiments.Run(opt)
		if err != nil {
			return err
		}
		if experiment == "fig4" {
			fmt.Print(suite.Fig4Report())
		} else {
			fmt.Print(suite.Table2Report())
		}
		return writeJSON(suite)
	case "fig5":
		names := opt.Designs
		if len(names) == 0 || (len(names) == len(benchdesigns.Names())) {
			names = experiments.Fig5Designs
		}
		for _, name := range names {
			pd, err := experiments.RunPareto(name, opt)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig5Report(pd))
		}
		return nil
	case "runtime":
		rc, err := experiments.RunRuntimeComparison("AES_2", opt)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RuntimeReport(rc))
		return nil
	case "ablations":
		return runAblations(opt)
	case "all":
		fmt.Print(experiments.Table1Report(opencell45.NumLayers))
		fmt.Println()
		suite, err := experiments.Run(opt)
		if err != nil {
			return err
		}
		fmt.Print(suite.Fig4Report())
		fmt.Println()
		fmt.Print(suite.Table2Report())
		fmt.Println()
		fmt.Print(suite.SummaryReport())
		fmt.Println()
		if err := writeJSON(suite); err != nil {
			return err
		}
		for _, name := range experiments.Fig5Designs {
			for _, d := range suite.Results {
				if d.Name != name || d.GALog == nil {
					continue
				}
				pd := &experiments.ParetoData{Design: name}
				for _, in := range d.GALog.Evaluations {
					o := in.Objectives()
					pd.Points = append(pd.Points, [2]float64{o[0], o[1]})
				}
				for _, in := range d.GALog.Front {
					o := in.Objectives()
					pd.Front = append(pd.Front, [2]float64{o[0], o[1]})
				}
				fmt.Println(experiments.Fig5Report(pd))
			}
		}
		rc, err := experiments.RunRuntimeComparison("AES_2", opt)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RuntimeReport(rc))
		fmt.Println()
		return runAblations(opt)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func runAblations(opt experiments.Options) error {
	var opRows []*experiments.OperatorAblation
	for _, name := range []string{"Camellia", "MISTY", "CAST", "SEED"} {
		r, err := experiments.RunOperatorAblation(name, opt.Seed)
		if err != nil {
			return err
		}
		opRows = append(opRows, r)
	}
	fmt.Println(experiments.OperatorAblationReport(opRows))

	var rwsRows []*experiments.RWSAblation
	for _, name := range []string{"AES_1", "Camellia", "SPARX"} {
		r, err := experiments.RunRWSAblation(name, opt.Seed)
		if err != nil {
			return err
		}
		rwsRows = append(rwsRows, r)
	}
	fmt.Println(experiments.RWSAblationReport(rwsRows))

	sa, err := experiments.RunSearchAblation("AES_1", opt)
	if err != nil {
		return err
	}
	fmt.Println(experiments.SearchAblationReport(sa))

	var diceRows []*experiments.DiceAblation
	for _, name := range []string{"Camellia", "SEED"} {
		r, err := experiments.RunDiceAblation(name, opt.Seed)
		if err != nil {
			return err
		}
		diceRows = append(diceRows, r)
	}
	fmt.Println(experiments.DiceAblationReport(diceRows))
	return nil
}
