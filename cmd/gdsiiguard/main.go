// Command gdsiiguard hardens a physical layout against fabrication-time
// Trojan insertion: it runs the GDSII-Guard ECO flow (optionally the full
// NSGA-II exploration) on a built-in benchmark design or on a DEF file, and
// writes the hardened layout as DEF and/or GDSII.
//
// Usage:
//
//	gdsiiguard -design AES_1 [-explore] [-out hardened.def] [-gds out.gds]
//	gdsiiguard -def layout.def -clock-ps 2000 -assets key_reg_0,key_reg_1 ...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/experiments"
	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/sdc"
)

func main() {
	var (
		design  = flag.String("design", "", "built-in benchmark design name (see -list)")
		defIn   = flag.String("def", "", "input DEF file (alternative to -design)")
		clockPS = flag.Float64("clock-ps", 0, "clock period in ps (required with -def)")
		assets  = flag.String("assets", "", "comma-separated security-critical instance names (with -def)")
		explore = flag.Bool("explore", false, "run the NSGA-II exploration and pick the knee solution")
		op      = flag.String("op", "CS", "operator for a single run: CS or LDA")
		outDEF  = flag.String("out", "", "write the hardened layout as DEF")
		outGDS  = flag.String("gds", "", "write the hardened layout as GDSII")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		list    = flag.Bool("list", false, "list built-in designs and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range benchdesigns.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*design, *defIn, *clockPS, *assets, *explore, *op, *outDEF, *outGDS, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gdsiiguard:", err)
		os.Exit(1)
	}
}

func run(design, defIn string, clockPS float64, assets string, explore bool, op, outDEF, outGDS string, seed int64) error {
	var (
		l    *layout.Layout
		cons *sdc.Constraints
		act  float64 = 0.15
	)
	switch {
	case design != "":
		d, err := benchdesigns.Build(design)
		if err != nil {
			return err
		}
		l, cons, act = d.Layout, d.Cons, d.Spec.Activity
	case defIn != "":
		f, err := os.Open(defIn)
		if err != nil {
			return err
		}
		defer f.Close()
		l, err = layout.ReadDEF(f, opencell45.MustLoad())
		if err != nil {
			return err
		}
		if clockPS <= 0 {
			return fmt.Errorf("-clock-ps is required with -def")
		}
		cons = &sdc.Constraints{Clocks: []sdc.Clock{{Name: "clk", Port: "clk", PeriodPS: clockPS}}}
		if assets != "" {
			if _, err := l.Netlist.MarkCritical(strings.Split(assets, ",")); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("one of -design or -def is required (try -list)")
	}

	base, err := core.EvalBaseline(l, core.FlowConfig{Constraints: cons, Activity: act, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("baseline: ERsites=%d ERtracks=%.0f TNS=%.1fps power=%.3fmW DRC=%d\n",
		base.Metrics.ERSites, base.Metrics.ERTracks, base.Metrics.TNS,
		base.Metrics.PowerMW, base.Metrics.DRC)

	var result *core.Result
	if explore {
		log, err := nsga2.Optimize(base, nsga2.Options{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("explored %d configurations, %d on the Pareto front\n",
			len(log.Evaluations), len(log.Front))
		if n := len(log.Failures); n > 0 {
			fmt.Printf("degraded: %d evaluations failed and were marked infeasible\n", n)
		}
		sel := experiments.SelectKnee(log.Front)
		if sel == nil {
			return fmt.Errorf("no feasible Pareto solution found")
		}
		fmt.Printf("selected knee: %s\n", sel.Params.Key())
		result, err = core.Run(base, sel.Params)
		if err != nil {
			return err
		}
	} else {
		p := core.DefaultParams(l.Lib().NumLayers())
		if strings.EqualFold(op, "LDA") {
			p.Op = core.LDA
			p.LDAGridN = 8
			p.LDAIters = 2
		}
		var err error
		result, err = core.Run(base, p)
		if err != nil {
			return err
		}
	}

	m := result.Metrics
	fmt.Printf("hardened: security=%.4f ERsites=%d ERtracks=%.0f TNS=%.1fps power=%.3fmW DRC=%d (runtime %s)\n",
		m.Security, m.ERSites, m.ERTracks, m.TNS, m.PowerMW, m.DRC, m.Runtime.Round(1e7))

	if outDEF != "" {
		f, err := os.Create(outDEF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := layout.WriteDEF(f, result.Layout); err != nil {
			return err
		}
		fmt.Println("wrote", outDEF)
	}
	if outGDS != "" {
		f, err := os.Create(outGDS)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		if err := gdsii.StreamLayout(bw, result.Layout, result.Routes.WireSource(result.Layout)); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fmt.Println("wrote", outGDS)
	}
	return nil
}
