module gdsiiguard

go 1.22
