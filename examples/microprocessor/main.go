// Microprocessor hardening with timing-security trade-off exploration: the
// openMSP430_2 design carries baseline negative slack, so security measures
// must be weighed against timing — the regime the paper's multi-objective
// optimizer targets. This example contrasts the two operators directly and
// then explores the Pareto front.
//
//	go run ./examples/microprocessor
package main

import (
	"fmt"
	"log"

	guard "gdsiiguard"
)

func main() {
	design, err := guard.LoadBenchmark("openMSP430_2")
	if err != nil {
		log.Fatal(err)
	}
	base := design.Baseline()
	fmt.Printf("openMSP430_2 baseline: TNS %.1f ps (timing-tight), %d exploitable sites\n\n",
		base.TNS, base.ERSites)

	// Operator face-off (§III-B): Cell Shift compacts aggressively; Local
	// Density Adjustment moves less and protects fragile timing.
	cs, err := design.Harden(&guard.FlowParams{Op: guard.CellShift})
	if err != nil {
		log.Fatal(err)
	}
	lda, err := design.Harden(&guard.FlowParams{Op: guard.LocalDensityAdjust, LDAGridN: 8, LDAIters: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10s %12s %6s\n", "operator", "security", "TNS (ps)", "DRC")
	fmt.Printf("%-22s %10.4f %12.1f %6d\n", "Cell Shift", cs.Metrics.Security, cs.Metrics.TNS, cs.Metrics.DRC)
	fmt.Printf("%-22s %10.4f %12.1f %6d\n\n", "Local Density Adjust", lda.Metrics.Security, lda.Metrics.TNS, lda.Metrics.DRC)

	// Multi-objective exploration (§III-D): NSGA-II over the Table I
	// parameter space, yielding the security-timing Pareto front.
	ex, err := design.Explore(guard.ExploreOptions{PopSize: 10, Generations: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d configurations; Pareto front:\n", ex.Evaluations)
	for i, p := range ex.Front {
		marker := " "
		if i == ex.Knee {
			marker = "*" // knee point: the balanced pick
		}
		fmt.Printf(" %s security=%.4f  TNS=%8.1f ps  op=%s\n",
			marker, p.Metrics.Security, p.Metrics.TNS, p.Params.Op)
	}
}
