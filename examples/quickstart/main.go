// Quickstart: load a benchmark design, inspect its Trojan-insertion risk,
// harden it with the default GDSII-Guard flow, and compare the metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	guard "gdsiiguard"
)

func main() {
	// Camellia is one of the paper's crypto-core benchmarks: a 128-bit
	// block cipher whose key register bank and key-control logic are the
	// security-critical assets.
	design, err := guard.LoadBenchmark("Camellia")
	if err != nil {
		log.Fatal(err)
	}

	base := design.Baseline()
	fmt.Printf("design %s: %d security-critical cells\n", design.Name(), design.Assets())
	fmt.Printf("baseline risk: %d exploitable-region sites, %.0f free routing tracks\n",
		base.ERSites, base.ERTracks)
	fmt.Printf("baseline timing: TNS %.1f ps, power %.3f mW, %d DRC violations\n\n",
		base.TNS, base.PowerMW, base.DRC)

	// Apply the flow with its default configuration: the Cell Shift
	// operator with unscaled routing widths.
	hardened, err := design.Harden(nil)
	if err != nil {
		log.Fatal(err)
	}
	m := hardened.Metrics
	fmt.Printf("after GDSII-Guard (%s):\n", m.Runtime.Round(1e7))
	fmt.Printf("  security score      %.4f (baseline = 1.0, lower is better)\n", m.Security)
	fmt.Printf("  exploitable sites   %d -> %d (%.1f%% eliminated)\n",
		base.ERSites, m.ERSites, 100*(1-float64(m.ERSites)/float64(base.ERSites)))
	fmt.Printf("  TNS                 %.1f -> %.1f ps\n", base.TNS, m.TNS)
	fmt.Printf("  power               %.3f -> %.3f mW (%.1f%%)\n",
		base.PowerMW, m.PowerMW, 100*(m.PowerMW/base.PowerMW-1))
	fmt.Printf("  DRC violations      %d -> %d\n", base.DRC, m.DRC)

	// Play the adversary: attempt an A2-style Trojan insertion on both
	// layouts (the paper's threat model, from the other side).
	before, err := design.SimulateAttack()
	if err != nil {
		log.Fatal(err)
	}
	after, err := hardened.SimulateAttack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if before.Inserted {
		fmt.Printf("attack on baseline: SUCCEEDS — taps %s over %.1f µm, %.0f ps slack to spare\n",
			before.Victim, before.TapDistUM, before.SlackAfterPS)
	} else {
		fmt.Printf("attack on baseline: fails (%s)\n", before.Reason)
	}
	if after.Inserted {
		fmt.Printf("attack on hardened: SUCCEEDS — taps %s over %.1f µm\n", after.Victim, after.TapDistUM)
	} else {
		fmt.Printf("attack on hardened: BLOCKED (%s)\n", after.Reason)
	}
}
