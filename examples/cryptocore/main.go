// Crypto-core tapeout hardening: the paper's motivating workload. An AES
// core's finalized layout is hardened before the GDSII is sent to the
// untrusted foundry; the hardened design is exported as binary GDSII and
// verified by reading the stream back.
//
//	go run ./examples/cryptocore
package main

import (
	"bytes"
	"fmt"
	"log"

	guard "gdsiiguard"
	"gdsiiguard/internal/gdsii"
)

func main() {
	design, err := guard.LoadBenchmark("AES_1")
	if err != nil {
		log.Fatal(err)
	}
	base := design.Baseline()
	fmt.Printf("AES_1 before tapeout: %d exploitable sites near the %d key cells\n",
		base.ERSites, design.Assets())

	// Harden with the Cell Shift operator, then again with Routing Width
	// Scaling added on metal2/3 — the knob that trades routing-track
	// security against congestion (DRC) on a busy design like AES.
	hardened, err := design.Harden(&guard.FlowParams{Op: guard.CellShift})
	if err != nil {
		log.Fatal(err)
	}
	scale := make([]float64, 10)
	for i := range scale {
		scale[i] = 1.0
	}
	scale[1], scale[2] = 1.2, 1.2
	withRWS, err := design.Harden(&guard.FlowParams{Op: guard.CellShift, ScaleM: scale})
	if err != nil {
		log.Fatal(err)
	}
	m := hardened.Metrics
	fmt.Printf("hardened (CS):     security %.4f, free tracks %.0f, TNS %.1f ps, DRC %d\n",
		m.Security, m.ERTracks, m.TNS, m.DRC)
	r := withRWS.Metrics
	fmt.Printf("hardened (CS+RWS): security %.4f, free tracks %.0f, TNS %.1f ps, DRC %d\n",
		r.Security, r.ERTracks, r.TNS, r.DRC)
	fmt.Println("(RWS consumes leftover tracks; on a congested design it costs DRC — the GA arbitrates)")

	// Export the tapeout-ready stream.
	var stream bytes.Buffer
	if err := hardened.WriteGDSII(&stream); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GDSII stream: %d bytes\n", stream.Len())

	// The foundry-side view: parse the stream back and inventory it — the
	// same starting point the paper's threat model gives the attacker.
	lib, err := gdsii.Read(&stream)
	if err != nil {
		log.Fatal(err)
	}
	st := lib.Stats()
	fmt.Printf("parsed back: library %q, %d structures, %d cell refs, %d routed paths on layers %v\n",
		lib.Name, st.Structs, st.SRefs, st.Paths, st.LayersUsed)
}
