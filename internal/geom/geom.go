// Package geom provides the integer geometry primitives shared by every
// layout-facing subsystem: points, rectangles and half-open intervals in
// database units (DBU), plus Manhattan-distance helpers.
//
// All coordinates are int64 database units. The technology package defines
// the DBU scale (1000 DBU = 1 µm for the embedded OpenCell45 library).
package geom

import "fmt"

// Point is a location in database units.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absI64(p.X-q.X) + absI64(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with inclusive lower-left and exclusive
// upper-right corners: [Lo.X, Hi.X) × [Lo.Y, Hi.Y). A Rect with Hi ≤ Lo on
// either axis is empty.
type Rect struct {
	Lo, Hi Point
}

// R builds a Rect from coordinates, normalizing so Lo ≤ Hi.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// W returns the width of r (0 if empty).
func (r Rect) W() int64 {
	if r.Hi.X <= r.Lo.X {
		return 0
	}
	return r.Hi.X - r.Lo.X
}

// H returns the height of r (0 if empty).
func (r Rect) H() int64 {
	if r.Hi.Y <= r.Lo.Y {
		return 0
	}
	return r.Hi.Y - r.Lo.Y
}

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.W() == 0 || r.H() == 0 }

// Area returns the area of r in DBU².
func (r Rect) Area() int64 { return r.W() * r.H() }

// Center returns the center point of r (rounded down).
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (half-open semantics).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.Lo.X >= r.Lo.X && s.Hi.X <= r.Hi.X && s.Lo.Y >= r.Lo.Y && s.Hi.Y <= r.Hi.Y
}

// Intersects reports whether r and s share any area.
func (r Rect) Intersects(s Rect) bool {
	return !r.Intersect(s).Empty()
}

// Intersect returns the overlapping region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{maxI64(r.Lo.X, s.Lo.X), maxI64(r.Lo.Y, s.Lo.Y)},
		Point{minI64(r.Hi.X, s.Hi.X), minI64(r.Hi.Y, s.Hi.Y)},
	}
	if out.Hi.X < out.Lo.X {
		out.Hi.X = out.Lo.X
	}
	if out.Hi.Y < out.Lo.Y {
		out.Hi.Y = out.Lo.Y
	}
	return out
}

// Union returns the bounding box of r and s. An empty rect is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{minI64(r.Lo.X, s.Lo.X), minI64(r.Lo.Y, s.Lo.Y)},
		Point{maxI64(r.Hi.X, s.Hi.X), maxI64(r.Hi.Y, s.Hi.Y)},
	}
}

// Expand grows r by d on every side (shrinks when d < 0).
func (r Rect) Expand(d int64) Rect {
	out := Rect{Point{r.Lo.X - d, r.Lo.Y - d}, Point{r.Hi.X + d, r.Hi.Y + d}}
	if out.Hi.X < out.Lo.X || out.Hi.Y < out.Lo.Y {
		return Rect{out.Lo, out.Lo}
	}
	return out
}

// Translate returns r shifted by p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.Lo.Add(p), r.Hi.Add(p)}
}

// DistTo returns the Manhattan distance from p to the closest point of r
// (0 if p is inside r).
func (r Rect) DistTo(p Point) int64 {
	var dx, dy int64
	switch {
	case p.X < r.Lo.X:
		dx = r.Lo.X - p.X
	case p.X >= r.Hi.X:
		dx = p.X - r.Hi.X + 1
	}
	switch {
	case p.Y < r.Lo.Y:
		dy = r.Lo.Y - p.Y
	case p.Y >= r.Hi.Y:
		dy = p.Y - r.Hi.Y + 1
	}
	return dx + dy
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y)
}

// Interval is a half-open 1-D range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Iv builds an Interval, normalizing so Lo ≤ Hi.
func Iv(lo, hi int64) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

// Len returns the length of v (0 if empty).
func (v Interval) Len() int64 {
	if v.Hi <= v.Lo {
		return 0
	}
	return v.Hi - v.Lo
}

// Empty reports whether v has zero length.
func (v Interval) Empty() bool { return v.Hi <= v.Lo }

// Contains reports whether x lies in v.
func (v Interval) Contains(x int64) bool { return x >= v.Lo && x < v.Hi }

// Overlaps reports whether v and w share any length.
func (v Interval) Overlaps(w Interval) bool {
	return v.Lo < w.Hi && w.Lo < v.Hi
}

// Intersect returns the overlap of v and w (possibly empty, anchored at the
// max of the two Lo values).
func (v Interval) Intersect(w Interval) Interval {
	out := Interval{maxI64(v.Lo, w.Lo), minI64(v.Hi, w.Hi)}
	if out.Hi < out.Lo {
		out.Hi = out.Lo
	}
	return out
}

// String implements fmt.Stringer.
func (v Interval) String() string { return fmt.Sprintf("[%d,%d)", v.Lo, v.Hi) }

// HPWL returns the half-perimeter wirelength of the bounding box of pts.
// It returns 0 for fewer than two points.
func HPWL(pts []Point) int64 {
	if len(pts) < 2 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// BBox returns the bounding box of pts (empty Rect for no points).
func BBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0], pts[0].Add(Point{1, 1})}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.X+1 > r.Hi.X {
			r.Hi.X = p.X + 1
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.Y+1 > r.Hi.Y {
			r.Hi.Y = p.Y + 1
		}
	}
	return r
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
