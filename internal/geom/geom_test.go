package geom

import (
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d, want 6", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 0, 5)
	if r.Lo != Pt(0, 5) || r.Hi != Pt(10, 20) {
		t.Errorf("R did not normalize: %v", r)
	}
	if r.W() != 10 || r.H() != 15 {
		t.Errorf("W/H = %d/%d, want 10/15", r.W(), r.H())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %d, want 150", r.Area())
	}
}

func TestRectEmpty(t *testing.T) {
	if !(Rect{}).Empty() {
		t.Error("zero Rect should be empty")
	}
	if R(0, 0, 0, 10).Area() != 0 {
		t.Error("zero-width rect should have zero area")
	}
	if R(0, 0, 5, 5).Empty() {
		t.Error("5x5 rect should not be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 9), true},
		{Pt(10, 9), false}, // half-open on Hi
		{Pt(9, 10), false},
		{Pt(-1, 5), false},
		{Pt(5, 5), true},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.ContainsRect(R(2, 2, 8, 8)) {
		t.Error("inner rect should be contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect should contain itself")
	}
	if r.ContainsRect(R(5, 5, 11, 8)) {
		t.Error("overhanging rect should not be contained")
	}
	if !r.ContainsRect(Rect{}) {
		t.Error("empty rect is contained in anything")
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	c := R(10, 0, 20, 10) // touching edge: half-open, no overlap
	if a.Intersects(c) {
		t.Error("edge-touching rects should not intersect")
	}
}

func TestRectUnion(t *testing.T) {
	a := R(0, 0, 5, 5)
	b := R(10, 10, 20, 20)
	if got := a.Union(b); got != R(0, 0, 20, 20) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union b = %v, want %v", got, b)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(5, 5, 10, 10)
	if got := r.Expand(2); got != R(3, 3, 12, 12) {
		t.Errorf("Expand(2) = %v", got)
	}
	if got := r.Expand(-3); !got.Empty() {
		t.Errorf("over-shrunk rect should be empty, got %v", got)
	}
}

func TestRectDistTo(t *testing.T) {
	r := R(10, 10, 20, 20)
	if d := r.DistTo(Pt(15, 15)); d != 0 {
		t.Errorf("inside dist = %d, want 0", d)
	}
	if d := r.DistTo(Pt(5, 15)); d != 5 {
		t.Errorf("left dist = %d, want 5", d)
	}
	if d := r.DistTo(Pt(5, 5)); d != 10 {
		t.Errorf("corner dist = %d, want 10", d)
	}
	if d := r.DistTo(Pt(25, 15)); d != 6 {
		t.Errorf("right dist = %d, want 6 (half-open)", d)
	}
}

func TestInterval(t *testing.T) {
	v := Iv(10, 3)
	if v.Lo != 3 || v.Hi != 10 {
		t.Errorf("Iv did not normalize: %v", v)
	}
	if v.Len() != 7 {
		t.Errorf("Len = %d, want 7", v.Len())
	}
	if !v.Contains(3) || v.Contains(10) {
		t.Error("half-open containment broken")
	}
	w := Iv(8, 20)
	if !v.Overlaps(w) {
		t.Error("should overlap")
	}
	if got := v.Intersect(w); got != (Interval{8, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if v.Overlaps(Iv(10, 12)) {
		t.Error("touching intervals should not overlap")
	}
}

func TestHPWL(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 5), Pt(3, 20)}
	if got := HPWL(pts); got != 30 {
		t.Errorf("HPWL = %d, want 30", got)
	}
	if HPWL(pts[:1]) != 0 {
		t.Error("single-point HPWL should be 0")
	}
	if HPWL(nil) != 0 {
		t.Error("nil HPWL should be 0")
	}
}

func TestBBox(t *testing.T) {
	pts := []Point{Pt(2, 3), Pt(-1, 8), Pt(5, 0)}
	got := BBox(pts)
	want := R(-1, 0, 6, 9) // half-open: Hi is max+1
	if got != want {
		t.Errorf("BBox = %v, want %v", got, want)
	}
	if !(BBox(nil)).Empty() {
		t.Error("BBox of nothing should be empty")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestQuickIntersectProperties(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab.Area() != ba.Area() {
			return false
		}
		if !ab.Empty() && (!a.ContainsRect(ab) || !b.ContainsRect(ab)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands.
func TestQuickUnionContains(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Manhattan distance is a metric (symmetry + triangle inequality).
func TestQuickManhattanMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a, b, c := Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by)), Pt(int64(cx), int64(cy))
		if a.ManhattanDist(b) != b.ManhattanDist(a) {
			return false
		}
		return a.ManhattanDist(c) <= a.ManhattanDist(b)+b.ManhattanDist(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HPWL is invariant under point permutation (reverse) and
// non-negative.
func TestQuickHPWLInvariance(t *testing.T) {
	f := func(xs, ys []int16) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Pt(int64(xs[i]), int64(ys[i]))
		}
		h := HPWL(pts)
		if h < 0 {
			return false
		}
		rev := make([]Point, n)
		for i := range pts {
			rev[n-1-i] = pts[i]
		}
		return HPWL(rev) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
