// Fuzz target for the LEF parser. External test package: opencell45
// (the seed-corpus source) itself imports lef.
package lef_test

import (
	"testing"

	"gdsiiguard/internal/lef"
	"gdsiiguard/internal/opencell45"
)

// FuzzParse asserts the LEF parser never panics: any input either parses
// into a library or returns an error.
func FuzzParse(f *testing.F) {
	f.Add(opencell45.LEFText())
	f.Add("")
	f.Add("VERSION 5.8 ;\nEND LIBRARY\n")
	f.Add("MACRO INV_X1\n  SIZE 0.76 BY 1.4 ;\nEND INV_X1\n")
	f.Add("LAYER metal1\n  TYPE ROUTING ;\nEND metal1")
	f.Add("MACRO broken\n  PIN A\n")      // unterminated blocks
	f.Add("SIZE nan BY -1e309 ;\x00\xff") // bad numbers, binary junk
	f.Fuzz(func(t *testing.T, s string) {
		lib, err := lef.ParseString(s)
		if err == nil && lib == nil {
			t.Error("ParseString returned nil library and nil error")
		}
	})
}
