package lef

import (
	"strings"
	"testing"

	"gdsiiguard/internal/tech"
)

const sampleLEF = `
# A comment line
VERSION 5.8 ;
BUSBITCHARS "[]" ;
DIVIDERCHAR "/" ;

UNITS
  DATABASE MICRONS 1000 ;
END UNITS

SITE FreePDK45_38x28
  CLASS CORE ;
  SYMMETRY Y ;
  SIZE 0.19 BY 1.4 ;
END FreePDK45_38x28

LAYER metal1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.19 ;
  WIDTH 0.07 ;
  SPACING 0.065 ;
  RESISTANCE RPERUM 0.00038 ;
  CAPACITANCE CPERUM 0.16 ;
END metal1

LAYER metal2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.19 ;
  WIDTH 0.07 ;
  SPACING 0.07 ;
  RESISTANCE RPERUM 0.00025 ;
  CAPACITANCE CPERUM 0.18 ;
END metal2

MACRO INV_X1
  CLASS CORE ;
  SIZE 0.38 BY 1.4 ;
  SITE FreePDK45_38x28 ;
  PIN A
    DIRECTION INPUT ;
  END A
  PIN ZN
    DIRECTION OUTPUT ;
  END ZN
END INV_X1

MACRO DFF_X1
  CLASS CORE ;
  SIZE 1.71 BY 1.4 ;
  PIN D
    DIRECTION INPUT ;
  END D
  PIN CK
    DIRECTION INPUT ;
    USE CLOCK ;
  END CK
  PIN Q
    DIRECTION OUTPUT ;
  END Q
END DFF_X1

MACRO FILLCELL_X4
  CLASS CORE SPACER ;
  SIZE 0.76 BY 1.4 ;
END FILLCELL_X4

MACRO TAPCELL
  CLASS CORE WELLTAP ;
  SIZE 0.38 BY 1.4 ;
END TAPCELL

END LIBRARY
`

func TestParseBasics(t *testing.T) {
	lib, err := ParseString(sampleLEF)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if lib.DBUPerMicron != 1000 {
		t.Errorf("DBUPerMicron = %d", lib.DBUPerMicron)
	}
	if lib.Site.Name != "FreePDK45_38x28" || lib.Site.Width != 190 || lib.Site.Height != 1400 {
		t.Errorf("Site = %+v", lib.Site)
	}
	if lib.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d", lib.NumLayers())
	}
	m1 := lib.Layer(1)
	if m1.Name != "metal1" || m1.Dir != tech.Horizontal || m1.Pitch != 190 ||
		m1.Width != 70 || m1.Spacing != 65 {
		t.Errorf("metal1 = %+v", m1)
	}
	if m1.RPerUM != 0.00038 || m1.CPerUM != 0.16 {
		t.Errorf("metal1 RC = %g/%g", m1.RPerUM, m1.CPerUM)
	}
	if lib.Layer(2).Dir != tech.Vertical {
		t.Error("metal2 should be vertical")
	}
}

func TestParseMacros(t *testing.T) {
	lib, err := ParseString(sampleLEF)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	inv := lib.Cell("INV_X1")
	if inv == nil {
		t.Fatal("INV_X1 missing")
	}
	if inv.WidthSites != 2 {
		t.Errorf("INV_X1 width = %d sites, want 2", inv.WidthSites)
	}
	if inv.Class != tech.Comb {
		t.Errorf("INV_X1 class = %v", inv.Class)
	}
	if p := inv.Pin("A"); p == nil || p.Dir != tech.Input {
		t.Errorf("INV_X1 pin A = %v", p)
	}
	if p := inv.Pin("ZN"); p == nil || p.Dir != tech.Output {
		t.Errorf("INV_X1 pin ZN = %v", p)
	}

	dff := lib.Cell("DFF_X1")
	if dff == nil {
		t.Fatal("DFF_X1 missing")
	}
	if dff.WidthSites != 9 {
		t.Errorf("DFF_X1 width = %d sites, want 9", dff.WidthSites)
	}
	ck := dff.Pin("CK")
	if ck == nil || !ck.IsClock {
		t.Errorf("DFF_X1 CK not marked clock: %v", ck)
	}

	fill := lib.Cell("FILLCELL_X4")
	if fill == nil || fill.Class != tech.Filler || fill.WidthSites != 4 {
		t.Errorf("FILLCELL_X4 = %+v", fill)
	}
	tap := lib.Cell("TAPCELL")
	if tap == nil || tap.Class != tech.Tap {
		t.Errorf("TAPCELL = %+v", tap)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"GARBAGE_TOKEN ;",
		"UNITS\n DATABASE FURLONGS 10 ;\nEND UNITS",
		"SITE s\n SIZE 0.19 NEAR 1.4 ;\nEND s", // missing BY
		"MACRO M\n PIN P\n  DIRECTION SIDEWAYS ;\n END P\nEND M",
		"SITE s\n SIZE 0.19 BY",
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	lib, err := ParseString(sampleLEF)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := WriteString(lib)
	lib2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-Parse of written LEF: %v\n%s", err, text)
	}
	if lib2.DBUPerMicron != lib.DBUPerMicron || lib2.Site != lib.Site {
		t.Error("units/site did not round-trip")
	}
	if lib2.NumLayers() != lib.NumLayers() {
		t.Fatalf("layers = %d vs %d", lib2.NumLayers(), lib.NumLayers())
	}
	for i := 1; i <= lib.NumLayers(); i++ {
		if *lib2.Layer(i) != *lib.Layer(i) {
			t.Errorf("layer %d: %+v vs %+v", i, lib2.Layer(i), lib.Layer(i))
		}
	}
	if lib2.NumCells() != lib.NumCells() {
		t.Fatalf("cells = %d vs %d", lib2.NumCells(), lib.NumCells())
	}
	for _, c := range lib.Cells() {
		c2 := lib2.Cell(c.Name)
		if c2 == nil {
			t.Fatalf("cell %s missing after round trip", c.Name)
		}
		if c2.Class != c.Class || c2.WidthSites != c.WidthSites || len(c2.Pins) != len(c.Pins) {
			t.Errorf("cell %s mismatch: %+v vs %+v", c.Name, c2, c)
		}
		for i := range c.Pins {
			if c.Pins[i].Name != c2.Pins[i].Name || c.Pins[i].Dir != c2.Pins[i].Dir ||
				c.Pins[i].IsClock != c2.Pins[i].IsClock {
				t.Errorf("cell %s pin %d mismatch", c.Name, i)
			}
		}
	}
}

func TestWidthRounding(t *testing.T) {
	src := `
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
SITE s
  SIZE 0.19 BY 1.4 ;
END s
MACRO ODD
  CLASS CORE ;
  SIZE 0.28 BY 1.4 ;
END ODD
MACRO TINY
  CLASS CORE ;
  SIZE 0.01 BY 1.4 ;
END TINY
END LIBRARY
`
	lib, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// 0.28/0.19 = 1.47 -> 1 site + remainder 90 >= 95? No: 90*2=180 < 190 -> 1.
	if got := lib.Cell("ODD").WidthSites; got != 1 {
		t.Errorf("ODD width = %d, want 1", got)
	}
	if got := lib.Cell("TINY").WidthSites; got != 1 {
		t.Errorf("TINY width = %d, want minimum 1", got)
	}
}

func TestSkipsUnknownBlocks(t *testing.T) {
	src := `
UNITS
  DATABASE MICRONS 2000 ;
END UNITS
VIA via1 DEFAULT
  LAYER metal1 ;
END via1
SITE s
  SIZE 0.19 BY 1.4 ;
END s
END LIBRARY
`
	lib, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse with VIA block: %v", err)
	}
	if lib.DBUPerMicron != 2000 || lib.Site.Name != "s" {
		t.Errorf("lib = %+v", lib)
	}
}

func TestCommentsAndQuotes(t *testing.T) {
	src := "UNITS\n DATABASE MICRONS 1000 ; # trailing comment\nEND UNITS\n" +
		"BUSBITCHARS \"[]\" ;\nEND LIBRARY\n"
	if _, err := ParseString(src); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Parse(strings.NewReader("")); err != nil {
		t.Fatalf("empty input should parse: %v", err)
	}
}
