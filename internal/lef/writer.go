package lef

import (
	"fmt"
	"io"
	"strings"

	"gdsiiguard/internal/tech"
)

// Write emits the library as LEF text that Parse round-trips: units, site,
// routing layers and macros with pin directions and uses.
func Write(w io.Writer, lib *tech.Library) error {
	var b strings.Builder
	b.WriteString("VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n")
	fmt.Fprintf(&b, "UNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", lib.DBUPerMicron)

	um := func(dbu int64) float64 { return lib.DBUToMicrons(dbu) }

	if lib.Site.Name != "" {
		fmt.Fprintf(&b, "SITE %s\n  CLASS CORE ;\n  SYMMETRY Y ;\n  SIZE %g BY %g ;\nEND %s\n\n",
			lib.Site.Name, um(lib.Site.Width), um(lib.Site.Height), lib.Site.Name)
	}

	for i := range lib.Layers {
		ly := &lib.Layers[i]
		fmt.Fprintf(&b, "LAYER %s\n  TYPE ROUTING ;\n  DIRECTION %s ;\n  PITCH %g ;\n  WIDTH %g ;\n  SPACING %g ;\n",
			ly.Name, ly.Dir, um(ly.Pitch), um(ly.Width), um(ly.Spacing))
		fmt.Fprintf(&b, "  RESISTANCE RPERUM %g ;\n  CAPACITANCE CPERUM %g ;\nEND %s\n\n",
			ly.RPerUM, ly.CPerUM, ly.Name)
	}

	for _, c := range lib.Cells() {
		class := "CORE"
		switch c.Class {
		case tech.Filler:
			class = "CORE SPACER"
		case tech.Tap:
			class = "CORE WELLTAP"
		}
		widthUM := um(int64(c.WidthSites) * lib.Site.Width)
		fmt.Fprintf(&b, "MACRO %s\n  CLASS %s ;\n  SIZE %g BY %g ;\n  SITE %s ;\n",
			c.Name, class, widthUM, um(lib.Site.Height), lib.Site.Name)
		for _, p := range c.Pins {
			dir := "INPUT"
			switch p.Dir {
			case tech.Output:
				dir = "OUTPUT"
			case tech.Inout:
				dir = "INOUT"
			}
			fmt.Fprintf(&b, "  PIN %s\n    DIRECTION %s ;\n", p.Name, dir)
			if p.IsClock {
				b.WriteString("    USE CLOCK ;\n")
			}
			fmt.Fprintf(&b, "  END %s\n", p.Name)
		}
		fmt.Fprintf(&b, "END %s\n\n", c.Name)
	}
	b.WriteString("END LIBRARY\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString renders the library as a LEF string.
func WriteString(lib *tech.Library) string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = Write(&b, lib)
	return b.String()
}
