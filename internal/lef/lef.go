// Package lef reads and writes the subset of the LEF (Library Exchange
// Format) language needed to describe a standard-cell technology: database
// units, the core SITE, ROUTING LAYERs with electrical properties, and MACRO
// definitions with pin directions and uses.
//
// Parsing produces a tech.Library with geometry and pin-direction data;
// Liberty data (package liberty) is merged on top to complete timing and
// power. The writer emits LEF that this parser round-trips exactly.
package lef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gdsiiguard/internal/tech"
)

// Parse reads LEF text and builds a technology library. Macro widths are
// converted to integer site counts; a macro whose width is not an exact
// multiple of the site width is rounded to the nearest site (minimum 1).
func Parse(r io.Reader) (*tech.Library, error) {
	p := &parser{sc: newScanner(r), lib: tech.NewLibrary("")}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.lib, nil
}

// ParseString is a convenience wrapper over Parse.
func ParseString(s string) (*tech.Library, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	sc  *scanner
	lib *tech.Library
}

func (p *parser) parse() error {
	for {
		tok, ok := p.sc.next()
		if !ok {
			return nil
		}
		switch strings.ToUpper(tok) {
		case "VERSION", "BUSBITCHARS", "DIVIDERCHAR":
			if err := p.skipStatement(); err != nil {
				return err
			}
		case "NAMESCASESENSITIVE", "MANUFACTURINGGRID", "CLEARANCEMEASURE":
			if err := p.skipStatement(); err != nil {
				return err
			}
		case "UNITS":
			if err := p.parseUnits(); err != nil {
				return err
			}
		case "SITE":
			if err := p.parseSite(); err != nil {
				return err
			}
		case "LAYER":
			if err := p.parseLayer(); err != nil {
				return err
			}
		case "MACRO":
			if err := p.parseMacro(); err != nil {
				return err
			}
		case "VIA", "VIARULE", "SPACING", "PROPERTYDEFINITIONS":
			if err := p.skipBlock(tok); err != nil {
				return err
			}
		case "END":
			// END LIBRARY or dangling END; consume optional name.
			p.sc.next()
			return nil
		default:
			return p.errf("unexpected token %q", tok)
		}
	}
}

func (p *parser) parseUnits() error {
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated UNITS")
		}
		switch strings.ToUpper(tok) {
		case "DATABASE":
			unit, err := p.word()
			if err != nil {
				return err
			}
			if strings.ToUpper(unit) != "MICRONS" {
				return p.errf("unsupported DATABASE unit %q", unit)
			}
			v, err := p.number()
			if err != nil {
				return err
			}
			p.lib.DBUPerMicron = int64(v)
			if err := p.expect(";"); err != nil {
				return err
			}
		case "END":
			if _, err := p.word(); err != nil { // UNITS
				return err
			}
			return nil
		default:
			if err := p.skipStatement(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) parseSite() error {
	name, err := p.word()
	if err != nil {
		return err
	}
	site := tech.Site{Name: name}
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated SITE %s", name)
		}
		switch strings.ToUpper(tok) {
		case "SIZE":
			w, h, err := p.sizePair()
			if err != nil {
				return err
			}
			site.Width = p.toDBU(w)
			site.Height = p.toDBU(h)
		case "CLASS", "SYMMETRY":
			if err := p.skipStatement(); err != nil {
				return err
			}
		case "END":
			if _, err := p.word(); err != nil {
				return err
			}
			p.lib.Site = site
			return nil
		default:
			return p.errf("unexpected token %q in SITE", tok)
		}
	}
}

func (p *parser) parseLayer() error {
	name, err := p.word()
	if err != nil {
		return err
	}
	layer := tech.Layer{Name: name, Index: p.lib.NumLayers() + 1}
	routing := false
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated LAYER %s", name)
		}
		switch strings.ToUpper(tok) {
		case "TYPE":
			t, err := p.word()
			if err != nil {
				return err
			}
			routing = strings.EqualFold(t, "ROUTING")
			if err := p.expect(";"); err != nil {
				return err
			}
		case "DIRECTION":
			d, err := p.word()
			if err != nil {
				return err
			}
			if strings.EqualFold(d, "VERTICAL") {
				layer.Dir = tech.Vertical
			} else {
				layer.Dir = tech.Horizontal
			}
			if err := p.expect(";"); err != nil {
				return err
			}
		case "PITCH":
			v, err := p.number()
			if err != nil {
				return err
			}
			layer.Pitch = p.toDBU(v)
			// Optional second value (PITCH x y) — keep the first.
			if err := p.finishNumericStatement(); err != nil {
				return err
			}
		case "WIDTH":
			v, err := p.number()
			if err != nil {
				return err
			}
			layer.Width = p.toDBU(v)
			if err := p.expect(";"); err != nil {
				return err
			}
		case "SPACING":
			v, err := p.number()
			if err != nil {
				return err
			}
			layer.Spacing = p.toDBU(v)
			if err := p.expect(";"); err != nil {
				return err
			}
		case "RESISTANCE":
			// RESISTANCE RPERUM <v> ; (per-micron form used by this library)
			// RESISTANCE RPERSQ <v> ; is accepted and stored as-is too.
			if _, err := p.word(); err != nil {
				return err
			}
			v, err := p.number()
			if err != nil {
				return err
			}
			layer.RPerUM = v
			if err := p.expect(";"); err != nil {
				return err
			}
		case "CAPACITANCE":
			if _, err := p.word(); err != nil { // CPERUM / CPERSQDIST
				return err
			}
			v, err := p.number()
			if err != nil {
				return err
			}
			layer.CPerUM = v
			if err := p.expect(";"); err != nil {
				return err
			}
		case "OFFSET", "AREA", "MINWIDTH", "THICKNESS", "HEIGHT", "EDGECAPACITANCE":
			if err := p.skipStatement(); err != nil {
				return err
			}
		case "END":
			if _, err := p.word(); err != nil {
				return err
			}
			if routing {
				p.lib.Layers = append(p.lib.Layers, layer)
			}
			return nil
		default:
			if err := p.skipStatement(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) parseMacro() error {
	name, err := p.word()
	if err != nil {
		return err
	}
	cell := &tech.Cell{Name: name, Class: tech.Comb}
	var widthUM float64
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated MACRO %s", name)
		}
		switch strings.ToUpper(tok) {
		case "CLASS":
			// CLASS CORE [SPACER|WELLTAP|ANTENNACELL] ;
			for {
				w, ok := p.sc.next()
				if !ok {
					return p.errf("unterminated CLASS in MACRO %s", name)
				}
				if w == ";" {
					break
				}
				switch strings.ToUpper(w) {
				case "SPACER":
					cell.Class = tech.Filler
				case "WELLTAP":
					cell.Class = tech.Tap
				}
			}
		case "SIZE":
			w, _, err := p.sizePair()
			if err != nil {
				return err
			}
			widthUM = w
		case "PIN":
			if err := p.parsePin(cell); err != nil {
				return err
			}
		case "FOREIGN", "ORIGIN", "SYMMETRY", "SITE":
			if err := p.skipStatement(); err != nil {
				return err
			}
		case "OBS":
			if err := p.skipBlock("OBS"); err != nil {
				return err
			}
		case "END":
			if _, err := p.word(); err != nil {
				return err
			}
			if p.lib.Site.Width > 0 {
				sites := int(p.toDBU(widthUM)/p.lib.Site.Width + 0)
				rem := p.toDBU(widthUM) % p.lib.Site.Width
				if rem*2 >= p.lib.Site.Width {
					sites++
				}
				if sites < 1 {
					sites = 1
				}
				cell.WidthSites = sites
			} else {
				cell.WidthSites = 1
			}
			p.lib.AddCell(cell)
			return nil
		default:
			return p.errf("unexpected token %q in MACRO %s", tok, name)
		}
	}
}

func (p *parser) parsePin(cell *tech.Cell) error {
	name, err := p.word()
	if err != nil {
		return err
	}
	pin := tech.Pin{Name: name}
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated PIN %s", name)
		}
		switch strings.ToUpper(tok) {
		case "DIRECTION":
			d, err := p.word()
			if err != nil {
				return err
			}
			switch strings.ToUpper(d) {
			case "INPUT":
				pin.Dir = tech.Input
			case "OUTPUT":
				pin.Dir = tech.Output
			case "INOUT":
				pin.Dir = tech.Inout
			default:
				return p.errf("bad pin direction %q", d)
			}
			if err := p.expect(";"); err != nil {
				return err
			}
		case "USE":
			u, err := p.word()
			if err != nil {
				return err
			}
			if strings.EqualFold(u, "CLOCK") {
				pin.IsClock = true
			}
			if err := p.expect(";"); err != nil {
				return err
			}
		case "PORT":
			if err := p.skipBlock("PORT"); err != nil {
				return err
			}
		case "SHAPE", "ANTENNAGATEAREA", "ANTENNADIFFAREA":
			if err := p.skipStatement(); err != nil {
				return err
			}
		case "END":
			if _, err := p.word(); err != nil {
				return err
			}
			cell.Pins = append(cell.Pins, pin)
			return nil
		default:
			return p.errf("unexpected token %q in PIN %s", tok, name)
		}
	}
}

// skipStatement consumes tokens up to and including the next ';'.
func (p *parser) skipStatement() error {
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated statement")
		}
		if tok == ";" {
			return nil
		}
	}
}

// finishNumericStatement consumes optional trailing numbers then ';'.
func (p *parser) finishNumericStatement() error {
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated statement")
		}
		if tok == ";" {
			return nil
		}
		if _, err := strconv.ParseFloat(tok, 64); err != nil {
			return p.errf("expected number or ';', got %q", tok)
		}
	}
}

// skipBlock consumes a LEF block up to its matching END, handling one level
// of statement structure (blocks we skip do not nest further in practice).
func (p *parser) skipBlock(kind string) error {
	depth := 1
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated %s block", kind)
		}
		u := strings.ToUpper(tok)
		if u == "END" {
			depth--
			if depth == 0 {
				// Optional trailing name; VIA/OBS blocks end with
				// "END" or "END name". Peek: if the next token is a
				// structural keyword, push it back.
				if w, ok := p.sc.peek(); ok && w != ";" && !isTopKeyword(w) {
					p.sc.next()
				}
				return nil
			}
		}
	}
}

func isTopKeyword(w string) bool {
	switch strings.ToUpper(w) {
	case "VERSION", "UNITS", "SITE", "LAYER", "MACRO", "VIA", "VIARULE", "SPACING", "END", "PIN", "OBS", "PROPERTYDEFINITIONS":
		return true
	}
	return false
}

func (p *parser) word() (string, error) {
	tok, ok := p.sc.next()
	if !ok {
		return "", p.errf("unexpected EOF")
	}
	return tok, nil
}

func (p *parser) number() (float64, error) {
	tok, ok := p.sc.next()
	if !ok {
		return 0, p.errf("unexpected EOF, wanted number")
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, p.errf("bad number %q", tok)
	}
	return v, nil
}

func (p *parser) expect(want string) error {
	tok, ok := p.sc.next()
	if !ok {
		return p.errf("unexpected EOF, wanted %q", want)
	}
	if tok != want {
		return p.errf("expected %q, got %q", want, tok)
	}
	return nil
}

// sizePair parses "<w> BY <h> ;".
func (p *parser) sizePair() (w, h float64, err error) {
	w, err = p.number()
	if err != nil {
		return
	}
	by, err2 := p.word()
	if err2 != nil {
		err = err2
		return
	}
	if !strings.EqualFold(by, "BY") {
		err = p.errf("expected BY, got %q", by)
		return
	}
	h, err = p.number()
	if err != nil {
		return
	}
	err = p.expect(";")
	return
}

func (p *parser) toDBU(um float64) int64 {
	dbu := p.lib.DBUPerMicron
	if dbu == 0 {
		dbu = 1000
	}
	return int64(um*float64(dbu) + 0.5)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("lef: line %d: %s", p.sc.line, fmt.Sprintf(format, args...))
}

// scanner tokenizes LEF: whitespace-separated words, with ';' always its own
// token and '#' comments stripped to end of line.
type scanner struct {
	br      *bufio.Reader
	line    int
	pending []string
}

func newScanner(r io.Reader) *scanner {
	return &scanner{br: bufio.NewReader(r), line: 1}
}

func (s *scanner) peek() (string, bool) {
	tok, ok := s.next()
	if !ok {
		return "", false
	}
	s.pending = append(s.pending, tok)
	return tok, true
}

func (s *scanner) next() (string, bool) {
	if n := len(s.pending); n > 0 {
		tok := s.pending[n-1]
		s.pending = s.pending[:n-1]
		return tok, true
	}
	var b strings.Builder
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			if b.Len() > 0 {
				return b.String(), true
			}
			return "", false
		}
		switch {
		case c == '#':
			// comment to EOL
			for {
				c2, err := s.br.ReadByte()
				if err != nil {
					break
				}
				if c2 == '\n' {
					s.line++
					break
				}
			}
			if b.Len() > 0 {
				return b.String(), true
			}
		case c == '\n':
			s.line++
			if b.Len() > 0 {
				return b.String(), true
			}
		case c == ' ' || c == '\t' || c == '\r':
			if b.Len() > 0 {
				return b.String(), true
			}
		case c == ';':
			if b.Len() > 0 {
				s.pending = append(s.pending, ";")
				return b.String(), true
			}
			return ";", true
		case c == '"':
			// quoted string: read to closing quote, return contents
			for {
				c2, err := s.br.ReadByte()
				if err != nil || c2 == '"' {
					break
				}
				if c2 == '\n' {
					s.line++
				}
				b.WriteByte(c2)
			}
			return b.String(), true
		default:
			b.WriteByte(c)
		}
	}
}
