package benchdesigns

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"gdsiiguard/internal/gdsii"
)

// smallSoC is a reduced stamped design for structural tests: 3×3 tiles of a
// small tile, two clock domains, one macro position.
func smallSoC(t *testing.T) *SoCDesign {
	t.Helper()
	spec := SoCSpec{
		Name: "soc_test", TilesX: 3, TilesY: 3, ClockDomains: 2, MacroEvery: 4,
		Tile: Spec{
			Name: "tiny_tile", StateBits: 32, KeyBits: 16, Depth: 3, Width: 24,
			Util: 0.55, TimingMargin: 1.2, Activity: 0.2, Seed: 42,
		},
	}
	d, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestSoCStructure(t *testing.T) {
	d := smallSoC(t)
	nl := d.Layout.Netlist

	// Macro at raster index 3 (position (1,0)): blockage plus fixed fill.
	if len(d.Layout.Blockages) != 2 { // indices 3 and 7
		t.Errorf("blockages = %d, want 2", len(d.Layout.Blockages))
	}
	if b := d.Layout.Blockages[0]; b.MaxDensity != 0 {
		t.Errorf("macro blockage density = %g, want 0", b.MaxDensity)
	}
	fill := nl.Instance("t01_00/fill_0")
	if fill == nil || !fill.Fixed {
		t.Error("macro filler missing or not fixed")
	}
	if !d.Layout.PlacementOf(fill).Placed {
		t.Error("macro filler unplaced")
	}

	// Clock domains: both ports exist and both nets have sinks.
	for _, c := range []string{"clk0", "clk1"} {
		n := nl.Net(c)
		if n == nil || !n.IsClock || len(n.Sinks) == 0 {
			t.Errorf("clock net %s missing or unused", c)
		}
	}
	if len(d.Cons.Clocks) != 2 {
		t.Fatalf("clocks = %d, want 2", len(d.Cons.Clocks))
	}
	if d.Cons.Clocks[1].PeriodPS <= d.Cons.Clocks[0].PeriodPS {
		t.Error("secondary domain not detuned")
	}

	// Stitching: tile (0,1) reads tile (0,0)'s outputs, so some t00_00 net
	// must sink into a t00_01 instance.
	stitched := false
	for _, n := range nl.Nets {
		if !strings.HasPrefix(n.Name, "t00_00/") {
			continue
		}
		for _, sk := range n.Sinks {
			if sk.Inst != nil && strings.HasPrefix(sk.Inst.Name, "t00_01/") {
				stitched = true
			}
		}
	}
	if !stitched {
		t.Error("tile (0,1) not stitched to tile (0,0)")
	}

	// Assets replicate per logic tile with the tile prefix.
	if len(d.Assets) == 0 {
		t.Fatal("no assets")
	}
	seenTiles := map[string]bool{}
	for _, a := range d.Assets {
		in := nl.Instance(a)
		if in == nil || !in.SecurityCritical {
			t.Fatalf("asset %s missing or not critical", a)
		}
		seenTiles[a[:strings.Index(a, "/")]] = true
	}
	if len(seenTiles) != 7 { // 9 tiles − 2 macros
		t.Errorf("asset tiles = %d, want 7", len(seenTiles))
	}

	if d.Cells != len(nl.Insts) {
		t.Errorf("Cells = %d, want %d", d.Cells, len(nl.Insts))
	}
	if got := d.Layout.NumRows; got != 3*d.TileRows {
		t.Errorf("NumRows = %d, want %d", got, 3*d.TileRows)
	}
}

func TestSoCExportRoundTrip(t *testing.T) {
	d := smallSoC(t)
	path := filepath.Join(t.TempDir(), "soc.gds")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if err := gdsii.StreamLayoutTiles(w, d.Layout, nil, d.Grid()); err != nil {
		t.Fatalf("StreamLayoutTiles: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	stats, name, err := gdsii.StreamStats(bufio.NewReader(rf))
	if err != nil {
		t.Fatalf("StreamStats: %v", err)
	}
	if name != "soc_test" {
		t.Errorf("library name = %q", name)
	}
	placed := 0
	for _, in := range d.Layout.Netlist.Insts {
		if d.Layout.PlacementOf(in).Placed {
			placed++
		}
	}
	// One SRef per placed cell plus one per non-empty tile (9 tiles, all
	// non-empty: macros hold fillers).
	if want := placed + 9; stats.SRefs != want {
		t.Errorf("SRefs = %d, want %d", stats.SRefs, want)
	}
	if want := len(d.Assets); stats.Texts != want {
		t.Errorf("Texts = %d, want %d", stats.Texts, want)
	}
}

// retainedHeap returns the live heap after a full collection.
func retainedHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestSoCStreamingMemoryBound is the SoC-scale acceptance test: a ≥10⁵-cell
// generated design exports and re-imports through the streaming codec with
// peak retained memory bounded by O(record), while the whole-library Read
// path — the only path the seed codec offered — retains the full library.
// The old path fails the streaming bound by more than an order of
// magnitude, which is exactly the contrast asserted here.
func TestSoCStreamingMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("SoC-scale design excluded from -short")
	}
	d, err := BuildSoC("SoC_100k")
	if err != nil {
		t.Fatalf("BuildSoC: %v", err)
	}
	if d.Cells < 100_000 {
		t.Fatalf("SoC_100k has %d cells, want ≥ 100000", d.Cells)
	}
	path := filepath.Join(t.TempDir(), "soc100k.gds")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if err := gdsii.StreamLayoutTiles(w, d.Layout, nil, d.Grid()); err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Streaming import: count elements, retain nothing.
	before := retainedHeap()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	elements := 0
	err = gdsii.ReadStream(bufio.NewReader(rf), gdsii.StreamHandler{
		OnElement: func(gdsii.Element) error { elements++; return nil },
	})
	rf.Close()
	if err != nil {
		t.Fatalf("streaming import: %v", err)
	}
	streamRetained := int64(retainedHeap()) - int64(before)
	if elements < d.Cells {
		t.Fatalf("streamed %d elements, want ≥ %d", elements, d.Cells)
	}

	// Whole-library import of the same file retains everything.
	before = retainedHeap()
	rf, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := gdsii.Read(bufio.NewReader(rf))
	rf.Close()
	if err != nil {
		t.Fatalf("whole-library import: %v", err)
	}
	wholeRetained := int64(retainedHeap()) - int64(before)
	runtime.KeepAlive(lib)

	const mb = 1 << 20
	t.Logf("cells=%d elements=%d streamRetained=%.1fMB wholeRetained=%.1fMB",
		d.Cells, elements, float64(streamRetained)/mb, float64(wholeRetained)/mb)
	if streamRetained > 4*mb {
		t.Errorf("streaming import retained %.1fMB, want ≤ 4MB (O(record) bound)",
			float64(streamRetained)/mb)
	}
	if wholeRetained < 8*mb {
		t.Errorf("whole-library import retained only %.1fMB — memory contrast lost",
			float64(wholeRetained)/mb)
	}
	if wholeRetained < 4*streamRetained+4*mb {
		t.Errorf("whole-library retained %.1fMB vs streaming %.1fMB: bound does not discriminate",
			float64(wholeRetained)/mb, float64(streamRetained)/mb)
	}
}

// TestSoCValidatesAndTopoOrders guards the stitched netlist against
// structural regressions: Validate already ran inside Build; topological
// order must cover all functional cells (no combinational loops through
// the stitching).
func TestSoCValidatesAndTopoOrders(t *testing.T) {
	d := smallSoC(t)
	order, err := d.Layout.Netlist.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	funcCount := len(d.Layout.Netlist.FunctionalInsts())
	if len(order) != funcCount {
		t.Errorf("topo order covers %d cells, want %d", len(order), funcCount)
	}
}
