package benchdesigns

import (
	"testing"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/sta"
)

func TestSuiteShape(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("suite has %d designs, want 12", len(names))
	}
	// Table II designs, exact set.
	want := []string{"AES_1", "AES_2", "AES_3", "Camellia", "CAST", "MISTY",
		"openMSP430_1", "openMSP430_2", "PRESENT", "SEED", "SPARX", "TDEA"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("design %d = %q, want %q", i, names[i], n)
		}
	}
	if _, err := SpecOf("AES_2"); err != nil {
		t.Error(err)
	}
	if _, err := SpecOf("DES"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestTightnessPattern(t *testing.T) {
	// The paper's Table II: exactly these designs carry baseline TNS < 0.
	tight := map[string]bool{
		"AES_1": true, "AES_2": true, "AES_3": true,
		"CAST": true, "openMSP430_2": true, "SEED": true,
	}
	for _, s := range Specs {
		if s.Tight() != tight[s.Name] {
			t.Errorf("%s: Tight()=%v, want %v", s.Name, s.Tight(), tight[s.Name])
		}
	}
}

func TestBuildSmallDesign(t *testing.T) {
	d, err := Build("PRESENT")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := d.Layout.Validate(); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	if err := d.Layout.Netlist.Validate(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	st := d.Layout.Netlist.Stats()
	if st.Critical == 0 || len(d.Assets) != st.Critical {
		t.Errorf("assets: list %d vs marked %d", len(d.Assets), st.Critical)
	}
	// PRESENT: 80 key bits plus key-control gates.
	if st.Critical < 80 {
		t.Errorf("critical = %d, want ≥ 80", st.Critical)
	}
	if d.Cons.PrimaryClock() == nil || d.Cons.PrimaryClock().PeriodPS <= 0 {
		t.Error("no calibrated clock")
	}
	// Loose design: timing closes at the calibrated clock.
	r, err := sta.Analyze(d.Layout, sta.Options{Constraints: d.Cons})
	if err != nil {
		t.Fatal(err)
	}
	if r.TNS < 0 {
		t.Errorf("PRESENT (loose) has TNS=%g at its calibrated clock", r.TNS)
	}
}

func TestBuildTightDesignHasNegativeSlack(t *testing.T) {
	d, err := Build("openMSP430_2")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Metrics.TNS >= 0 {
		t.Errorf("openMSP430_2 (tight) TNS=%g, want < 0", base.Metrics.TNS)
	}
	if base.Metrics.ERSites == 0 {
		t.Error("tight design has zero baseline exploitable sites")
	}
}

func TestBuildDeterministic(t *testing.T) {
	d1, err := Build("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	if d1.Cons.PrimaryClock().PeriodPS != d2.Cons.PrimaryClock().PeriodPS {
		t.Error("clock calibration nondeterministic")
	}
	for _, in := range d1.Layout.Netlist.Insts {
		in2 := d2.Layout.Netlist.Instance(in.Name)
		if in2 == nil {
			t.Fatalf("instance %s missing in rebuild", in.Name)
		}
		if d1.Layout.PlacementOf(in) != d2.Layout.PlacementOf(in2) {
			t.Fatalf("placement of %s differs", in.Name)
		}
	}
}

func TestNoDanglingFunctionalCells(t *testing.T) {
	d, err := Build("MISTY")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Layout.Netlist.Nets {
		if n.IsClock {
			continue
		}
		if n.HasDriver() && len(n.Sinks) == 0 {
			t.Errorf("net %s dangles", n.Name)
		}
	}
}

func TestUtilizationNearSpec(t *testing.T) {
	for _, name := range []string{"PRESENT", "CAST"} {
		d, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := SpecOf(name)
		got := d.Layout.Utilization()
		if got < spec.Util-0.1 || got > spec.Util+0.1 {
			t.Errorf("%s utilization %.2f, spec %.2f", name, got, spec.Util)
		}
	}
}
