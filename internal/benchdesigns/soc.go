package benchdesigns

import (
	"fmt"

	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/sdc"
)

// This file generates SoC-scale benchmark designs (10⁵–10⁶ cells) by tile
// stamping: one crypto-core tile (a regular Spec) is generated and placed
// once, then replicated across a TilesX × TilesY grid with name prefixes,
// stitched left-to-right through its primary inputs/outputs, clocked from
// multiple domains, and interrupted by hard-macro tiles (fixed filler
// regions under zero-density blockages). Building at this scale never runs
// global placement or routing on the full design — the tile's placement is
// stamped at row/site offsets — so a 10⁶-cell design generates in seconds.

// SoCSpec parameterizes one SoC-scale stamped design.
type SoCSpec struct {
	Name string
	// TilesX × TilesY is the stamping grid.
	TilesX, TilesY int
	// ClockDomains is the number of top-level clock ports clk0..clkN-1;
	// tile (tx,ty) clocks from domain (ty*TilesX+tx) mod ClockDomains.
	// STA uses the primary domain clk0; the others exist structurally.
	ClockDomains int
	// MacroEvery makes every MacroEvery-th tile position (raster order,
	// 1-based) a hard macro: a region of fixed filler cells under a
	// zero-density placement blockage. 0 disables macros. Tile position 0
	// is never a macro (it anchors the input stitching).
	MacroEvery int
	// ChannelRows and ChannelSites open an empty routing channel above and
	// to the right of every tile. The stitch and clock nets that cross
	// tile boundaries route through these channels instead of competing
	// with intra-tile wiring — at SoC scale that is what keeps the full
	// design first-pass routable (zero rip-up), which the warm-start /
	// delta-STA hardening path requires of its donor.
	ChannelRows, ChannelSites int
	// Tile is the per-tile generator spec.
	Tile Spec
}

// SoCSpecs are the SoC-scale presets: SoC_100k exceeds 10⁵ cells, SoC_1M
// approaches 10⁶. They are excluded from guardbench -short runs. Both are
// sized to route first-pass clean (zero rip-up victims): the full-harden
// stage of the SoC bench evaluates its ECO as a warm-start + delta-STA
// against the baseline route, and route.Warm requires a victimless donor.
var SoCSpecs = []SoCSpec{
	{Name: "SoC_100k", TilesX: 13, TilesY: 13, ClockDomains: 4, MacroEvery: 13,
		ChannelRows: 4, ChannelSites: 40, Tile: socTile(201)},
	{Name: "SoC_1M", TilesX: 38, TilesY: 38, ClockDomains: 8, MacroEvery: 19,
		ChannelRows: 4, ChannelSites: 40, Tile: socTile(202)},
}

// socTile is the stamped crypto-core tile: ~650 cells at a deliberately low
// utilization. ECO hardening needs headroom twice over — free sites for the
// operators to move cells into, and routing slack so the baseline routes
// without rip-up (the precondition for warm-started delta evaluation).
func socTile(seed int64) Spec {
	return Spec{
		Name: "soc_tile", StateBits: 128, KeyBits: 128, Depth: 3, Width: 80,
		Util: 0.25, TimingMargin: 1.10, Activity: 0.18, Seed: seed,
	}
}

// SoCSpecOf returns the named SoC spec.
func SoCSpecOf(name string) (SoCSpec, error) {
	for _, s := range SoCSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return SoCSpec{}, fmt.Errorf("benchdesigns: unknown SoC design %q", name)
}

// SoCNames returns the SoC-scale design names in suite order.
func SoCNames() []string {
	out := make([]string, len(SoCSpecs))
	for i, s := range SoCSpecs {
		out[i] = s.Name
	}
	return out
}

// SoCDesign is one generated, placed and constrained SoC-scale benchmark.
type SoCDesign struct {
	Spec   SoCSpec
	Layout *layout.Layout
	Cons   *sdc.Constraints
	// Assets are the names of the security-critical instances.
	Assets []string
	// TileRows × TileSites is the stamping stride in site coordinates —
	// tile footprint plus its routing channel; the tile grid anchors at
	// row 0, site 0.
	TileRows, TileSites int
	// Cells is the total instance count (including macro fillers).
	Cells int
}

// Grid returns the export hierarchy matching the stamping grid.
func (d *SoCDesign) Grid() gdsii.TileGrid {
	return gdsii.TileGrid{TileRows: d.TileRows, TileSites: d.TileSites}
}

// BuildSoC generates the named SoC-scale design.
func BuildSoC(name string) (*SoCDesign, error) {
	spec, err := SoCSpecOf(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// macroAt reports whether raster position idx is a hard-macro tile.
func (s SoCSpec) macroAt(idx int) bool {
	return s.MacroEvery > 0 && idx > 0 && (idx+1)%s.MacroEvery == 0
}

// Build generates the SoC design: one placed tile, then netlist replication,
// stitching, macro fill and placement stamping.
func (s SoCSpec) Build() (*SoCDesign, error) {
	if s.TilesX <= 0 || s.TilesY <= 0 {
		return nil, fmt.Errorf("benchdesigns: %s: non-positive tile grid", s.Name)
	}
	if s.ClockDomains <= 0 {
		s.ClockDomains = 1
	}
	tile, err := s.Tile.Build()
	if err != nil {
		return nil, fmt.Errorf("benchdesigns: %s tile: %w", s.Name, err)
	}
	tileNl := tile.Layout.Netlist
	tileRows, tileSites := tile.Layout.NumRows, tile.Layout.SitesPerRow

	// Classify the tile's boundary nets: port-driven input nets (stitched
	// or fed from SoC inputs) and the nets its output ports observe.
	inNet := map[string]*netlist.Net{}   // tile net name -> tile net, for in% ports
	outNets := map[string]*netlist.Net{} // out port name -> tile net
	var clkNetName string
	for _, n := range tileNl.Nets {
		if n.HasDriver() && n.Driver.IsPort() {
			if n.IsClock {
				clkNetName = n.Name
			} else {
				inNet[n.Name] = n
			}
		}
		for _, sk := range n.Sinks {
			if sk.IsPort() && sk.Port.Dir == netlist.Out && sk.Port.Name != "chk" {
				outNets[sk.Port.Name] = n
			}
		}
	}
	numIn := len(inNet)

	lib := tileNl.Lib
	nl := netlist.New(s.Name, lib)

	// Clock domains.
	clkNets := make([]*netlist.Net, s.ClockDomains)
	for d := 0; d < s.ClockDomains; d++ {
		p, err := nl.AddPort(fmt.Sprintf("clk%d", d), netlist.In)
		if err != nil {
			return nil, err
		}
		n, err := nl.AddNet(fmt.Sprintf("clk%d", d))
		if err != nil {
			return nil, err
		}
		n.IsClock = true
		if err := nl.ConnectPort(p, n); err != nil {
			return nil, err
		}
		clkNets[d] = n
	}

	// SoC primary inputs feed column-0 tiles and tiles shadowed by macros.
	socIn := make(map[string]*netlist.Net, numIn)
	for name := range inNet {
		p, err := nl.AddPort(name, netlist.In)
		if err != nil {
			return nil, err
		}
		n, err := nl.AddNet(name)
		if err != nil {
			return nil, err
		}
		if err := nl.ConnectPort(p, n); err != nil {
			return nil, err
		}
		socIn[name] = n
	}

	var assets []string
	prefix := func(ty, tx int) string { return fmt.Sprintf("t%02d_%02d/", ty, tx) }

	// Stamp logic tiles in raster order so left-neighbor nets exist when a
	// tile stitches to them.
	for ty := 0; ty < s.TilesY; ty++ {
		for tx := 0; tx < s.TilesX; tx++ {
			idx := ty*s.TilesX + tx
			if s.macroAt(idx) {
				continue
			}
			pfx := prefix(ty, tx)
			domain := idx % s.ClockDomains

			// Replicated internal nets.
			for _, n := range tileNl.Nets {
				if n.HasDriver() && n.Driver.IsPort() {
					continue // clock and in% nets are mapped, not copied
				}
				if _, err := nl.AddNet(pfx + n.Name); err != nil {
					return nil, err
				}
			}

			// Input stitching: interior tiles read the left logic
			// neighbor's output nets; column-0 tiles and tiles to the
			// right of a macro read the SoC inputs.
			feed := socIn
			if tx > 0 && !s.macroAt(idx-1) {
				leftPfx := prefix(ty, tx-1)
				feed = make(map[string]*netlist.Net, numIn)
				for inName := range inNet {
					// in%d reads the left tile's out%d net.
					outName := "out" + inName[2:]
					src, ok := outNets[outName]
					if !ok {
						return nil, fmt.Errorf("benchdesigns: %s: tile port %s has no matching %s", s.Name, inName, outName)
					}
					feed[inName] = nl.Net(leftPfx + src.Name)
				}
			}
			mapNet := func(n *netlist.Net) *netlist.Net {
				if n.Name == clkNetName {
					return clkNets[domain]
				}
				if n.HasDriver() && n.Driver.IsPort() {
					return feed[n.Name]
				}
				return nl.Net(pfx + n.Name)
			}

			for _, in := range tileNl.Insts {
				inst, err := nl.AddInstance(pfx+in.Name, in.Master.Name)
				if err != nil {
					return nil, err
				}
				if in.SecurityCritical {
					inst.SecurityCritical = true
					assets = append(assets, inst.Name)
				}
				for _, c := range in.Conns {
					if err := nl.Connect(inst, c.Pin, mapNet(c.Net)); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// SoC primary outputs observe the last logic tile of the first row.
	outTx := s.TilesX - 1
	for outTx > 0 && s.macroAt(outTx) {
		outTx--
	}
	for portName, n := range outNets {
		p, err := nl.AddPort(portName, netlist.Out)
		if err != nil {
			return nil, err
		}
		if err := nl.ConnectPort(p, nl.Net(prefix(0, outTx)+n.Name)); err != nil {
			return nil, err
		}
	}

	// Collect every sinkless net (per-tile chk roots, unread tile outputs
	// on the right edge) into one observed chk tree, then validate.
	if err := sweepDangling(nl); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("benchdesigns: %s: %w", s.Name, err)
	}

	// Stamp the tile placement; no global placement runs at SoC scale.
	// Each tile occupies the lower-left of its stride cell; the remaining
	// ChannelRows × ChannelSites band is the inter-tile routing channel.
	strideRows := tileRows + s.ChannelRows
	strideSites := tileSites + s.ChannelSites
	l, err := layout.New(nl, s.TilesY*strideRows, s.TilesX*strideSites)
	if err != nil {
		return nil, err
	}
	for ty := 0; ty < s.TilesY; ty++ {
		for tx := 0; tx < s.TilesX; tx++ {
			idx := ty*s.TilesX + tx
			rowOff, siteOff := ty*strideRows, tx*strideSites
			if s.macroAt(idx) {
				if err := fillMacroTile(l, ty, tx, rowOff, siteOff, tileRows, tileSites); err != nil {
					return nil, err
				}
				continue
			}
			pfx := prefix(ty, tx)
			for _, in := range tileNl.Insts {
				p := tile.Layout.PlacementOf(in)
				if !p.Placed {
					continue
				}
				inst := nl.Instance(pfx + in.Name)
				if err := l.Place(inst, rowOff+p.Row, siteOff+p.Site); err != nil {
					return nil, fmt.Errorf("benchdesigns: %s: stamping tile %d,%d: %w", s.Name, ty, tx, err)
				}
			}
		}
	}
	l.SpreadPorts()

	// Clock constraints reuse the tile-calibrated period (the stitch nets
	// add slack, not critical paths); secondary domains are slightly
	// detuned so the domains are distinguishable.
	base := tile.Cons.PrimaryClock().PeriodPS
	cons := &sdc.Constraints{}
	for d := 0; d < s.ClockDomains; d++ {
		cons.Clocks = append(cons.Clocks, sdc.Clock{
			Name:     fmt.Sprintf("clk%d", d),
			Port:     fmt.Sprintf("clk%d", d),
			PeriodPS: base * (1 + 0.05*float64(d)),
		})
	}

	return &SoCDesign{
		Spec:      s,
		Layout:    l,
		Cons:      cons,
		Assets:    assets,
		TileRows:  strideRows,
		TileSites: strideSites,
		Cells:     len(nl.Insts),
	}, nil
}

// fillMacroTile turns one tile region into a hard macro: every site is
// occupied by a fixed filler cell and the region carries a zero-density
// placement blockage, so no ECO operator moves cells into or out of it.
func fillMacroTile(l *layout.Layout, ty, tx, rowOff, siteOff, tileRows, tileSites int) error {
	nl := l.Netlist
	id := 0
	for r := 0; r < tileRows; r++ {
		site := 0
		for site < tileSites {
			w := widestFiller(tileSites - site)
			inst, err := nl.AddInstance(
				fmt.Sprintf("t%02d_%02d/fill_%d", ty, tx, id),
				fmt.Sprintf("FILLCELL_X%d", w),
			)
			if err != nil {
				return err
			}
			id++
			inst.Fixed = true
			if err := l.Place(inst, rowOff+r, siteOff+site); err != nil {
				return err
			}
			site += w
		}
	}
	l.AddBlockage(layout.Blockage{
		Row0: rowOff, Row1: rowOff + tileRows,
		Site0: siteOff, Site1: siteOff + tileSites,
		MaxDensity: 0,
	})
	return nil
}

// widestFiller returns the widest standard filler width ≤ rem.
func widestFiller(rem int) int {
	w := 1
	for _, fw := range []int{2, 4, 8, 16, 32} {
		if fw <= rem {
			w = fw
		}
	}
	return w
}
