package benchdesigns

import (
	"strings"
	"testing"

	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sta"
)

// socDeltaSpec is a scaled-down stamped SoC: small enough to route in a
// test, large enough that one tile is a strict minority of the die, so the
// cone-locality assertion below is meaningful.
func socDeltaSpec() SoCSpec {
	return SoCSpec{
		// MacroEvery 4 puts macros at raster 3 and 7, keeping the mid-die
		// tile t01_01 (raster 4) a perturbable logic tile.
		Name: "SoC_delta_t", TilesX: 3, TilesY: 3, ClockDomains: 2, MacroEvery: 4,
		ChannelRows: 4, ChannelSites: 40,
		Tile: Spec{Name: "soc_tile", StateBits: 64, KeyBits: 64, Depth: 3, Width: 40,
			Util: 0.25, TimingMargin: 1.10, Activity: 0.18, Seed: 91},
	}
}

// socPerturbTile relocates up to n movable, non-clock-attached cells of one
// mid-die tile to nearby free sites — the same tile-local ECO shape the SoC
// bench applies — and returns the dirty-net mask.
func socPerturbTile(t *testing.T, d *SoCDesign, n int) []bool {
	t.Helper()
	l := d.Layout
	prefix := "t01_01/"
	dirty := make([]bool, len(l.Netlist.Nets))
	moved := 0
	for _, in := range l.Netlist.Insts {
		if moved >= n {
			break
		}
		if in.Fixed || !strings.HasPrefix(in.Name, prefix) {
			continue
		}
		wide := false
		for _, c := range in.Conns {
			if c.Net.NumTerms() > 64 {
				wide = true
				break
			}
		}
		if wide {
			continue
		}
		from := l.PlacementOf(in)
		if !from.Placed {
			continue
		}
		w := in.Master.WidthSites
		row, site := -1, -1
		for dr := -2; dr <= 2 && site < 0; dr++ {
			r := from.Row + dr
			if r < 0 || r >= l.NumRows {
				continue
			}
			for _, run := range l.FreeRuns(r) {
				if run.Len >= w && (r != from.Row || run.Start != from.Site) {
					row, site = r, run.Start
					break
				}
			}
		}
		if site < 0 {
			continue
		}
		l.Unplace(in)
		if err := l.Place(in, row, site); err != nil {
			t.Fatalf("re-place %s: %v", in.Name, err)
		}
		for _, c := range in.Conns {
			dirty[c.Net.ID] = true
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("perturbation moved nothing")
	}
	return dirty
}

// TestSoCTileDeltaMatchesFull is the SoC-shaped end-to-end check of the
// incremental path: perturb one tile of a stamped multi-tile design, warm
// re-route against the clean baseline donor, then verify that delta STA over
// the warm route's change mask reproduces the full whole-graph analysis
// exactly — same TNS, WNS, and per-instance slacks — while re-evaluating
// only a minority of the design's instances.
func TestSoCTileDeltaMatchesFull(t *testing.T) {
	d, err := socDeltaSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Layout
	ropt := route.Options{Seed: 1}
	routes, err := route.Route(l, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if routes.Victims != 0 {
		t.Fatalf("baseline SoC route has %d victims; warm start requires a clean donor", routes.Victims)
	}
	opt := sta.Options{Constraints: d.Cons, Routes: routes}
	donor, err := sta.Analyze(l, opt)
	if err != nil {
		t.Fatal(err)
	}

	dirty := socPerturbTile(t, d, 24)
	wres, wst, err := route.Warm(l, ropt, route.BuildGeometry(l), routes, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if wres == nil {
		t.Fatalf("warm route declined (%s)", wst.Decline)
	}
	changed := wst.ChangedNets
	for id, dt := range dirty {
		if dt {
			changed[id] = true
		}
	}

	opt.Routes = wres
	full, err := sta.AnalyzeWithGraph(l, opt, donor.Graph())
	if err != nil {
		t.Fatal(err)
	}
	delta, ds, err := sta.AnalyzeDelta(l, opt, donor, changed)
	if err != nil {
		t.Fatal(err)
	}
	if delta == nil {
		t.Fatal("delta STA declined; baseline donor should be compatible")
	}

	if delta.TNS != full.TNS || delta.WNS != full.WNS {
		t.Errorf("delta TNS/WNS %.6f/%.6f != full %.6f/%.6f",
			delta.TNS, delta.WNS, full.TNS, full.WNS)
	}
	var funcInsts []*netlist.Instance = l.Netlist.FunctionalInsts()
	for _, in := range funcInsts {
		if got, want := delta.InstSlack(in), full.InstSlack(in); got != want {
			t.Fatalf("inst %s slack %.6f != full %.6f", in.Name, got, want)
		}
	}
	// Locality: the forward cone must stay a minority of the design — the
	// whole point of the delta path at SoC scale.
	if ds.ConeInsts*2 >= len(funcInsts) {
		t.Errorf("cone covered %d of %d functional instances: tile perturbation did not stay local",
			ds.ConeInsts, len(funcInsts))
	}
	t.Logf("SoC tile delta: %d cells, changed=%d cone=%d/%d insts replay=%d reroute=%d",
		d.Cells, ds.ChangedNets, ds.ConeInsts, len(funcInsts), wst.Replayed, wst.Rerouted)
}
