// Package benchdesigns provides the evaluation benchmark suite: deterministic
// synthetic stand-ins for the twelve ISPD-2022 security-closure designs the
// paper evaluates (AES_1..3, Camellia, CAST, MISTY, openMSP430_1/2, PRESENT,
// SEED, SPARX, TDEA).
//
// Each design is generated as a register bank (state + key) with levelized
// combinational clouds between register outputs and inputs, the key
// registers and key-control gates marked as security-critical assets, a
// placed layout at the design's characteristic utilization, and an SDC clock
// auto-calibrated so the design reproduces its published timing character
// (which designs close timing at their target clock and which carry negative
// slack).
package benchdesigns

import (
	"fmt"
	"math/rand"
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/sta"
)

// Spec parameterizes one benchmark design.
type Spec struct {
	Name string
	// StateBits and KeyBits size the two register banks; key registers are
	// security-critical.
	StateBits, KeyBits int
	// Depth and Width shape the combinational clouds: Depth levels of
	// Width gates each.
	Depth, Width int
	// Util is the placement utilization.
	Util float64
	// TimingMargin scales the auto-calibrated clock period relative to the
	// critical path: < 1 yields a design with baseline negative slack
	// (tight), > 1 a timing-clean design (loose).
	TimingMargin float64
	// Activity is the average switching activity (crypto cores toggle
	// hard).
	Activity float64
	// Seed makes generation deterministic.
	Seed int64
}

// Tight reports whether the design is expected to have baseline TNS < 0.
func (s Spec) Tight() bool { return s.TimingMargin < 1 }

// Specs is the benchmark suite, sized and characterized after Table II:
// AES_1/2/3, CAST, openMSP430_2 and SEED carry baseline negative slack;
// the others close timing. AES_2 is the largest design (the runtime
// comparison target) and the only one with baseline DRC violations.
var Specs = []Spec{
	{Name: "AES_1", StateBits: 128, KeyBits: 128, Depth: 12, Width: 300, Util: 0.63, TimingMargin: 0.97, Activity: 0.25, Seed: 101},
	{Name: "AES_2", StateBits: 128, KeyBits: 256, Depth: 14, Width: 340, Util: 0.65, TimingMargin: 0.95, Activity: 0.25, Seed: 102},
	{Name: "AES_3", StateBits: 128, KeyBits: 192, Depth: 12, Width: 320, Util: 0.62, TimingMargin: 0.96, Activity: 0.25, Seed: 103},
	{Name: "Camellia", StateBits: 128, KeyBits: 128, Depth: 10, Width: 120, Util: 0.55, TimingMargin: 1.35, Activity: 0.20, Seed: 104},
	{Name: "CAST", StateBits: 64, KeyBits: 128, Depth: 16, Width: 130, Util: 0.66, TimingMargin: 0.92, Activity: 0.20, Seed: 105},
	{Name: "MISTY", StateBits: 64, KeyBits: 128, Depth: 9, Width: 110, Util: 0.52, TimingMargin: 1.40, Activity: 0.20, Seed: 106},
	{Name: "openMSP430_1", StateBits: 180, KeyBits: 16, Depth: 8, Width: 60, Util: 0.50, TimingMargin: 1.50, Activity: 0.12, Seed: 107},
	{Name: "openMSP430_2", StateBits: 320, KeyBits: 32, Depth: 10, Width: 140, Util: 0.62, TimingMargin: 0.96, Activity: 0.12, Seed: 108},
	{Name: "PRESENT", StateBits: 64, KeyBits: 80, Depth: 6, Width: 50, Util: 0.48, TimingMargin: 1.60, Activity: 0.18, Seed: 109},
	{Name: "SEED", StateBits: 128, KeyBits: 128, Depth: 16, Width: 140, Util: 0.66, TimingMargin: 0.92, Activity: 0.20, Seed: 110},
	{Name: "SPARX", StateBits: 128, KeyBits: 128, Depth: 8, Width: 100, Util: 0.52, TimingMargin: 1.40, Activity: 0.18, Seed: 111},
	{Name: "TDEA", StateBits: 64, KeyBits: 168, Depth: 8, Width: 90, Util: 0.50, TimingMargin: 1.45, Activity: 0.18, Seed: 112},
}

// Names returns the design names in suite order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// SpecOf returns the named spec.
func SpecOf(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("benchdesigns: unknown design %q", name)
}

// Design is one generated, placed and constrained benchmark.
type Design struct {
	Spec   Spec
	Layout *layout.Layout
	Cons   *sdc.Constraints
	// Assets are the names of the security-critical instances.
	Assets []string
}

// Build generates the named benchmark design.
func Build(name string) (*Design, error) {
	spec, err := SpecOf(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// Build generates the design from its spec: netlist, asset marking, global
// placement and clock calibration.
func (s Spec) Build() (*Design, error) {
	nl, assets, err := s.generateNetlist()
	if err != nil {
		return nil, err
	}
	l, err := place.Global(nl, place.GlobalOptions{
		TargetUtil:   s.Util,
		RefinePasses: 6,
		Seed:         s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("benchdesigns: placing %s: %w", s.Name, err)
	}
	cons, err := s.calibrateClock(l)
	if err != nil {
		return nil, err
	}
	return &Design{Spec: s, Layout: l, Cons: cons, Assets: assets}, nil
}

// calibrateClock measures the critical path at a very loose clock and sets
// the period to TimingMargin × (critical arrival + margin), reproducing the
// design's published timing character.
func (s Spec) calibrateClock(l *layout.Layout) (*sdc.Constraints, error) {
	probe, _ := sdc.ParseString("create_clock -name clk -period 1000 [get_ports clk]\n")
	routes, err := route.Route(l, route.Options{Seed: s.Seed})
	if err != nil {
		return nil, fmt.Errorf("benchdesigns: calibrating %s: %w", s.Name, err)
	}
	r, err := sta.Analyze(l, sta.Options{Constraints: probe, Routes: routes})
	if err != nil {
		return nil, fmt.Errorf("benchdesigns: calibrating %s: %w", s.Name, err)
	}
	// WNS = period − worst(arrival+setup): recover the critical sum.
	critical := 1000_000 - r.WNS // ps
	period := critical * s.TimingMargin
	cons := &sdc.Constraints{
		Clocks: []sdc.Clock{{
			Name:          "clk",
			Port:          "clk",
			PeriodPS:      period,
			UncertaintyPS: 0,
		}},
		InputDelayPS:  0,
		OutputDelayPS: 0,
	}
	return cons, nil
}

// generateNetlist builds the register banks and combinational clouds.
func (s Spec) generateNetlist() (*netlist.Netlist, []string, error) {
	lib := opencell45.MustLoad()
	nl := netlist.New(s.Name, lib)
	rng := rand.New(rand.NewSource(s.Seed))

	clkPort, err := nl.AddPort("clk", netlist.In)
	if err != nil {
		return nil, nil, err
	}
	clkNet, err := nl.AddNet("clk")
	if err != nil {
		return nil, nil, err
	}
	clkNet.IsClock = true
	if err := nl.ConnectPort(clkPort, clkNet); err != nil {
		return nil, nil, err
	}

	// Primary inputs feed the first cloud level alongside register outputs.
	numIn := 8 + s.StateBits/16
	var pool []*netlist.Net // nets available as gate inputs
	for i := 0; i < numIn; i++ {
		p, err := nl.AddPort(fmt.Sprintf("in%d", i), netlist.In)
		if err != nil {
			return nil, nil, err
		}
		n, err := nl.AddNet(fmt.Sprintf("in%d", i))
		if err != nil {
			return nil, nil, err
		}
		if err := nl.ConnectPort(p, n); err != nil {
			return nil, nil, err
		}
		pool = append(pool, n)
	}

	// Register banks. Key registers are the protected assets.
	var assets []string
	var regs []*netlist.Instance
	addBank := func(prefix string, bits int, critical bool) error {
		for i := 0; i < bits; i++ {
			name := fmt.Sprintf("%s_reg_%d", prefix, i)
			ff, err := nl.AddInstance(name, "DFF_X1")
			if err != nil {
				return err
			}
			ff.SecurityCritical = critical
			if critical {
				assets = append(assets, name)
			}
			q, err := nl.AddNet(name + "_q")
			if err != nil {
				return err
			}
			if err := nl.Connect(ff, "CK", clkNet); err != nil {
				return err
			}
			if err := nl.Connect(ff, "Q", q); err != nil {
				return err
			}
			regs = append(regs, ff)
			pool = append(pool, q)
		}
		return nil
	}
	if err := addBank("state", s.StateBits, false); err != nil {
		return nil, nil, err
	}
	if err := addBank("key", s.KeyBits, true); err != nil {
		return nil, nil, err
	}

	// Combinational cloud: Depth levels of Width gates. Gate inputs come
	// from the previous two levels (locality) with occasional long hops.
	masters := []struct {
		name   string
		weight int
	}{
		{"NAND2_X1", 20}, {"NOR2_X1", 12}, {"XOR2_X1", 16}, {"XNOR2_X1", 8},
		{"INV_X1", 10}, {"AOI21_X1", 8}, {"OAI21_X1", 8}, {"NAND3_X1", 6},
		{"AND2_X1", 5}, {"OR2_X1", 5}, {"MUX2_X1", 6}, {"BUF_X2", 3},
		{"NAND2_X2", 4}, {"INV_X2", 4},
	}
	totalWeight := 0
	for _, m := range masters {
		totalWeight += m.weight
	}
	pick := func() string {
		r := rng.Intn(totalWeight)
		for _, m := range masters {
			if r < m.weight {
				return m.name
			}
			r -= m.weight
		}
		return masters[0].name
	}
	// The cloud is bit-sliced, as real datapaths are: gate p of a level
	// draws its inputs from a small window around the same relative
	// position in the previous level, with rare long hops. This locality
	// is what makes the design placeable at realistic wirelength.
	prevLevel := pool // level "-1": primary inputs and register outputs
	gateID := 0
	for level := 0; level < s.Depth; level++ {
		curLevel := make([]*netlist.Net, 0, s.Width)
		for g := 0; g < s.Width; g++ {
			master := lib.Cell(pick())
			inst, err := nl.AddInstance(fmt.Sprintf("g%d", gateID), master.Name)
			if err != nil {
				return nil, nil, err
			}
			gateID++
			out, err := nl.AddNet(fmt.Sprintf("n%d", gateID))
			if err != nil {
				return nil, nil, err
			}
			if err := nl.Connect(inst, master.OutputPin().Name, out); err != nil {
				return nil, nil, err
			}
			for _, pin := range master.InputPins() {
				src := pickLocal(rng, prevLevel, pool, g, s.Width)
				if err := nl.Connect(inst, pin.Name, src); err != nil {
					return nil, nil, err
				}
			}
			curLevel = append(curLevel, out)
			pool = append(pool, out)
		}
		prevLevel = curLevel
	}
	levelStart := len(pool) - len(prevLevel)

	// Key-control logic: gates combining key-register outputs; these are
	// also assets (Definition 2.1: key-control logic).
	keyQs := pool[numIn+s.StateBits : numIn+s.StateBits+s.KeyBits]
	nCtl := s.KeyBits / 16
	if nCtl < 2 {
		nCtl = 2
	}
	var ctlNets []*netlist.Net
	for i := 0; i < nCtl; i++ {
		name := fmt.Sprintf("key_ctl_%d", i)
		inst, err := nl.AddInstance(name, "NAND2_X1")
		if err != nil {
			return nil, nil, err
		}
		inst.SecurityCritical = true
		assets = append(assets, name)
		out, err := nl.AddNet(name + "_z")
		if err != nil {
			return nil, nil, err
		}
		if err := nl.Connect(inst, "A1", keyQs[rng.Intn(len(keyQs))]); err != nil {
			return nil, nil, err
		}
		if err := nl.Connect(inst, "A2", keyQs[rng.Intn(len(keyQs))]); err != nil {
			return nil, nil, err
		}
		if err := nl.Connect(inst, "ZN", out); err != nil {
			return nil, nil, err
		}
		ctlNets = append(ctlNets, out)
		pool = append(pool, out)
	}
	_ = ctlNets

	// Close the state machine: register D inputs take nets from the final
	// levels.
	lastLevels := pool[levelStart:]
	if len(lastLevels) == 0 {
		lastLevels = pool
	}
	for i, ff := range regs {
		// Positional mapping keeps the feedback loop bit-sliced too.
		src := lastLevels[i*len(lastLevels)/len(regs)]
		if err := nl.Connect(ff, "D", src); err != nil {
			return nil, nil, err
		}
	}

	// Primary outputs observe a slice of the state.
	numOut := 8 + s.StateBits/16
	for i := 0; i < numOut; i++ {
		p, err := nl.AddPort(fmt.Sprintf("out%d", i), netlist.Out)
		if err != nil {
			return nil, nil, err
		}
		q := pool[numIn+(i%(s.StateBits+s.KeyBits))]
		if err := nl.ConnectPort(p, q); err != nil {
			return nil, nil, err
		}
	}

	// Observe every dangling net so no functional cell counts as removable
	// (real netlists are fully observed after synthesis DFT).
	if err := sweepDangling(nl); err != nil {
		return nil, nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, nil, fmt.Errorf("benchdesigns: %s: %w", s.Name, err)
	}
	sort.Strings(assets)
	return nl, assets, nil
}

// pickLocal draws a gate input from a ±window around the gate's relative
// position in the previous level (bit-slice locality); with 4% probability
// it takes a long hop anywhere in the pool (control/broadcast signals).
func pickLocal(rng *rand.Rand, prevLevel, pool []*netlist.Net, pos, width int) *netlist.Net {
	if len(prevLevel) == 0 || rng.Float64() < 0.04 {
		return pool[rng.Intn(len(pool))]
	}
	const window = 4
	center := pos * len(prevLevel) / width
	idx := center + rng.Intn(2*window+1) - window
	if idx < 0 {
		idx = 0
	}
	if idx >= len(prevLevel) {
		idx = len(prevLevel) - 1
	}
	return prevLevel[idx]
}

// sweepDangling funnels every sinkless non-clock net into a balanced NAND
// collector tree observed at the chk port.
func sweepDangling(nl *netlist.Netlist) error {
	var open []*netlist.Net
	for _, n := range nl.Nets {
		if !n.IsClock && n.HasDriver() && len(n.Sinks) == 0 {
			open = append(open, n)
		}
	}
	if len(open) == 0 {
		return nil
	}
	id := 0
	for len(open) > 1 {
		var next []*netlist.Net
		for i := 0; i+1 < len(open); i += 2 {
			inst, err := nl.AddInstance(fmt.Sprintf("chk_%d", id), "NAND2_X1")
			if err != nil {
				return err
			}
			out, err := nl.AddNet(fmt.Sprintf("chk_n%d", id))
			if err != nil {
				return err
			}
			id++
			if err := nl.Connect(inst, "A1", open[i]); err != nil {
				return err
			}
			if err := nl.Connect(inst, "A2", open[i+1]); err != nil {
				return err
			}
			if err := nl.Connect(inst, "ZN", out); err != nil {
				return err
			}
			next = append(next, out)
		}
		if len(open)%2 == 1 {
			next = append(next, open[len(open)-1])
		}
		open = next
	}
	p, err := nl.AddPort("chk", netlist.Out)
	if err != nil {
		return err
	}
	return nl.ConnectPort(p, open[0])
}
