package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "kind")
	c.With("harden").Inc()
	c.With("harden").Add(2)
	c.With("explore").Inc()
	if got := c.With("harden").Value(); got != 3 {
		t.Errorf("harden counter = %g, want 3", got)
	}
	if got := c.With("explore").Value(); got != 1 {
		t.Errorf("explore counter = %g, want 1", got)
	}
	// Counters never go down.
	c.With("harden").Add(-5)
	if got := c.With("harden").Value(); got != 3 {
		t.Errorf("counter decreased to %g", got)
	}
}

func TestGaugePeakTracking(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("busy", "busy workers").With()
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Errorf("value = %g, want 1", got)
	}
	if got := g.Peak(); got != 5 {
		t.Errorf("peak = %g, want 5", got)
	}
	g.ResetPeak()
	if got := g.Peak(); got != 1 {
		t.Errorf("peak after reset = %g, want 1", got)
	}
	g.SetMax(10)
	if g.Value() != 10 || g.Peak() != 10 {
		t.Errorf("SetMax: value=%g peak=%g, want 10/10", g.Value(), g.Peak())
	}
	g.SetMax(4) // lower: no-op
	if g.Value() != 10 {
		t.Errorf("SetMax lowered the gauge to %g", g.Value())
	}
}

func TestHistogramBucketsAndTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1}, "stage")
	s := h.With("route")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		s.Observe(v)
	}
	if got := s.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := s.Sum(); got != 5.555 {
		t.Errorf("sum = %g, want 5.555", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative buckets: 0.01 holds 1, 0.1 holds 2, 1 holds 3, +Inf all.
	for _, want := range []string{
		`lat_bucket{stage="route",le="0.01"} 1`,
		`lat_bucket{stage="route",le="0.1"} 2`,
		`lat_bucket{stage="route",le="+Inf"} 4`,
		`lat_count{stage="route"} 4`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	tm := s.Start()
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d <= 0 {
		t.Errorf("timer measured %v", d)
	}
	if got := s.Count(); got != 5 {
		t.Errorf("count after timer = %d, want 5", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "k")
	b := r.Counter("x_total", "x", "k")
	a.With("v").Inc()
	if got := b.With("v").Value(); got != 1 {
		t.Errorf("re-registered family not shared: %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x", "k")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "esc", "p").With(`a"b\c` + "\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{p="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", buf.String())
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a counter").With().Add(2)
	r.Gauge("g", "a gauge", "l").With("x").Set(1.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP c_total a counter",
		"# TYPE c_total counter",
		"c_total 2",
		"# TYPE g gauge",
		`g{l="x"} 1.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").With().Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "s", "k").With("a").Add(4)
	g := r.Gauge("sg", "sg").With()
	g.Set(7)
	g.Set(2)
	r.Histogram("sh", "sh", nil).With().Observe(0.2)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("families = %d, want 3", len(snap))
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if s := byName["s_total"].Series[0]; s.Value != 4 || s.Labels["k"] != "a" {
		t.Errorf("counter snapshot = %+v", s)
	}
	if s := byName["sg"].Series[0]; s.Value != 2 || s.Peak != 7 {
		t.Errorf("gauge snapshot = %+v", s)
	}
	if s := byName["sh"].Series[0]; s.Count != 1 || s.Sum != 0.2 {
		t.Errorf("histogram snapshot = %+v", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "cc").With()
	g := r.Gauge("cg", "cg").With()
	h := r.Histogram("ch", "ch", nil).With()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Errorf("counter = %g, want 4000", got)
	}
	if got := h.Count(); got != 4000 {
		t.Errorf("histogram count = %d, want 4000", got)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
}

func TestLoggerDefaultsToDiscardAndIsSwappable(t *testing.T) {
	if Logger() == nil {
		t.Fatal("default logger is nil")
	}
	var buf bytes.Buffer
	SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	t.Cleanup(func() { SetLogger(nil) })
	Logger().Info("hello", "k", 1)
	if !strings.Contains(buf.String(), "hello") {
		t.Errorf("log output missing: %q", buf.String())
	}
	SetLogger(nil)
	if Logger() == nil {
		t.Fatal("nil SetLogger did not restore a logger")
	}
	Logger().Info("dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Error("restored default logger still writes to old buffer")
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("unsorted buckets did not panic")
		}
	}()
	r.Histogram("bad", "bad", []float64{1, 0.5})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram(fmt.Sprintf("bench_%d", b.N), "bench", nil).With()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}
