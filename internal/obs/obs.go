// Package obs is the flow-wide observability substrate: a small,
// dependency-free metrics registry (counters, gauges with high-watermark
// tracking, and latency histograms), Prometheus text-format exposition,
// duration timers, and structured logging via log/slog.
//
// Instrumented packages register their metrics against the package-level
// Default registry at init time and record into them on the hot path; the
// registry is exposed by cmd/guardd at GET /metrics and snapshotted by
// cmd/guardbench into the benchmark trajectory files. Registration is
// idempotent — asking for an already-registered family with the same shape
// returns the existing one — so libraries and their tests can share
// metric variables freely.
//
// All operations are safe for concurrent use. Recording into an existing
// series costs one mutex acquisition; the registry is not sharded because
// the instrumented operations (routing, STA, flow evaluations) run for
// milliseconds to seconds per observation.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefBuckets are the default latency histogram buckets in seconds,
// spanning sub-millisecond stage work to multi-minute explorations.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; use NewRegistry or Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// family is one named metric with a fixed kind and label schema.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// series is one (label values) instance of a family.
type series struct {
	mu     sync.Mutex
	values []string
	val    float64 // counter/gauge value
	peak   float64 // gauge high watermark
	counts []uint64
	sum    float64
	count  uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry the instrumented packages record
// into and cmd/guardd exposes at /metrics.
func Default() *Registry { return defaultRegistry }

// family registers (or fetches) a family, enforcing shape consistency.
func (r *Registry) family(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, already %s%v",
				name, k, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, already %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    k,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		s.counts = make([]uint64, len(f.buckets))
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// CounterVec is a labeled family of monotonically increasing counters.
type CounterVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// With returns the counter for one set of label values (created on first
// use). Call with no arguments for an unlabeled family.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.with(values)} }

// Counter is one monotonically increasing series.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.val += v
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// With returns the gauge for one set of label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.with(values)} }

// Gauge is one series that can go up and down. It additionally tracks its
// high watermark (Peak), which worker-occupancy gauges use to make
// transient oversubscription visible after the fact.
type Gauge struct{ s *series }

// Set sets the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.val = v
	if v > g.s.peak {
		g.s.peak = v
	}
	g.s.mu.Unlock()
}

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.val += v
	if g.s.val > g.s.peak {
		g.s.peak = g.s.val
	}
	g.s.mu.Unlock()
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// SetMax raises the value to v if it is currently lower.
func (g *Gauge) SetMax(v float64) {
	g.s.mu.Lock()
	if v > g.s.val {
		g.s.val = v
	}
	if v > g.s.peak {
		g.s.peak = v
	}
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.val
}

// Peak returns the highest value the gauge has held since creation (or the
// last ResetPeak).
func (g *Gauge) Peak() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.peak
}

// ResetPeak resets the high watermark to the current value.
func (g *Gauge) ResetPeak() {
	g.s.mu.Lock()
	g.s.peak = g.s.val
	g.s.mu.Unlock()
}

// HistogramVec is a labeled family of cumulative histograms.
type HistogramVec struct{ f *family }

// Histogram registers (or fetches) a histogram family with the given
// upper bucket bounds (nil: DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %d", name, i))
		}
	}
	return &HistogramVec{r.family(name, help, kindHistogram, buckets, labels)}
}

// With returns the histogram for one set of label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.with(values), v.f.buckets}
}

// Histogram is one cumulative-bucket latency series (values in seconds by
// convention).
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.s.mu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.s.counts[i]++
		}
	}
	h.s.sum += v
	h.s.count++
	h.s.mu.Unlock()
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// Timer measures one duration into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins a timer recording into h when stopped.
func (h *Histogram) Start() *Timer { return &Timer{h: h, start: time.Now()} }

// Stop observes and returns the elapsed duration. Stop is single-shot;
// calling it again observes the (longer) duration again.
func (t *Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// SeriesSnapshot is a point-in-time copy of one series, for tests and the
// benchmark harness.
type SeriesSnapshot struct {
	// Labels maps label names to values (empty for unlabeled families).
	Labels map[string]string
	// Value is the counter/gauge value (0 for histograms).
	Value float64
	// Peak is the gauge high watermark (0 otherwise).
	Peak float64
	// Sum and Count are the histogram aggregate (0 otherwise).
	Sum   float64
	Count uint64
}

// MetricSnapshot is a point-in-time copy of one family.
type MetricSnapshot struct {
	Name   string
	Help   string
	Type   string
	Series []SeriesSnapshot
}

// Snapshot copies every family and series in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(fams))
	for _, f := range fams {
		ms := MetricSnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		srs := make([]*series, 0, len(keys))
		for _, k := range keys {
			srs = append(srs, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range srs {
			s.mu.Lock()
			ss := SeriesSnapshot{
				Labels: make(map[string]string, len(f.labels)),
				Value:  s.val,
				Peak:   s.peak,
				Sum:    s.sum,
				Count:  s.count,
			}
			for i, ln := range f.labels {
				ss.Labels[ln] = s.values[i]
			}
			s.mu.Unlock()
			ms.Series = append(ms.Series, ss)
		}
		out = append(out, ms)
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {k="v",...} for the given names/values (with an
// optional extra pair appended), or "" when empty.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name, series in creation
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if f == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		srs := make([]*series, 0, len(keys))
		for _, k := range keys {
			srs = append(srs, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range srs {
			s.mu.Lock()
			values := append([]string(nil), s.values...)
			val, sum, count := s.val, s.sum, s.count
			counts := append([]uint64(nil), s.counts...)
			s.mu.Unlock()
			var err error
			switch f.kind {
			case kindCounter, kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n",
					f.name, labelString(f.labels, values, "", ""), val)
			case kindHistogram:
				for i, ub := range f.buckets {
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, values, "le", formatBound(ub)), counts[i]); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", "+Inf"), count); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %g\n",
					f.name, labelString(f.labels, values, "", ""), sum); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n",
					f.name, labelString(f.labels, values, "", ""), count)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func formatBound(ub float64) string { return fmt.Sprintf("%g", ub) }

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
