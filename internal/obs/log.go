package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// logger is the process-wide structured logger. Library code must stay
// quiet by default (the optimizer and service run inside tests and other
// programs), so the default logger discards everything; cmd/guardd and
// cmd/guardbench install a real handler at startup via SetLogger.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// Logger returns the current structured logger. It is never nil.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger installs l as the process-wide structured logger (nil restores
// the discarding default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	logger.Store(l)
}
