package security

import (
	"fmt"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/sta"
)

// buildDesign creates chains with the final DFFs marked security-critical.
func buildDesign(t testing.TB, chains, stages int, util float64) *layout.Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("sec", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	for c := 0; c < chains; c++ {
		in, _ := nl.AddPort(fmt.Sprintf("i%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("pi%d", c))
		_ = nl.ConnectPort(in, prev)
		for s := 0; s < stages; s++ {
			g, err := nl.AddInstance(fmt.Sprintf("c%dg%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			nx, _ := nl.AddNet(fmt.Sprintf("c%dn%d", c, s))
			_ = nl.Connect(g, "A", prev)
			_ = nl.Connect(g, "ZN", nx)
			prev = nx
		}
		ff, _ := nl.AddInstance(fmt.Sprintf("key_reg%d", c), "DFF_X1")
		ff.SecurityCritical = true
		q, _ := nl.AddNet(fmt.Sprintf("q%d", c))
		_ = nl.Connect(ff, "D", prev)
		_ = nl.Connect(ff, "CK", clkNet)
		_ = nl.Connect(ff, "Q", q)
		out, _ := nl.AddPort(fmt.Sprintf("o%d", c), netlist.Out)
		_ = nl.ConnectPort(out, q)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: util, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func timingOf(t testing.TB, l *layout.Layout, periodNS float64) *sta.Result {
	t.Helper()
	c, _ := sdc.ParseString(fmt.Sprintf("create_clock -name clk -period %g [get_ports clk]\n", periodNS))
	r, err := sta.Analyze(l, sta.Options{Constraints: c})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAssessFindsRegionsInSparseLayout(t *testing.T) {
	l := buildDesign(t, 4, 15, 0.4)
	a, err := Assess(l, nil, nil, DefaultParams())
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	if a.Assets != 4 {
		t.Errorf("assets = %d", a.Assets)
	}
	if a.FreeSites == 0 || a.ExploitableSites == 0 {
		t.Errorf("free/exploitable = %d/%d", a.FreeSites, a.ExploitableSites)
	}
	if len(a.Regions) == 0 || a.ERSites == 0 {
		t.Errorf("regions = %d, ERSites = %d", len(a.Regions), a.ERSites)
	}
	// All region weights ≥ threshold, sites sum to ERSites.
	sum := 0
	for _, reg := range a.Regions {
		if reg.Sites < 20 {
			t.Errorf("region weight %d below Thresh_ER", reg.Sites)
		}
		runSum := 0
		for _, run := range reg.Runs {
			runSum += run.Len
		}
		if runSum != reg.Sites {
			t.Errorf("region runs sum %d != weight %d", runSum, reg.Sites)
		}
		sum += reg.Sites
	}
	if sum != a.ERSites {
		t.Errorf("ERSites %d != regions sum %d", a.ERSites, sum)
	}
	if a.ERSites > a.ExploitableSites {
		t.Error("ERSites exceeds exploitable sites")
	}
	if a.ExploitableSites > a.FreeSites {
		t.Error("exploitable sites exceed free sites")
	}
}

func TestThresholdFiltersSmallRegions(t *testing.T) {
	l := buildDesign(t, 4, 15, 0.4)
	loose, err := Assess(l, nil, nil, Params{ThreshER: 1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Assess(l, nil, nil, Params{ThreshER: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Regions) > len(loose.Regions) {
		t.Error("higher threshold should not add regions")
	}
	if strict.ERSites > loose.ERSites {
		t.Error("higher threshold should not add ER sites")
	}
	// With threshold 1 every exploitable site is in a region.
	if loose.ERSites != loose.ExploitableSites {
		t.Errorf("thresh=1: ERSites %d != exploitable %d", loose.ERSites, loose.ExploitableSites)
	}
}

func TestTightTimingShrinksExploitableDistance(t *testing.T) {
	l := buildDesign(t, 4, 30, 0.4)
	loose, err := Assess(l, nil, timingOf(t, l, 50), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Assess(l, nil, timingOf(t, l, 0.8), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tight.ExploitableSites > loose.ExploitableSites {
		t.Errorf("tight timing has MORE exploitable sites: %d vs %d",
			tight.ExploitableSites, loose.ExploitableSites)
	}
}

func TestNoAssetsMeansNoExploitableSites(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.4)
	for _, in := range l.Netlist.Insts {
		in.SecurityCritical = false
	}
	a, err := Assess(l, nil, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.ExploitableSites != 0 || a.ERSites != 0 || len(a.Regions) != 0 {
		t.Errorf("no assets but exploitable = %d, regions = %d", a.ExploitableSites, len(a.Regions))
	}
	if a.FreeSites == 0 {
		t.Error("free sites should still be counted")
	}
}

func TestERTracksRequiresRoutes(t *testing.T) {
	l := buildDesign(t, 4, 15, 0.4)
	noRoutes, err := Assess(l, nil, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if noRoutes.ERTracks != 0 {
		t.Error("ERTracks nonzero without routes")
	}
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	withRoutes, err := Assess(l, routes, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if withRoutes.ERSites > 0 && withRoutes.ERTracks <= 0 {
		t.Errorf("ERTracks = %g with %d ER sites", withRoutes.ERTracks, withRoutes.ERSites)
	}
}

func TestFillerCellsRemainExploitable(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.4)
	base, err := Assess(l, nil, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Fill some free runs with non-functional fillers.
	fills := 0
	for r := 0; r < l.NumRows && fills < 8; r++ {
		for _, run := range l.FreeRuns(r) {
			if run.Len >= 2 {
				f, err := l.Netlist.AddInstance(fmt.Sprintf("fl%d", fills), "FILLCELL_X2")
				if err != nil {
					t.Fatal(err)
				}
				if err := l.Place(f, r, run.Start); err != nil {
					t.Fatal(err)
				}
				fills++
				break
			}
		}
	}
	after, err := Assess(l, nil, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Non-functional fill does not reduce exploitable sites (Def. 2.2).
	if after.ExploitableSites != base.ExploitableSites {
		t.Errorf("filler fill changed exploitable sites: %d -> %d",
			base.ExploitableSites, after.ExploitableSites)
	}
}

func TestScore(t *testing.T) {
	base := &Assessment{ERSites: 1000, ERTracks: 500}
	opt := &Assessment{ERSites: 100, ERTracks: 25}
	s := Score(opt, base, 0.5)
	want := 0.5*0.1 + 0.5*0.05
	if s < want-1e-12 || s > want+1e-12 {
		t.Errorf("Score = %g, want %g", s, want)
	}
	if got := Score(base, base, 0.5); got != 1.0 {
		t.Errorf("self score = %g, want 1", got)
	}
	// Degenerate baseline contributes nothing.
	if got := Score(opt, &Assessment{}, 0.5); got != 0 {
		t.Errorf("zero baseline score = %g", got)
	}
}

func TestAssessParamValidation(t *testing.T) {
	l := buildDesign(t, 2, 5, 0.5)
	if _, err := Assess(l, nil, nil, Params{ThreshER: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := Assess(l, nil, nil, Params{ThreshER: 20, TrojanCell: "GHOST"}); err == nil {
		t.Error("unknown trojan cell accepted")
	}
}

func TestRegionConnectivityAcrossRows(t *testing.T) {
	// Hand-build a layout: two rows fully free, vertically adjacent →
	// a single region spanning both rows.
	lib := opencell45.MustLoad()
	nl := netlist.New("grid", lib)
	ff, _ := nl.AddInstance("key", "DFF_X1")
	ff.SecurityCritical = true
	clk, _ := nl.AddNet("ck")
	clk.IsClock = true
	p, _ := nl.AddPort("ck", netlist.In)
	_ = nl.ConnectPort(p, clk)
	_ = nl.Connect(ff, "CK", clk)
	q, _ := nl.AddNet("q")
	_ = nl.Connect(ff, "Q", q)
	qp, _ := nl.AddPort("q", netlist.Out)
	_ = nl.ConnectPort(qp, q)
	l, _ := layout.New(nl, 2, 30)
	_ = l.Place(ff, 0, 0)
	a, err := Assess(l, nil, nil, Params{ThreshER: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != 1 {
		t.Fatalf("regions = %d, want 1 connected region", len(a.Regions))
	}
	// 2 rows × 30 sites − 9 (DFF) = 51 free sites.
	if a.Regions[0].Sites != 51 {
		t.Errorf("region weight = %d, want 51", a.Regions[0].Sites)
	}
}

func TestDisconnectedRegions(t *testing.T) {
	// A full row of functional cells splits the free space of a 3-row core
	// into two regions.
	lib := opencell45.MustLoad()
	nl := netlist.New("split", lib)
	ff, _ := nl.AddInstance("key", "DFF_X1")
	ff.SecurityCritical = true
	clk, _ := nl.AddNet("ck")
	clk.IsClock = true
	p, _ := nl.AddPort("ck", netlist.In)
	_ = nl.ConnectPort(p, clk)
	_ = nl.Connect(ff, "CK", clk)
	q, _ := nl.AddNet("q")
	_ = nl.Connect(ff, "Q", q)
	qp, _ := nl.AddPort("q", netlist.Out)
	_ = nl.ConnectPort(qp, q)
	l, _ := layout.New(nl, 3, 27)
	_ = l.Place(ff, 1, 0)
	// Fill rest of middle row with INVs (functional barriers).
	for i, s := 0, 9; s+2 <= 27; i, s = i+1, s+2 {
		inv, _ := nl.AddInstance(fmt.Sprintf("b%d", i), "INV_X1")
		wireIn, _ := nl.AddNet(fmt.Sprintf("wi%d", i))
		pi, _ := nl.AddPort(fmt.Sprintf("pi%d", i), netlist.In)
		_ = nl.ConnectPort(pi, wireIn)
		_ = nl.Connect(inv, "A", wireIn)
		wireOut, _ := nl.AddNet(fmt.Sprintf("wo%d", i))
		_ = nl.Connect(inv, "ZN", wireOut)
		po, _ := nl.AddPort(fmt.Sprintf("po%d", i), netlist.Out)
		_ = nl.ConnectPort(po, wireOut)
		if err := l.Place(inv, 1, s); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Assess(l, nil, nil, Params{ThreshER: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != 2 {
		t.Fatalf("regions = %d, want 2 (top row + bottom row)", len(a.Regions))
	}
}

func BenchmarkAssess(b *testing.B) {
	l := buildDesign(b, 10, 40, 0.55)
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assess(l, routes, nil, p); err != nil {
			b.Fatal(err)
		}
	}
}
