// Package security implements the layout-security metrics of Knechtel et
// al. (ISPD 2022) as used by the paper:
//
//   - Exploitable distance: per security-critical cell, the maximal routing
//     distance at which a smallest Trojan (one NAND gate) can still be
//     attached to a positive-slack path through the cell without violating
//     timing (Definition 2.2, prerequisite 2).
//   - Exploitable sites: placement sites that are free for Trojan insertion
//     (empty, or holding non-functional filler/tap cells) and lie within
//     some asset's exploitable distance.
//   - Exploitable regions: connected components of exploitable sites
//     (vertical/horizontal adjacency) whose total weight reaches Thresh_ER.
//   - ERsites / ERtracks: total free placement sites of all exploitable
//     regions, and total unused routing tracks over them.
//
// The Security score of an optimized layout is the α-weighted sum of its
// ERsites/ERtracks normalized by the baseline layout (§II-C).
package security

import (
	"fmt"
	"math"
	"sort"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sta"
	"gdsiiguard/internal/tech"
)

// Params configures the assessment.
type Params struct {
	// ThreshER is the minimal component weight (sites) for a region to be
	// exploitable; the paper uses 20 (taken from the A2 Trojan).
	ThreshER int
	// TrojanCell names the library cell representing the smallest Trojan
	// (default NAND2_X1).
	TrojanCell string
	// MaxRadiusDBU caps the exploitable distance (default: core diagonal).
	MaxRadiusDBU int64
	// TrojanWireFactor scales the attacker's effective wire capacitance:
	// Trojan routing must detour through leftover tracks, stacks vias, and
	// hangs off a minimum-size gate, so it sees far worse RC than the
	// victim's optimized nets (default 8).
	TrojanWireFactor float64
}

// DefaultParams returns the paper's configuration (Thresh_ER = 20, taken
// from the A2 Trojan).
func DefaultParams() Params {
	return Params{ThreshER: 20, TrojanCell: "NAND2_X1", TrojanWireFactor: 3}
}

// Region is one exploitable region: a connected set of exploitable site
// runs.
type Region struct {
	// Sites is the region weight (total exploitable sites).
	Sites int
	// Runs are the maximal horizontal runs making up the region.
	Runs []layout.SiteRun
}

// Assessment is the security evaluation of one layout.
type Assessment struct {
	// Regions are the exploitable regions (weight ≥ ThreshER).
	Regions []Region
	// ERSites is Σ region weights — the paper's Free Placement Sites.
	ERSites int
	// ERTracks is the unused routing tracks over all exploitable regions —
	// the paper's Free Routing Tracks.
	ERTracks float64
	// ExploitableSites counts all exploitable sites before thresholding.
	ExploitableSites int
	// FreeSites is the raw count of non-functional sites in the core.
	FreeSites int
	// Assets is the number of security-critical instances found.
	Assets int
}

// Assess evaluates the layout. timing supplies per-asset slack for the
// exploitable distance (nil means unconstrained: every free site within any
// distance of an asset counts, i.e. the loose-timing worst case). routes
// supplies track usage for ERtracks (nil leaves ERTracks at zero).
func Assess(l *layout.Layout, routes *route.Result, timing *sta.Result, p Params) (*Assessment, error) {
	if p.ThreshER <= 0 {
		return nil, fmt.Errorf("security: ThreshER must be positive")
	}
	if p.TrojanCell == "" {
		p.TrojanCell = "NAND2_X1"
	}
	a := &Assessment{}

	exploitable := exploitableMask(l)
	for _, row := range exploitable {
		for _, e := range row {
			if e {
				a.FreeSites++
			}
		}
	}

	radius, nAssets, err := assetRadii(l, timing, p)
	if err != nil {
		return nil, err
	}
	a.Assets = nAssets
	reach := reachMask(l, radius)

	// Exploitable sites: free AND within reach.
	for r := 0; r < l.NumRows; r++ {
		for s := 0; s < l.SitesPerRow; s++ {
			exploitable[r][s] = exploitable[r][s] && reach[r][s] >= 0
			if exploitable[r][s] {
				a.ExploitableSites++
			}
		}
	}

	a.Regions = components(l, exploitable, p.ThreshER)
	for _, reg := range a.Regions {
		a.ERSites += reg.Sites
		if routes != nil {
			for _, run := range reg.Runs {
				lo := l.SiteDBU(run.Row, run.Start)
				hi := l.SiteDBU(run.Row, run.Start+run.Len)
				hi.Y += l.Lib().Site.Height
				a.ERTracks += routes.FreeTracksInRect(geom.R(lo.X, lo.Y, hi.X, hi.Y))
			}
		}
	}
	return a, nil
}

// Score is the paper's security objective: the α-weighted normalized sum of
// remaining free sites and tracks (§II-C). Lower is more secure. A baseline
// with zero ERsites/ERtracks contributes zero for that term.
func Score(opt, base *Assessment, alpha float64) float64 {
	s := 0.0
	if base.ERSites > 0 {
		s += alpha * float64(opt.ERSites) / float64(base.ERSites)
	}
	if base.ERTracks > 0 {
		s += (1 - alpha) * opt.ERTracks / base.ERTracks
	}
	return s
}

// exploitableMask marks sites that are free for Trojan insertion: empty,
// held by non-functional cells (fillers, taps), or held by dangling
// functional cells — cells none of whose outputs is observed, which an
// attacker can remove or repurpose (Definition 2.2).
func exploitableMask(l *layout.Layout) [][]bool {
	mask := make([][]bool, l.NumRows)
	for r := 0; r < l.NumRows; r++ {
		mask[r] = make([]bool, l.SitesPerRow)
		for s := 0; s < l.SitesPerRow; s++ {
			in := l.At(r, s)
			mask[r][s] = in == nil || !in.Master.IsFunctional() || isDangling(in)
		}
	}
	return mask
}

// isDangling reports whether a functional cell has outputs but none of them
// reaches any sink (instance pin or port).
func isDangling(in *netlist.Instance) bool {
	hasOutput, observed := false, false
	for _, p := range in.Master.Pins {
		if p.Dir != tech.Output {
			continue
		}
		hasOutput = true
		if n := in.NetConn(p.Name); n != nil && len(n.Sinks) > 0 {
			observed = true
		}
	}
	return hasOutput && !observed
}

// assetRadii computes each security-critical instance's exploitable
// distance in DBU, per the paper's procedure: take the slack of paths
// through the asset, subtract the inserted NAND's delay, and convert the
// remaining slack into routing distance via the wire RC model.
func assetRadii(l *layout.Layout, timing *sta.Result, p Params) (map[*netlist.Instance]int64, int, error) {
	lib := l.Lib()
	trojan := lib.Cell(p.TrojanCell)
	if trojan == nil {
		return nil, 0, fmt.Errorf("security: trojan cell %q not in library", p.TrojanCell)
	}
	maxRadius := p.MaxRadiusDBU
	if maxRadius <= 0 {
		core := l.CoreRect()
		maxRadius = core.W() + core.H()
	}
	// Trojan attachment delay: the NAND drives a short stub; its input
	// loads the victim net.
	var nandIntrinsic, nandRes, nandInCap float64
	if out := trojan.OutputPin(); out != nil && len(trojan.Arcs) > 0 {
		nandIntrinsic = trojan.Arcs[0].Intrinsic
		nandRes = trojan.Arcs[0].DriveRes
	}
	if ins := trojan.InputPins(); len(ins) > 0 {
		nandInCap = ins[0].Cap
	}
	// Wire RC on the estimation layer (metal3), derated for the attacker's
	// detoured, via-heavy routing.
	layer := lib.Layer(3)
	if layer == nil {
		layer = lib.Layer(lib.NumLayers() / 2)
	}
	factor := p.TrojanWireFactor
	if factor <= 0 {
		factor = 3
	}
	rPerUM, cPerUM := layer.RPerUM, layer.CPerUM*factor

	// The exploitable distance is a single design-wide figure (§II-A):
	// the tightest positive-slack path through any asset bounds how far
	// the Trojan may route, because timing must still close after
	// insertion. Timing-tight designs therefore have short exploitable
	// distances; loose designs let it spread across the whole core.
	// Only paths with positive slack are extractable for Trojan insertion.
	// The design-wide exploitable distance derives from the lower quartile
	// of the assets' positive path slacks: representative of the tightly
	// constrained asset paths while robust to a few off-path outliers.
	var slacks []float64
	n := 0
	for _, in := range l.Netlist.CriticalInsts() {
		n++
		if timing == nil {
			continue
		}
		s := timing.InstSlack(in)
		if math.IsInf(s, 1) || s <= 0 {
			continue
		}
		slacks = append(slacks, s)
	}
	slack := math.Inf(1)
	if timing != nil {
		if len(slacks) == 0 {
			slack = 0
		} else {
			sort.Float64s(slacks)
			slack = slacks[len(slacks)/4]
		}
	}
	radius := maxRadius
	if !math.IsInf(slack, 1) {
		budget := slack - nandIntrinsic - nandRes*nandInCap
		if budget <= 0 {
			radius = 0
		} else {
			// Solve 0.5·r·c·L² + nandRes·c·L − budget = 0 for L (µm).
			a := 0.5 * rPerUM * cPerUM
			b := nandRes * cPerUM
			var lUM float64
			switch {
			case a > 0:
				lUM = (-b + math.Sqrt(b*b+4*a*budget)) / (2 * a)
			case b > 0:
				lUM = budget / b
			default:
				lUM = math.Inf(1)
			}
			radius = int64(lUM * float64(lib.DBUPerMicron))
			if radius > maxRadius || math.IsInf(lUM, 1) {
				radius = maxRadius
			}
		}
	}
	radii := make(map[*netlist.Instance]int64)
	for _, in := range l.Netlist.CriticalInsts() {
		radii[in] = radius
	}
	return radii, n, nil
}

// reachMask computes, for every site, the maximal remaining budget
// max_a(radius_a − manhattanDist(site, a)) via a two-pass chamfer sweep;
// a site is within exploitable distance iff its value is ≥ 0. Sites
// unreachable from any asset hold a large negative value.
func reachMask(l *layout.Layout, radius map[*netlist.Instance]int64) [][]int64 {
	const negInf = int64(math.MinInt64 / 4)
	w, h := l.SitesPerRow, l.NumRows
	siteW, siteH := l.Lib().Site.Width, l.Lib().Site.Height
	phi := make([][]int64, h)
	for r := range phi {
		phi[r] = make([]int64, w)
		for s := range phi[r] {
			phi[r][s] = negInf
		}
	}
	for in, rad := range radius {
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		for s := p.Site; s < p.Site+in.Master.WidthSites && s < w; s++ {
			if rad > phi[p.Row][s] {
				phi[p.Row][s] = rad
			}
		}
	}
	// Forward sweep.
	for r := 0; r < h; r++ {
		for s := 0; s < w; s++ {
			if s > 0 && phi[r][s-1]-siteW > phi[r][s] {
				phi[r][s] = phi[r][s-1] - siteW
			}
			if r > 0 && phi[r-1][s]-siteH > phi[r][s] {
				phi[r][s] = phi[r-1][s] - siteH
			}
		}
	}
	// Backward sweep.
	for r := h - 1; r >= 0; r-- {
		for s := w - 1; s >= 0; s-- {
			if s < w-1 && phi[r][s+1]-siteW > phi[r][s] {
				phi[r][s] = phi[r][s+1] - siteW
			}
			if r < h-1 && phi[r+1][s]-siteH > phi[r][s] {
				phi[r][s] = phi[r+1][s] - siteH
			}
		}
	}
	return phi
}

// components finds connected components of marked sites (4-adjacency within
// rows and across vertically aligned sites of adjacent rows), returning
// those with weight ≥ thresh as Regions, using run-based union-find.
func components(l *layout.Layout, mask [][]bool, thresh int) []Region {
	type run struct {
		row, start, length int
	}
	var runs []run
	rowRuns := make([][]int, l.NumRows) // indices into runs, per row
	for r := 0; r < l.NumRows; r++ {
		start := -1
		for s := 0; s <= l.SitesPerRow; s++ {
			marked := s < l.SitesPerRow && mask[r][s]
			if marked && start < 0 {
				start = s
			}
			if !marked && start >= 0 {
				rowRuns[r] = append(rowRuns[r], len(runs))
				runs = append(runs, run{r, start, s - start})
				start = -1
			}
		}
	}
	parent := make([]int, len(runs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Connect vertically overlapping runs in adjacent rows.
	for r := 1; r < l.NumRows; r++ {
		for _, i := range rowRuns[r] {
			for _, j := range rowRuns[r-1] {
				a, b := runs[i], runs[j]
				if a.start < b.start+b.length && b.start < a.start+a.length {
					union(i, j)
				}
			}
		}
	}
	groups := make(map[int][]int)
	for i := range runs {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	var out []Region
	// Deterministic order: iterate runs, emit a region when visiting its
	// root's first member.
	emitted := make(map[int]bool)
	for i := range runs {
		root := find(i)
		if emitted[root] {
			continue
		}
		emitted[root] = true
		var reg Region
		for _, j := range groups[root] {
			reg.Sites += runs[j].length
			reg.Runs = append(reg.Runs, layout.SiteRun{
				Row: runs[j].row, Start: runs[j].start, Len: runs[j].length,
			})
		}
		if reg.Sites >= thresh {
			out = append(out, reg)
		}
	}
	return out
}
