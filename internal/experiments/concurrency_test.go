package experiments

import (
	"testing"

	"gdsiiguard/internal/core"
)

// Regression: the suite used to run up to Parallelism/2 designs
// concurrently, each handing the GA its own worker pool of Parallelism —
// ≈ Parallelism²/2 concurrent flow evaluations in the worst case. With the
// shared evaluation budget, the process-wide number of in-flight flow
// evaluations must never exceed Parallelism. The core inflight gauge is
// maintained by the evaluation hot path itself, independently of the
// budget mechanism, so it observes the fix rather than restating it.
//
// Not t.Parallel: the gauge peak is process-global.
func TestSuiteConcurrencyIsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	const parallelism = 4
	g := core.EvalsInflightGauge()
	g.ResetPeak()

	opt := smallOptions("PRESENT", "openMSP430_1")
	opt.Parallelism = parallelism
	if _, err := Run(opt); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if peak := g.Peak(); peak > parallelism {
		t.Errorf("peak concurrent flow evaluations = %g, want ≤ %d (shared budget not honored)",
			peak, parallelism)
	} else if peak == 0 {
		t.Error("inflight gauge never moved — instrumentation broken")
	}
}
