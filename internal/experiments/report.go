package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gdsiiguard/internal/core"
)

// Fig4Report renders the Fig. 4 comparison: normalized total free sites and
// free tracks per design and defense, plus suite averages.
func (s *Suite) Fig4Report() string {
	var b strings.Builder
	rows := []string{RowICAS, RowBISA, RowBa, RowGuard}
	b.WriteString("Fig. 4 — Normalized free placement sites (free routing tracks) vs. baseline\n\n")
	fmt.Fprintf(&b, "%-14s", "Design")
	for _, r := range rows {
		fmt.Fprintf(&b, " %22s", r)
	}
	b.WriteString("\n")
	for _, d := range s.Results {
		fmt.Fprintf(&b, "%-14s", d.Name)
		for _, r := range rows {
			ns, nt := d.NormSites(r), d.NormTracks(r)
			fmt.Fprintf(&b, "      %6.1f%% (%6.1f%%)", 100*ns, 100*nt)
		}
		b.WriteString("\n")
	}
	avg := s.Averages()
	fmt.Fprintf(&b, "%-14s", "Average")
	for _, r := range rows {
		a := avg[r]
		fmt.Fprintf(&b, "      %6.1f%% (%6.1f%%)", 100*a[0], 100*a[1])
	}
	b.WriteString("\n\n")
	g := avg[RowGuard]
	fmt.Fprintf(&b, "GDSII-Guard average risk reduction: %.1f%% of free sites eliminated "+
		"(paper: 98.8%%; remaining sites 1.3%%, tracks 1.1%%)\n", 100*(1-g[0]))
	return b.String()
}

// Table2Report renders Table II: TNS, power and #DRC per design and row.
func (s *Suite) Table2Report() string {
	var b strings.Builder
	b.WriteString("Table II — Comparison of timing (TNS), power, and #DRC violations\n")
	sections := []struct {
		title string
		get   func(core.Metrics) string
	}{
		{"TNS (ps)", func(m core.Metrics) string { return fmt.Sprintf("%.1f", m.TNS) }},
		{"Power (mW)", func(m core.Metrics) string { return fmt.Sprintf("%.3f", m.PowerMW) }},
		{"#DRC", func(m core.Metrics) string { return fmt.Sprintf("%d", m.DRC) }},
	}
	for _, sec := range sections {
		fmt.Fprintf(&b, "\n%s\n%-16s", sec.title, "")
		for _, d := range s.Results {
			fmt.Fprintf(&b, " %12s", clip(d.Name, 12))
		}
		b.WriteString("\n")
		for _, row := range RowOrder {
			fmt.Fprintf(&b, "%-16s", row)
			for _, d := range s.Results {
				if m, ok := d.Metrics[row]; ok {
					fmt.Fprintf(&b, " %12s", sec.get(m))
				} else {
					fmt.Fprintf(&b, " %12s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Table1Report renders Table I: the flow parameter space.
func Table1Report(k int) string {
	var b strings.Builder
	b.WriteString("Table I — Parameter space of GDSII-Guard operators\n\n")
	fmt.Fprintf(&b, "%-18s %-44s %s\n", "Parameter", "Description", "Candidate Values")
	fmt.Fprintf(&b, "%-18s %-44s %v\n", "op_select", "The selected ECO-place operator", []core.Operator{core.CS, core.LDA})
	fmt.Fprintf(&b, "%-18s %-44s %v\n", "LDA::N", "#Grids in a row/column", core.LDAGridValues)
	fmt.Fprintf(&b, "%-18s %-44s %v\n", "LDA::n_iter", "#Density adjustment iterations", core.LDAIterValues)
	fmt.Fprintf(&b, "%-18s %-44s %v\n", "RWS::scale_M[i]",
		fmt.Sprintf("Routing width scale of metal i (i=1..%d)", k), core.ScaleValues)
	fmt.Fprintf(&b, "\nSearch space size |D| = %d (paper: ≈945k for K = 10)\n", core.SpaceSize(k))
	return b.String()
}

// Fig5Report renders an ASCII scatter of the explored space and the Pareto
// front for one design.
func Fig5Report(pd *ParetoData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — Explored Pareto front: %s (%d evaluations, %d on front)\n",
		pd.Design, len(pd.Points), len(pd.Front))
	if len(pd.Points) == 0 {
		return b.String()
	}
	const W, H = 64, 20
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pd.Points {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, H)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", W))
	}
	plot := func(p [2]float64, ch byte) {
		x := int((p[0] - minX) / (maxX - minX) * float64(W-1))
		y := int((p[1] - minY) / (maxY - minY) * float64(H-1))
		grid[H-1-y][x] = ch
	}
	for _, p := range pd.Points {
		plot(p, '.')
	}
	for _, p := range pd.Front {
		plot(p, '*')
	}
	fmt.Fprintf(&b, "  -TNS (ps)  [%.0f .. %.0f]\n", minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s|\n", string(row))
	}
	fmt.Fprintf(&b, "  Security   [%.3f .. %.3f]   (. explored, * Pareto front)\n", minX, maxX)
	// Front listing.
	for _, p := range pd.Front {
		fmt.Fprintf(&b, "    front: security=%.4f  TNS=%.1f ps\n", p[0], -p[1])
	}
	return b.String()
}

// RuntimeReport renders the §IV-D comparison.
func RuntimeReport(rc *RuntimeComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Runtime comparison on %s (measured in this substrate; paper hours on the authors' testbed)\n\n", rc.Design)
	fmt.Fprintf(&b, "%-14s %14s %12s %18s\n", "Defense", "Measured", "Paper (h)", "Normalized (×Guard)")
	guard := rc.Measured[RowGuard].Seconds()
	rows := []string{RowICAS, RowBISA, RowBa, RowGuard}
	for _, r := range rows {
		norm := math.NaN()
		if guard > 0 {
			norm = rc.Measured[r].Seconds() / guard
		}
		fmt.Fprintf(&b, "%-14s %14s %12.1f %18.2f\n", r, rc.Measured[r].Round(1e7), rc.PaperHours[r], norm)
	}
	paperNorm := []float64{9.4 / 4.8, 6.5 / 4.8, 7.0 / 4.8, 1.0}
	fmt.Fprintf(&b, "\nPaper normalized (×Guard): ICAS %.2f, BISA %.2f, Ba %.2f, Guard 1.00\n",
		paperNorm[0], paperNorm[1], paperNorm[2])
	return b.String()
}

// SummaryReport is a compact one-screen digest of a suite run.
func (s *Suite) SummaryReport() string {
	var b strings.Builder
	b.WriteString("Per-design GDSII-Guard outcome (selected Pareto solution)\n\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %12s %8s %6s\n",
		"Design", "sites%", "tracks%", "TNS base", "TNS guard", "ΔPwr%", "DRC")
	for _, d := range s.Results {
		g := d.Metrics[RowGuard]
		o := d.Metrics[RowOriginal]
		dp := 0.0
		if o.PowerMW > 0 {
			dp = 100 * (g.PowerMW/o.PowerMW - 1)
		}
		fmt.Fprintf(&b, "%-14s %9.1f%% %9.1f%% %12.1f %12.1f %7.1f%% %6d\n",
			d.Name, 100*d.NormSites(RowGuard), 100*d.NormTracks(RowGuard),
			o.TNS, g.TNS, dp, g.DRC)
	}
	return b.String()
}

// SortResults orders the suite's results to match the requested design
// order (parallel evaluation preserves order already; this is a guard for
// subsets).
func (s *Suite) SortResults(order []string) {
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	sort.SliceStable(s.Results, func(i, j int) bool {
		return pos[s.Results[i].Name] < pos[s.Results[j].Name]
	})
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
