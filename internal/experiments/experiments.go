// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the benchmark suite:
//
//   - Fig. 4:  normalized free sites / free tracks per design for ICAS,
//     BISA, Ba et al. and GDSII-Guard, plus the suite averages behind the
//     98.8% headline;
//   - Fig. 5:  the explored search space and Pareto fronts of the
//     multi-objective optimizer on AES_1, AES_3, MISTY and openMSP430_2;
//   - Table I: the flow parameter space and its size;
//   - Table II: TNS, power and #DRC for the original design and every
//     defense;
//   - §IV-D:   the runtime comparison on AES_2 (measured wall time here,
//     reported next to the paper's hours).
//
// Everything is deterministic for a given seed except the runtime
// comparison, which measures real wall time by design.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"gdsiiguard/internal/baselines"
	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/nsga2"
)

// Defense row labels, in presentation order.
const (
	RowOriginal = "Original Design"
	RowICAS     = "ICAS"
	RowBISA     = "BISA"
	RowBa       = "Ba et al."
	RowGuard    = "GDSII-Guard"
)

// RowOrder is the Table II row order.
var RowOrder = []string{RowOriginal, RowICAS, RowBISA, RowBa, RowGuard}

// Options configures a suite run.
type Options struct {
	// Designs to evaluate (default: the full 12-design suite).
	Designs []string
	// GAPop/GAGens size the NSGA-II exploration per design
	// (defaults 12/6; Quick uses 8/4).
	GAPop, GAGens int
	// Quick shrinks the GA for fast smoke runs.
	Quick bool
	// Parallelism bounds concurrent designs and GA evaluations.
	Parallelism int
	// Seed drives everything.
	Seed int64
}

func (o Options) withDefaults() Options {
	if len(o.Designs) == 0 {
		o.Designs = benchdesigns.Names()
	}
	if o.GAPop == 0 {
		o.GAPop = 12
	}
	if o.GAGens == 0 {
		o.GAGens = 6
	}
	if o.Quick {
		o.GAPop, o.GAGens = 8, 4
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// DesignResult holds everything measured for one design.
type DesignResult struct {
	Name     string
	Baseline *core.Baseline
	// Metrics per defense row (RowOriginal..RowGuard).
	Metrics map[string]core.Metrics
	// GALog is the optimizer trace (Fig. 5 source).
	GALog *nsga2.RunLog
	// Selected is the Pareto solution chosen for the comparison (knee
	// point of the front).
	Selected *nsga2.Individual
}

// NormSites and NormTracks return the Fig. 4 normalized security metrics of
// a defense row (free sites / tracks over baseline).
func (d *DesignResult) NormSites(row string) float64 {
	m, ok := d.Metrics[row]
	if !ok || d.Baseline.Metrics.ERSites == 0 {
		return math.NaN()
	}
	return float64(m.ERSites) / float64(d.Baseline.Metrics.ERSites)
}

// NormTracks returns the normalized free routing tracks of a defense row.
func (d *DesignResult) NormTracks(row string) float64 {
	m, ok := d.Metrics[row]
	if !ok || d.Baseline.Metrics.ERTracks == 0 {
		return math.NaN()
	}
	return m.ERTracks / d.Baseline.Metrics.ERTracks
}

// Suite is the result of evaluating all defenses over all designs.
type Suite struct {
	Options Options
	Results []*DesignResult
}

// Run executes the full comparison.
func Run(opt Options) (*Suite, error) {
	opt = opt.withDefaults()
	suite := &Suite{Options: opt}
	results := make([]*DesignResult, len(opt.Designs))
	errs := make([]error, len(opt.Designs))

	// One evaluation budget for the whole suite: the per-design serial
	// phases and every design's GA workers all draw from it, so total
	// evaluation concurrency is Parallelism — not the ≈ Parallelism²/2 the
	// suite used to reach by handing each of Parallelism/2 concurrent
	// designs its own GA worker pool of Parallelism.
	budget := nsga2.NewEvalBudget(opt.Parallelism)
	sem := make(chan struct{}, maxInt(1, opt.Parallelism/2))
	var wg sync.WaitGroup
	for i, name := range opt.Designs {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = evalDesign(name, opt, budget)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	suite.Results = results
	return suite, nil
}

// evalDesign runs the baseline, the three prior defenses and the
// GDSII-Guard optimizer on one design. Every evaluation — the serial
// phases here and the GA workers inside the optimizer — holds a slot of
// the shared budget, so concurrently evaluated designs cannot oversubscribe
// the suite's Parallelism.
func evalDesign(name string, opt Options, budget *nsga2.EvalBudget) (*DesignResult, error) {
	ctx := context.Background()
	withSlot := func(f func() error) error {
		if err := budget.Acquire(ctx); err != nil {
			return err
		}
		defer budget.Release()
		return f()
	}

	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	var base *core.Baseline
	if err := withSlot(func() (err error) {
		base, err = core.EvalBaseline(d.Layout, core.FlowConfig{
			Constraints: d.Cons,
			Activity:    d.Spec.Activity,
			Seed:        opt.Seed,
		})
		return err
	}); err != nil {
		return nil, fmt.Errorf("experiments: %s baseline: %w", name, err)
	}
	res := &DesignResult{
		Name:     name,
		Baseline: base,
		Metrics:  map[string]core.Metrics{RowOriginal: base.Metrics},
	}

	if err := withSlot(func() error {
		icas, err := baselines.RunICAS(base, baselines.ICASOptions{Seed: opt.Seed})
		if err == nil {
			res.Metrics[RowICAS] = icas.Metrics
		}
		return err
	}); err != nil {
		return nil, fmt.Errorf("experiments: %s ICAS: %w", name, err)
	}
	if err := withSlot(func() error {
		bisa, err := baselines.RunBISA(base)
		if err == nil {
			res.Metrics[RowBISA] = bisa.Metrics
		}
		return err
	}); err != nil {
		return nil, fmt.Errorf("experiments: %s BISA: %w", name, err)
	}
	if err := withSlot(func() error {
		ba, err := baselines.RunBa(base, baselines.BaOptions{})
		if err == nil {
			res.Metrics[RowBa] = ba.Metrics
		}
		return err
	}); err != nil {
		return nil, fmt.Errorf("experiments: %s Ba: %w", name, err)
	}

	log, err := nsga2.Optimize(base, nsga2.Options{
		PopSize:     opt.GAPop,
		Generations: opt.GAGens,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
		Budget:      budget,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s GA: %w", name, err)
	}
	res.GALog = log
	sel := SelectKnee(log.Front)
	if sel == nil {
		// No feasible front point: fall back to the identity flow.
		var r *core.Result
		if err := withSlot(func() (err error) {
			r, err = core.Run(base, core.DefaultParams(d.Layout.Lib().NumLayers()))
			return err
		}); err != nil {
			return nil, err
		}
		res.Metrics[RowGuard] = r.Metrics
	} else {
		res.Selected = sel
		res.Metrics[RowGuard] = sel.Metrics
	}
	return res, nil
}

// SelectKnee picks the knee point of a Pareto front: the solution closest
// (after per-objective normalization) to the utopia point. The paper
// selects one Pareto solution per design for the Table II comparison.
func SelectKnee(front []nsga2.Individual) *nsga2.Individual {
	if len(front) == 0 {
		return nil
	}
	if len(front) == 1 {
		return &front[0]
	}
	minS, maxS := math.Inf(1), math.Inf(-1)
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, in := range front {
		o := in.Objectives()
		minS, maxS = math.Min(minS, o[0]), math.Max(maxS, o[0])
		minT, maxT = math.Min(minT, o[1]), math.Max(maxT, o[1])
	}
	best, bestD := 0, math.Inf(1)
	for i, in := range front {
		o := in.Objectives()
		ds, dt := 0.0, 0.0
		if maxS > minS {
			ds = (o[0] - minS) / (maxS - minS)
		}
		if maxT > minT {
			dt = (o[1] - minT) / (maxT - minT)
		}
		// Security is the primary objective (the paper's headline):
		// weight it more heavily in the knee selection.
		d := 2*ds*ds + dt*dt
		if d < bestD {
			best, bestD = i, d
		}
	}
	return &front[best]
}

// Averages returns the suite-average normalized free sites and tracks per
// defense row — the numbers behind "lowers the risk of Trojan insertion by
// 98.8% on average".
func (s *Suite) Averages() map[string][2]float64 {
	out := map[string][2]float64{}
	for _, row := range []string{RowICAS, RowBISA, RowBa, RowGuard} {
		var sumS, sumT float64
		var n int
		for _, d := range s.Results {
			ns, nt := d.NormSites(row), d.NormTracks(row)
			if math.IsNaN(ns) || math.IsNaN(nt) {
				continue
			}
			sumS += ns
			sumT += nt
			n++
		}
		if n > 0 {
			out[row] = [2]float64{sumS / float64(n), sumT / float64(n)}
		}
	}
	return out
}

// RuntimeComparison measures the wall time of each defense on one design
// (the paper uses AES_2, its largest). Paper hours: ICAS 9.4, BISA 6.5,
// Ba 7.0, GDSII-Guard 4.8.
type RuntimeComparison struct {
	Design   string
	Measured map[string]time.Duration
	// PaperHours are the published wall times for reference.
	PaperHours map[string]float64
}

// RunRuntimeComparison measures defense runtimes on the named design.
func RunRuntimeComparison(name string, opt Options) (*RuntimeComparison, error) {
	opt = opt.withDefaults()
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &RuntimeComparison{
		Design:   name,
		Measured: map[string]time.Duration{},
		PaperHours: map[string]float64{
			RowICAS: 9.4, RowBISA: 6.5, RowBa: 7.0, RowGuard: 4.8,
		},
	}
	t0 := time.Now()
	if _, err := baselines.RunICAS(base, baselines.ICASOptions{Seed: opt.Seed}); err != nil {
		return nil, err
	}
	out.Measured[RowICAS] = time.Since(t0)

	t0 = time.Now()
	if _, err := baselines.RunBISA(base); err != nil {
		return nil, err
	}
	out.Measured[RowBISA] = time.Since(t0)

	t0 = time.Now()
	if _, err := baselines.RunBa(base, baselines.BaOptions{}); err != nil {
		return nil, err
	}
	out.Measured[RowBa] = time.Since(t0)

	t0 = time.Now()
	if _, err := nsga2.Optimize(base, nsga2.Options{
		PopSize:     opt.GAPop,
		Generations: opt.GAGens,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	}); err != nil {
		return nil, err
	}
	out.Measured[RowGuard] = time.Since(t0)
	return out, nil
}

// Fig5Designs are the four designs whose Pareto fronts the paper plots.
var Fig5Designs = []string{"AES_1", "AES_3", "MISTY", "openMSP430_2"}

// ParetoData is the Fig. 5 content for one design.
type ParetoData struct {
	Design string
	// All evaluated points and the non-dominated front, as
	// (security, −TNS ps) pairs.
	Points [][2]float64
	Front  [][2]float64
}

// RunPareto explores the parameter space of one design and returns the
// scatter and front of Fig. 5.
func RunPareto(name string, opt Options) (*ParetoData, error) {
	opt = opt.withDefaults()
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	log, err := nsga2.Optimize(base, nsga2.Options{
		PopSize:     opt.GAPop,
		Generations: opt.GAGens,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	pd := &ParetoData{Design: name}
	for _, in := range log.Evaluations {
		o := in.Objectives()
		pd.Points = append(pd.Points, [2]float64{o[0], o[1]})
	}
	for _, in := range log.Front {
		o := in.Objectives()
		pd.Front = append(pd.Front, [2]float64{o[0], o[1]})
	}
	sort.Slice(pd.Front, func(i, j int) bool { return pd.Front[i][0] < pd.Front[j][0] })
	return pd, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
