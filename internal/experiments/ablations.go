package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/nsga2"
)

// AblationOperators (A1) contrasts the two ECO placement operators on a
// loose-timing and a tight-timing design, the design-dependence §III-B
// motivates: CS suits loose designs; LDA preserves timing on tight ones.
type OperatorAblation struct {
	Design      string
	Tight       bool
	CS, LDA     core.Metrics
	BaselineTNS float64
}

// RunOperatorAblation evaluates CS-only and LDA-only flows on a design.
func RunOperatorAblation(name string, seed int64) (*OperatorAblation, error) {
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	k := d.Layout.Lib().NumLayers()
	pCS := core.DefaultParams(k)
	rCS, err := core.Run(base, pCS)
	if err != nil {
		return nil, err
	}
	pLDA := core.DefaultParams(k)
	pLDA.Op = core.LDA
	pLDA.LDAGridN = 8
	pLDA.LDAIters = 2
	rLDA, err := core.Run(base, pLDA)
	if err != nil {
		return nil, err
	}
	return &OperatorAblation{
		Design:      name,
		Tight:       d.Spec.Tight(),
		CS:          rCS.Metrics,
		LDA:         rLDA.Metrics,
		BaselineTNS: base.Metrics.TNS,
	}, nil
}

// OperatorAblationReport renders A1.
func OperatorAblationReport(rows []*OperatorAblation) string {
	var b strings.Builder
	b.WriteString("Ablation A1 — Cell Shift vs. Local Density Adjustment per timing character\n\n")
	fmt.Fprintf(&b, "%-14s %6s %22s %22s\n", "Design", "tight", "CS (sec / TNS)", "LDA (sec / TNS)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6v    %6.3f / %-10.1f    %6.3f / %-10.1f\n",
			r.Design, r.Tight, r.CS.Security, r.CS.TNS, r.LDA.Security, r.LDA.TNS)
	}
	return b.String()
}

// RWSAblation (A2) quantifies §IV-C's observation that Routing Width
// Scaling removes extra routing tracks on top of ECO placement: "the
// normalized free routing tracks are 15% less than the site counterpart".
type RWSAblation struct {
	Design string
	// Unscaled and Scaled are the flow metrics with scale 1.0 everywhere
	// vs. scale 1.2 on the signal stack.
	Unscaled, Scaled core.Metrics
}

// RunRWSAblation evaluates the CS flow with and without width scaling.
func RunRWSAblation(name string, seed int64) (*RWSAblation, error) {
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	k := d.Layout.Lib().NumLayers()
	p0 := core.DefaultParams(k)
	r0, err := core.Run(base, p0)
	if err != nil {
		return nil, err
	}
	p1 := core.DefaultParams(k)
	for i := 0; i < k && i < 6; i++ {
		p1.ScaleM[i] = 1.2
	}
	r1, err := core.Run(base, p1)
	if err != nil {
		return nil, err
	}
	return &RWSAblation{Design: name, Unscaled: r0.Metrics, Scaled: r1.Metrics}, nil
}

// RWSAblationReport renders A2.
func RWSAblationReport(rows []*RWSAblation) string {
	var b strings.Builder
	b.WriteString("Ablation A2 — Routing Width Scaling effect on free routing tracks\n\n")
	fmt.Fprintf(&b, "%-14s %16s %16s %10s\n", "Design", "tracks (1.0x)", "tracks (1.2x)", "reduction")
	for _, r := range rows {
		red := 0.0
		if r.Unscaled.ERTracks > 0 {
			red = 100 * (1 - r.Scaled.ERTracks/r.Unscaled.ERTracks)
		}
		fmt.Fprintf(&b, "%-14s %16.0f %16.0f %9.1f%%\n",
			r.Design, r.Unscaled.ERTracks, r.Scaled.ERTracks, red)
	}
	b.WriteString("\n(paper: RWS leaves free tracks ~15% below the free-site counterpart)\n")
	return b.String()
}

// SearchAblation (A3) compares NSGA-II against random search at an equal
// evaluation budget — the justification for adopting NSGA-II (§IV-A).
type SearchAblation struct {
	Design string
	// Best feasible security score found by each strategy, and the number
	// of evaluations each used.
	NSGA2Best, RandomBest float64
	NSGA2Evals            int
	// Hypervolume-style proxy: the count of non-dominated feasible points.
	NSGA2Front, RandomFront int
}

// RunSearchAblation runs both strategies with the same budget.
func RunSearchAblation(name string, opt Options) (*SearchAblation, error) {
	opt = opt.withDefaults()
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	log, err := nsga2.Optimize(base, nsga2.Options{
		PopSize:     opt.GAPop,
		Generations: opt.GAGens,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	out := &SearchAblation{Design: name, NSGA2Evals: len(log.Evaluations)}
	out.NSGA2Best = bestFeasibleSecurity(log.Evaluations)
	out.NSGA2Front = len(log.Front)

	// Random search with the same evaluation budget.
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	k := d.Layout.Lib().NumLayers()
	var randomEvals []nsga2.Individual
	seen := map[string]bool{}
	for len(randomEvals) < out.NSGA2Evals {
		p := core.RandomParams(k, rng)
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		r, err := core.Run(base, p)
		if err != nil {
			return nil, err
		}
		randomEvals = append(randomEvals, nsga2.Individual{
			Params:   p,
			Metrics:  r.Metrics,
			Feasible: core.Feasible(r.Metrics, base, 20, 1.2),
		})
	}
	out.RandomBest = bestFeasibleSecurity(randomEvals)
	front := 0
	for i := range randomEvals {
		if !randomEvals[i].Feasible {
			continue
		}
		dominated := false
		for j := range randomEvals {
			if i == j || !randomEvals[j].Feasible {
				continue
			}
			oi, oj := randomEvals[i].Objectives(), randomEvals[j].Objectives()
			if oj[0] <= oi[0] && oj[1] <= oi[1] && (oj[0] < oi[0] || oj[1] < oi[1]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front++
		}
	}
	out.RandomFront = front
	return out, nil
}

func bestFeasibleSecurity(evals []nsga2.Individual) float64 {
	best := 1.0
	for _, in := range evals {
		if in.Feasible && in.Metrics.Security < best {
			best = in.Metrics.Security
		}
	}
	return best
}

// SearchAblationReport renders A3.
func SearchAblationReport(r *SearchAblation) string {
	var b strings.Builder
	b.WriteString("Ablation A3 — NSGA-II vs. random search at equal evaluation budget\n\n")
	fmt.Fprintf(&b, "Design %s, %d evaluations each\n", r.Design, r.NSGA2Evals)
	fmt.Fprintf(&b, "  NSGA-II: best feasible security %.4f, %d front points\n", r.NSGA2Best, r.NSGA2Front)
	fmt.Fprintf(&b, "  Random:  best feasible security %.4f, %d front points\n", r.RandomBest, r.RandomFront)
	return b.String()
}

// DiceAblation (A4) quantifies the dicing stage's contribution on top of
// the pure Algorithm 1 row passes (see DESIGN.md §6.2): without it, mass
// accumulated against the passes' blind spots stays exploitable.
type DiceAblation struct {
	Design string
	// BaselineER is the unhardened exploitable-site count; WithoutDice and
	// WithDice the counts after CS without/with the dicing stage.
	BaselineER, WithoutDice, WithDice int
}

// RunDiceAblation runs CS with and without dicing on one design.
func RunDiceAblation(name string, seed int64) (*DiceAblation, error) {
	d, err := benchdesigns.Build(name)
	if err != nil {
		return nil, err
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	out := &DiceAblation{Design: name, BaselineER: base.Metrics.ERSites}
	for _, dice := range []bool{false, true} {
		l := base.Layout.Clone()
		core.Preprocess(l)
		core.CellShiftWithOptions(l, base.Config.Security.ThreshER, dice)
		res := &core.Result{}
		if err := core.Evaluate(l, base, res); err != nil {
			return nil, err
		}
		if dice {
			out.WithDice = res.Metrics.ERSites
		} else {
			out.WithoutDice = res.Metrics.ERSites
		}
	}
	return out, nil
}

// DiceAblationReport renders A4.
func DiceAblationReport(rows []*DiceAblation) string {
	var b strings.Builder
	b.WriteString("Ablation A4 — dicing stage contribution to Cell Shift\n\n")
	fmt.Fprintf(&b, "%-14s %10s %14s %12s\n", "Design", "baseline", "passes only", "with dicing")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %14d %12d\n", r.Design, r.BaselineER, r.WithoutDice, r.WithDice)
	}
	return b.String()
}
