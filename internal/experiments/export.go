package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// suiteJSON is the serialized form of a suite run.
type suiteJSON struct {
	Designs []designJSON          `json:"designs"`
	Average map[string][2]float64 `json:"average_norm_sites_tracks"`
}

type designJSON struct {
	Name     string                `json:"name"`
	Rows     map[string]metricJSON `json:"rows"`
	Selected string                `json:"selected_params,omitempty"`
}

type metricJSON struct {
	Security   float64 `json:"security"`
	ERSites    int     `json:"er_sites"`
	ERTracks   float64 `json:"er_tracks"`
	NormSites  float64 `json:"norm_sites"`
	NormTracks float64 `json:"norm_tracks"`
	TNSPS      float64 `json:"tns_ps"`
	WNSPS      float64 `json:"wns_ps"`
	PowerMW    float64 `json:"power_mw"`
	DRC        int     `json:"drc"`
}

// WriteJSON serializes the suite's per-design, per-defense metrics.
func (s *Suite) WriteJSON(w io.Writer) error {
	out := suiteJSON{Average: s.Averages()}
	for _, d := range s.Results {
		dj := designJSON{Name: d.Name, Rows: map[string]metricJSON{}}
		for row, m := range d.Metrics {
			dj.Rows[row] = metricJSON{
				Security:   m.Security,
				ERSites:    m.ERSites,
				ERTracks:   m.ERTracks,
				NormSites:  d.NormSites(row),
				NormTracks: d.NormTracks(row),
				TNSPS:      m.TNS,
				WNSPS:      m.WNS,
				PowerMW:    m.PowerMW,
				DRC:        m.DRC,
			}
		}
		if d.Selected != nil {
			dj.Selected = d.Selected.Params.Key()
		}
		out.Designs = append(out.Designs, dj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the Fig. 5 scatter of one design as CSV
// (security, minus_tns_ps, on_front).
func (pd *ParetoData) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("security,minus_tns_ps,on_front\n")
	onFront := map[[2]float64]bool{}
	for _, p := range pd.Front {
		onFront[p] = true
	}
	for _, p := range pd.Points {
		fmt.Fprintf(&b, "%.6f,%.3f,%v\n", p[0], p[1], onFront[p])
	}
	_, err := io.WriteString(w, b.String())
	return err
}
