package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/opencell45"
)

func smallOptions(designs ...string) Options {
	return Options{Designs: designs, GAPop: 6, GAGens: 2, Seed: 1}
}

func TestSuiteOnSmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	suite, err := Run(smallOptions("PRESENT"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(suite.Results) != 1 {
		t.Fatalf("results = %d", len(suite.Results))
	}
	d := suite.Results[0]
	for _, row := range RowOrder {
		if _, ok := d.Metrics[row]; !ok {
			t.Errorf("row %q missing", row)
		}
	}
	// Normalizations: original is exactly 1.0; defenses ≤ 1 + slack.
	if ns := d.NormSites(RowOriginal); math.Abs(ns-1) > 1e-9 {
		t.Errorf("original normalized sites = %g", ns)
	}
	if g := d.NormSites(RowGuard); g >= 1.0 {
		t.Errorf("GDSII-Guard normalized sites = %g, want < 1", g)
	}
	// Reports render.
	for _, rep := range []string{suite.Fig4Report(), suite.Table2Report(), suite.SummaryReport()} {
		if len(rep) < 50 {
			t.Error("report suspiciously short")
		}
	}
	if !strings.Contains(suite.Fig4Report(), "PRESENT") {
		t.Error("Fig4 report lacks design name")
	}
	avg := suite.Averages()
	if _, ok := avg[RowGuard]; !ok {
		t.Error("averages lack GDSII-Guard")
	}
}

func TestSelectKnee(t *testing.T) {
	if SelectKnee(nil) != nil {
		t.Error("empty front should yield nil")
	}
	mk := func(sec, tns float64) nsga2.Individual {
		return nsga2.Individual{Feasible: true, Metrics: core.Metrics{Security: sec, TNS: tns}}
	}
	single := []nsga2.Individual{mk(0.5, -10)}
	if SelectKnee(single) == nil {
		t.Error("singleton front should yield the point")
	}
	front := []nsga2.Individual{
		mk(0.02, -500), // extreme security, bad timing
		mk(0.10, -50),  // knee-ish
		mk(0.90, -1),   // extreme timing, bad security
	}
	sel := SelectKnee(front)
	if sel == nil {
		t.Fatal("no knee")
	}
	if sel.Metrics.Security == 0.90 {
		t.Errorf("knee picked the security-worst extreme: %+v", sel.Metrics)
	}
}

func TestTable1Report(t *testing.T) {
	rep := Table1Report(opencell45.NumLayers)
	for _, want := range []string{"op_select", "LDA::N", "RWS::scale_M[i]", "944784"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Table I report missing %q", want)
		}
	}
}

func TestFig5ReportRendering(t *testing.T) {
	pd := &ParetoData{
		Design: "X",
		Points: [][2]float64{{0.1, 10}, {0.5, 5}, {0.9, 1}},
		Front:  [][2]float64{{0.1, 10}, {0.9, 1}},
	}
	rep := Fig5Report(pd)
	if !strings.Contains(rep, "*") || !strings.Contains(rep, ".") {
		t.Error("scatter lacks plotted points")
	}
	if !strings.Contains(rep, "front: security=0.1000") {
		t.Errorf("front listing missing:\n%s", rep)
	}
	// Degenerate: no points.
	if rep := Fig5Report(&ParetoData{Design: "Y"}); !strings.Contains(rep, "Y") {
		t.Error("empty report lacks design name")
	}
}

func TestOperatorAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := RunOperatorAblation("PRESENT", 1)
	if err != nil {
		t.Fatalf("ablation: %v", err)
	}
	if r.Tight {
		t.Error("PRESENT should be loose")
	}
	rep := OperatorAblationReport([]*OperatorAblation{r})
	if !strings.Contains(rep, "PRESENT") {
		t.Error("report lacks design")
	}
}

func TestRWSAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := RunRWSAblation("PRESENT", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := RWSAblationReport([]*RWSAblation{r})
	if !strings.Contains(rep, "PRESENT") {
		t.Error("report lacks design")
	}
}

func TestExportJSONAndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	suite, err := Run(smallOptions("PRESENT"))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"PRESENT"`, `"norm_sites"`, `"GDSII-Guard"`, `"average_norm_sites_tracks"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	pd := &ParetoData{
		Design: "X",
		Points: [][2]float64{{0.1, 10}, {0.5, 5}},
		Front:  [][2]float64{{0.1, 10}},
	}
	var csv strings.Builder
	if err := pd.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "0.100000,10.000,true") ||
		!strings.Contains(csv.String(), "0.500000,5.000,false") {
		t.Errorf("CSV content wrong:\n%s", csv.String())
	}
}

func TestRuntimeReportRendering(t *testing.T) {
	rc := &RuntimeComparison{
		Design: "AES_2",
		Measured: map[string]time.Duration{
			RowICAS: 4 * time.Second, RowBISA: 3 * time.Second,
			RowBa: 2 * time.Second, RowGuard: time.Second,
		},
		PaperHours: map[string]float64{RowICAS: 9.4, RowBISA: 6.5, RowBa: 7.0, RowGuard: 4.8},
	}
	rep := RuntimeReport(rc)
	for _, want := range []string{"AES_2", "ICAS", "GDSII-Guard", "9.4", "4.00"} {
		if !strings.Contains(rep, want) {
			t.Errorf("runtime report missing %q:\n%s", want, rep)
		}
	}
}

func TestDiceAblationReportRendering(t *testing.T) {
	rep := DiceAblationReport([]*DiceAblation{{Design: "X", BaselineER: 100, WithoutDice: 60, WithDice: 5}})
	for _, want := range []string{"X", "100", "60", "5"} {
		if !strings.Contains(rep, want) {
			t.Errorf("dice report missing %q", want)
		}
	}
}
