package sta

// Delta-STA: re-propagate only the fanout/fanin cones of nets whose
// electrical characterization changed, against a donor full analysis.
//
// The donor retains every per-net array (arrival, wire delay, required
// time, load) and the levelized graph. A changed net is re-characterized;
// if its wire delay or load actually differs (exact float comparison), the
// change propagates:
//
//   - Forward: a combinational instance re-evaluates iff one of its input
//     nets' wire delay or arrival changed, or one of its output nets' load
//     changed. Arrivals are compared exactly after re-evaluation; equal
//     values prune the cone (arrival is a pure function of the inputs, so
//     equal inputs ⇒ equal outputs downstream). The sweep walks levels
//     ascending, so every re-evaluation sees final inputs.
//   - Backward: a net's required time recomputes iff its own wire delay
//     changed, a sink's output-net load or required time changed. The
//     sweep walks depth buckets descending; exact comparison prunes.
//
// TNS/WNS endpoint recording is a float sum whose value depends on
// accumulation order, so it always rescans every endpoint in the same
// net-ID order as the full analysis — an O(nets) scan with no propagation.
// Per-instance slack recomputes only for instances adjacent to a net whose
// arrival or required time moved. The result is bit-identical to a full
// AnalyzeWithGraph on the new state; the delta equality tests check this
// exactly.

import (
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/tech"
)

// DeltaStats reports how much of the graph a delta analysis actually
// re-propagated.
type DeltaStats struct {
	// ChangedNets is the number of nets marked changed by the caller.
	ChangedNets int
	// ConeInsts is the number of combinational instances re-evaluated in
	// the forward sweep.
	ConeInsts int
	// ConeNets is the number of nets whose required time was recomputed in
	// the backward sweep.
	ConeNets int
}

// AnalyzeDelta analyzes l against a donor result, re-propagating only the
// cones of nets with changed[id] set (nets whose routed segments or
// surrounding congestion differ from the donor evaluation — route.Warm's
// ChangedNets mask). The donor must come from an Analyze of the same
// netlist under the same constraints; incompatibility returns (nil, stats,
// nil) and the caller falls back to a full analysis.
func AnalyzeDelta(l *layout.Layout, opt Options, donor *Result, changed []bool) (*Result, DeltaStats, error) {
	var ds DeltaStats
	if err := fault.Hit(fault.STA); err != nil {
		return nil, ds, err
	}
	period, err := effectivePeriod(opt)
	if err != nil {
		return nil, ds, err
	}
	if opt.EstimateLayer <= 0 {
		opt.EstimateLayer = 3
	}
	nl := l.Netlist
	if donor == nil || donor.graph == nil || donor.PeriodPS != period ||
		donor.graph.numInsts != len(nl.Insts) || donor.graph.numNets != len(nl.Nets) ||
		len(changed) != len(nl.Nets) || len(donor.netArr) != len(nl.Nets) {
		return nil, ds, nil
	}
	defer staDeltaSeconds.Start().Stop()
	g := donor.graph

	e := &engine{
		l: l, opt: opt, period: period,
		netArr:  append([]float64(nil), donor.netArr...),
		netWire: append([]float64(nil), donor.netWire...),
		netReq:  append([]float64(nil), donor.netReq...),
		netCap:  append([]float64(nil), donor.netCap...),
	}

	// Re-characterize changed nets, tracking which actually moved.
	wireChanged := make([]bool, len(nl.Nets))
	capChanged := make([]bool, len(nl.Nets))
	for id, ch := range changed {
		if !ch {
			continue
		}
		ds.ChangedNets++
		oldWire, oldCap := e.netWire[id], e.netCap[id]
		e.characterize(nl.Nets[id])
		wireChanged[id] = e.netWire[id] != oldWire
		capChanged[id] = e.netCap[id] != oldCap
	}

	// Forward cone. arrMoved tracks nets whose arrival differs from the
	// donor's (for the slack rescan at the end).
	instDirty := make([]bool, len(nl.Insts))
	arrMoved := make([]bool, len(nl.Nets))
	markSinkInsts := func(n *netlist.Net) {
		for _, s := range n.Sinks {
			if !s.IsPort() && s.Inst != nil && g.instLevel[s.Inst.ID] >= 0 {
				instDirty[s.Inst.ID] = true
			}
		}
	}
	for id := range nl.Nets {
		n := nl.Nets[id]
		if wireChanged[id] {
			markSinkInsts(n) // sink arrIn = arr + wire changed
		}
		if !capChanged[id] || !n.HasDriver() || n.Driver.IsPort() || n.Driver.Inst == nil {
			continue
		}
		// Load changed: the driving cell's output delay moves.
		drv := n.Driver.Inst
		switch {
		case drv.Master.Class == tech.Seq:
			old := e.netArr[id]
			e.launchSeq(drv)
			if e.netArr[id] != old {
				arrMoved[id] = true
				markSinkInsts(n)
			}
		case g.instLevel[drv.ID] >= 0:
			instDirty[drv.ID] = true
		}
	}
	for _, level := range g.levels {
		for _, iid := range level {
			if !instDirty[iid] {
				continue
			}
			ds.ConeInsts++
			in := nl.Insts[iid]
			// Re-evaluate and propagate only outputs whose arrival moved.
			for _, oc := range in.Conns {
				p := in.Master.Pin(oc.Pin)
				if p == nil || p.Dir != tech.Output || oc.Net == nil {
					continue
				}
				old := e.netArr[oc.Net.ID]
				e.evalCombOne(in, oc)
				if e.netArr[oc.Net.ID] != old {
					arrMoved[oc.Net.ID] = true
					markSinkInsts(oc.Net)
				}
			}
		}
	}

	// Backward cone.
	reqDirty := make([]bool, len(nl.Nets))
	reqMoved := make([]bool, len(nl.Nets))
	markDriverInputs := func(n *netlist.Net) {
		if !n.HasDriver() || n.Driver.IsPort() || n.Driver.Inst == nil {
			return
		}
		drv := n.Driver.Inst
		if g.instLevel[drv.ID] < 0 {
			return // required times only flow through combinational cells
		}
		for _, c := range drv.Conns {
			p := drv.Master.Pin(c.Pin)
			if p == nil || p.Dir != tech.Input || p.IsClock || c.Net == nil {
				continue
			}
			reqDirty[c.Net.ID] = true
		}
	}
	for id := range nl.Nets {
		if wireChanged[id] {
			reqDirty[id] = true // the netWire[n] term in every contribution
		}
		if capChanged[id] {
			// Every arc into this net's driver pays DriveRes×load.
			markDriverInputs(nl.Nets[id])
		}
	}
	for d := len(g.netsAtDepth) - 1; d >= 0; d-- {
		for _, id := range g.netsAtDepth[d] {
			if !reqDirty[id] {
				continue
			}
			ds.ConeNets++
			n := nl.Nets[id]
			old := e.netReq[id]
			e.netReq[id] = e.reqForNet(n)
			if e.netReq[id] != old {
				reqMoved[id] = true
				markDriverInputs(n) // strictly lower depth
			}
		}
	}

	// Endpoint recording: full rescan in the canonical order (float sum).
	res := &Result{PeriodPS: period}
	e.record(nl, res)

	// Per-instance slack: donor values stay valid unless an adjacent net's
	// arrival or required time moved.
	res.instSlack = append([]float64(nil), donor.instSlack...)
	for id := range nl.Nets {
		if !arrMoved[id] && !reqMoved[id] {
			continue
		}
		n := nl.Nets[id]
		if d := n.Driver; n.HasDriver() && !d.IsPort() && d.Inst != nil {
			res.instSlack[d.Inst.ID] = e.instWorstSlack(d.Inst)
		}
		for _, s := range n.Sinks {
			if !s.IsPort() && s.Inst != nil {
				res.instSlack[s.Inst.ID] = e.instWorstSlack(s.Inst)
			}
		}
	}
	res.netArr, res.netWire, res.netReq, res.netCap = e.netArr, e.netWire, e.netReq, e.netCap
	res.graph = g
	return res, ds, nil
}

// evalCombOne recomputes the arrival of a single output net of a
// combinational cell (the per-output body of evalComb).
func (e *engine) evalCombOne(in *netlist.Instance, oc netlist.PinConn) {
	worst := 0.0
	for _, ic := range in.Conns {
		ip := in.Master.Pin(ic.Pin)
		if ip == nil || ip.Dir != tech.Input || ip.IsClock || ic.Net == nil {
			continue
		}
		arc := in.Master.Arc(ic.Pin, oc.Pin)
		if arc == nil {
			continue
		}
		arrIn := e.netArr[ic.Net.ID] + e.netWire[ic.Net.ID]
		d := arrIn + arc.Intrinsic + arc.DriveRes*e.netLoad(oc.Net)
		if d > worst {
			worst = d
		}
	}
	e.netArr[oc.Net.ID] = worst
}
