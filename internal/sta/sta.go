// Package sta is the graph-based static timing analysis engine: arrival and
// required times propagate over the netlist in topological order using the
// library's linear delay model (intrinsic + drive-resistance × load) plus a
// distributed-Elmore wire delay from routed (or estimated) net lengths.
//
// Slack is reported per endpoint (TNS/WNS) and per instance — the
// per-instance worst slack feeds the exploitable-distance computation of the
// security metric, and TNS is one of the two objectives of the
// multi-objective flow optimizer.
package sta

import (
	"fmt"
	"math"

	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/tech"
)

// Options configures an analysis run.
type Options struct {
	// Constraints supplies the clock period and I/O delays (required).
	Constraints *sdc.Constraints
	// Routes supplies per-net routed lengths by layer; when nil, wire RC is
	// estimated from HPWL on a mid-stack layer.
	Routes *route.Result
	// EstimateLayer is the 1-based metal index used for HPWL-based RC
	// estimation when Routes is nil (default 3).
	EstimateLayer int
}

// Result is the outcome of one STA run. All times are picoseconds.
type Result struct {
	// TNS is total negative slack (≤ 0; 0 is timing-clean).
	TNS float64
	// WNS is the worst endpoint slack (may be positive).
	WNS float64
	// Endpoints is the number of timing endpoints checked.
	Endpoints int
	// Violating is the number of endpoints with negative slack.
	Violating int
	// PeriodPS is the effective clock period used.
	PeriodPS float64

	instSlack []float64 // worst slack through each instance, by ID
	netArr    []float64 // arrival at each net's driver pin, by net ID
}

// InstSlack returns the worst slack of any path through the instance, in
// ps. Instances off the timing graph report +Inf.
func (r *Result) InstSlack(in *netlist.Instance) float64 {
	if in.ID >= len(r.instSlack) {
		return math.Inf(1)
	}
	return r.instSlack[in.ID]
}

// NetArrival returns the arrival time at the net's driver pin.
func (r *Result) NetArrival(n *netlist.Net) float64 {
	if n.ID >= len(r.netArr) {
		return 0
	}
	return r.netArr[n.ID]
}

// Analyze runs STA on the placed (and optionally routed) layout.
func Analyze(l *layout.Layout, opt Options) (*Result, error) {
	if err := fault.Hit(fault.STA); err != nil {
		return nil, err
	}
	defer staSeconds.Start().Stop()
	if opt.Constraints == nil || opt.Constraints.PrimaryClock() == nil {
		return nil, fmt.Errorf("sta: no clock constraint")
	}
	if opt.EstimateLayer <= 0 {
		opt.EstimateLayer = 3
	}
	clk := opt.Constraints.PrimaryClock()
	period := clk.PeriodPS - clk.UncertaintyPS
	if period <= 0 {
		return nil, fmt.Errorf("sta: non-positive effective period %g ps", period)
	}
	nl := l.Netlist
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}

	e := &engine{
		l: l, opt: opt,
		netArr:  make([]float64, len(nl.Nets)),
		netWire: make([]float64, len(nl.Nets)),
		netReq:  make([]float64, len(nl.Nets)),
	}
	for i := range e.netReq {
		e.netReq[i] = math.Inf(1)
	}

	// Net electrical characterization.
	for _, n := range nl.Nets {
		e.characterize(n)
	}

	// Forward propagation.
	for _, n := range nl.Nets {
		if n.HasDriver() && n.Driver.IsPort() {
			e.netArr[n.ID] = opt.Constraints.InputDelayPS
		}
	}
	// Sequential outputs launch at clk->Q.
	for _, in := range nl.Insts {
		if in.Master.Class != tech.Seq {
			continue
		}
		for _, c := range in.Conns {
			p := in.Master.Pin(c.Pin)
			if p == nil || p.Dir != tech.Output || c.Net == nil {
				continue
			}
			arc := in.Master.Arc(clockPinName(in.Master), c.Pin)
			res := 0.0
			clk2q := in.Master.ClkToQ
			if arc != nil {
				res = arc.DriveRes
				clk2q = arc.Intrinsic
			}
			e.netArr[c.Net.ID] = clk2q + res*e.netLoad(c.Net)
		}
	}
	for _, in := range order {
		if in.Master.Class == tech.Seq {
			continue // already launched
		}
		e.evalComb(in)
	}

	// Endpoint required times & backward propagation.
	res := &Result{PeriodPS: period, WNS: math.Inf(1)}
	record := func(slack float64) {
		res.Endpoints++
		if slack < res.WNS {
			res.WNS = slack
		}
		if slack < 0 {
			res.TNS += slack
			res.Violating++
		}
	}
	for _, n := range nl.Nets {
		arrAtSink := e.netArr[n.ID] + e.netWire[n.ID]
		for _, s := range n.Sinks {
			switch {
			case s.IsPort():
				req := period - opt.Constraints.OutputDelayPS
				record(req - arrAtSink)
				e.lowerReq(n, req)
			case s.Inst.Master.Class == tech.Seq:
				if p := s.Inst.Master.Pin(s.Pin); p != nil && !p.IsClock && p.Dir == tech.Input {
					req := period - s.Inst.Master.Setup
					record(req - arrAtSink)
					e.lowerReq(n, req)
				}
			}
		}
	}
	if math.IsInf(res.WNS, 1) {
		res.WNS = 0 // no endpoints
	}
	// Backward pass in reverse topological order.
	for i := len(order) - 1; i >= 0; i-- {
		in := order[i]
		if in.Master.Class == tech.Seq {
			continue
		}
		e.backComb(in)
	}

	// Per-instance worst slack.
	res.instSlack = make([]float64, len(nl.Insts))
	for i := range res.instSlack {
		res.instSlack[i] = math.Inf(1)
	}
	for _, in := range nl.Insts {
		worst := math.Inf(1)
		for _, c := range in.Conns {
			if c.Net == nil {
				continue
			}
			p := in.Master.Pin(c.Pin)
			if p == nil || p.IsClock || c.Net.IsClock {
				continue
			}
			s := e.netReq[c.Net.ID] - e.netArr[c.Net.ID]
			if !math.IsInf(s, 1) && s < worst {
				worst = s
			}
		}
		res.instSlack[in.ID] = worst
	}
	res.netArr = e.netArr
	return res, nil
}

type engine struct {
	l   *layout.Layout
	opt Options

	netArr  []float64 // arrival at driver output pin
	netWire []float64 // distributed wire delay driver->sink
	netReq  []float64 // required time at driver output pin
	netCap  []float64
}

// characterize computes the wire RC delay and caches the total load of a
// net under the current NDR.
func (e *engine) characterize(n *netlist.Net) {
	lib := e.l.Lib()
	var rw, cw float64 // total wire R (kΩ) and C (fF)
	if e.opt.Routes != nil && n.ID < len(e.opt.Routes.NetRoutes) && e.opt.Routes.NetRoutes[n.ID] != nil {
		nr := e.opt.Routes.NetRoutes[n.ID]
		for metal := 1; metal < len(nr.LenByMetal); metal++ {
			lenUM := lib.DBUToMicrons(nr.LenByMetal[metal])
			if lenUM == 0 {
				continue
			}
			layer := lib.Layer(metal)
			scale := e.l.NDR.LayerScale(metal)
			// Wider wires: resistance drops ∝ 1/scale; capacitance grows
			// sub-linearly (area term scales, fringe does not).
			rw += lenUM * layer.RPerUM / scale
			cw += lenUM * layer.CPerUM * (0.7 + 0.3*scale)
		}
		// Congested areas force detours and add coupling: wire RC grows
		// with the average track utilization along the route, bounded by
		// the worst realistic detour factor.
		if cg := e.opt.Routes.NetCongestion(n.ID); cg > 0.6 {
			if cg > 1.3 {
				cg = 1.3
			}
			f := 1 + 1.5*(cg-0.6)
			rw *= f
			cw *= f
		}
	} else {
		layer := lib.Layer(e.opt.EstimateLayer)
		if layer == nil {
			layer = lib.Layer(lib.NumLayers() / 2)
		}
		lenUM := lib.DBUToMicrons(e.l.NetHPWL(n))
		scale := e.l.NDR.LayerScale(layer.Index)
		rw = lenUM * layer.RPerUM / scale
		cw = lenUM * layer.CPerUM * (0.7 + 0.3*scale)
	}
	e.netWire[n.ID] = 0.5 * rw * cw
	if e.netCap == nil {
		e.netCap = make([]float64, len(e.l.Netlist.Nets))
	}
	pinCap := 0.0
	for _, s := range n.Sinks {
		if s.IsPort() {
			pinCap += 2.0 // output pad load
			continue
		}
		if p := s.Inst.Master.Pin(s.Pin); p != nil {
			pinCap += p.Cap
		}
	}
	e.netCap[n.ID] = pinCap + cw
}

func (e *engine) netLoad(n *netlist.Net) float64 { return e.netCap[n.ID] }

// evalComb computes the arrival at each output net of a combinational cell.
func (e *engine) evalComb(in *netlist.Instance) {
	for _, oc := range in.Conns {
		p := in.Master.Pin(oc.Pin)
		if p == nil || p.Dir != tech.Output || oc.Net == nil {
			continue
		}
		worst := 0.0
		for _, ic := range in.Conns {
			ip := in.Master.Pin(ic.Pin)
			if ip == nil || ip.Dir != tech.Input || ip.IsClock || ic.Net == nil {
				continue
			}
			arc := in.Master.Arc(ic.Pin, oc.Pin)
			if arc == nil {
				continue
			}
			arrIn := e.netArr[ic.Net.ID] + e.netWire[ic.Net.ID]
			d := arrIn + arc.Intrinsic + arc.DriveRes*e.netLoad(oc.Net)
			if d > worst {
				worst = d
			}
		}
		e.netArr[oc.Net.ID] = worst
	}
}

// backComb propagates required times from a combinational cell's outputs to
// its input nets.
func (e *engine) backComb(in *netlist.Instance) {
	for _, oc := range in.Conns {
		p := in.Master.Pin(oc.Pin)
		if p == nil || p.Dir != tech.Output || oc.Net == nil {
			continue
		}
		reqOut := e.netReq[oc.Net.ID]
		if math.IsInf(reqOut, 1) {
			continue
		}
		for _, ic := range in.Conns {
			ip := in.Master.Pin(ic.Pin)
			if ip == nil || ip.Dir != tech.Input || ip.IsClock || ic.Net == nil {
				continue
			}
			arc := in.Master.Arc(ic.Pin, oc.Pin)
			if arc == nil {
				continue
			}
			req := reqOut - arc.Intrinsic - arc.DriveRes*e.netLoad(oc.Net) - e.netWire[ic.Net.ID]
			if req < e.netReq[ic.Net.ID] {
				e.netReq[ic.Net.ID] = req
			}
		}
	}
}

// lowerReq lowers the required time at a net's driver pin given a
// requirement at its sink side.
func (e *engine) lowerReq(n *netlist.Net, reqAtSink float64) {
	req := reqAtSink - e.netWire[n.ID]
	if req < e.netReq[n.ID] {
		e.netReq[n.ID] = req
	}
}

func clockPinName(c *tech.Cell) string {
	if p := c.ClockPin(); p != nil {
		return p.Name
	}
	return "CK"
}
