// Package sta is the graph-based static timing analysis engine: arrival and
// required times propagate over the netlist's levelized combinational DAG
// using the library's linear delay model (intrinsic + drive-resistance ×
// load) plus a distributed-Elmore wire delay from routed (or estimated) net
// lengths. Levels propagate with a parallel-for inside each level; the
// result is bit-identical to a sequential topological sweep because arrival
// is a pure per-instance max and required time a pure per-net min (see
// graph.go for the argument).
//
// Slack is reported per endpoint (TNS/WNS) and per instance — the
// per-instance worst slack feeds the exploitable-distance computation of the
// security metric, and TNS is one of the two objectives of the
// multi-objective flow optimizer.
package sta

import (
	"fmt"
	"math"

	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/tech"
)

// Options configures an analysis run.
type Options struct {
	// Constraints supplies the clock period and I/O delays (required).
	Constraints *sdc.Constraints
	// Routes supplies per-net routed lengths by layer; when nil, wire RC is
	// estimated from HPWL on a mid-stack layer.
	Routes *route.Result
	// EstimateLayer is the 1-based metal index used for HPWL-based RC
	// estimation when Routes is nil (default 3).
	EstimateLayer int
}

// Result is the outcome of one STA run. All times are picoseconds.
type Result struct {
	// TNS is total negative slack (≤ 0; 0 is timing-clean).
	TNS float64
	// WNS is the worst endpoint slack (may be positive).
	WNS float64
	// Endpoints is the number of timing endpoints checked.
	Endpoints int
	// Violating is the number of endpoints with negative slack.
	Violating int
	// PeriodPS is the effective clock period used.
	PeriodPS float64

	instSlack []float64 // worst slack through each instance, by ID
	netArr    []float64 // arrival at each net's driver pin, by net ID
	// The remaining per-net arrays and the levelized graph are retained so
	// the result can donate to AnalyzeDelta, which re-propagates only the
	// cones of changed nets against them.
	netWire []float64
	netReq  []float64
	netCap  []float64
	graph   *Graph
}

// InstSlack returns the worst slack of any path through the instance, in
// ps. Instances off the timing graph report +Inf.
func (r *Result) InstSlack(in *netlist.Instance) float64 {
	if in.ID >= len(r.instSlack) {
		return math.Inf(1)
	}
	return r.instSlack[in.ID]
}

// NetArrival returns the arrival time at the net's driver pin.
func (r *Result) NetArrival(n *netlist.Net) float64 {
	if n.ID >= len(r.netArr) {
		return 0
	}
	return r.netArr[n.ID]
}

// Graph returns the levelized graph the analysis ran on.
func (r *Result) Graph() *Graph { return r.graph }

// Analyze runs STA on the placed (and optionally routed) layout, levelizing
// the netlist first. Callers that analyze one netlist many times should
// BuildGraph once and use AnalyzeWithGraph.
func Analyze(l *layout.Layout, opt Options) (*Result, error) {
	return AnalyzeWithGraph(l, opt, nil)
}

// AnalyzeWithGraph is Analyze with a prebuilt levelized graph of l's
// netlist (nil builds one). The graph depends only on netlist connectivity,
// so one graph serves every placement/NDR/routing variant of a design.
func AnalyzeWithGraph(l *layout.Layout, opt Options, g *Graph) (*Result, error) {
	if err := fault.Hit(fault.STA); err != nil {
		return nil, err
	}
	defer staSeconds.Start().Stop()
	period, err := effectivePeriod(opt)
	if err != nil {
		return nil, err
	}
	nl := l.Netlist
	if g == nil || g.numInsts != len(nl.Insts) || g.numNets != len(nl.Nets) {
		if g, err = BuildGraph(nl); err != nil {
			return nil, err
		}
	}

	e := &engine{
		l: l, opt: opt, period: period,
		netArr:  make([]float64, len(nl.Nets)),
		netWire: make([]float64, len(nl.Nets)),
		netReq:  make([]float64, len(nl.Nets)),
		netCap:  make([]float64, len(nl.Nets)),
	}

	// Net electrical characterization: pure per net.
	parallelFor(len(nl.Nets), ResolvedWorkers(len(nl.Nets)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.characterize(nl.Nets[i])
		}
	})

	// Forward propagation. Startpoints first: primary inputs and
	// sequential clk->Q launches (disjoint single-driver writes).
	for _, n := range nl.Nets {
		if n.HasDriver() && n.Driver.IsPort() {
			e.netArr[n.ID] = opt.Constraints.InputDelayPS
		}
	}
	parallelFor(len(nl.Insts), ResolvedWorkers(len(nl.Insts)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if in := nl.Insts[i]; in.Master.Class == tech.Seq {
				e.launchSeq(in)
			}
		}
	})
	// Then the combinational levels, ascending; instances within a level
	// are independent.
	for _, level := range g.levels {
		lv := level
		parallelFor(len(lv), ResolvedWorkers(len(lv)), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e.evalComb(nl.Insts[lv[i]])
			}
		})
	}

	// Backward propagation: per-net required times, depth buckets
	// descending (each net reads only strictly deeper nets).
	for d := len(g.netsAtDepth) - 1; d >= 0; d-- {
		bucket := g.netsAtDepth[d]
		parallelFor(len(bucket), ResolvedWorkers(len(bucket)), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				id := bucket[i]
				e.netReq[id] = e.reqForNet(nl.Nets[id])
			}
		})
	}

	res := &Result{PeriodPS: period}
	e.record(nl, res)

	// Per-instance worst slack: pure per instance.
	res.instSlack = make([]float64, len(nl.Insts))
	parallelFor(len(nl.Insts), ResolvedWorkers(len(nl.Insts)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res.instSlack[i] = e.instWorstSlack(nl.Insts[i])
		}
	})
	res.netArr, res.netWire, res.netReq, res.netCap = e.netArr, e.netWire, e.netReq, e.netCap
	res.graph = g
	return res, nil
}

func effectivePeriod(opt Options) (float64, error) {
	if opt.Constraints == nil || opt.Constraints.PrimaryClock() == nil {
		return 0, fmt.Errorf("sta: no clock constraint")
	}
	clk := opt.Constraints.PrimaryClock()
	period := clk.PeriodPS - clk.UncertaintyPS
	if period <= 0 {
		return 0, fmt.Errorf("sta: non-positive effective period %g ps", period)
	}
	return period, nil
}

type engine struct {
	l      *layout.Layout
	opt    Options
	period float64

	netArr  []float64 // arrival at driver output pin
	netWire []float64 // distributed wire delay driver->sink
	netReq  []float64 // required time at driver output pin
	netCap  []float64
}

// characterize computes the wire RC delay and caches the total load of a
// net under the current NDR. Pure per net: safe for a parallel-for.
func (e *engine) characterize(n *netlist.Net) {
	lib := e.l.Lib()
	var rw, cw float64 // total wire R (kΩ) and C (fF)
	if e.opt.Routes != nil && n.ID < len(e.opt.Routes.NetRoutes) && e.opt.Routes.NetRoutes[n.ID] != nil {
		nr := e.opt.Routes.NetRoutes[n.ID]
		for metal := 1; metal < len(nr.LenByMetal); metal++ {
			lenUM := lib.DBUToMicrons(nr.LenByMetal[metal])
			if lenUM == 0 {
				continue
			}
			layer := lib.Layer(metal)
			scale := e.l.NDR.LayerScale(metal)
			// Wider wires: resistance drops ∝ 1/scale; capacitance grows
			// sub-linearly (area term scales, fringe does not).
			rw += lenUM * layer.RPerUM / scale
			cw += lenUM * layer.CPerUM * (0.7 + 0.3*scale)
		}
		// Congested areas force detours and add coupling: wire RC grows
		// with the average track utilization along the route, bounded by
		// the worst realistic detour factor.
		if cg := e.opt.Routes.NetCongestion(n.ID); cg > 0.6 {
			if cg > 1.3 {
				cg = 1.3
			}
			f := 1 + 1.5*(cg-0.6)
			rw *= f
			cw *= f
		}
	} else {
		layer := lib.Layer(e.opt.EstimateLayer)
		if layer == nil {
			layer = lib.Layer(lib.NumLayers() / 2)
		}
		lenUM := lib.DBUToMicrons(e.l.NetHPWL(n))
		scale := e.l.NDR.LayerScale(layer.Index)
		rw = lenUM * layer.RPerUM / scale
		cw = lenUM * layer.CPerUM * (0.7 + 0.3*scale)
	}
	e.netWire[n.ID] = 0.5 * rw * cw
	pinCap := 0.0
	for _, s := range n.Sinks {
		if s.IsPort() {
			pinCap += 2.0 // output pad load
			continue
		}
		if p := s.Inst.Master.Pin(s.Pin); p != nil {
			pinCap += p.Cap
		}
	}
	e.netCap[n.ID] = pinCap + cw
}

func (e *engine) netLoad(n *netlist.Net) float64 { return e.netCap[n.ID] }

// launchSeq sets the clk->Q arrival of a sequential cell's output nets.
func (e *engine) launchSeq(in *netlist.Instance) {
	for _, c := range in.Conns {
		p := in.Master.Pin(c.Pin)
		if p == nil || p.Dir != tech.Output || c.Net == nil {
			continue
		}
		arc := in.Master.Arc(clockPinName(in.Master), c.Pin)
		res := 0.0
		clk2q := in.Master.ClkToQ
		if arc != nil {
			res = arc.DriveRes
			clk2q = arc.Intrinsic
		}
		e.netArr[c.Net.ID] = clk2q + res*e.netLoad(c.Net)
	}
}

// evalComb computes the arrival at each output net of a combinational cell.
// Pure per instance: reads only strictly lower-level nets, writes only its
// own (single-driver) output nets.
func (e *engine) evalComb(in *netlist.Instance) {
	for _, oc := range in.Conns {
		p := in.Master.Pin(oc.Pin)
		if p == nil || p.Dir != tech.Output || oc.Net == nil {
			continue
		}
		worst := 0.0
		for _, ic := range in.Conns {
			ip := in.Master.Pin(ic.Pin)
			if ip == nil || ip.Dir != tech.Input || ip.IsClock || ic.Net == nil {
				continue
			}
			arc := in.Master.Arc(ic.Pin, oc.Pin)
			if arc == nil {
				continue
			}
			arrIn := e.netArr[ic.Net.ID] + e.netWire[ic.Net.ID]
			d := arrIn + arc.Intrinsic + arc.DriveRes*e.netLoad(oc.Net)
			if d > worst {
				worst = d
			}
		}
		e.netArr[oc.Net.ID] = worst
	}
}

// reqForNet computes the required time at the net's driver pin: the min
// over its endpoint contributions (port outputs, sequential D inputs) and
// the arcs through its combinational sinks. Reads required times only of
// nets at strictly greater depth; min over floats is order-free, so the
// value equals the sequential reverse-topological accumulation exactly.
func (e *engine) reqForNet(n *netlist.Net) float64 {
	req := math.Inf(1)
	for _, s := range n.Sinks {
		if s.IsPort() {
			if r := e.period - e.opt.Constraints.OutputDelayPS - e.netWire[n.ID]; r < req {
				req = r
			}
			continue
		}
		in := s.Inst
		ip := in.Master.Pin(s.Pin)
		if in.Master.Class == tech.Seq {
			if ip != nil && !ip.IsClock && ip.Dir == tech.Input {
				if r := e.period - in.Master.Setup - e.netWire[n.ID]; r < req {
					req = r
				}
			}
			continue
		}
		if !in.Master.IsFunctional() {
			continue
		}
		if ip == nil || ip.Dir != tech.Input || ip.IsClock {
			continue
		}
		for _, oc := range in.Conns {
			p := in.Master.Pin(oc.Pin)
			if p == nil || p.Dir != tech.Output || oc.Net == nil {
				continue
			}
			arc := in.Master.Arc(s.Pin, oc.Pin)
			if arc == nil {
				continue
			}
			r := e.netReq[oc.Net.ID] - arc.Intrinsic - arc.DriveRes*e.netLoad(oc.Net) - e.netWire[n.ID]
			if r < req {
				req = r
			}
		}
	}
	return req
}

// record scans every endpoint in net-ID order and accumulates TNS/WNS.
// The float TNS sum is order-dependent, so this pass is sequential and
// identical across the full and delta analyses.
func (e *engine) record(nl *netlist.Netlist, res *Result) {
	res.TNS, res.WNS, res.Endpoints, res.Violating = 0, math.Inf(1), 0, 0
	record := func(slack float64) {
		res.Endpoints++
		if slack < res.WNS {
			res.WNS = slack
		}
		if slack < 0 {
			res.TNS += slack
			res.Violating++
		}
	}
	for _, n := range nl.Nets {
		arrAtSink := e.netArr[n.ID] + e.netWire[n.ID]
		for _, s := range n.Sinks {
			switch {
			case s.IsPort():
				record(e.period - e.opt.Constraints.OutputDelayPS - arrAtSink)
			case s.Inst.Master.Class == tech.Seq:
				if p := s.Inst.Master.Pin(s.Pin); p != nil && !p.IsClock && p.Dir == tech.Input {
					record(e.period - s.Inst.Master.Setup - arrAtSink)
				}
			}
		}
	}
	if math.IsInf(res.WNS, 1) {
		res.WNS = 0 // no endpoints
	}
}

// instWorstSlack computes the worst slack of any path through the instance:
// pure per instance (reads only net arrays).
func (e *engine) instWorstSlack(in *netlist.Instance) float64 {
	worst := math.Inf(1)
	for _, c := range in.Conns {
		if c.Net == nil {
			continue
		}
		p := in.Master.Pin(c.Pin)
		if p == nil || p.IsClock || c.Net.IsClock {
			continue
		}
		s := e.netReq[c.Net.ID] - e.netArr[c.Net.ID]
		if !math.IsInf(s, 1) && s < worst {
			worst = s
		}
	}
	return worst
}

func clockPinName(c *tech.Cell) string {
	if p := c.ClockPin(); p != nil {
		return p.Name
	}
	return "CK"
}
