package sta

import "gdsiiguard/internal/obs"

// staSeconds times each full Analyze call end to end.
var staSeconds = obs.Default().Histogram(
	"gdsiiguard_sta_seconds",
	"Static timing analysis wall time per Analyze call.", nil).With()

// staDeltaSeconds times each AnalyzeDelta call that passed its
// compatibility checks (cone re-propagation + endpoint rescan).
var staDeltaSeconds = obs.Default().Histogram(
	"gdsiiguard_sta_delta_seconds",
	"Delta STA wall time per AnalyzeDelta call.", nil).With()
