package sta

import "gdsiiguard/internal/obs"

// staSeconds times each Analyze call end to end.
var staSeconds = obs.Default().Histogram(
	"gdsiiguard_sta_seconds",
	"Static timing analysis wall time per Analyze call.", nil).With()
