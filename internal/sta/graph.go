package sta

// Levelized timing graph. The netlist's combinational signal flow is a DAG
// (TopoOrder proves acyclicity); leveling it once per baseline lets every
// analysis propagate arrivals level-by-level with a parallel-for inside each
// level instead of re-deriving a topological order per run, and gives
// delta-STA the ascending/descending sweep structure its cone worklists
// need.
//
// Levels are exact dependency depths: a combinational instance's level is
// 1 + the maximum level of the combinational instances driving its
// non-clock inputs (0 when every input comes from a sequential cell or a
// port). Instances within one level are independent — each writes only the
// arrival of its own output nets (single-driver nets) and reads only nets
// at strictly lower depth — so a parallel-for over a level is bit-identical
// to any sequential topological order: arrival evaluation is a pure
// per-instance max, not an accumulation.
//
// For the backward pass the same structure is used per net: netDepth(n) is
// the level of n's combinational driver + 1 (0 for sequential-, port- or
// un-driven nets). A net's required time is a pure min over its endpoint
// and combinational-sink arc contributions, all of which read required
// times of nets at strictly greater depth, so sweeping depths descending
// with a parallel-for inside each depth bucket reproduces the sequential
// reverse-topological min exactly (min is order-free on floats).
//
// The graph depends only on netlist connectivity — not on placement, NDR,
// or routing — so one Graph serves every evaluation of a baseline,
// including all arena clones (clones preserve instance and net IDs).

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/tech"
)

// Graph is the reusable levelized view of a netlist's timing structure.
type Graph struct {
	numInsts, numNets int

	// levels holds functional combinational instance IDs by dependency
	// depth, ascending; IDs within a level are ascending.
	levels [][]int32
	// instLevel is the level of each functional combinational instance
	// (-1 for sequential, filler, and non-functional instances).
	instLevel []int32
	// netDepth is 1 + the driver's level for combinationally driven nets,
	// 0 otherwise.
	netDepth []int32
	// netsAtDepth buckets every net ID by netDepth, ascending depth,
	// ascending ID within a bucket.
	netsAtDepth [][]int32
}

// NumLevels returns the number of combinational levels.
func (g *Graph) NumLevels() int { return len(g.levels) }

// BuildGraph levelizes the netlist. It fails exactly when TopoOrder does:
// on a purely combinational cycle or a combinational self-loop.
func BuildGraph(nl *netlist.Netlist) (*Graph, error) {
	g := &Graph{
		numInsts:  len(nl.Insts),
		numNets:   len(nl.Nets),
		instLevel: make([]int32, len(nl.Insts)),
		netDepth:  make([]int32, len(nl.Nets)),
	}
	for i := range g.instLevel {
		g.instLevel[i] = -1
	}

	// Kahn's algorithm over the combinational edges (same edge guards as
	// netlist.TopoOrder), tracking the longest-path level of each node.
	indeg := make([]int32, len(nl.Insts))
	succ := make([][]int32, len(nl.Insts))
	comb := 0
	for _, in := range nl.FunctionalInsts() {
		if in.Master.Class == tech.Seq {
			continue
		}
		comb++
		g.instLevel[in.ID] = 0
		for _, c := range in.Conns {
			p := in.Master.Pin(c.Pin)
			if p == nil || p.Dir != tech.Input || p.IsClock || c.Net == nil {
				continue
			}
			d := c.Net.Driver
			if d.IsPort() || d.Inst == nil || !d.Inst.Master.IsFunctional() {
				continue
			}
			if d.Inst.Master.Class == tech.Seq {
				continue
			}
			if d.Inst == in {
				return nil, fmt.Errorf("sta: %s drives itself combinationally", in.Name)
			}
			succ[d.Inst.ID] = append(succ[d.Inst.ID], int32(in.ID))
			indeg[in.ID]++
		}
	}
	var queue []int32
	for _, in := range nl.Insts {
		if g.instLevel[in.ID] == 0 && indeg[in.ID] == 0 {
			queue = append(queue, int32(in.ID))
		}
	}
	processed := 0
	maxLevel := int32(0)
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		processed++
		lv := g.instLevel[id]
		if lv > maxLevel {
			maxLevel = lv
		}
		for _, s := range succ[id] {
			if l := lv + 1; l > g.instLevel[s] {
				g.instLevel[s] = l
			}
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != comb {
		return nil, fmt.Errorf("sta: combinational cycle detected (%d of %d leveled)", processed, comb)
	}

	g.levels = make([][]int32, maxLevel+1)
	for _, in := range nl.Insts { // ID order → ascending IDs per level
		if lv := g.instLevel[in.ID]; lv >= 0 {
			g.levels[lv] = append(g.levels[lv], int32(in.ID))
		}
	}

	for _, n := range nl.Nets {
		d := n.Driver
		if n.HasDriver() && !d.IsPort() && d.Inst != nil && g.instLevel[d.Inst.ID] >= 0 {
			g.netDepth[n.ID] = g.instLevel[d.Inst.ID] + 1
		}
	}
	g.netsAtDepth = make([][]int32, maxLevel+2)
	for _, n := range nl.Nets {
		dp := g.netDepth[n.ID]
		g.netsAtDepth[dp] = append(g.netsAtDepth[dp], int32(n.ID))
	}
	return g, nil
}

// staWorkersSetting is the configured worker count; 0 means auto
// (GOMAXPROCS).
var staWorkersSetting atomic.Int32

// SetWorkers sets the number of workers level-parallel STA uses. 0 (the
// default) selects GOMAXPROCS; 1 forces the sequential path. The setting is
// process-wide and safe to change between analyses.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	staWorkersSetting.Store(int32(n))
}

// Workers returns the configured worker count (0 = auto).
func Workers() int { return int(staWorkersSetting.Load()) }

const (
	// parallelMinItems is the per-level (or per-bucket) size below which
	// the sequential loop always wins.
	parallelMinItems = 256
	// minItemsPerWorker bounds how small a chunk may get.
	minItemsPerWorker = 64
)

// ResolvedWorkers reports how many workers a level of numItems items will
// actually use under the current setting — 1 means the sequential path.
func ResolvedWorkers(numItems int) int {
	if numItems < parallelMinItems {
		return 1
	}
	n := int(staWorkersSetting.Load())
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if max := numItems / minItemsPerWorker; n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelFor runs f over [0, n) in w contiguous chunks. Each index must be
// independent of every other (pure per-item computation with disjoint
// writes); with w == 1 it degenerates to the plain loop.
func parallelFor(n, w int, f func(lo, hi int)) {
	if w <= 1 || n <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
