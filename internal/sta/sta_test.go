package sta

import (
	"fmt"
	"math"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
)

// pipeNetlist: input -> stages of INV -> DFF -> stages of INV -> DFF -> out.
func pipeNetlist(t testing.TB, stagesPerSeg, segments int) *netlist.Netlist {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("pipe", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	inPort, _ := nl.AddPort("din", netlist.In)
	prev, _ := nl.AddNet("n_in")
	_ = nl.ConnectPort(inPort, prev)
	g := 0
	for seg := 0; seg < segments; seg++ {
		for s := 0; s < stagesPerSeg; s++ {
			inv, err := nl.AddInstance(fmt.Sprintf("g%d", g), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			next, _ := nl.AddNet(fmt.Sprintf("n%d", g))
			_ = nl.Connect(inv, "A", prev)
			_ = nl.Connect(inv, "ZN", next)
			prev = next
			g++
		}
		dff, err := nl.AddInstance(fmt.Sprintf("ff%d", seg), "DFF_X1")
		if err != nil {
			t.Fatal(err)
		}
		q, _ := nl.AddNet(fmt.Sprintf("q%d", seg))
		_ = nl.Connect(dff, "D", prev)
		_ = nl.Connect(dff, "CK", clkNet)
		_ = nl.Connect(dff, "Q", q)
		prev = q
	}
	outPort, _ := nl.AddPort("dout", netlist.Out)
	_ = nl.ConnectPort(outPort, prev)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func placedPipe(t testing.TB, stages, segs int) *layout.Layout {
	t.Helper()
	nl := pipeNetlist(t, stages, segs)
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: 0.6, RefinePasses: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func cons(periodNS float64) *sdc.Constraints {
	c, _ := sdc.ParseString(fmt.Sprintf(
		"create_clock -name clk -period %g [get_ports clk]\nset_input_delay 0.05 -clock clk [all_inputs]\nset_output_delay 0.05 -clock clk [all_outputs]\n", periodNS))
	return c
}

func TestLooseClockIsClean(t *testing.T) {
	l := placedPipe(t, 10, 3)
	r, err := Analyze(l, Options{Constraints: cons(100)}) // 100 ns
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r.TNS != 0 {
		t.Errorf("TNS = %g at 100ns clock", r.TNS)
	}
	if r.Violating != 0 {
		t.Errorf("violating = %d", r.Violating)
	}
	if r.WNS <= 0 {
		t.Errorf("WNS = %g, want positive", r.WNS)
	}
	if r.Endpoints == 0 {
		t.Error("no endpoints found")
	}
}

func TestTightClockViolates(t *testing.T) {
	l := placedPipe(t, 30, 2)
	r, err := Analyze(l, Options{Constraints: cons(0.2)}) // 200 ps
	if err != nil {
		t.Fatal(err)
	}
	if r.TNS >= 0 {
		t.Errorf("TNS = %g at 200ps clock, want negative", r.TNS)
	}
	if r.Violating == 0 {
		t.Error("no violating endpoints")
	}
	if r.WNS >= 0 {
		t.Errorf("WNS = %g", r.WNS)
	}
	// TNS ≤ WNS (both negative, TNS accumulates).
	if r.TNS > r.WNS {
		t.Errorf("TNS %g > WNS %g", r.TNS, r.WNS)
	}
}

func TestTNSMonotoneInPeriod(t *testing.T) {
	l := placedPipe(t, 20, 3)
	var prev float64 = math.Inf(-1)
	for _, ns := range []float64{0.1, 0.3, 0.6, 1.2, 5} {
		r, err := Analyze(l, Options{Constraints: cons(ns)})
		if err != nil {
			t.Fatal(err)
		}
		if r.TNS < prev {
			t.Errorf("TNS not monotone: %g after %g (period %gns)", r.TNS, prev, ns)
		}
		prev = r.TNS
	}
}

func TestRoutedRCSlowerThanZeroWire(t *testing.T) {
	l := placedPipe(t, 15, 2)
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rEst, err := Analyze(l, Options{Constraints: cons(1)})
	if err != nil {
		t.Fatal(err)
	}
	rRoute, err := Analyze(l, Options{Constraints: cons(1), Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	// Both models must produce sane, comparable results.
	if rEst.Endpoints != rRoute.Endpoints {
		t.Errorf("endpoint count differs: %d vs %d", rEst.Endpoints, rRoute.Endpoints)
	}
	// Routed lengths ≥ HPWL, so routed arrival can only be slower or equal
	// on the worst path (same layer assumption differs, so allow slack).
	if rRoute.WNS > rEst.WNS+100 {
		t.Errorf("routed WNS %g much better than estimated %g", rRoute.WNS, rEst.WNS)
	}
}

// Width scaling trades lower wire resistance against higher load
// capacitance; whether timing improves depends on the design (that is the
// trade-off the GA explores). The model must respond, and stay bounded.
func TestNDRTimingTradeoff(t *testing.T) {
	l := placedPipe(t, 25, 2)
	routes, err := route.Route(l, route.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(l, Options{Constraints: cons(0.5), Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	wide := l.Clone()
	for i := range wide.NDR.Scale {
		wide.NDR.Scale[i] = 1.5
	}
	routesW, err := route.Route(wide, route.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wideRes, err := Analyze(wide, Options{Constraints: cons(0.5), Routes: routesW})
	if err != nil {
		t.Fatal(err)
	}
	if wideRes.WNS == base.WNS {
		t.Error("NDR scaling had no timing effect")
	}
	if d := math.Abs(wideRes.WNS - base.WNS); d > 100 {
		t.Errorf("NDR effect implausibly large: ΔWNS = %g ps", d)
	}
}

func TestInstSlack(t *testing.T) {
	l := placedPipe(t, 10, 2)
	r, err := Analyze(l, Options{Constraints: cons(2)})
	if err != nil {
		t.Fatal(err)
	}
	nl := l.Netlist
	sawFinite := false
	for _, in := range nl.FunctionalInsts() {
		s := r.InstSlack(in)
		if !math.IsInf(s, 1) {
			sawFinite = true
		}
	}
	if !sawFinite {
		t.Fatal("no instance has finite slack")
	}
	// At a loose clock, slacks are positive.
	for _, in := range nl.FunctionalInsts() {
		if s := r.InstSlack(in); !math.IsInf(s, 1) && s < 0 {
			t.Errorf("instance %s slack %g < 0 at loose clock", in.Name, s)
		}
	}
}

func TestInstSlackTightensWithClock(t *testing.T) {
	l := placedPipe(t, 20, 2)
	loose, err := Analyze(l, Options{Constraints: cons(5)})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Analyze(l, Options{Constraints: cons(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	in := l.Netlist.Instance("g5")
	if tight.InstSlack(in) >= loose.InstSlack(in) {
		t.Errorf("slack should tighten: %g vs %g", tight.InstSlack(in), loose.InstSlack(in))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	l := placedPipe(t, 2, 1)
	if _, err := Analyze(l, Options{}); err == nil {
		t.Error("missing constraints accepted")
	}
	c := cons(1)
	c.Clocks[0].UncertaintyPS = 2000 // exceeds period
	if _, err := Analyze(l, Options{Constraints: c}); err == nil {
		t.Error("non-positive effective period accepted")
	}
}

func TestDeterministic(t *testing.T) {
	l := placedPipe(t, 12, 2)
	r1, err := Analyze(l, Options{Constraints: cons(1)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(l, Options{Constraints: cons(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TNS != r2.TNS || r1.WNS != r2.WNS {
		t.Errorf("nondeterministic: %g/%g vs %g/%g", r1.TNS, r1.WNS, r2.TNS, r2.WNS)
	}
}

func TestNetArrivalIncreasesAlongChain(t *testing.T) {
	l := placedPipe(t, 8, 1)
	r, err := Analyze(l, Options{Constraints: cons(2)})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for g := 0; g < 8; g++ {
		n := l.Netlist.Net(fmt.Sprintf("n%d", g))
		arr := r.NetArrival(n)
		if arr <= prev {
			t.Errorf("arrival at n%d = %g not increasing (prev %g)", g, arr, prev)
		}
		prev = arr
	}
}

func BenchmarkAnalyze(b *testing.B) {
	l := placedPipe(b, 40, 6)
	c := cons(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(l, Options{Constraints: c}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiOutputCellTiming(t *testing.T) {
	// A full adder has two outputs (S, CO) with distinct arcs; both must
	// propagate arrivals.
	lib := opencell45.MustLoad()
	nl := netlist.New("fa", lib)
	clkP, _ := nl.AddPort("clk", netlist.In)
	clkN, _ := nl.AddNet("clk")
	clkN.IsClock = true
	_ = nl.ConnectPort(clkP, clkN)
	for _, name := range []string{"a", "b", "ci"} {
		p, _ := nl.AddPort(name, netlist.In)
		n, _ := nl.AddNet(name)
		_ = nl.ConnectPort(p, n)
	}
	fa, err := nl.AddInstance("fa0", "FA_X1")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := nl.AddNet("s")
	co, _ := nl.AddNet("co")
	_ = nl.Connect(fa, "A", nl.Net("a"))
	_ = nl.Connect(fa, "B", nl.Net("b"))
	_ = nl.Connect(fa, "CI", nl.Net("ci"))
	_ = nl.Connect(fa, "S", s)
	_ = nl.Connect(fa, "CO", co)
	for _, out := range []struct {
		port string
		net  *netlist.Net
	}{{"so", s}, {"coo", co}} {
		p, _ := nl.AddPort(out.port, netlist.Out)
		_ = nl.ConnectPort(p, out.net)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(l, Options{Constraints: cons(10)})
	if err != nil {
		t.Fatal(err)
	}
	if r.NetArrival(s) <= 0 || r.NetArrival(co) <= 0 {
		t.Errorf("arrivals: S=%g CO=%g", r.NetArrival(s), r.NetArrival(co))
	}
	if r.Endpoints != 2 {
		t.Errorf("endpoints = %d, want 2 output ports", r.Endpoints)
	}
}
