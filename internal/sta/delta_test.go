package sta

import (
	"math"
	"math/rand"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/tech"
)

// withSTAWorkers forces the level-parallel worker count for the duration of
// the test and restores auto-selection afterwards.
func withSTAWorkers(t testing.TB, n int) {
	t.Helper()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(0) })
}

func TestGraphLevelsRespectDependencies(t *testing.T) {
	l := placedPipe(t, 15, 3)
	nl := l.Netlist
	g, err := BuildGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() == 0 {
		t.Fatal("no combinational levels")
	}
	// Every combinational instance must sit strictly above the levels of
	// the combinational drivers feeding its non-clock inputs.
	for _, in := range nl.Insts {
		lv := g.instLevel[in.ID]
		if in.Master.Class != tech.Comb || !in.Master.IsFunctional() {
			if lv != -1 {
				t.Errorf("%s: non-comb instance has level %d", in.Name, lv)
			}
			continue
		}
		for _, c := range in.Conns {
			p := in.Master.Pin(c.Pin)
			if p == nil || p.Dir != tech.Input || p.IsClock || c.Net == nil || !c.Net.HasDriver() {
				continue
			}
			d := c.Net.Driver
			if d.IsPort() || d.Inst.Master.Class == tech.Seq || !d.Inst.Master.IsFunctional() {
				continue
			}
			if dl := g.instLevel[d.Inst.ID]; dl >= lv {
				t.Errorf("%s (level %d) reads from %s (level %d)", in.Name, lv, d.Inst.Name, dl)
			}
		}
	}
	// Net depth = driver's level + 1 for comb-driven nets, 0 otherwise.
	for _, n := range nl.Nets {
		want := int32(0)
		if n.HasDriver() && !n.Driver.IsPort() &&
			n.Driver.Inst.Master.Class == tech.Comb && n.Driver.Inst.Master.IsFunctional() {
			want = g.instLevel[n.Driver.Inst.ID] + 1
		}
		if g.netDepth[n.ID] != want {
			t.Errorf("net %s depth %d, want %d", n.Name, g.netDepth[n.ID], want)
		}
	}
}

// TestLevelParallelMatchesSequential forces level-parallel propagation and
// checks it against the sequential engine bit for bit — arrivals, slacks and
// endpoint totals. Worker counts vary the chunk boundaries within levels.
func TestLevelParallelMatchesSequential(t *testing.T) {
	t.Cleanup(func() { SetWorkers(0) })
	l := placedPipe(t, 60, 4) // enough nets to clear the parallel threshold
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Constraints: cons(0.4), Routes: routes}

	SetWorkers(1)
	want, err := Analyze(l, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		SetWorkers(w)
		got, err := Analyze(l, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameAnalysis(t, l, got, want)
	}
}

func sameAnalysis(t *testing.T, l *layout.Layout, got, want *Result) {
	t.Helper()
	if got.TNS != want.TNS || got.WNS != want.WNS {
		t.Errorf("TNS/WNS %g/%g != %g/%g", got.TNS, got.WNS, want.TNS, want.WNS)
	}
	if got.Endpoints != want.Endpoints || got.Violating != want.Violating {
		t.Errorf("endpoints %d/%d != %d/%d", got.Endpoints, got.Violating, want.Endpoints, want.Violating)
	}
	for _, n := range l.Netlist.Nets {
		if ga, wa := got.NetArrival(n), want.NetArrival(n); ga != wa {
			t.Fatalf("net %s arrival %g != %g", n.Name, ga, wa)
		}
	}
	for _, in := range l.Netlist.Insts {
		gs, ws := got.InstSlack(in), want.InstSlack(in)
		if gs != ws && !(math.IsInf(gs, 1) && math.IsInf(ws, 1)) {
			t.Fatalf("inst %s slack %g != %g", in.Name, gs, ws)
		}
	}
}

// placedLocalPipe places the pipe serpentine in netlist order with free
// sites interleaved — the locality-preserving placement shape of the warm
// route fixture, so ECO-style moves stay local and cone pruning has
// something to prune.
func placedLocalPipe(t testing.TB, stages, segs, numRows, sitesPerRow int) *layout.Layout {
	t.Helper()
	nl := pipeNetlist(t, stages, segs)
	l, err := layout.New(nl, numRows, sitesPerRow)
	if err != nil {
		t.Fatal(err)
	}
	row, site, dir := 0, 0, 1
	for _, in := range nl.Insts {
		w := in.Master.WidthSites
		if (dir > 0 && site+w > sitesPerRow) || (dir < 0 && site-w < 0) {
			row, dir = row+1, -dir
			if row >= numRows {
				t.Fatal("pipe does not fit the die")
			}
			if dir > 0 {
				site = 0
			} else {
				site = sitesPerRow
			}
		}
		at := site
		if dir < 0 {
			at = site - w
		}
		if err := l.Place(in, row, at); err != nil {
			t.Fatal(err)
		}
		site += dir * (w + 2)
	}
	return l
}

// perturbLocal relocates up to n movable instances to nearby free sites.
func perturbLocal(t *testing.T, l *layout.Layout, n int, rng *rand.Rand) {
	t.Helper()
	moved := 0
	var cands []*netlist.Instance
	for _, in := range l.Netlist.Insts {
		if !in.Fixed && l.PlacementOf(in).Placed {
			cands = append(cands, in)
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	for _, in := range cands {
		if moved >= n {
			break
		}
		w := in.Master.WidthSites
		from := l.PlacementOf(in)
		row, site := -1, -1
		for dr := -2; dr <= 2 && site < 0; dr++ {
			r := from.Row + dr
			if r < 0 || r >= l.NumRows {
				continue
			}
			for _, run := range l.FreeRuns(r) {
				if run.Len >= w && (r != from.Row || run.Start != from.Site) {
					row, site = r, run.Start
					break
				}
			}
		}
		if site < 0 {
			continue
		}
		l.Unplace(in)
		if err := l.Place(in, row, site); err != nil {
			t.Fatalf("re-place %s: %v", in.Name, err)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("perturb moved nothing")
	}
}

// changedMask computes the exact set of nets whose electrical
// characterization can differ between the donor analysis and a fresh one:
// routed segments changed, congestion along the (unchanged) route changed,
// or — for unrouted nets, characterized from HPWL — the half-perimeter
// changed. Everything else characterizes bit-identically, which is the
// contract AnalyzeDelta's pruning rests on.
func changedMask(l *layout.Layout, oldRoutes, newRoutes *route.Result, oldHPWL []int64) []bool {
	changed := make([]bool, len(l.Netlist.Nets))
	for _, n := range l.Netlist.Nets {
		o, nw := oldRoutes.NetRoutes[n.ID], newRoutes.NetRoutes[n.ID]
		switch {
		case o == nil && nw == nil:
			changed[n.ID] = l.NetHPWL(n) != oldHPWL[n.ID]
		case o == nil || nw == nil:
			changed[n.ID] = true
		case len(o.Segments) != len(nw.Segments):
			changed[n.ID] = true
		default:
			for i := range o.Segments {
				if o.Segments[i] != nw.Segments[i] {
					changed[n.ID] = true
					break
				}
			}
			if !changed[n.ID] &&
				oldRoutes.NetCongestion(n.ID) != newRoutes.NetCongestion(n.ID) {
				changed[n.ID] = true
			}
		}
	}
	return changed
}

// TestDeltaMatchesFullChain is the delta-STA equivalence gate on the
// locality fixture: across a chain of local placement perturbations, the
// cone-propagated analysis seeded from the previous full result must match
// a full analysis of the same state bit for bit — while actually pruning
// (cones strictly smaller than the graph).
func TestDeltaMatchesFullChain(t *testing.T) {
	l := placedLocalPipe(t, 40, 6, 40, 160)
	opt := Options{Constraints: cons(0.5)}
	rng := rand.New(rand.NewSource(11))

	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt.Routes = routes
	donor, err := Analyze(l, opt)
	if err != nil {
		t.Fatal(err)
	}

	totalConeInsts, funcInsts := 0, len(l.Netlist.FunctionalInsts())
	for step := 0; step < 4; step++ {
		oldHPWL := make([]int64, len(l.Netlist.Nets))
		for _, n := range l.Netlist.Nets {
			oldHPWL[n.ID] = l.NetHPWL(n)
		}
		oldRoutes := opt.Routes
		perturbLocal(t, l, 3+step, rng)
		newRoutes, err := route.Route(l, route.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		opt.Routes = newRoutes
		changed := changedMask(l, oldRoutes, newRoutes, oldHPWL)

		full, err := AnalyzeWithGraph(l, opt, donor.Graph())
		if err != nil {
			t.Fatal(err)
		}
		delta, ds, err := AnalyzeDelta(l, opt, donor, changed)
		if err != nil {
			t.Fatal(err)
		}
		if delta == nil {
			t.Fatalf("step %d: delta analysis declined; donor should be compatible", step)
		}
		sameAnalysis(t, l, delta, full)
		if ds.ChangedNets == 0 {
			t.Errorf("step %d: no nets changed (stats %+v)", step, ds)
		}
		t.Logf("step %d: changed=%d coneInsts=%d/%d coneNets=%d",
			step, ds.ChangedNets, ds.ConeInsts, funcInsts, ds.ConeNets)
		totalConeInsts += ds.ConeInsts
		donor = delta // chain: the delta result donates to the next step
	}
	// Locality must pay off across the chain: the summed forward cones stay
	// well under re-evaluating every functional instance every step.
	if totalConeInsts >= 4*funcInsts {
		t.Errorf("cone propagation never pruned: %d instances re-evaluated over 4 steps of %d",
			totalConeInsts, funcInsts)
	}
}

// TestDeltaAllChangedMatchesFull marks every net changed: the delta engine
// then re-characterizes and re-propagates everything, which must reproduce
// the full analysis exactly (the degenerate upper bound of the cone).
func TestDeltaAllChangedMatchesFull(t *testing.T) {
	l := placedPipe(t, 20, 3)
	routes, err := route.Route(l, route.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Constraints: cons(0.5), Routes: routes}
	donor, err := Analyze(l, opt)
	if err != nil {
		t.Fatal(err)
	}
	changed := make([]bool, len(l.Netlist.Nets))
	for i := range changed {
		changed[i] = true
	}
	delta, _, err := AnalyzeDelta(l, opt, donor, changed)
	if err != nil {
		t.Fatal(err)
	}
	if delta == nil {
		t.Fatal("all-changed delta declined")
	}
	sameAnalysis(t, l, delta, donor)
}

// TestDeltaDeclines checks the compatibility gates: an unusable donor makes
// AnalyzeDelta return nil (fall back to full analysis) instead of producing
// wrong numbers.
func TestDeltaDeclines(t *testing.T) {
	l := placedPipe(t, 10, 2)
	opt := Options{Constraints: cons(1)}
	donor, err := Analyze(l, opt)
	if err != nil {
		t.Fatal(err)
	}
	changed := make([]bool, len(l.Netlist.Nets))

	if res, _, err := AnalyzeDelta(l, opt, nil, changed); err != nil || res != nil {
		t.Errorf("nil donor: got (%v, %v), want decline", res, err)
	}
	if res, _, err := AnalyzeDelta(l, Options{Constraints: cons(2)}, donor, changed); err != nil || res != nil {
		t.Errorf("period mismatch: got (%v, %v), want decline", res, err)
	}
	if res, _, err := AnalyzeDelta(l, opt, donor, changed[:1]); err != nil || res != nil {
		t.Errorf("mask size mismatch: got (%v, %v), want decline", res, err)
	}

	// A compatible donor with an all-clean mask reproduces itself.
	res, ds, err := AnalyzeDelta(l, opt, donor, changed)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("identity delta declined")
	}
	if ds.ConeInsts != 0 || ds.ChangedNets != 0 {
		t.Errorf("identity delta propagated a cone: %+v", ds)
	}
	sameAnalysis(t, l, res, donor)
}
