package sdc

import "testing"

const sample = `
# timing constraints for AES_1
create_clock -name clk -period 2.5 [get_ports clk]
set_clock_uncertainty 0.05 [get_clocks clk]
set_input_delay 0.2 -clock clk [all_inputs]
set_output_delay 0.25 -clock clk [all_outputs]
set_false_path -from [get_ports rst]
`

func TestParse(t *testing.T) {
	c, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.Clocks) != 1 {
		t.Fatalf("clocks = %d", len(c.Clocks))
	}
	clk := c.Clock("clk")
	if clk == nil {
		t.Fatal("clk missing")
	}
	if clk.PeriodPS != 2500 {
		t.Errorf("period = %g ps", clk.PeriodPS)
	}
	if clk.Port != "clk" {
		t.Errorf("port = %q", clk.Port)
	}
	if clk.UncertaintyPS != 50 {
		t.Errorf("uncertainty = %g ps", clk.UncertaintyPS)
	}
	if c.InputDelayPS != 200 || c.OutputDelayPS != 250 {
		t.Errorf("io delays = %g/%g", c.InputDelayPS, c.OutputDelayPS)
	}
	if c.PrimaryClock() != clk {
		t.Error("PrimaryClock mismatch")
	}
}

func TestParseBarePortForm(t *testing.T) {
	c, err := ParseString("create_clock -period 1.0 sysclk\n")
	if err != nil {
		t.Fatal(err)
	}
	clk := c.PrimaryClock()
	if clk.Name != "sysclk" || clk.Port != "sysclk" || clk.PeriodPS != 1000 {
		t.Errorf("clock = %+v", clk)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"create_clock -name x [get_ports x]",             // no period
		"create_clock -period -1 clk",                    // negative period treated as flag -> no period
		"set_clock_uncertainty 0.05 [get_clocks ghost]",  // no such clock
		"set_input_delay -clock clk [all_inputs]",        // no value
		"delete_all_timing",                              // unsupported
		"create_clock -period 2.0",                       // no name/port
		"set_clock_uncertainty soon [get_clocks c]",      // bad value
		"create_clock -name c -period xyz [get_ports c]", // bad period
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEmptyAndComments(t *testing.T) {
	c, err := ParseString("\n# nothing here\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.PrimaryClock() != nil {
		t.Error("phantom clock")
	}
	if c.Clock("x") != nil {
		t.Error("Clock on empty should be nil")
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseString(WriteString(c))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(c2.Clocks) != len(c.Clocks) || c2.Clocks[0] != c.Clocks[0] {
		t.Errorf("clocks: %+v vs %+v", c2.Clocks, c.Clocks)
	}
	if c2.InputDelayPS != c.InputDelayPS || c2.OutputDelayPS != c.OutputDelayPS {
		t.Error("io delays changed")
	}
}

func TestMultipleClocks(t *testing.T) {
	src := `
create_clock -name fast -period 1.0 [get_ports clkf]
create_clock -name slow -period 10.0 [get_ports clks]
set_clock_uncertainty 0.1
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clocks) != 2 {
		t.Fatalf("clocks = %d", len(c.Clocks))
	}
	// uncertainty without target applies to all
	if c.Clocks[0].UncertaintyPS != 100 || c.Clocks[1].UncertaintyPS != 100 {
		t.Errorf("uncertainties = %g/%g", c.Clocks[0].UncertaintyPS, c.Clocks[1].UncertaintyPS)
	}
}
