// Package sdc reads and writes the subset of Synopsys Design Constraints
// used by the flow: clock definitions, clock uncertainty, and I/O delays.
// Values in SDC files are nanoseconds (the industry convention); the model
// stores picoseconds to match the timing engine.
package sdc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Clock is one created clock.
type Clock struct {
	Name string
	// Port is the clock source port name.
	Port string
	// PeriodPS is the clock period in picoseconds.
	PeriodPS float64
	// UncertaintyPS is subtracted from the available period.
	UncertaintyPS float64
}

// Constraints is a parsed SDC file.
type Constraints struct {
	Clocks []Clock
	// InputDelayPS applies to all primary inputs; OutputDelayPS to all
	// primary outputs.
	InputDelayPS  float64
	OutputDelayPS float64
}

// Clock returns the named clock, or nil.
func (c *Constraints) Clock(name string) *Clock {
	for i := range c.Clocks {
		if c.Clocks[i].Name == name {
			return &c.Clocks[i]
		}
	}
	return nil
}

// PrimaryClock returns the first (usually only) clock, or nil.
func (c *Constraints) PrimaryClock() *Clock {
	if len(c.Clocks) == 0 {
		return nil
	}
	return &c.Clocks[0]
}

// Parse reads SDC text.
func Parse(r io.Reader) (*Constraints, error) {
	c := &Constraints{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks := tokenize(line)
		if len(toks) == 0 {
			continue
		}
		var err error
		switch toks[0] {
		case "create_clock":
			err = c.parseCreateClock(toks[1:])
		case "set_clock_uncertainty":
			err = c.parseUncertainty(toks[1:])
		case "set_input_delay":
			c.InputDelayPS, err = parseDelay(toks[1:])
		case "set_output_delay":
			c.OutputDelayPS, err = parseDelay(toks[1:])
		case "set_false_path", "set_max_fanout", "set_max_transition", "set_load":
			// accepted, not modeled
		default:
			err = fmt.Errorf("unsupported command %q", toks[0])
		}
		if err != nil {
			return nil, fmt.Errorf("sdc: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sdc: %w", err)
	}
	return c, nil
}

// ParseString is a convenience wrapper over Parse.
func ParseString(s string) (*Constraints, error) {
	return Parse(strings.NewReader(s))
}

func (c *Constraints) parseCreateClock(toks []string) error {
	clk := Clock{}
	for i := 0; i < len(toks); i++ {
		switch toks[i] {
		case "-name":
			i++
			if i >= len(toks) {
				return fmt.Errorf("create_clock: -name needs a value")
			}
			clk.Name = toks[i]
		case "-period":
			i++
			if i >= len(toks) {
				return fmt.Errorf("create_clock: -period needs a value")
			}
			ns, err := strconv.ParseFloat(toks[i], 64)
			if err != nil {
				return fmt.Errorf("create_clock: bad period %q", toks[i])
			}
			clk.PeriodPS = ns * 1000
		case "get_ports":
			i++
			if i >= len(toks) {
				return fmt.Errorf("create_clock: get_ports needs a value")
			}
			clk.Port = toks[i]
		default:
			// bare port name form: create_clock -period 2 clkname
			if !strings.HasPrefix(toks[i], "-") && clk.Port == "" {
				clk.Port = toks[i]
			}
		}
	}
	if clk.PeriodPS <= 0 {
		return fmt.Errorf("create_clock: missing or non-positive period")
	}
	if clk.Name == "" {
		clk.Name = clk.Port
	}
	if clk.Name == "" {
		return fmt.Errorf("create_clock: no name or port")
	}
	c.Clocks = append(c.Clocks, clk)
	return nil
}

func (c *Constraints) parseUncertainty(toks []string) error {
	if len(toks) == 0 {
		return fmt.Errorf("set_clock_uncertainty: missing value")
	}
	ns, err := strconv.ParseFloat(toks[0], 64)
	if err != nil {
		return fmt.Errorf("set_clock_uncertainty: bad value %q", toks[0])
	}
	target := ""
	for i := 1; i < len(toks); i++ {
		if toks[i] == "get_clocks" && i+1 < len(toks) {
			target = toks[i+1]
		}
	}
	applied := false
	for i := range c.Clocks {
		if target == "" || c.Clocks[i].Name == target {
			c.Clocks[i].UncertaintyPS = ns * 1000
			applied = true
		}
	}
	if !applied {
		return fmt.Errorf("set_clock_uncertainty: no clock %q defined yet", target)
	}
	return nil
}

func parseDelay(toks []string) (float64, error) {
	for _, t := range toks {
		if v, err := strconv.ParseFloat(t, 64); err == nil {
			return v * 1000, nil
		}
	}
	return 0, fmt.Errorf("missing delay value")
}

// tokenize splits an SDC line, treating [ ] { } as separators so that
// `[get_ports clk]` yields "get_ports", "clk".
func tokenize(line string) []string {
	f := func(r rune) bool {
		return r == ' ' || r == '\t' || r == '[' || r == ']' || r == '{' || r == '}'
	}
	return strings.FieldsFunc(line, f)
}

// Write emits the constraints as SDC text.
func Write(w io.Writer, c *Constraints) error {
	var b strings.Builder
	for _, clk := range c.Clocks {
		fmt.Fprintf(&b, "create_clock -name %s -period %g [get_ports %s]\n",
			clk.Name, clk.PeriodPS/1000, clk.Port)
		if clk.UncertaintyPS > 0 {
			fmt.Fprintf(&b, "set_clock_uncertainty %g [get_clocks %s]\n",
				clk.UncertaintyPS/1000, clk.Name)
		}
	}
	if c.InputDelayPS > 0 && len(c.Clocks) > 0 {
		fmt.Fprintf(&b, "set_input_delay %g -clock %s [all_inputs]\n",
			c.InputDelayPS/1000, c.Clocks[0].Name)
	}
	if c.OutputDelayPS > 0 && len(c.Clocks) > 0 {
		fmt.Fprintf(&b, "set_output_delay %g -clock %s [all_outputs]\n",
			c.OutputDelayPS/1000, c.Clocks[0].Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString renders the constraints as SDC text.
func WriteString(c *Constraints) string {
	var b strings.Builder
	_ = Write(&b, c)
	return b.String()
}
