package attack

import (
	"testing"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/security"
)

func TestInsertionSucceedsOnBaseline(t *testing.T) {
	d, err := benchdesigns.Build("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attempt(base.Layout, base.Routes, base.Timing, DefaultTrojan(), security.DefaultParams())
	if err != nil {
		t.Fatalf("Attempt: %v", err)
	}
	if !res.Inserted {
		t.Fatalf("baseline PRESENT resisted insertion: %s", res.Reason)
	}
	if res.Victim == "" || res.RegionSites < 20 {
		t.Errorf("implausible insertion: %+v", res)
	}
	if res.SlackAfterPS < 0 {
		t.Errorf("inserted Trojan breaks timing: slack %g", res.SlackAfterPS)
	}
}

func TestHardeningBlocksInsertion(t *testing.T) {
	d, err := benchdesigns.Build("SEED")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.EvalBaseline(d.Layout, core.FlowConfig{
		Constraints: d.Cons, Activity: d.Spec.Activity, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Attempt(base.Layout, base.Routes, base.Timing, DefaultTrojan(), security.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := core.Run(base, core.DefaultParams(d.Layout.Lib().NumLayers()))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Attempt(hardened.Layout, hardened.Routes, hardened.Timing, DefaultTrojan(), security.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if before.Inserted && after.Inserted {
		t.Errorf("hardening did not block the attack (region %d sites at row %d)",
			after.RegionSites, after.Row)
	}
	if !before.Inserted {
		t.Log("baseline already resisted; hardening check vacuous for this design")
	}
}

func TestAttemptValidation(t *testing.T) {
	d, err := benchdesigns.Build("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	bad := TrojanSpec{Cells: []string{"UNOBTAINIUM_X1"}}
	if _, err := Attempt(d.Layout, nil, nil, bad, security.DefaultParams()); err == nil {
		t.Error("unknown trojan cell accepted")
	}
}

func TestNoVictimsMeansNoInsertion(t *testing.T) {
	d, err := benchdesigns.Build("PRESENT")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Layout.Netlist.Insts {
		in.SecurityCritical = false
	}
	res, err := Attempt(d.Layout, nil, nil, DefaultTrojan(), security.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted {
		t.Error("insertion without any asset to attack")
	}
}
