// Package attack simulates the paper's threat model from the adversary's
// side: a fabrication-time attacker who receives the GDSII, reverse
// engineers placement and connectivity, and tries to implant an A2-style
// hardware Trojan — a small trigger+payload cell group — into leftover
// placement sites, wired to a victim net near a security-critical cell
// without breaking the design's timing.
//
// The simulator is the end-to-end validation of the defense: on baseline
// layouts the insertion generally succeeds; on GDSII-Guard-hardened layouts
// it should find no usable region.
package attack

import (
	"fmt"
	"math"
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/security"
	"gdsiiguard/internal/sta"
)

// TrojanSpec describes the implant the attacker wants to place.
type TrojanSpec struct {
	// Cells are the library masters of the Trojan, in placement order.
	// The default (A2-style minimal digital proxy) is a trigger NAND, a
	// state-holding flip-flop, and a payload NAND.
	Cells []string
	// MaxWireUM bounds the tap wirelength the attacker will route, in µm.
	MaxWireUM float64
}

// DefaultTrojan returns the minimal trigger+state+payload implant.
func DefaultTrojan() TrojanSpec {
	return TrojanSpec{
		Cells:     []string{"NAND2_X1", "DFF_X1", "NAND2_X1"},
		MaxWireUM: 100,
	}
}

// Result reports one insertion attempt.
type Result struct {
	// Inserted reports whether a viable site and victim were found.
	Inserted bool
	// Reason explains a failed attempt.
	Reason string
	// Row, Site locate the implant (when inserted).
	Row, Site int
	// Victim is the tapped security-critical instance.
	Victim string
	// TapDistUM is the Manhattan routing distance to the victim in µm.
	TapDistUM float64
	// SlackAfterPS is the victim path slack after the implant's delay is
	// charged; ≥ 0 means the Trojan stays timing-stealthy.
	SlackAfterPS float64
	// RegionSites is the size of the exploitable region used.
	RegionSites int
}

// Attempt tries to insert the Trojan into the layout. timing and routes
// feed the same security assessment the defender uses (Definition 2.2):
// the attacker needs a contiguous exploitable region of at least the
// implant's width within exploitable distance of an asset, and the tap's
// added delay must not break the victim's timing.
func Attempt(l *layout.Layout, routes *route.Result, timing *sta.Result, spec TrojanSpec, p security.Params) (*Result, error) {
	if len(spec.Cells) == 0 {
		spec = DefaultTrojan()
	}
	lib := l.Lib()
	width := 0
	for _, name := range spec.Cells {
		c := lib.Cell(name)
		if c == nil {
			return nil, fmt.Errorf("attack: unknown trojan cell %q", name)
		}
		width += c.WidthSites
	}

	assess, err := security.Assess(l, routes, timing, p)
	if err != nil {
		return nil, err
	}
	if len(assess.Regions) == 0 {
		return &Result{Reason: "no exploitable regions"}, nil
	}

	// Victim candidates: security-critical instances with positive slack
	// (a tap on a failing path would be caught at test).
	type victim struct {
		in    *netlist.Instance
		slack float64
	}
	var victims []victim
	for _, in := range l.Netlist.CriticalInsts() {
		slack := math.Inf(1)
		if timing != nil {
			slack = timing.InstSlack(in)
		}
		if slack > 0 {
			victims = append(victims, victim{in, slack})
		}
	}
	if len(victims) == 0 {
		return &Result{Reason: "no positive-slack victim paths"}, nil
	}

	// Regions big enough for the implant, largest first (more wiggle room).
	regions := append([]security.Region(nil), assess.Regions...)
	sort.Slice(regions, func(i, j int) bool { return regions[i].Sites > regions[j].Sites })

	nand := lib.Cell("NAND2_X1")
	tapDelay := func(distUM float64) float64 {
		// Trojan tap: victim net gains a stub of derated wire plus the
		// trigger input; the trigger gate adds its own delay.
		layer := lib.Layer(3)
		factor := p.TrojanWireFactor
		if factor <= 0 {
			factor = 3
		}
		c := distUM * layer.CPerUM * factor
		r := distUM * layer.RPerUM
		d := 0.5 * r * c
		if nand != nil && len(nand.Arcs) > 0 {
			d += nand.Arcs[0].Intrinsic + nand.Arcs[0].DriveRes*c
			if in := nand.InputPins(); len(in) > 0 {
				d += nand.Arcs[0].DriveRes * in[0].Cap
			}
		}
		return d
	}

	for _, reg := range regions {
		if reg.Sites < width {
			continue
		}
		for _, run := range reg.Runs {
			if run.Len < width {
				continue
			}
			spot := l.SiteDBU(run.Row, run.Start+run.Len/2)
			// Nearest viable victim for this spot.
			bestIdx, bestDist := -1, math.Inf(1)
			for i, v := range victims {
				rect := l.CellRect(v.in)
				if rect.Empty() {
					continue
				}
				dUM := lib.DBUToMicrons(rect.DistTo(spot))
				if dUM > spec.MaxWireUM {
					continue
				}
				if v.slack-tapDelay(dUM) < 0 {
					continue // tap would break timing and be detected
				}
				if dUM < bestDist {
					bestIdx, bestDist = i, dUM
				}
			}
			if bestIdx < 0 {
				continue
			}
			v := victims[bestIdx]
			return &Result{
				Inserted:     true,
				Row:          run.Row,
				Site:         run.Start,
				Victim:       v.in.Name,
				TapDistUM:    bestDist,
				SlackAfterPS: v.slack - tapDelay(bestDist),
				RegionSites:  reg.Sites,
			}, nil
		}
	}
	return &Result{Reason: "no region admits the implant within timing"}, nil
}
