package fault

import (
	"errors"
	"sync"
	"testing"
)

func arm(t *testing.T, rules map[Point]Rule) {
	t.Helper()
	Arm(rules)
	t.Cleanup(Disarm)
}

func TestDisarmedHitIsNoop(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Hit(Route); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	if Calls(Route) != 0 || Fired(Route) != 0 {
		t.Errorf("disarmed counters = %d/%d, want 0/0", Calls(Route), Fired(Route))
	}
}

func TestEveryFiresOnSchedule(t *testing.T) {
	arm(t, map[Point]Rule{Route: {Every: 3}})
	var failedAt []int
	for i := 1; i <= 12; i++ {
		if err := Hit(Route); err != nil {
			failedAt = append(failedAt, i)
		}
	}
	want := []int{3, 6, 9, 12}
	if len(failedAt) != len(want) {
		t.Fatalf("failures at %v, want %v", failedAt, want)
	}
	for i := range want {
		if failedAt[i] != want[i] {
			t.Fatalf("failures at %v, want %v", failedAt, want)
		}
	}
	if Fired(Route) != 4 || Calls(Route) != 12 {
		t.Errorf("Fired/Calls = %d/%d, want 4/12", Fired(Route), Calls(Route))
	}
}

func TestAfterAndLimit(t *testing.T) {
	arm(t, map[Point]Rule{STA: {Every: 1, After: 5, Limit: 2}})
	fails := 0
	for i := 1; i <= 20; i++ {
		if err := Hit(STA); err != nil {
			fails++
			if i <= 5 {
				t.Errorf("fired during the After window (call %d)", i)
			}
		}
	}
	if fails != 2 {
		t.Errorf("fired %d times, want Limit=2", fails)
	}
	if Fired(STA) != 2 {
		t.Errorf("Fired = %d, want 2", Fired(STA))
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		Arm(map[Point]Rule{Route: {Rate: 0.3, Seed: seed}})
		defer Disarm()
		var at []int
		for i := 1; i <= 200; i++ {
			if Hit(Route) != nil {
				at = append(at, i)
			}
		}
		return at
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d failures", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at index %d: %d vs %d", i, a[i], b[i])
		}
	}
	// ~30% of 200 calls; allow a wide deterministic band.
	if len(a) < 30 || len(a) > 90 {
		t.Errorf("rate 0.3 fired %d/200 times, want roughly 60", len(a))
	}
}

func TestTransientMarker(t *testing.T) {
	arm(t, map[Point]Rule{Route: {Every: 1, Transient: true}})
	err := Hit(Route)
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Hit returned %T, want *fault.Error", err)
	}
	if !fe.Transient() {
		t.Error("Transient rule produced non-transient error")
	}
	arm(t, map[Point]Rule{Route: {Every: 1}})
	if fe, ok := Hit(Route).(*Error); !ok || fe.Transient() {
		t.Error("default rule should produce a permanent *Error")
	}
}

func TestPanicRulePanicsWithError(t *testing.T) {
	arm(t, map[Point]Rule{PlaceECO: {Every: 1, Panic: true, Msg: "boom"}})
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok {
			t.Fatalf("panic value %T, want *fault.Error", r)
		}
		if fe.Point != PlaceECO {
			t.Errorf("panic point = %s, want %s", fe.Point, PlaceECO)
		}
	}()
	_ = Hit(PlaceECO)
	t.Fatal("Panic rule did not panic")
}

func TestConcurrentHitsHonorLimit(t *testing.T) {
	arm(t, map[Point]Rule{Service: {Every: 1, Limit: 10}})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fails := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Hit(Service) != nil {
					mu.Lock()
					fails++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fails != 10 {
		t.Errorf("concurrent failures = %d, want Limit=10", fails)
	}
	if got := Calls(Service); got != 800 {
		t.Errorf("Calls = %d, want 800", got)
	}
}
