package fault

import (
	"fmt"
	"os"
	"strconv"
	"syscall"
)

// Environment variables read by ArmCrashFromEnv. The crash harness sets
// them on a child guardd/test process; the child arms the plan before any
// durable state is written, runs until the rule fires, and dies by SIGKILL.
const (
	// EnvCrashPoint names the injection point to crash at (the Point
	// string, e.g. "durable.append").
	EnvCrashPoint = "GDSIIGUARD_CRASH_POINT"
	// EnvCrashAfter exempts the first N calls at the point, so the harness
	// can sweep the crash across the schedule (default 0: first call).
	EnvCrashAfter = "GDSIIGUARD_CRASH_AFTER"
)

// crashNow terminates the process with an un-catchable SIGKILL — no defers,
// no atexit, no flushes: exactly what an OOM kill or power cut leaves
// behind.
func crashNow() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL delivery is asynchronous in theory; never execute past here.
	for {
		os.Exit(137)
	}
}

// ArmCrashFromEnv arms a single-shot crash rule from the process
// environment and reports whether one was armed. Call it early in a
// process that should participate in a kill-and-restart test; it is a
// no-op (false) when EnvCrashPoint is unset.
func ArmCrashFromEnv() (bool, error) {
	point := os.Getenv(EnvCrashPoint)
	if point == "" {
		return false, nil
	}
	after := 0
	if v := os.Getenv(EnvCrashAfter); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return false, fmt.Errorf("fault: bad %s=%q", EnvCrashAfter, v)
		}
		after = n
	}
	Arm(map[Point]Rule{
		Point(point): {Every: 1, After: after, Limit: 1, Crash: true},
	})
	return true, nil
}
