// Package fault is a deterministic fault-injection registry for exercising
// the flow's failure paths in tests. Injection points are compiled into the
// entry points of the heavyweight engines (route, sta, place) and the
// service executor; each point calls Hit, which is a no-op (a single atomic
// pointer load) unless a plan has been armed with Arm.
//
// Injection is deterministic: rules fire on call counters (every Nth call
// at a point) or on a seeded hash of the call counter (a fixed fraction of
// calls), never on wall-clock time or global randomness, so a test that
// arms a plan sees the same failures on every run with the same schedule
// of calls.
//
// Points hosted in functions without an error return (such as PlaceECO)
// cannot surface an injected error, so any rule that fires there panics
// with the *Error as the panic value; the flow's per-stage panic
// containment (internal/core) converts it into a classified error. Rules
// with Panic set behave that way at every point.
//
// The registry is process-global on purpose — the engines must not thread
// a test-only dependency through their APIs — so tests that arm plans must
// not run in parallel with each other and should register Disarm as a
// cleanup.
package fault

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Point identifies one compiled-in injection site.
type Point string

// The compiled-in injection points.
const (
	// Route fires at the top of route.Route.
	Route Point = "route"
	// STA fires at the top of sta.Analyze.
	STA Point = "sta"
	// PlaceECO fires at the top of place.ECO. The host has no error
	// return, so any rule firing here panics (see the package comment).
	PlaceECO Point = "place.eco"
	// Service fires at the top of the service manager's job executor,
	// outside the flow's per-stage panic containment.
	Service Point = "service.execute"
	// ClusterIsland fires at the top of a cluster worker's island
	// execution (cluster.Worker.RunIsland), letting tests kill individual
	// islands of a distributed exploration mid-run.
	ClusterIsland Point = "cluster.island"
	// ClusterEpoch fires at the top of every coordinator epoch iteration
	// (cluster.Driver.Explore), the mid-epoch crash point of the
	// kill-and-restart harness.
	ClusterEpoch Point = "cluster.epoch"
	// DurableAppend fires inside durable.Log.Append, after the record is
	// encoded but before any byte reaches the WAL.
	DurableAppend Point = "durable.append"
	// DurableSnapshot fires inside durable.Log.Snapshot, after the new
	// snapshot is durably published but before the WAL is truncated.
	DurableSnapshot Point = "durable.snapshot"
)

// Rule decides which calls at a point fail. Exactly one of Every or Rate
// selects the schedule.
type Rule struct {
	// Every fires on every Nth call (1 = every call). 0 disables the
	// counter schedule.
	Every int
	// Rate fires on approximately this fraction of calls in (0,1],
	// selected by a seeded hash of the call counter (deterministic for a
	// given Seed). Ignored when Every is set.
	Rate float64
	// Seed perturbs the Rate schedule.
	Seed int64
	// After exempts the first After calls at the point.
	After int
	// Limit caps the number of injections fired (0 = unlimited).
	Limit int
	// Panic makes the injection panic with the *Error instead of
	// returning it.
	Panic bool
	// Crash makes the injection SIGKILL the process instead of returning
	// an error: the closest deterministic stand-in for an OOM kill or
	// power loss, un-catchable by any defer. Used by the kill-and-restart
	// crash harness; see ArmCrashFromEnv.
	Crash bool
	// Transient marks injected errors as retryable: the returned *Error
	// reports Transient() true and classifies as a transient failure.
	Transient bool
	// Msg is appended to the error text when non-empty.
	Msg string
}

type pointState struct {
	rule  Rule
	calls atomic.Uint64
	fired atomic.Uint64
}

type plan struct {
	points map[Point]*pointState
}

var active atomic.Pointer[plan]

// Arm installs a plan, replacing any armed one. Counters start at zero.
func Arm(rules map[Point]Rule) {
	p := &plan{points: make(map[Point]*pointState, len(rules))}
	for pt, r := range rules {
		p.points[pt] = &pointState{rule: r}
	}
	active.Store(p)
}

// Disarm removes the armed plan; every Hit becomes a no-op again.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is currently armed.
func Armed() bool { return active.Load() != nil }

// Calls returns the number of Hit calls observed at p since Arm (0 when
// nothing is armed or the point has no rule).
func Calls(p Point) uint64 {
	if pl := active.Load(); pl != nil {
		if st := pl.points[p]; st != nil {
			return st.calls.Load()
		}
	}
	return 0
}

// Fired returns the number of injections fired at p since Arm.
func Fired(p Point) uint64 {
	if pl := active.Load(); pl != nil {
		if st := pl.points[p]; st != nil {
			return st.fired.Load()
		}
	}
	return 0
}

// Error is one injected failure.
type Error struct {
	// Point is the site that fired; Call its 1-based call counter value.
	Point Point
	Call  uint64

	transient bool
	msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	kind := "permanent"
	if e.transient {
		kind = "transient"
	}
	s := fmt.Sprintf("fault: injected %s failure at %s (call %d)", kind, e.Point, e.Call)
	if e.msg != "" {
		s += ": " + e.msg
	}
	return s
}

// Transient reports whether the injected failure is safe to retry; the
// core error taxonomy keys its classification off this method.
func (e *Error) Transient() bool { return e.transient }

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// to turn (seed, counter) into a uniform decision for Rate rules.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hit is the injection call compiled into each point. It returns nil when
// no plan is armed, no rule covers p, or the rule does not fire on this
// call; otherwise it returns (or panics with, for Panic rules) an *Error.
func Hit(p Point) error {
	pl := active.Load()
	if pl == nil {
		return nil
	}
	st := pl.points[p]
	if st == nil {
		return nil
	}
	n := st.calls.Add(1)
	r := st.rule
	if n <= uint64(r.After) {
		return nil
	}
	fire := false
	switch {
	case r.Every > 0:
		fire = (n-uint64(r.After))%uint64(r.Every) == 0
	case r.Rate >= 1:
		fire = true
	case r.Rate > 0:
		// r.Rate < 1 keeps the product inside uint64 range.
		threshold := uint64(r.Rate * float64(math.MaxUint64))
		fire = splitmix64(uint64(r.Seed)+n) <= threshold
	}
	if !fire {
		return nil
	}
	if r.Limit > 0 {
		if st.fired.Add(1) > uint64(r.Limit) {
			st.fired.Add(^uint64(0)) // undo: the cap was already reached
			return nil
		}
	} else {
		st.fired.Add(1)
	}
	err := &Error{Point: p, Call: n, transient: r.Transient, msg: r.Msg}
	if r.Crash {
		crashNow()
	}
	if r.Panic {
		panic(err)
	}
	return err
}
