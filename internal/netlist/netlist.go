// Package netlist models a gate-level netlist: standard-cell instances,
// nets connecting their pins, and the design's top-level ports. It is the
// logical view underneath a physical layout; the layout package adds
// placement, and the routing/timing engines consume both.
package netlist

import (
	"fmt"
	"sort"

	"gdsiiguard/internal/tech"
)

// Netlist is a flat gate-level design.
type Netlist struct {
	Name string
	Lib  *tech.Library

	Insts []*Instance
	Nets  []*Net
	Ports []*Port

	instByName map[string]*Instance
	netByName  map[string]*Net
	portByName map[string]*Port
}

// Instance is one placed-or-placeable standard-cell instance.
type Instance struct {
	ID     int
	Name   string
	Master *tech.Cell
	// Conns lists pin connections in the order they were made
	// (deterministic iteration).
	Conns []PinConn
	// SecurityCritical marks the instance as a protected asset
	// (Definition 2.1: key-memory registers or key-control logic).
	SecurityCritical bool
	// Fixed prevents any placement change during ECO operations; the
	// GDSII-Guard preprocessing step fixes all security-critical cells.
	Fixed bool
}

// PinConn binds one pin of an instance to a net.
type PinConn struct {
	Pin string
	Net *Net
}

// NetConn returns the net connected to the named pin, or nil.
func (in *Instance) NetConn(pin string) *Net {
	for _, c := range in.Conns {
		if c.Pin == pin {
			return c.Net
		}
	}
	return nil
}

// Terminal identifies one endpoint of a net: either an instance pin or a
// top-level port (Inst == nil).
type Terminal struct {
	Inst *Instance
	Port *Port
	Pin  string
}

// IsPort reports whether the terminal is a top-level port.
func (t Terminal) IsPort() bool { return t.Inst == nil }

// String implements fmt.Stringer.
func (t Terminal) String() string {
	if t.IsPort() {
		return "port:" + t.Port.Name
	}
	return t.Inst.Name + "/" + t.Pin
}

// Net is one electrical net with a single driver and zero or more sinks.
type Net struct {
	ID     int
	Name   string
	Driver Terminal
	Sinks  []Terminal
	// IsClock marks clock-distribution nets; they are excluded from signal
	// timing arcs and eligible for clock-specific NDRs.
	IsClock bool

	hasDriver bool
}

// NumTerms returns the number of terminals (driver + sinks).
func (n *Net) NumTerms() int {
	t := len(n.Sinks)
	if n.hasDriver {
		t++
	}
	return t
}

// HasDriver reports whether a driver has been connected.
func (n *Net) HasDriver() bool { return n.hasDriver }

// PortDir is the direction of a top-level port.
type PortDir int

const (
	// In is a primary input.
	In PortDir = iota
	// Out is a primary output.
	Out
)

// Port is a top-level design port.
type Port struct {
	Name string
	Dir  PortDir
}

// New returns an empty netlist over the given library.
func New(name string, lib *tech.Library) *Netlist {
	return &Netlist{
		Name:       name,
		Lib:        lib,
		instByName: make(map[string]*Instance),
		netByName:  make(map[string]*Net),
		portByName: make(map[string]*Port),
	}
}

// AddInstance creates an instance of the named master cell.
func (nl *Netlist) AddInstance(name, master string) (*Instance, error) {
	if _, dup := nl.instByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate instance %q", name)
	}
	m := nl.Lib.Cell(master)
	if m == nil {
		return nil, fmt.Errorf("netlist: instance %q: unknown master %q", name, master)
	}
	in := &Instance{ID: len(nl.Insts), Name: name, Master: m}
	nl.Insts = append(nl.Insts, in)
	nl.instByName[name] = in
	return in, nil
}

// AddNet creates a named net.
func (nl *Netlist) AddNet(name string) (*Net, error) {
	if _, dup := nl.netByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate net %q", name)
	}
	n := &Net{ID: len(nl.Nets), Name: name}
	nl.Nets = append(nl.Nets, n)
	nl.netByName[name] = n
	return n, nil
}

// AddPort creates a top-level port.
func (nl *Netlist) AddPort(name string, dir PortDir) (*Port, error) {
	if _, dup := nl.portByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate port %q", name)
	}
	p := &Port{Name: name, Dir: dir}
	nl.Ports = append(nl.Ports, p)
	nl.portByName[name] = p
	return p, nil
}

// Instance returns the named instance, or nil.
func (nl *Netlist) Instance(name string) *Instance { return nl.instByName[name] }

// Net returns the named net, or nil.
func (nl *Netlist) Net(name string) *Net { return nl.netByName[name] }

// Port returns the named port, or nil.
func (nl *Netlist) Port(name string) *Port { return nl.portByName[name] }

// Connect binds pin `pin` of instance `in` to net `n`. Output pins become
// the net's driver; inputs become sinks. Connecting two drivers to a net or
// connecting a missing pin is an error.
func (nl *Netlist) Connect(in *Instance, pin string, n *Net) error {
	p := in.Master.Pin(pin)
	if p == nil {
		return fmt.Errorf("netlist: %s has no pin %q (master %s)", in.Name, pin, in.Master.Name)
	}
	if in.NetConn(pin) != nil {
		return fmt.Errorf("netlist: %s/%s already connected", in.Name, pin)
	}
	term := Terminal{Inst: in, Pin: pin}
	switch p.Dir {
	case tech.Output:
		if n.hasDriver {
			return fmt.Errorf("netlist: net %q already driven by %s, cannot add %s", n.Name, n.Driver, term)
		}
		n.Driver = term
		n.hasDriver = true
	default:
		n.Sinks = append(n.Sinks, term)
	}
	in.Conns = append(in.Conns, PinConn{Pin: pin, Net: n})
	return nil
}

// ConnectPort binds a top-level port to a net: input ports drive, output
// ports sink.
func (nl *Netlist) ConnectPort(p *Port, n *Net) error {
	term := Terminal{Port: p, Pin: p.Name}
	if p.Dir == In {
		if n.hasDriver {
			return fmt.Errorf("netlist: net %q already driven, cannot add port %s", n.Name, p.Name)
		}
		n.Driver = term
		n.hasDriver = true
		return nil
	}
	n.Sinks = append(n.Sinks, term)
	return nil
}

// FunctionalInsts returns the instances whose masters carry logic.
func (nl *Netlist) FunctionalInsts() []*Instance {
	var out []*Instance
	for _, in := range nl.Insts {
		if in.Master.IsFunctional() {
			out = append(out, in)
		}
	}
	return out
}

// CriticalInsts returns the security-critical instances.
func (nl *Netlist) CriticalInsts() []*Instance {
	var out []*Instance
	for _, in := range nl.Insts {
		if in.SecurityCritical {
			out = append(out, in)
		}
	}
	return out
}

// MarkCritical marks the named instances as security-critical assets and
// returns how many were found; unknown names are reported in err.
func (nl *Netlist) MarkCritical(names []string) (int, error) {
	var missing []string
	found := 0
	for _, name := range names {
		if in := nl.instByName[name]; in != nil {
			in.SecurityCritical = true
			found++
		} else {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return found, fmt.Errorf("netlist: %d unknown asset instances (first: %q)", len(missing), missing[0])
	}
	return found, nil
}

// Validate checks structural sanity: every net driven, every functional
// input pin connected, no dangling references.
func (nl *Netlist) Validate() error {
	for _, n := range nl.Nets {
		if !n.hasDriver {
			return fmt.Errorf("netlist: net %q has no driver", n.Name)
		}
	}
	for _, in := range nl.Insts {
		if !in.Master.IsFunctional() {
			continue
		}
		for _, p := range in.Master.Pins {
			if p.Dir != tech.Input {
				continue
			}
			if in.NetConn(p.Name) == nil {
				return fmt.Errorf("netlist: %s/%s unconnected", in.Name, p.Name)
			}
		}
	}
	return nil
}

// TopoOrder returns the functional instances in topological order of the
// combinational signal flow: an instance appears after every instance whose
// output feeds one of its non-clock inputs, with sequential cells acting as
// sources (their D inputs do not create ordering constraints downstream of
// Q). An error is returned if a purely combinational cycle exists.
func (nl *Netlist) TopoOrder() ([]*Instance, error) {
	indeg := make(map[*Instance]int)
	succ := make(map[*Instance][]*Instance)
	for _, in := range nl.FunctionalInsts() {
		if _, ok := indeg[in]; !ok {
			indeg[in] = 0
		}
		if in.Master.Class == tech.Seq {
			continue // sequential outputs break combinational ordering
		}
		// For combinational cells: every driving instance of an input pin
		// must come first, unless the driver is sequential (a timing
		// startpoint) or a port.
		for _, c := range in.Conns {
			p := in.Master.Pin(c.Pin)
			if p == nil || p.Dir != tech.Input || p.IsClock || c.Net == nil {
				continue
			}
			d := c.Net.Driver
			if d.IsPort() || d.Inst == nil || !d.Inst.Master.IsFunctional() {
				continue
			}
			if d.Inst.Master.Class == tech.Seq {
				continue
			}
			if d.Inst == in {
				return nil, fmt.Errorf("netlist: %s drives itself combinationally", in.Name)
			}
			succ[d.Inst] = append(succ[d.Inst], in)
			indeg[in]++
		}
	}
	// Kahn's algorithm with deterministic (ID-ordered) seeding.
	var queue []*Instance
	for _, in := range nl.Insts {
		if _, ok := indeg[in]; ok && indeg[in] == 0 {
			queue = append(queue, in)
		}
	}
	var order []*Instance
	for len(queue) > 0 {
		in := queue[0]
		queue = queue[1:]
		order = append(order, in)
		for _, s := range succ[in] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(indeg) {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d ordered)", len(order), len(indeg))
	}
	return order, nil
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Insts, Comb, Seq, Filler, Nets, Ports, Critical int
	TotalWidthSites                                 int64
}

// Stats computes summary statistics.
func (nl *Netlist) Stats() Stats {
	var s Stats
	s.Nets = len(nl.Nets)
	s.Ports = len(nl.Ports)
	for _, in := range nl.Insts {
		s.Insts++
		s.TotalWidthSites += int64(in.Master.WidthSites)
		switch in.Master.Class {
		case tech.Comb:
			s.Comb++
		case tech.Seq:
			s.Seq++
		case tech.Filler:
			s.Filler++
		}
		if in.SecurityCritical {
			s.Critical++
		}
	}
	return s
}

// RemoveFillers deletes all filler/tap instances (they are never connected
// to signal nets). Used when re-running fill-based defenses from scratch.
func (nl *Netlist) RemoveFillers() int {
	kept := nl.Insts[:0]
	removed := 0
	for _, in := range nl.Insts {
		if in.Master.Class == tech.Filler {
			delete(nl.instByName, in.Name)
			removed++
			continue
		}
		kept = append(kept, in)
	}
	nl.Insts = kept
	for i, in := range nl.Insts {
		in.ID = i
	}
	return removed
}
