package netlist

// Clone returns a deep copy of the netlist: new Instance/Net/Port objects
// with identical names, masters, connectivity, and flags. Master cells are
// shared (the library is read-only).
func (nl *Netlist) Clone() *Netlist {
	out := New(nl.Name, nl.Lib)

	for _, p := range nl.Ports {
		np := &Port{Name: p.Name, Dir: p.Dir}
		out.Ports = append(out.Ports, np)
		out.portByName[np.Name] = np
	}
	for _, n := range nl.Nets {
		nn := &Net{ID: n.ID, Name: n.Name, IsClock: n.IsClock}
		out.Nets = append(out.Nets, nn)
		out.netByName[nn.Name] = nn
	}
	for _, in := range nl.Insts {
		ni := &Instance{
			ID:               in.ID,
			Name:             in.Name,
			Master:           in.Master,
			SecurityCritical: in.SecurityCritical,
			Fixed:            in.Fixed,
		}
		out.Insts = append(out.Insts, ni)
		out.instByName[ni.Name] = ni
	}
	// Rebuild terminals with the cloned objects.
	for i, n := range nl.Nets {
		nn := out.Nets[i]
		nn.hasDriver = n.hasDriver
		if n.hasDriver {
			nn.Driver = out.cloneTerm(n.Driver)
		}
		nn.Sinks = make([]Terminal, len(n.Sinks))
		for j, s := range n.Sinks {
			nn.Sinks[j] = out.cloneTerm(s)
		}
	}
	for i, in := range nl.Insts {
		ni := out.Insts[i]
		ni.Conns = make([]PinConn, len(in.Conns))
		for j, c := range in.Conns {
			ni.Conns[j] = PinConn{Pin: c.Pin, Net: out.netByName[c.Net.Name]}
		}
	}
	return out
}

func (nl *Netlist) cloneTerm(t Terminal) Terminal {
	if t.IsPort() {
		return Terminal{Port: nl.portByName[t.Port.Name], Pin: t.Pin}
	}
	return Terminal{Inst: nl.instByName[t.Inst.Name], Pin: t.Pin}
}
