package netlist

import "testing"

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	nl := buildToy(t)
	nl.Instance("u3").SecurityCritical = true
	nl.Instance("u3").Fixed = true

	c := nl.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if c.Stats() != nl.Stats() {
		t.Errorf("stats differ: %+v vs %+v", c.Stats(), nl.Stats())
	}
	// Flags preserved.
	if !c.Instance("u3").SecurityCritical || !c.Instance("u3").Fixed {
		t.Error("flags lost")
	}
	// Clock flag preserved.
	if !c.Net("clk").IsClock {
		t.Error("clock flag lost")
	}
	// Deep: objects are distinct.
	if c.Instance("u1") == nl.Instance("u1") {
		t.Error("instances aliased")
	}
	if c.Net("n1") == nl.Net("n1") {
		t.Error("nets aliased")
	}
	// Terminals reference cloned objects, not originals.
	if c.Net("n1").Driver.Inst != c.Instance("u1") {
		t.Error("driver terminal references wrong instance")
	}
	for _, s := range c.Net("n1").Sinks {
		if s.Inst != nil && s.Inst == nl.Instance("u2") {
			t.Error("sink references original instance")
		}
	}
	// Mutating the clone does not affect the original.
	c.Instance("u1").SecurityCritical = true
	if nl.Instance("u1").SecurityCritical {
		t.Error("mutation leaked to original")
	}
	// Port terminal clone.
	if d := c.Net("in0").Driver; !d.IsPort() || d.Port != c.Port("in0") {
		t.Error("port terminal not re-pointed")
	}
}

func TestCloneConnectionsMatch(t *testing.T) {
	nl := buildToy(t)
	c := nl.Clone()
	for _, in := range nl.Insts {
		ci := c.Instance(in.Name)
		if len(ci.Conns) != len(in.Conns) {
			t.Fatalf("%s conns = %d vs %d", in.Name, len(ci.Conns), len(in.Conns))
		}
		for i, conn := range in.Conns {
			if ci.Conns[i].Pin != conn.Pin || ci.Conns[i].Net.Name != conn.Net.Name {
				t.Errorf("%s conn %d mismatch", in.Name, i)
			}
		}
	}
}
