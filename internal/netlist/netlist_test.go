package netlist

import (
	"fmt"
	"testing"

	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/tech"
)

// buildToy constructs:
//
//	in0 -> INV u1 -> n1 -> NAND2 u2 -> n2 -> DFF u3 -> q -> out0
//	in1 ----------------->
func buildToy(t *testing.T) *Netlist {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := New("toy", lib)

	in0, _ := nl.AddPort("in0", In)
	in1, _ := nl.AddPort("in1", In)
	clk, _ := nl.AddPort("clk", In)
	out0, _ := nl.AddPort("out0", Out)

	nIn0, _ := nl.AddNet("in0")
	nIn1, _ := nl.AddNet("in1")
	nClk, _ := nl.AddNet("clk")
	nClk.IsClock = true
	n1, _ := nl.AddNet("n1")
	n2, _ := nl.AddNet("n2")
	q, _ := nl.AddNet("q")

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(nl.ConnectPort(in0, nIn0))
	must(nl.ConnectPort(in1, nIn1))
	must(nl.ConnectPort(clk, nClk))
	must(nl.ConnectPort(out0, q))

	u1, err := nl.AddInstance("u1", "INV_X1")
	must(err)
	u2, err := nl.AddInstance("u2", "NAND2_X1")
	must(err)
	u3, err := nl.AddInstance("u3", "DFF_X1")
	must(err)

	must(nl.Connect(u1, "A", nIn0))
	must(nl.Connect(u1, "ZN", n1))
	must(nl.Connect(u2, "A1", n1))
	must(nl.Connect(u2, "A2", nIn1))
	must(nl.Connect(u2, "ZN", n2))
	must(nl.Connect(u3, "D", n2))
	must(nl.Connect(u3, "CK", nClk))
	must(nl.Connect(u3, "Q", q))
	return nl
}

func TestBuildAndValidate(t *testing.T) {
	nl := buildToy(t)
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := nl.Stats()
	if s.Insts != 3 || s.Comb != 2 || s.Seq != 1 || s.Nets != 6 || s.Ports != 4 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestDriverSinkRoles(t *testing.T) {
	nl := buildToy(t)
	n1 := nl.Net("n1")
	if !n1.HasDriver() || n1.Driver.Inst.Name != "u1" || n1.Driver.Pin != "ZN" {
		t.Errorf("n1 driver = %v", n1.Driver)
	}
	if len(n1.Sinks) != 1 || n1.Sinks[0].Inst.Name != "u2" {
		t.Errorf("n1 sinks = %v", n1.Sinks)
	}
	if n1.NumTerms() != 2 {
		t.Errorf("NumTerms = %d", n1.NumTerms())
	}
	q := nl.Net("q")
	if len(q.Sinks) != 1 || !q.Sinks[0].IsPort() {
		t.Errorf("q sinks = %v", q.Sinks)
	}
}

func TestConnectErrors(t *testing.T) {
	nl := buildToy(t)
	u1 := nl.Instance("u1")
	n2 := nl.Net("n2")
	if err := nl.Connect(u1, "NOPE", n2); err == nil {
		t.Error("missing pin accepted")
	}
	if err := nl.Connect(u1, "A", n2); err == nil {
		t.Error("double connection accepted")
	}
	// second driver on n2
	u4, _ := nl.AddInstance("u4", "INV_X1")
	if err := nl.Connect(u4, "ZN", n2); err == nil {
		t.Error("second driver accepted")
	}
	if _, err := nl.AddInstance("u1", "INV_X1"); err == nil {
		t.Error("duplicate instance accepted")
	}
	if _, err := nl.AddInstance("u9", "UNOBTAINIUM"); err == nil {
		t.Error("unknown master accepted")
	}
	if _, err := nl.AddNet("n1"); err == nil {
		t.Error("duplicate net accepted")
	}
	if _, err := nl.AddPort("in0", In); err == nil {
		t.Error("duplicate port accepted")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	lib := opencell45.MustLoad()
	nl := New("bad", lib)
	_, _ = nl.AddNet("floating")
	if err := nl.Validate(); err == nil {
		t.Error("driverless net accepted")
	}

	nl2 := New("bad2", lib)
	u, _ := nl2.AddInstance("u", "NAND2_X1")
	n, _ := nl2.AddNet("n")
	_ = nl2.Connect(u, "ZN", n)
	// A1, A2 left dangling
	if err := nl2.Validate(); err == nil {
		t.Error("dangling input accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	nl := buildToy(t)
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := map[string]int{}
	for i, in := range order {
		pos[in.Name] = i
	}
	if len(order) != 3 {
		t.Fatalf("order len = %d", len(order))
	}
	if pos["u1"] > pos["u2"] {
		t.Error("u1 must precede u2")
	}
}

func TestTopoOrderCycle(t *testing.T) {
	lib := opencell45.MustLoad()
	nl := New("cyc", lib)
	a, _ := nl.AddInstance("a", "INV_X1")
	b, _ := nl.AddInstance("b", "INV_X1")
	n1, _ := nl.AddNet("n1")
	n2, _ := nl.AddNet("n2")
	_ = nl.Connect(a, "ZN", n1)
	_ = nl.Connect(b, "A", n1)
	_ = nl.Connect(b, "ZN", n2)
	_ = nl.Connect(a, "A", n2)
	if _, err := nl.TopoOrder(); err == nil {
		t.Error("combinational cycle accepted")
	}
}

func TestTopoOrderSeqBreaksCycle(t *testing.T) {
	// DFF in the loop: INV -> DFF -> INV -> (back). Legal.
	lib := opencell45.MustLoad()
	nl := New("seqcyc", lib)
	inv, _ := nl.AddInstance("inv", "INV_X1")
	dff, _ := nl.AddInstance("dff", "DFF_X1")
	clk, _ := nl.AddNet("clk")
	clk.IsClock = true
	p, _ := nl.AddPort("clk", In)
	_ = nl.ConnectPort(p, clk)
	n1, _ := nl.AddNet("n1")
	n2, _ := nl.AddNet("n2")
	_ = nl.Connect(inv, "ZN", n1)
	_ = nl.Connect(dff, "D", n1)
	_ = nl.Connect(dff, "CK", clk)
	_ = nl.Connect(dff, "Q", n2)
	_ = nl.Connect(inv, "A", n2)
	if _, err := nl.TopoOrder(); err != nil {
		t.Errorf("sequential loop should be legal: %v", err)
	}
}

func TestMarkCritical(t *testing.T) {
	nl := buildToy(t)
	n, err := nl.MarkCritical([]string{"u3", "u1"})
	if err != nil || n != 2 {
		t.Fatalf("MarkCritical = %d, %v", n, err)
	}
	if len(nl.CriticalInsts()) != 2 {
		t.Errorf("CriticalInsts = %d", len(nl.CriticalInsts()))
	}
	n, err = nl.MarkCritical([]string{"u2", "ghost"})
	if err == nil {
		t.Error("unknown asset accepted")
	}
	if n != 1 {
		t.Errorf("found = %d, want 1", n)
	}
}

func TestRemoveFillers(t *testing.T) {
	nl := buildToy(t)
	for i := 0; i < 5; i++ {
		if _, err := nl.AddInstance(fmt.Sprintf("fill%d", i), "FILLCELL_X2"); err != nil {
			t.Fatal(err)
		}
	}
	if got := nl.Stats().Filler; got != 5 {
		t.Fatalf("fillers = %d", got)
	}
	removed := nl.RemoveFillers()
	if removed != 5 {
		t.Errorf("removed = %d", removed)
	}
	if nl.Instance("fill0") != nil {
		t.Error("filler still findable by name")
	}
	// IDs re-packed
	for i, in := range nl.Insts {
		if in.ID != i {
			t.Errorf("inst %s ID = %d, want %d", in.Name, in.ID, i)
		}
	}
	if err := nl.Validate(); err != nil {
		t.Errorf("Validate after removal: %v", err)
	}
}

func TestTerminalString(t *testing.T) {
	nl := buildToy(t)
	n1 := nl.Net("n1")
	if s := n1.Driver.String(); s != "u1/ZN" {
		t.Errorf("driver string = %q", s)
	}
	q := nl.Net("q")
	if s := q.Sinks[0].String(); s != "port:out0" {
		t.Errorf("port terminal string = %q", s)
	}
}

func TestFunctionalInsts(t *testing.T) {
	nl := buildToy(t)
	_, _ = nl.AddInstance("f1", "FILLCELL_X4")
	fn := nl.FunctionalInsts()
	if len(fn) != 3 {
		t.Errorf("functional = %d, want 3", len(fn))
	}
	for _, in := range fn {
		if in.Master.Class == tech.Filler {
			t.Error("filler in functional list")
		}
	}
}
