package nsga2

import "gdsiiguard/internal/obs"

// Optimizer telemetry (exposed by cmd/guardd at /metrics).
var (
	gensTotal = obs.Default().Counter(
		"gdsiiguard_nsga2_generations_total",
		"NSGA-II generations executed.").With()
	nsga2Evals = obs.Default().Counter(
		"gdsiiguard_nsga2_evaluations_total",
		"NSGA-II chromosome evaluations by result (fresh, cache_hit, failed, retried).",
		"result")
	frontGauge = obs.Default().Gauge(
		"gdsiiguard_nsga2_front_size",
		"Rank-0 front size after the most recent generation.").With()
)
