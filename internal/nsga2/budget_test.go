package nsga2

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestEvalBudgetBoundsConcurrency(t *testing.T) {
	b := NewEvalBudget(2)
	ctx := context.Background()
	if b.Size() != 2 {
		t.Fatalf("Size = %d, want 2", b.Size())
	}
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := b.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}

	// A third acquire must block until a slot is released.
	acquired := make(chan struct{})
	go func() {
		if err := b.Acquire(ctx); err == nil {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("Acquire exceeded the budget")
	case <-time.After(50 * time.Millisecond):
	}
	b.Release()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not proceed after Release")
	}

	// A blocked waiter honors context cancellation.
	ctx2, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.Acquire(ctx2) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Acquire = %v, want context.Canceled", err)
	}
}

func TestEvalBudgetMinimumSize(t *testing.T) {
	if got := NewEvalBudget(0).Size(); got != 1 {
		t.Errorf("NewEvalBudget(0).Size() = %d, want 1", got)
	}
	if got := NewEvalBudget(-3).Size(); got != 1 {
		t.Errorf("NewEvalBudget(-3).Size() = %d, want 1", got)
	}
}
