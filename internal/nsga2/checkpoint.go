package nsga2

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Checkpoint is a self-contained serialization of a mid-run optimizer
// state, emitted through Options.Checkpoint after every completed
// generation and consumed by Options.Resume. A resumed run provably
// continues the interrupted run's trajectory: the population (in selection
// order), the memoization cache, the full RunLog so far, the convergence
// tracker and the RNG stream position are all captured, so generation G+1
// of a resumed run draws the same random values, evaluates the same
// chromosomes and selects the same survivors as generation G+1 of an
// uninterrupted run.
//
// Infinity handling: failed individuals carry Violation = +Inf in memory,
// which JSON cannot represent; checkpoints store 0 for them and restore
// re-inflates +Inf from the Failed flag.
type Checkpoint struct {
	// Seed and PopSize fingerprint the options the checkpoint belongs to;
	// Resume rejects a mismatch instead of silently diverging.
	Seed    int64 `json:"seed"`
	PopSize int   `json:"pop_size"`
	// Generation is the last completed generation (0: the evaluated
	// initial population, before any offspring).
	Generation int `json:"generation"`
	// RNGDraws is the number of values drawn from the seeded source so
	// far; resume fast-forwards a fresh source by exactly this many draws
	// to land on the same stream position.
	RNGDraws int64 `json:"rng_draws"`
	// Population is the current population in selection order (order is
	// part of the trajectory: tournament selection indexes into it).
	Population []Individual `json:"population"`
	// Evaluations, CacheHits and Failures mirror the RunLog so far.
	Evaluations []Individual  `json:"evaluations,omitempty"`
	CacheHits   int           `json:"cache_hits,omitempty"`
	Failures    []EvalFailure `json:"failures,omitempty"`
	// Cache is every memoized evaluation, including degraded (Failed)
	// entries — without them a resumed run would re-evaluate chromosomes
	// the original run already paid for, drifting CacheHits.
	Cache []Individual `json:"cache,omitempty"`
	// Succeeded/Failed are the failure-rate counters.
	Succeeded int `json:"succeeded,omitempty"`
	Failed    int `json:"failed,omitempty"`
	// FrontKeys and Stale are the convergence tracker: the rank-0 front's
	// chromosome keys (sorted) and how many consecutive generations the
	// front has been unchanged.
	FrontKeys []string `json:"front_keys,omitempty"`
	Stale     int      `json:"stale,omitempty"`
}

// Marshal serializes the checkpoint as JSON (the opaque-blob form the
// service persists in its WAL). Failed individuals are sanitized here as
// well as in makeCheckpoint, so a checkpoint carrying the in-memory +Inf
// violation invariant still encodes.
func (c *Checkpoint) Marshal() ([]byte, error) {
	cc := *c
	cc.Population = sanitizeAll(c.Population)
	cc.Evaluations = sanitizeAll(c.Evaluations)
	cc.Cache = sanitizeAll(c.Cache)
	return json.Marshal(&cc)
}

func sanitizeAll(ins []Individual) []Individual {
	if ins == nil {
		return nil
	}
	out := make([]Individual, len(ins))
	for i := range ins {
		out[i] = sanitize(ins[i])
	}
	return out
}

// UnmarshalCheckpoint decodes a checkpoint produced by Marshal.
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("nsga2: undecodable checkpoint: %w", err)
	}
	return &c, nil
}

// sanitize strips the non-JSON +Inf violation from a checkpointed copy.
func sanitize(in Individual) Individual {
	out := in
	out.Params = in.Params.Clone()
	if out.Failed {
		out.Violation = 0
	}
	return out
}

// inflate restores the in-memory invariant Failed ⇒ Violation = +Inf.
func inflate(in Individual) Individual {
	out := in
	out.Params = in.Params.Clone()
	if out.Failed {
		out.Violation = math.Inf(1)
	}
	return out
}

// makeCheckpoint snapshots the optimizer state after generation gen.
func makeCheckpoint(opt Options, gen int, draws int64, pop []*Individual, ev *evaluator, conv *frontTracker) *Checkpoint {
	cp := &Checkpoint{
		Seed:        opt.Seed,
		PopSize:     opt.PopSize,
		Generation:  gen,
		RNGDraws:    draws,
		Population:  make([]Individual, len(pop)),
		Evaluations: make([]Individual, len(ev.log.Evaluations)),
		CacheHits:   ev.log.CacheHits,
		Succeeded:   ev.succeeded,
		Failed:      ev.failed,
		Stale:       conv.stale,
	}
	for i, in := range pop {
		cp.Population[i] = sanitize(*in)
	}
	for i, in := range ev.log.Evaluations {
		cp.Evaluations[i] = sanitize(in)
	}
	if len(ev.log.Failures) > 0 {
		cp.Failures = make([]EvalFailure, len(ev.log.Failures))
		for i, f := range ev.log.Failures {
			cp.Failures[i] = f
			cp.Failures[i].Params = f.Params.Clone()
		}
	}
	keys := make([]string, 0, len(ev.cache))
	for key := range ev.cache {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	cp.Cache = make([]Individual, 0, len(keys))
	for _, key := range keys {
		cp.Cache = append(cp.Cache, sanitize(*ev.cache[key]))
	}
	for key := range conv.keys {
		cp.FrontKeys = append(cp.FrontKeys, key)
	}
	sort.Strings(cp.FrontKeys)
	return cp
}

// validate rejects a checkpoint that does not belong to these options.
func (c *Checkpoint) validate(opt Options, k int) error {
	if c.Seed != opt.Seed {
		return fmt.Errorf("nsga2: resume checkpoint seed %d does not match options seed %d", c.Seed, opt.Seed)
	}
	if c.PopSize != opt.PopSize {
		return fmt.Errorf("nsga2: resume checkpoint pop size %d does not match options pop size %d", c.PopSize, opt.PopSize)
	}
	if c.Generation < 0 || c.Generation > opt.Generations {
		return fmt.Errorf("nsga2: resume checkpoint generation %d out of range [0, %d]", c.Generation, opt.Generations)
	}
	if c.RNGDraws < 0 {
		return fmt.Errorf("nsga2: resume checkpoint has negative RNG position")
	}
	if len(c.Population) == 0 {
		return fmt.Errorf("nsga2: resume checkpoint has an empty population")
	}
	for _, in := range c.Population {
		if err := in.Params.Validate(k); err != nil {
			return fmt.Errorf("nsga2: resume checkpoint population: %w", err)
		}
	}
	return nil
}

// restore loads the checkpoint into a fresh optimizer run: population,
// cache, RunLog, failure counters and convergence tracker. The RNG
// fast-forward happens at the call site (it owns the source).
func (c *Checkpoint) restore(ev *evaluator, conv *frontTracker) []*Individual {
	pop := make([]*Individual, len(c.Population))
	for i := range c.Population {
		in := inflate(c.Population[i])
		pop[i] = &in
	}
	ev.log.Evaluations = make([]Individual, len(c.Evaluations))
	for i := range c.Evaluations {
		ev.log.Evaluations[i] = inflate(c.Evaluations[i])
	}
	ev.log.CacheHits = c.CacheHits
	if len(c.Failures) > 0 {
		ev.log.Failures = append([]EvalFailure(nil), c.Failures...)
	}
	for i := range c.Cache {
		in := inflate(c.Cache[i])
		ev.cache[in.Params.Key()] = &in
	}
	ev.succeeded = c.Succeeded
	ev.failed = c.Failed
	conv.stale = c.Stale
	if len(c.FrontKeys) > 0 {
		conv.keys = make(map[string]bool, len(c.FrontKeys))
		for _, key := range c.FrontKeys {
			conv.keys[key] = true
		}
	}
	return pop
}

// countingSource wraps a rand.Source and counts draws, making the stream
// position serializable: a resumed run recreates the source from the seed
// and discards exactly RNGDraws values to land where the interrupted run
// stopped. It deliberately does not implement rand.Source64 — rand.Rand
// then routes every method through Int63, so one counter captures the
// position exactly. (math/rand's own source also feeds Float64/Intn
// through Int63, so the generated streams are unchanged.)
type countingSource struct {
	src   rand.Source
	draws int64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// skip fast-forwards the source by n draws.
func (s *countingSource) skip(n int64) {
	for i := int64(0); i < n; i++ {
		s.Int63()
	}
}
