package nsga2

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/sdc"
)

func buildBase(t testing.TB, chains, stages int, periodNS float64) *core.Baseline {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("nsga", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	for c := 0; c < chains; c++ {
		in, _ := nl.AddPort(fmt.Sprintf("i%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("pi%d", c))
		_ = nl.ConnectPort(in, prev)
		for s := 0; s < stages; s++ {
			g, err := nl.AddInstance(fmt.Sprintf("c%dg%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			nx, _ := nl.AddNet(fmt.Sprintf("c%dn%d", c, s))
			_ = nl.Connect(g, "A", prev)
			_ = nl.Connect(g, "ZN", nx)
			prev = nx
		}
		ff, _ := nl.AddInstance(fmt.Sprintf("key%d", c), "DFF_X1")
		ff.SecurityCritical = true
		q, _ := nl.AddNet(fmt.Sprintf("q%d", c))
		_ = nl.Connect(ff, "D", prev)
		_ = nl.Connect(ff, "CK", clkNet)
		_ = nl.Connect(ff, "Q", q)
		out, _ := nl.AddPort(fmt.Sprintf("o%d", c), netlist.Out)
		_ = nl.ConnectPort(out, q)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: 0.55, RefinePasses: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cons, _ := sdc.ParseString(fmt.Sprintf("create_clock -name clk -period %g [get_ports clk]\n", periodNS))
	base, err := core.EvalBaseline(l, core.FlowConfig{Constraints: cons, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func smallOpts(seed int64) Options {
	return Options{PopSize: 8, Generations: 4, Patience: 0, Seed: seed, Parallelism: 4}
}

func TestOptimizeFindsImprovingFront(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	log, err := Optimize(base, smallOpts(1))
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(log.Evaluations) == 0 {
		t.Fatal("no evaluations")
	}
	if len(log.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	best := log.Front[0]
	if best.Metrics.Security >= 1.0 {
		t.Errorf("no security improvement on front: %g", best.Metrics.Security)
	}
	// Front sorted by security; TNS non-increasingly good along it.
	for i := 1; i < len(log.Front); i++ {
		if log.Front[i].Metrics.Security < log.Front[i-1].Metrics.Security {
			t.Error("front not sorted by security")
		}
	}
}

func TestFrontIsNonDominated(t *testing.T) {
	base := buildBase(t, 4, 15, 3)
	log, err := Optimize(base, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range log.Front {
		for j := range log.Front {
			if i == j {
				continue
			}
			a, b := log.Front[i], log.Front[j]
			if dominates(&a, &b) && (a.Metrics.Security != b.Metrics.Security || a.Metrics.TNS != b.Metrics.TNS) {
				t.Errorf("front point %d dominates front point %d", i, j)
			}
		}
	}
	for _, in := range log.Front {
		if !in.Feasible {
			t.Error("infeasible point on front")
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	base := buildBase(t, 4, 12, 3)
	l1, err := Optimize(base, smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Optimize(base, smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Front) != len(l2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(l1.Front), len(l2.Front))
	}
	for i := range l1.Front {
		a, b := l1.Front[i].Metrics, l2.Front[i].Metrics
		if a.Security != b.Security || a.TNS != b.TNS {
			t.Errorf("front[%d] differs: %+v vs %+v", i, a, b)
		}
	}
	if len(l1.Evaluations) != len(l2.Evaluations) {
		t.Errorf("evaluation traces differ: %d vs %d", len(l1.Evaluations), len(l2.Evaluations))
	}
}

func TestCacheAvoidsReevaluation(t *testing.T) {
	base := buildBase(t, 3, 10, 3)
	log, err := Optimize(base, Options{PopSize: 8, Generations: 6, Patience: 0, Seed: 3, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if log.CacheHits == 0 {
		t.Error("expected cache hits across generations")
	}
	// Evaluations are unique by definition of the cache.
	seen := map[string]bool{}
	for _, in := range log.Evaluations {
		key := in.Params.Key()
		if seen[key] {
			t.Fatalf("duplicate evaluation of %s", key)
		}
		seen[key] = true
	}
}

func TestConstraintDomination(t *testing.T) {
	feas := &Individual{Feasible: true, Metrics: core.Metrics{Security: 0.9, TNS: -10}}
	infeas := &Individual{Feasible: false, Violation: 0.5, Metrics: core.Metrics{Security: 0.1, TNS: 0}}
	if !dominates(feas, infeas) {
		t.Error("feasible should dominate infeasible regardless of objectives")
	}
	if dominates(infeas, feas) {
		t.Error("infeasible dominating feasible")
	}
	worse := &Individual{Feasible: false, Violation: 0.9}
	if !dominates(infeas, worse) {
		t.Error("lower violation should dominate")
	}
	a := &Individual{Feasible: true, Metrics: core.Metrics{Security: 0.5, TNS: -5}}
	b := &Individual{Feasible: true, Metrics: core.Metrics{Security: 0.6, TNS: -5}}
	if !dominates(a, b) || dominates(b, a) {
		t.Error("pareto dominance broken")
	}
	c := &Individual{Feasible: true, Metrics: core.Metrics{Security: 0.6, TNS: -1}}
	if dominates(a, c) || dominates(c, a) {
		t.Error("incomparable points should not dominate")
	}
}

func TestCrowdingDistance(t *testing.T) {
	mk := func(sec, tns float64) *Individual {
		return &Individual{Feasible: true, Metrics: core.Metrics{Security: sec, TNS: tns}}
	}
	front := []*Individual{mk(0.1, -10), mk(0.5, -5), mk(0.9, -1), mk(0.2, -9)}
	crowd(front)
	infs := 0
	for _, in := range front {
		if math.IsInf(in.crowding, 1) {
			infs++
		}
	}
	if infs < 2 {
		t.Errorf("boundary points not infinite: %d", infs)
	}
	// Small front: everything infinite.
	two := []*Individual{mk(0.1, -1), mk(0.2, -2)}
	crowd(two)
	for _, in := range two {
		if !math.IsInf(in.crowding, 1) {
			t.Error("2-point front should be all infinite")
		}
	}
}

func TestSortFronts(t *testing.T) {
	mk := func(sec, tns float64) *Individual {
		return &Individual{Feasible: true, Metrics: core.Metrics{Security: sec, TNS: tns}}
	}
	pop := []*Individual{
		mk(0.1, -1),  // front 0 (dominates everything)
		mk(0.2, -2),  // front 1
		mk(0.3, -3),  // front 2
		mk(0.15, -3), // front 1 (incomparable with 0.2/-2? 0.15<0.2 but -3<-2 → objectives (0.15,3) vs (0.2,2): incomparable → same front)
	}
	fronts := sortFronts(pop)
	if pop[0].rank != 0 {
		t.Errorf("best point rank = %d", pop[0].rank)
	}
	if len(fronts) < 2 {
		t.Errorf("fronts = %d", len(fronts))
	}
	// ranks consistent with fronts slices
	for r, front := range fronts {
		for _, in := range front {
			if in.rank != r {
				t.Errorf("rank %d in front %d", in.rank, r)
			}
		}
	}
}

func TestGenerationsAndPatience(t *testing.T) {
	base := buildBase(t, 3, 8, 3)
	log, err := Optimize(base, Options{PopSize: 8, Generations: 10, Patience: 2, Seed: 5, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if log.Generations > 10 || log.Generations < 1 {
		t.Errorf("generations = %d", log.Generations)
	}
}

func TestOptimizeCtxObservesCancellation(t *testing.T) {
	base := buildBase(t, 3, 8, 3)

	// Pre-cancelled: fails before any evaluation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeCtx(ctx, base, smallOpts(7)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled OptimizeCtx = %v, want context.Canceled", err)
	}

	// Cancelled mid-run: workers stop within roughly one evaluation. The
	// run is sized (and early-stopping disabled via negative patience) so
	// it would take tens of seconds if ctx were ignored.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := OptimizeCtx(ctx2, base, Options{PopSize: 16, Generations: 500, Patience: -1, Seed: 9, Parallelism: 1})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-run cancel = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("optimizer did not stop after cancellation")
	}
}

func TestMutationKeepsValidity(t *testing.T) {
	base := buildBase(t, 3, 8, 3)
	log, err := Optimize(base, smallOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	k := base.Layout.Lib().NumLayers()
	for _, in := range log.Evaluations {
		if err := in.Params.Validate(k); err != nil {
			t.Fatalf("invalid chromosome evaluated: %v", err)
		}
	}
}
