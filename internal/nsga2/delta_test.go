package nsga2

import (
	"reflect"
	"testing"
)

// TestDeltaMatchesPlainRun is the optimizer-level golden gate for delta
// evaluation: a full NSGA-II run with lineage-aware delta arenas (the
// default) must reproduce the from-scratch run's entire trajectory —
// front, evaluation trace, final population, cache hits — bit for bit,
// while actually reusing work across chromosomes.
func TestDeltaMatchesPlainRun(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	opt := Options{PopSize: 10, Generations: 5, Patience: 0, Seed: 11, Parallelism: 4}

	plainOpt := opt
	plainOpt.DisableDelta = true
	plain, err := Optimize(base, plainOpt)
	if err != nil {
		t.Fatalf("plain Optimize: %v", err)
	}
	delta, err := Optimize(base, opt)
	if err != nil {
		t.Fatalf("delta Optimize: %v", err)
	}

	if got, want := fingerprint(delta), fingerprint(plain); !reflect.DeepEqual(got, want) {
		t.Errorf("delta run diverged from from-scratch run\n got: %+v\nwant: %+v", got, want)
	}

	st := delta.Delta
	t.Logf("delta stats: %+v", st)
	if st.OpRuns == 0 {
		t.Error("delta run never ran an operator (arenas not engaged?)")
	}
	if st.OpMemoHits+st.OpArenaHits+st.OpIterSteps == 0 {
		t.Error("delta run exercised no operator reuse")
	}
	if z := plain.Delta; z.OpRuns+z.OpMemoHits+z.OpArenaHits+z.RoutesWarm != 0 {
		t.Errorf("DisableDelta run reported delta activity: %+v", z)
	}
}
