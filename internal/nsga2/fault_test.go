package nsga2

import (
	"strings"
	"testing"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/fault"
)

// armFaults installs a fault plan for the test and guarantees it is
// removed afterwards. Fault plans are process-global, so these tests must
// not use t.Parallel.
func armFaults(t *testing.T, rules map[fault.Point]fault.Rule) {
	t.Helper()
	fault.Arm(rules)
	t.Cleanup(fault.Disarm)
}

// TestDegradesUnderInjectedRouteFailures is the end-to-end degradation
// scenario: with permanent errors injected into ~10% of routing calls, the
// exploration must complete every generation, record the failures in
// RunLog.Failures, and still produce a non-empty Pareto front.
func TestDegradesUnderInjectedRouteFailures(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	armFaults(t, map[fault.Point]fault.Rule{fault.Route: {Every: 10}})

	log, err := Optimize(base, smallOpts(1))
	if err != nil {
		t.Fatalf("Optimize under 10%% injected failures: %v", err)
	}
	if log.Generations != 4 {
		t.Errorf("Generations = %d, want all 4", log.Generations)
	}
	if len(log.Failures) == 0 {
		t.Fatal("no failures recorded despite injection")
	}
	if len(log.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for _, f := range log.Failures {
		if f.Stage != core.StageRoute {
			t.Errorf("failure stage = %q, want %q", f.Stage, core.StageRoute)
		}
		if f.Class != core.ClassPermanent {
			t.Errorf("failure class = %q, want %q", f.Class, core.ClassPermanent)
		}
		if f.Key == "" || f.Err == "" {
			t.Errorf("failure record incomplete: %+v", f)
		}
	}
	// Degraded evaluations must not leak into the evaluation trace or the
	// front.
	for _, in := range log.Evaluations {
		if in.Failed {
			t.Error("failed individual recorded in Evaluations")
		}
	}
}

// TestTransientFailuresAreRetried: a transient fault that fires exactly
// once must be absorbed by the retry, leaving no recorded failures.
func TestTransientFailuresAreRetried(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	armFaults(t, map[fault.Point]fault.Rule{
		fault.Route: {Every: 1, Limit: 1, Transient: true},
	})

	opts := smallOpts(1)
	opts.Generations = 2
	log, err := Optimize(base, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(log.Failures) != 0 {
		t.Errorf("transient one-shot fault was not absorbed by retry: %+v", log.Failures)
	}
	if got := fault.Fired(fault.Route); got != 1 {
		t.Errorf("fault fired %d times, want 1", got)
	}
	if len(log.Front) == 0 {
		t.Error("empty Pareto front")
	}
}

// TestPermanentFailuresAreNotRetried: a permanent failure must consume a
// single attempt per chromosome.
func TestPermanentFailuresAreNotRetried(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	armFaults(t, map[fault.Point]fault.Rule{fault.Route: {Every: 7}})

	log, err := Optimize(base, smallOpts(3))
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	for _, f := range log.Failures {
		if f.Attempts != 1 {
			t.Errorf("permanent failure used %d attempts, want 1", f.Attempts)
		}
	}
}

// TestFailureRateCapAborts: when every evaluation fails, the run must stop
// with a failure-rate error instead of grinding through all generations.
func TestFailureRateCapAborts(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	armFaults(t, map[fault.Point]fault.Rule{fault.Route: {Every: 1}})

	_, err := Optimize(base, smallOpts(1))
	if err == nil {
		t.Fatal("Optimize succeeded with 100% evaluation failures")
	}
	if !strings.Contains(err.Error(), "rate") {
		t.Errorf("abort error does not mention the failure rate: %v", err)
	}
}

// TestPanicInOperatorDegrades: a panic inside the LDA operator's ECO
// placement must be contained as a classified failure, not crash the
// optimizer process.
func TestPanicInOperatorDegrades(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	armFaults(t, map[fault.Point]fault.Rule{
		fault.PlaceECO: {Every: 4, Panic: true},
	})

	log, err := Optimize(base, smallOpts(2))
	if err != nil {
		t.Fatalf("Optimize under injected operator panics: %v", err)
	}
	sawPanic := false
	for _, f := range log.Failures {
		if f.Class == core.ClassPanic {
			sawPanic = true
			if f.Stage != core.StageOperator {
				t.Errorf("panic failure stage = %q, want %q", f.Stage, core.StageOperator)
			}
		}
	}
	if !sawPanic && len(log.Failures) > 0 {
		t.Errorf("failures recorded but none classified as panic: %+v", log.Failures)
	}
	if len(log.Front) == 0 {
		t.Error("empty Pareto front")
	}
}
