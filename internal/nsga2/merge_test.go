package nsga2

import (
	"encoding/json"
	"reflect"
	"testing"

	"gdsiiguard/internal/core"
)

func ind(op core.Operator, scale float64, sec, tns float64) Individual {
	return Individual{
		Params:   core.Params{Op: op, LDAGridN: 8, LDAIters: 1, ScaleM: []float64{scale, 1.0}},
		Metrics:  core.Metrics{Security: sec, TNS: tns},
		Feasible: true,
	}
}

func TestMergeFrontsSelfIsNoOp(t *testing.T) {
	front := []Individual{
		ind(core.CS, 1.0, 0.6, -40),
		ind(core.CS, 1.2, 0.8, -20),
		ind(core.CS, 1.5, 0.9, -5),
	}
	merged := MergeFronts(front, front)
	if len(merged) != len(front) {
		t.Fatalf("merging a front with itself changed its size: %d -> %d", len(front), len(merged))
	}
	for i := range front {
		if merged[i].Params.Key() != front[i].Params.Key() {
			t.Errorf("point %d: key %q != %q", i, merged[i].Params.Key(), front[i].Params.Key())
		}
		if merged[i].Metrics != front[i].Metrics {
			t.Errorf("point %d: metrics changed: %+v != %+v", i, merged[i].Metrics, front[i].Metrics)
		}
	}
}

func TestMergeFrontsDropsDominatedAndDedupes(t *testing.T) {
	a := []Individual{
		ind(core.CS, 1.0, 0.6, -40),
		ind(core.CS, 1.2, 0.8, -20),
	}
	// b shares the 1.2 chromosome (must dedupe, not duplicate) and adds a
	// point dominating a's 0.8/-20 one plus a dominated straggler.
	b := []Individual{
		ind(core.CS, 1.2, 0.8, -20),
		ind(core.LDA, 1.0, 0.7, -10),
		ind(core.LDA, 1.2, 0.9, -50),
	}
	merged := MergeFronts(a, b)
	keys := map[string]bool{}
	for _, in := range merged {
		if keys[in.Params.Key()] {
			t.Fatalf("duplicate key %q in merged front", in.Params.Key())
		}
		keys[in.Params.Key()] = true
	}
	// 0.8/-20 is dominated by 0.7/-10 (lower security, lower -TNS).
	if keys[a[1].Params.Key()] {
		t.Errorf("dominated point %q survived the merge", a[1].Params.Key())
	}
	if !keys[a[0].Params.Key()] || !keys[b[1].Params.Key()] {
		t.Errorf("non-dominated points missing from merged front: %v", keys)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Metrics.Security < merged[i-1].Metrics.Security {
			t.Errorf("merged front not sorted by security at %d", i)
		}
	}
}

func TestElitesSpread(t *testing.T) {
	front := []Individual{
		ind(core.CS, 1.0, 0.5, -50),
		ind(core.CS, 1.2, 0.6, -30),
		ind(core.CS, 1.5, 0.7, -20),
		ind(core.LDA, 1.0, 0.8, -10),
		ind(core.LDA, 1.2, 0.9, -5),
	}
	got := Elites(front, 3)
	if len(got) != 3 {
		t.Fatalf("Elites(5, 3) returned %d params", len(got))
	}
	// Endpoints lead (they must survive seed-pop truncation at the
	// receiver); interior spread points follow.
	if got[0].Key() != front[0].Params.Key() || got[1].Key() != front[4].Params.Key() {
		t.Errorf("elites did not lead with the front endpoints: %v", got)
	}
	if got[2].Key() != front[2].Params.Key() {
		t.Errorf("interior spread pick = %q, want %q", got[2].Key(), front[2].Params.Key())
	}
	if all := Elites(front, 10); len(all) != len(front) {
		t.Errorf("Elites with k > len(front) returned %d params", len(all))
	}
	if one := Elites(front, 1); len(one) != 1 || one[0].Key() != front[0].Params.Key() {
		t.Errorf("Elites(_, 1) = %v", one)
	}
	if Elites(nil, 3) != nil || Elites(front, 0) != nil {
		t.Errorf("Elites on empty inputs should be nil")
	}
}

// TestIndividualSerializationRoundTrip guards the wire format chromosomes
// cross node boundaries in: everything the coordinator's merge and the next
// epoch's seeding consume must survive JSON.
func TestIndividualSerializationRoundTrip(t *testing.T) {
	in := Individual{
		Params:     core.Params{Op: core.LDA, LDAGridN: 16, LDAIters: 2, ScaleM: []float64{1.2, 1.5, 1.0}},
		Metrics:    core.Metrics{Security: 0.73, ERSites: 42, ERTracks: 11.5, TNS: -123.25, WNS: -7.5, PowerMW: 3.25, DRC: 2},
		Feasible:   true,
		Violation:  0,
		Generation: 3,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Individual
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Params.Key() != in.Params.Key() {
		t.Errorf("param key changed: %q -> %q", in.Params.Key(), out.Params.Key())
	}
	if out.Objectives() != in.Objectives() {
		t.Errorf("objectives changed: %v -> %v", in.Objectives(), out.Objectives())
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the individual:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSeedPopInjection checks the island hook: injected chromosomes form
// the head of the initial population and are deduplicated and capped.
func TestSeedPopInjection(t *testing.T) {
	base := buildBase(t, 3, 10, 5)
	k := base.Layout.Lib().NumLayers()
	seed := core.DefaultParams(k)
	seed.ScaleM[0] = 1.5
	dup := seed.Clone()
	log, err := Optimize(base, Options{
		PopSize:     4,
		Generations: 1,
		Parallelism: 2,
		Seed:        11,
		SeedPop:     []core.Params{seed, dup},
	})
	if err != nil {
		t.Fatalf("Optimize with SeedPop: %v", err)
	}
	found := false
	for _, in := range log.Evaluations {
		if in.Params.Key() == seed.Key() {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("seed chromosome %q was never evaluated", seed.Key())
	}
	if len(log.Final) == 0 {
		t.Errorf("RunLog.Final is empty")
	}

	bad := seed.Clone()
	bad.ScaleM[0] = 3.0 // inadmissible scale value
	if _, err := Optimize(base, Options{PopSize: 4, Generations: 1, SeedPop: []core.Params{bad}}); err == nil {
		t.Errorf("invalid seed chromosome was accepted")
	}
}
