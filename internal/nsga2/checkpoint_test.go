package nsga2

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gdsiiguard/internal/core"
)

// stripRuntime zeroes the one legitimately non-deterministic field (wall
// time of the producing evaluation) plus the rank/crowding scratch, which
// is internal working state recomputed at the top of every generation —
// a resume that lands after the final generation never recomputes it.
// parentOp is likewise a transient placement hint (it steers delta arenas,
// never results) and is deliberately absent from checkpoints.
func stripRuntime(ins []Individual) []Individual {
	out := append([]Individual(nil), ins...)
	for i := range out {
		out[i].Metrics.Runtime = 0
		out[i].rank = 0
		out[i].crowding = 0
		out[i].parentOp = ""
	}
	return out
}

// runlogFingerprint reduces a RunLog to its deterministic content.
type runlogFingerprint struct {
	Front, Evaluations, Final []Individual
	Generations, CacheHits    int
	Failures                  []EvalFailure
}

func fingerprint(log *RunLog) runlogFingerprint {
	return runlogFingerprint{
		Front:       stripRuntime(log.Front),
		Evaluations: stripRuntime(log.Evaluations),
		Final:       stripRuntime(log.Final),
		Generations: log.Generations,
		CacheHits:   log.CacheHits,
		Failures:    log.Failures,
	}
}

// TestResumeBitIdentical is the tentpole's golden test: interrupt the
// optimizer at every generation boundary (via its own checkpoints) and
// prove that resuming from each checkpoint reproduces the uninterrupted
// run's full trajectory — front, evaluation trace, final population,
// generation count and cache-hit accounting — bit for bit.
func TestResumeBitIdentical(t *testing.T) {
	base := buildBase(t, 5, 20, 5)
	opt := Options{PopSize: 8, Generations: 4, Patience: 0, Seed: 7, Parallelism: 4}

	var cps []*Checkpoint
	golden, err := Optimize(base, withCapture(opt, &cps))
	if err != nil {
		t.Fatalf("golden Optimize: %v", err)
	}
	if len(cps) != golden.Generations+1 {
		t.Fatalf("captured %d checkpoints, want %d (one per generation incl. gen 0)",
			len(cps), golden.Generations+1)
	}
	want := fingerprint(golden)

	for _, cp := range cps {
		cp := cp
		t.Run(fmt.Sprintf("resume-from-gen-%d", cp.Generation), func(t *testing.T) {
			// Round-trip through the serialized form the service persists.
			blob, err := cp.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			restored, err := UnmarshalCheckpoint(blob)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			ropt := opt
			ropt.Resume = restored
			resumed, err := Optimize(base, ropt)
			if err != nil {
				t.Fatalf("resumed Optimize: %v", err)
			}
			if got := fingerprint(resumed); !reflect.DeepEqual(got, want) {
				t.Errorf("resumed run from generation %d diverged from golden run\n got: %+v\nwant: %+v",
					cp.Generation, got, want)
			}
		})
	}
}

// withCapture clones opt with a Checkpoint hook that collects every
// emitted checkpoint (checkpoints are already deep copies).
func withCapture(opt Options, out *[]*Checkpoint) Options {
	opt.Checkpoint = func(cp *Checkpoint) error {
		*out = append(*out, cp)
		return nil
	}
	return opt
}

// A run that converges early (patience) must stop at the same generation
// when resumed from its final checkpoint instead of running further.
func TestResumeReproducesPatienceBreak(t *testing.T) {
	base := buildBase(t, 4, 12, 5)
	opt := Options{PopSize: 8, Generations: 12, Patience: 2, Seed: 3, Parallelism: 4}

	var cps []*Checkpoint
	golden, err := Optimize(base, withCapture(opt, &cps))
	if err != nil {
		t.Fatal(err)
	}
	if golden.Generations >= 12 {
		t.Skip("run did not converge early; patience-break resume not exercised")
	}
	last := cps[len(cps)-1]
	ropt := opt
	ropt.Resume = last
	resumed, err := Optimize(base, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generations != golden.Generations {
		t.Errorf("resumed generations = %d, want %d (the converged run must not continue)",
			resumed.Generations, golden.Generations)
	}
	if !reflect.DeepEqual(fingerprint(resumed), fingerprint(golden)) {
		t.Error("resume from a converged checkpoint diverged from the golden run")
	}
}

// Failed cache entries survive the JSON round trip with their +Inf
// violation re-inflated, so a resumed run neither re-evaluates them out of
// order nor treats them as feasible.
func TestCheckpointRoundTripsFailedEntries(t *testing.T) {
	cp := &Checkpoint{
		Seed:    1,
		PopSize: 8,
		Population: []Individual{
			{Params: core.DefaultParams(3), Feasible: true},
		},
		Cache: []Individual{
			{Params: core.DefaultParams(3), Feasible: true},
			{Params: core.Params{Op: core.LDA, LDAGridN: 4, LDAIters: 2, ScaleM: []float64{1.2, 1, 1}},
				Failed: true, Violation: math.Inf(1)},
		},
	}
	blob, err := cp.Marshal()
	if err != nil {
		t.Fatalf("Marshal with Inf violation: %v", err)
	}
	got, err := UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Marshal sanitized the +Inf away; restore must re-inflate it when the
	// checkpoint is loaded into a run.
	ev := &evaluator{cache: map[string]*Individual{}, log: &RunLog{}}
	got.restore(ev, &frontTracker{})
	failedKey := cp.Cache[1].Params.Key()
	entry := ev.cache[failedKey]
	if entry == nil || !entry.Failed || !math.IsInf(entry.Violation, 1) {
		t.Fatalf("restored failed cache entry = %+v, want Failed with +Inf violation", entry)
	}
}

func TestResumeRejectsMismatchedOptions(t *testing.T) {
	base := buildBase(t, 3, 8, 5)
	opt := Options{PopSize: 8, Generations: 2, Patience: 0, Seed: 5, Parallelism: 2}
	var cps []*Checkpoint
	if _, err := Optimize(base, withCapture(opt, &cps)); err != nil {
		t.Fatal(err)
	}
	cp := cps[len(cps)-1]

	for name, mutate := range map[string]func(*Options){
		"seed":     func(o *Options) { o.Seed = 6 },
		"pop size": func(o *Options) { o.PopSize = 12 },
	} {
		bad := opt
		mutate(&bad)
		bad.Resume = cp
		if _, err := Optimize(base, bad); err == nil {
			t.Errorf("resume with mismatched %s accepted", name)
		}
	}
}

func TestCheckpointErrorAbortsRun(t *testing.T) {
	base := buildBase(t, 3, 8, 5)
	boom := errors.New("disk gone")
	opt := Options{PopSize: 8, Generations: 3, Seed: 2, Parallelism: 2,
		Checkpoint: func(cp *Checkpoint) error {
			if cp.Generation >= 1 {
				return boom
			}
			return nil
		}}
	_, err := OptimizeCtx(context.Background(), base, opt)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint failure", err)
	}
}

// The counting source must not perturb the stream: a run under the old
// direct source and one under the counting wrapper draw identical values.
func TestCountingSourcePreservesStream(t *testing.T) {
	direct := rand.New(rand.NewSource(42))
	wrapped := &countingSource{src: rand.NewSource(42)}
	r := rand.New(wrapped)
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			if a, b := direct.Float64(), r.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 1:
			if a, b := direct.Intn(97), r.Intn(97); a != b {
				t.Fatalf("Intn diverged at draw %d: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := direct.Int63(), r.Int63(); a != b {
				t.Fatalf("Int63 diverged at draw %d: %v vs %v", i, a, b)
			}
		}
	}
	if wrapped.draws == 0 {
		t.Fatal("counting source recorded no draws")
	}
	// skip() must land a fresh source on the same position.
	replayed := &countingSource{src: rand.NewSource(42)}
	replayed.skip(wrapped.draws)
	if a, b := rand.New(wrapped).Int63(), rand.New(replayed).Int63(); a != b {
		t.Fatalf("skip() landed on a different position: %v vs %v", a, b)
	}
}
