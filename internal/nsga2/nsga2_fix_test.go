package nsga2

import (
	"context"
	"testing"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/fault"
)

// distinctParams returns a valid chromosome whose key differs per grid
// value (LDA keys include the grid; CS keys do not).
func distinctParams(grid int) core.Params {
	p := core.DefaultParams(3)
	p.Op = core.LDA
	p.LDAGridN = grid
	return p
}

// Regression: convergence used to compare rank-0 front *size* only, so an
// exploration whose front stayed saturated at a constant size while its
// membership kept improving was declared converged and stopped early. The
// tracker must key on membership.
func TestFrontTrackerTracksMembershipNotSize(t *testing.T) {
	mk := func(grid, rank int) *Individual {
		return &Individual{Params: distinctParams(grid), rank: rank}
	}
	tr := &frontTracker{}

	// First observation establishes the reference front.
	if got := tr.observe([]*Individual{mk(2, 0), mk(4, 0), mk(8, 1)}); got != 0 {
		t.Errorf("first observation stale = %d, want 0", got)
	}
	// Identical membership: stale counts up.
	if got := tr.observe([]*Individual{mk(2, 0), mk(4, 0), mk(16, 1)}); got != 1 {
		t.Errorf("unchanged front stale = %d, want 1", got)
	}
	if got := tr.observe([]*Individual{mk(4, 0), mk(2, 0)}); got != 2 {
		t.Errorf("unchanged front (reordered) stale = %d, want 2", got)
	}
	// Same SIZE, different membership: progress, stale must reset. This is
	// exactly the case the size-based check misclassified as converged.
	if got := tr.observe([]*Individual{mk(2, 0), mk(16, 0)}); got != 0 {
		t.Errorf("constant-size membership change stale = %d, want 0 (size-only tracking bug)", got)
	}
	if got := tr.observe([]*Individual{mk(2, 0), mk(16, 0)}); got != 1 {
		t.Errorf("stale after reset = %d, want 1", got)
	}
}

// Regression: a chromosome whose evaluation failed was memoized forever —
// if crossover/mutation regenerated it in a later generation it was served
// from the cache as Failed (and, insult to injury, counted as a cache hit).
// A failed entry must be retried once per later generation and must never
// count toward RunLog.CacheHits.
func TestFailedEvaluationRetriedInLaterGeneration(t *testing.T) {
	base := buildBase(t, 3, 8, 3)
	opt := smallOpts(1).withDefaults()
	ev := &evaluator{base: base, opt: opt, budget: NewEvalBudget(2), cache: map[string]*Individual{}, log: &RunLog{}}
	p := core.DefaultParams(base.Layout.Lib().NumLayers())

	// Generation 0: every route call fails permanently → degrade.
	armFaults(t, map[fault.Point]fault.Rule{fault.Route: {Every: 1}})
	pop := []*Individual{{Params: p}}
	if err := ev.evalAll(context.Background(), pop, 0); err != nil {
		t.Fatalf("evalAll gen 0: %v", err)
	}
	if !pop[0].Failed {
		t.Fatal("individual did not degrade under injected failure")
	}
	if ev.log.CacheHits != 0 {
		t.Errorf("CacheHits = %d after a single fresh failure, want 0", ev.log.CacheHits)
	}

	fault.Disarm()

	// Same generation: the failed entry is served from the cache (at most
	// one retry per *later* generation) and still is not a cache hit.
	pop = []*Individual{{Params: p}}
	if err := ev.evalAll(context.Background(), pop, 0); err != nil {
		t.Fatalf("evalAll gen 0 (repeat): %v", err)
	}
	if !pop[0].Failed {
		t.Error("failed entry re-evaluated within its own generation")
	}
	if ev.log.CacheHits != 0 {
		t.Errorf("failed cache entry counted as cache hit: CacheHits = %d", ev.log.CacheHits)
	}

	// Later generation: the chromosome must be evaluated fresh and, with
	// the fault gone, succeed.
	pop = []*Individual{{Params: p}}
	if err := ev.evalAll(context.Background(), pop, 1); err != nil {
		t.Fatalf("evalAll gen 1: %v", err)
	}
	if pop[0].Failed {
		t.Error("failed chromosome was not re-evaluated in a later generation")
	}
	if len(ev.log.Evaluations) != 1 {
		t.Errorf("Evaluations = %d, want 1 (the successful retry)", len(ev.log.Evaluations))
	}
	if ev.log.CacheHits != 0 {
		t.Errorf("CacheHits = %d after fresh retry, want 0", ev.log.CacheHits)
	}

	// And from here on the successful entry memoizes normally.
	pop = []*Individual{{Params: p}}
	if err := ev.evalAll(context.Background(), pop, 2); err != nil {
		t.Fatalf("evalAll gen 2: %v", err)
	}
	if ev.log.CacheHits != 1 {
		t.Errorf("CacheHits = %d for a successful cached chromosome, want 1", ev.log.CacheHits)
	}
}

// Duplicate successful evaluations — within one batch and across
// generations — still count as cache hits (the memoizer's actual wins).
func TestDuplicateSuccessfulEvaluationsCountAsCacheHits(t *testing.T) {
	base := buildBase(t, 3, 8, 3)
	opt := smallOpts(1).withDefaults()
	ev := &evaluator{base: base, opt: opt, budget: NewEvalBudget(2), cache: map[string]*Individual{}, log: &RunLog{}}
	p := core.DefaultParams(base.Layout.Lib().NumLayers())

	pop := []*Individual{{Params: p}, {Params: p}}
	if err := ev.evalAll(context.Background(), pop, 0); err != nil {
		t.Fatalf("evalAll: %v", err)
	}
	if len(ev.log.Evaluations) != 1 {
		t.Errorf("Evaluations = %d, want 1 (batch-level dedup)", len(ev.log.Evaluations))
	}
	if ev.log.CacheHits != 1 {
		t.Errorf("CacheHits = %d for an in-batch duplicate, want 1", ev.log.CacheHits)
	}
	pop = []*Individual{{Params: p}}
	if err := ev.evalAll(context.Background(), pop, 1); err != nil {
		t.Fatalf("evalAll gen 1: %v", err)
	}
	if ev.log.CacheHits != 2 {
		t.Errorf("CacheHits = %d across generations, want 2", ev.log.CacheHits)
	}
}
