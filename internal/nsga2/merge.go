package nsga2

import "gdsiiguard/internal/core"

// MergeFronts merges Pareto fronts from independent runs (the islands of a
// distributed exploration) into one front: individuals are concatenated,
// deduplicated by parameter key (first occurrence wins — the flow is
// deterministic, so duplicate keys carry identical metrics), and reduced to
// the feasible non-dominated subset, sorted by ascending security.
//
// Any point non-dominated in the union is non-dominated in every subset
// containing it, so merging per-island fronts yields exactly the front of
// the union of all island evaluations. Merging a front with itself is a
// no-op.
func MergeFronts(fronts ...[]Individual) []Individual {
	var all []Individual
	seen := map[string]bool{}
	for _, front := range fronts {
		for _, in := range front {
			key := in.Params.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			all = append(all, in)
		}
	}
	return paretoFront(all)
}

// Elites picks up to k migration candidates from a front sorted by
// security: the endpoints first (the extreme trade-offs carry the most
// information into a neighbor island), then evenly spaced interior points.
// Emission order matters — migrants seed the head of the receiver's next
// population and are truncated from the tail on overflow, so the endpoints
// lead to guarantee they survive. The selection is deterministic.
func Elites(front []Individual, k int) []core.Params {
	if k <= 0 || len(front) == 0 {
		return nil
	}
	if len(front) <= k {
		out := make([]core.Params, len(front))
		for i, in := range front {
			out[i] = in.Params.Clone()
		}
		return out
	}
	if k == 1 {
		return []core.Params{front[0].Params.Clone()}
	}
	picked := make([]core.Params, 0, k)
	seen := map[int]bool{}
	add := func(idx int) {
		if seen[idx] {
			return
		}
		seen[idx] = true
		picked = append(picked, front[idx].Params.Clone())
	}
	add(0)
	add(len(front) - 1)
	for i := 1; i < k-1; i++ {
		// i spread over the interior of [0, len-1].
		add(i * (len(front) - 1) / (k - 1))
	}
	return picked
}
