// Package nsga2 implements the multi-objective flow-parameter optimizer of
// §III-D: NSGA-II (Deb et al.) adapted to the GDSII-Guard parameter space.
// Chromosomes are flow parameter vectors (Table I); the two objectives are
// the security score and −TNS, both minimized; the power and DRC bounds of
// §II-C enter through constraint domination (feasible solutions always beat
// infeasible ones, matching "valid solutions should first meet hard
// constraints"). Evaluations run on a bounded worker pool (the paper's
// process-level parallelism) and are memoized by chromosome identity.
package nsga2

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/obs"
)

// Options configures the optimizer.
type Options struct {
	// PopSize is the population size (default 16).
	PopSize int
	// Generations is the maximum generation count (default 8).
	Generations int
	// Patience stops early after this many generations without a new
	// non-dominated point (default 3; 0 disables).
	Patience int
	// NDRC and BetaPower are the hard constraints of §II-C
	// (defaults 20 and 1.2).
	NDRC      int
	BetaPower float64
	// CrossoverP and MutationP are per-gene probabilities
	// (defaults 0.9 population-level crossover, 0.1 per-gene mutation).
	CrossoverP, MutationP float64
	// Parallelism bounds concurrent flow evaluations (default NumCPU).
	Parallelism int
	// Budget optionally shares one evaluation-concurrency budget across
	// several concurrent optimizers (see NewEvalBudget): every evaluation
	// acquires a budget slot, so total concurrency across all runs sharing
	// the budget never exceeds its size. When nil, the run gets a private
	// budget of Parallelism slots.
	Budget *EvalBudget
	// Seed drives all stochastic choices.
	Seed int64
	// EvalRetries is how many times a transient evaluation failure
	// (core.ClassTransient) is retried before the individual degrades to
	// an infeasible marker (default 1; negative disables retries).
	EvalRetries int
	// MaxFailureRate aborts the run when more than this fraction of all
	// fresh evaluations have failed after retries, checked once at least
	// PopSize evaluations were attempted (default 0.5; values ≥ 1 never
	// abort). Failures below the threshold degrade: the individual is
	// marked infeasible with maximal constraint violation and recorded in
	// RunLog.Failures, and the exploration continues.
	MaxFailureRate float64
	// SeedPop injects chromosomes into the initial population (island-model
	// migration and epoch continuation): entries are deduplicated by key and
	// used in order, ahead of the identity configuration and the random
	// fill, and truncated at PopSize. Every entry must be admissible for the
	// baseline's layer count.
	SeedPop []core.Params
	// Checkpoint, when set, is invoked synchronously after every completed
	// generation (including generation 0, the evaluated initial population)
	// with a self-contained snapshot of the optimizer state. An error
	// aborts the run — a caller that persists checkpoints must not keep
	// exploring past a failed write.
	Checkpoint func(*Checkpoint) error
	// Resume continues an interrupted run from a Checkpoint instead of
	// building an initial population. Seed and PopSize must match the
	// checkpoint's; the resumed run's trajectory is bit-identical to the
	// uninterrupted run's. SeedPop is ignored on resume (the checkpointed
	// population already embodies it).
	Resume *Checkpoint
	// DisableDelta turns off cross-chromosome delta evaluation: every
	// chromosome runs from scratch on its arena (core.NewScratchPlain)
	// instead of as a delta from memoized relatives (core.NewScratch).
	// Results are bit-identical either way — this is the A/B escape hatch
	// and the reference side of the equivalence tests.
	DisableDelta bool
}

func (o Options) withDefaults() Options {
	if o.PopSize <= 0 {
		o.PopSize = 16
	}
	if o.PopSize%2 == 1 {
		o.PopSize++
	}
	if o.Generations <= 0 {
		o.Generations = 8
	}
	if o.Patience == 0 {
		o.Patience = 3
	}
	if o.NDRC <= 0 {
		o.NDRC = 20
	}
	if o.BetaPower <= 0 {
		o.BetaPower = 1.2
	}
	if o.CrossoverP <= 0 {
		o.CrossoverP = 0.9
	}
	if o.MutationP <= 0 {
		o.MutationP = 0.1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.EvalRetries == 0 {
		o.EvalRetries = 1
	} else if o.EvalRetries < 0 {
		o.EvalRetries = 0
	}
	if o.MaxFailureRate == 0 {
		o.MaxFailureRate = 0.5
	}
	return o
}

// Individual is one evaluated chromosome.
type Individual struct {
	Params   core.Params
	Metrics  core.Metrics
	Feasible bool
	// Violation is the aggregate constraint violation (0 when feasible).
	Violation float64
	// Generation the individual was first evaluated in.
	Generation int
	// Failed marks an individual whose evaluation failed after retries:
	// it carries no metrics, is infeasible with maximal violation (so
	// selection breeds it out), and is excluded from RunLog.Evaluations.
	Failed bool

	rank     int
	crowding float64
	// parentOp is the operator-gene key (core.Params.OpKey) of the
	// tournament parent this child was bred from. It is a delta-evaluation
	// placement hint only — evaluation routes the child to an arena whose
	// journal already holds a related placement — and is deliberately
	// unexported: it never serializes into checkpoints, and results are
	// bit-identical with or without it.
	parentOp string
}

// Objectives returns the two minimized objectives (security, −TNS).
func (in *Individual) Objectives() [2]float64 {
	return [2]float64{in.Metrics.Security, -in.Metrics.TNS}
}

// RunLog is the optimizer's full trace.
type RunLog struct {
	// Evaluations lists every distinct evaluated point in evaluation order
	// (the scatter of Fig. 5).
	Evaluations []Individual
	// Front is the final feasible Pareto front, sorted by security.
	Front []Individual
	// Generations actually executed.
	Generations int
	// CacheHits counts chromosome re-evaluations avoided.
	CacheHits int
	// Failures records evaluations that failed after retries and degraded
	// to infeasible individuals instead of aborting the run.
	Failures []EvalFailure
	// Final is the population after the last environmental selection. An
	// island-model driver seeds the next epoch from it (Options.SeedPop),
	// so selection pressure carries across epochs.
	Final []Individual
	// Delta aggregates what delta evaluation reused across the run's
	// arenas — operator memo hits, warm-started routes, replayed nets
	// (zero when Options.DisableDelta is set).
	Delta core.DeltaStats
}

// EvalFailure is one degraded (failed) evaluation of the run.
type EvalFailure struct {
	// Key and Params identify the failed chromosome.
	Key    string
	Params core.Params
	// Generation the failure happened in.
	Generation int
	// Stage and Class locate and classify the failure (core taxonomy).
	Stage core.Stage
	Class core.ErrClass
	// Err is the failure message; Attempts counts evaluation attempts
	// including retries.
	Err      string
	Attempts int
}

// Optimize explores the flow parameter space for the given baseline design.
func Optimize(base *core.Baseline, opt Options) (*RunLog, error) {
	return OptimizeCtx(context.Background(), base, opt)
}

// OptimizeCtx is Optimize with cooperative cancellation: the optimizer
// observes ctx between generations and the evaluation workers observe it
// between (and inside, via the flow stages) evaluations, so a cancelled
// exploration stops within roughly one evaluation's latency. Evaluations
// run on journal-rewound scratch arenas (core.Scratch) — one per worker —
// instead of cloning the baseline layout per evaluation.
//
// Evaluation failures degrade instead of aborting: a transient failure is
// retried (Options.EvalRetries), anything that still fails is recorded in
// RunLog.Failures and enters selection as an infeasible individual with
// maximal violation, and the exploration continues. The run errors out
// only when ctx is cancelled or the failure rate crosses
// Options.MaxFailureRate (an unevaluable baseline surfaces earlier, from
// core.EvalBaseline, before an optimizer ever starts).
func OptimizeCtx(ctx context.Context, base *core.Baseline, opt Options) (*RunLog, error) {
	opt = opt.withDefaults()
	k := base.Layout.Lib().NumLayers()
	src := &countingSource{src: rand.NewSource(opt.Seed)}
	rng := rand.New(src)
	log := &RunLog{}
	budget := opt.Budget
	if budget == nil {
		budget = NewEvalBudget(opt.Parallelism)
	}
	ev := &evaluator{base: base, opt: opt, budget: budget, cache: map[string]*Individual{}, log: log}
	conv := &frontTracker{}

	var pop []*Individual
	startGen := 1
	resumedDone := false
	if cp := opt.Resume; cp != nil {
		// Resume: restore the interrupted run's state and fast-forward the
		// RNG to its recorded stream position — generation cp.Generation+1
		// then unfolds exactly as it would have, uninterrupted.
		if err := cp.validate(opt, k); err != nil {
			return nil, err
		}
		pop = cp.restore(ev, conv)
		src.skip(cp.RNGDraws)
		startGen = cp.Generation + 1
		// Reproduce the patience break: if the interrupted run had already
		// converged at its last checkpoint, the uninterrupted run stopped
		// there too.
		if opt.Patience > 0 && cp.Stale >= opt.Patience {
			resumedDone = true
			startGen = cp.Generation
		}
	} else {
		// Initial population: injected seed chromosomes (island migration)
		// first, then the identity configuration, then random points.
		seen := map[string]bool{}
		for _, p := range opt.SeedPop {
			if len(pop) >= opt.PopSize {
				break
			}
			if err := p.Validate(k); err != nil {
				return nil, fmt.Errorf("nsga2: invalid seed chromosome: %w", err)
			}
			if seen[p.Key()] {
				continue
			}
			seen[p.Key()] = true
			pop = append(pop, &Individual{Params: p.Clone()})
		}
		idty := core.DefaultParams(k)
		if !seen[idty.Key()] && len(pop) < opt.PopSize {
			pop = append(pop, &Individual{Params: idty})
			seen[idty.Key()] = true
		}
		for len(pop) < opt.PopSize {
			p := core.RandomParams(k, rng)
			if seen[p.Key()] {
				continue
			}
			seen[p.Key()] = true
			pop = append(pop, &Individual{Params: p})
		}
		if err := ev.evalAll(ctx, pop, 0); err != nil {
			return nil, err
		}
		if opt.Checkpoint != nil {
			if err := opt.Checkpoint(makeCheckpoint(opt, 0, src.draws, pop, ev, conv)); err != nil {
				return nil, fmt.Errorf("nsga2: checkpoint after generation 0: %w", err)
			}
		}
	}

	gen := startGen
	for gen = startGen; !resumedDone && gen <= opt.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rankAndCrowd(pop)
		offspring := makeOffspring(pop, k, rng, opt)
		if err := ev.evalAll(ctx, offspring, gen); err != nil {
			return nil, err
		}
		pop = environmentalSelect(append(pop, offspring...), opt.PopSize)

		frontSize := 0
		for _, in := range pop {
			if in.rank == 0 {
				frontSize++
			}
		}
		gensTotal.Inc()
		frontGauge.Set(float64(frontSize))
		obs.Logger().Debug("nsga2: generation complete",
			"generation", gen, "front_size", frontSize,
			"evaluations", len(log.Evaluations), "cache_hits", log.CacheHits,
			"failures", len(log.Failures))

		// Convergence: the rank-0 front stopped changing membership. Size
		// alone is not enough — a front saturated at PopSize whose points
		// keep improving is still making progress.
		stale := conv.observe(pop)
		if opt.Checkpoint != nil {
			if err := opt.Checkpoint(makeCheckpoint(opt, gen, src.draws, pop, ev, conv)); err != nil {
				return nil, fmt.Errorf("nsga2: checkpoint after generation %d: %w", gen, err)
			}
		}
		if opt.Patience > 0 && stale >= opt.Patience {
			break
		}
	}
	if gen > opt.Generations {
		gen = opt.Generations
	}
	log.Generations = gen
	log.Front = paretoFront(log.Evaluations)
	log.Final = make([]Individual, len(pop))
	for i, in := range pop {
		log.Final[i] = *in
	}
	// All arenas are back on the free list here (every checkout is paired
	// with a deferred return), so this sums the whole run's reuse.
	for _, s := range ev.scratches {
		log.Delta.Add(s.Stats())
	}
	return log, nil
}

// frontTracker detects a stalled exploration by rank-0 front membership
// (chromosome keys), not front size: a front that saturates at PopSize
// while its points keep being replaced by better ones is still making
// progress and must not count as stale.
type frontTracker struct {
	keys  map[string]bool
	stale int
}

// observe updates the tracker with the population's current rank-0 front
// and returns how many consecutive generations the front has been
// unchanged.
func (t *frontTracker) observe(pop []*Individual) int {
	cur := make(map[string]bool)
	for _, in := range pop {
		if in.rank == 0 {
			cur[in.Params.Key()] = true
		}
	}
	same := len(cur) == len(t.keys)
	if same {
		for k := range cur {
			if !t.keys[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.stale++
	} else {
		t.stale = 0
		t.keys = cur
	}
	return t.stale
}

// evaluator memoizes flow runs and executes them in parallel.
type evaluator struct {
	base   *core.Baseline
	opt    Options
	budget *EvalBudget
	cache  map[string]*Individual
	mu     sync.Mutex
	log    *RunLog
	// succeeded/failed count fresh evaluations for the failure-rate cap.
	succeeded int
	failed    int
	// scratches is a free list of evaluation arenas, one checked out per
	// in-flight evaluation. The exploration keeps only Metrics, so arenas
	// (journal-rewound between uses) replace the per-evaluation layout
	// clone of core.RunCtx. Grows to at most Parallelism entries and
	// persists across generations.
	scratchMu sync.Mutex
	scratches []*core.Scratch
}

// getScratch checks an arena out of the free list — preferring, in order,
// one whose journal already holds the chromosome's exact post-operator
// placement, one holding an extendable prefix of its LDA chain, then one
// holding the tournament parent's placement (parentOp hint) — and builds
// a new arena on first use per concurrent worker. The preference is a
// pure placement optimization: results are bit-identical whichever arena
// evaluates the chromosome.
func (ev *evaluator) getScratch(opKey, parentOp string) *core.Scratch {
	ev.scratchMu.Lock()
	defer ev.scratchMu.Unlock()
	if n := len(ev.scratches); n > 0 {
		pick, best := n-1, 0
		for i, s := range ev.scratches {
			lin := s.Lineage()
			score := 0
			switch {
			case lin == opKey && lin != "":
				score = 3
			case ldaExtends(lin, opKey):
				score = 2
			case lin == parentOp && lin != "":
				score = 1
			}
			if score > best {
				pick, best = i, score
			}
		}
		s := ev.scratches[pick]
		ev.scratches = append(ev.scratches[:pick], ev.scratches[pick+1:]...)
		return s
	}
	if ev.opt.DisableDelta {
		return core.NewScratchPlain(ev.base)
	}
	return core.NewScratch(ev.base)
}

// ldaExtends reports whether an arena holding lineage lin can extend its
// LDA chain in place into opKey (same grid, strictly fewer iterations).
func ldaExtends(lin, opKey string) bool {
	ln, li, ok := core.ParseLDAOpKey(lin)
	if !ok {
		return false
	}
	on, oi, ok := core.ParseLDAOpKey(opKey)
	return ok && ln == on && li < oi
}

func (ev *evaluator) putScratch(s *core.Scratch) {
	ev.scratchMu.Lock()
	ev.scratches = append(ev.scratches, s)
	ev.scratchMu.Unlock()
}

// evalAll evaluates a batch: unique un-cached chromosomes run once each on
// the worker pool (in deterministic key order for a reproducible trace),
// then every individual is filled from the cache. A chromosome cached as
// Failed in an *earlier* generation is not served from the cache: it gets
// one fresh re-evaluation per later generation it reappears in, so a
// transient failure cannot permanently poison a point of the search space.
func (ev *evaluator) evalAll(ctx context.Context, pop []*Individual, gen int) error {
	type job struct {
		params core.Params
		// parentOp is the delta-evaluation placement hint of the first
		// individual carrying this key (see Individual.parentOp).
		parentOp string
	}
	var fresh []string
	seen := map[string]job{}
	for _, in := range pop {
		key := in.Params.Key()
		if _, dup := seen[key]; dup {
			continue
		}
		if hit, cached := ev.cache[key]; cached {
			if !hit.Failed || hit.Generation >= gen {
				continue
			}
			// Failed in an earlier generation: retry it fresh.
			delete(ev.cache, key)
			nsga2Evals.With("retried").Inc()
		}
		seen[key] = job{params: in.Params, parentOp: in.parentOp}
		fresh = append(fresh, key)
	}
	sort.Strings(fresh)

	// The jobs channel is buffered to the full batch so a worker that
	// exits on error can never leave the producer blocked. Each evaluation
	// holds a budget slot, so total concurrency across optimizers sharing
	// the budget stays bounded.
	jobs := make(chan string, len(fresh))
	errs := make(chan error, len(fresh))
	var wg sync.WaitGroup
	for w := 0; w < ev.opt.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range jobs {
				if err := ctx.Err(); err != nil {
					errs <- err
					return
				}
				if err := ev.budget.Acquire(ctx); err != nil {
					errs <- err
					return
				}
				j := seen[key]
				err := ev.evalFresh(ctx, j.params, j.parentOp, key, gen)
				ev.budget.Release()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for _, key := range fresh {
		jobs <- key
	}
	close(jobs)
	wg.Wait()
	// Drain and join every worker error instead of dropping all but the
	// first: a multi-worker batch can fail for several distinct reasons
	// (rate cap, cancellation) and the caller deserves all of them.
	close(errs)
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	if len(all) > 0 {
		return errors.Join(all...)
	}
	// Log fresh results in key order (deterministic trace) and fill the
	// population. Degraded (failed) evaluations stay out of the trace —
	// they are recorded in log.Failures instead.
	for _, key := range fresh {
		if hit, ok := ev.cache[key]; ok && !hit.Failed {
			ev.log.Evaluations = append(ev.log.Evaluations, *hit)
		}
	}
	// Cache-hit accounting happens here, once results are known: every
	// individual beyond the one fresh evaluation of its key counts as a
	// hit — unless the evaluation failed. Failed entries are not wins of
	// the memoizer and must not inflate CacheHits.
	freshUsed := map[string]bool{}
	for _, in := range pop {
		key := in.Params.Key()
		hit := ev.cache[key]
		if hit == nil {
			return fmt.Errorf("nsga2: missing evaluation for %s", key)
		}
		in.Metrics = hit.Metrics
		in.Feasible = hit.Feasible
		in.Violation = hit.Violation
		in.Generation = hit.Generation
		in.Failed = hit.Failed
		if _, scheduled := seen[key]; scheduled && !freshUsed[key] {
			freshUsed[key] = true // the fresh evaluation itself, not a hit
		} else if !hit.Failed {
			ev.log.CacheHits++
			nsga2Evals.With("cache_hit").Inc()
		}
	}
	return nil
}

// evalFresh runs one chromosome through the flow. Transient failures are
// retried up to Options.EvalRetries times; a failure that survives the
// retries degrades the individual instead of aborting the run (see
// degrade). Only context cancellation and the aggregate failure-rate cap
// abort the batch.
func (ev *evaluator) evalFresh(ctx context.Context, p core.Params, parentOp, key string, gen int) error {
	scratch := ev.getScratch(p.OpKey(), parentOp)
	defer ev.putScratch(scratch)
	var res *core.Result
	var err error
	attempts := 0
	for {
		attempts++
		res, err = scratch.RunCtx(ctx, p)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempts <= ev.opt.EvalRetries && core.IsTransient(err) {
			continue
		}
		return ev.degrade(p, key, gen, err, attempts)
	}
	in := &Individual{
		Params:     p.Clone(),
		Metrics:    res.Metrics,
		Generation: gen,
		Feasible:   core.Feasible(res.Metrics, ev.base, ev.opt.NDRC, ev.opt.BetaPower),
		Violation:  violation(res.Metrics, ev.base, ev.opt),
	}
	ev.mu.Lock()
	ev.cache[key] = in
	ev.succeeded++
	ev.mu.Unlock()
	nsga2Evals.With("fresh").Inc()
	return nil
}

// degrade records a failed evaluation: the chromosome is cached as an
// infeasible individual with maximal constraint violation (so constrained
// domination breeds it out) and the failure lands in RunLog.Failures. The
// run aborts only when the aggregate failure rate crosses
// Options.MaxFailureRate over at least PopSize attempted evaluations.
func (ev *evaluator) degrade(p core.Params, key string, gen int, cause error, attempts int) error {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	ev.cache[key] = &Individual{
		Params:     p.Clone(),
		Generation: gen,
		Feasible:   false,
		Violation:  math.Inf(1),
		Failed:     true,
	}
	ev.failed++
	nsga2Evals.With("failed").Inc()
	ev.log.Failures = append(ev.log.Failures, EvalFailure{
		Key:        key,
		Params:     p.Clone(),
		Generation: gen,
		Stage:      core.StageOf(cause),
		Class:      core.Classify(cause),
		Err:        cause.Error(),
		Attempts:   attempts,
	})
	total := ev.failed + ev.succeeded
	rate := float64(ev.failed) / float64(total)
	if ev.opt.MaxFailureRate < 1 && total >= ev.opt.PopSize && rate > ev.opt.MaxFailureRate {
		return fmt.Errorf("nsga2: aborting exploration: %d/%d evaluations failed (rate %.2f > cap %.2f), last: %w",
			ev.failed, total, rate, ev.opt.MaxFailureRate, cause)
	}
	return nil
}

// violation aggregates normalized constraint excess.
func violation(m core.Metrics, base *core.Baseline, opt Options) float64 {
	v := 0.0
	if m.DRC > opt.NDRC {
		v += float64(m.DRC-opt.NDRC) / float64(opt.NDRC)
	}
	if cap := opt.BetaPower * base.Metrics.PowerMW; m.PowerMW > cap {
		v += (m.PowerMW - cap) / cap
	}
	return v
}

// dominates implements constrained domination (Deb): feasible beats
// infeasible; two infeasible compare by violation; two feasible compare by
// Pareto dominance on (security, −TNS).
func dominates(a, b *Individual) bool {
	switch {
	case a.Feasible && !b.Feasible:
		return true
	case !a.Feasible && b.Feasible:
		return false
	case !a.Feasible && !b.Feasible:
		return a.Violation < b.Violation
	}
	ao, bo := a.Objectives(), b.Objectives()
	notWorse := ao[0] <= bo[0] && ao[1] <= bo[1]
	strictlyBetter := ao[0] < bo[0] || ao[1] < bo[1]
	return notWorse && strictlyBetter
}

// rankAndCrowd assigns non-domination ranks and crowding distances.
func rankAndCrowd(pop []*Individual) {
	fronts := sortFronts(pop)
	for _, front := range fronts {
		crowd(front)
	}
}

func sortFronts(pop []*Individual) [][]*Individual {
	n := len(pop)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominates(pop[i], pop[j]) {
				dominated[i] = append(dominated[i], j)
			} else if dominates(pop[j], pop[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			pop[i].rank = 0
			first = append(first, i)
		}
	}
	var fronts [][]*Individual
	cur := first
	rank := 0
	for len(cur) > 0 {
		var front []*Individual
		var next []int
		for _, i := range cur {
			front = append(front, pop[i])
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		fronts = append(fronts, front)
		cur = next
		rank++
	}
	return fronts
}

func crowd(front []*Individual) {
	n := len(front)
	for _, in := range front {
		in.crowding = 0
	}
	if n <= 2 {
		for _, in := range front {
			in.crowding = math.Inf(1)
		}
		return
	}
	for obj := 0; obj < 2; obj++ {
		sort.Slice(front, func(i, j int) bool {
			return front[i].Objectives()[obj] < front[j].Objectives()[obj]
		})
		lo := front[0].Objectives()[obj]
		hi := front[n-1].Objectives()[obj]
		front[0].crowding = math.Inf(1)
		front[n-1].crowding = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < n-1; i++ {
			front[i].crowding += (front[i+1].Objectives()[obj] - front[i-1].Objectives()[obj]) / (hi - lo)
		}
	}
}

// better implements the crowded-comparison operator.
func better(a, b *Individual) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.crowding > b.crowding
}

// makeOffspring produces PopSize children via binary tournament, uniform
// crossover and per-gene mutation.
func makeOffspring(pop []*Individual, k int, rng *rand.Rand, opt Options) []*Individual {
	tournament := func() *Individual {
		a := pop[rng.Intn(len(pop))]
		b := pop[rng.Intn(len(pop))]
		if better(a, b) {
			return a
		}
		return b
	}
	var out []*Individual
	for len(out) < opt.PopSize {
		p1, p2 := tournament(), tournament()
		c1, c2 := p1.Params.Clone(), p2.Params.Clone()
		if rng.Float64() < opt.CrossoverP {
			crossover(&c1, &c2, rng)
		}
		mutate(&c1, k, rng, opt.MutationP)
		mutate(&c2, k, rng, opt.MutationP)
		out = append(out,
			&Individual{Params: c1, parentOp: p1.Params.OpKey()},
			&Individual{Params: c2, parentOp: p2.Params.OpKey()})
	}
	return out[:opt.PopSize]
}

// crossover swaps genes uniformly between two chromosomes.
func crossover(a, b *core.Params, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		a.Op, b.Op = b.Op, a.Op
	}
	if rng.Intn(2) == 0 {
		a.LDAGridN, b.LDAGridN = b.LDAGridN, a.LDAGridN
	}
	if rng.Intn(2) == 0 {
		a.LDAIters, b.LDAIters = b.LDAIters, a.LDAIters
	}
	for i := range a.ScaleM {
		if rng.Intn(2) == 0 {
			a.ScaleM[i], b.ScaleM[i] = b.ScaleM[i], a.ScaleM[i]
		}
	}
}

// mutate resets genes to random admissible values with probability p each.
func mutate(p *core.Params, k int, rng *rand.Rand, prob float64) {
	if rng.Float64() < prob {
		if p.Op == core.CS {
			p.Op = core.LDA
		} else {
			p.Op = core.CS
		}
	}
	if rng.Float64() < prob {
		p.LDAGridN = core.LDAGridValues[rng.Intn(len(core.LDAGridValues))]
	}
	if rng.Float64() < prob {
		p.LDAIters = core.LDAIterValues[rng.Intn(len(core.LDAIterValues))]
	}
	for i := 0; i < k; i++ {
		if rng.Float64() < prob {
			p.ScaleM[i] = core.ScaleValues[rng.Intn(len(core.ScaleValues))]
		}
	}
}

// environmentalSelect keeps the best n individuals by rank then crowding.
func environmentalSelect(pop []*Individual, n int) []*Individual {
	rankAndCrowd(pop)
	sort.SliceStable(pop, func(i, j int) bool { return better(pop[i], pop[j]) })
	if len(pop) > n {
		pop = pop[:n]
	}
	return pop
}

// paretoFront extracts the feasible non-dominated subset of the
// evaluations, sorted by ascending security.
func paretoFront(all []Individual) []Individual {
	var feas []*Individual
	for i := range all {
		if all[i].Feasible {
			feas = append(feas, &all[i])
		}
	}
	var front []Individual
	for _, a := range feas {
		dominated := false
		for _, b := range feas {
			if a != b && dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, *a)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Metrics.Security != front[j].Metrics.Security {
			return front[i].Metrics.Security < front[j].Metrics.Security
		}
		return front[i].Metrics.TNS > front[j].Metrics.TNS
	})
	// Collapse duplicate objective points.
	out := front[:0]
	for i, in := range front {
		if i == 0 || in.Metrics.Security != front[i-1].Metrics.Security ||
			in.Metrics.TNS != front[i-1].Metrics.TNS {
			out = append(out, in)
		}
	}
	return out
}
