package nsga2

import (
	"context"

	"gdsiiguard/internal/obs"
)

// Eval-budget occupancy gauges. One pair serves every budget in the
// process: Add/Dec deltas sum correctly across concurrent budgets, so the
// gauge reads the global number of in-flight budgeted evaluations.
var (
	budgetInflight = obs.Default().Gauge(
		"gdsiiguard_nsga2_eval_budget_inflight",
		"Flow evaluations currently holding an evaluation-budget slot.").With()
	budgetInflightPeak = obs.Default().Gauge(
		"gdsiiguard_nsga2_eval_budget_inflight_peak",
		"High watermark of concurrently budgeted flow evaluations.").With()
)

// EvalBudget bounds concurrent flow evaluations across any number of
// cooperating optimizers. A single budget shared between concurrent
// Optimize runs (and the experiments suite's per-design serial phases)
// keeps total evaluation concurrency at the configured bound instead of
// multiplying per-run parallelism — the nested-parallelism trap the
// experiments runner used to fall into.
type EvalBudget struct {
	tokens chan struct{}
}

// NewEvalBudget creates a budget of n concurrent evaluations (minimum 1).
func NewEvalBudget(n int) *EvalBudget {
	if n < 1 {
		n = 1
	}
	return &EvalBudget{tokens: make(chan struct{}, n)}
}

// Size returns the budget's concurrency bound.
func (b *EvalBudget) Size() int { return cap(b.tokens) }

// Acquire blocks until a slot is free or ctx is done.
func (b *EvalBudget) Acquire(ctx context.Context) error {
	select {
	case b.tokens <- struct{}{}:
		budgetInflight.Inc()
		budgetInflightPeak.SetMax(budgetInflight.Peak())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (b *EvalBudget) Release() {
	budgetInflight.Dec()
	<-b.tokens
}

// InFlight returns the number of slots currently held.
func (b *EvalBudget) InFlight() int { return len(b.tokens) }
