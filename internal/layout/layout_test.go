package layout

import (
	"testing"
	"testing/quick"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/verilog"
)

const toySrc = `
module toy ( in0, in1, clk, out0 );
  input in0, in1, clk ;
  output out0 ;
  wire n1, n2 ;
  INV_X1 u1 ( .A(in0), .ZN(n1) );
  NAND2_X1 u2 ( .A1(n1), .A2(in1), .ZN(n2) );
  DFF_X1 u3 ( .D(n2), .CK(clk), .Q(out0) );
endmodule
`

func toyLayout(t *testing.T) *Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl, err := verilog.ParseString(toySrc, lib)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(nl, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRejectsBadCore(t *testing.T) {
	lib := opencell45.MustLoad()
	nl := netlist.New("x", lib)
	if _, err := New(nl, 0, 10); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New(nl, 10, -1); err == nil {
		t.Error("negative sites accepted")
	}
}

func TestPlaceUnplace(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1") // INV_X1, 2 sites
	if err := l.Place(u1, 1, 5); err != nil {
		t.Fatalf("Place: %v", err)
	}
	p := l.PlacementOf(u1)
	if !p.Placed || p.Row != 1 || p.Site != 5 {
		t.Fatalf("placement = %+v", p)
	}
	if l.At(1, 5) != u1 || l.At(1, 6) != u1 {
		t.Error("occupancy wrong")
	}
	if l.At(1, 7) != nil {
		t.Error("site 7 should be free")
	}
	l.Unplace(u1)
	if l.At(1, 5) != nil || l.PlacementOf(u1).Placed {
		t.Error("unplace failed")
	}
}

func TestPlaceOverlapRejected(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	u2 := l.Netlist.Instance("u2") // 3 sites
	if err := l.Place(u1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(u2, 0, 9); err == nil {
		t.Error("overlap accepted")
	}
	if err := l.Place(u2, 0, 12); err != nil {
		t.Errorf("adjacent placement rejected: %v", err)
	}
	// Out of core.
	u3 := l.Netlist.Instance("u3") // 9 sites
	if err := l.Place(u3, 0, 38); err == nil {
		t.Error("off-edge placement accepted")
	}
	if err := l.Place(u3, 4, 0); err == nil {
		t.Error("row out of range accepted")
	}
}

func TestReplaceMovesCell(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	_ = l.Place(l.Netlist.Instance("u2"), 1, 0)
	_ = l.Place(l.Netlist.Instance("u3"), 1, 10)
	_ = l.Place(u1, 0, 0)
	if err := l.Place(u1, 2, 20); err != nil {
		t.Fatalf("re-place: %v", err)
	}
	if l.At(0, 0) != nil {
		t.Error("old sites not released")
	}
	if l.At(2, 20) != u1 {
		t.Error("new sites not owned")
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestShiftLeftRight(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	u2 := l.Netlist.Instance("u2")
	_ = l.Place(u1, 0, 4)
	_ = l.Place(u2, 0, 6) // adjacent on the right of u1
	if err := l.ShiftLeft(u1); err != nil {
		t.Fatalf("ShiftLeft: %v", err)
	}
	if l.PlacementOf(u1).Site != 3 {
		t.Error("u1 did not move")
	}
	// u2 blocked on the left by u1's new right edge? u1 at 3..4, u2 at 6..8.
	if err := l.ShiftLeft(u2); err != nil {
		t.Fatalf("u2 shift into free site 5: %v", err)
	}
	if err := l.ShiftLeft(u2); err == nil {
		t.Error("shift into u1 accepted")
	}
	// Edge condition.
	for l.PlacementOf(u1).Site > 0 {
		if err := l.ShiftLeft(u1); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.ShiftLeft(u1); err == nil {
		t.Error("shift past row start accepted")
	}
	// Fixed cell refuses to move.
	u1.Fixed = true
	if err := l.ShiftRight(u1); err == nil {
		t.Error("fixed cell moved")
	}
}

func TestFreeRuns(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1") // 2 sites
	u2 := l.Netlist.Instance("u2") // 3 sites
	_ = l.Place(u1, 0, 5)
	_ = l.Place(u2, 0, 20)
	runs := l.FreeRuns(0)
	want := []SiteRun{{0, 0, 5}, {0, 7, 13}, {0, 23, 17}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
	// Fully free row is one run.
	if runs := l.FreeRuns(3); len(runs) != 1 || runs[0].Len != 40 {
		t.Errorf("free row runs = %v", runs)
	}
}

func TestRowCells(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	u2 := l.Netlist.Instance("u2")
	_ = l.Place(u2, 1, 0)
	_ = l.Place(u1, 1, 10)
	cells := l.RowCells(1)
	if len(cells) != 2 || cells[0] != u2 || cells[1] != u1 {
		t.Errorf("RowCells = %v", cells)
	}
	if len(l.RowCells(2)) != 0 {
		t.Error("empty row has cells")
	}
}

func TestDensityAndUtilization(t *testing.T) {
	l := toyLayout(t)
	if l.Utilization() != 0 {
		t.Error("empty core utilization != 0")
	}
	u3 := l.Netlist.Instance("u3") // 9 sites
	_ = l.Place(u3, 0, 0)
	wantUtil := 9.0 / 160.0
	if got := l.Utilization(); got < wantUtil-1e-9 || got > wantUtil+1e-9 {
		t.Errorf("Utilization = %g, want %g", got, wantUtil)
	}
	if d := l.RegionDensity(0, 1, 0, 9); d != 1.0 {
		t.Errorf("RegionDensity over cell = %g", d)
	}
	if d := l.RegionDensity(1, 4, 0, 40); d != 0 {
		t.Errorf("empty region density = %g", d)
	}
	// Clipped region.
	if d := l.RegionDensity(-5, 99, -5, 999); d < wantUtil-1e-9 || d > wantUtil+1e-9 {
		t.Errorf("clipped density = %g, want %g", d, wantUtil)
	}
	if d := l.RegionDensity(2, 2, 0, 0); d != 0 {
		t.Errorf("empty-extent density = %g", d)
	}
}

func TestGeometryConversions(t *testing.T) {
	l := toyLayout(t)
	lib := l.Lib()
	core := l.CoreRect()
	if core.W() != int64(40)*lib.Site.Width || core.H() != int64(4)*lib.Site.Height {
		t.Errorf("core = %v", core)
	}
	p := l.SiteDBU(2, 3)
	if p.X != 3*lib.Site.Width || p.Y != 2*lib.Site.Height {
		t.Errorf("SiteDBU = %v", p)
	}
	u1 := l.Netlist.Instance("u1")
	_ = l.Place(u1, 2, 3)
	r := l.CellRect(u1)
	if r.Lo != p || r.W() != 2*lib.Site.Width || r.H() != lib.Site.Height {
		t.Errorf("CellRect = %v", r)
	}
	if !core.ContainsRect(r) {
		t.Error("cell outside core")
	}
	u2 := l.Netlist.Instance("u2")
	if !l.CellRect(u2).Empty() {
		t.Error("unplaced cell should have empty rect")
	}
}

func TestPortsAndHPWL(t *testing.T) {
	l := toyLayout(t)
	l.SpreadPorts()
	if len(l.PortPos) != 4 {
		t.Fatalf("ports located = %d", len(l.PortPos))
	}
	core := l.CoreRect()
	for name, p := range l.PortPos {
		onEdge := p.X == core.Lo.X || p.X == core.Hi.X || p.Y == core.Lo.Y || p.Y == core.Hi.Y
		if !onEdge {
			t.Errorf("port %s at %v not on boundary", name, p)
		}
	}
	u1 := l.Netlist.Instance("u1")
	u2 := l.Netlist.Instance("u2")
	u3 := l.Netlist.Instance("u3")
	_ = l.Place(u1, 0, 0)
	_ = l.Place(u2, 1, 10)
	_ = l.Place(u3, 3, 20)
	n1 := l.Netlist.Net("n1")
	if l.NetHPWL(n1) <= 0 {
		t.Error("HPWL of spread net should be positive")
	}
	if l.TotalHPWL() < l.NetHPWL(n1) {
		t.Error("TotalHPWL below single net")
	}
	// Terminal positions resolve.
	if _, ok := l.TermPos(n1.Driver); !ok {
		t.Error("driver position missing")
	}
}

func TestBlockages(t *testing.T) {
	l := toyLayout(t)
	l.AddBlockage(Blockage{Row0: 0, Row1: 2, Site0: 0, Site1: 20, MaxDensity: 0.5})
	l.AddBlockage(Blockage{Row0: 1, Row1: 2, Site0: 10, Site1: 30, MaxDensity: 0.2})
	if d := l.BlockageAt(0, 5); d != 0.5 {
		t.Errorf("BlockageAt(0,5) = %g", d)
	}
	if d := l.BlockageAt(1, 15); d != 0.2 { // overlapping: min wins
		t.Errorf("BlockageAt(1,15) = %g", d)
	}
	if d := l.BlockageAt(3, 35); d != 1.0 {
		t.Errorf("uncovered site = %g", d)
	}
	l.ClearBlockages()
	if len(l.Blockages) != 0 {
		t.Error("ClearBlockages failed")
	}
	// Clipping.
	l.AddBlockage(Blockage{Row0: -5, Row1: 99, Site0: -5, Site1: 999, MaxDensity: 0.1})
	b := l.Blockages[0]
	if b.Row0 != 0 || b.Row1 != 4 || b.Site0 != 0 || b.Site1 != 40 {
		t.Errorf("blockage not clipped: %+v", b)
	}
}

func TestCloneIndependence(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	_ = l.Place(u1, 0, 0)
	_ = l.Place(l.Netlist.Instance("u2"), 1, 0)
	_ = l.Place(l.Netlist.Instance("u3"), 2, 0)
	l.SpreadPorts()
	l.NDR.Scale[0] = 1.5
	l.AddBlockage(Blockage{Row0: 0, Row1: 1, Site0: 0, Site1: 10, MaxDensity: 0.3})

	c := l.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	cu1 := c.Netlist.Instance("u1")
	if !c.PlacementOf(cu1).Placed {
		t.Fatal("placement lost in clone")
	}
	// Mutations to clone do not leak.
	c.Unplace(cu1)
	if !l.PlacementOf(u1).Placed {
		t.Error("unplace leaked to original")
	}
	c.NDR.Scale[0] = 1.2
	if l.NDR.Scale[0] != 1.5 {
		t.Error("NDR aliased")
	}
	c.ClearBlockages()
	if len(l.Blockages) != 1 {
		t.Error("blockages aliased")
	}
	delete(c.PortPos, "clk")
	if _, ok := l.PortPos["clk"]; !ok {
		t.Error("PortPos aliased")
	}
}

func TestValidateDetectsUnplacedFunctional(t *testing.T) {
	l := toyLayout(t)
	if err := l.Validate(); err == nil {
		t.Error("unplaced functional cells accepted")
	}
	for i, name := range []string{"u1", "u2", "u3"} {
		if err := l.Place(l.Netlist.Instance(name), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGrowAfterNetlistExtension(t *testing.T) {
	l := toyLayout(t)
	for i, name := range []string{"u1", "u2", "u3"} {
		_ = l.Place(l.Netlist.Instance(name), i, 0)
	}
	// A fill-based defense adds fillers after layout creation.
	f, err := l.Netlist.AddInstance("fill0", "FILLCELL_X4")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Place(f, 3, 0); err != nil {
		t.Fatalf("place new filler: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// Property: Place then Unplace restores the exact free-site count.
func TestQuickPlaceUnplaceInvariant(t *testing.T) {
	l := toyLayout(t)
	u2 := l.Netlist.Instance("u2")
	before := l.FreeSites()
	f := func(row, site uint8) bool {
		r := int(row) % l.NumRows
		s := int(site) % l.SitesPerRow
		if err := l.Place(u2, r, s); err != nil {
			return l.FreeSites() == before // rejected: nothing changed
		}
		if l.FreeSites() != before-u2.Master.WidthSites {
			return false
		}
		l.Unplace(u2)
		return l.FreeSites() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FreeRuns lengths always sum to the free sites of that row.
func TestQuickFreeRunsSum(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	u2 := l.Netlist.Instance("u2")
	u3 := l.Netlist.Instance("u3")
	f := func(a, b, c uint8) bool {
		for _, in := range []*netlist.Instance{u1, u2, u3} {
			l.Unplace(in)
		}
		_ = l.Place(u1, 0, int(a)%l.SitesPerRow)
		_ = l.Place(u2, 0, int(b)%l.SitesPerRow)
		_ = l.Place(u3, 0, int(c)%l.SitesPerRow)
		sum := 0
		for _, r := range l.FreeRuns(0) {
			sum += r.Len
		}
		placed := 0
		for _, in := range []*netlist.Instance{u1, u2, u3} {
			if l.PlacementOf(in).Placed {
				placed += in.Master.WidthSites
			}
		}
		return sum == l.SitesPerRow-placed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoreRectOrigin(t *testing.T) {
	l := toyLayout(t)
	l.Origin = geom.Pt(1000, 2000)
	core := l.CoreRect()
	if core.Lo != geom.Pt(1000, 2000) {
		t.Errorf("core.Lo = %v", core.Lo)
	}
	if p := l.SiteDBU(0, 0); p != geom.Pt(1000, 2000) {
		t.Errorf("SiteDBU(0,0) = %v", p)
	}
}

func TestAdoptPlacements(t *testing.T) {
	l := toyLayout(t)
	u1 := l.Netlist.Instance("u1")
	u2 := l.Netlist.Instance("u2")
	_ = l.Place(u1, 0, 0)
	_ = l.Place(u2, 1, 5)
	snap := l.Clone()
	// Mutate, then restore.
	_ = l.Place(u1, 3, 20)
	l.Unplace(u2)
	if err := l.AdoptPlacements(snap); err != nil {
		t.Fatalf("AdoptPlacements: %v", err)
	}
	if p := l.PlacementOf(u1); p.Row != 0 || p.Site != 0 {
		t.Errorf("u1 = %+v", p)
	}
	if p := l.PlacementOf(u2); !p.Placed || p.Row != 1 || p.Site != 5 {
		t.Errorf("u2 = %+v", p)
	}
	if l.At(3, 20) != nil {
		t.Error("stale occupancy after restore")
	}
	// Shape mismatch rejected.
	other, _ := New(l.Netlist.Clone(), l.NumRows+1, l.SitesPerRow)
	if err := l.AdoptPlacements(other); err == nil {
		t.Error("shape mismatch accepted")
	}
}
