package layout

import (
	"fmt"
	"math/rand"
	"testing"

	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
)

// gridLayout builds a layout with n INV_X1 instances packed from the left
// of each row, leaving free space to mutate into.
func gridLayout(tb testing.TB, rows, sites, n int) *Layout {
	tb.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("journal_t", lib)
	l, err := New(nl, rows, sites)
	if err != nil {
		tb.Fatal(err)
	}
	row, site := 0, 0
	for i := 0; i < n; i++ {
		in, err := nl.AddInstance(fmt.Sprintf("g%d", i), "INV_X1")
		if err != nil {
			tb.Fatal(err)
		}
		w := in.Master.WidthSites
		if site+w+1 > sites {
			row, site = row+1, 0
			if row >= rows {
				tb.Fatalf("gridLayout: %d cells do not fit", n)
			}
		}
		if err := l.Place(in, row, site); err != nil {
			tb.Fatal(err)
		}
		site += w + 1
	}
	return l
}

// samePlacementState compares occupancy grid and placement table directly.
func samePlacementState(tb testing.TB, got, want *Layout) {
	tb.Helper()
	got.grow()
	want.grow()
	for i := range want.occ {
		if got.occ[i] != want.occ[i] {
			tb.Fatalf("occ[%d] = %d, want %d (row %d site %d)",
				i, got.occ[i], want.occ[i], i/got.SitesPerRow, i%got.SitesPerRow)
		}
	}
	for i := range want.placements {
		if got.placements[i] != want.placements[i] {
			tb.Fatalf("placements[%d] = %+v, want %+v", i, got.placements[i], want.placements[i])
		}
	}
}

func TestJournalRollbackBitIdentical(t *testing.T) {
	l := gridLayout(t, 6, 60, 20)
	l.BeginJournal()
	defer l.EndJournal()

	snap := l.Clone()
	mark := l.JournalMark()

	insts := l.Netlist.Insts
	// A burst of shifts, relocations and unplacements.
	for i := 0; i < 10; i++ {
		_ = l.ShiftRight(insts[i])
	}
	if err := l.Place(insts[3], 5, 30); err != nil {
		t.Fatal(err)
	}
	l.Unplace(insts[7])
	_ = l.ShiftLeft(insts[12])
	if l.JournalLen() == mark {
		t.Fatal("no mutations recorded")
	}

	l.RollbackJournal(mark)
	samePlacementState(t, l, snap)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.JournalLen() != mark {
		t.Errorf("journal not truncated: %d != %d", l.JournalLen(), mark)
	}
}

// TestJournalRollbackRandomized is the property test: any seeded random
// sequence of Place/Unplace/Shift ops rolls back to a state bit-identical
// to the Clone snapshot taken at the mark, including nested marks.
func TestJournalRollbackRandomized(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := gridLayout(t, 8, 50, 30)
		l.BeginJournal()
		initial := l.Clone()

		type frame struct {
			mark int
			snap *Layout
		}
		var stack []frame
		insts := l.Netlist.Insts
		for op := 0; op < 400; op++ {
			switch k := rng.Intn(10); {
			case k < 3:
				in := insts[rng.Intn(len(insts))]
				_ = l.Place(in, rng.Intn(l.NumRows), rng.Intn(l.SitesPerRow))
			case k < 5:
				_ = l.ShiftLeft(insts[rng.Intn(len(insts))])
			case k < 7:
				_ = l.ShiftRight(insts[rng.Intn(len(insts))])
			case k == 7:
				l.Unplace(insts[rng.Intn(len(insts))])
			case k == 8 && len(stack) < 4:
				stack = append(stack, frame{mark: l.JournalMark(), snap: l.Clone()})
			default:
				if len(stack) > 0 {
					f := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					l.RollbackJournal(f.mark)
					samePlacementState(t, l, f.snap)
				}
			}
		}
		// Unwind every outstanding mark, then all the way to the start.
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l.RollbackJournal(f.mark)
			samePlacementState(t, l, f.snap)
		}
		l.RollbackJournal(0)
		samePlacementState(t, l, initial)
		l.EndJournal()
		if err := l.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestJournalNesting(t *testing.T) {
	l := gridLayout(t, 4, 40, 8)
	l.BeginJournal()
	outer := l.JournalMark()
	_ = l.ShiftRight(l.Netlist.Insts[0])

	l.BeginJournal() // nested: must not clear the stream
	if l.JournalLen() == 0 {
		t.Fatal("nested BeginJournal cleared records")
	}
	_ = l.ShiftRight(l.Netlist.Insts[1])
	l.EndJournal() // inner end: records survive
	if l.JournalLen() != 2 {
		t.Fatalf("journal len = %d, want 2", l.JournalLen())
	}
	if !l.Journaling() {
		t.Fatal("outer journal closed by inner EndJournal")
	}

	snapBefore := l.Clone()
	l.RollbackJournal(outer)
	p0 := l.PlacementOf(l.Netlist.Insts[0])
	if p0.Site != 0 {
		t.Errorf("rollback did not restore inst 0: %+v", p0)
	}
	_ = snapBefore

	l.EndJournal()
	if l.Journaling() {
		t.Fatal("journal still open")
	}
	if l.JournalLen() != 0 {
		t.Fatal("EndJournal kept records")
	}
	// Mutations without a journal must not record.
	_ = l.ShiftRight(l.Netlist.Insts[2])
	if l.JournalLen() != 0 {
		t.Fatal("recorded without an open journal")
	}
}

func TestJournalCoversPlaceOverOwnFootprint(t *testing.T) {
	// Re-placing an instance overlapping its own old footprint is the
	// trickiest inverse: clear-new then fill-old must leave exactly the
	// old sites owned.
	l := gridLayout(t, 2, 30, 1)
	in := l.Netlist.Insts[0]
	if err := l.Place(in, 0, 10); err != nil {
		t.Fatal(err)
	}
	l.BeginJournal()
	defer l.EndJournal()
	snap := l.Clone()
	mark := l.JournalMark()
	if err := l.Place(in, 0, 11); err != nil { // overlaps old footprint
		t.Fatal(err)
	}
	l.RollbackJournal(mark)
	samePlacementState(t, l, snap)
}

func BenchmarkJournalRollback(b *testing.B) {
	l := gridLayout(b, 16, 200, 300)
	l.BeginJournal()
	defer l.EndJournal()
	insts := l.Netlist.Insts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := l.JournalMark()
		for _, in := range insts {
			_ = l.ShiftRight(in)
		}
		for _, in := range insts {
			_ = l.ShiftLeft(in)
		}
		l.RollbackJournal(mark)
	}
}

// TestDiffReplayRoundTrip covers the memoization primitives directly:
// DiffPlacements between two mutated clones of one design must replay via
// ApplyMoves onto a third clone bit-identically — including unplacements
// and swaps where transient overlap would fail a naive one-pass replay —
// and a journaled replay must roll back bit-identically too.
func TestDiffReplayRoundTrip(t *testing.T) {
	base := gridLayout(t, 6, 60, 20)
	insts := base.Netlist.Insts

	to := base.Clone()
	// A swap (g0 and g1 exchange sites: transient overlap during replay),
	// a relocation, an unplacement, and a shift.
	p0, p1 := to.PlacementOf(insts[0]), to.PlacementOf(insts[1])
	to.Unplace(to.Netlist.Insts[0])
	to.Unplace(to.Netlist.Insts[1])
	if err := to.Place(to.Netlist.Insts[0], p1.Row, p1.Site); err != nil {
		t.Fatal(err)
	}
	if err := to.Place(to.Netlist.Insts[1], p0.Row, p0.Site); err != nil {
		t.Fatal(err)
	}
	if err := to.Place(to.Netlist.Insts[5], 5, 40); err != nil {
		t.Fatal(err)
	}
	to.Unplace(to.Netlist.Insts[9])
	_ = to.ShiftRight(to.Netlist.Insts[12])

	diff := DiffPlacements(base, to)
	if len(diff) == 0 {
		t.Fatal("no moves diffed")
	}
	for i := 1; i < len(diff); i++ {
		if diff[i].Inst <= diff[i-1].Inst {
			t.Fatalf("diff not in canonical instance order: %+v", diff)
		}
	}

	l := base.Clone()
	l.BeginJournal()
	defer l.EndJournal()
	mark := l.JournalMark()
	if err := l.ApplyMoves(diff); err != nil {
		t.Fatal(err)
	}
	// samePlacementState checks the occupancy grid and placement table
	// exhaustively; Validate would reject the deliberately unplaced g9.
	samePlacementState(t, l, to)
	if DiffPlacements(l, to) != nil {
		t.Error("replayed state still differs from target")
	}

	l.RollbackJournal(mark)
	samePlacementState(t, l, base)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
