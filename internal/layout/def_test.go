package layout

import (
	"strings"
	"testing"

	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/verilog"
)

func placedToy(t *testing.T) *Layout {
	t.Helper()
	l := toyLayout(t)
	_ = l.Place(l.Netlist.Instance("u1"), 0, 4)
	_ = l.Place(l.Netlist.Instance("u2"), 1, 10)
	_ = l.Place(l.Netlist.Instance("u3"), 3, 20)
	l.Netlist.Instance("u3").Fixed = true
	l.SpreadPorts()
	return l
}

func TestDEFRoundTrip(t *testing.T) {
	l := placedToy(t)
	text := WriteDEFString(l)
	lib := opencell45.MustLoad()
	l2, err := ReadDEFString(text, lib)
	if err != nil {
		t.Fatalf("ReadDEF: %v\n%s", err, text)
	}
	if err := l2.Validate(); err != nil {
		t.Fatalf("round-tripped layout invalid: %v", err)
	}
	if err := l2.Netlist.Validate(); err != nil {
		t.Fatalf("round-tripped netlist invalid: %v", err)
	}
	if l2.NumRows != l.NumRows || l2.SitesPerRow != l.SitesPerRow {
		t.Errorf("core = %dx%d, want %dx%d", l2.NumRows, l2.SitesPerRow, l.NumRows, l.SitesPerRow)
	}
	for _, in := range l.Netlist.Insts {
		in2 := l2.Netlist.Instance(in.Name)
		if in2 == nil {
			t.Fatalf("instance %s lost", in.Name)
		}
		p, p2 := l.PlacementOf(in), l2.PlacementOf(in2)
		if p != p2 {
			t.Errorf("%s placement %+v vs %+v", in.Name, p2, p)
		}
		if in2.Fixed != in.Fixed {
			t.Errorf("%s fixed flag lost", in.Name)
		}
	}
	for name, pos := range l.PortPos {
		if l2.PortPos[name] != pos {
			t.Errorf("port %s at %v, want %v", name, l2.PortPos[name], pos)
		}
	}
	if !l2.Netlist.Net("clk").IsClock {
		t.Error("clock flag lost through DEF")
	}
	// Connectivity preserved.
	n1 := l2.Netlist.Net("n1")
	if n1 == nil || n1.Driver.Inst == nil || n1.Driver.Inst.Name != "u1" {
		t.Errorf("n1 driver = %v", n1.Driver)
	}
}

func TestDEFContainsSections(t *testing.T) {
	l := placedToy(t)
	text := WriteDEFString(l)
	for _, want := range []string{"DIEAREA", "ROW row_0", "PINS 4 ;", "COMPONENTS 3 ;", "NETS 6 ;", "END DESIGN"} {
		if !strings.Contains(text, want) {
			t.Errorf("DEF missing %q", want)
		}
	}
	if !strings.Contains(text, "+ FIXED (") {
		t.Error("fixed component not marked FIXED")
	}
}

func TestReadDEFErrors(t *testing.T) {
	lib := opencell45.MustLoad()
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no rows", "DESIGN d ;\nCOMPONENTS 0 ;\nEND COMPONENTS\nEND DESIGN\n"},
		{"bad component master", `
DESIGN d ;
ROW row_0 s 0 0 N DO 10 BY 1 STEP 190 0 ;
COMPONENTS 1 ;
- u1 NO_SUCH_CELL + UNPLACED ;
END COMPONENTS
END DESIGN
`},
		{"net with unknown component", `
DESIGN d ;
ROW row_0 s 0 0 N DO 10 BY 1 STEP 190 0 ;
NETS 1 ;
- n1 ( ghost A ) ;
END NETS
END DESIGN
`},
		{"overlapping placement", `
DESIGN d ;
ROW row_0 s 0 0 N DO 10 BY 1 STEP 190 0 ;
COMPONENTS 2 ;
- u1 INV_X1 + PLACED ( 0 0 ) N ;
- u2 INV_X1 + PLACED ( 190 0 ) N ;
END COMPONENTS
END DESIGN
`},
	}
	for _, c := range cases {
		if _, err := ReadDEFString(c.src, lib); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadDEFUnplacedComponents(t *testing.T) {
	lib := opencell45.MustLoad()
	src := `
VERSION 5.8 ;
DESIGN d ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 1900 1400 ) ;
ROW row_0 s 0 0 N DO 10 BY 1 STEP 190 0 ;
COMPONENTS 1 ;
- u1 INV_X1 + UNPLACED ;
END COMPONENTS
END DESIGN
`
	l, err := ReadDEFString(src, lib)
	if err != nil {
		t.Fatalf("ReadDEF: %v", err)
	}
	if l.PlacementOf(l.Netlist.Instance("u1")).Placed {
		t.Error("unplaced component placed")
	}
}

func TestDEFWithOffsetOrigin(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, err := verilog.ParseString(toySrc, lib)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := New(nl, 4, 40)
	l.Origin = l.SiteDBU(0, 0).Add(l.Origin) // zero; set explicit offset below
	l.Origin.X, l.Origin.Y = 950, 2800
	_ = l.Place(nl.Instance("u1"), 2, 7)
	_ = l.Place(nl.Instance("u2"), 0, 0)
	_ = l.Place(nl.Instance("u3"), 1, 1)
	l.SpreadPorts()
	l2, err := ReadDEFString(WriteDEFString(l), lib)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Origin != l.Origin {
		t.Errorf("origin = %v, want %v", l2.Origin, l.Origin)
	}
	p := l2.PlacementOf(l2.Netlist.Instance("u1"))
	if p.Row != 2 || p.Site != 7 {
		t.Errorf("u1 at (%d,%d), want (2,7)", p.Row, p.Site)
	}
}
