package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/tech"
)

// WriteDEF emits the layout as a DEF (Design Exchange Format) subset:
// DIEAREA, ROW statements, PINS with placed locations, COMPONENTS with
// placements, and NETS with full connectivity. ReadDEF round-trips it.
func WriteDEF(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	lib := l.Lib()
	nl := l.Netlist

	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n",
		nl.Name, lib.DBUPerMicron)
	core := l.CoreRect()
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n",
		core.Lo.X, core.Lo.Y, core.Hi.X, core.Hi.Y)
	for r := 0; r < l.NumRows; r++ {
		o := l.SiteDBU(r, 0)
		fmt.Fprintf(bw, "ROW row_%d %s %d %d N DO %d BY 1 STEP %d 0 ;\n",
			r, lib.Site.Name, o.X, o.Y, l.SitesPerRow, lib.Site.Width)
	}

	fmt.Fprintf(bw, "PINS %d ;\n", len(nl.Ports))
	for _, p := range nl.Ports {
		dir := "INPUT"
		if p.Dir == netlist.Out {
			dir = "OUTPUT"
		}
		pos, ok := l.PortPos[p.Name]
		if ok {
			fmt.Fprintf(bw, "- %s + NET %s + DIRECTION %s + PLACED ( %d %d ) N ;\n",
				p.Name, p.Name, dir, pos.X, pos.Y)
		} else {
			fmt.Fprintf(bw, "- %s + NET %s + DIRECTION %s ;\n", p.Name, p.Name, dir)
		}
	}
	bw.WriteString("END PINS\n")

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(nl.Insts))
	for _, in := range nl.Insts {
		p := l.PlacementOf(in)
		if p.Placed {
			pos := l.SiteDBU(p.Row, p.Site)
			status := "PLACED"
			if in.Fixed {
				status = "FIXED"
			}
			fmt.Fprintf(bw, "- %s %s + %s ( %d %d ) N ;\n",
				in.Name, in.Master.Name, status, pos.X, pos.Y)
		} else {
			fmt.Fprintf(bw, "- %s %s + UNPLACED ;\n", in.Name, in.Master.Name)
		}
	}
	bw.WriteString("END COMPONENTS\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(nl.Nets))
	for _, n := range nl.Nets {
		fmt.Fprintf(bw, "- %s", n.Name)
		writeTerm := func(t netlist.Terminal) {
			if t.IsPort() {
				fmt.Fprintf(bw, " ( PIN %s )", t.Port.Name)
			} else {
				fmt.Fprintf(bw, " ( %s %s )", t.Inst.Name, t.Pin)
			}
		}
		if n.HasDriver() {
			writeTerm(n.Driver)
		}
		for _, s := range n.Sinks {
			writeTerm(s)
		}
		if n.IsClock {
			bw.WriteString(" + USE CLOCK")
		}
		bw.WriteString(" ;\n")
	}
	bw.WriteString("END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// WriteDEFString renders the layout as DEF text.
func WriteDEFString(l *Layout) string {
	var b strings.Builder
	_ = WriteDEF(&b, l)
	return b.String()
}

// ReadDEF parses a DEF subset produced by WriteDEF (or equivalent) and
// reconstructs the layout and its netlist over the given library.
func ReadDEF(r io.Reader, lib *tech.Library) (*Layout, error) {
	p := &defParser{toks: defTokens(r), lib: lib}
	return p.parse()
}

// ReadDEFString is a convenience wrapper over ReadDEF.
func ReadDEFString(s string, lib *tech.Library) (*Layout, error) {
	return ReadDEF(strings.NewReader(s), lib)
}

type defParser struct {
	toks []string
	pos  int
	lib  *tech.Library

	nl        *netlist.Netlist
	rows      []geom.Point // origin of each row
	rowSites  int
	dieLo     geom.Point
	placeJobs []placeJob
	portJobs  []portJob
}

type placeJob struct {
	inst  string
	x, y  int64
	fixed bool
}

type portJob struct {
	name string
	x, y int64
}

func (p *defParser) parse() (*Layout, error) {
	design := "design"
	for !p.eof() {
		tok := p.next()
		switch tok {
		case "VERSION", "UNITS":
			p.skipTo(";")
		case "DESIGN":
			design = p.next()
			p.skipTo(";")
		case "DIEAREA":
			lo, err := p.parenPoint()
			if err != nil {
				return nil, err
			}
			if _, err := p.parenPoint(); err != nil {
				return nil, err
			}
			p.dieLo = lo
			p.skipTo(";")
		case "ROW":
			if err := p.parseRow(); err != nil {
				return nil, err
			}
		case "PINS":
			p.ensureNetlist(design)
			if err := p.parsePins(); err != nil {
				return nil, err
			}
		case "COMPONENTS":
			p.ensureNetlist(design)
			if err := p.parseComponents(); err != nil {
				return nil, err
			}
		case "NETS":
			p.ensureNetlist(design)
			if err := p.parseNets(); err != nil {
				return nil, err
			}
		case "END":
			p.next() // DESIGN / section name
		default:
			return nil, fmt.Errorf("def: unexpected token %q", tok)
		}
	}
	return p.build()
}

func (p *defParser) ensureNetlist(design string) {
	if p.nl == nil {
		p.nl = netlist.New(design, p.lib)
	}
}

func (p *defParser) parseRow() error {
	p.next() // row name
	p.next() // site name
	x, err := p.int64Tok()
	if err != nil {
		return err
	}
	y, err := p.int64Tok()
	if err != nil {
		return err
	}
	p.next() // orientation
	if tok := p.next(); tok != "DO" {
		return fmt.Errorf("def: ROW: expected DO, got %q", tok)
	}
	n, err := p.int64Tok()
	if err != nil {
		return err
	}
	p.skipTo(";")
	p.rows = append(p.rows, geom.Pt(x, y))
	p.rowSites = int(n)
	return nil
}

func (p *defParser) parsePins() error {
	p.skipTo(";")
	for {
		tok := p.next()
		if tok == "END" {
			p.next() // PINS
			return nil
		}
		if tok != "-" {
			return fmt.Errorf("def: PINS: expected '-', got %q", tok)
		}
		name := p.next()
		dir := netlist.In
		var placed bool
		var x, y int64
		for {
			t := p.next()
			if t == ";" {
				break
			}
			if t != "+" {
				continue
			}
			switch p.next() {
			case "NET":
				p.next()
			case "DIRECTION":
				if p.next() == "OUTPUT" {
					dir = netlist.Out
				}
			case "PLACED":
				pt, err := p.parenPoint()
				if err != nil {
					return err
				}
				x, y, placed = pt.X, pt.Y, true
				p.next() // orientation
			}
		}
		port, err := p.nl.AddPort(name, dir)
		if err != nil {
			return fmt.Errorf("def: %w", err)
		}
		net, err := p.nl.AddNet(name)
		if err != nil {
			return fmt.Errorf("def: %w", err)
		}
		if err := p.nl.ConnectPort(port, net); err != nil {
			return fmt.Errorf("def: %w", err)
		}
		if placed {
			p.portJobs = append(p.portJobs, portJob{name, x, y})
		}
	}
}

func (p *defParser) parseComponents() error {
	p.skipTo(";")
	for {
		tok := p.next()
		if tok == "END" {
			p.next() // COMPONENTS
			return nil
		}
		if tok != "-" {
			return fmt.Errorf("def: COMPONENTS: expected '-', got %q", tok)
		}
		name := p.next()
		master := p.next()
		if _, err := p.nl.AddInstance(name, master); err != nil {
			return fmt.Errorf("def: %w", err)
		}
		for {
			t := p.next()
			if t == ";" {
				break
			}
			if t != "+" {
				continue
			}
			switch p.next() {
			case "PLACED", "FIXED":
				fixed := p.toks[p.pos-1] == "FIXED"
				pt, err := p.parenPoint()
				if err != nil {
					return err
				}
				p.next() // orientation
				p.placeJobs = append(p.placeJobs, placeJob{name, pt.X, pt.Y, fixed})
			case "UNPLACED":
			}
		}
	}
}

func (p *defParser) parseNets() error {
	p.skipTo(";")
	for {
		tok := p.next()
		if tok == "END" {
			p.next() // NETS
			return nil
		}
		if tok != "-" {
			return fmt.Errorf("def: NETS: expected '-', got %q", tok)
		}
		name := p.next()
		net := p.nl.Net(name)
		if net == nil {
			var err error
			net, err = p.nl.AddNet(name)
			if err != nil {
				return fmt.Errorf("def: %w", err)
			}
		}
		for {
			t := p.next()
			if t == ";" {
				break
			}
			switch t {
			case "(":
				a := p.next()
				if a == "PIN" {
					p.next()       // port name (already connected via PINS)
					p.mustTok(")") //nolint:errcheck
					continue
				}
				pin := p.next()
				if err := p.mustTok(")"); err != nil {
					return err
				}
				in := p.nl.Instance(a)
				if in == nil {
					return fmt.Errorf("def: net %s references unknown component %q", name, a)
				}
				if err := p.nl.Connect(in, pin, net); err != nil {
					return fmt.Errorf("def: %w", err)
				}
			case "+":
				if p.next() == "USE" && p.next() == "CLOCK" {
					net.IsClock = true
				}
			}
		}
	}
}

func (p *defParser) build() (*Layout, error) {
	if p.nl == nil || len(p.rows) == 0 || p.rowSites == 0 {
		return nil, fmt.Errorf("def: missing ROW or sections")
	}
	l, err := New(p.nl, len(p.rows), p.rowSites)
	if err != nil {
		return nil, err
	}
	l.Origin = p.rows[0]
	site := p.lib.Site
	for _, j := range p.placeJobs {
		in := p.nl.Instance(j.inst)
		row := int((j.y - l.Origin.Y) / site.Height)
		s := int((j.x - l.Origin.X) / site.Width)
		if err := l.Place(in, row, s); err != nil {
			return nil, fmt.Errorf("def: %w", err)
		}
		in.Fixed = j.fixed
	}
	for _, j := range p.portJobs {
		l.PortPos[j.name] = geom.Pt(j.x, j.y)
	}
	return l, nil
}

func (p *defParser) parenPoint() (geom.Point, error) {
	if err := p.mustTok("("); err != nil {
		return geom.Point{}, err
	}
	x, err := p.int64Tok()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := p.int64Tok()
	if err != nil {
		return geom.Point{}, err
	}
	if err := p.mustTok(")"); err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}

func (p *defParser) next() string {
	if p.eof() {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *defParser) eof() bool { return p.pos >= len(p.toks) }

func (p *defParser) skipTo(tok string) {
	for !p.eof() && p.next() != tok {
	}
}

func (p *defParser) mustTok(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("def: expected %q, got %q", want, got)
	}
	return nil
}

func (p *defParser) int64Tok() (int64, error) {
	tok := p.next()
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("def: bad integer %q", tok)
	}
	return v, nil
}

// defTokens splits DEF text into tokens; parentheses and semicolons are
// their own tokens, '#' comments are skipped.
func defTokens(r io.Reader) []string {
	var toks []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "(", " ( ")
		line = strings.ReplaceAll(line, ")", " ) ")
		line = strings.ReplaceAll(line, ";", " ; ")
		toks = append(toks, strings.Fields(line)...)
	}
	return toks
}
