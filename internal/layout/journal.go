package layout

import (
	"fmt"

	"gdsiiguard/internal/netlist"
)

// The placement journal records every Place/Unplace (and therefore every
// ShiftLeft/ShiftRight, which go through Place) performed while journaling
// is active, so a failed optimization pass can be rolled back in O(moves)
// instead of snapshotting the whole layout with Clone — the deep copy of
// netlist + occupancy grid that used to dominate the ECO operator stage.
//
// Semantics:
//
//   - BeginJournal / EndJournal are depth-counted, so a caller holding a
//     journal across a whole evaluation (core.Scratch) can nest an operator
//     that journals its own passes (CellShift). Records are dropped only
//     when the outermost EndJournal closes the journal.
//   - JournalMark returns a position in the record stream; RollbackJournal
//     replays the inverses of everything after the mark, restoring the
//     occupancy grid and placement table bit-identically to their state at
//     the mark, and truncates the stream back to it.
//   - The journal covers placement state only. Netlist-level mutations
//     (Fixed flags, added instances) and NDR/blockage changes are outside
//     its scope and must be restored by the caller; AdoptPlacements while a
//     journal is open invalidates outstanding marks and clears the stream.
//
// journalRec is one recorded mutation: the instance's placement before and
// after the operation.
type journalRec struct {
	inst     *netlist.Instance
	old, new Placement
}

// BeginJournal starts (or nests into) placement journaling. The first
// Begin clears any stale records; nested Begins only increase the depth.
func (l *Layout) BeginJournal() {
	if l.journalDepth == 0 {
		l.journal = l.journal[:0]
	}
	l.journalDepth++
}

// EndJournal leaves one level of journaling. When the outermost level ends,
// the record stream is discarded (capacity is kept for reuse).
func (l *Layout) EndJournal() {
	if l.journalDepth == 0 {
		return
	}
	l.journalDepth--
	if l.journalDepth == 0 {
		l.journal = l.journal[:0]
	}
}

// Journaling reports whether a placement journal is currently open.
func (l *Layout) Journaling() bool { return l.journalDepth > 0 }

// JournalMark returns the current position in the journal record stream.
// Valid only while the journal stays open and no RollbackJournal truncates
// past it.
func (l *Layout) JournalMark() int { return len(l.journal) }

// JournalLen returns the number of recorded mutations (= JournalMark).
func (l *Layout) JournalLen() int { return len(l.journal) }

// RollbackJournal undoes every mutation recorded after mark, in reverse
// order, restoring the occupancy grid and placement table exactly as they
// were when the mark was taken, then truncates the stream to the mark.
func (l *Layout) RollbackJournal(mark int) {
	if mark < 0 {
		mark = 0
	}
	for i := len(l.journal) - 1; i >= mark; i-- {
		r := l.journal[i]
		if r.new.Placed {
			l.clearSites(r.inst, r.new)
		}
		if r.old.Placed {
			l.fillSites(r.inst, r.old)
		}
		l.placements[r.inst.ID] = r.old
	}
	l.journal = l.journal[:mark]
}

// InstMove is one entry of a placement diff: the instance (by ID) and the
// placement it holds in the target state. A diff is replayed with
// ApplyMoves; because Place/Unplace record into any open journal, a replay
// remains fully rollback-able (RollbackJournal restores the pre-replay
// state bit-identically).
type InstMove struct {
	Inst int
	To   Placement
}

// DiffPlacements returns the moves that transform from's placement state
// into to's. Both layouts must be clones of the same design (identical
// instance sets in identical order — Clone preserves IDs). The diff
// contains exactly the instances whose placements differ, in instance-ID
// order, so it is a canonical, deterministic encoding of "what the
// operator did" suitable for memoization.
func DiffPlacements(from, to *Layout) []InstMove {
	from.grow()
	to.grow()
	n := len(from.placements)
	if m := len(to.placements); m < n {
		n = m
	}
	var moves []InstMove
	for i := 0; i < n; i++ {
		if from.placements[i] != to.placements[i] {
			moves = append(moves, InstMove{Inst: i, To: to.placements[i]})
		}
	}
	return moves
}

// ApplyMoves replays a placement diff produced by DiffPlacements onto l,
// which must currently be in the diff's "from" state. Every changed
// instance is unplaced first and then placed at its target, so transient
// overlaps between moving cells cannot fail the replay (an instance that
// does not move can never occupy another's target, because the target
// state is a valid placement). All mutations go through Place/Unplace and
// are therefore journaled.
func (l *Layout) ApplyMoves(moves []InstMove) error {
	l.grow()
	for _, m := range moves {
		if m.Inst < 0 || m.Inst >= len(l.Netlist.Insts) {
			return fmt.Errorf("layout: replay move for unknown instance %d", m.Inst)
		}
		cur := l.placements[m.Inst]
		if cur == m.To || !cur.Placed {
			continue
		}
		l.Unplace(l.Netlist.Insts[m.Inst])
	}
	for _, m := range moves {
		if !m.To.Placed || l.placements[m.Inst] == m.To {
			continue
		}
		if err := l.Place(l.Netlist.Insts[m.Inst], m.To.Row, m.To.Site); err != nil {
			return fmt.Errorf("layout: replay: %w", err)
		}
	}
	return nil
}

// record appends one mutation to the journal when journaling is active.
func (l *Layout) record(in *netlist.Instance, old, new Placement) {
	if l.journalDepth > 0 {
		l.journal = append(l.journal, journalRec{inst: in, old: old, new: new})
	}
}

// clearSites frees the sites of placement p that are owned by in.
func (l *Layout) clearSites(in *netlist.Instance, p Placement) {
	base := p.Row * l.SitesPerRow
	id := int32(in.ID + 1)
	for s := p.Site; s < p.Site+in.Master.WidthSites; s++ {
		if l.occ[base+s] == id {
			l.occ[base+s] = 0
		}
	}
}

// fillSites marks the sites of placement p as owned by in.
func (l *Layout) fillSites(in *netlist.Instance, p Placement) {
	base := p.Row * l.SitesPerRow
	id := int32(in.ID + 1)
	for s := p.Site; s < p.Site+in.Master.WidthSites; s++ {
		l.occ[base+s] = id
	}
}
