// Package layout is the physical design database: a netlist bound to a core
// of placement rows and sites, with a site-level occupancy grid, port
// locations, placement blockages, and the active non-default routing rule.
//
// The occupancy grid is the single source of truth that both the anti-Trojan
// operators (Cell Shift walks empty-site runs) and the security metric
// (exploitable regions are connected components of empty sites) read, so the
// two can never disagree about what is free.
package layout

import (
	"fmt"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/tech"
)

// Placement is the location of one instance: row index and starting site.
type Placement struct {
	Row, Site int
	Placed    bool
}

// Blockage is a partial placement blockage over a site-coordinate region
// [Row0,Row1) × [Site0,Site1) with an occupancy upper bound. The LDA
// operator uses blockages to steer local density.
type Blockage struct {
	Row0, Row1, Site0, Site1 int
	// MaxDensity is the allowed occupied fraction in the region, 0..1.
	MaxDensity float64
}

// SiteRun is a maximal run of contiguous free sites within one row.
type SiteRun struct {
	Row, Start, Len int
}

// Layout binds a netlist to a placed core.
type Layout struct {
	Netlist *netlist.Netlist
	// NumRows and SitesPerRow define the core: NumRows rows of
	// SitesPerRow sites each.
	NumRows, SitesPerRow int
	// Origin is the DBU location of row 0, site 0 (core lower-left).
	Origin geom.Point
	// PortPos locates each top-level port on the die boundary (DBU).
	PortPos map[string]geom.Point
	// Blockages are the active partial placement blockages.
	Blockages []Blockage
	// NDR is the non-default routing rule currently applied (the Routing
	// Width Scaling state); zero value means default widths.
	NDR tech.NDR

	placements []Placement // indexed by instance ID
	occ        []int32     // NumRows × SitesPerRow; 0 = free, else instID+1

	// Placement journal (see journal.go). Depth-counted so an evaluation-
	// scope journal can nest the operator's per-pass journaling.
	journal      []journalRec
	journalDepth int
}

// New creates an empty layout of the given core size for the netlist.
func New(nl *netlist.Netlist, numRows, sitesPerRow int) (*Layout, error) {
	if numRows <= 0 || sitesPerRow <= 0 {
		return nil, fmt.Errorf("layout: non-positive core %dx%d", numRows, sitesPerRow)
	}
	l := &Layout{
		Netlist:     nl,
		NumRows:     numRows,
		SitesPerRow: sitesPerRow,
		PortPos:     make(map[string]geom.Point),
		NDR:         tech.DefaultNDR(nl.Lib.NumLayers()),
		placements:  make([]Placement, len(nl.Insts)),
		occ:         make([]int32, numRows*sitesPerRow),
	}
	return l, nil
}

// Lib returns the technology library.
func (l *Layout) Lib() *tech.Library { return l.Netlist.Lib }

// TotalSites returns the number of placement sites in the core.
func (l *Layout) TotalSites() int { return l.NumRows * l.SitesPerRow }

// CoreRect returns the core bounding box in DBU.
func (l *Layout) CoreRect() geom.Rect {
	w := int64(l.SitesPerRow) * l.Lib().Site.Width
	h := int64(l.NumRows) * l.Lib().Site.Height
	return geom.Rect{Lo: l.Origin, Hi: l.Origin.Add(geom.Pt(w, h))}
}

// grow extends the placement slice when instances were added to the netlist
// after layout creation (fill-based defenses do this).
func (l *Layout) grow() {
	for len(l.placements) < len(l.Netlist.Insts) {
		l.placements = append(l.placements, Placement{})
	}
}

// PlacementOf returns the placement of an instance.
func (l *Layout) PlacementOf(in *netlist.Instance) Placement {
	l.grow()
	return l.placements[in.ID]
}

// At returns the instance occupying (row, site), or nil if free.
func (l *Layout) At(row, site int) *netlist.Instance {
	if row < 0 || row >= l.NumRows || site < 0 || site >= l.SitesPerRow {
		return nil
	}
	id := l.occ[row*l.SitesPerRow+site]
	if id == 0 {
		return nil
	}
	return l.Netlist.Insts[id-1]
}

// Free reports whether (row, site) is inside the core and unoccupied.
func (l *Layout) Free(row, site int) bool {
	if row < 0 || row >= l.NumRows || site < 0 || site >= l.SitesPerRow {
		return false
	}
	return l.occ[row*l.SitesPerRow+site] == 0
}

// CanPlace reports whether the instance fits at (row, site) without
// overlapping other cells or leaving the core.
func (l *Layout) CanPlace(in *netlist.Instance, row, site int) bool {
	w := in.Master.WidthSites
	if row < 0 || row >= l.NumRows || site < 0 || site+w > l.SitesPerRow {
		return false
	}
	base := row * l.SitesPerRow
	for s := site; s < site+w; s++ {
		if occ := l.occ[base+s]; occ != 0 && occ != int32(in.ID+1) {
			return false
		}
	}
	return true
}

// Place puts the instance at (row, site), un-placing it first if needed.
func (l *Layout) Place(in *netlist.Instance, row, site int) error {
	l.grow()
	if !l.canPlaceIgnoringSelf(in, row, site) {
		return fmt.Errorf("layout: cannot place %s (%d sites) at row %d site %d",
			in.Name, in.Master.WidthSites, row, site)
	}
	old := l.placements[in.ID]
	np := Placement{Row: row, Site: site, Placed: true}
	l.record(in, old, np)
	if old.Placed {
		l.clearSites(in, old)
	}
	l.fillSites(in, np)
	l.placements[in.ID] = np
	return nil
}

func (l *Layout) canPlaceIgnoringSelf(in *netlist.Instance, row, site int) bool {
	w := in.Master.WidthSites
	if row < 0 || row >= l.NumRows || site < 0 || site+w > l.SitesPerRow {
		return false
	}
	base := row * l.SitesPerRow
	self := int32(in.ID + 1)
	for s := site; s < site+w; s++ {
		if occ := l.occ[base+s]; occ != 0 && occ != self {
			return false
		}
	}
	return true
}

// Unplace removes the instance from the grid (no-op if unplaced).
func (l *Layout) Unplace(in *netlist.Instance) {
	l.grow()
	p := l.placements[in.ID]
	if !p.Placed {
		return
	}
	l.record(in, p, Placement{})
	l.clearSites(in, p)
	l.placements[in.ID] = Placement{}
}

// ShiftLeft moves the instance one site left within its row. It fails if the
// cell is unplaced, fixed, at the row edge, or blocked by a neighbor.
func (l *Layout) ShiftLeft(in *netlist.Instance) error {
	p := l.PlacementOf(in)
	if !p.Placed {
		return fmt.Errorf("layout: %s is not placed", in.Name)
	}
	if in.Fixed {
		return fmt.Errorf("layout: %s is fixed", in.Name)
	}
	if p.Site == 0 || !l.Free(p.Row, p.Site-1) {
		return fmt.Errorf("layout: %s cannot shift left", in.Name)
	}
	return l.Place(in, p.Row, p.Site-1)
}

// ShiftRight moves the instance one site right within its row.
func (l *Layout) ShiftRight(in *netlist.Instance) error {
	p := l.PlacementOf(in)
	if !p.Placed {
		return fmt.Errorf("layout: %s is not placed", in.Name)
	}
	if in.Fixed {
		return fmt.Errorf("layout: %s is fixed", in.Name)
	}
	end := p.Site + in.Master.WidthSites
	if end >= l.SitesPerRow || !l.Free(p.Row, end) {
		return fmt.Errorf("layout: %s cannot shift right", in.Name)
	}
	return l.Place(in, p.Row, p.Site+1)
}

// FreeRuns returns the maximal runs of free sites in the given row, in
// left-to-right order.
func (l *Layout) FreeRuns(row int) []SiteRun {
	return l.AppendFreeRuns(row, nil)
}

// AppendFreeRuns appends the maximal runs of free sites in the given row to
// buf (left-to-right order) and returns the extended slice. Passing a
// reused buffer makes the scan allocation-free — the ECO operators call
// this once per row per pass.
func (l *Layout) AppendFreeRuns(row int, buf []SiteRun) []SiteRun {
	base := row * l.SitesPerRow
	start := -1
	for s := 0; s < l.SitesPerRow; s++ {
		if l.occ[base+s] == 0 {
			if start < 0 {
				start = s
			}
		} else if start >= 0 {
			buf = append(buf, SiteRun{Row: row, Start: start, Len: s - start})
			start = -1
		}
	}
	if start >= 0 {
		buf = append(buf, SiteRun{Row: row, Start: start, Len: l.SitesPerRow - start})
	}
	return buf
}

// RowCells returns the instances in a row in left-to-right order.
func (l *Layout) RowCells(row int) []*netlist.Instance {
	return l.AppendRowCells(row, nil)
}

// AppendRowCells appends the row's instances (left-to-right) to buf and
// returns the extended slice; a reused buffer makes the scan
// allocation-free, like AppendFreeRuns.
func (l *Layout) AppendRowCells(row int, buf []*netlist.Instance) []*netlist.Instance {
	base := row * l.SitesPerRow
	var prev int32
	for s := 0; s < l.SitesPerRow; s++ {
		id := l.occ[base+s]
		if id != 0 && id != prev {
			buf = append(buf, l.Netlist.Insts[id-1])
		}
		prev = id
	}
	return buf
}

// FreeSites returns the total number of unoccupied sites in the core.
func (l *Layout) FreeSites() int {
	n := 0
	for _, v := range l.occ {
		if v == 0 {
			n++
		}
	}
	return n
}

// Utilization returns the occupied fraction of the core.
func (l *Layout) Utilization() float64 {
	return 1 - float64(l.FreeSites())/float64(l.TotalSites())
}

// RegionDensity returns the occupied fraction of the site-coordinate region
// [row0,row1) × [site0,site1), clipped to the core.
func (l *Layout) RegionDensity(row0, row1, site0, site1 int) float64 {
	row0, row1 = clamp(row0, 0, l.NumRows), clamp(row1, 0, l.NumRows)
	site0, site1 = clamp(site0, 0, l.SitesPerRow), clamp(site1, 0, l.SitesPerRow)
	total, used := 0, 0
	for r := row0; r < row1; r++ {
		base := r * l.SitesPerRow
		for s := site0; s < site1; s++ {
			total++
			if l.occ[base+s] != 0 {
				used++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// SiteDBU returns the DBU coordinates of the lower-left corner of
// (row, site).
func (l *Layout) SiteDBU(row, site int) geom.Point {
	return geom.Pt(
		l.Origin.X+int64(site)*l.Lib().Site.Width,
		l.Origin.Y+int64(row)*l.Lib().Site.Height,
	)
}

// CellRect returns the DBU bounding box of a placed instance
// (zero Rect when unplaced).
func (l *Layout) CellRect(in *netlist.Instance) geom.Rect {
	p := l.PlacementOf(in)
	if !p.Placed {
		return geom.Rect{}
	}
	lo := l.SiteDBU(p.Row, p.Site)
	return geom.Rect{
		Lo: lo,
		Hi: lo.Add(geom.Pt(int64(in.Master.WidthSites)*l.Lib().Site.Width, l.Lib().Site.Height)),
	}
}

// InstCenter returns the DBU center of a placed instance.
func (l *Layout) InstCenter(in *netlist.Instance) geom.Point {
	return l.CellRect(in).Center()
}

// TermPos returns the DBU position of a net terminal: the owning cell's
// center for instance pins, the port location for ports. ok is false when
// the terminal's instance is unplaced or the port has no location.
func (l *Layout) TermPos(t netlist.Terminal) (geom.Point, bool) {
	if t.IsPort() {
		p, ok := l.PortPos[t.Port.Name]
		return p, ok
	}
	if !l.PlacementOf(t.Inst).Placed {
		return geom.Point{}, false
	}
	return l.InstCenter(t.Inst), true
}

// NetTermPoints returns the DBU positions of all located terminals of a net.
func (l *Layout) NetTermPoints(n *netlist.Net) []geom.Point {
	pts := make([]geom.Point, 0, n.NumTerms())
	if n.HasDriver() {
		if p, ok := l.TermPos(n.Driver); ok {
			pts = append(pts, p)
		}
	}
	for _, s := range n.Sinks {
		if p, ok := l.TermPos(s); ok {
			pts = append(pts, p)
		}
	}
	return pts
}

// NetHPWL returns the half-perimeter wirelength of a net in DBU.
func (l *Layout) NetHPWL(n *netlist.Net) int64 {
	return geom.HPWL(l.NetTermPoints(n))
}

// TotalHPWL returns the sum of HPWL over all signal nets in DBU.
func (l *Layout) TotalHPWL() int64 {
	var total int64
	for _, n := range l.Netlist.Nets {
		total += l.NetHPWL(n)
	}
	return total
}

// SpreadPorts assigns every port a location evenly spaced along the die
// boundary, deterministic in port order.
func (l *Layout) SpreadPorts() {
	core := l.CoreRect()
	n := len(l.Netlist.Ports)
	if n == 0 {
		return
	}
	perim := 2 * (core.W() + core.H())
	for i, p := range l.Netlist.Ports {
		d := perim * int64(i) / int64(n)
		var pt geom.Point
		switch {
		case d < core.W():
			pt = geom.Pt(core.Lo.X+d, core.Lo.Y)
		case d < core.W()+core.H():
			pt = geom.Pt(core.Hi.X, core.Lo.Y+(d-core.W()))
		case d < 2*core.W()+core.H():
			pt = geom.Pt(core.Hi.X-(d-core.W()-core.H()), core.Hi.Y)
		default:
			pt = geom.Pt(core.Lo.X, core.Hi.Y-(d-2*core.W()-core.H()))
		}
		l.PortPos[p.Name] = pt
	}
}

// ClearBlockages removes all placement blockages (LDA does this each
// iteration).
func (l *Layout) ClearBlockages() { l.Blockages = l.Blockages[:0] }

// AddBlockage registers a partial placement blockage; coordinates are
// clipped to the core.
func (l *Layout) AddBlockage(b Blockage) {
	b.Row0, b.Row1 = clamp(b.Row0, 0, l.NumRows), clamp(b.Row1, 0, l.NumRows)
	b.Site0, b.Site1 = clamp(b.Site0, 0, l.SitesPerRow), clamp(b.Site1, 0, l.SitesPerRow)
	l.Blockages = append(l.Blockages, b)
}

// BlockageAt returns the lowest MaxDensity of any blockage covering
// (row, site), or 1.0 if uncovered.
func (l *Layout) BlockageAt(row, site int) float64 {
	d := 1.0
	for _, b := range l.Blockages {
		if row >= b.Row0 && row < b.Row1 && site >= b.Site0 && site < b.Site1 {
			if b.MaxDensity < d {
				d = b.MaxDensity
			}
		}
	}
	return d
}

// Clone deep-copies the layout together with its netlist, for isolated
// evaluation of one flow parameter configuration.
func (l *Layout) Clone() *Layout {
	nl := l.Netlist.Clone()
	out := &Layout{
		Netlist:     nl,
		NumRows:     l.NumRows,
		SitesPerRow: l.SitesPerRow,
		Origin:      l.Origin,
		PortPos:     make(map[string]geom.Point, len(l.PortPos)),
		Blockages:   append([]Blockage(nil), l.Blockages...),
		NDR:         l.NDR.Clone(),
		placements:  append([]Placement(nil), l.placements...),
		occ:         append([]int32(nil), l.occ...),
	}
	for k, v := range l.PortPos {
		out.PortPos[k] = v
	}
	return out
}

// Validate checks grid/placement consistency: every placed instance's sites
// are owned by it, every occupied site belongs to a placed instance, and
// every functional instance is placed.
func (l *Layout) Validate() error {
	l.grow()
	for _, in := range l.Netlist.Insts {
		p := l.placements[in.ID]
		if !p.Placed {
			if in.Master.IsFunctional() {
				return fmt.Errorf("layout: functional instance %s unplaced", in.Name)
			}
			continue
		}
		if p.Row < 0 || p.Row >= l.NumRows || p.Site < 0 ||
			p.Site+in.Master.WidthSites > l.SitesPerRow {
			return fmt.Errorf("layout: %s out of core at (%d,%d)", in.Name, p.Row, p.Site)
		}
		base := p.Row * l.SitesPerRow
		for s := p.Site; s < p.Site+in.Master.WidthSites; s++ {
			if l.occ[base+s] != int32(in.ID+1) {
				return fmt.Errorf("layout: site (%d,%d) not owned by %s", p.Row, s, in.Name)
			}
		}
	}
	counts := make(map[int32]int)
	for _, v := range l.occ {
		if v != 0 {
			counts[v]++
		}
	}
	for id, n := range counts {
		in := l.Netlist.Insts[id-1]
		if !l.placements[in.ID].Placed {
			return fmt.Errorf("layout: unplaced instance %s owns %d sites", in.Name, n)
		}
		if n != in.Master.WidthSites {
			return fmt.Errorf("layout: %s owns %d sites, master is %d wide", in.Name, n, in.Master.WidthSites)
		}
	}
	return nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AdoptPlacements copies the placement state (occupancy grid, placement
// table, blockages and NDR are left untouched) from a snapshot layout with
// an identically-shaped core and an identically-ordered netlist — typically
// one produced by Clone of this layout. Instance identity is matched by ID.
// A wholesale copy cannot be expressed as journal records, so any open
// journal has its stream cleared: outstanding marks become invalid.
func (l *Layout) AdoptPlacements(src *Layout) error {
	if l.NumRows != src.NumRows || l.SitesPerRow != src.SitesPerRow {
		return fmt.Errorf("layout: core shape mismatch %dx%d vs %dx%d",
			l.NumRows, l.SitesPerRow, src.NumRows, src.SitesPerRow)
	}
	if len(l.Netlist.Insts) != len(src.Netlist.Insts) {
		return fmt.Errorf("layout: instance count mismatch %d vs %d",
			len(l.Netlist.Insts), len(src.Netlist.Insts))
	}
	l.grow()
	src.grow()
	copy(l.occ, src.occ)
	copy(l.placements, src.placements)
	l.journal = l.journal[:0]
	return nil
}
