// Package opencell45 provides the embedded 45nm standard-cell library used
// throughout the repository: a synthetic stand-in for the Nangate/FreePDK45
// Open Cell Library the paper uses, with the same site geometry
// (0.19µm × 1.4µm), ten routing metal layers (K = 10), and NLDM-style
// linear timing/power parameters at 45nm magnitudes.
//
// The canonical definition is the compact table in this file; LEFText and
// LibertyText render it through the real lef/liberty writers, and Load
// parses those texts back through the real parsers, so the full LEF/Liberty
// I/O path is exercised on every load.
package opencell45

import (
	"fmt"
	"strings"
	"sync"

	"gdsiiguard/internal/lef"
	"gdsiiguard/internal/liberty"
	"gdsiiguard/internal/tech"
)

// LibraryName is the name of the embedded library.
const LibraryName = "OpenCell45"

// NumLayers is K, the routing metal layer count (matches the paper's K=10).
const NumLayers = 10

type combSpec struct {
	name      string
	width     int      // sites
	inputs    []string // input pin names
	outputs   []string // output pin names
	intrinsic float64  // ps
	res       float64  // kΩ
	inCap     float64  // fF per input
	maxCap    float64  // fF
	leak      float64  // nW
	energy    float64  // fJ per toggle
}

type seqSpec struct {
	name   string
	width  int
	inputs []string // data inputs (D first)
	clkToQ float64
	res    float64
	setup  float64
	dCap   float64
	ckCap  float64
	maxCap float64
	leak   float64
	energy float64
}

// The combinational cell table. Drive-strength families share a prefix;
// stronger variants have lower drive resistance and higher caps/leakage.
var combCells = []combSpec{
	{"INV_X1", 2, []string{"A"}, []string{"ZN"}, 8, 6.0, 1.0, 40, 8, 0.5},
	{"INV_X2", 3, []string{"A"}, []string{"ZN"}, 8, 3.0, 2.0, 80, 16, 1.0},
	{"INV_X4", 4, []string{"A"}, []string{"ZN"}, 8, 1.5, 4.0, 160, 32, 2.0},
	{"INV_X8", 6, []string{"A"}, []string{"ZN"}, 8, 0.75, 8.0, 320, 64, 4.0},
	{"BUF_X1", 3, []string{"A"}, []string{"Z"}, 16, 5.0, 1.0, 45, 12, 0.8},
	{"BUF_X2", 4, []string{"A"}, []string{"Z"}, 16, 2.5, 1.8, 90, 24, 1.6},
	{"BUF_X4", 5, []string{"A"}, []string{"Z"}, 16, 1.25, 3.6, 180, 48, 3.2},
	{"CLKBUF_X1", 3, []string{"A"}, []string{"Z"}, 14, 4.5, 1.2, 50, 14, 0.9},
	{"CLKBUF_X2", 4, []string{"A"}, []string{"Z"}, 14, 2.3, 2.2, 100, 28, 1.8},
	{"CLKBUF_X3", 5, []string{"A"}, []string{"Z"}, 14, 1.5, 3.4, 150, 42, 2.7},
	{"NAND2_X1", 3, []string{"A1", "A2"}, []string{"ZN"}, 12, 5.0, 1.6, 42, 12, 0.9},
	{"NAND2_X2", 4, []string{"A1", "A2"}, []string{"ZN"}, 12, 2.5, 3.2, 84, 24, 1.8},
	{"NAND3_X1", 4, []string{"A1", "A2", "A3"}, []string{"ZN"}, 16, 5.4, 1.7, 42, 16, 1.2},
	{"NAND4_X1", 5, []string{"A1", "A2", "A3", "A4"}, []string{"ZN"}, 20, 5.8, 1.8, 42, 20, 1.5},
	{"NOR2_X1", 3, []string{"A1", "A2"}, []string{"ZN"}, 14, 5.6, 1.6, 40, 12, 0.9},
	{"NOR2_X2", 4, []string{"A1", "A2"}, []string{"ZN"}, 14, 2.8, 3.2, 80, 24, 1.8},
	{"NOR3_X1", 4, []string{"A1", "A2", "A3"}, []string{"ZN"}, 19, 6.2, 1.7, 40, 16, 1.2},
	{"AND2_X1", 4, []string{"A1", "A2"}, []string{"ZN"}, 20, 5.0, 1.4, 44, 14, 1.1},
	{"OR2_X1", 4, []string{"A1", "A2"}, []string{"ZN"}, 21, 5.2, 1.4, 44, 14, 1.1},
	{"XOR2_X1", 5, []string{"A", "B"}, []string{"Z"}, 26, 5.5, 2.2, 40, 20, 1.8},
	{"XNOR2_X1", 5, []string{"A", "B"}, []string{"ZN"}, 26, 5.5, 2.2, 40, 20, 1.8},
	{"AOI21_X1", 4, []string{"A", "B1", "B2"}, []string{"ZN"}, 18, 5.8, 1.7, 40, 15, 1.2},
	{"AOI22_X1", 5, []string{"A1", "A2", "B1", "B2"}, []string{"ZN"}, 20, 6.0, 1.8, 40, 18, 1.4},
	{"OAI21_X1", 4, []string{"A", "B1", "B2"}, []string{"ZN"}, 18, 5.8, 1.7, 40, 15, 1.2},
	{"OAI22_X1", 5, []string{"A1", "A2", "B1", "B2"}, []string{"ZN"}, 20, 6.0, 1.8, 40, 18, 1.4},
	{"MUX2_X1", 6, []string{"A", "B", "S"}, []string{"Z"}, 24, 5.2, 1.9, 44, 22, 1.7},
	{"HA_X1", 7, []string{"A", "B"}, []string{"CO", "S"}, 28, 5.6, 2.4, 40, 26, 2.2},
	{"FA_X1", 9, []string{"A", "B", "CI"}, []string{"CO", "S"}, 32, 5.8, 2.6, 40, 34, 2.8},
}

var seqCells = []seqSpec{
	{"DFF_X1", 9, []string{"D"}, 95, 3.5, 35, 1.8, 1.0, 55, 45, 3.0},
	{"DFF_X2", 10, []string{"D"}, 92, 1.8, 35, 3.4, 1.4, 110, 86, 5.6},
	{"DFFR_X1", 11, []string{"D", "RN"}, 98, 3.6, 36, 1.8, 1.0, 55, 52, 3.3},
	{"SDFF_X1", 12, []string{"D", "SI", "SE"}, 102, 3.7, 38, 1.9, 1.0, 55, 60, 3.8},
}

// FillerWidths are the available filler-cell widths in sites.
var FillerWidths = []int{1, 2, 4, 8, 16, 32}

// layer stack: pitch/width/spacing in µm, R in kΩ/µm, C in fF/µm.
var layerSpecs = []struct {
	pitch, width, spacing float64
	r, c                  float64
}{
	{0.19, 0.07, 0.065, 0.00380, 0.180}, // metal1
	{0.19, 0.07, 0.070, 0.00380, 0.180}, // metal2
	{0.19, 0.07, 0.070, 0.00250, 0.175}, // metal3
	{0.28, 0.14, 0.140, 0.00210, 0.170}, // metal4
	{0.28, 0.14, 0.140, 0.00210, 0.170}, // metal5
	{0.28, 0.14, 0.140, 0.00210, 0.170}, // metal6
	{0.80, 0.40, 0.400, 0.00110, 0.160}, // metal7
	{0.80, 0.40, 0.400, 0.00110, 0.160}, // metal8
	{1.60, 0.80, 0.800, 0.00038, 0.150}, // metal9
	{1.60, 0.80, 0.800, 0.00038, 0.150}, // metal10
}

// build constructs the library directly from the tables (the canonical
// in-memory definition).
func build() *tech.Library {
	lib := tech.NewLibrary(LibraryName)
	lib.DBUPerMicron = 1000
	lib.Vdd = 1.1
	lib.Site = tech.Site{Name: "FreePDK45_38x28", Width: 190, Height: 1400}

	for i, s := range layerSpecs {
		dir := tech.Horizontal
		if i%2 == 1 {
			dir = tech.Vertical
		}
		lib.Layers = append(lib.Layers, tech.Layer{
			Name:    fmt.Sprintf("metal%d", i+1),
			Index:   i + 1,
			Dir:     dir,
			Pitch:   lib.MicronsToDBU(s.pitch),
			Width:   lib.MicronsToDBU(s.width),
			Spacing: lib.MicronsToDBU(s.spacing),
			RPerUM:  s.r,
			CPerUM:  s.c,
		})
	}

	for _, s := range combCells {
		c := &tech.Cell{
			Name:           s.name,
			Class:          tech.Comb,
			WidthSites:     s.width,
			Leakage:        s.leak,
			InternalEnergy: s.energy,
		}
		for _, in := range s.inputs {
			c.Pins = append(c.Pins, tech.Pin{Name: in, Dir: tech.Input, Cap: s.inCap})
		}
		for _, out := range s.outputs {
			c.Pins = append(c.Pins, tech.Pin{Name: out, Dir: tech.Output, MaxCap: s.maxCap})
		}
		for _, out := range s.outputs {
			for i, in := range s.inputs {
				// Later inputs are slightly slower, as in real libraries.
				c.Arcs = append(c.Arcs, tech.TimingArc{
					From:      in,
					To:        out,
					Intrinsic: s.intrinsic + float64(i),
					DriveRes:  s.res,
				})
			}
		}
		lib.AddCell(c)
	}

	for _, s := range seqCells {
		c := &tech.Cell{
			Name:           s.name,
			Class:          tech.Seq,
			WidthSites:     s.width,
			Leakage:        s.leak,
			InternalEnergy: s.energy,
			ClkToQ:         s.clkToQ,
			Setup:          s.setup,
		}
		for _, in := range s.inputs {
			c.Pins = append(c.Pins, tech.Pin{Name: in, Dir: tech.Input, Cap: s.dCap})
		}
		c.Pins = append(c.Pins, tech.Pin{Name: "CK", Dir: tech.Input, Cap: s.ckCap, IsClock: true})
		c.Pins = append(c.Pins, tech.Pin{Name: "Q", Dir: tech.Output, MaxCap: s.maxCap})
		c.Arcs = append(c.Arcs, tech.TimingArc{From: "CK", To: "Q", Intrinsic: s.clkToQ, DriveRes: s.res})
		lib.AddCell(c)
	}

	for _, w := range FillerWidths {
		lib.AddCell(&tech.Cell{
			Name:       fmt.Sprintf("FILLCELL_X%d", w),
			Class:      tech.Filler,
			WidthSites: w,
			Leakage:    0.4 * float64(w),
		})
	}
	lib.AddCell(&tech.Cell{Name: "TAPCELL_X1", Class: tech.Tap, WidthSites: 2, Leakage: 0.2})

	return lib
}

// LEFText renders the embedded library's LEF view.
func LEFText() string { return lef.WriteString(build()) }

// LibertyText renders the embedded library's Liberty view.
func LibertyText() string { return liberty.WriteString(build()) }

var (
	once   sync.Once
	loaded *tech.Library
	loadEr error
)

// Load returns the embedded OpenCell45 library, parsed from its own
// LEF/Liberty text through the real parsers. The returned library is shared
// and must be treated as read-only; it is validated on first load.
func Load() (*tech.Library, error) {
	once.Do(func() {
		canonical := build()
		lib, err := lef.Parse(strings.NewReader(lef.WriteString(canonical)))
		if err != nil {
			loadEr = fmt.Errorf("opencell45: LEF self-parse: %w", err)
			return
		}
		if err := liberty.Merge(strings.NewReader(liberty.WriteString(canonical)), lib); err != nil {
			loadEr = fmt.Errorf("opencell45: Liberty self-merge: %w", err)
			return
		}
		if err := lib.Validate(); err != nil {
			loadEr = fmt.Errorf("opencell45: %w", err)
			return
		}
		loaded = lib
	})
	return loaded, loadEr
}

// MustLoad is Load panicking on error; the embedded library is static, so a
// failure is a programming bug.
func MustLoad() *tech.Library {
	lib, err := Load()
	if err != nil {
		panic(err)
	}
	return lib
}
