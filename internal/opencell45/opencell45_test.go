package opencell45

import (
	"strings"
	"testing"

	"gdsiiguard/internal/tech"
)

func TestLoadValidates(t *testing.T) {
	lib, err := Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if lib.Name != LibraryName {
		t.Errorf("Name = %q", lib.Name)
	}
	if err := lib.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLayerStack(t *testing.T) {
	lib := MustLoad()
	if lib.NumLayers() != NumLayers {
		t.Fatalf("K = %d, want %d", lib.NumLayers(), NumLayers)
	}
	for i := 1; i <= NumLayers; i++ {
		ly := lib.Layer(i)
		wantDir := tech.Horizontal
		if i%2 == 0 {
			wantDir = tech.Vertical
		}
		if ly.Dir != wantDir {
			t.Errorf("metal%d direction = %v", i, ly.Dir)
		}
		if ly.Pitch <= 0 || ly.Width <= 0 || ly.RPerUM <= 0 || ly.CPerUM <= 0 {
			t.Errorf("metal%d has non-positive electricals: %+v", i, ly)
		}
	}
	// Upper layers are wider and less resistive.
	if lib.Layer(10).Pitch <= lib.Layer(1).Pitch {
		t.Error("metal10 pitch should exceed metal1")
	}
	if lib.Layer(10).RPerUM >= lib.Layer(1).RPerUM {
		t.Error("metal10 should be less resistive than metal1")
	}
}

func TestSiteGeometry(t *testing.T) {
	lib := MustLoad()
	if lib.Site.Width != 190 || lib.Site.Height != 1400 {
		t.Errorf("site = %+v, want 0.19x1.4um", lib.Site)
	}
	if lib.DBUPerMicron != 1000 {
		t.Errorf("DBUPerMicron = %d", lib.DBUPerMicron)
	}
}

func TestEssentialCellsPresent(t *testing.T) {
	lib := MustLoad()
	for _, name := range []string{
		"INV_X1", "INV_X8", "BUF_X1", "NAND2_X1", "NAND4_X1", "NOR2_X1",
		"XOR2_X1", "AOI21_X1", "OAI22_X1", "MUX2_X1", "FA_X1",
		"DFF_X1", "DFFR_X1", "SDFF_X1",
		"FILLCELL_X1", "FILLCELL_X32", "TAPCELL_X1",
	} {
		if lib.Cell(name) == nil {
			t.Errorf("cell %s missing", name)
		}
	}
	if n := lib.NumCells(); n < 30 {
		t.Errorf("library has only %d cells", n)
	}
}

func TestDriveStrengthScaling(t *testing.T) {
	lib := MustLoad()
	x1 := lib.Cell("INV_X1")
	x4 := lib.Cell("INV_X4")
	if x4.Arcs[0].DriveRes >= x1.Arcs[0].DriveRes {
		t.Error("X4 should have lower drive resistance than X1")
	}
	if x4.Leakage <= x1.Leakage {
		t.Error("X4 should leak more than X1")
	}
	if x4.Pins[0].Cap <= x1.Pins[0].Cap {
		t.Error("X4 input cap should exceed X1")
	}
	if x4.WidthSites <= x1.WidthSites {
		t.Error("X4 should be wider than X1")
	}
}

func TestSequentialCells(t *testing.T) {
	lib := MustLoad()
	dff := lib.Cell("DFF_X1")
	if dff.Class != tech.Seq {
		t.Fatalf("DFF_X1 class = %v", dff.Class)
	}
	if dff.ClkToQ <= 0 || dff.Setup <= 0 {
		t.Errorf("DFF_X1 timing: clk2q=%g setup=%g", dff.ClkToQ, dff.Setup)
	}
	if ck := dff.ClockPin(); ck == nil || ck.Name != "CK" {
		t.Errorf("clock pin = %v", ck)
	}
	if dff.Arc("CK", "Q") == nil {
		t.Error("CK->Q arc missing")
	}
}

func TestMultiOutputCells(t *testing.T) {
	lib := MustLoad()
	fa := lib.Cell("FA_X1")
	outs := 0
	for _, p := range fa.Pins {
		if p.Dir == tech.Output {
			outs++
		}
	}
	if outs != 2 {
		t.Fatalf("FA_X1 outputs = %d, want 2", outs)
	}
	if fa.Arc("CI", "S") == nil || fa.Arc("A", "CO") == nil {
		t.Error("FA_X1 missing arcs to one of its outputs")
	}
}

func TestFillers(t *testing.T) {
	lib := MustLoad()
	fills := lib.FillersByWidth()
	if len(fills) != len(FillerWidths) {
		t.Fatalf("fillers = %d, want %d", len(fills), len(FillerWidths))
	}
	if fills[0].WidthSites != 32 {
		t.Errorf("widest filler = %d", fills[0].WidthSites)
	}
	for _, f := range fills {
		if f.IsFunctional() {
			t.Errorf("filler %s reported functional", f.Name)
		}
		if f.OutputPin() != nil {
			t.Errorf("filler %s has an output pin", f.Name)
		}
	}
}

func TestTextRendering(t *testing.T) {
	lefText := LEFText()
	libText := LibertyText()
	if !strings.Contains(lefText, "MACRO INV_X1") || !strings.Contains(lefText, "DATABASE MICRONS 1000") {
		t.Error("LEF text missing expected content")
	}
	if !strings.Contains(libText, "cell (DFF_X1)") || !strings.Contains(libText, "clocked_on") {
		t.Error("Liberty text missing expected content")
	}
}

func TestLoadIsStable(t *testing.T) {
	a := MustLoad()
	b := MustLoad()
	if a != b {
		t.Error("Load should return the cached instance")
	}
}
