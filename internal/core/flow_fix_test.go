package core

import (
	"testing"

	"gdsiiguard/internal/security"
)

// Regression: FlowConfig.normalized used to replace the whole Security
// struct with the defaults whenever ThreshER was unset, silently discarding
// any other user-configured security/Trojan-model field.
func TestNormalizedPreservesConfiguredSecurityFields(t *testing.T) {
	cfg := FlowConfig{
		Security: security.Params{
			// ThreshER deliberately unset: only it should default.
			TrojanCell:       "NOR2_X1",
			MaxRadiusDBU:     4200,
			TrojanWireFactor: 7,
		},
	}
	n := cfg.normalized()
	def := security.DefaultParams()
	if n.Security.ThreshER != def.ThreshER {
		t.Errorf("ThreshER = %d, want default %d", n.Security.ThreshER, def.ThreshER)
	}
	if n.Security.TrojanCell != "NOR2_X1" {
		t.Errorf("TrojanCell = %q, user value discarded", n.Security.TrojanCell)
	}
	if n.Security.MaxRadiusDBU != 4200 {
		t.Errorf("MaxRadiusDBU = %d, user value discarded", n.Security.MaxRadiusDBU)
	}
	if n.Security.TrojanWireFactor != 7 {
		t.Errorf("TrojanWireFactor = %g, user value discarded", n.Security.TrojanWireFactor)
	}

	// And the converse: a configured ThreshER with the rest unset keeps the
	// threshold and defaults the rest.
	n = FlowConfig{Security: security.Params{ThreshER: 33}}.normalized()
	if n.Security.ThreshER != 33 {
		t.Errorf("ThreshER = %d, want 33", n.Security.ThreshER)
	}
	if n.Security.TrojanCell != def.TrojanCell || n.Security.TrojanWireFactor != def.TrojanWireFactor {
		t.Errorf("unset trojan-model fields not defaulted: %+v", n.Security)
	}
}

// Regression: Alpha == 0 — a valid weighting per the paper's
// α·ERsites + (1−α)·ERtracks score — used to be silently rewritten to 0.5.
func TestNormalizedAlpha(t *testing.T) {
	if n := (FlowConfig{}).normalized(); n.Alpha != 0.5 {
		t.Errorf("unset Alpha = %g, want 0.5", n.Alpha)
	}
	if n := (FlowConfig{Alpha: 0.3}).normalized(); n.Alpha != 0.3 {
		t.Errorf("Alpha 0.3 rewritten to %g", n.Alpha)
	}
	if n := (FlowConfig{AlphaZero: true}).normalized(); n.Alpha != 0 {
		t.Errorf("explicit zero Alpha rewritten to %g", n.Alpha)
	}
}

// Regression: Evaluate left Metrics.Runtime at zero, so baseline-defense
// comparisons (which call Evaluate directly, not Run) reported 0 runtime.
func TestEvaluateSetsRuntime(t *testing.T) {
	l := buildDesign(t, 3, 8, 0.5, 1)
	base, err := EvalBaseline(l, flowConfig(3))
	if err != nil {
		t.Fatalf("EvalBaseline: %v", err)
	}
	res := &Result{}
	if err := Evaluate(base.Layout.Clone(), base, res); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Metrics.Runtime <= 0 {
		t.Errorf("Evaluate left Metrics.Runtime = %v, want > 0", res.Metrics.Runtime)
	}
	// The full flow still reports the wider flow wall time.
	r, err := Run(base, DefaultParams(l.Lib().NumLayers()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Metrics.Runtime <= 0 {
		t.Errorf("Run left Metrics.Runtime = %v, want > 0", r.Metrics.Runtime)
	}
}

// The evaluation hot path must record per-stage wall time into the obs
// histograms (the tentpole's flow telemetry).
func TestEvaluationRecordsStageTimings(t *testing.T) {
	l := buildDesign(t, 3, 8, 0.5, 1)
	before := map[Stage]uint64{}
	for _, s := range []Stage{StageRoute, StageTiming, StagePower, StageSecurity, StageDRC} {
		before[s] = stageSeconds.With(string(s)).Count()
	}
	if _, err := EvalBaseline(l, flowConfig(3)); err != nil {
		t.Fatalf("EvalBaseline: %v", err)
	}
	for _, s := range []Stage{StageRoute, StageTiming, StagePower, StageSecurity, StageDRC} {
		if got := stageSeconds.With(string(s)).Count(); got != before[s]+1 {
			t.Errorf("stage %s observations = %d, want %d", s, got, before[s]+1)
		}
	}
}
