package core

import (
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// CellShiftResult reports one Cell Shift run.
type CellShiftResult struct {
	// Shifts is the total number of single-site cell moves performed.
	Shifts int
	// CellsMoved is the number of distinct cells moved.
	CellsMoved int
	// DiceMoves is the number of cells relocated by the dicing stage that
	// splits the residual edge regions the row passes cannot reach.
	DiceMoves int
}

// CellShift runs the greedy row-wise Cell Shift operator (Algorithm 1):
// a forward pass visiting rows bottom-up and shifting cells left to erase
// exploitable components of the empty-site graph G=(V,E), followed by the
// mirrored pass shifting right, which removes the regions accumulated on
// the right side of the core.
//
// The component weight w(compo(v)) is re-evaluated after every single-site
// shift, exactly as in the paper's inner loop: shrinking a vertex can
// disconnect it from runs in the rows below, splitting its component — that
// split is precisely what fragments the free space into sub-Thresh_ER
// pockets. Fixed cells (the locked security-critical assets) never move.
// maxCellShiftPasses bounds the alternating pass count; each pass drains
// the blind-spot edge column left by the previous one, and the loop stops
// as soon as a pass pair yields no further reduction.
const maxCellShiftPasses = 8

func CellShift(l *layout.Layout, threshER int) CellShiftResult {
	return CellShiftWithOptions(l, threshER, true)
}

// CellShiftWithOptions runs the operator with the dicing stage optionally
// disabled — the pure Algorithm 1 row passes — for ablation studies.
func CellShiftWithOptions(l *layout.Layout, threshER int, dice bool) CellShiftResult {
	var res CellShiftResult
	moved := map[*netlist.Instance]bool{}
	// Rounds of (alternating row passes + dicing): dicing reshapes the
	// free-space landscape, which unlocks further row-pass fragmentation.
	const maxRounds = 3
	for round := 0; round < maxRounds; round++ {
		before := exploitableMass(l, threshER)
		if before == 0 {
			break
		}
		best := before
		fails := 0
		for pass := 0; pass < maxCellShiftPasses && fails < 2; pass++ {
			snap := l.Clone()
			shiftsBefore := res.Shifts
			cellShiftPass(l, threshER, pass%2 == 1, &res, moved)
			m := exploitableMass(l, threshER)
			if m >= best {
				// The pass piled mass against its blind spots (core edge
				// or fixed cells): roll it back, try the other direction.
				if err := l.AdoptPlacements(snap); err == nil {
					res.Shifts = shiftsBefore
				}
				fails++
				continue
			}
			fails = 0
			best = m
		}
		// Dicing stage: split what accumulated against the blind spots.
		if dice {
			budget := l.FreeSites()/threshER*2 + 64
			res.DiceMoves += diceResidual(l, threshER, budget)
		}
		if exploitableMass(l, threshER) >= before {
			break // the round made no net progress
		}
	}
	res.CellsMoved = len(moved) + res.DiceMoves
	return res
}

// exploitableMass sums the weights of empty-site components at or above the
// threshold over the whole layout (timing-agnostic: the operator's own
// progress measure).
func exploitableMass(l *layout.Layout, threshER int) int {
	rows := make([][]freeRun, l.NumRows)
	for r := 0; r < l.NumRows; r++ {
		for _, run := range l.FreeRuns(r) {
			rows[r] = append(rows[r], freeRun{run.Start, run.Len})
		}
	}
	ix := buildBelowIndex(rows)
	mass := 0
	for _, w := range ix.weight {
		if w >= threshER {
			mass += w
		}
	}
	return mass
}

// freeRun mirrors the paper's vertex v: a maximal run of contiguous empty
// sites in one row, in mirrored coordinates when the pass is reversed.
type freeRun struct {
	start, length int
}

// belowIndex collapses the empty-site graph of rows[0:i] (everything below
// the row being processed) into, per row-(i−1) run, a component root and
// per-root total weight. Those components are static while row i's cells
// shift, so queries against them are cheap.
type belowIndex struct {
	topRuns []freeRun // runs of row i−1, ascending start
	rootOf  []int     // component root id per topRuns entry
	weight  map[int]int
	// shareWeight holds each root's weight on the first topRun having that
	// root (0 on the rest); rootLink chains topRuns sharing a root.
	shareWeight []int
	rootLink    []int
	scratch     []int // reusable union-find arena for componentWeight
}

// buildBelowIndex runs union-find over all processed rows with merge-scan
// adjacency, then projects roots and weights onto the highest processed row.
func buildBelowIndex(rows [][]freeRun) *belowIndex {
	ix := &belowIndex{weight: map[int]int{}}
	if len(rows) == 0 {
		return ix
	}
	offsets := make([]int, len(rows))
	total := 0
	for r, rr := range rows {
		offsets[r] = total
		total += len(rr)
	}
	parent := make([]int, total)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for r := 1; r < len(rows); r++ {
		lo, hi := rows[r-1], rows[r]
		i, j := 0, 0
		for i < len(lo) && j < len(hi) {
			a, b := lo[i], hi[j]
			if a.start < b.start+b.length && b.start < a.start+a.length {
				ra, rb := find(offsets[r-1]+i), find(offsets[r]+j)
				if ra != rb {
					parent[ra] = rb
				}
			}
			if a.start+a.length < b.start+b.length {
				i++
			} else {
				j++
			}
		}
	}
	for r, rr := range rows {
		for k, run := range rr {
			ix.weight[find(offsets[r]+k)] += run.length
		}
	}
	top := len(rows) - 1
	ix.topRuns = rows[top]
	ix.rootOf = make([]int, len(ix.topRuns))
	ix.shareWeight = make([]int, len(ix.topRuns))
	ix.rootLink = make([]int, len(ix.topRuns))
	firstOf := map[int]int{}
	for k := range ix.topRuns {
		root := find(offsets[top] + k)
		ix.rootOf[k] = root
		if prev, ok := firstOf[root]; ok {
			ix.rootLink[k] = prev
		} else {
			ix.rootLink[k] = -1
			ix.shareWeight[k] = ix.weight[root]
			firstOf[root] = k
		}
		if ix.rootLink[k] >= 0 {
			// keep chaining to the most recent same-root topRun
			firstOf[root] = k
		}
	}
	return ix
}

// componentWeight returns w(compo(v)) for the current row's run at index
// vIdx, over the graph G_{0,i}: the current row's runs bridged through the
// collapsed below components. Cost is O(runs_i + runs_{i−1}), allocation
// free (the union-find arena is reused across calls).
func (ix *belowIndex) componentWeight(cur []freeRun, vIdx int) int {
	n := len(cur)
	m := len(ix.topRuns)
	total := n + m
	if cap(ix.scratch) < total {
		ix.scratch = make([]int, total*2)
	}
	parent := ix.scratch[:total]
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// topRuns sharing a below-root are connected through the rows below.
	for k := 0; k < m; k++ {
		if ix.rootLink[k] >= 0 {
			union(n+k, n+ix.rootLink[k])
		}
	}
	// Merge-scan current-row runs against row i−1 runs.
	i, j := 0, 0
	for i < m && j < n {
		a, b := ix.topRuns[i], cur[j]
		if a.start < b.start+b.length && b.start < a.start+a.length {
			union(n+i, j)
		}
		if a.start+a.length < b.start+b.length {
			i++
		} else {
			j++
		}
	}
	target := find(vIdx)
	w := 0
	for k := 0; k < n; k++ {
		if find(k) == target {
			w += cur[k].length
		}
	}
	for k := 0; k < m; k++ {
		if ix.shareWeight[k] > 0 && find(n+k) == target {
			w += ix.shareWeight[k]
		}
	}
	return w
}

// cellShiftPass performs one directional pass. In mirrored space
// (reverse=true) "shift left" means "shift right" physically, so a single
// implementation covers both passes of the algorithm.
func cellShiftPass(l *layout.Layout, threshER int, reverse bool, res *CellShiftResult, moved map[*netlist.Instance]bool) {
	w := l.SitesPerRow
	phys := func(s int) int {
		if reverse {
			return w - 1 - s
		}
		return s
	}
	runsOfRow := func(row int) []freeRun {
		raw := l.FreeRuns(row)
		out := make([]freeRun, 0, len(raw))
		for _, r := range raw {
			if reverse {
				out = append(out, freeRun{w - (r.Start + r.Len), r.Len})
			} else {
				out = append(out, freeRun{r.Start, r.Len})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
		return out
	}
	// Security-critical cells are preprocessed against removal or
	// replacement, not against row-wise shifting: a few-site horizontal
	// move keeps the asset intact (the paper's CS operates on "designs
	// with loose timing constraints" where such moves are benign). Cells
	// fixed for other reasons stay fixed.
	shift := func(cell *netlist.Instance) error {
		unlocked := false
		if cell.Fixed && cell.SecurityCritical {
			cell.Fixed = false
			unlocked = true
		}
		var err error
		if reverse {
			err = l.ShiftRight(cell)
		} else {
			err = l.ShiftLeft(cell)
		}
		if unlocked {
			cell.Fixed = true
		}
		return err
	}

	prevRuns := make([][]freeRun, 0, l.NumRows)
	for row := 0; row < l.NumRows; row++ {
		below := buildBelowIndex(prevRuns)
		cur := runsOfRow(row)
		j := 0
		for j < len(cur) {
			if below.componentWeight(cur, j) < threshER {
				j++
				continue
			}
			// The cell adjacent to the right (mirrored) of v; phys() maps
			// to its nearest physical site in either direction. A vertex
			// touching the far core edge has no cell to pull: it is the
			// pass's blind spot, handled by the opposite pass and the
			// dicing stage.
			cellSite := cur[j].start + cur[j].length
			if cellSite >= w {
				j++
				continue
			}
			cell := l.At(row, phys(cellSite))
			if cell == nil || (cell.Fixed && !cell.SecurityCritical) {
				j++
				continue
			}
			// Inner loop of Algorithm 1: shift one site at a time,
			// re-checking the component weight after each move.
			vLen0 := cur[j].length
			performed := 0
			for performed < vLen0 && below.componentWeight(cur, j) >= threshER {
				if err := shift(cell); err != nil {
					break
				}
				performed++
				moved[cell] = true
				cur = shrinkAndSpill(cur, j, cell.Master.WidthSites)
				if performed == vLen0 {
					break // v vanished; slot j holds the successor run
				}
			}
			res.Shifts += performed
			// Advance unless v vanished: the spilled run slid into slot j
			// and must be visited as the next vertex (Algorithm 1 line 14).
			if performed < vLen0 {
				j++
			}
		}
		prevRuns = append(prevRuns, runsOfRow(row))
	}
}

// shrinkAndSpillFromEdge updates the run list after the cell LEFT of the
// edge-touching run j moved one site into it: run j loses its first site;
// the freed site appears just before the cell, extending the preceding run
// or creating one.
// shrinkAndSpill updates the mirrored run list after the cell right of run
// j moved one site toward it: run j loses its last site; the freed site
// appears just past the cell, extending the following run or creating one.
func shrinkAndSpill(cur []freeRun, j, cellWidth int) []freeRun {
	spillAt := cur[j].start + cur[j].length + cellWidth - 1
	cur[j].length--
	if j+1 < len(cur) && cur[j+1].start == spillAt+1 {
		cur[j+1].start--
		cur[j+1].length++
	} else {
		cur = append(cur, freeRun{})
		copy(cur[j+2:], cur[j+1:])
		cur[j+1] = freeRun{start: spillAt, length: 1}
	}
	if cur[j].length == 0 {
		cur = append(cur[:j], cur[j+1:]...)
	}
	return cur
}
