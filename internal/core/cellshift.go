package core

import (
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// CellShiftResult reports one Cell Shift run.
type CellShiftResult struct {
	// Shifts is the total number of single-site cell moves performed.
	Shifts int
	// CellsMoved is the number of distinct cells moved.
	CellsMoved int
	// DiceMoves is the number of cells relocated by the dicing stage that
	// splits the residual edge regions the row passes cannot reach.
	DiceMoves int
}

// CellShift runs the greedy row-wise Cell Shift operator (Algorithm 1):
// a forward pass visiting rows bottom-up and shifting cells left to erase
// exploitable components of the empty-site graph G=(V,E), followed by the
// mirrored pass shifting right, which removes the regions accumulated on
// the right side of the core.
//
// The component weight w(compo(v)) is re-evaluated after every single-site
// shift, exactly as in the paper's inner loop: shrinking a vertex can
// disconnect it from runs in the rows below, splitting its component — that
// split is precisely what fragments the free space into sub-Thresh_ER
// pockets. Fixed cells (the locked security-critical assets) never move.
// maxCellShiftPasses bounds the alternating pass count; each pass drains
// the blind-spot edge column left by the previous one, and the loop stops
// as soon as a pass pair yields no further reduction.
const maxCellShiftPasses = 8

func CellShift(l *layout.Layout, threshER int) CellShiftResult {
	return CellShiftWithOptions(l, threshER, true)
}

// CellShiftWithOptions runs the operator with the dicing stage optionally
// disabled — the pure Algorithm 1 row passes — for ablation studies.
func CellShiftWithOptions(l *layout.Layout, threshER int, dice bool) CellShiftResult {
	var e shiftEngine
	return e.run(l, threshER, dice)
}

// shiftEngine owns every buffer of one CellShift invocation, so the hot
// loops — row scans, component-weight queries, pass rollback — run
// allocation-free once warm. Not safe for concurrent use; each operator
// invocation builds its own.
type shiftEngine struct {
	ix     belowIndex
	runBuf []layout.SiteRun // AppendFreeRuns scratch
	curBuf []freeRun        // current-row runs, mutated by shrinkAndSpill
	// passAdded collects cells first recorded as moved during the current
	// pass, so a rolled-back pass also rolls its CellsMoved entries back.
	passAdded []*netlist.Instance
	dice      diceScratch
	bands     bandScratch

	// massTrace, when non-nil, receives every exploitableMass checkpoint
	// (set by the golden equivalence test to compare trajectories).
	massTrace *[]int
}

func (e *shiftEngine) run(l *layout.Layout, threshER int, dice bool) CellShiftResult {
	var res CellShiftResult
	moved := map[*netlist.Instance]bool{}
	// The journal replaces the per-pass whole-layout Clone snapshot: a
	// failed pass is rolled back by replaying inverses in O(moves).
	l.BeginJournal()
	defer l.EndJournal()
	// Rounds of (alternating row passes + dicing): dicing reshapes the
	// free-space landscape, which unlocks further row-pass fragmentation.
	const maxRounds = 3
	for round := 0; round < maxRounds; round++ {
		before := e.exploitableMass(l, threshER)
		if before == 0 {
			break
		}
		best := before
		fails := 0
		for pass := 0; pass < maxCellShiftPasses && fails < 2; pass++ {
			mark := l.JournalMark()
			shiftsBefore := res.Shifts
			e.passAdded = e.passAdded[:0]
			e.pass(l, threshER, pass%2 == 1, &res, moved)
			m := e.exploitableMass(l, threshER)
			if m >= best {
				// The pass piled mass against its blind spots (core edge
				// or fixed cells): roll it back, try the other direction.
				l.RollbackJournal(mark)
				res.Shifts = shiftsBefore
				for _, in := range e.passAdded {
					delete(moved, in)
				}
				fails++
				continue
			}
			fails = 0
			best = m
		}
		// Dicing stage: split what accumulated against the blind spots.
		if dice {
			budget := l.FreeSites()/threshER*2 + 64
			res.DiceMoves += e.diceResidual(l, threshER, budget)
		}
		if e.exploitableMass(l, threshER) >= before {
			break // the round made no net progress
		}
	}
	res.CellsMoved = len(moved) + res.DiceMoves
	return res
}

// exploitableMass sums the weights of empty-site components at or above the
// threshold over the whole layout (timing-agnostic: the operator's own
// progress measure). The index and row buffers are reused across calls.
// SoC-scale layouts dispatch to the band-parallel build (see band.go),
// which is bit-identical to the sequential one.
func (e *shiftEngine) exploitableMass(l *layout.Layout, threshER int) int {
	var m int
	if w := resolveBandWorkers(l.NumRows); w > 1 {
		m = e.bands.mass(l.NumRows, threshER, w, layoutRowSource(l))
	} else {
		ix := &e.ix
		ix.reset()
		for r := 0; r < l.NumRows; r++ {
			buf := ix.nextTopBuf()
			e.runBuf = l.AppendFreeRuns(r, e.runBuf[:0])
			for _, run := range e.runBuf {
				buf = append(buf, freeRun{run.Start, run.Len})
			}
			ix.extend(buf)
		}
		m = ix.mass(threshER)
	}
	if e.massTrace != nil {
		*e.massTrace = append(*e.massTrace, m)
	}
	return m
}

// appendRowRuns appends the row's free runs to out in pass coordinates:
// physical order for the forward pass, mirrored for the reverse pass.
// FreeRuns scans left-to-right, so the mirrored list is produced ascending
// by iterating backwards — no sort needed.
func (e *shiftEngine) appendRowRuns(l *layout.Layout, row int, reverse bool, out []freeRun) []freeRun {
	e.runBuf = l.AppendFreeRuns(row, e.runBuf[:0])
	if reverse {
		w := l.SitesPerRow
		for i := len(e.runBuf) - 1; i >= 0; i-- {
			r := e.runBuf[i]
			out = append(out, freeRun{w - (r.Start + r.Len), r.Len})
		}
		return out
	}
	for _, r := range e.runBuf {
		out = append(out, freeRun{r.Start, r.Len})
	}
	return out
}

// pass performs one directional pass. In mirrored space (reverse=true)
// "shift left" means "shift right" physically, so a single implementation
// covers both passes of the algorithm.
func (e *shiftEngine) pass(l *layout.Layout, threshER int, reverse bool, res *CellShiftResult, moved map[*netlist.Instance]bool) {
	w := l.SitesPerRow
	phys := func(s int) int {
		if reverse {
			return w - 1 - s
		}
		return s
	}
	// Security-critical cells are preprocessed against removal or
	// replacement, not against row-wise shifting: a few-site horizontal
	// move keeps the asset intact (the paper's CS operates on "designs
	// with loose timing constraints" where such moves are benign). Cells
	// fixed for other reasons stay fixed.
	shift := func(cell *netlist.Instance) error {
		unlocked := false
		if cell.Fixed && cell.SecurityCritical {
			cell.Fixed = false
			unlocked = true
		}
		var err error
		if reverse {
			err = l.ShiftRight(cell)
		} else {
			err = l.ShiftLeft(cell)
		}
		if unlocked {
			cell.Fixed = true
		}
		return err
	}

	below := &e.ix
	below.reset()
	for row := 0; row < l.NumRows; row++ {
		cur := e.appendRowRuns(l, row, reverse, e.curBuf[:0])
		j := 0
		for j < len(cur) {
			if below.componentWeight(cur, j) < threshER {
				j++
				continue
			}
			// The cell adjacent to the right (mirrored) of v; phys() maps
			// to its nearest physical site in either direction. A vertex
			// touching the far core edge has no cell to pull: it is the
			// pass's blind spot, handled by the opposite pass and the
			// dicing stage.
			cellSite := cur[j].start + cur[j].length
			if cellSite >= w {
				j++
				continue
			}
			cell := l.At(row, phys(cellSite))
			if cell == nil || (cell.Fixed && !cell.SecurityCritical) {
				j++
				continue
			}
			// Inner loop of Algorithm 1: shift one site at a time,
			// re-checking the component weight after each move.
			vLen0 := cur[j].length
			performed := 0
			for performed < vLen0 && below.componentWeight(cur, j) >= threshER {
				if err := shift(cell); err != nil {
					break
				}
				performed++
				if !moved[cell] {
					moved[cell] = true
					e.passAdded = append(e.passAdded, cell)
				}
				cur = shrinkAndSpill(cur, j, cell.Master.WidthSites)
				if performed == vLen0 {
					break // v vanished; slot j holds the successor run
				}
			}
			res.Shifts += performed
			// Advance unless v vanished: the spilled run slid into slot j
			// and must be visited as the next vertex (Algorithm 1 line 14).
			if performed < vLen0 {
				j++
			}
		}
		e.curBuf = cur[:0] // keep the (possibly grown) capacity
		// Extend the index with the row's post-shift runs: it becomes the
		// new top row of the processed graph.
		below.extend(e.appendRowRuns(l, row, reverse, below.nextTopBuf()))
	}
}

// shrinkAndSpill updates the mirrored run list after the cell right of run
// j moved one site toward it: run j loses its last site; the freed site
// appears just past the cell, extending the following run or creating one.
func shrinkAndSpill(cur []freeRun, j, cellWidth int) []freeRun {
	spillAt := cur[j].start + cur[j].length + cellWidth - 1
	cur[j].length--
	if j+1 < len(cur) && cur[j+1].start == spillAt+1 {
		cur[j+1].start--
		cur[j+1].length++
	} else {
		cur = append(cur, freeRun{})
		copy(cur[j+2:], cur[j+1:])
		cur[j+1] = freeRun{start: spillAt, length: 1}
	}
	if cur[j].length == 0 {
		cur = append(cur[:j], cur[j+1:]...)
	}
	return cur
}
