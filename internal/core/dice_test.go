package core

import (
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
)

// openLayout builds a layout with one big free region and a few movable
// cells clustered at the left edge.
func openLayout(t *testing.T, rows, sites, nCells int) *layout.Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("dice", lib)
	clk, _ := nl.AddNet("clk")
	clk.IsClock = true
	p, _ := nl.AddPort("clk", netlist.In)
	_ = nl.ConnectPort(p, clk)
	l, err := layout.New(nl, rows, sites)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nCells; i++ {
		inv, err := nl.AddInstance(names(i), "INV_X1")
		if err != nil {
			t.Fatal(err)
		}
		a, _ := nl.AddNet(names(i) + "_a")
		pa, _ := nl.AddPort(names(i)+"_pa", netlist.In)
		_ = nl.ConnectPort(pa, a)
		z, _ := nl.AddNet(names(i) + "_z")
		pz, _ := nl.AddPort(names(i)+"_pz", netlist.Out)
		_ = nl.ConnectPort(pz, z)
		_ = nl.Connect(inv, "A", a)
		_ = nl.Connect(inv, "ZN", z)
		if err := l.Place(inv, i%rows, (i/rows)*3); err != nil {
			t.Fatal(err)
		}
	}
	l.SpreadPorts()
	return l
}

func names(i int) string { return "c" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// fullComponents is the test-side convenience wrapper over compBuf.build.
func fullComponents(l *layout.Layout) ([]fullRun, []int) {
	var c compBuf
	var rc diceRowCache
	rc.reset(l.NumRows)
	c.build(l, &rc)
	return c.runs, c.weights
}

// diceResidual / exploitableMass on a throwaway engine.
func diceResidual(l *layout.Layout, threshER, maxMoves int) int {
	var e shiftEngine
	return e.diceResidual(l, threshER, maxMoves)
}

func exploitableMass(l *layout.Layout, threshER int) int {
	var e shiftEngine
	return e.exploitableMass(l, threshER)
}

func TestFullComponentsLabeling(t *testing.T) {
	l := openLayout(t, 3, 40, 3) // cells at (0,0),(1,0),(2,0), rest free
	runs, weights := fullComponents(l)
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	// All three right-side runs are vertically connected: one component.
	comp := runs[0].comp
	total := 0
	for _, r := range runs {
		if r.comp != comp {
			t.Errorf("run %+v in different component", r)
		}
		total += r.length
	}
	if weights[comp] != total {
		t.Errorf("component weight %d, want %d", weights[comp], total)
	}
	if total != 3*40-3*2 {
		t.Errorf("free sites = %d", total)
	}
}

func TestExploitablePotential(t *testing.T) {
	weights := []int{25, 5, 30, 0}
	mass, phi := exploitablePotential(weights, 20)
	if mass != 55 {
		t.Errorf("mass = %d, want 55", mass)
	}
	if phi != 25*25+30*30 {
		t.Errorf("phi = %g", phi)
	}
	mass, phi = exploitablePotential([]int{5, 19}, 20)
	if mass != 0 || phi != 0 {
		t.Errorf("sub-threshold mass/phi = %d/%g", mass, phi)
	}
}

func TestDiceResidualReducesMass(t *testing.T) {
	l := openLayout(t, 4, 60, 8)
	_, w0 := fullComponents(l)
	m0, _ := exploitablePotential(w0, 20)
	if m0 == 0 {
		t.Skip("no exploitable mass to dice")
	}
	moves := diceResidual(l, 20, 50)
	_, w1 := fullComponents(l)
	m1, _ := exploitablePotential(w1, 20)
	if moves == 0 {
		t.Fatal("no dice moves")
	}
	if m1 >= m0 {
		t.Errorf("mass did not drop: %d -> %d", m0, m1)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid after dicing: %v", err)
	}
}

func TestDiceRespectsBudgetAndFixed(t *testing.T) {
	l := openLayout(t, 4, 60, 8)
	for _, in := range l.Netlist.Insts {
		in.Fixed = true
	}
	if moves := diceResidual(l, 20, 50); moves != 0 {
		t.Errorf("dice moved %d fixed cells", moves)
	}
	for _, in := range l.Netlist.Insts {
		in.Fixed = false
	}
	if moves := diceResidual(l, 20, 2); moves > 2 {
		t.Errorf("dice exceeded budget: %d", moves)
	}
}

func TestSplitPosition(t *testing.T) {
	run := &fullRun{row: 0, start: 10, length: 50}
	at := splitPosition(run, 3, 20)
	if at != 10+19 {
		t.Errorf("at = %d, want 29", at)
	}
	// Donor wider than the run: refused.
	if at := splitPosition(&fullRun{start: 0, length: 2}, 3, 20); at != -1 {
		t.Errorf("wide donor placed at %d", at)
	}
	// Short run: centered.
	at = splitPosition(&fullRun{start: 0, length: 10}, 2, 20)
	if at < 0 || at+2 > 10 {
		t.Errorf("centered at = %d", at)
	}
}

func TestExploitableMassMatchesComponents(t *testing.T) {
	l := openLayout(t, 3, 40, 3)
	_, weights := fullComponents(l)
	mass, _ := exploitablePotential(weights, 20)
	if got := exploitableMass(l, 20); got != mass {
		t.Errorf("exploitableMass = %d, fullComponents mass = %d", got, mass)
	}
}

func TestShrinkAndSpill(t *testing.T) {
	// v=[0,5), cell width 2 at sites 5-6, next run [7,10).
	cur := []freeRun{{0, 5}, {7, 3}}
	out := shrinkAndSpill(cur, 0, 2)
	// v loses a site; spill at 6 merges with [7,3) -> [6,4).
	if len(out) != 2 || out[0] != (freeRun{0, 4}) || out[1] != (freeRun{6, 4}) {
		t.Errorf("out = %+v", out)
	}
	// No adjacent next run: a new 1-site run appears.
	cur = []freeRun{{0, 5}, {20, 3}}
	out = shrinkAndSpill(cur, 0, 2)
	if len(out) != 3 || out[1] != (freeRun{6, 1}) {
		t.Errorf("out = %+v", out)
	}
	// Vertex vanishes; its spill (site 2) merges with the adjacent run
	// [3,5) into [2,5).
	cur = []freeRun{{0, 1}, {3, 2}}
	out = shrinkAndSpill(cur, 0, 2)
	if len(out) != 1 || out[0] != (freeRun{2, 3}) {
		t.Errorf("vanish out = %+v", out)
	}
}
