package core

import (
	"math/rand"
	"testing"
)

// sameMetrics compares every metric except the wall-clock Runtime.
func sameMetrics(t *testing.T, label string, got, want Metrics) {
	t.Helper()
	got.Runtime, want.Runtime = 0, 0
	if got != want {
		t.Errorf("%s: metrics diverge:\n got  %+v\n want %+v", label, got, want)
	}
}

// TestScratchMatchesRun is the scratch path's equivalence gate: for a mix
// of CS and LDA parameter vectors, evaluating on a reused Scratch must
// produce exactly the metrics of the clone-per-evaluation Run path, and
// re-evaluating the same vector on the (now dirty, then rewound) arena
// must reproduce the first answer bit for bit.
func TestScratchMatchesRun(t *testing.T) {
	l := buildDesign(t, 6, 5, 0.5, 3)
	base, err := EvalBaseline(l, flowConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	k := base.Layout.Lib().NumLayers()

	rng := rand.New(rand.NewSource(11))
	params := []Params{DefaultParams(k)}
	lda := DefaultParams(k)
	lda.Op = LDA
	lda.LDAGridN, lda.LDAIters = LDAGridValues[0], LDAIterValues[len(LDAIterValues)-1]
	params = append(params, lda)
	for i := 0; i < 3; i++ {
		params = append(params, RandomParams(k, rng))
	}

	s := NewScratch(base)
	var firstScratch []Metrics
	for i, p := range params {
		want, err := Run(base, p)
		if err != nil {
			t.Fatalf("Run(%d): %v", i, err)
		}
		got, err := s.Run(p)
		if err != nil {
			t.Fatalf("Scratch.Run(%d): %v", i, err)
		}
		sameMetrics(t, p.Key(), got.Metrics, want.Metrics)
		if got.CSResult != want.CSResult {
			t.Errorf("%s: CSResult %+v != %+v", p.Key(), got.CSResult, want.CSResult)
		}
		if got.LDAResult != want.LDAResult {
			t.Errorf("%s: LDAResult %+v != %+v", p.Key(), got.LDAResult, want.LDAResult)
		}
		if got.Layout != nil || got.Routes != nil || got.Timing != nil || got.Assessment != nil {
			t.Errorf("%s: scratch result leaked arena aliases", p.Key())
		}
		firstScratch = append(firstScratch, got.Metrics)
	}
	// Second sweep on the same arena: reset must fully rewind the state.
	for i, p := range params {
		got, err := s.Run(p)
		if err != nil {
			t.Fatalf("Scratch.Run replay(%d): %v", i, err)
		}
		sameMetrics(t, "replay "+p.Key(), got.Metrics, firstScratch[i])
	}
	// The baseline layout itself must be untouched by arena evaluations.
	if err := base.Layout.Validate(); err != nil {
		t.Fatalf("baseline corrupted: %v", err)
	}
	want, err := Run(base, params[0])
	if err != nil {
		t.Fatal(err)
	}
	sameMetrics(t, "baseline stability", want.Metrics, firstScratch[0])
}
