// Package core implements the GDSII-Guard anti-Trojan ECO flow — the
// paper's primary contribution. It provides:
//
//   - the flow parameter space of Table I (operator selection, LDA grid and
//     iteration counts, per-layer routing width scale factors);
//   - preprocessing that locks security-critical cells in place;
//   - the Cell Shift ECO placement operator (Algorithm 1);
//   - the Dynamic Local Density Adjustment operator (Algorithm 2);
//   - the Routing Width Scaling ECO routing operator;
//   - the end-to-end flow f(L_base; x) that applies one parameter
//     configuration and extracts the post-design metrics (security, TNS,
//     power, DRC) consumed by the multi-objective optimizer.
package core

import (
	"fmt"
	"math/rand"
	"strings"
)

// Operator selects the ECO placement operator.
type Operator string

const (
	// CS is the Cell Shift operator, suited to designs with loose timing
	// constraints (long exploitable distances).
	CS Operator = "CS"
	// LDA is the Dynamic Local Density Adjustment operator, suited to
	// designs with tight timing or low utilization.
	LDA Operator = "LDA"
)

// Candidate values of Table I.
var (
	// LDAGridValues are the admissible LDA::N values.
	LDAGridValues = []int{2, 4, 8, 16, 32}
	// LDAIterValues are the admissible LDA::n_iter values.
	LDAIterValues = []int{1, 2, 3}
	// ScaleValues are the admissible RWS::scale_M[i] values.
	ScaleValues = []float64{1.0, 1.2, 1.5}
)

// Params is one point x in the flow's hyper-parameter space D (Table I).
type Params struct {
	// Op is op_select.
	Op Operator
	// LDAGridN is LDA::N, the grid count per row/column (used when Op ==
	// LDA).
	LDAGridN int
	// LDAIters is LDA::n_iter (used when Op == LDA).
	LDAIters int
	// ScaleM is RWS::scale_M[i] for metal i = 1..K.
	ScaleM []float64
}

// Validate checks that every gene holds an admissible value for a K-layer
// process.
func (p Params) Validate(k int) error {
	if p.Op != CS && p.Op != LDA {
		return fmt.Errorf("core: invalid op_select %q", p.Op)
	}
	if p.Op == LDA {
		if !containsInt(LDAGridValues, p.LDAGridN) {
			return fmt.Errorf("core: invalid LDA::N %d", p.LDAGridN)
		}
		if !containsInt(LDAIterValues, p.LDAIters) {
			return fmt.Errorf("core: invalid LDA::n_iter %d", p.LDAIters)
		}
	}
	if len(p.ScaleM) != k {
		return fmt.Errorf("core: scale_M has %d entries, want K=%d", len(p.ScaleM), k)
	}
	for i, s := range p.ScaleM {
		if !containsFloat(ScaleValues, s) {
			return fmt.Errorf("core: invalid scale_M[%d] = %g", i+1, s)
		}
	}
	return nil
}

// DefaultParams returns the identity configuration: CS with no width
// scaling.
func DefaultParams(k int) Params {
	s := make([]float64, k)
	for i := range s {
		s[i] = 1.0
	}
	return Params{Op: CS, LDAGridN: 8, LDAIters: 1, ScaleM: s}
}

// RandomParams draws a uniform random configuration for a K-layer process.
func RandomParams(k int, rng *rand.Rand) Params {
	p := Params{
		LDAGridN: LDAGridValues[rng.Intn(len(LDAGridValues))],
		LDAIters: LDAIterValues[rng.Intn(len(LDAIterValues))],
		ScaleM:   make([]float64, k),
	}
	if rng.Intn(2) == 0 {
		p.Op = CS
	} else {
		p.Op = LDA
	}
	for i := range p.ScaleM {
		p.ScaleM[i] = ScaleValues[rng.Intn(len(ScaleValues))]
	}
	return p
}

// Clone deep-copies the parameter vector.
func (p Params) Clone() Params {
	out := p
	out.ScaleM = append([]float64(nil), p.ScaleM...)
	return out
}

// Key returns a canonical string identity for deduplication. CS
// configurations ignore the LDA genes (they are inactive).
func (p Params) Key() string {
	return p.OpKey() + "|" + p.ScaleKey()
}

// Gene→stage dependency map. Each flow stage depends on a prefix of the
// chromosome, which is what makes per-stage memoization sound:
//
//	stage      depends on genes            key
//	operator   Op, LDAGridN, LDAIters      OpKey()   (placement diff)
//	route      operator output + ScaleM    OpKey()+ScaleKey()
//	timing     route output                —
//	power      route output                —
//	security   route + timing output       —
//	drc        route output                —
//
// The post-operator placement is independent of ScaleM because the NDR is
// installed after the operator runs; everything downstream of route is a
// deterministic function of the routed layout. Two chromosomes sharing an
// OpKey therefore share a post-operator placement bit-identically, and two
// chromosomes sharing a full Key share every stage (the nsga2 evaluator
// cache). StageMemo exploits the intermediate levels.

// OpKey returns the canonical identity of the operator-gene prefix — the
// genes the ECO placement stage depends on. CS has no sub-genes; LDA keys
// by grid count and iteration count. An LDA key is a chain: LDA:N:k+1 is
// LDA:N:k extended by one iteration (see ldaIteration).
func (p Params) OpKey() string {
	if p.Op == CS {
		return "CS"
	}
	return fmt.Sprintf("LDA:%d:%d", p.LDAGridN, p.LDAIters)
}

// LDAOpKey returns the OpKey of an LDA configuration with the given grid
// and iteration counts (the memo uses it to name intermediate chain links).
func LDAOpKey(gridN, iters int) string {
	return fmt.Sprintf("LDA:%d:%d", gridN, iters)
}

// ParseLDAOpKey parses an LDA OpKey back into its grid and iteration
// counts; ok is false for anything else (including "CS" and "").
func ParseLDAOpKey(key string) (gridN, iters int, ok bool) {
	if !strings.HasPrefix(key, "LDA:") {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(key, "LDA:%d:%d", &gridN, &iters); err != nil {
		return 0, 0, false
	}
	return gridN, iters, true
}

// ScaleKey returns the canonical identity of the routing-width genes
// (RWS::scale_M). Routes from two evaluations are interchangeable only
// when their ScaleKeys match exactly: the NDR scale multiplies every
// track-usage commit, so any difference changes congestion globally.
func (p Params) ScaleKey() string {
	return fmt.Sprintf("%v", p.ScaleM)
}

// SpaceSize returns |D| for a K-layer process: CS contributes 3^K
// configurations, LDA contributes |N|·|n_iter|·3^K (Table I reports ≈945k
// for K = 10).
func SpaceSize(k int) int64 {
	scales := int64(1)
	for i := 0; i < k; i++ {
		scales *= int64(len(ScaleValues))
	}
	return scales + int64(len(LDAGridValues)*len(LDAIterValues))*scales
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsFloat(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
