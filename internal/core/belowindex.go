package core

// The incremental empty-site-graph index. cellShiftPass processes rows
// bottom-up; for the row being processed it needs, per free run of the row
// below, the component root and total weight of the empty-site graph over
// all processed rows. The seed implementation rebuilt that index from
// scratch for every row — union-find over *all* processed rows, O(R²·runs)
// per pass. belowIndex is instead *extended* one row at a time: the new
// row's runs are unioned into the persistent parents/weights by one
// merge-scan against the previous top row, making a whole pass
// O(R·runs·α(runs)).
//
// Equivalence with the from-scratch build is exact: the component partition
// of a union-find is independent of union order, and componentWeight only
// consumes the partition (which top runs share a root) and the per-root
// weights — never the root ids themselves. The property test in
// cellshift_equiv_test.go checks extension against the scratch build on
// randomized run layouts.

// freeRun mirrors the paper's vertex v: a maximal run of contiguous empty
// sites in one row, in mirrored coordinates when the pass is reversed.
type freeRun struct {
	start, length int
}

// belowIndex collapses the empty-site graph of the processed rows into,
// per top-row run, a component root and per-root total weight. Those
// components are static while the next row's cells shift, so queries
// against them are cheap. All storage is reused across rows and passes.
type belowIndex struct {
	// Persistent union-find over every run added so far. weight is valid
	// at component roots only.
	parent []int
	weight []int

	// topOff is the parent index of the first top-row run; topRuns holds
	// the top row's runs (owned by the index, double-buffered with spare).
	topOff  int
	topRuns []freeRun
	spare   []freeRun

	// Projection of the below components onto the top row, recomputed on
	// each extension. shareWeight holds each root's weight on the first
	// topRun having that root (0 on the rest); rootLink chains topRuns
	// sharing a root, most-recent first.
	rootOf      []int
	shareWeight []int
	rootLink    []int
	firstOf     map[int]int

	scratch []int // reusable union-find arena for componentWeight
}

// reset empties the index for a new pass without releasing storage.
func (ix *belowIndex) reset() {
	ix.parent = ix.parent[:0]
	ix.weight = ix.weight[:0]
	ix.topOff = 0
	ix.topRuns = ix.topRuns[:0]
	ix.rootOf = ix.rootOf[:0]
	ix.shareWeight = ix.shareWeight[:0]
	ix.rootLink = ix.rootLink[:0]
}

// nextTopBuf returns the spare run buffer for the caller to fill with the
// next row's runs before calling extend (ownership passes to the index).
func (ix *belowIndex) nextTopBuf() []freeRun { return ix.spare[:0] }

// extend appends one processed row: newRuns become the new top row, unioned
// into the existing components by a merge-scan against the previous top
// row, and the projection is refreshed. newRuns must be ascending by start.
func (ix *belowIndex) extend(newRuns []freeRun) {
	prev, prevOff := ix.topRuns, ix.topOff
	ix.topOff = len(ix.parent)
	for _, r := range newRuns {
		ix.parent = append(ix.parent, len(ix.parent))
		ix.weight = append(ix.weight, r.length)
	}
	i, j := 0, 0
	for i < len(prev) && j < len(newRuns) {
		a, b := prev[i], newRuns[j]
		if a.start < b.start+b.length && b.start < a.start+a.length {
			ix.union(prevOff+i, ix.topOff+j)
		}
		if a.start+a.length < b.start+b.length {
			i++
		} else {
			j++
		}
	}
	ix.spare = prev // recycle the old top buffer
	ix.topRuns = newRuns
	ix.project()
}

func (ix *belowIndex) find(x int) int {
	for ix.parent[x] != x {
		ix.parent[x] = ix.parent[ix.parent[x]]
		x = ix.parent[x]
	}
	return x
}

// union merges the components of a and b, folding the absorbed root's
// weight into the surviving one.
func (ix *belowIndex) union(a, b int) {
	ra, rb := ix.find(a), ix.find(b)
	if ra == rb {
		return
	}
	ix.parent[ra] = rb
	ix.weight[rb] += ix.weight[ra]
}

// project refreshes rootOf/shareWeight/rootLink for the current top row.
func (ix *belowIndex) project() {
	n := len(ix.topRuns)
	ix.rootOf = sized(ix.rootOf, n)
	ix.shareWeight = sized(ix.shareWeight, n)
	ix.rootLink = sized(ix.rootLink, n)
	if ix.firstOf == nil {
		ix.firstOf = make(map[int]int, n)
	} else {
		clear(ix.firstOf)
	}
	for k := range ix.topRuns {
		root := ix.find(ix.topOff + k)
		ix.rootOf[k] = root
		if prev, ok := ix.firstOf[root]; ok {
			ix.rootLink[k] = prev
			ix.shareWeight[k] = 0
		} else {
			ix.rootLink[k] = -1
			ix.shareWeight[k] = ix.weight[root]
		}
		// Chain to the most recent same-root topRun.
		ix.firstOf[root] = k
	}
}

// mass sums the weights of components at or above the threshold over every
// row added so far.
func (ix *belowIndex) mass(threshER int) int {
	m := 0
	for i, p := range ix.parent {
		if p == i && ix.weight[i] >= threshER {
			m += ix.weight[i]
		}
	}
	return m
}

// componentWeight returns w(compo(v)) for the current row's run at index
// vIdx, over the graph G_{0,i}: the current row's runs bridged through the
// collapsed below components. Cost is O(runs_i + runs_{i−1}), allocation
// free (the union-find arena is reused across calls).
func (ix *belowIndex) componentWeight(cur []freeRun, vIdx int) int {
	n := len(cur)
	m := len(ix.topRuns)
	total := n + m
	if cap(ix.scratch) < total {
		ix.scratch = make([]int, total)
	}
	parent := ix.scratch[:total]
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// topRuns sharing a below-root are connected through the rows below.
	for k := 0; k < m; k++ {
		if ix.rootLink[k] >= 0 {
			union(n+k, n+ix.rootLink[k])
		}
	}
	// Merge-scan current-row runs against row i−1 runs.
	i, j := 0, 0
	for i < m && j < n {
		a, b := ix.topRuns[i], cur[j]
		if a.start < b.start+b.length && b.start < a.start+a.length {
			union(n+i, j)
		}
		if a.start+a.length < b.start+b.length {
			i++
		} else {
			j++
		}
	}
	target := find(vIdx)
	w := 0
	for k := 0; k < n; k++ {
		if find(k) == target {
			w += cur[k].length
		}
	}
	for k := 0; k < m; k++ {
		if ix.shareWeight[k] > 0 && find(n+k) == target {
			w += ix.shareWeight[k]
		}
	}
	return w
}

// sized returns s resized to n entries, reusing capacity.
func sized(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
