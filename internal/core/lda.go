package core

import (
	"math"
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/sta"
)

// LDAResult reports one Dynamic Local Density Adjustment run.
type LDAResult struct {
	// Moved is the total number of cells relocated by ECO placement over
	// all iterations.
	Moved int
	// Iterations actually performed.
	Iterations int
	// Satisfied reports whether the final iteration met every blockage cap.
	Satisfied bool
}

// LocalDensityAdjust runs Algorithm 2: the core is divided into N×N grids;
// each iteration deletes the existing blockages, counts security-critical
// cells per grid, normalizes the counts, smooths them through a sigmoid into
// density upper bounds, installs one partial placement blockage per grid,
// and runs wirelength-driven ECO placement. Regions with few assets get low
// density caps, so free space is pushed away from the security-critical
// cells with minimal wirelength (timing) impact.
// timing, when non-nil, supplies per-instance slack so cells on critical
// paths are not relocated (the rearrangement is wire-length/timing driven).
func LocalDensityAdjust(l *layout.Layout, gridN, iters int, seed int64, timing *sta.Result) LDAResult {
	if gridN < 1 {
		gridN = 1
	}
	var res LDAResult
	for it := 0; it < iters; it++ {
		moved, satisfied := ldaIteration(l, gridN, seed, it, timing)
		res.Moved += moved
		res.Satisfied = satisfied
		res.Iterations++
	}
	// Blockages are transient scaffolding of the operator.
	l.ClearBlockages()
	return res
}

// ldaIteration runs one iteration of Algorithm 2 with absolute iteration
// index it (the ECO placement seed is seed+it, so a chain resumed from a
// memoized prefix draws the same randomness as an uninterrupted run).
//
// Each iteration begins by deleting the previous iteration's blockages and
// ends with its own installed, so the only state an iteration hands to the
// next is the placement itself — which is what makes the LDA chain
// memoizable as placement diffs: LDA(N, k+1) ≡ LDA(N, k) + ldaIteration(k)
// regardless of whether the k-iteration state was computed or replayed.
func ldaIteration(l *layout.Layout, gridN int, seed int64, it int, timing *sta.Result) (moved int, satisfied bool) {
	l.ClearBlockages()
	counts := assetCounts(l, gridN)
	mean, std := meanStd(counts)

	rowsPer := (l.NumRows + gridN - 1) / gridN
	sitesPer := (l.SitesPerRow + gridN - 1) / gridN
	// Density caps must admit the design: floor at a fraction of the
	// current utilization so the aggregate remains feasible.
	util := l.Utilization()
	floor := util * 0.55
	for gi := 0; gi < gridN; gi++ {
		for gj := 0; gj < gridN; gj++ {
			z := 0.0
			if std > 0 {
				z = (counts[gi][gj] - mean) / std
			}
			dens := sigmoid(z)
			if dens < floor {
				dens = floor
			}
			l.AddBlockage(layout.Blockage{
				Row0: gi * rowsPer, Row1: (gi + 1) * rowsPer,
				Site0: gj * sitesPer, Site1: (gj + 1) * sitesPer,
				MaxDensity: dens,
			})
		}
	}
	eco := place.ECO(l, seed+int64(it))
	moved = eco.Moved
	satisfied = eco.Satisfied
	// Density elevation: pull nearby movable cells into asset tiles up
	// to their (higher) caps, eliminating free sites next to the
	// assets themselves.
	moved += attractIntoAssetTiles(l, gridN, counts, timing)
	return moved, satisfied
}

// attractIntoAssetTiles fills asset-holding tiles toward their density caps
// by moving in the nearest movable non-critical cells, choosing at each
// step the candidate whose relocation costs the least wirelength.
func attractIntoAssetTiles(l *layout.Layout, gridN int, counts [][]float64, timing *sta.Result) int {
	rowsPer := (l.NumRows + gridN - 1) / gridN
	sitesPer := (l.SitesPerRow + gridN - 1) / gridN
	moved := 0
	for gi := 0; gi < gridN; gi++ {
		for gj := 0; gj < gridN; gj++ {
			if counts[gi][gj] == 0 {
				continue
			}
			r0, r1 := gi*rowsPer, min((gi+1)*rowsPer, l.NumRows)
			s0, s1 := gj*sitesPer, min((gj+1)*sitesPer, l.SitesPerRow)
			capD := l.BlockageAt(r0, s0)
			moved += fillTile(l, r0, r1, s0, s1, capD, timing)
		}
	}
	return moved
}

// fillTile moves outside cells into the tile's free runs until density
// reaches cap or no candidate improves cheaply.
// slackMarginPS is the minimum timing slack a cell must have to be an LDA
// relocation donor: moving near-critical cells would wreck timing.
const slackMarginPS = 120

func fillTile(l *layout.Layout, r0, r1, s0, s1 int, capD float64, timing *sta.Result) int {
	tileSites := (r1 - r0) * (s1 - s0)
	if tileSites == 0 {
		return 0
	}
	budget := int(capD*float64(tileSites)) - int(l.RegionDensity(r0, r1, s0, s1)*float64(tileSites))
	if budget <= 0 {
		return 0
	}
	// Candidate donors: movable functional cells outside the tile, nearest
	// first (by row/site distance to the tile center).
	type cand struct {
		in   *netlist.Instance
		dist int
	}
	cr, cs := (r0+r1)/2, (s0+s1)/2
	var cands []cand
	for _, in := range l.Netlist.Insts {
		if in.Fixed || !in.Master.IsFunctional() {
			continue
		}
		if timing != nil {
			if sl := timing.InstSlack(in); !math.IsInf(sl, 1) && sl < slackMarginPS {
				continue // critical-path cell: do not disturb
			}
		}
		p := l.PlacementOf(in)
		if !p.Placed || (p.Row >= r0 && p.Row < r1 && p.Site >= s0 && p.Site < s1) {
			continue
		}
		d := abs(p.Row-cr)*8 + abs(p.Site-cs)
		cands = append(cands, cand{in, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].in.ID < cands[j].in.ID
	})
	moved := 0
	for _, c := range cands {
		if budget <= 0 {
			break
		}
		w := c.in.Master.WidthSites
		if w > budget {
			continue
		}
		// First free slot in the tile that fits.
		placedAt := -1
		var row int
		for r := r0; r < r1 && placedAt < 0; r++ {
			for _, run := range l.FreeRuns(r) {
				lo := max(run.Start, s0)
				hi := min(run.Start+run.Len, s1)
				if hi-lo >= w {
					placedAt, row = lo, r
					break
				}
			}
		}
		if placedAt < 0 {
			break // tile fragmented: no slot fits any further cell
		}
		old := l.PlacementOf(c.in)
		if err := l.Place(c.in, row, placedAt); err != nil {
			continue
		}
		budget -= w
		moved++
		_ = old
	}
	return moved
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// assetCounts returns the number of security-critical cells per grid tile.
func assetCounts(l *layout.Layout, gridN int) [][]float64 {
	counts := make([][]float64, gridN)
	for i := range counts {
		counts[i] = make([]float64, gridN)
	}
	rowsPer := (l.NumRows + gridN - 1) / gridN
	sitesPer := (l.SitesPerRow + gridN - 1) / gridN
	for _, in := range l.Netlist.CriticalInsts() {
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		gi := p.Row / rowsPer
		gj := p.Site / sitesPer
		if gi >= gridN {
			gi = gridN - 1
		}
		if gj >= gridN {
			gj = gridN - 1
		}
		counts[gi][gj]++
	}
	return counts
}

func meanStd(m [][]float64) (mean, std float64) {
	n := 0
	for _, row := range m {
		for _, v := range row {
			mean += v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean /= float64(n)
	for _, row := range m {
		for _, v := range row {
			std += (v - mean) * (v - mean)
		}
	}
	std = math.Sqrt(std / float64(n))
	return mean, std
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }
