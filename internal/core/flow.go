package core

import (
	"context"
	"math"
	"sync"
	"time"

	"gdsiiguard/internal/drc"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/power"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/security"
	"gdsiiguard/internal/sta"
)

// FlowConfig holds the design-independent configuration of the flow.
type FlowConfig struct {
	// Constraints are the design's timing constraints (required).
	Constraints *sdc.Constraints
	// Security holds Thresh_ER and the Trojan model. Unset (zero) fields
	// are filled individually from security.DefaultParams, so configuring
	// one field never discards the others.
	Security security.Params
	// Alpha weighs ERsites vs ERtracks in the security score (paper: 0.5).
	// Zero means "unset" and normalizes to 0.5; a true α = 0 (pure
	// ERtracks scoring) is expressed by setting AlphaZero.
	Alpha float64
	// AlphaZero marks Alpha == 0 as intentional rather than unset.
	AlphaZero bool
	// RouteOpts configures the global router.
	RouteOpts route.Options
	// Activity is the switching activity for power analysis.
	Activity float64
	// Seed drives the flow's randomized tie-breaking.
	Seed int64
}

// normalized fills defaults field by field: an unset security parameter
// takes its default without clobbering the user-configured ones, and an
// unset Alpha becomes the paper's 0.5 unless AlphaZero marks an explicit
// zero weighting.
func (c FlowConfig) normalized() FlowConfig {
	def := security.DefaultParams()
	if c.Security.ThreshER == 0 {
		c.Security.ThreshER = def.ThreshER
	}
	if c.Security.TrojanCell == "" {
		c.Security.TrojanCell = def.TrojanCell
	}
	if c.Security.TrojanWireFactor == 0 {
		c.Security.TrojanWireFactor = def.TrojanWireFactor
	}
	// Security.MaxRadiusDBU: zero already means "core diagonal" downstream.
	if c.Alpha == 0 && !c.AlphaZero {
		c.Alpha = 0.5
	}
	return c
}

// Metrics are the post-design metrics of one evaluated layout (§II-C).
type Metrics struct {
	// Security is α·ERsites/ERsites_base + (1−α)·ERtracks/ERtracks_base.
	// Lower is more secure; the baseline scores 1.0 by construction.
	Security float64
	// ERSites and ERTracks are the raw exploitable-region totals.
	ERSites  int
	ERTracks float64
	// TNS and WNS in ps (TNS ≤ 0).
	TNS, WNS float64
	// PowerMW is total power in mW.
	PowerMW float64
	// DRC is the design-rule violation count.
	DRC int
	// WirelengthDBU is total routed wirelength.
	WirelengthDBU int64
	// Runtime is the wall time of the evaluation.
	Runtime time.Duration
}

// Baseline is the evaluated original design L_base that optimized layouts
// are normalized against.
type Baseline struct {
	Layout     *layout.Layout
	Routes     *route.Result
	Timing     *sta.Result
	Assessment *security.Assessment
	Metrics    Metrics
	Config     FlowConfig

	// memo is the lazily built cross-chromosome stage cache (see delta.go),
	// created on first Memo() call. It hangs off the baseline so every
	// consumer sharing one — nsga2 arena pools, the service design cache,
	// cluster worker baselines — shares memoized stages automatically.
	memoOnce sync.Once
	memo     *StageMemo

	// graph is the lazily captured levelized timing graph (see
	// TimingGraph). Like the memo it hangs off the baseline: the graph
	// depends only on netlist connectivity, which every arena clone
	// preserves, so one levelization serves all evaluations.
	graphOnce sync.Once
	graph     *sta.Graph
}

// TimingGraph returns the baseline's levelized timing graph, built at most
// once. The baseline timing result usually carries it already (Analyze
// retains the graph it levelized); otherwise it is built from the netlist.
// A nil return (cyclic netlist) makes callers fall back to per-call
// levelization, which will report the cycle.
func (b *Baseline) TimingGraph() *sta.Graph {
	b.graphOnce.Do(func() {
		if b.Timing != nil && b.Timing.Graph() != nil {
			b.graph = b.Timing.Graph()
			return
		}
		if g, err := sta.BuildGraph(b.Layout.Netlist); err == nil {
			b.graph = g
		}
	})
	return b.graph
}

// EvalBaseline routes and analyzes the baseline layout and computes its
// security assessment. The baseline layout itself is not modified. Stage
// failures (including recovered panics) come back stage-tagged and
// classified (see FlowError / FlowPanicError).
func EvalBaseline(l *layout.Layout, cfg FlowConfig) (b *Baseline, err error) {
	cfg = cfg.normalized()
	start := time.Now()
	end := beginEval()
	defer func() { end(err) }()
	var (
		routes *route.Result
		timing *sta.Result
		pw     power.Result
		assess *security.Assessment
		checks drc.Result
	)
	stages := []struct {
		stage Stage
		f     func() (err error)
	}{
		{StageRoute, func() (err error) {
			routes, err = route.Route(l, cfg.RouteOpts)
			return err
		}},
		{StageTiming, func() (err error) {
			timing, err = sta.Analyze(l, sta.Options{Constraints: cfg.Constraints, Routes: routes})
			return err
		}},
		{StagePower, func() (err error) {
			pw, err = power.Analyze(l, power.Options{Constraints: cfg.Constraints, Routes: routes, Activity: cfg.Activity})
			return err
		}},
		{StageSecurity, func() (err error) {
			assess, err = security.Assess(l, routes, timing, cfg.Security)
			return err
		}},
		{StageDRC, func() error {
			checks = drc.Check(l, routes)
			return nil
		}},
	}
	for _, s := range stages {
		if err := timedStage(s.stage, s.f); err != nil {
			return nil, err
		}
	}
	b = &Baseline{
		Layout:     l,
		Routes:     routes,
		Timing:     timing,
		Assessment: assess,
		Config:     cfg,
		Metrics: Metrics{
			Security:      1.0,
			ERSites:       assess.ERSites,
			ERTracks:      assess.ERTracks,
			TNS:           timing.TNS,
			WNS:           timing.WNS,
			PowerMW:       pw.TotalMW,
			DRC:           checks.Violations,
			WirelengthDBU: routes.TotalWL,
			Runtime:       time.Since(start),
		},
	}
	return b, nil
}

// Result is one hardened layout with its metrics.
type Result struct {
	Layout     *layout.Layout
	Routes     *route.Result
	Timing     *sta.Result
	Assessment *security.Assessment
	Metrics    Metrics
	Params     Params
	// Config is the flow configuration the layout was evaluated under
	// (copied from the baseline), so downstream consumers — notably attack
	// simulation — use the same security parameters as the baseline.
	Config FlowConfig
	// CS / LDA operator telemetry (whichever ran).
	CSResult  CellShiftResult
	LDAResult LDAResult
}

// Preprocess locks every security-critical instance so subsequent ECO
// operators cannot remove or displace it (the flow's first step).
func Preprocess(l *layout.Layout) int {
	n := 0
	for _, in := range l.Netlist.CriticalInsts() {
		if !in.Fixed {
			in.Fixed = true
			n++
		}
	}
	return n
}

// Run applies the GDSII-Guard flow f(L_base; x) for one parameter vector:
// clone, preprocess, the selected anti-Trojan ECO placement operator,
// Routing Width Scaling, ECO routing, then metric extraction. The baseline
// is never modified.
func Run(base *Baseline, p Params) (*Result, error) {
	return RunCtx(context.Background(), base, p)
}

// RunCtx is Run with cooperative cancellation: the flow observes ctx
// between its stages (operator, routing, timing, power, security) and
// returns ctx.Err() as soon as cancellation or deadline expiry is seen.
// Stage failures — including panics recovered inside a stage — come back
// as stage-tagged, classified errors (FlowError / FlowPanicError), so one
// bad evaluation can be retried or degraded by callers instead of taking
// down a whole exploration.
func RunCtx(ctx context.Context, base *Baseline, p Params) (*Result, error) {
	if err := p.Validate(base.Layout.Lib().NumLayers()); err != nil {
		return nil, &FlowError{Stage: StageValidate, Class: ClassPermanent, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return runOn(ctx, base, base.Layout.Clone(), p)
}

// runOn applies the flow to an already-materialized working layout (a fresh
// clone for RunCtx, the reusable arena for Scratch). The layout is mutated.
func runOn(ctx context.Context, base *Baseline, l *layout.Layout, p Params) (*Result, error) {
	cfg := base.Config
	start := time.Now()
	Preprocess(l)

	res := &Result{Layout: l, Params: p.Clone()}
	if err := timedStage(StageOperator, func() error {
		// Pin near-critical cells for the duration of the operator so
		// neither ECO placement nor cell shifting disturbs the critical
		// paths (the operators are timing-driven).
		unpin := pinCritical(l, base.Timing, slackMarginPS)
		defer unpin()
		switch p.Op {
		case CS:
			res.CSResult = CellShift(l, cfg.Security.ThreshER)
		case LDA:
			res.LDAResult = LocalDensityAdjust(l, p.LDAGridN, p.LDAIters, cfg.Seed, base.Timing)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Routing Width Scaling: install the NDR, then (re-)route everything
	// under it.
	copy(l.NDR.Scale, p.ScaleM)
	if err := EvaluateCtx(ctx, l, base, res); err != nil {
		return nil, err
	}
	res.Metrics.Runtime = time.Since(start)
	return res, nil
}

// Evaluate routes the (already transformed) layout and fills the result's
// routes, timing, security assessment and metrics, normalized against the
// baseline. It is shared between the GDSII-Guard flow and the baseline
// defenses so every scheme is measured identically.
func Evaluate(l *layout.Layout, base *Baseline, res *Result) error {
	return EvaluateCtx(context.Background(), l, base, res)
}

// EvaluateCtx is Evaluate with cooperative cancellation between analysis
// stages. Each stage runs under panic containment and failures come back
// stage-tagged and classified. The result's Metrics.Runtime is the wall
// time of the evaluation itself (RunCtx widens it to the whole flow), so
// baseline-defense comparisons report a real runtime instead of zero.
func EvaluateCtx(ctx context.Context, l *layout.Layout, base *Baseline, res *Result) (err error) {
	cfg := base.Config
	start := time.Now()
	end := beginEval()
	defer func() { end(err) }()
	var (
		routes *route.Result
		timing *sta.Result
		pw     power.Result
		assess *security.Assessment
		checks drc.Result
	)
	stages := []struct {
		stage Stage
		f     func() (err error)
	}{
		{StageRoute, func() (err error) {
			routes, err = route.Route(l, cfg.RouteOpts)
			return err
		}},
		{StageTiming, func() (err error) {
			timing, err = sta.AnalyzeWithGraph(l, sta.Options{Constraints: cfg.Constraints, Routes: routes}, base.TimingGraph())
			return err
		}},
		{StagePower, func() (err error) {
			pw, err = power.Analyze(l, power.Options{Constraints: cfg.Constraints, Routes: routes, Activity: cfg.Activity})
			return err
		}},
		{StageSecurity, func() (err error) {
			assess, err = security.Assess(l, routes, timing, cfg.Security)
			return err
		}},
		{StageDRC, func() error {
			checks = drc.Check(l, routes)
			return nil
		}},
	}
	for _, s := range stages {
		if err := timedStage(s.stage, s.f); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}

	res.Layout = l
	res.Config = cfg
	res.Routes = routes
	res.Timing = timing
	res.Assessment = assess
	res.Metrics = Metrics{
		Security:      security.Score(assess, base.Assessment, cfg.Alpha),
		ERSites:       assess.ERSites,
		ERTracks:      assess.ERTracks,
		TNS:           timing.TNS,
		WNS:           timing.WNS,
		PowerMW:       pw.TotalMW,
		DRC:           checks.Violations,
		WirelengthDBU: routes.TotalWL,
		Runtime:       time.Since(start),
	}
	return nil
}

// pinCritical temporarily marks cells with slack below marginPS as Fixed;
// the returned function releases exactly the cells it pinned. The baseline
// timing's instance IDs are valid for the clone because Clone preserves
// ordering.
func pinCritical(l *layout.Layout, timing *sta.Result, marginPS float64) func() {
	if timing == nil {
		return func() {}
	}
	var pinned []*netlist.Instance
	for _, in := range l.Netlist.Insts {
		if in.Fixed || !in.Master.IsFunctional() {
			continue
		}
		if sl := timing.InstSlack(in); !math.IsInf(sl, 1) && sl < marginPS {
			in.Fixed = true
			pinned = append(pinned, in)
		}
	}
	return func() {
		for _, in := range pinned {
			in.Fixed = false
		}
	}
}

// Feasible reports whether the metrics meet the hard constraints of §II-C:
// DRC_viol ≤ nDRC and Power ≤ βPower × baseline power.
func Feasible(m Metrics, base *Baseline, nDRC int, betaPower float64) bool {
	return m.DRC <= nDRC && m.PowerMW <= betaPower*base.Metrics.PowerMW
}
