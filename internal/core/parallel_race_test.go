package core

import (
	"math/rand"
	"sync"
	"testing"

	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sta"
)

// TestConcurrentArenasWithParallelRouteSTA is the race check for the two
// intra-evaluation parallel paths layered under the inter-evaluation arena
// concurrency: several arenas evaluate the same chromosome set concurrently
// while every route stage runs wave-parallel and every STA stage runs
// level-parallel. Under -race this catches any shared mutable state the
// workers leak across either boundary; in all modes it asserts the results
// stay bit-identical to a sequential single-arena evaluation.
func TestConcurrentArenasWithParallelRouteSTA(t *testing.T) {
	route.SetWorkers(4)
	sta.SetWorkers(4)
	defer route.SetWorkers(0)
	defer sta.SetWorkers(0)

	l := buildDesign(t, 12, 30, 0.5, 3)
	base, err := EvalBaseline(l, flowConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	k := base.Layout.Lib().NumLayers()

	rng := rand.New(rand.NewSource(33))
	var params []Params
	for i := 0; i < 6; i++ {
		params = append(params, RandomParams(k, rng))
	}

	const workers = 3
	results := make([][]Metrics, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch(base)
			for _, p := range params {
				res, err := s.Run(p)
				if err != nil {
					t.Errorf("worker %d (%s): %v", w, p.Key(), err)
					return
				}
				results[w] = append(results[w], res.Metrics)
			}
		}()
	}
	wg.Wait()

	// Sequential reference: one memo-less arena with both parallel paths
	// forced off. Parallel-under-concurrency must reproduce it exactly.
	route.SetWorkers(1)
	sta.SetWorkers(1)
	plain := NewScratchPlain(base)
	for i, p := range params {
		want, err := plain.Run(p)
		if err != nil {
			t.Fatalf("plain (%s): %v", p.Key(), err)
		}
		for w := 0; w < workers; w++ {
			if len(results[w]) <= i {
				continue // that worker already reported a failure
			}
			sameMetrics(t, p.Key(), results[w][i], want.Metrics)
		}
	}
}
