package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gdsiiguard/internal/drc"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/power"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/security"
	"gdsiiguard/internal/sta"
)

// This file implements cross-chromosome delta evaluation: a mutated child
// chromosome is evaluated as a delta from previously evaluated relatives
// instead of from the baseline, stage by stage, following the gene→stage
// dependency map documented in params.go.
//
//   - The operator stage memoizes its output — the post-operator placement
//     as a diff against the baseline (layout.DiffPlacements) plus the
//     operator telemetry — keyed by Params.OpKey(). A hit replays the diff
//     onto the arena through the journal (layout.ApplyMoves) instead of
//     re-running the operator; an arena that already holds the placement
//     skips even the replay. LDA keys form chains (LDA:N:k+1 extends
//     LDA:N:k by one ldaIteration), so a miss can still start from the
//     deepest memoized prefix, or extend the arena's current chain in
//     place.
//   - The route stage shares one placement-derived route.Geometry per
//     OpKey and warm-starts from a donor route with the exact same NDR
//     scale vector (Params.ScaleKey()), rerouting only nets attached to
//     cells moved between the donor's placement and the arena's
//     (route.Warm); anything else falls back to a cold, geometry-reusing
//     route. Both paths are bit-identical to routing from scratch.
//   - Timing, power, security and DRC are deterministic functions of the
//     routed layout and run unchanged.
//
// The memo hangs off the Baseline (Baseline.Memo), so every consumer that
// shares a baseline — the nsga2 arena pool, the service design cache, the
// cluster worker baseline cache — shares the memo automatically, island
// epochs included. Memory is bounded by construction: the operator gene
// space admits at most 16 distinct OpKeys (CS plus 5 grids × 3 iteration
// counts), so ops and geometry maps never exceed 16 entries, and the donor
// route cache is an LRU capped at donorCacheCap.

// DeltaStats counts what delta evaluation reused and what it recomputed.
// The zero value is ready to use; Add merges.
type DeltaStats struct {
	// OpRuns counts operator computations with no reuse (a CS run or an
	// LDA chain from iteration zero).
	OpRuns int `json:"op_runs"`
	// OpMemoHits counts operator placements replayed from the shared memo
	// (exact OpKey hits and LDA prefix replays).
	OpMemoHits int `json:"op_memo_hits"`
	// OpArenaHits counts evaluations whose arena already held the operator
	// placement from a previous evaluation — no rollback, no replay.
	OpArenaHits int `json:"op_arena_hits"`
	// OpIterSteps counts LDA iterations executed on top of a reused prefix
	// (memoized or in-arena) rather than as part of a full chain.
	OpIterSteps int `json:"op_iter_steps"`
	// RoutesWarm / RoutesCold count route stages warm-started from a donor
	// vs routed cold.
	RoutesWarm int `json:"routes_warm"`
	RoutesCold int `json:"routes_cold"`
	// NetsReplayed / NetsRerouted count per-net outcomes across all route
	// stages (cold routes count every routed net as rerouted).
	NetsReplayed int `json:"nets_replayed"`
	NetsRerouted int `json:"nets_rerouted"`
	// StaFull / StaDelta count timing stages analyzed over the whole graph
	// vs delta-analyzed over changed-net cones only.
	StaFull  int `json:"sta_full"`
	StaDelta int `json:"sta_delta"`
	// StaConeInsts / StaConeNets total the forward (re-evaluated
	// combinational instances) and backward (recomputed required times)
	// cone sizes across all delta timing stages.
	StaConeInsts int `json:"sta_cone_insts"`
	StaConeNets  int `json:"sta_cone_nets"`
}

// Add accumulates o into d.
func (d *DeltaStats) Add(o DeltaStats) {
	d.OpRuns += o.OpRuns
	d.OpMemoHits += o.OpMemoHits
	d.OpArenaHits += o.OpArenaHits
	d.OpIterSteps += o.OpIterSteps
	d.RoutesWarm += o.RoutesWarm
	d.RoutesCold += o.RoutesCold
	d.NetsReplayed += o.NetsReplayed
	d.NetsRerouted += o.NetsRerouted
	d.StaFull += o.StaFull
	d.StaDelta += o.StaDelta
	d.StaConeInsts += o.StaConeInsts
	d.StaConeNets += o.StaConeNets
}

// warmDirtyMaxFrac is the largest fraction of dirty nets for which a warm
// start is attempted; past it, wholesale rerouting plus replay bookkeeping
// costs more than a cold route.
const warmDirtyMaxFrac = 0.35

// donorCacheCap bounds the per-baseline donor route cache (each entry
// holds one full route.Result).
const donorCacheCap = 8

// errOpAborted is what waiters on a shared operator computation see when
// the computing evaluation failed; it is transient because the entry is
// removed and the next attempt recomputes.
var errOpAborted = &FlowError{
	Stage: StageOperator,
	Class: ClassTransient,
	Err:   errors.New("shared operator computation aborted"),
}

// StageMemo is the cross-chromosome per-stage cache shared by every
// evaluation arena over one baseline. Safe for concurrent use.
type StageMemo struct {
	mu sync.Mutex
	// ops memoizes post-operator placements by OpKey with per-key
	// singleflight: the first evaluation computes, concurrent ones wait on
	// the entry, later ones replay.
	ops map[string]*opEntry
	// geos memoizes the placement-derived route geometry by OpKey.
	geos map[string]*route.Geometry
	// donors caches clean (zero-victim) route results by exact ScaleKey
	// for warm-starting, in LRU order (most recent last).
	donors     map[string]*donorEntry
	donorOrder []string
}

// opEntry is one memoized operator output. ready closes when the compute
// finishes; after that, err != nil means the compute failed (the entry is
// also removed from the map, so the next evaluation retries).
type opEntry struct {
	ready chan struct{}
	diff  []layout.InstMove
	cs    CellShiftResult
	lda   LDAResult
	err   error
}

// donorEntry is one warm-start donor: a clean route under a specific NDR
// scale, plus the placement (as a diff vs the baseline) it was routed on
// and the timing analysis of that routed state — the delta-STA donor for
// warm evaluations.
type donorEntry struct {
	opKey  string
	diff   []layout.InstMove
	routes *route.Result
	timing *sta.Result
}

func newStageMemo(b *Baseline) *StageMemo {
	m := &StageMemo{
		ops:    map[string]*opEntry{},
		geos:   map[string]*route.Geometry{},
		donors: map[string]*donorEntry{},
	}
	// The baseline route is the first donor: its placement diff is empty
	// and its NDR is the unscaled default, so identity-scale chromosomes
	// (every run evaluates at least the identity configuration) warm-start
	// immediately, rerouting only the nets the operator touched.
	if b != nil && b.Routes != nil && b.Routes.Victims == 0 && len(b.Routes.NDRScale) > 0 {
		key := fmt.Sprintf("%v", b.Routes.NDRScale)
		m.donors[key] = &donorEntry{routes: b.Routes, timing: b.Timing}
		m.donorOrder = append(m.donorOrder, key)
	}
	return m
}

// Memo returns the baseline's shared stage memo, creating it on first use.
func (b *Baseline) Memo() *StageMemo {
	b.memoOnce.Do(func() { b.memo = newStageMemo(b) })
	return b.memo
}

// claimOp returns the entry for key. claimed is true when the caller owns
// the computation and must publishOp or failOp it; false means another
// evaluation is (or was) computing and the caller waits on entry.ready.
func (m *StageMemo) claimOp(key string) (e *opEntry, claimed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.ops[key]; ok {
		return e, false
	}
	e = &opEntry{ready: make(chan struct{})}
	m.ops[key] = e
	return e, true
}

// readyOp returns the completed entry for key, or nil if absent or still
// computing (prefix lookups never wait — a shallower prefix or the
// baseline is always available).
func (m *StageMemo) readyOp(key string) *opEntry {
	m.mu.Lock()
	e, ok := m.ops[key]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil
		}
		return e
	default:
		return nil
	}
}

// publishOp completes a claimed entry.
func (m *StageMemo) publishOp(e *opEntry, diff []layout.InstMove, cs CellShiftResult, lda LDAResult) {
	e.diff, e.cs, e.lda = diff, cs, lda
	close(e.ready)
}

// failOp abandons a claimed entry: waiters get err and the key is removed
// so the next evaluation recomputes.
func (m *StageMemo) failOp(key string, e *opEntry, err error) {
	e.err = err
	close(e.ready)
	m.mu.Lock()
	if m.ops[key] == e {
		delete(m.ops, key)
	}
	m.mu.Unlock()
}

// publishOpIfAbsent records an intermediate LDA chain link computed as a
// byproduct. Links already present (ready or computing) are left alone —
// a concurrent computer of the same link will publish the identical
// result.
func (m *StageMemo) publishOpIfAbsent(key string, diff []layout.InstMove, lda LDAResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.ops[key]; ok {
		return
	}
	e := &opEntry{ready: make(chan struct{}), diff: diff, lda: lda}
	close(e.ready)
	m.ops[key] = e
}

// geometry returns the route geometry for the given operator placement,
// building it from l (which must currently hold that placement) on first
// use.
func (m *StageMemo) geometry(opKey string, l *layout.Layout) *route.Geometry {
	m.mu.Lock()
	g, ok := m.geos[opKey]
	m.mu.Unlock()
	if ok {
		return g
	}
	g = route.BuildGeometry(l)
	m.mu.Lock()
	if prev, ok := m.geos[opKey]; ok {
		g = prev // a concurrent build won; both are identical
	} else {
		m.geos[opKey] = g
	}
	m.mu.Unlock()
	return g
}

// donor returns the warm-start donor for an exact NDR scale key, or nil.
func (m *StageMemo) donor(scaleKey string) *donorEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.donors[scaleKey]
	if !ok {
		return nil
	}
	for i, k := range m.donorOrder {
		if k == scaleKey {
			m.donorOrder = append(append(m.donorOrder[:i], m.donorOrder[i+1:]...), scaleKey)
			break
		}
	}
	return d
}

// putDonor caches a clean route result (and the timing analyzed on it) as
// the donor for its scale key, evicting the least recently used donor past
// donorCacheCap.
func (m *StageMemo) putDonor(scaleKey, opKey string, diff []layout.InstMove, routes *route.Result, timing *sta.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.donors[scaleKey]; !ok {
		if len(m.donors) >= donorCacheCap {
			old := m.donorOrder[0]
			m.donorOrder = m.donorOrder[1:]
			delete(m.donors, old)
		}
		m.donorOrder = append(m.donorOrder, scaleKey)
	}
	m.donors[scaleKey] = &donorEntry{opKey: opKey, diff: diff, routes: routes, timing: timing}
}

// runDelta is the delta-evaluation counterpart of runOn: same stages, same
// results, but the operator stage reuses memoized placements and the route
// stage reuses geometry and warm-starts from donors. Bit-identical to
// runOn by construction (golden- and property-tested).
func (s *Scratch) runDelta(ctx context.Context, p Params) (*Result, error) {
	l := s.l
	start := time.Now()
	Preprocess(l)

	res := &Result{Layout: l, Params: p.Clone()}
	if err := timedStage(StageOperator, func() error {
		return s.applyOperator(ctx, p, res)
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Routing Width Scaling: install the NDR, then (re-)route under it.
	copy(l.NDR.Scale, p.ScaleM)
	if err := s.evaluateDelta(ctx, p, res); err != nil {
		return nil, err
	}
	res.Metrics.Runtime = time.Since(start)
	return res, nil
}

// adopt records the arena's new post-operator state and its journal mark,
// so subsequent evaluations sharing the OpKey skip the operator entirely.
func (s *Scratch) adopt(opKey string, diff []layout.InstMove, cs CellShiftResult, lda LDAResult) {
	s.haveCur = true
	s.curOpKey = opKey
	s.curDiff = diff
	s.curCS, s.curLDA = cs, lda
	s.opMark = s.l.JournalMark()
}

// rewindOperator returns the arena to the baseline placement.
func (s *Scratch) rewindOperator() {
	s.haveCur = false
	s.curOpKey, s.curDiff = "", nil
	s.l.RollbackJournal(0)
	s.opMark = 0
}

// applyOperator brings the arena to the post-operator placement for p:
// in order of preference, the placement is already in the arena, the
// arena's LDA chain is extended in place, the memoized diff (or a
// memoized LDA prefix) is replayed, or the operator runs from the
// baseline — publishing what it computed for every later evaluation.
func (s *Scratch) applyOperator(ctx context.Context, p Params, res *Result) error {
	l, base, memo := s.l, s.base, s.memo
	opKey := p.OpKey()

	if s.haveCur && s.curOpKey == opKey {
		res.CSResult, res.LDAResult = s.curCS, s.curLDA
		s.stats.OpArenaHits++
		deltaOperator.With("arena_hit").Inc()
		return nil
	}
	if s.haveCur && p.Op == LDA {
		if n, it, ok := ParseLDAOpKey(s.curOpKey); ok && n == p.LDAGridN && it < p.LDAIters {
			if err := s.extendLDA(p, it, res); err != nil {
				return err
			}
			deltaOperator.With("arena_extend").Inc()
			return nil
		}
	}
	s.rewindOperator()

	entry, claimed := memo.claimOp(opKey)
	if !claimed {
		select {
		case <-entry.ready:
		case <-ctx.Done():
			return ctx.Err()
		}
		if entry.err != nil {
			return entry.err
		}
		if err := l.ApplyMoves(entry.diff); err != nil {
			return err
		}
		s.adopt(opKey, entry.diff, entry.cs, entry.lda)
		res.CSResult, res.LDAResult = entry.cs, entry.lda
		s.stats.OpMemoHits++
		deltaOperator.With("memo_hit").Inc()
		return nil
	}

	// This evaluation owns the computation.
	published := false
	defer func() {
		if !published {
			memo.failOp(opKey, entry, errOpAborted)
		}
	}()

	unpin := pinCritical(l, base.Timing, slackMarginPS)
	defer unpin()

	if p.Op == CS {
		cs := CellShift(l, base.Config.Security.ThreshER)
		diff := layout.DiffPlacements(base.Layout, l)
		memo.publishOp(entry, diff, cs, LDAResult{})
		published = true
		s.adopt(opKey, diff, cs, LDAResult{})
		res.CSResult = cs
		s.stats.OpRuns++
		deltaOperator.With("run").Inc()
		return nil
	}

	// LDA: start from the deepest memoized prefix of the chain.
	from := 0
	var lda LDAResult
	for it := p.LDAIters - 1; it >= 1; it-- {
		if pe := memo.readyOp(LDAOpKey(p.LDAGridN, it)); pe != nil {
			if err := l.ApplyMoves(pe.diff); err != nil {
				return err
			}
			from, lda = it, pe.lda
			s.stats.OpMemoHits++
			deltaOperator.With("prefix_hit").Inc()
			break
		}
	}
	if from == 0 {
		s.stats.OpRuns++
		deltaOperator.With("run").Inc()
	}
	for it := from; it < p.LDAIters; it++ {
		moved, satisfied := ldaIteration(l, p.LDAGridN, base.Config.Seed, it, base.Timing)
		lda.Moved += moved
		lda.Satisfied = satisfied
		lda.Iterations++
		if from > 0 {
			s.stats.OpIterSteps++
		}
		if it+1 < p.LDAIters {
			memo.publishOpIfAbsent(LDAOpKey(p.LDAGridN, it+1),
				layout.DiffPlacements(base.Layout, l), lda)
		}
	}
	l.ClearBlockages()
	diff := layout.DiffPlacements(base.Layout, l)
	memo.publishOp(entry, diff, CellShiftResult{}, lda)
	published = true
	s.adopt(opKey, diff, CellShiftResult{}, lda)
	res.LDAResult = lda
	return nil
}

// extendLDA runs only the missing iterations of p's LDA chain on top of
// the arena's current chain state, publishing each newly completed link.
func (s *Scratch) extendLDA(p Params, from int, res *Result) error {
	l, base, memo := s.l, s.base, s.memo
	lda := s.curLDA
	unpin := pinCritical(l, base.Timing, slackMarginPS)
	defer unpin()
	for it := from; it < p.LDAIters; it++ {
		moved, satisfied := ldaIteration(l, p.LDAGridN, base.Config.Seed, it, base.Timing)
		lda.Moved += moved
		lda.Satisfied = satisfied
		lda.Iterations++
		s.stats.OpIterSteps++
		if it+1 < p.LDAIters {
			memo.publishOpIfAbsent(LDAOpKey(p.LDAGridN, it+1),
				layout.DiffPlacements(base.Layout, l), lda)
		}
	}
	l.ClearBlockages()
	diff := layout.DiffPlacements(base.Layout, l)
	memo.publishOpIfAbsent(p.OpKey(), diff, lda)
	s.adopt(p.OpKey(), diff, CellShiftResult{}, lda)
	res.LDAResult = lda
	return nil
}

// dirtyVsDonor marks every net with a terminal on a cell placed
// differently by the donor and the arena, and returns the dirty fraction.
// Both placements are diffs against the same baseline, so the moved set is
// computable without touching either layout.
func (s *Scratch) dirtyVsDonor(d *donorEntry) ([]bool, float64) {
	nl := s.l.Netlist
	dirty := make([]bool, len(nl.Nets))
	marked := 0
	markInst := func(id int) {
		for _, c := range nl.Insts[id].Conns {
			if !dirty[c.Net.ID] {
				dirty[c.Net.ID] = true
				marked++
			}
		}
	}
	donorTo := make(map[int]layout.Placement, len(d.diff))
	for _, m := range d.diff {
		donorTo[m.Inst] = m.To
	}
	curHas := make(map[int]bool, len(s.curDiff))
	for _, m := range s.curDiff {
		curHas[m.Inst] = true
		if to, ok := donorTo[m.Inst]; !ok || to != m.To {
			markInst(m.Inst)
		}
	}
	for _, m := range d.diff {
		if !curHas[m.Inst] {
			markInst(m.Inst) // donor moved it; the arena has it at baseline
		}
	}
	total := len(nl.Nets)
	if total == 0 {
		total = 1
	}
	return dirty, float64(marked) / float64(total)
}

// evaluateDelta is EvaluateCtx with a geometry-cached, warm-startable
// route stage. Everything downstream of route is identical.
func (s *Scratch) evaluateDelta(ctx context.Context, p Params, res *Result) (err error) {
	l, base, memo := s.l, s.base, s.memo
	cfg := base.Config
	start := time.Now()
	end := beginEval()
	defer func() { end(err) }()
	var (
		routes *route.Result
		timing *sta.Result
		pw     power.Result
		assess *security.Assessment
		checks drc.Result
	)
	scaleKey := p.ScaleKey()
	// staChanged and staDonor carry the warm route's per-net change mask
	// and the donor's timing into the timing stage: delta-STA re-propagates
	// only the cones of nets the warm route actually changed.
	var (
		staChanged []bool
		staDonor   *sta.Result
	)
	routeStage := func() (err error) {
		geo := memo.geometry(s.curOpKey, l)
		if d := memo.donor(scaleKey); d != nil {
			dirty, frac := s.dirtyVsDonor(d)
			if frac <= warmDirtyMaxFrac {
				wres, wst, werr := route.Warm(l, cfg.RouteOpts, geo, d.routes, dirty)
				if werr != nil {
					return werr
				}
				if wres != nil {
					routes = wres
					// The STA change mask is the warm route's ChangedNets
					// plus the dirty nets themselves (a moved cell can shift
					// a net's HPWL-estimated RC even when its route record
					// is nil in both runs).
					staChanged = wst.ChangedNets
					for id, dt := range dirty {
						if dt {
							staChanged[id] = true
						}
					}
					staDonor = d.timing
					s.stats.RoutesWarm++
					s.stats.NetsReplayed += wst.Replayed
					s.stats.NetsRerouted += wst.Rerouted
					deltaRoutes.With("warm").Inc()
					deltaNets.With("replayed").Add(float64(wst.Replayed))
					deltaNets.With("rerouted").Add(float64(wst.Rerouted))
					return nil
				}
			} else {
				route.CountWarmDecline("dirty_frac")
			}
		} else {
			route.CountWarmDecline("no_donor")
		}
		routes, err = route.RouteWithGeometry(l, cfg.RouteOpts, geo)
		if err != nil {
			return err
		}
		routed := 0
		for _, nr := range routes.NetRoutes {
			if nr != nil {
				routed++
			}
		}
		s.stats.RoutesCold++
		s.stats.NetsRerouted += routed
		deltaRoutes.With("cold").Inc()
		deltaNets.With("rerouted").Add(float64(routed))
		return nil
	}
	stages := []struct {
		stage Stage
		f     func() (err error)
	}{
		{StageRoute, routeStage},
		{StageTiming, func() (err error) {
			opts := sta.Options{Constraints: cfg.Constraints, Routes: routes}
			if staDonor != nil && staChanged != nil {
				tres, tds, terr := sta.AnalyzeDelta(l, opts, staDonor, staChanged)
				if terr != nil {
					return terr
				}
				if tres != nil {
					timing = tres
					s.stats.StaDelta++
					s.stats.StaConeInsts += tds.ConeInsts
					s.stats.StaConeNets += tds.ConeNets
					deltaSTA.With("delta").Inc()
					staConeInsts.Add(float64(tds.ConeInsts))
					staConeNets.Add(float64(tds.ConeNets))
					return nil
				}
			}
			timing, err = sta.AnalyzeWithGraph(l, opts, base.TimingGraph())
			if err == nil {
				s.stats.StaFull++
				deltaSTA.With("full").Inc()
			}
			return err
		}},
		{StagePower, func() (err error) {
			pw, err = power.Analyze(l, power.Options{Constraints: cfg.Constraints, Routes: routes, Activity: cfg.Activity})
			return err
		}},
		{StageSecurity, func() (err error) {
			assess, err = security.Assess(l, routes, timing, cfg.Security)
			return err
		}},
		{StageDRC, func() error {
			checks = drc.Check(l, routes)
			return nil
		}},
	}
	for _, st := range stages {
		if err := timedStage(st.stage, st.f); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	// A clean result becomes the donor for its scale key — including the
	// very first route of a fresh scale, so later chromosomes sharing it
	// warm-start even across islands and workers.
	if routes.Victims == 0 {
		memo.putDonor(scaleKey, s.curOpKey, s.curDiff, routes, timing)
	}

	res.Layout = l
	res.Config = cfg
	res.Routes = routes
	res.Timing = timing
	res.Assessment = assess
	res.Metrics = Metrics{
		Security:      security.Score(assess, base.Assessment, cfg.Alpha),
		ERSites:       assess.ERSites,
		ERTracks:      assess.ERTracks,
		TNS:           timing.TNS,
		WNS:           timing.WNS,
		PowerMW:       pw.TotalMW,
		DRC:           checks.Violations,
		WirelengthDBU: routes.TotalWL,
		Runtime:       time.Since(start),
	}
	return nil
}
