package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/security"
)

// buildDesign creates chains of INVs ending in security-critical DFFs.
func buildDesign(t testing.TB, chains, stages int, util float64, seed int64) *layout.Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("core_t", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	for c := 0; c < chains; c++ {
		in, _ := nl.AddPort(fmt.Sprintf("i%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("pi%d", c))
		_ = nl.ConnectPort(in, prev)
		for s := 0; s < stages; s++ {
			g, err := nl.AddInstance(fmt.Sprintf("c%dg%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			nx, _ := nl.AddNet(fmt.Sprintf("c%dn%d", c, s))
			_ = nl.Connect(g, "A", prev)
			_ = nl.Connect(g, "ZN", nx)
			prev = nx
		}
		ff, _ := nl.AddInstance(fmt.Sprintf("key_reg%d", c), "DFF_X1")
		ff.SecurityCritical = true
		q, _ := nl.AddNet(fmt.Sprintf("q%d", c))
		_ = nl.Connect(ff, "D", prev)
		_ = nl.Connect(ff, "CK", clkNet)
		_ = nl.Connect(ff, "Q", q)
		out, _ := nl.AddPort(fmt.Sprintf("o%d", c), netlist.Out)
		_ = nl.ConnectPort(out, q)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: util, RefinePasses: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func flowConfig(periodNS float64) FlowConfig {
	c, _ := sdc.ParseString(fmt.Sprintf("create_clock -name clk -period %g [get_ports clk]\n", periodNS))
	return FlowConfig{Constraints: c, Seed: 1}
}

func TestSpaceSizeMatchesPaper(t *testing.T) {
	if got := SpaceSize(10); got != 944784 {
		t.Errorf("SpaceSize(10) = %d, want 944784 (≈945k, Table I)", got)
	}
}

func TestParamsValidate(t *testing.T) {
	k := 10
	good := DefaultParams(k)
	if err := good.Validate(k); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
	bad := good.Clone()
	bad.Op = "GA"
	if err := bad.Validate(k); err == nil {
		t.Error("bad op accepted")
	}
	bad = good.Clone()
	bad.Op = LDA
	bad.LDAGridN = 7
	if err := bad.Validate(k); err == nil {
		t.Error("bad grid accepted")
	}
	bad = good.Clone()
	bad.ScaleM[3] = 1.3
	if err := bad.Validate(k); err == nil {
		t.Error("bad scale accepted")
	}
	bad = good.Clone()
	bad.ScaleM = bad.ScaleM[:5]
	if err := bad.Validate(k); err == nil {
		t.Error("short scale vector accepted")
	}
}

func TestRandomParamsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := RandomParams(10, rng)
		if err := p.Validate(10); err != nil {
			t.Fatalf("random params invalid: %v", err)
		}
	}
}

func TestParamsKeyIgnoresInactiveLDAGenes(t *testing.T) {
	a := DefaultParams(10)
	b := DefaultParams(10)
	b.LDAGridN, b.LDAIters = 32, 3
	if a.Key() != b.Key() {
		t.Error("CS keys should ignore LDA genes")
	}
	b.Op = LDA
	if a.Key() == b.Key() {
		t.Error("CS and LDA keys should differ")
	}
}

func TestCellShiftReducesExploitableRegions(t *testing.T) {
	l := buildDesign(t, 6, 25, 0.55, 3)
	p := security.Params{ThreshER: 20}
	before, err := security.Assess(l, nil, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if before.ERSites == 0 {
		t.Skip("baseline has no exploitable regions")
	}
	Preprocess(l)
	res := CellShift(l, 20)
	if res.Shifts == 0 {
		t.Fatal("no shifts performed")
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid after CS: %v", err)
	}
	after, err := security.Assess(l, nil, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if after.ERSites >= before.ERSites {
		t.Errorf("ERSites did not drop: %d -> %d", before.ERSites, after.ERSites)
	}
	// Free sites are conserved (CS only moves cells).
	if after.FreeSites != before.FreeSites {
		t.Errorf("free sites changed: %d -> %d", before.FreeSites, after.FreeSites)
	}
}

func TestCellShiftKeepsFixedCells(t *testing.T) {
	l := buildDesign(t, 4, 15, 0.5, 5)
	Preprocess(l)
	want := map[string]layout.Placement{}
	for _, in := range l.Netlist.CriticalInsts() {
		want[in.Name] = l.PlacementOf(in)
	}
	CellShift(l, 20)
	for name, p := range want {
		if got := l.PlacementOf(l.Netlist.Instance(name)); got != p {
			t.Errorf("critical cell %s moved: %+v -> %+v", name, p, got)
		}
	}
}

func TestCellShiftSecondRunDoesNotRegress(t *testing.T) {
	// Re-running CS may keep rearranging (the two directional passes work
	// against each other at the margins) but must not undo the security
	// gain.
	l := buildDesign(t, 5, 20, 0.55, 9)
	Preprocess(l)
	CellShift(l, 20)
	p := security.Params{ThreshER: 20}
	after1, err := security.Assess(l, nil, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	CellShift(l, 20)
	after2, err := security.Assess(l, nil, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if after2.ERSites > after1.ERSites+after1.ERSites/5+5 {
		t.Errorf("second CS run regressed ERSites: %d -> %d", after1.ERSites, after2.ERSites)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLDARespectsFixedAndValid(t *testing.T) {
	l := buildDesign(t, 6, 20, 0.5, 11)
	Preprocess(l)
	want := map[string]layout.Placement{}
	for _, in := range l.Netlist.CriticalInsts() {
		want[in.Name] = l.PlacementOf(in)
	}
	res := LocalDensityAdjust(l, 4, 2, 1, nil)
	if res.Iterations != 2 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid after LDA: %v", err)
	}
	for name, p := range want {
		if got := l.PlacementOf(l.Netlist.Instance(name)); got != p {
			t.Errorf("critical cell %s moved", name)
		}
	}
	if len(l.Blockages) != 0 {
		t.Error("LDA left blockages behind")
	}
}

func TestLDAIncreasesDensityNearAssets(t *testing.T) {
	l := buildDesign(t, 6, 20, 0.5, 13)
	Preprocess(l)
	gridN := 4
	// Average density of asset-holding tiles, before vs after.
	densityNearAssets := func() float64 {
		counts := assetCounts(l, gridN)
		rowsPer := (l.NumRows + gridN - 1) / gridN
		sitesPer := (l.SitesPerRow + gridN - 1) / gridN
		sum, n := 0.0, 0
		for gi := 0; gi < gridN; gi++ {
			for gj := 0; gj < gridN; gj++ {
				if counts[gi][gj] > 0 {
					sum += l.RegionDensity(gi*rowsPer, (gi+1)*rowsPer, gj*sitesPer, (gj+1)*sitesPer)
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	before := densityNearAssets()
	LocalDensityAdjust(l, gridN, 2, 1, nil)
	after := densityNearAssets()
	if after < before-0.02 {
		t.Errorf("density near assets dropped: %g -> %g", before, after)
	}
}

func TestFlowRunImprovesSecurity(t *testing.T) {
	l := buildDesign(t, 6, 25, 0.55, 17)
	base, err := EvalBaseline(l, flowConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if base.Metrics.Security != 1.0 {
		t.Errorf("baseline security score = %g", base.Metrics.Security)
	}
	if base.Assessment.ERSites == 0 {
		t.Skip("no exploitable regions in baseline")
	}
	res, err := Run(base, DefaultParams(l.Lib().NumLayers()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Security >= 1.0 {
		t.Errorf("security not improved: %g", res.Metrics.Security)
	}
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("result layout invalid: %v", err)
	}
	// Baseline untouched.
	if err := base.Layout.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, in := range base.Layout.Netlist.CriticalInsts() {
		if in.Fixed {
			t.Error("Run mutated the baseline netlist (Fixed flag)")
			break
		}
	}
}

func TestFlowRunLDAPath(t *testing.T) {
	l := buildDesign(t, 6, 20, 0.5, 19)
	base, err := EvalBaseline(l, flowConfig(1.2))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l.Lib().NumLayers())
	p.Op = LDA
	p.LDAGridN = 4
	p.LDAIters = 2
	res, err := Run(base, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.LDAResult.Iterations != 2 {
		t.Errorf("LDA telemetry = %+v", res.LDAResult)
	}
	// On a loose-timing toy design LDA is the wrong operator (the paper
	// prescribes CS there, and the GA learns it); only sanity of the
	// metrics is asserted here.
	if res.Metrics.Security < 0 || res.Metrics.PowerMW <= 0 {
		t.Errorf("implausible metrics: %+v", res.Metrics)
	}
	if res.LDAResult.Moved == 0 {
		t.Error("LDA moved nothing")
	}
}

func TestFlowAppliesNDR(t *testing.T) {
	l := buildDesign(t, 4, 15, 0.55, 23)
	base, err := EvalBaseline(l, flowConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l.Lib().NumLayers())
	for i := range p.ScaleM {
		p.ScaleM[i] = 1.5
	}
	res, err := Run(base, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Layout.NDR.Scale {
		if s != 1.5 {
			t.Fatalf("NDR scale[%d] = %g", i, s)
		}
	}
	// RWS consumes tracks: fewer free tracks than an unscaled flow run.
	unscaled, err := Run(base, DefaultParams(l.Lib().NumLayers()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Routes.TotalFreeTracks() >= unscaled.Routes.TotalFreeTracks() {
		t.Error("RWS did not consume extra tracks")
	}
}

func TestFlowDeterministic(t *testing.T) {
	l := buildDesign(t, 5, 18, 0.55, 29)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l.Lib().NumLayers())
	r1, err := Run(base, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(base, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.Security != r2.Metrics.Security || r1.Metrics.TNS != r2.Metrics.TNS ||
		r1.Metrics.PowerMW != r2.Metrics.PowerMW || r1.Metrics.DRC != r2.Metrics.DRC {
		t.Errorf("nondeterministic flow: %+v vs %+v", r1.Metrics, r2.Metrics)
	}
}

func TestFeasible(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.55, 31)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics{DRC: 5, PowerMW: base.Metrics.PowerMW * 1.1}
	if !Feasible(m, base, 20, 1.2) {
		t.Error("feasible metrics rejected")
	}
	m.DRC = 25
	if Feasible(m, base, 20, 1.2) {
		t.Error("DRC violation accepted")
	}
	m.DRC = 5
	m.PowerMW = base.Metrics.PowerMW * 1.5
	if Feasible(m, base, 20, 1.2) {
		t.Error("power violation accepted")
	}
}

func TestPreprocessCounts(t *testing.T) {
	l := buildDesign(t, 4, 10, 0.55, 37)
	if n := Preprocess(l); n != 4 {
		t.Errorf("Preprocess locked %d, want 4", n)
	}
	if n := Preprocess(l); n != 0 {
		t.Errorf("second Preprocess locked %d, want 0", n)
	}
}

func TestRunRejectsInvalidParams(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.55, 41)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams(l.Lib().NumLayers())
	bad.ScaleM[0] = 2.0
	if _, err := Run(base, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunCtxObservesCancellation(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.55, 41)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, base, DefaultParams(l.Lib().NumLayers())); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestRunCarriesBaselineConfig(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.55, 41)
	cfg := flowConfig(2)
	cfg.Security = security.DefaultParams()
	cfg.Security.ThreshER = 25 // non-default, must survive into the result
	base, err := EvalBaseline(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(base, DefaultParams(l.Lib().NumLayers()))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Config.Security.ThreshER; got != 25 {
		t.Errorf("result security ThreshER = %d, want the baseline's 25", got)
	}
}

func BenchmarkFlowRunCS(b *testing.B) {
	l := buildDesign(b, 8, 30, 0.55, 43)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams(l.Lib().NumLayers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(base, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowRunLDA(b *testing.B) {
	l := buildDesign(b, 8, 30, 0.55, 47)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams(l.Lib().NumLayers())
	p.Op = LDA
	p.LDAGridN = 8
	p.LDAIters = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(base, p); err != nil {
			b.Fatal(err)
		}
	}
}
