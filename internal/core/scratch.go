package core

import (
	"context"

	"gdsiiguard/internal/layout"
)

// Scratch is a reusable evaluation arena for metrics-only exploration.
//
// RunCtx clones the whole baseline layout — netlist, occupancy grid,
// placement table — for every evaluation, and exploration loops (NSGA-II)
// immediately discard the resulting layout, keeping only its Metrics. A
// Scratch clones once and instead restores the clone between evaluations:
// placement state rolls back through the layout's journal in O(moves), and
// the handful of non-journaled mutations the flow performs (Fixed flags
// from Preprocess/pinCritical, the NDR scale vector, LDA's transient
// blockages) are restored from snapshots taken at construction time.
//
// The restore runs at the START of each evaluation, not the end, so a
// Scratch self-heals: an evaluation that errors out mid-flow leaves the
// arena dirty, and the next use first rewinds it to the pristine state.
//
// Not safe for concurrent use; concurrent explorers keep one Scratch per
// worker (see nsga2's scratch pool).
type Scratch struct {
	base *Baseline
	l    *layout.Layout

	// Pristine state the arena is rewound to before each evaluation.
	baseFixed     []bool
	baseScale     []float64
	baseBlockages []layout.Blockage
}

// NewScratch builds an evaluation arena over the baseline. The baseline
// layout itself is never modified.
func NewScratch(base *Baseline) *Scratch {
	l := base.Layout.Clone()
	s := &Scratch{
		base:          base,
		l:             l,
		baseFixed:     make([]bool, len(l.Netlist.Insts)),
		baseScale:     append([]float64(nil), l.NDR.Scale...),
		baseBlockages: append([]layout.Blockage(nil), l.Blockages...),
	}
	for i, in := range l.Netlist.Insts {
		s.baseFixed[i] = in.Fixed
	}
	// The journal stays open for the arena's lifetime; every evaluation's
	// placement mutations are recorded and rewound by the next reset.
	l.BeginJournal()
	return s
}

// reset rewinds the arena to its pristine (clone-time) state.
func (s *Scratch) reset() {
	l := s.l
	if !l.Journaling() {
		l.BeginJournal()
	}
	l.RollbackJournal(0)
	for i, in := range l.Netlist.Insts {
		in.Fixed = s.baseFixed[i]
	}
	copy(l.NDR.Scale, s.baseScale)
	l.Blockages = append(l.Blockages[:0], s.baseBlockages...)
}

// Run is RunCtx with a background context.
func (s *Scratch) Run(p Params) (*Result, error) {
	return s.RunCtx(context.Background(), p)
}

// RunCtx evaluates one parameter vector exactly like core.RunCtx — same
// stages, same metrics — but on the reusable arena instead of a fresh
// clone. The result carries Metrics and operator telemetry only: Layout,
// Routes, Timing and Assessment are stripped, because they alias (or
// reference instances of) the arena, which the next evaluation mutates.
// Callers that need the hardened layout itself use core.RunCtx.
func (s *Scratch) RunCtx(ctx context.Context, p Params) (*Result, error) {
	if err := p.Validate(s.base.Layout.Lib().NumLayers()); err != nil {
		return nil, &FlowError{Stage: StageValidate, Class: ClassPermanent, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.reset()
	res, err := runOn(ctx, s.base, s.l, p)
	if err != nil {
		return nil, err
	}
	res.Layout, res.Routes, res.Timing, res.Assessment = nil, nil, nil, nil
	return res, nil
}
