package core

import (
	"context"

	"gdsiiguard/internal/layout"
)

// Scratch is a reusable evaluation arena for metrics-only exploration.
//
// RunCtx clones the whole baseline layout — netlist, occupancy grid,
// placement table — for every evaluation, and exploration loops (NSGA-II)
// immediately discard the resulting layout, keeping only its Metrics. A
// Scratch clones once and instead restores the clone between evaluations:
// placement state rolls back through the layout's journal in O(moves), and
// the handful of non-journaled mutations the flow performs (Fixed flags
// from Preprocess/pinCritical, the NDR scale vector, LDA's transient
// blockages) are restored from snapshots taken at construction time.
//
// The restore runs at the START of each evaluation, not the end, so a
// Scratch self-heals: an evaluation that errors out mid-flow leaves the
// arena dirty, and the next use first rewinds it to the pristine state.
//
// Not safe for concurrent use; concurrent explorers keep one Scratch per
// worker (see nsga2's scratch pool).
type Scratch struct {
	base *Baseline
	l    *layout.Layout
	// memo is the baseline's shared cross-chromosome stage cache; nil
	// disables delta evaluation (every run goes through runOn from the
	// baseline placement).
	memo *StageMemo

	// Pristine state the arena is rewound to before each evaluation.
	baseFixed     []bool
	baseScale     []float64
	baseBlockages []layout.Blockage

	// Arena lineage: the post-operator state currently materialized in l.
	// haveCur means the journal up to opMark reproduces curOpKey's
	// placement (curDiff against the baseline, curCS/curLDA telemetry), so
	// an evaluation with the same operator genes rolls back only past the
	// route/evaluate mutations and skips the operator stage entirely, and
	// a longer LDA chain extends in place. Cleared on any rewind to the
	// baseline; an errored evaluation leaves it intact only if the
	// operator stage completed (the state is still the committed one).
	haveCur  bool
	curOpKey string
	curDiff  []layout.InstMove
	curCS    CellShiftResult
	curLDA   LDAResult
	opMark   int

	stats DeltaStats
}

// NewScratch builds a delta-evaluating arena over the baseline: operator
// placements, route geometry and warm-start donors are shared through the
// baseline's StageMemo. The baseline layout itself is never modified.
func NewScratch(base *Baseline) *Scratch {
	s := newScratch(base)
	s.memo = base.Memo()
	return s
}

// NewScratchPlain builds an arena that evaluates every chromosome from
// scratch (no memo, no lineage reuse). Results are bit-identical to
// NewScratch's; this exists for A/B verification and as an escape hatch.
func NewScratchPlain(base *Baseline) *Scratch {
	return newScratch(base)
}

func newScratch(base *Baseline) *Scratch {
	l := base.Layout.Clone()
	s := &Scratch{
		base:          base,
		l:             l,
		baseFixed:     make([]bool, len(l.Netlist.Insts)),
		baseScale:     append([]float64(nil), l.NDR.Scale...),
		baseBlockages: append([]layout.Blockage(nil), l.Blockages...),
	}
	for i, in := range l.Netlist.Insts {
		s.baseFixed[i] = in.Fixed
	}
	// The journal stays open for the arena's lifetime; every evaluation's
	// placement mutations are recorded and rewound by the next reset.
	l.BeginJournal()
	return s
}

// Lineage reports the OpKey of the post-operator placement currently held
// by the arena ("" when the arena is at the baseline). Exploration loops
// use it to route a child chromosome to the arena already holding its
// parent's placement.
func (s *Scratch) Lineage() string {
	if !s.haveCur {
		return ""
	}
	return s.curOpKey
}

// Stats returns what this arena's delta evaluations reused so far.
func (s *Scratch) Stats() DeltaStats { return s.stats }

// reset rewinds the arena to its pristine (clone-time) state — or, when
// the arena holds a committed post-operator placement, only back to it:
// the non-journaled snapshots (Fixed flags, NDR scale, blockages) are
// restored either way, because the post-operator placement by
// construction has baseline Fixed flags and no blockages (operators unpin
// and clear blockages before committing).
func (s *Scratch) reset() {
	l := s.l
	if !l.Journaling() {
		l.BeginJournal()
	}
	if s.haveCur {
		l.RollbackJournal(s.opMark)
	} else {
		l.RollbackJournal(0)
		s.opMark = 0
	}
	for i, in := range l.Netlist.Insts {
		in.Fixed = s.baseFixed[i]
	}
	copy(l.NDR.Scale, s.baseScale)
	l.Blockages = append(l.Blockages[:0], s.baseBlockages...)
}

// Run is RunCtx with a background context.
func (s *Scratch) Run(p Params) (*Result, error) {
	return s.RunCtx(context.Background(), p)
}

// RunCtx evaluates one parameter vector exactly like core.RunCtx — same
// stages, same metrics — but on the reusable arena instead of a fresh
// clone. The result carries Metrics and operator telemetry only: Layout,
// Routes, Timing and Assessment are stripped, because they alias (or
// reference instances of) the arena, which the next evaluation mutates.
// Callers that need the hardened layout itself use core.RunCtx.
func (s *Scratch) RunCtx(ctx context.Context, p Params) (*Result, error) {
	if err := p.Validate(s.base.Layout.Lib().NumLayers()); err != nil {
		return nil, &FlowError{Stage: StageValidate, Class: ClassPermanent, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.reset()
	var res *Result
	var err error
	if s.memo != nil {
		deltaEvals.With("delta").Inc()
		res, err = s.runDelta(ctx, p)
	} else {
		deltaEvals.With("scratch").Inc()
		res, err = runOn(ctx, s.base, s.l, p)
	}
	if err != nil {
		return nil, err
	}
	res.Layout, res.Routes, res.Timing, res.Assessment = nil, nil, nil, nil
	return res, nil
}
