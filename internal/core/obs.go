package core

import (
	"time"

	"gdsiiguard/internal/obs"
)

// Flow-level observability. Every metric lives in the obs default registry
// and is exposed by cmd/guardd at /metrics and snapshotted by
// cmd/guardbench.
var (
	// stageSeconds is the per-stage wall-time histogram of the evaluation
	// hot path (operator, route, timing, power, security, drc).
	stageSeconds = obs.Default().Histogram(
		"gdsiiguard_flow_stage_seconds",
		"Wall time of one flow stage in seconds, labeled by stage.",
		nil, "stage")
	// flowEvals counts completed layout evaluations by outcome.
	flowEvals = obs.Default().Counter(
		"gdsiiguard_flow_evaluations_total",
		"Completed layout evaluations (baseline and candidate) by outcome.",
		"outcome")
	// evalsInflight tracks concurrently executing layout evaluations; its
	// peak (also exported) makes worker oversubscription visible.
	evalsInflight = obs.Default().Gauge(
		"gdsiiguard_flow_evals_inflight",
		"Layout evaluations currently executing.").With()
	evalsInflightPeak = obs.Default().Gauge(
		"gdsiiguard_flow_evals_inflight_peak",
		"High watermark of concurrently executing layout evaluations.").With()
	// deltaEvals splits arena evaluations into delta (memo-backed) vs
	// scratch (full from-baseline) runs.
	deltaEvals = obs.Default().Counter(
		"gdsiiguard_delta_evaluations_total",
		"Arena evaluations by mode: delta (stage-memoized) or scratch.",
		"mode")
	// deltaOperator records how each delta evaluation satisfied its
	// operator stage: run (computed in full), memo_hit (diff replay),
	// prefix_hit (LDA chain resumed from a memoized prefix), arena_hit
	// (placement already in the arena), arena_extend (LDA chain extended
	// in place).
	deltaOperator = obs.Default().Counter(
		"gdsiiguard_delta_operator_total",
		"Operator-stage outcomes of delta evaluations.",
		"outcome")
	// deltaRoutes counts route stages warm-started from a donor route vs
	// routed cold.
	deltaRoutes = obs.Default().Counter(
		"gdsiiguard_delta_route_total",
		"Route stages of delta evaluations by mode: warm or cold.",
		"mode")
	// deltaNets counts per-net routing outcomes across delta evaluations.
	deltaNets = obs.Default().Counter(
		"gdsiiguard_delta_route_nets_total",
		"Nets replayed from a donor route vs pattern-routed fresh.",
		"kind")
	// deltaSTA counts timing stages analyzed over the full graph vs
	// delta-analyzed over changed-net cones.
	deltaSTA = obs.Default().Counter(
		"gdsiiguard_delta_sta_total",
		"Timing stages of delta evaluations by mode: delta (cone) or full.",
		"mode")
	// staConeInsts / staConeNets total delta-STA cone sizes: combinational
	// instances re-evaluated forward and nets recomputed backward. Read
	// together with gdsiiguard_delta_sta_total{mode="delta"}, they give the
	// mean cone size per delta analysis.
	staConeInsts = obs.Default().Counter(
		"gdsiiguard_delta_sta_cone_insts_total",
		"Combinational instances re-evaluated across delta STA runs.").With()
	staConeNets = obs.Default().Counter(
		"gdsiiguard_delta_sta_cone_nets_total",
		"Net required times recomputed across delta STA runs.").With()
)

// EvalsInflightGauge exposes the evaluation-occupancy gauge so callers
// (tests, the experiments runner) can verify concurrency bounds.
func EvalsInflightGauge() *obs.Gauge { return evalsInflight }

// beginEval marks one layout evaluation in flight; the returned func ends
// it and records the outcome.
func beginEval() func(err error) {
	evalsInflight.Inc()
	// The gauge maintains its own high watermark under its lock; mirroring
	// it into a separate gauge makes the peak visible on /metrics.
	evalsInflightPeak.SetMax(evalsInflight.Peak())
	return func(err error) {
		evalsInflight.Dec()
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		flowEvals.With(outcome).Inc()
	}
}

// timedStage runs one flow stage under panic containment and records its
// wall time into the per-stage latency histogram.
func timedStage(stage Stage, f func() error) error {
	t0 := time.Now()
	err := runStage(stage, f)
	stageSeconds.With(string(stage)).Observe(time.Since(t0).Seconds())
	return err
}
