package core

import (
	"time"

	"gdsiiguard/internal/obs"
)

// Flow-level observability. Every metric lives in the obs default registry
// and is exposed by cmd/guardd at /metrics and snapshotted by
// cmd/guardbench.
var (
	// stageSeconds is the per-stage wall-time histogram of the evaluation
	// hot path (operator, route, timing, power, security, drc).
	stageSeconds = obs.Default().Histogram(
		"gdsiiguard_flow_stage_seconds",
		"Wall time of one flow stage in seconds, labeled by stage.",
		nil, "stage")
	// flowEvals counts completed layout evaluations by outcome.
	flowEvals = obs.Default().Counter(
		"gdsiiguard_flow_evaluations_total",
		"Completed layout evaluations (baseline and candidate) by outcome.",
		"outcome")
	// evalsInflight tracks concurrently executing layout evaluations; its
	// peak (also exported) makes worker oversubscription visible.
	evalsInflight = obs.Default().Gauge(
		"gdsiiguard_flow_evals_inflight",
		"Layout evaluations currently executing.").With()
	evalsInflightPeak = obs.Default().Gauge(
		"gdsiiguard_flow_evals_inflight_peak",
		"High watermark of concurrently executing layout evaluations.").With()
)

// EvalsInflightGauge exposes the evaluation-occupancy gauge so callers
// (tests, the experiments runner) can verify concurrency bounds.
func EvalsInflightGauge() *obs.Gauge { return evalsInflight }

// beginEval marks one layout evaluation in flight; the returned func ends
// it and records the outcome.
func beginEval() func(err error) {
	evalsInflight.Inc()
	// The gauge maintains its own high watermark under its lock; mirroring
	// it into a separate gauge makes the peak visible on /metrics.
	evalsInflightPeak.SetMax(evalsInflight.Peak())
	return func(err error) {
		evalsInflight.Dec()
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		flowEvals.With(outcome).Inc()
	}
}

// timedStage runs one flow stage under panic containment and records its
// wall time into the per-stage latency histogram.
func timedStage(stage Stage, f func() error) error {
	t0 := time.Now()
	err := runStage(stage, f)
	stageSeconds.With(string(stage)).Observe(time.Since(t0).Seconds())
	return err
}
