package core

// Band-parallel exploitable-mass computation. The operator stage's progress
// measure (exploitableMass) builds the below-index over every row of the
// layout; at SoC scale (hundreds of rows, 10⁵–10⁶ sites) that build
// dominates the operator's runtime. Because the index is row-ordered, the
// build partitions cleanly: W contiguous row bands each build a local
// union-find in parallel, then the bands are merged by concatenating the
// local parent/weight arrays into one global union-find and unioning the
// overlaps between each band's top row and the next band's bottom row — the
// same merge-scan extend() uses between adjacent rows.
//
// The result is bit-identical to the sequential build: a union-find's
// component partition is independent of union order, and mass() consumes
// only the partition and per-root weights. The property tests in
// band_test.go check band-parallel against sequential on randomized run
// layouts and on full CellShift runs.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gdsiiguard/internal/layout"
)

// operatorBandWorkers is the configured worker count; 0 means auto
// (GOMAXPROCS).
var operatorBandWorkers atomic.Int32

// SetOperatorBandWorkers sets the number of workers the operator stage uses
// for band-parallel mass computation. 0 (the default) selects GOMAXPROCS;
// 1 forces the sequential path. The setting is process-wide and safe to
// change between operator invocations.
func SetOperatorBandWorkers(n int) {
	if n < 0 {
		n = 0
	}
	operatorBandWorkers.Store(int32(n))
}

// OperatorBandWorkers returns the configured worker count (0 = auto).
func OperatorBandWorkers() int { return int(operatorBandWorkers.Load()) }

const (
	// bandParallelMinRows is the layout height below which the sequential
	// path always wins (goroutine + merge overhead beats the scan).
	bandParallelMinRows = 128
	// minRowsPerBand bounds how thin a band may get.
	minRowsPerBand = 32
)

// resolveBandWorkers returns the effective worker count for a layout of
// numRows rows: 1 when the layout is too small or parallelism is disabled.
func resolveBandWorkers(numRows int) int {
	if numRows < bandParallelMinRows {
		return 1
	}
	n := int(operatorBandWorkers.Load())
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if max := numRows / minRowsPerBand; n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// bandRowSource appends row r's free runs (ascending by start) to buf,
// using b's private scratch; it must be safe for concurrent calls on
// distinct bands.
type bandRowSource func(b *bandLocal, r int, buf []freeRun) []freeRun

// bandLocal is one worker's state: a private below-index over the band's
// rows plus a copy of the band's bottom row (the merge seam with the band
// below). All storage is reused across calls.
type bandLocal struct {
	ix     belowIndex
	runBuf []layout.SiteRun
	bottom []freeRun
}

// build constructs the band's local index over rows [lo, hi).
func (b *bandLocal) build(src bandRowSource, lo, hi int) {
	ix := &b.ix
	ix.reset()
	b.bottom = b.bottom[:0]
	for r := lo; r < hi; r++ {
		ix.extend(src(b, r, ix.nextTopBuf()))
		if r == lo {
			// The first extend assigns the bottom row local ids 0..n-1.
			b.bottom = append(b.bottom, ix.topRuns...)
		}
	}
}

// bandScratch owns the per-worker bands and the merged global union-find,
// reused across mass computations.
type bandScratch struct {
	bands          []bandLocal
	offs           []int
	parent, weight []int
}

// mass computes the exploitable free mass over numRows rows using W
// parallel bands. The global component partition it derives is identical
// to the sequential single-index build.
func (bs *bandScratch) mass(numRows, threshER, W int, src bandRowSource) int {
	if cap(bs.bands) < W {
		bs.bands = make([]bandLocal, W)
	}
	bs.bands = bs.bands[:W]
	var wg sync.WaitGroup
	for b := 0; b < W; b++ {
		lo, hi := b*numRows/W, (b+1)*numRows/W
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			bs.bands[b].build(src, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()

	// Concatenate the local union-finds, offsetting parent pointers. Local
	// weights are only valid at local roots, which map to global roots
	// until the seam unions below fold them — exactly as in extend().
	total := 0
	for b := range bs.bands {
		total += len(bs.bands[b].ix.parent)
	}
	bs.parent = sized(bs.parent, total)
	bs.weight = sized(bs.weight, total)
	bs.offs = sized(bs.offs, W)
	off := 0
	for b := range bs.bands {
		bs.offs[b] = off
		lp, lw := bs.bands[b].ix.parent, bs.bands[b].ix.weight
		for i := range lp {
			bs.parent[off+i] = lp[i] + off
			bs.weight[off+i] = lw[i]
		}
		off += len(lp)
	}
	find := func(x int) int {
		for bs.parent[x] != x {
			bs.parent[x] = bs.parent[bs.parent[x]]
			x = bs.parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			bs.parent[ra] = rb
			bs.weight[rb] += bs.weight[ra]
		}
	}

	// Seams: union overlaps between band b−1's top row and band b's bottom
	// row by the same merge-scan extend() applies between adjacent rows.
	for b := 1; b < W; b++ {
		prev, cur := &bs.bands[b-1], &bs.bands[b]
		prevBase := bs.offs[b-1] + prev.ix.topOff
		curBase := bs.offs[b] // bottom-row runs hold local ids 0..n-1
		pt, bt := prev.ix.topRuns, cur.bottom
		i, j := 0, 0
		for i < len(pt) && j < len(bt) {
			a, c := pt[i], bt[j]
			if a.start < c.start+c.length && c.start < a.start+a.length {
				union(prevBase+i, curBase+j)
			}
			if a.start+a.length < c.start+c.length {
				i++
			} else {
				j++
			}
		}
	}

	m := 0
	for i := range bs.parent {
		if bs.parent[i] == i && bs.weight[i] >= threshER {
			m += bs.weight[i]
		}
	}
	return m
}

// layoutRowSource adapts a layout's free-run scan to a band row source.
func layoutRowSource(l *layout.Layout) bandRowSource {
	return func(b *bandLocal, r int, buf []freeRun) []freeRun {
		b.runBuf = l.AppendFreeRuns(r, b.runBuf[:0])
		for _, run := range b.runBuf {
			buf = append(buf, freeRun{run.Start, run.Len})
		}
		return buf
	}
}

// ExploitableFreeMass computes the operator stage's progress measure — the
// total weight of empty-site components at or above threshER — honoring the
// band-worker setting. It is the entry point guardbench uses to compare the
// sequential and band-parallel paths on SoC-scale layouts.
func ExploitableFreeMass(l *layout.Layout, threshER int) int {
	var e shiftEngine
	return e.exploitableMass(l, threshER)
}

// ResolvedOperatorBandWorkers reports how many band workers the operator
// stage will actually use for a layout with numRows rows under the current
// setting — 1 means the sequential path (single CPU, small layout, or an
// explicit SetOperatorBandWorkers(1)).
func ResolvedOperatorBandWorkers(numRows int) int {
	return resolveBandWorkers(numRows)
}
