package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gdsiiguard/internal/fault"
)

func armFaults(t *testing.T, rules map[fault.Point]fault.Rule) {
	t.Helper()
	fault.Arm(rules)
	t.Cleanup(fault.Disarm)
}

func testBaseline(t *testing.T) *Baseline {
	t.Helper()
	l := buildDesign(t, 3, 10, 0.55, 41)
	base, err := EvalBaseline(l, flowConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestRunTagsInjectedRouteError(t *testing.T) {
	base := testBaseline(t)
	armFaults(t, map[fault.Point]fault.Rule{fault.Route: {Every: 1}})

	_, err := Run(base, DefaultParams(base.Layout.Lib().NumLayers()))
	if err == nil {
		t.Fatal("Run succeeded under an always-failing router")
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not a *FlowError: %v", err, err)
	}
	if fe.Stage != StageRoute || fe.Class != ClassPermanent {
		t.Errorf("tag = %s/%s, want %s/%s", fe.Stage, fe.Class, StageRoute, ClassPermanent)
	}
	if StageOf(err) != StageRoute || Classify(err) != ClassPermanent {
		t.Errorf("StageOf/Classify = %s/%s", StageOf(err), Classify(err))
	}
}

func TestRunContainsInjectedPanicWithStack(t *testing.T) {
	base := testBaseline(t)
	armFaults(t, map[fault.Point]fault.Rule{fault.STA: {Every: 1, Panic: true}})

	_, err := Run(base, DefaultParams(base.Layout.Lib().NumLayers()))
	if err == nil {
		t.Fatal("Run succeeded under a panicking STA engine")
	}
	var pe *FlowPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *FlowPanicError: %v", err, err)
	}
	if pe.Stage != StageTiming {
		t.Errorf("panic stage = %s, want %s", pe.Stage, StageTiming)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no captured stack")
	}
	if Classify(err) != ClassPanic {
		t.Errorf("Classify = %s, want %s", Classify(err), ClassPanic)
	}
	// The injected error panic value must stay reachable for errors.As.
	var ie *fault.Error
	if !errors.As(err, &ie) {
		t.Error("panic value not reachable through the error chain")
	}
}

func TestEvalBaselineContainsPanics(t *testing.T) {
	l := buildDesign(t, 3, 10, 0.55, 41)
	armFaults(t, map[fault.Point]fault.Rule{fault.Route: {Every: 1, Panic: true}})

	_, err := EvalBaseline(l, flowConfig(2))
	var pe *FlowPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("EvalBaseline error %T is not a *FlowPanicError: %v", err, err)
	}
	if pe.Stage != StageRoute {
		t.Errorf("stage = %s, want %s", pe.Stage, StageRoute)
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ""},
		{"plain", errors.New("boom"), ClassPermanent},
		{"canceled", context.Canceled, ClassCanceled},
		{"wrapped deadline", fmt.Errorf("job: %w", context.DeadlineExceeded), ClassCanceled},
		{"transient marker", &fakeTransient{}, ClassTransient},
		{"flow error keeps class", &FlowError{Stage: StageRoute, Class: ClassTransient, Err: errors.New("x")}, ClassTransient},
		{"panic", &FlowPanicError{Stage: StageTiming, Value: "v"}, ClassPanic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %q, want %q", c.name, got, c.want)
		}
	}
	if IsTransient(&fakeTransient{}) != true {
		t.Error("IsTransient(transient marker) = false")
	}
	if IsTransient(errors.New("boom")) {
		t.Error("IsTransient(plain error) = true")
	}
}

type fakeTransient struct{}

func (*fakeTransient) Error() string   { return "fake transient" }
func (*fakeTransient) Transient() bool { return true }

func TestValidateErrorIsStageTagged(t *testing.T) {
	base := testBaseline(t)
	bad := DefaultParams(base.Layout.Lib().NumLayers())
	bad.ScaleM[0] = 2.0
	_, err := Run(base, bad)
	if StageOf(err) != StageValidate || Classify(err) != ClassPermanent {
		t.Errorf("validate error tagged %s/%s, want %s/%s",
			StageOf(err), Classify(err), StageValidate, ClassPermanent)
	}
}
