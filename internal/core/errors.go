package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// Stage identifies the flow stage a failure happened in. Stages mirror the
// sections of RunCtx/EvaluateCtx: parameter validation, the anti-Trojan
// placement operator, routing, timing, power, security assessment and DRC.
type Stage string

// The flow's stages, in execution order.
const (
	StageValidate Stage = "validate"
	StageOperator Stage = "operator"
	StageRoute    Stage = "route"
	StageTiming   Stage = "timing"
	StagePower    Stage = "power"
	StageSecurity Stage = "security"
	StageDRC      Stage = "drc"
)

// ErrClass is the failure taxonomy used by callers to decide between
// retry, degradation and abort.
type ErrClass string

const (
	// ClassTransient failures are safe to retry: re-running the same
	// evaluation can succeed (injected faults, resource exhaustion).
	ClassTransient ErrClass = "transient"
	// ClassPermanent failures are deterministic for the input: retrying
	// the same evaluation fails again (bad parameters, unroutable design).
	ClassPermanent ErrClass = "permanent"
	// ClassPanic failures are panics recovered inside a flow stage.
	ClassPanic ErrClass = "panic"
	// ClassCanceled marks context cancellation or deadline expiry — not a
	// flow failure at all; callers propagate it instead of degrading.
	ClassCanceled ErrClass = "canceled"
)

// FlowError tags a stage failure with its class. The wrapped error is
// reachable through errors.Is/As.
type FlowError struct {
	Stage Stage
	Class ErrClass
	Err   error
}

// Error implements the error interface.
func (e *FlowError) Error() string {
	return fmt.Sprintf("core: %s stage (%s): %v", e.Stage, e.Class, e.Err)
}

// Unwrap exposes the underlying stage error.
func (e *FlowError) Unwrap() error { return e.Err }

// FlowPanicError is a panic recovered inside a flow stage, carrying the
// stage, the panic value and the goroutine stack captured at recovery.
type FlowPanicError struct {
	Stage Stage
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *FlowPanicError) Error() string {
	return fmt.Sprintf("core: panic in %s stage: %v", e.Stage, e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err)), so errors.Is/As
// see through recovered error panics.
func (e *FlowPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// transienter is implemented by errors that declare themselves safe to
// retry — notably internal/fault's injected errors. It is structural on
// purpose so core does not depend on the fault package.
type transienter interface{ Transient() bool }

// Classify maps any error onto the taxonomy. Stage-tagged errors keep the
// class assigned at the stage boundary; untagged errors classify as
// transient only when they implement Transient() true; context errors are
// ClassCanceled; everything else is permanent.
func Classify(err error) ErrClass {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	var pe *FlowPanicError
	if errors.As(err, &pe) {
		return ClassPanic
	}
	var fe *FlowError
	if errors.As(err, &fe) {
		return fe.Class
	}
	var tr transienter
	if errors.As(err, &tr) && tr.Transient() {
		return ClassTransient
	}
	return ClassPermanent
}

// StageOf returns the flow stage an error is tagged with ("" if untagged).
func StageOf(err error) Stage {
	var pe *FlowPanicError
	if errors.As(err, &pe) {
		return pe.Stage
	}
	var fe *FlowError
	if errors.As(err, &fe) {
		return fe.Stage
	}
	return ""
}

// IsTransient reports whether err is safe to retry.
func IsTransient(err error) bool { return Classify(err) == ClassTransient }

// runStage executes one flow stage with panic containment and class
// tagging: a panic inside f becomes a *FlowPanicError, a returned error is
// wrapped in a *FlowError carrying the stage and its class. Context errors
// and already-tagged errors pass through untouched so cancellation checks
// and inner stage tags survive nesting.
func runStage(stage Stage, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &FlowPanicError{Stage: stage, Value: r, Stack: debug.Stack()}
		}
	}()
	serr := f()
	switch {
	case serr == nil:
		return nil
	case errors.Is(serr, context.Canceled), errors.Is(serr, context.DeadlineExceeded):
		return serr
	default:
		var fe *FlowError
		var pe *FlowPanicError
		if errors.As(serr, &fe) || errors.As(serr, &pe) {
			return serr
		}
		return &FlowError{Stage: stage, Class: Classify(serr), Err: serr}
	}
}
