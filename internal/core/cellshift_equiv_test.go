package core

import (
	"math/rand"
	"testing"

	"gdsiiguard/internal/netlist"
)

// randomRows generates rows of random non-overlapping ascending free runs
// over a width-W row, mimicking arbitrary occupancy patterns.
func randomRows(rng *rand.Rand, nRows, width int) [][]freeRun {
	rows := make([][]freeRun, nRows)
	for r := range rows {
		site := rng.Intn(4)
		for site < width {
			length := 1 + rng.Intn(10)
			if site+length > width {
				length = width - site
			}
			if rng.Intn(3) > 0 { // 2/3 of segments are free runs
				rows[r] = append(rows[r], freeRun{site, length})
			}
			site += length + 1 + rng.Intn(6)
		}
	}
	return rows
}

// TestBelowIndexIncrementalMatchesScratch is the property test of the
// tentpole: extending the persistent belowIndex one row at a time must be
// observationally identical to the seed's from-scratch rebuild — same
// componentWeight for every query run of a probe row, same exploitable
// mass — on randomized run layouts.
func TestBelowIndexIncrementalMatchesScratch(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		width := 40 + rng.Intn(160)
		rows := randomRows(rng, 3+rng.Intn(12), width)

		var ix belowIndex
		ix.reset()
		for i, row := range rows {
			buf := ix.nextTopBuf()
			buf = append(buf, row...)
			ix.extend(buf)

			ref := refBuildBelowIndex(rows[:i+1])

			// Exploitable mass at several thresholds.
			for _, thresh := range []int{1, 5, 20, 50} {
				want := 0
				for _, w := range ref.weight {
					if w >= thresh {
						want += w
					}
				}
				if got := ix.mass(thresh); got != want {
					t.Fatalf("seed %d rows %d thresh %d: mass = %d, want %d", seed, i+1, thresh, got, want)
				}
			}

			// componentWeight for every run of a random probe row.
			probe := randomRows(rng, 1, width)[0]
			for j := range probe {
				want := ref.componentWeight(probe, j)
				if got := ix.componentWeight(probe, j); got != want {
					t.Fatalf("seed %d rows %d run %d: componentWeight = %d, want %d (probe %v)",
						seed, i+1, j, got, want, probe)
				}
			}
		}
	}
}

// --- micro-benchmarks ----------------------------------------------------

// BenchmarkCellShiftPass measures one directional pass plus its journal
// rollback — the operator's hot loop — on a mid-size design. Allocations
// per op should be near zero once the engine is warm.
func BenchmarkCellShiftPass(b *testing.B) {
	l := buildDesign(b, 12, 10, 0.6, 5)
	var e shiftEngine
	moved := map[*netlist.Instance]bool{}
	l.BeginJournal()
	defer l.EndJournal()
	e.exploitableMass(l, 20) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := l.JournalMark()
		var res CellShiftResult
		e.passAdded = e.passAdded[:0]
		e.pass(l, 20, i%2 == 1, &res, moved)
		l.RollbackJournal(mark)
	}
}

// BenchmarkExploitableMass measures the whole-layout mass computation on
// the warm incremental index.
func BenchmarkExploitableMass(b *testing.B) {
	l := buildDesign(b, 12, 10, 0.6, 5)
	var e shiftEngine
	e.exploitableMass(l, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.exploitableMass(l, 20)
	}
}

// BenchmarkCellShift measures the full operator (rounds + dicing) on a
// fresh clone per iteration, the shape RunCtx exercises.
func BenchmarkCellShift(b *testing.B) {
	l := buildDesign(b, 12, 10, 0.6, 5)
	Preprocess(l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := l.Clone()
		b.StartTimer()
		CellShift(work, 20)
	}
}
