package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
)

// rowsSource adapts an in-memory run table to a band row source.
func rowsSource(rows [][]freeRun) bandRowSource {
	return func(_ *bandLocal, r int, buf []freeRun) []freeRun {
		return append(buf, rows[r]...)
	}
}

// seqMass is the reference: one sequential below-index over all rows.
func seqMass(rows [][]freeRun, threshER int) int {
	var ix belowIndex
	ix.reset()
	for _, row := range rows {
		ix.extend(append(ix.nextTopBuf(), row...))
	}
	return ix.mass(threshER)
}

// TestBandMassMatchesSequential is the property test of the band-parallel
// operator stage: for randomized run layouts, the banded build merged at
// the seams must yield exactly the sequential mass, for any worker count.
func TestBandMassMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		width := 40 + rng.Intn(200)
		nRows := bandParallelMinRows + rng.Intn(300)
		rows := randomRows(rng, nRows, width)
		for _, w := range []int{2, 3, 4, 7} {
			var bs bandScratch
			for _, thresh := range []int{1, 5, 20, 50, 200} {
				want := seqMass(rows, thresh)
				got := bs.mass(nRows, thresh, w, rowsSource(rows))
				if got != want {
					t.Fatalf("seed %d rows %d width %d workers %d thresh %d: band mass = %d, want %d",
						seed, nRows, width, w, thresh, got, want)
				}
			}
		}
	}
}

// TestBandMassScratchReuse: the same scratch must stay correct across
// layouts of different shapes (buffer reuse is the common failure mode).
func TestBandMassScratchReuse(t *testing.T) {
	var bs bandScratch
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		nRows := bandParallelMinRows + rng.Intn(200)
		rows := randomRows(rng, nRows, 30+rng.Intn(150))
		w := 2 + rng.Intn(6)
		want := seqMass(rows, 10)
		if got := bs.mass(nRows, 10, w, rowsSource(rows)); got != want {
			t.Fatalf("trial %d: band mass = %d, want %d", trial, got, want)
		}
	}
}

func TestResolveBandWorkers(t *testing.T) {
	t.Cleanup(func() { SetOperatorBandWorkers(0) })
	SetOperatorBandWorkers(8)
	if got := resolveBandWorkers(bandParallelMinRows - 1); got != 1 {
		t.Errorf("small layout: workers = %d, want 1", got)
	}
	if got := resolveBandWorkers(1024); got != 8 {
		t.Errorf("large layout: workers = %d, want 8", got)
	}
	// Thin-band clamp: 128 rows can hold at most 4 bands of ≥32 rows.
	if got := resolveBandWorkers(bandParallelMinRows); got != 4 {
		t.Errorf("clamped: workers = %d, want 4", got)
	}
	SetOperatorBandWorkers(1)
	if got := resolveBandWorkers(1024); got != 1 {
		t.Errorf("disabled: workers = %d, want 1", got)
	}
}

// randomTallLayout builds a tall layout (above the band threshold) with
// randomly scattered unconnected cells — CellShift only consumes occupancy.
func randomTallLayout(t *testing.T, rows, sites, cells int, seed int64) *layout.Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("band_t", lib)
	l, err := layout.New(nl, rows, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < cells; i++ {
		in, err := nl.AddInstance(fmt.Sprintf("x%d", i), "INV_X1")
		if err != nil {
			t.Fatal(err)
		}
		for {
			r, s := rng.Intn(rows), rng.Intn(sites)
			if l.CanPlace(in, r, s) {
				if err := l.Place(in, r, s); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	return l
}

// TestCellShiftBandIdentical runs the full operator on a tall layout with
// the sequential and band-parallel mass paths and requires identical
// trajectories: same mass checkpoints, same shift counts, same final
// placement of every cell.
func TestCellShiftBandIdentical(t *testing.T) {
	t.Cleanup(func() { SetOperatorBandWorkers(0) })
	const threshER = 20
	base := randomTallLayout(t, 160, 50, 2200, 7) // INV_X1 is 2 sites: ~55% util

	run := func(workers int) (*layout.Layout, CellShiftResult, []int) {
		SetOperatorBandWorkers(workers)
		l := base.Clone()
		var trace []int
		var e shiftEngine
		e.massTrace = &trace
		res := e.run(l, threshER, true)
		return l, res, trace
	}
	seqL, seqRes, seqTrace := run(1)
	parL, parRes, parTrace := run(4)

	if seqRes != parRes {
		t.Errorf("results differ: seq %+v, par %+v", seqRes, parRes)
	}
	if len(seqTrace) != len(parTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(seqTrace), len(parTrace))
	}
	for i := range seqTrace {
		if seqTrace[i] != parTrace[i] {
			t.Fatalf("mass checkpoint %d: seq %d, par %d", i, seqTrace[i], parTrace[i])
		}
	}
	for _, in := range base.Netlist.Insts {
		sp := seqL.PlacementOf(seqL.Netlist.Insts[in.ID])
		pp := parL.PlacementOf(parL.Netlist.Insts[in.ID])
		if sp != pp {
			t.Fatalf("placement of %s differs: seq %+v, par %+v", in.Name, sp, pp)
		}
	}
}

// TestExploitableFreeMassHonorsWorkers: the exported entry must agree with
// itself across worker settings on a real layout.
func TestExploitableFreeMass(t *testing.T) {
	t.Cleanup(func() { SetOperatorBandWorkers(0) })
	l := randomTallLayout(t, 192, 40, 2000, 11)
	SetOperatorBandWorkers(1)
	seq := ExploitableFreeMass(l, 12)
	SetOperatorBandWorkers(6)
	par := ExploitableFreeMass(l, 12)
	if seq != par {
		t.Errorf("mass differs: seq %d, par %d", seq, par)
	}
	if seq == 0 {
		t.Error("mass = 0 on a half-empty layout")
	}
}
