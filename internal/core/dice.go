package core

import (
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// The dicing stage finishes what the row-wise shifts cannot: Algorithm 1
// provably reduces every component below Thresh_ER except the mass that
// accumulates against each pass's blind spots (core edges and fixed
// security-critical cells). Dicing splits those residual regions directly
// with targeted ECO cell relocations, in the same spirit as the operator:
//
//   - a "safe donor" is a movable cell whose departure cannot itself create
//     an exploitable region (the joined gap stays below threshold);
//   - a "split donor" borders the target region itself, so moving it into
//     the region's interior re-shapes the region, cutting it apart.
//
// Every move is validated against the global exploitable mass and reverted
// if it does not strictly help, so the stage monotonically converges.

// fullRun is one free run with its component id over the whole layout.
type fullRun struct {
	row, start, length int
	comp               int
}

// fullComponents labels every free run of the layout with a component id
// and returns the runs plus per-component weights.
func fullComponents(l *layout.Layout) ([]fullRun, []int) {
	var runs []fullRun
	rowIdx := make([][]int, l.NumRows)
	for r := 0; r < l.NumRows; r++ {
		for _, run := range l.FreeRuns(r) {
			rowIdx[r] = append(rowIdx[r], len(runs))
			runs = append(runs, fullRun{row: r, start: run.Start, length: run.Len})
		}
	}
	parent := make([]int, len(runs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for r := 1; r < l.NumRows; r++ {
		lo, hi := rowIdx[r-1], rowIdx[r]
		i, j := 0, 0
		for i < len(lo) && j < len(hi) {
			a, b := runs[lo[i]], runs[hi[j]]
			if a.start < b.start+b.length && b.start < a.start+a.length {
				ra, rb := find(lo[i]), find(hi[j])
				if ra != rb {
					parent[ra] = rb
				}
			}
			if a.start+a.length < b.start+b.length {
				i++
			} else {
				j++
			}
		}
	}
	weights := make([]int, len(runs))
	for i := range runs {
		runs[i].comp = find(i)
		weights[runs[i].comp] += runs[i].length
	}
	return runs, weights
}

// exploitablePotential returns the total exploitable mass and a quadratic
// potential Φ = Σ w² over exploitable components. Φ strictly decreases when
// a region shrinks OR splits, and increases when regions merge, so it is
// the dicing stage's progress measure.
func exploitablePotential(weights []int, threshER int) (mass int, phi float64) {
	for _, w := range weights {
		if w >= threshER {
			mass += w
			phi += float64(w) * float64(w)
		}
	}
	return mass, phi
}

// diceResidual splits residual exploitable regions by relocating donor
// cells into their longest runs, keeping only moves that strictly reduce
// the global exploitable mass. It returns the number of cells relocated.
func diceResidual(l *layout.Layout, threshER, maxMoves int) int {
	moves := 0
	skipped := map[[2]int]bool{} // (row,start) of a given-up target run
	// Attempts (including rejected probes) are bounded separately from
	// accepted moves so pathological landscapes cannot stall the flow.
	for attempts := 0; moves < maxMoves && attempts < 2*maxMoves; attempts++ {
		runs, weights := fullComponents(l)
		mass, phi := exploitablePotential(weights, threshER)
		if mass == 0 {
			return moves
		}
		target := pickTarget(runs, weights, threshER, skipped)
		if target == nil {
			return moves
		}
		cands := donorCandidates(l, runs, weights, threshER, target, 4)
		accepted := false
		for _, donor := range cands {
			old := l.PlacementOf(donor)
			at := splitPosition(target, donor.Master.WidthSites, threshER)
			if at < 0 {
				break
			}
			if err := l.Place(donor, target.row, at); err != nil {
				continue
			}
			_, w2 := fullComponents(l)
			_, phi2 := exploitablePotential(w2, threshER)
			if phi2 < phi {
				moves++
				accepted = true
				// Fresh geometry: previously hopeless targets may now be
				// splittable.
				skipped = map[[2]int]bool{}
				break
			}
			// No improvement: revert.
			if err := l.Place(donor, old.Row, old.Site); err != nil {
				// The origin should always be free again; if not, keep the
				// move rather than corrupting state.
				moves++
				accepted = true
				break
			}
		}
		if !accepted {
			skipped[[2]int{target.row, target.start}] = true
		}
	}
	return moves
}

// pickTarget returns the longest run of the heaviest exploitable component
// that has not been given up on.
func pickTarget(runs []fullRun, weights []int, threshER int, skipped map[[2]int]bool) *fullRun {
	var best *fullRun
	bestW := 0
	for i := range runs {
		r := &runs[i]
		w := weights[r.comp]
		if w < threshER || r.length < 3 || skipped[[2]int{r.row, r.start}] {
			continue
		}
		if best == nil || w > bestW || (w == bestW && r.length > best.length) {
			best, bestW = r, w
		}
	}
	return best
}

// splitPosition places a donor of the given width inside the run so the
// left fragment stays below threshold; -1 when the run cannot host it.
func splitPosition(target *fullRun, width, threshER int) int {
	if width >= target.length {
		return -1
	}
	at := target.start + threshER - 1
	if at+width > target.start+target.length {
		at = target.start + target.length/2 - width/2
	}
	if at < target.start {
		at = target.start
	}
	if at+width > target.start+target.length {
		return -1
	}
	return at
}

// donorCandidates collects up to n donor cells: safe donors (vacating them
// creates only sub-threshold gaps) and split donors (cells bordering the
// target component), nearest to the target first.
func donorCandidates(l *layout.Layout, runs []fullRun, weights []int, threshER int, target *fullRun, n int) []*netlist.Instance {
	byRow := map[int][]fullRun{}
	for _, r := range runs {
		byRow[r.row] = append(byRow[r.row], r)
	}
	compAt := func(row, site int) (int, bool) {
		rr := byRow[row]
		i := sort.Search(len(rr), func(k int) bool { return rr[k].start+rr[k].length > site })
		if i < len(rr) && site >= rr[i].start {
			return rr[i].comp, true
		}
		return 0, false
	}
	type cand struct {
		in   *netlist.Instance
		dist int
		tier int // 0 safe, 1 split, 2 last-resort
	}
	var cands []cand
	// Donor scan is restricted to a row window around the target: distant
	// donors would pay too much wirelength anyway.
	const donorRowWindow = 14
	seenInst := map[*netlist.Instance]bool{}
	var pool []*netlist.Instance
	for r := target.row - donorRowWindow; r <= target.row+donorRowWindow; r++ {
		if r < 0 || r >= l.NumRows {
			continue
		}
		for _, in := range l.RowCells(r) {
			if !seenInst[in] {
				seenInst[in] = true
				pool = append(pool, in)
			}
		}
	}
	for _, in := range pool {
		if in.Fixed || !in.Master.IsFunctional() {
			continue
		}
		p := l.PlacementOf(in)
		if !p.Placed || in.Master.WidthSites >= target.length {
			continue
		}
		joint := in.Master.WidthSites
		seen := map[int]bool{}
		touches := false
		add := func(c int) {
			if !seen[c] {
				seen[c] = true
				joint += weights[c]
				if c == target.comp {
					touches = true
				}
			}
		}
		if c, ok := compAt(p.Row, p.Site-1); ok {
			add(c)
		}
		if c, ok := compAt(p.Row, p.Site+in.Master.WidthSites); ok {
			add(c)
		}
		for _, r := range []int{p.Row - 1, p.Row + 1} {
			for _, run := range byRow[r] {
				if run.start < p.Site+in.Master.WidthSites && p.Site < run.start+run.length {
					add(run.comp)
				}
			}
		}
		tier := 2
		switch {
		case joint < threshER:
			tier = 0 // safe: vacancy stays sub-threshold
		case touches:
			tier = 1 // split: vacancy rejoins the target region
		}
		d := abs(p.Row-target.row)*8 + abs(p.Site-target.start)
		cands = append(cands, cand{in, d, tier})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tier != cands[j].tier {
			return cands[i].tier < cands[j].tier
		}
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].in.ID < cands[j].in.ID
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]*netlist.Instance, len(cands))
	for i, c := range cands {
		out[i] = c.in
	}
	return out
}
