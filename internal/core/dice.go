package core

import (
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// The dicing stage finishes what the row-wise shifts cannot: Algorithm 1
// provably reduces every component below Thresh_ER except the mass that
// accumulates against each pass's blind spots (core edges and fixed
// security-critical cells). Dicing splits those residual regions directly
// with targeted ECO cell relocations, in the same spirit as the operator:
//
//   - a "safe donor" is a movable cell whose departure cannot itself create
//     an exploitable region (the joined gap stays below threshold);
//   - a "split donor" borders the target region itself, so moving it into
//     the region's interior re-shapes the region, cutting it apart.
//
// Every move is validated against the global exploitable mass and reverted
// if it does not strictly help, so the stage monotonically converges.

// fullRun is one free run with its component id over the whole layout.
type fullRun struct {
	row, start, length int
	comp               int
}

// compBuf holds one whole-layout component labeling with all its storage
// reusable across dicing attempts: runs in row-major order (row r occupies
// runs[rowStart[r]:rowStart[r+1]]), a union-find arena, and per-root
// weights (indexed by run id, valid at component roots).
type compBuf struct {
	runs     []fullRun
	rowStart []int
	parent   []int
	weights  []int
}

// diceRowCache memoizes per-row occupancy scans (free runs and cell
// lists) across dicing attempts. A dice probe moves one donor, touching at
// most two rows; every other row's scan stays valid, so rebuilding the
// whole-layout labeling after a probe re-scans only the changed rows.
type diceRowCache struct {
	runs       [][]layout.SiteRun
	cells      [][]*netlist.Instance
	runsValid  []bool
	cellsValid []bool
}

// reset invalidates every row (storage is kept) for a new dicing stage.
func (rc *diceRowCache) reset(nRows int) {
	if cap(rc.runs) < nRows {
		rc.runs = make([][]layout.SiteRun, nRows)
		rc.cells = make([][]*netlist.Instance, nRows)
		rc.runsValid = make([]bool, nRows)
		rc.cellsValid = make([]bool, nRows)
	}
	rc.runs = rc.runs[:nRows]
	rc.cells = rc.cells[:nRows]
	rc.runsValid = rc.runsValid[:nRows]
	rc.cellsValid = rc.cellsValid[:nRows]
	for r := range rc.runsValid {
		rc.runsValid[r] = false
		rc.cellsValid[r] = false
	}
}

// invalidate marks one row's scans stale (after a cell moved in it).
func (rc *diceRowCache) invalidate(row int) {
	if row >= 0 && row < len(rc.runsValid) {
		rc.runsValid[row] = false
		rc.cellsValid[row] = false
	}
}

func (rc *diceRowCache) rowRuns(l *layout.Layout, r int) []layout.SiteRun {
	if !rc.runsValid[r] {
		rc.runs[r] = l.AppendFreeRuns(r, rc.runs[r][:0])
		rc.runsValid[r] = true
	}
	return rc.runs[r]
}

func (rc *diceRowCache) rowCells(l *layout.Layout, r int) []*netlist.Instance {
	if !rc.cellsValid[r] {
		rc.cells[r] = l.AppendRowCells(r, rc.cells[r][:0])
		rc.cellsValid[r] = true
	}
	return rc.cells[r]
}

// build labels every free run of the layout with a component id and fills
// the per-component weights, reusing the buffer's storage. Row scans come
// from the cache, so only rows that changed since the last build hit the
// occupancy grid.
func (c *compBuf) build(l *layout.Layout, rc *diceRowCache) {
	c.runs = c.runs[:0]
	c.rowStart = c.rowStart[:0]
	for r := 0; r < l.NumRows; r++ {
		c.rowStart = append(c.rowStart, len(c.runs))
		for _, run := range rc.rowRuns(l, r) {
			c.runs = append(c.runs, fullRun{row: r, start: run.Start, length: run.Len})
		}
	}
	c.rowStart = append(c.rowStart, len(c.runs))

	c.parent = sized(c.parent, len(c.runs))
	for i := range c.parent {
		c.parent[i] = i
	}
	for r := 1; r < l.NumRows; r++ {
		lo0, lo1 := c.rowStart[r-1], c.rowStart[r]
		hi0, hi1 := c.rowStart[r], c.rowStart[r+1]
		i, j := lo0, hi0
		for i < lo1 && j < hi1 {
			a, b := c.runs[i], c.runs[j]
			if a.start < b.start+b.length && b.start < a.start+a.length {
				ra, rb := c.find(i), c.find(j)
				if ra != rb {
					c.parent[ra] = rb
				}
			}
			if a.start+a.length < b.start+b.length {
				i++
			} else {
				j++
			}
		}
	}
	c.weights = sized(c.weights, len(c.runs))
	for i := range c.weights {
		c.weights[i] = 0
	}
	for i := range c.runs {
		c.runs[i].comp = c.find(i)
		c.weights[c.runs[i].comp] += c.runs[i].length
	}
}

func (c *compBuf) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

// rowRuns returns the runs of one row (empty slice outside the core).
func (c *compBuf) rowRuns(r int) []fullRun {
	if r < 0 || r+1 >= len(c.rowStart) {
		return nil
	}
	return c.runs[c.rowStart[r]:c.rowStart[r+1]]
}

// diceScratch is the reusable state of the dicing stage: the attempt's
// component labeling (a), a second buffer (b) for the post-probe
// potential recomputation (which must not clobber the attempt's runs),
// and the donor-scan scratch.
type diceScratch struct {
	a, b  compBuf
	cache diceRowCache

	seenComps []int
	cands     []diceCand
	donors    []*netlist.Instance
}

// diceCand is one scored donor candidate: tier 0 = safe (vacancy stays
// sub-threshold), 1 = split (vacancy rejoins the target region), 2 =
// last-resort; ties broken by distance then instance ID — a strict total
// order, so bounded selection equals full sort + truncate.
type diceCand struct {
	in   *netlist.Instance
	dist int
	tier int
}

func (a diceCand) before(b diceCand) bool {
	if a.tier != b.tier {
		return a.tier < b.tier
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.in.ID < b.in.ID
}

// exploitablePotential returns the total exploitable mass and a quadratic
// potential Φ = Σ w² over exploitable components. Φ strictly decreases when
// a region shrinks OR splits, and increases when regions merge, so it is
// the dicing stage's progress measure.
func exploitablePotential(weights []int, threshER int) (mass int, phi float64) {
	for _, w := range weights {
		if w >= threshER {
			mass += w
			phi += float64(w) * float64(w)
		}
	}
	return mass, phi
}

// diceResidual splits residual exploitable regions by relocating donor
// cells into their longest runs, keeping only moves that strictly reduce
// the global exploitable mass. It returns the number of cells relocated.
func (e *shiftEngine) diceResidual(l *layout.Layout, threshER, maxMoves int) int {
	d := &e.dice
	moves := 0
	skipped := map[[2]int]bool{} // (row,start) of a given-up target run
	// The row cache starts cold: the row passes just moved cells anywhere.
	d.cache.reset(l.NumRows)
	// Attempts (including rejected probes) are bounded separately from
	// accepted moves so pathological landscapes cannot stall the flow.
	var mass int
	var phi float64
	dirty := true // labeling stale: the layout changed since d.a was built
	for attempts := 0; moves < maxMoves && attempts < 2*maxMoves; attempts++ {
		if dirty {
			// A rejected attempt reverts every probe, so the labeling of
			// the previous attempt is still exact and is reused.
			d.a.build(l, &d.cache)
			mass, phi = exploitablePotential(d.a.weights, threshER)
			dirty = false
		}
		if mass == 0 {
			return moves
		}
		target := pickTarget(&d.a, threshER, skipped)
		if target == nil {
			return moves
		}
		cands := e.donorCandidates(l, &d.a, threshER, target, 4)
		accepted := false
		for _, donor := range cands {
			old := l.PlacementOf(donor)
			at := splitPosition(target, donor.Master.WidthSites, threshER)
			if at < 0 {
				break
			}
			if err := l.Place(donor, target.row, at); err != nil {
				continue
			}
			d.cache.invalidate(old.Row)
			d.cache.invalidate(target.row)
			d.b.build(l, &d.cache)
			_, phi2 := exploitablePotential(d.b.weights, threshER)
			if phi2 < phi {
				moves++
				accepted = true
				// Fresh geometry: previously hopeless targets may now be
				// splittable.
				skipped = map[[2]int]bool{}
				break
			}
			// No improvement: revert.
			if err := l.Place(donor, old.Row, old.Site); err != nil {
				// The origin should always be free again; if not, keep the
				// move rather than corrupting state.
				moves++
				accepted = true
				break
			}
			d.cache.invalidate(old.Row)
			d.cache.invalidate(target.row)
		}
		if accepted {
			dirty = true
		} else {
			skipped[[2]int{target.row, target.start}] = true
		}
	}
	return moves
}

// pickTarget returns the longest run of the heaviest exploitable component
// that has not been given up on.
func pickTarget(c *compBuf, threshER int, skipped map[[2]int]bool) *fullRun {
	var best *fullRun
	bestW := 0
	for i := range c.runs {
		r := &c.runs[i]
		w := c.weights[r.comp]
		if w < threshER || r.length < 3 || skipped[[2]int{r.row, r.start}] {
			continue
		}
		if best == nil || w > bestW || (w == bestW && r.length > best.length) {
			best, bestW = r, w
		}
	}
	return best
}

// splitPosition places a donor of the given width inside the run so the
// left fragment stays below threshold; -1 when the run cannot host it.
func splitPosition(target *fullRun, width, threshER int) int {
	if width >= target.length {
		return -1
	}
	at := target.start + threshER - 1
	if at+width > target.start+target.length {
		at = target.start + target.length/2 - width/2
	}
	if at < target.start {
		at = target.start
	}
	if at+width > target.start+target.length {
		return -1
	}
	return at
}

// donorCandidates collects up to n donor cells: safe donors (vacating them
// creates only sub-threshold gaps) and split donors (cells bordering the
// target component), nearest to the target first. The scan is the dicing
// stage's hot loop, so it runs allocation-free on the engine's scratch:
// a bounded best-n insertion replaces the full sort (identical result —
// the (tier, dist, ID) order is strict and total), and per-cell neighbor
// lookups binary-search the overlap window instead of scanning whole rows.
func (e *shiftEngine) donorCandidates(l *layout.Layout, c *compBuf, threshER int, target *fullRun, n int) []*netlist.Instance {
	d := &e.dice
	compAt := func(row, site int) (int, bool) {
		rr := c.rowRuns(row)
		i := sort.Search(len(rr), func(k int) bool { return rr[k].start+rr[k].length > site })
		if i < len(rr) && site >= rr[i].start {
			return rr[i].comp, true
		}
		return 0, false
	}
	best := d.cands[:0]
	consider := func(cd diceCand) {
		if len(best) == n {
			if !cd.before(best[n-1]) {
				return
			}
			best = best[:n-1]
		}
		i := len(best)
		best = append(best, cd)
		for i > 0 && cd.before(best[i-1]) {
			best[i] = best[i-1]
			i--
		}
		best[i] = cd
	}
	// Donor scan is restricted to a row window around the target: distant
	// donors would pay too much wirelength anyway. A placed cell lives in
	// exactly one row, so the row sweep visits each candidate once.
	const donorRowWindow = 14
	for r := target.row - donorRowWindow; r <= target.row+donorRowWindow; r++ {
		if r < 0 || r >= l.NumRows {
			continue
		}
		for _, in := range d.cache.rowCells(l, r) {
			if in.Fixed || !in.Master.IsFunctional() {
				continue
			}
			p := l.PlacementOf(in)
			if !p.Placed || in.Master.WidthSites >= target.length {
				continue
			}
			joint := in.Master.WidthSites
			seen := d.seenComps[:0]
			touches := false
			add := func(cc int) {
				for _, s := range seen {
					if s == cc {
						return
					}
				}
				seen = append(seen, cc)
				joint += c.weights[cc]
				if cc == target.comp {
					touches = true
				}
			}
			if cc, ok := compAt(p.Row, p.Site-1); ok {
				add(cc)
			}
			if cc, ok := compAt(p.Row, p.Site+in.Master.WidthSites); ok {
				add(cc)
			}
			right := p.Site + in.Master.WidthSites
			for _, rr := range [2]int{p.Row - 1, p.Row + 1} {
				runs := c.rowRuns(rr)
				k := sort.Search(len(runs), func(i int) bool { return runs[i].start+runs[i].length > p.Site })
				for ; k < len(runs) && runs[k].start < right; k++ {
					add(runs[k].comp)
				}
			}
			d.seenComps = seen[:0] // keep grown capacity
			tier := 2
			switch {
			case joint < threshER:
				tier = 0 // safe: vacancy stays sub-threshold
			case touches:
				tier = 1 // split: vacancy rejoins the target region
			}
			dist := abs(p.Row-target.row)*8 + abs(p.Site-target.start)
			consider(diceCand{in, dist, tier})
		}
	}
	d.cands = best[:0] // keep capacity for the next attempt
	out := d.donors[:0]
	for _, cd := range best {
		out = append(out, cd.in)
	}
	d.donors = out
	return out
}
