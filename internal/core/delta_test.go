package core

import (
	"math/rand"
	"sync"
	"testing"

	"gdsiiguard/internal/fault"
)

// mutateOneGene flips exactly one gene of p, mirroring the exploration
// loop's mutation operator: the child differs from its parent in the
// operator choice, the LDA grid or depth, or one NDR scale entry.
func mutateOneGene(p Params, rng *rand.Rand) Params {
	c := p.Clone()
	switch rng.Intn(4) {
	case 0:
		if c.Op == CS {
			c.Op = LDA
		} else {
			c.Op = CS
		}
	case 1:
		c.Op = LDA
		c.LDAGridN = LDAGridValues[rng.Intn(len(LDAGridValues))]
	case 2:
		c.Op = LDA
		c.LDAIters = LDAIterValues[rng.Intn(len(LDAIterValues))]
	case 3:
		c.ScaleM[rng.Intn(len(c.ScaleM))] = ScaleValues[rng.Intn(len(ScaleValues))]
	}
	return c
}

// TestDeltaChainMatchesScratch is the delta path's equivalence gate: a
// chain of single-gene parent→child mutations evaluated incrementally on
// a delta arena (operator memo, geometry reuse, warm-started routes) must
// be bit-identical, link by link, to from-scratch evaluation of the same
// chromosomes — and the chain must actually exercise the reuse paths.
func TestDeltaChainMatchesScratch(t *testing.T) {
	l := buildDesign(t, 6, 5, 0.5, 3)
	base, err := EvalBaseline(l, flowConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	k := base.Layout.Lib().NumLayers()

	rng := rand.New(rand.NewSource(7))
	delta := NewScratch(base)
	plain := NewScratchPlain(base)

	p := DefaultParams(k)
	for link := 0; link < 24; link++ {
		got, err := delta.Run(p)
		if err != nil {
			t.Fatalf("link %d (%s): delta: %v", link, p.Key(), err)
		}
		want, err := plain.Run(p)
		if err != nil {
			t.Fatalf("link %d (%s): plain: %v", link, p.Key(), err)
		}
		sameMetrics(t, p.Key(), got.Metrics, want.Metrics)
		if got.CSResult != want.CSResult {
			t.Errorf("%s: CSResult %+v != %+v", p.Key(), got.CSResult, want.CSResult)
		}
		if got.LDAResult != want.LDAResult {
			t.Errorf("%s: LDAResult %+v != %+v", p.Key(), got.LDAResult, want.LDAResult)
		}
		p = mutateOneGene(p, rng)
	}

	st := delta.Stats()
	t.Logf("delta stats: %+v", st)
	if st.OpMemoHits+st.OpArenaHits+st.OpIterSteps == 0 {
		t.Error("chain exercised no operator reuse at all")
	}
	if st.RoutesWarm == 0 {
		t.Error("chain exercised no warm-started route")
	}
	if st.NetsReplayed == 0 {
		t.Error("warm-started routes replayed no nets")
	}
	if err := base.Layout.Validate(); err != nil {
		t.Fatalf("baseline corrupted: %v", err)
	}
}

// TestDeltaRecoversAfterFailures injects a mid-operator panic and a route
// error into a delta arena holding lineage state, and checks that the
// journal rollback restores a state from which subsequent evaluations are
// still bit-identical to from-scratch ones — including re-evaluating the
// very chromosome that failed.
func TestDeltaRecoversAfterFailures(t *testing.T) {
	l := buildDesign(t, 6, 5, 0.5, 3)
	base, err := EvalBaseline(l, flowConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	k := base.Layout.Lib().NumLayers()
	delta := NewScratch(base)
	plain := NewScratchPlain(base)

	lda := DefaultParams(k)
	lda.Op = LDA
	lda.LDAGridN, lda.LDAIters = LDAGridValues[1], 2
	deeper := lda.Clone()
	deeper.LDAIters = 3

	// Seed lineage: the arena now holds lda's chain.
	if _, err := delta.Run(lda); err != nil {
		t.Fatal(err)
	}

	// Extending the chain dies mid-iteration inside ECO placement.
	fault.Arm(map[fault.Point]fault.Rule{fault.PlaceECO: {Every: 1, Limit: 1, Panic: true}})
	if _, err := delta.Run(deeper); err == nil {
		fault.Disarm()
		t.Fatal("expected injected operator failure")
	}
	fault.Disarm()

	// The route stage dies while the arena holds a post-operator state.
	fault.Arm(map[fault.Point]fault.Rule{fault.Route: {Every: 1, Limit: 1}})
	if _, err := delta.Run(lda); err == nil {
		fault.Disarm()
		t.Fatal("expected injected route failure")
	}
	fault.Disarm()

	for _, p := range []Params{deeper, lda, DefaultParams(k)} {
		got, err := delta.Run(p)
		if err != nil {
			t.Fatalf("delta after failures (%s): %v", p.Key(), err)
		}
		want, err := plain.Run(p)
		if err != nil {
			t.Fatalf("plain (%s): %v", p.Key(), err)
		}
		sameMetrics(t, "post-failure "+p.Key(), got.Metrics, want.Metrics)
		if got.LDAResult != want.LDAResult {
			t.Errorf("%s: LDAResult %+v != %+v", p.Key(), got.LDAResult, want.LDAResult)
		}
	}
}

// TestDeltaMemoSharedAcrossArenas runs concurrent arenas over one baseline
// — the exploration loop's worker shape — and checks every result against
// a from-scratch evaluation. Run under -race this also exercises the
// memo's singleflight protocol.
func TestDeltaMemoSharedAcrossArenas(t *testing.T) {
	l := buildDesign(t, 6, 5, 0.5, 3)
	base, err := EvalBaseline(l, flowConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	k := base.Layout.Lib().NumLayers()

	rng := rand.New(rand.NewSource(21))
	var params []Params
	for i := 0; i < 12; i++ {
		params = append(params, RandomParams(k, rng))
	}

	const workers = 4
	results := make([][]Metrics, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch(base)
			for _, p := range params {
				res, err := s.Run(p)
				if err != nil {
					t.Errorf("worker %d (%s): %v", w, p.Key(), err)
					return
				}
				results[w] = append(results[w], res.Metrics)
			}
		}()
	}
	wg.Wait()

	plain := NewScratchPlain(base)
	for i, p := range params {
		want, err := plain.Run(p)
		if err != nil {
			t.Fatalf("plain (%s): %v", p.Key(), err)
		}
		for w := 0; w < workers; w++ {
			if len(results[w]) <= i {
				continue // that worker already reported a failure
			}
			sameMetrics(t, p.Key(), results[w][i], want.Metrics)
		}
	}
}
