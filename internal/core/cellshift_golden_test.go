package core

import (
	"fmt"
	"sort"
	"testing"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// This file carries a verbatim copy of the seed (pre-engine) Cell Shift
// implementation — per-row from-scratch below-index rebuilds, Clone-based
// pass rollback, per-pass whole-layout component labeling — as the golden
// reference. The equivalence tests assert that the incremental engine
// reproduces the reference's Shifts, DiceMoves, exploitable-mass
// trajectory and final occupancy exactly, on randomized designs and on
// the embedded benchmark suite.

// refCellShiftWithOptions is the seed CellShiftWithOptions. trace, when
// non-nil, records every exploitable-mass checkpoint in call order — the
// same checkpoints the engine's massTrace hook records.
func refCellShiftWithOptions(l *layout.Layout, threshER int, dice bool, trace *[]int) CellShiftResult {
	var res CellShiftResult
	moved := map[*netlist.Instance]bool{}
	const maxRounds = 3
	for round := 0; round < maxRounds; round++ {
		before := refExploitableMass(l, threshER, trace)
		if before == 0 {
			break
		}
		best := before
		fails := 0
		for pass := 0; pass < maxCellShiftPasses && fails < 2; pass++ {
			snap := l.Clone()
			shiftsBefore := res.Shifts
			refCellShiftPass(l, threshER, pass%2 == 1, &res, moved)
			m := refExploitableMass(l, threshER, trace)
			if m >= best {
				if err := l.AdoptPlacements(snap); err == nil {
					res.Shifts = shiftsBefore
				}
				fails++
				continue
			}
			fails = 0
			best = m
		}
		if dice {
			budget := l.FreeSites()/threshER*2 + 64
			res.DiceMoves += refDiceResidual(l, threshER, budget)
		}
		if refExploitableMass(l, threshER, trace) >= before {
			break
		}
	}
	res.CellsMoved = len(moved) + res.DiceMoves
	return res
}

func refExploitableMass(l *layout.Layout, threshER int, trace *[]int) int {
	rows := make([][]freeRun, l.NumRows)
	for r := 0; r < l.NumRows; r++ {
		for _, run := range l.FreeRuns(r) {
			rows[r] = append(rows[r], freeRun{run.Start, run.Len})
		}
	}
	ix := refBuildBelowIndex(rows)
	mass := 0
	for _, w := range ix.weight {
		if w >= threshER {
			mass += w
		}
	}
	if trace != nil {
		*trace = append(*trace, mass)
	}
	return mass
}

// refBelowIndex is the seed belowIndex: rebuilt from scratch per row.
type refBelowIndex struct {
	topRuns     []freeRun
	rootOf      []int
	weight      map[int]int
	shareWeight []int
	rootLink    []int
	scratch     []int
}

func refBuildBelowIndex(rows [][]freeRun) *refBelowIndex {
	ix := &refBelowIndex{weight: map[int]int{}}
	if len(rows) == 0 {
		return ix
	}
	offsets := make([]int, len(rows))
	total := 0
	for r, rr := range rows {
		offsets[r] = total
		total += len(rr)
	}
	parent := make([]int, total)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for r := 1; r < len(rows); r++ {
		lo, hi := rows[r-1], rows[r]
		i, j := 0, 0
		for i < len(lo) && j < len(hi) {
			a, b := lo[i], hi[j]
			if a.start < b.start+b.length && b.start < a.start+a.length {
				ra, rb := find(offsets[r-1]+i), find(offsets[r]+j)
				if ra != rb {
					parent[ra] = rb
				}
			}
			if a.start+a.length < b.start+b.length {
				i++
			} else {
				j++
			}
		}
	}
	for r, rr := range rows {
		for k, run := range rr {
			ix.weight[find(offsets[r]+k)] += run.length
		}
	}
	top := len(rows) - 1
	ix.topRuns = rows[top]
	ix.rootOf = make([]int, len(ix.topRuns))
	ix.shareWeight = make([]int, len(ix.topRuns))
	ix.rootLink = make([]int, len(ix.topRuns))
	firstOf := map[int]int{}
	for k := range ix.topRuns {
		root := find(offsets[top] + k)
		ix.rootOf[k] = root
		if prev, ok := firstOf[root]; ok {
			ix.rootLink[k] = prev
		} else {
			ix.rootLink[k] = -1
			ix.shareWeight[k] = ix.weight[root]
			firstOf[root] = k
		}
		if ix.rootLink[k] >= 0 {
			firstOf[root] = k
		}
	}
	return ix
}

func (ix *refBelowIndex) componentWeight(cur []freeRun, vIdx int) int {
	n := len(cur)
	m := len(ix.topRuns)
	total := n + m
	if cap(ix.scratch) < total {
		ix.scratch = make([]int, total*2)
	}
	parent := ix.scratch[:total]
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for k := 0; k < m; k++ {
		if ix.rootLink[k] >= 0 {
			union(n+k, n+ix.rootLink[k])
		}
	}
	i, j := 0, 0
	for i < m && j < n {
		a, b := ix.topRuns[i], cur[j]
		if a.start < b.start+b.length && b.start < a.start+a.length {
			union(n+i, j)
		}
		if a.start+a.length < b.start+b.length {
			i++
		} else {
			j++
		}
	}
	target := find(vIdx)
	w := 0
	for k := 0; k < n; k++ {
		if find(k) == target {
			w += cur[k].length
		}
	}
	for k := 0; k < m; k++ {
		if ix.shareWeight[k] > 0 && find(n+k) == target {
			w += ix.shareWeight[k]
		}
	}
	return w
}

func refCellShiftPass(l *layout.Layout, threshER int, reverse bool, res *CellShiftResult, moved map[*netlist.Instance]bool) {
	w := l.SitesPerRow
	phys := func(s int) int {
		if reverse {
			return w - 1 - s
		}
		return s
	}
	runsOfRow := func(row int) []freeRun {
		raw := l.FreeRuns(row)
		out := make([]freeRun, 0, len(raw))
		for _, r := range raw {
			if reverse {
				out = append(out, freeRun{w - (r.Start + r.Len), r.Len})
			} else {
				out = append(out, freeRun{r.Start, r.Len})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
		return out
	}
	shift := func(cell *netlist.Instance) error {
		unlocked := false
		if cell.Fixed && cell.SecurityCritical {
			cell.Fixed = false
			unlocked = true
		}
		var err error
		if reverse {
			err = l.ShiftRight(cell)
		} else {
			err = l.ShiftLeft(cell)
		}
		if unlocked {
			cell.Fixed = true
		}
		return err
	}

	prevRuns := make([][]freeRun, 0, l.NumRows)
	for row := 0; row < l.NumRows; row++ {
		below := refBuildBelowIndex(prevRuns)
		cur := runsOfRow(row)
		j := 0
		for j < len(cur) {
			if below.componentWeight(cur, j) < threshER {
				j++
				continue
			}
			cellSite := cur[j].start + cur[j].length
			if cellSite >= w {
				j++
				continue
			}
			cell := l.At(row, phys(cellSite))
			if cell == nil || (cell.Fixed && !cell.SecurityCritical) {
				j++
				continue
			}
			vLen0 := cur[j].length
			performed := 0
			for performed < vLen0 && below.componentWeight(cur, j) >= threshER {
				if err := shift(cell); err != nil {
					break
				}
				performed++
				moved[cell] = true
				cur = shrinkAndSpill(cur, j, cell.Master.WidthSites)
				if performed == vLen0 {
					break
				}
			}
			res.Shifts += performed
			if performed < vLen0 {
				j++
			}
		}
		prevRuns = append(prevRuns, runsOfRow(row))
	}
}

func refFullComponents(l *layout.Layout) ([]fullRun, []int) {
	var runs []fullRun
	rowIdx := make([][]int, l.NumRows)
	for r := 0; r < l.NumRows; r++ {
		for _, run := range l.FreeRuns(r) {
			rowIdx[r] = append(rowIdx[r], len(runs))
			runs = append(runs, fullRun{row: r, start: run.Start, length: run.Len})
		}
	}
	parent := make([]int, len(runs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for r := 1; r < l.NumRows; r++ {
		lo, hi := rowIdx[r-1], rowIdx[r]
		i, j := 0, 0
		for i < len(lo) && j < len(hi) {
			a, b := runs[lo[i]], runs[hi[j]]
			if a.start < b.start+b.length && b.start < a.start+a.length {
				ra, rb := find(lo[i]), find(hi[j])
				if ra != rb {
					parent[ra] = rb
				}
			}
			if a.start+a.length < b.start+b.length {
				i++
			} else {
				j++
			}
		}
	}
	weights := make([]int, len(runs))
	for i := range runs {
		runs[i].comp = find(i)
		weights[runs[i].comp] += runs[i].length
	}
	return runs, weights
}

func refDiceResidual(l *layout.Layout, threshER, maxMoves int) int {
	moves := 0
	skipped := map[[2]int]bool{}
	for attempts := 0; moves < maxMoves && attempts < 2*maxMoves; attempts++ {
		runs, weights := refFullComponents(l)
		mass, phi := exploitablePotential(weights, threshER)
		if mass == 0 {
			return moves
		}
		target := refPickTarget(runs, weights, threshER, skipped)
		if target == nil {
			return moves
		}
		cands := refDonorCandidates(l, runs, weights, threshER, target, 4)
		accepted := false
		for _, donor := range cands {
			old := l.PlacementOf(donor)
			at := splitPosition(target, donor.Master.WidthSites, threshER)
			if at < 0 {
				break
			}
			if err := l.Place(donor, target.row, at); err != nil {
				continue
			}
			_, phi2 := exploitablePotential(refWeightsOf(l), threshER)
			if phi2 < phi {
				moves++
				accepted = true
				skipped = map[[2]int]bool{}
				break
			}
			if err := l.Place(donor, old.Row, old.Site); err != nil {
				moves++
				accepted = true
				break
			}
		}
		if !accepted {
			skipped[[2]int{target.row, target.start}] = true
		}
	}
	return moves
}

func refWeightsOf(l *layout.Layout) []int {
	_, w := refFullComponents(l)
	return w
}

func refPickTarget(runs []fullRun, weights []int, threshER int, skipped map[[2]int]bool) *fullRun {
	var best *fullRun
	bestW := 0
	for i := range runs {
		r := &runs[i]
		w := weights[r.comp]
		if w < threshER || r.length < 3 || skipped[[2]int{r.row, r.start}] {
			continue
		}
		if best == nil || w > bestW || (w == bestW && r.length > best.length) {
			best, bestW = r, w
		}
	}
	return best
}

func refDonorCandidates(l *layout.Layout, runs []fullRun, weights []int, threshER int, target *fullRun, n int) []*netlist.Instance {
	byRow := make(map[int][]fullRun)
	for _, r := range runs {
		byRow[r.row] = append(byRow[r.row], r)
	}
	compAt := func(row, site int) (int, bool) {
		rr := byRow[row]
		i := sort.Search(len(rr), func(k int) bool { return rr[k].start+rr[k].length > site })
		if i < len(rr) && site >= rr[i].start {
			return rr[i].comp, true
		}
		return 0, false
	}
	type cand struct {
		in   *netlist.Instance
		dist int
		tier int
	}
	var cands []cand
	const donorRowWindow = 14
	seenInst := map[*netlist.Instance]bool{}
	var pool []*netlist.Instance
	for r := target.row - donorRowWindow; r <= target.row+donorRowWindow; r++ {
		if r < 0 || r >= l.NumRows {
			continue
		}
		for _, in := range l.RowCells(r) {
			if !seenInst[in] {
				seenInst[in] = true
				pool = append(pool, in)
			}
		}
	}
	for _, in := range pool {
		if in.Fixed || !in.Master.IsFunctional() {
			continue
		}
		p := l.PlacementOf(in)
		if !p.Placed || in.Master.WidthSites >= target.length {
			continue
		}
		joint := in.Master.WidthSites
		seen := map[int]bool{}
		touches := false
		add := func(c int) {
			if !seen[c] {
				seen[c] = true
				joint += weights[c]
				if c == target.comp {
					touches = true
				}
			}
		}
		if c, ok := compAt(p.Row, p.Site-1); ok {
			add(c)
		}
		if c, ok := compAt(p.Row, p.Site+in.Master.WidthSites); ok {
			add(c)
		}
		for _, r := range []int{p.Row - 1, p.Row + 1} {
			for _, run := range byRow[r] {
				if run.start < p.Site+in.Master.WidthSites && p.Site < run.start+run.length {
					add(run.comp)
				}
			}
		}
		tier := 2
		switch {
		case joint < threshER:
			tier = 0
		case touches:
			tier = 1
		}
		d := abs(p.Row-target.row)*8 + abs(p.Site-target.start)
		cands = append(cands, cand{in, d, tier})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tier != cands[j].tier {
			return cands[i].tier < cands[j].tier
		}
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].in.ID < cands[j].in.ID
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]*netlist.Instance, len(cands))
	for i, c := range cands {
		out[i] = c.in
	}
	return out
}

// --- equivalence harness -------------------------------------------------

// assertGoldenEquivalence runs the reference and the engine on clones of l
// and asserts identical Shifts/DiceMoves, identical exploitable-mass
// trajectory, and bit-identical final occupancy. CellsMoved is compared
// as ≤ the reference, which over-counts cells touched only by rolled-back
// passes (the bug the engine fixes).
func assertGoldenEquivalence(t *testing.T, label string, l *layout.Layout, threshER int, dice bool) {
	t.Helper()
	refL, newL := l.Clone(), l.Clone()
	Preprocess(refL)
	Preprocess(newL)

	var refTrace []int
	refRes := refCellShiftWithOptions(refL, threshER, dice, &refTrace)

	var newTrace []int
	var e shiftEngine
	e.massTrace = &newTrace
	newRes := e.run(newL, threshER, dice)

	if newRes.Shifts != refRes.Shifts {
		t.Errorf("%s: Shifts = %d, reference %d", label, newRes.Shifts, refRes.Shifts)
	}
	if newRes.DiceMoves != refRes.DiceMoves {
		t.Errorf("%s: DiceMoves = %d, reference %d", label, newRes.DiceMoves, refRes.DiceMoves)
	}
	if newRes.CellsMoved > refRes.CellsMoved {
		t.Errorf("%s: CellsMoved = %d > reference %d", label, newRes.CellsMoved, refRes.CellsMoved)
	}
	if len(newTrace) != len(refTrace) {
		t.Errorf("%s: mass trajectory length %d, reference %d\n new %v\n ref %v",
			label, len(newTrace), len(refTrace), newTrace, refTrace)
	} else {
		for i := range refTrace {
			if newTrace[i] != refTrace[i] {
				t.Errorf("%s: mass trajectory diverges at %d: %d vs %d\n new %v\n ref %v",
					label, i, newTrace[i], refTrace[i], newTrace, refTrace)
				break
			}
		}
	}
	// Final occupancy: identical placement per instance (Clone preserves
	// instance order, so index i is the same cell in both).
	for i, in := range refL.Netlist.Insts {
		want := refL.PlacementOf(in)
		got := newL.PlacementOf(newL.Netlist.Insts[i])
		if got != want {
			t.Errorf("%s: %s placed at %+v, reference %+v", label, in.Name, got, want)
		}
	}
	if err := newL.Validate(); err != nil {
		t.Errorf("%s: engine left invalid layout: %v", label, err)
	}
}

// TestCellShiftGoldenRandomized compares engine vs reference on randomized
// globally-placed designs across utilizations and both dice settings.
func TestCellShiftGoldenRandomized(t *testing.T) {
	cases := []struct {
		chains, stages int
		util           float64
		seed           int64
	}{
		{6, 5, 0.45, 1},
		{8, 7, 0.60, 2},
		{10, 6, 0.72, 3},
		{4, 12, 0.55, 4},
	}
	for _, c := range cases {
		l := buildDesign(t, c.chains, c.stages, c.util, c.seed)
		for _, dice := range []bool{false, true} {
			for _, thresh := range []int{10, 20, 40} {
				label := fmt.Sprintf("seed=%d util=%.2f thresh=%d dice=%v", c.seed, c.util, thresh, dice)
				assertGoldenEquivalence(t, label, l, thresh, dice)
			}
		}
	}
}

// TestCellShiftGoldenBenchdesigns compares engine vs reference on embedded
// benchmark designs (the operator's real workloads). The larger designs
// make the O(R²) reference slow, so the full sweep is reserved for
// non-short runs.
func TestCellShiftGoldenBenchdesigns(t *testing.T) {
	designs := []string{"PRESENT"}
	if !testing.Short() {
		designs = append(designs, "openMSP430_1", "MISTY", "TDEA", "SPARX", "Camellia")
	}
	for _, name := range designs {
		d, err := benchdesigns.Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertGoldenEquivalence(t, name, d.Layout, 20, true)
	}
}

// TestCellShiftCellsMovedRollback is the regression test for the seed's
// CellsMoved over-count: a pass that is rolled back must not leave its
// cells in the moved set. The scenario: row 0 entirely free, row 1 holding
// one movable cell mid-row. Each directional pass drags the cell to a wall
// without changing the exploitable mass, so every pass rolls back — the
// correct CellsMoved is 0. The seed implementation reports 1 (this test
// fails against it).
func TestCellShiftCellsMovedRollback(t *testing.T) {
	l := openLayout(t, 2, 40, 0)
	nlib := l.Netlist
	in, err := nlib.AddInstance("lone", "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := nlib.AddNet("lone_a")
	pa, _ := nlib.AddPort("lone_pa", netlist.In)
	_ = nlib.ConnectPort(pa, a)
	z, _ := nlib.AddNet("lone_z")
	pz, _ := nlib.AddPort("lone_pz", netlist.Out)
	_ = nlib.ConnectPort(pz, z)
	_ = nlib.Connect(in, "A", a)
	_ = nlib.Connect(in, "ZN", z)
	if err := l.Place(in, 1, 19); err != nil {
		t.Fatal(err)
	}

	// The scenario must actually exercise the bug: the seed reference
	// counts the rolled-back cell as moved.
	if refRes := refCellShiftWithOptions(l.Clone(), 10, false, nil); refRes.CellsMoved != 1 {
		t.Fatalf("scenario lost its teeth: reference CellsMoved = %d, want 1", refRes.CellsMoved)
	}

	res := CellShiftWithOptions(l, 10, false)
	if res.CellsMoved != 0 {
		t.Errorf("CellsMoved = %d, want 0 (all passes rolled back)", res.CellsMoved)
	}
	if res.Shifts != 0 {
		t.Errorf("Shifts = %d, want 0 after rollbacks", res.Shifts)
	}
	// The cell must be back at its original site.
	if p := l.PlacementOf(in); p.Row != 1 || p.Site != 19 {
		t.Errorf("cell not restored: %+v", p)
	}
}
