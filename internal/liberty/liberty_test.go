package liberty

import (
	"strings"
	"testing"

	"gdsiiguard/internal/lef"
	"gdsiiguard/internal/tech"
)

const sampleLib = `
/* OpenCell45 sample */
library (OpenCell45) {
  time_unit : "1ps" ;
  capacitive_load_unit (1,ff) ;
  nom_voltage : 1.1 ;

  cell (NAND2_X1) {
    cell_leakage_power : 12.5 ;
    pin (A1) {
      direction : input ;
      capacitance : 1.6 ;
    }
    pin (A2) {
      direction : input ;
      capacitance : 1.6 ;
    }
    pin (ZN) {
      direction : output ;
      max_capacitance : 60 ;
      timing () {
        related_pin : "A1" ;
        timing_type : combinational ;
        intrinsic_rise : 12 ;
        rise_resistance : 4.2 ;
      }
      timing () {
        related_pin : "A2" ;
        intrinsic_rise : 13 ;
        rise_resistance : 4.2 ;
      }
      internal_power () {
        rise_power : 1.1 ;
      }
    }
  }

  cell (DFF_X1) {
    cell_leakage_power : 45 ;
    ff (IQ,IQN) {
      clocked_on : "CK" ;
      next_state : "D" ;
    }
    pin (D) {
      direction : input ;
      capacitance : 1.8 ;
      timing () {
        related_pin : "CK" ;
        timing_type : setup_rising ;
        intrinsic_rise : 40 ;
        rise_resistance : 0 ;
      }
    }
    pin (CK) {
      direction : input ;
      capacitance : 1.2 ;
      clock : true ;
    }
    pin (Q) {
      direction : output ;
      max_capacitance : 55 ;
      timing () {
        related_pin : "CK" ;
        timing_type : rising_edge ;
        intrinsic_rise : 95 ;
        rise_resistance : 3.5 ;
      }
    }
  }
}
`

const sampleLEF = `
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
SITE core
  SIZE 0.19 BY 1.4 ;
END core
MACRO NAND2_X1
  CLASS CORE ;
  SIZE 0.57 BY 1.4 ;
  PIN A1
    DIRECTION INPUT ;
  END A1
  PIN A2
    DIRECTION INPUT ;
  END A2
  PIN ZN
    DIRECTION OUTPUT ;
  END ZN
END NAND2_X1
MACRO DFF_X1
  CLASS CORE ;
  SIZE 1.71 BY 1.4 ;
  PIN D
    DIRECTION INPUT ;
  END D
  PIN CK
    DIRECTION INPUT ;
  END CK
  PIN Q
    DIRECTION OUTPUT ;
  END Q
END DFF_X1
END LIBRARY
`

func loadSample(t *testing.T) *tech.Library {
	t.Helper()
	lib, err := lef.ParseString(sampleLEF)
	if err != nil {
		t.Fatalf("lef: %v", err)
	}
	if err := MergeString(sampleLib, lib); err != nil {
		t.Fatalf("merge: %v", err)
	}
	return lib
}

func TestMergeBasics(t *testing.T) {
	lib := loadSample(t)
	if lib.Name != "OpenCell45" {
		t.Errorf("Name = %q", lib.Name)
	}
	if lib.Vdd != 1.1 {
		t.Errorf("Vdd = %g", lib.Vdd)
	}
	nand := lib.Cell("NAND2_X1")
	if nand.Leakage != 12.5 {
		t.Errorf("leakage = %g", nand.Leakage)
	}
	if nand.Pin("A1").Cap != 1.6 {
		t.Errorf("A1 cap = %g", nand.Pin("A1").Cap)
	}
	if nand.Pin("ZN").MaxCap != 60 {
		t.Errorf("ZN maxcap = %g", nand.Pin("ZN").MaxCap)
	}
	if nand.InternalEnergy != 1.1 {
		t.Errorf("internal energy = %g", nand.InternalEnergy)
	}
	if len(nand.Arcs) != 2 {
		t.Fatalf("arcs = %d", len(nand.Arcs))
	}
	a := nand.Arc("A2", "ZN")
	if a == nil || a.Intrinsic != 13 || a.DriveRes != 4.2 {
		t.Errorf("arc A2->ZN = %+v", a)
	}
}

func TestMergeSequential(t *testing.T) {
	lib := loadSample(t)
	dff := lib.Cell("DFF_X1")
	if dff.Class != tech.Seq {
		t.Fatalf("class = %v", dff.Class)
	}
	if !dff.Pin("CK").IsClock {
		t.Error("CK not marked clock")
	}
	if dff.ClkToQ != 95 {
		t.Errorf("ClkToQ = %g", dff.ClkToQ)
	}
	if dff.Setup != 40 {
		t.Errorf("Setup = %g", dff.Setup)
	}
	if err := lib.Validate(); err != nil {
		t.Errorf("merged library invalid: %v", err)
	}
}

func TestMergeErrors(t *testing.T) {
	lib, _ := lef.ParseString(sampleLEF)
	if err := MergeString(`library (x) { cell (GHOST) { } }`, lib); err == nil {
		t.Error("unknown cell accepted")
	}
	lib, _ = lef.ParseString(sampleLEF)
	if err := MergeString(`library (x) { cell (NAND2_X1) { pin (NOPE) { direction : input ; } } }`, lib); err == nil {
		t.Error("unknown pin accepted")
	}
	lib, _ = lef.ParseString(sampleLEF)
	if err := MergeString(`cellgroup (x) { }`, lib); err == nil {
		t.Error("non-library top group accepted")
	}
	lib, _ = lef.ParseString(sampleLEF)
	bad := `library (x) { cell (NAND2_X1) { pin (ZN) { direction : output ;
		timing () { related_pin : "A1" ; timing_type : three_phase_commit ; } } } }`
	if err := MergeString(bad, lib); err == nil {
		t.Error("unsupported timing_type accepted")
	}
}

func TestASTShape(t *testing.T) {
	root, err := ParseAST(strings.NewReader(sampleLib))
	if err != nil {
		t.Fatalf("ParseAST: %v", err)
	}
	if root.Name != "library" || len(root.Args) != 1 || root.Args[0] != "OpenCell45" {
		t.Fatalf("root = %s(%v)", root.Name, root.Args)
	}
	cells := root.Sub("cell")
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if v, ok := root.Attr("time_unit"); !ok || v != "1ps" {
		t.Errorf("time_unit = %q, %v", v, ok)
	}
	// complex attribute captured
	if v, ok := root.Attr("capacitive_load_unit"); !ok || v != "1,ff" {
		t.Errorf("capacitive_load_unit = %q, %v", v, ok)
	}
	if _, ok := root.Float("nom_voltage"); !ok {
		t.Error("nom_voltage not parsed as float")
	}
	if _, ok := root.Float("time_unit"); ok {
		t.Error("non-numeric attr parsed as float")
	}
}

func TestASTComments(t *testing.T) {
	src := `
// line comment
library (x) { /* block
comment */ nom_voltage : 1.0 ; }
`
	root, err := ParseAST(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseAST: %v", err)
	}
	if v, _ := root.Float("nom_voltage"); v != 1.0 {
		t.Errorf("nom_voltage = %g", v)
	}
}

func TestASTErrors(t *testing.T) {
	cases := []string{
		"",
		"library (x) {",
		"library (x",
		"library x) { }",
		"library (x) { attr }",
		"library (x) { pin (A) ",
	}
	for _, src := range cases {
		if _, err := ParseAST(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	lib := loadSample(t)
	text := WriteString(lib)

	lib2, err := lef.ParseString(sampleLEF)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeString(text, lib2); err != nil {
		t.Fatalf("merge of written liberty: %v\n%s", err, text)
	}
	for _, c := range lib.Cells() {
		c2 := lib2.Cell(c.Name)
		if c2.Leakage != c.Leakage || c2.InternalEnergy != c.InternalEnergy ||
			c2.ClkToQ != c.ClkToQ || c2.Setup != c.Setup || c2.Class != c.Class {
			t.Errorf("cell %s scalar mismatch: %+v vs %+v", c.Name, c2, c)
		}
		if len(c2.Arcs) != len(c.Arcs) {
			t.Errorf("cell %s arcs = %d vs %d", c.Name, len(c2.Arcs), len(c.Arcs))
			continue
		}
		for i := range c.Arcs {
			if c.Arcs[i] != c2.Arcs[i] {
				t.Errorf("cell %s arc %d: %+v vs %+v", c.Name, i, c2.Arcs[i], c.Arcs[i])
			}
		}
		for i := range c.Pins {
			if c.Pins[i].Cap != c2.Pins[i].Cap || c.Pins[i].MaxCap != c2.Pins[i].MaxCap ||
				c.Pins[i].IsClock != c2.Pins[i].IsClock {
				t.Errorf("cell %s pin %s mismatch", c.Name, c.Pins[i].Name)
			}
		}
	}
}

func TestLineContinuation(t *testing.T) {
	src := "library (x) { \\\n nom_voltage : 2.5 ; }"
	root, err := ParseAST(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseAST: %v", err)
	}
	if v, _ := root.Float("nom_voltage"); v != 2.5 {
		t.Errorf("nom_voltage = %g", v)
	}
}
