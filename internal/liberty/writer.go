package liberty

import (
	"fmt"
	"io"
	"strings"

	"gdsiiguard/internal/tech"
)

// Write emits the timing/power view of the library in the Liberty dialect
// this package parses. Applying Merge of the output onto the same LEF
// geometry reproduces the library exactly.
func Write(w io.Writer, lib *tech.Library) error {
	var b strings.Builder
	fmt.Fprintf(&b, "library (%s) {\n", lib.Name)
	b.WriteString("  time_unit : \"1ps\" ;\n")
	b.WriteString("  capacitive_load_unit (1,ff) ;\n")
	fmt.Fprintf(&b, "  nom_voltage : %g ;\n\n", lib.Vdd)

	for _, c := range lib.Cells() {
		fmt.Fprintf(&b, "  cell (%s) {\n", c.Name)
		fmt.Fprintf(&b, "    cell_leakage_power : %g ;\n", c.Leakage)
		if c.Class == tech.Seq {
			clk := "CK"
			if p := c.ClockPin(); p != nil {
				clk = p.Name
			}
			next := "D"
			for _, in := range c.InputPins() {
				next = in.Name
				break
			}
			fmt.Fprintf(&b, "    ff (IQ,IQN) {\n      clocked_on : \"%s\" ;\n      next_state : \"%s\" ;\n    }\n", clk, next)
		}
		for _, p := range c.Pins {
			fmt.Fprintf(&b, "    pin (%s) {\n", p.Name)
			switch p.Dir {
			case tech.Output:
				b.WriteString("      direction : output ;\n")
			case tech.Inout:
				b.WriteString("      direction : inout ;\n")
			default:
				b.WriteString("      direction : input ;\n")
			}
			if p.Dir != tech.Output {
				fmt.Fprintf(&b, "      capacitance : %g ;\n", p.Cap)
			}
			if p.MaxCap > 0 {
				fmt.Fprintf(&b, "      max_capacitance : %g ;\n", p.MaxCap)
			}
			if p.IsClock {
				b.WriteString("      clock : true ;\n")
			}
			if p.Dir == tech.Output {
				for _, a := range c.Arcs {
					if a.To != p.Name {
						continue
					}
					ttype := "combinational"
					if c.Class == tech.Seq && c.Pin(a.From) != nil && c.Pin(a.From).IsClock {
						ttype = "rising_edge"
					}
					fmt.Fprintf(&b, "      timing () {\n        related_pin : \"%s\" ;\n        timing_type : %s ;\n        intrinsic_rise : %g ;\n        rise_resistance : %g ;\n      }\n",
						a.From, ttype, a.Intrinsic, a.DriveRes)
				}
				if c.InternalEnergy > 0 {
					fmt.Fprintf(&b, "      internal_power () {\n        rise_power : %g ;\n      }\n", c.InternalEnergy)
				}
			}
			if p.Dir == tech.Input && !p.IsClock && c.Class == tech.Seq && c.Setup > 0 {
				clk := "CK"
				if cp := c.ClockPin(); cp != nil {
					clk = cp.Name
				}
				fmt.Fprintf(&b, "      timing () {\n        related_pin : \"%s\" ;\n        timing_type : setup_rising ;\n        intrinsic_rise : %g ;\n        rise_resistance : 0 ;\n      }\n",
					clk, c.Setup)
			}
			b.WriteString("    }\n")
		}
		b.WriteString("  }\n\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString renders the library's Liberty view as a string.
func WriteString(lib *tech.Library) string {
	var b strings.Builder
	_ = Write(&b, lib)
	return b.String()
}
