// Fuzz targets for the Liberty parser and merger. External test package:
// opencell45 (the seed-corpus source) imports liberty.
package liberty_test

import (
	"strings"
	"testing"

	"gdsiiguard/internal/lef"
	"gdsiiguard/internal/liberty"
	"gdsiiguard/internal/opencell45"
)

// FuzzParseAST asserts the Liberty tokenizer/AST builder never panics.
func FuzzParseAST(f *testing.F) {
	f.Add(opencell45.LibertyText())
	f.Add("")
	f.Add("library (open_cell_45) { }")
	f.Add(`library (l) { cell (INV_X1) { area : 1.06; pin (A) { direction : input; } } }`)
	f.Add("library (l) { cell (x) {")           // unbalanced braces
	f.Add("library (l) { a : \"unterminated")   // unterminated string
	f.Add("/* comment */ library(l){k:1e309;}") // overflowing literal
	f.Add("library (l) { \x00\xff : ; }")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := liberty.ParseAST(strings.NewReader(s))
		if err == nil && g == nil {
			t.Error("ParseAST returned nil group and nil error")
		}
	})
}

// FuzzMerge asserts merging arbitrary Liberty text into a real technology
// library never panics. Merge mutates the library, so each iteration gets
// a fresh parse of the embedded OpenCell45 LEF.
func FuzzMerge(f *testing.F) {
	lefText := opencell45.LEFText()
	f.Add(opencell45.LibertyText())
	f.Add("library (l) { cell (INV_X1) { pin (A) { capacitance : -1; } } }")
	f.Add("library (l) { cell (NOSUCH) { } }")
	f.Add("library (l) { cell (INV_X1) { pin (A) { timing () { cell_rise (x) { values (\"\"); } } } } }")
	f.Fuzz(func(t *testing.T, s string) {
		lib, err := lef.ParseString(lefText)
		if err != nil {
			t.Fatalf("embedded LEF no longer parses: %v", err)
		}
		_ = liberty.MergeString(s, lib)
	})
}
