// Package liberty reads and writes the subset of the Liberty (.lib) timing
// library format needed by the flow: cell leakage, pin capacitances, linear
// (generic-CMOS) delay arcs with intrinsic delay and drive resistance,
// flip-flop groups, and per-pin internal energy.
//
// The parser is two-stage: a generic group/attribute parser builds an AST
// (Group), then Merge interprets the AST onto a tech.Library previously
// loaded from LEF, completing the timing and power view of each cell.
package liberty

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gdsiiguard/internal/tech"
)

// Group is one Liberty group: `name (args) { attributes and subgroups }`.
type Group struct {
	Name   string
	Args   []string
	Attrs  []Attr
	Groups []*Group
}

// Attr is a simple attribute `name : value ;`.
type Attr struct {
	Name  string
	Value string
}

// Attr returns the value of the named attribute and whether it exists.
func (g *Group) Attr(name string) (string, bool) {
	for _, a := range g.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Float returns the named attribute as float64 (0, false if absent/bad).
func (g *Group) Float(name string) (float64, bool) {
	s, ok := g.Attr(name)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Sub returns all direct subgroups with the given name.
func (g *Group) Sub(name string) []*Group {
	var out []*Group
	for _, s := range g.Groups {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// ParseAST parses Liberty text into its top-level group (usually `library`).
func ParseAST(r io.Reader) (*Group, error) {
	p := &astParser{sc: newScanner(r)}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("liberty: empty input")
	}
	return g, nil
}

type astParser struct {
	sc *scanner
}

// parseGroup parses `ident (args) { body }`; returns nil at EOF.
func (p *astParser) parseGroup() (*Group, error) {
	name, ok := p.sc.next()
	if !ok {
		return nil, nil
	}
	g := &Group{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		tok, ok := p.sc.next()
		if !ok {
			return nil, p.errf("unterminated argument list of %s", name)
		}
		if tok == ")" {
			break
		}
		if tok != "," {
			g.Args = append(g.Args, tok)
		}
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	if err := p.parseBody(g); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *astParser) parseBody(g *Group) error {
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated group %s", g.Name)
		}
		if tok == "}" {
			return nil
		}
		next, ok := p.sc.peek()
		if !ok {
			return p.errf("dangling token %q in %s", tok, g.Name)
		}
		switch next {
		case ":":
			p.sc.next() // ':'
			val, err := p.attrValue()
			if err != nil {
				return err
			}
			g.Attrs = append(g.Attrs, Attr{Name: tok, Value: val})
		case "(":
			p.sc.next() // '('
			sub := &Group{Name: tok}
			for {
				t, ok := p.sc.next()
				if !ok {
					return p.errf("unterminated args of %s", tok)
				}
				if t == ")" {
					break
				}
				if t != "," {
					sub.Args = append(sub.Args, t)
				}
			}
			after, ok := p.sc.next()
			if !ok {
				return p.errf("unexpected EOF after %s(...)", tok)
			}
			switch after {
			case "{":
				if err := p.parseBody(sub); err != nil {
					return err
				}
				g.Groups = append(g.Groups, sub)
			case ";":
				// complex attribute like capacitive_load_unit (1,ff);
				g.Attrs = append(g.Attrs, Attr{Name: tok, Value: strings.Join(sub.Args, ",")})
			default:
				return p.errf("expected '{' or ';' after %s(...), got %q", tok, after)
			}
		default:
			return p.errf("unexpected token %q after %q", next, tok)
		}
	}
}

// attrValue reads tokens until ';' and joins them (values may contain
// spaces when unquoted in the wild).
func (p *astParser) attrValue() (string, error) {
	var parts []string
	for {
		tok, ok := p.sc.next()
		if !ok {
			return "", p.errf("unterminated attribute value")
		}
		if tok == ";" {
			break
		}
		parts = append(parts, tok)
	}
	return strings.Join(parts, " "), nil
}

func (p *astParser) expect(want string) error {
	tok, ok := p.sc.next()
	if !ok {
		return p.errf("unexpected EOF, wanted %q", want)
	}
	if tok != want {
		return p.errf("expected %q, got %q", want, tok)
	}
	return nil
}

func (p *astParser) errf(format string, args ...any) error {
	return fmt.Errorf("liberty: line %d: %s", p.sc.line, fmt.Sprintf(format, args...))
}

// Merge parses Liberty text and merges timing/power data onto cells already
// present in lib (from LEF). Cells in the Liberty file with no LEF macro are
// reported as an error, as are pins unknown to the macro. The library group
// name and nominal voltage are also applied.
func Merge(r io.Reader, lib *tech.Library) error {
	root, err := ParseAST(r)
	if err != nil {
		return err
	}
	if root.Name != "library" {
		return fmt.Errorf("liberty: top-level group is %q, want library", root.Name)
	}
	if len(root.Args) > 0 && lib.Name == "" {
		lib.Name = root.Args[0]
	}
	if v, ok := root.Float("nom_voltage"); ok {
		lib.Vdd = v
	}
	for _, cg := range root.Sub("cell") {
		if len(cg.Args) != 1 {
			return fmt.Errorf("liberty: cell group with %d args", len(cg.Args))
		}
		name := cg.Args[0]
		cell := lib.Cell(name)
		if cell == nil {
			return fmt.Errorf("liberty: cell %q has no LEF macro", name)
		}
		if err := mergeCell(cg, cell); err != nil {
			return err
		}
	}
	return nil
}

// MergeString is a convenience wrapper over Merge.
func MergeString(s string, lib *tech.Library) error {
	return Merge(strings.NewReader(s), lib)
}

func mergeCell(cg *Group, cell *tech.Cell) error {
	if v, ok := cg.Float("cell_leakage_power"); ok {
		cell.Leakage = v
	}
	// ff group marks the cell sequential and names the clock via clocked_on.
	var clockedOn string
	if ffs := cg.Sub("ff"); len(ffs) > 0 {
		cell.Class = tech.Seq
		if s, ok := ffs[0].Attr("clocked_on"); ok {
			clockedOn = strings.Trim(s, "\" ")
		}
	}
	for _, pg := range cg.Sub("pin") {
		if len(pg.Args) != 1 {
			return fmt.Errorf("liberty: cell %s: pin group with %d args", cell.Name, len(pg.Args))
		}
		pin := cell.Pin(pg.Args[0])
		if pin == nil {
			return fmt.Errorf("liberty: cell %s: pin %q not in LEF macro", cell.Name, pg.Args[0])
		}
		if v, ok := pg.Float("capacitance"); ok {
			pin.Cap = v
		}
		if v, ok := pg.Float("max_capacitance"); ok {
			pin.MaxCap = v
		}
		if s, ok := pg.Attr("clock"); ok && strings.EqualFold(s, "true") {
			pin.IsClock = true
		}
		if pin.Name == clockedOn {
			pin.IsClock = true
		}
		for _, tg := range pg.Sub("timing") {
			if err := mergeTiming(tg, cell, pin); err != nil {
				return err
			}
		}
		for _, ipg := range pg.Sub("internal_power") {
			if v, ok := ipg.Float("rise_power"); ok {
				cell.InternalEnergy = v
			}
		}
	}
	return nil
}

func mergeTiming(tg *Group, cell *tech.Cell, pin *tech.Pin) error {
	related, _ := tg.Attr("related_pin")
	related = strings.Trim(related, "\" ")
	ttype, _ := tg.Attr("timing_type")
	intrinsic, _ := tg.Float("intrinsic_rise")
	res, _ := tg.Float("rise_resistance")
	switch ttype {
	case "", "combinational":
		if related == "" {
			return fmt.Errorf("liberty: cell %s pin %s: timing without related_pin", cell.Name, pin.Name)
		}
		cell.Arcs = append(cell.Arcs, tech.TimingArc{
			From: related, To: pin.Name, Intrinsic: intrinsic, DriveRes: res,
		})
	case "rising_edge", "falling_edge":
		cell.ClkToQ = intrinsic
		cell.Arcs = append(cell.Arcs, tech.TimingArc{
			From: related, To: pin.Name, Intrinsic: intrinsic, DriveRes: res,
		})
	case "setup_rising", "setup_falling":
		cell.Setup = intrinsic
	case "hold_rising", "hold_falling":
		// hold is modeled as zero in this flow; accept and ignore.
	default:
		return fmt.Errorf("liberty: cell %s pin %s: unsupported timing_type %q", cell.Name, pin.Name, ttype)
	}
	return nil
}

// scanner tokenizes Liberty text: identifiers/numbers, punctuation
// ( ) { } : ; , as single-char tokens, quoted strings returned unquoted,
// and /* */ plus // and \ line continuations handled.
type scanner struct {
	br      *bufio.Reader
	line    int
	pending []string
}

func newScanner(r io.Reader) *scanner {
	return &scanner{br: bufio.NewReader(r), line: 1}
}

func (s *scanner) peek() (string, bool) {
	tok, ok := s.next()
	if !ok {
		return "", false
	}
	s.pending = append(s.pending, tok)
	return tok, true
}

func isPunct(c byte) bool {
	switch c {
	case '(', ')', '{', '}', ':', ';', ',':
		return true
	}
	return false
}

func (s *scanner) next() (string, bool) {
	if n := len(s.pending); n > 0 {
		tok := s.pending[n-1]
		s.pending = s.pending[:n-1]
		return tok, true
	}
	var b strings.Builder
	flush := func() (string, bool) {
		if b.Len() > 0 {
			return b.String(), true
		}
		return "", false
	}
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return flush()
		}
		switch {
		case c == '\n':
			s.line++
			if tok, ok := flush(); ok {
				return tok, true
			}
		case c == ' ' || c == '\t' || c == '\r':
			if tok, ok := flush(); ok {
				return tok, true
			}
		case c == '\\':
			// line continuation: swallow through EOL
			for {
				c2, err := s.br.ReadByte()
				if err != nil {
					break
				}
				if c2 == '\n' {
					s.line++
					break
				}
			}
		case c == '/':
			c2, err := s.br.ReadByte()
			if err != nil {
				b.WriteByte(c)
				return flush()
			}
			switch c2 {
			case '/':
				for {
					c3, err := s.br.ReadByte()
					if err != nil {
						break
					}
					if c3 == '\n' {
						s.line++
						break
					}
				}
				if tok, ok := flush(); ok {
					return tok, true
				}
			case '*':
				var prev byte
				for {
					c3, err := s.br.ReadByte()
					if err != nil {
						break
					}
					if c3 == '\n' {
						s.line++
					}
					if prev == '*' && c3 == '/' {
						break
					}
					prev = c3
				}
				if tok, ok := flush(); ok {
					return tok, true
				}
			default:
				b.WriteByte(c)
				b.WriteByte(c2)
			}
		case c == '"':
			for {
				c2, err := s.br.ReadByte()
				if err != nil || c2 == '"' {
					break
				}
				if c2 == '\n' {
					s.line++
				}
				b.WriteByte(c2)
			}
			return b.String(), true
		case isPunct(c):
			if b.Len() > 0 {
				s.pending = append(s.pending, string(c))
				return b.String(), true
			}
			return string(c), true
		default:
			b.WriteByte(c)
		}
	}
}
