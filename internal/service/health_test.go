package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHealthAndReadiness checks the probe pair: liveness stays 200 for the
// process's whole life, readiness flips to 503 (with Retry-After) the
// moment a drain begins.
func TestHealthAndReadiness(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get("/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	if resp := get("/v1/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d before shutdown, want 200", resp.StatusCode)
	}
	if !m.Ready() {
		t.Error("Ready() = false before shutdown")
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	if resp := get("/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d while draining, want 200 (liveness is not readiness)", resp.StatusCode)
	}
	resp := get("/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d after shutdown, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz without Retry-After")
	}
	if m.Ready() {
		t.Error("Ready() = true after shutdown")
	}
}
