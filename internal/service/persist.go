package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"gdsiiguard/internal/durable"
	"gdsiiguard/internal/obs"
)

// WAL record types. A job's log is an ordered stream of these; replay folds
// them in order, so the newest record of each kind wins.
const (
	// recSpec is the job's submission: the full Spec plus submit time.
	// Always the first record of a fresh log.
	recSpec = "spec"
	// recState is one lifecycle transition (per attempt for running).
	recState = "state"
	// recCheckpoint is the latest exploration checkpoint blob (local
	// optimizer or cluster epoch scope).
	recCheckpoint = "checkpoint"
	// recResult is a finished job's payload, appended before the terminal
	// snapshot compacts the log (so a crash between the two still recovers
	// the result).
	recResult = "result"
	// recJob is the snapshot type: one self-contained jobSnapshot replacing
	// everything before it.
	recJob = "job"
)

// stateInterrupted is a persisted-only pseudo-state: the job was neither
// finished nor cancelled by a user, the process stopped (drain past its
// budget, crash). It is non-terminal on purpose — replay re-queues the job.
const stateInterrupted State = "interrupted"

// Checkpoint scopes: which engine produced (and can resume) the blob.
const (
	scopeLocal   = "local"   // nsga2.Checkpoint via gdsiiguard.ExploreOptions
	scopeCluster = "cluster" // cluster.EpochCheckpoint
)

type specRecord struct {
	Spec      Spec      `json:"spec"`
	Submitted time.Time `json:"submitted"`
}

type stateRecord struct {
	State   State     `json:"state"`
	Attempt int       `json:"attempt,omitempty"`
	Time    time.Time `json:"time"`
	Error   string    `json:"error,omitempty"`
}

type checkpointRecord struct {
	Scope string          `json:"scope"`
	Data  json.RawMessage `json:"data"`
}

type resultRecord struct {
	Result *Result `json:"result"`
}

// jobSnapshot is the compacted form of a whole log: everything replay needs
// in one record. Mid-run snapshots carry the latest checkpoint; terminal
// snapshots carry the result. The hardened layout artifact is deliberately
// absent — layouts are re-derivable by re-running the job and would bloat
// the store by orders of magnitude.
type jobSnapshot struct {
	Spec       Spec              `json:"spec"`
	Submitted  time.Time         `json:"submitted"`
	Started    time.Time         `json:"started,omitempty"`
	Finished   time.Time         `json:"finished,omitempty"`
	State      State             `json:"state"`
	Attempts   int               `json:"attempts,omitempty"`
	Error      string            `json:"error,omitempty"`
	Result     *Result           `json:"result,omitempty"`
	Checkpoint *checkpointRecord `json:"checkpoint,omitempty"`
}

// persistSubmit opens the job's log and writes the spec record. Called
// under m.mu before the job is enqueued; an error fails the submission —
// a durable manager must not accept work it cannot recover.
func (m *Manager) persistSubmit(job *Job) error {
	l, err := m.store.Log(job.ID)
	if err != nil {
		return fmt.Errorf("service: open job log: %w", err)
	}
	if err := l.Append(recSpec, specRecord{Spec: job.Spec, Submitted: job.submitted}); err != nil {
		return fmt.Errorf("service: persist job spec: %w", err)
	}
	job.wal = l
	return nil
}

// persistState appends one lifecycle transition, best-effort: losing a
// state record degrades recovery fidelity (the job replays as queued and
// re-runs), never correctness.
func (m *Manager) persistState(job *Job, state State, attempt int, errText string) {
	if job.wal == nil {
		return
	}
	rec := stateRecord{State: state, Attempt: attempt, Time: time.Now(), Error: errText}
	if err := job.wal.Append(recState, rec); err != nil {
		obs.Logger().Warn("service: persist state transition failed",
			"job", job.ID, "state", state, "error", err)
	}
}

// persistCheckpoint records the latest exploration checkpoint: always
// in-memory on the job (so a same-process retry resumes from it), and in
// the WAL when the manager is durable. Every SnapshotEvery-th checkpoint
// the log is compacted into a mid-run snapshot instead of growing
// unboundedly. The returned error aborts the exploration — a checkpoint
// the store cannot hold must not be silently skipped, or a crash would
// replay from a state older than the caller believes.
func (m *Manager) persistCheckpoint(job *Job, scope string, blob []byte) error {
	job.setCheckpoint(scope, blob)
	if job.wal == nil {
		return nil
	}
	if n := job.bumpCheckpointCount(); n%m.cfg.SnapshotEvery == 0 {
		return job.wal.Snapshot(recJob, m.snapshotOf(job, scope, blob))
	}
	return job.wal.Append(recCheckpoint, checkpointRecord{Scope: scope, Data: blob})
}

// snapshotOf captures the job's current durable state (mid-run form when a
// checkpoint is supplied, terminal form otherwise).
func (m *Manager) snapshotOf(job *Job, scope string, blob []byte) jobSnapshot {
	s := job.Snapshot()
	out := jobSnapshot{
		Spec:      job.Spec,
		Submitted: s.Submitted,
		Started:   s.Started,
		Finished:  s.Finished,
		State:     s.State,
		Attempts:  s.Attempts,
		Error:     s.Error,
		Result:    s.Result,
	}
	if blob != nil {
		out.Checkpoint = &checkpointRecord{Scope: scope, Data: blob}
	}
	return out
}

// persistRetire records a job's final outcome as it leaves the pipeline.
// Drain interruptions (cancelled by shutdown, not by a user) persist the
// non-terminal interrupted pseudo-state so a restart re-queues the job;
// everything else persists terminally and compacts the log down to one
// snapshot record.
func (m *Manager) persistRetire(job *Job) {
	if job.wal == nil {
		return
	}
	state := job.State()
	logger := obs.Logger()
	if state == StateCancelled && !job.wasUserCancelled() && m.baseCtx.Err() != nil {
		m.persistState(job, stateInterrupted, job.Attempts(), "")
		return
	}
	errText := ""
	if err := job.Err(); err != nil {
		errText = err.Error()
	}
	m.persistState(job, state, job.Attempts(), errText)
	if res := job.Result(); res != nil {
		if err := job.wal.Append(recResult, resultRecord{Result: res}); err != nil {
			logger.Warn("service: persist result failed", "job", job.ID, "error", err)
		}
	}
	if err := job.wal.Snapshot(recJob, m.snapshotOf(job, "", nil)); err != nil {
		logger.Warn("service: compact finished job log failed", "job", job.ID, "error", err)
	}
}

// recoveredJob is the fold of one job log's records.
type recoveredJob struct {
	hasSpec   bool
	spec      Spec
	submitted time.Time
	started   time.Time
	finished  time.Time
	state     State
	attempts  int
	errText   string
	result    *Result
	cp        *checkpointRecord
	seq       uint64
}

func foldRecovered(snap *durable.Record, tail []durable.Record) (*recoveredJob, error) {
	r := &recoveredJob{state: StateQueued}
	apply := func(rec durable.Record) error {
		switch rec.Type {
		case recJob:
			var s jobSnapshot
			if err := json.Unmarshal(rec.Data, &s); err != nil {
				return err
			}
			r.hasSpec = true
			r.spec = s.Spec
			r.submitted = s.Submitted
			r.started = s.Started
			r.finished = s.Finished
			r.state = s.State
			r.attempts = s.Attempts
			r.errText = s.Error
			r.result = s.Result
			r.cp = s.Checkpoint
		case recSpec:
			var s specRecord
			if err := json.Unmarshal(rec.Data, &s); err != nil {
				return err
			}
			r.hasSpec = true
			r.spec = s.Spec
			r.submitted = s.Submitted
		case recState:
			var s stateRecord
			if err := json.Unmarshal(rec.Data, &s); err != nil {
				return err
			}
			r.state = s.State
			if s.Attempt > r.attempts {
				r.attempts = s.Attempt
			}
			if s.Error != "" {
				r.errText = s.Error
			}
			switch s.State {
			case StateRunning:
				r.started = s.Time
			case StateDone, StateFailed, StateCancelled:
				r.finished = s.Time
			}
		case recCheckpoint:
			var c checkpointRecord
			if err := json.Unmarshal(rec.Data, &c); err != nil {
				return err
			}
			r.cp = &c
		case recResult:
			var res resultRecord
			if err := json.Unmarshal(rec.Data, &res); err != nil {
				return err
			}
			r.result = res.Result
		default:
			return fmt.Errorf("unknown record type %q", rec.Type)
		}
		return nil
	}
	if snap != nil {
		if err := apply(*snap); err != nil {
			return nil, err
		}
	}
	for _, rec := range tail {
		if err := apply(rec); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// jobSeq parses the numeric suffix of a manager-assigned job ID
// ("job-17" → 17, true).
func jobSeq(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// recover replays the durable store at startup: terminal jobs are restored
// into the result store (respecting retention), interrupted and never-run
// jobs are re-queued — with their latest checkpoint, so explorations
// continue where the dead process stopped — and undecodable logs are
// quarantined aside rather than failing startup. Runs from New before the
// worker pool starts, so no job executes against half-recovered state.
func (m *Manager) recover() {
	logger := obs.Logger()
	ids, err := m.store.List()
	if err != nil {
		logger.Warn("service: durable store unreadable; starting empty", "error", err)
		return
	}
	var terminal []*recoveredJob
	terminalJob := map[*recoveredJob]*Job{}
	var requeue []*Job

	for _, id := range ids {
		if seq, ok := jobSeq(id); ok && seq > m.seq {
			m.seq = seq
		}
		l, err := m.store.Log(id)
		if err != nil {
			logger.Warn("service: skipping undecodable job id", "job", id, "error", err)
			continue
		}
		snap, tail, err := l.Replay()
		if err == nil && snap == nil && len(tail) == 0 {
			// Crash before (or during) the spec append: nothing to recover.
			_ = m.store.Remove(id)
			continue
		}
		var rec *recoveredJob
		if err == nil {
			rec, err = foldRecovered(snap, tail)
		}
		if err == nil && rec.hasSpec {
			err = rec.spec.Validate()
		}
		if err != nil || !rec.hasSpec {
			if err == nil {
				err = fmt.Errorf("log has records but no spec")
			}
			logger.Warn("service: quarantining corrupt job log", "job", id, "error", err)
			if qerr := m.store.Quarantine(id); qerr != nil {
				logger.Warn("service: quarantine failed", "job", id, "error", qerr)
			}
			continue
		}

		job := newJob(id, rec.spec, rec.submitted)
		job.started = rec.started
		if rec.state.Terminal() {
			job.state = rec.state
			job.attempts = rec.attempts
			job.finished = rec.finished
			job.result = rec.result
			if rec.errText != "" {
				job.err = fmt.Errorf("%s", rec.errText)
			}
			close(job.done)
			rec.seq, _ = jobSeq(id)
			terminal = append(terminal, rec)
			terminalJob[rec] = job
			continue
		}
		// Queued, running or interrupted: run it (again). The attempt budget
		// resets — a crash is a new process incarnation, not a retry of the
		// old one — but the checkpoint carries the exploration forward.
		job.wal = l
		if rec.cp != nil {
			job.setCheckpoint(rec.cp.Scope, rec.cp.Data)
		}
		requeue = append(requeue, job)
	}

	// Terminal jobs re-enter the result store in retirement order (finish
	// time, then sequence) so retention evicts the same jobs it would have
	// without the restart.
	sort.Slice(terminal, func(i, j int) bool {
		if !terminal[i].finished.Equal(terminal[j].finished) {
			return terminal[i].finished.Before(terminal[j].finished)
		}
		return terminal[i].seq < terminal[j].seq
	})
	for _, rec := range terminal {
		job := terminalJob[rec]
		m.jobs[job.ID] = job
		m.finished = append(m.finished, job.ID)
	}
	for len(m.finished) > m.cfg.Retention {
		m.evictFinishedLocked()
	}

	// Interrupted work re-queues in submission order.
	sort.Slice(requeue, func(i, j int) bool {
		si, _ := jobSeq(requeue[i].ID)
		sj, _ := jobSeq(requeue[j].ID)
		return si < sj
	})
	for _, job := range requeue {
		select {
		case m.queue <- job:
			m.jobs[job.ID] = job
			m.persistState(job, StateQueued, 0, "")
			scope, blob := job.resumeState()
			logger.Info("service: re-queued interrupted job",
				"job", job.ID, "kind", job.Spec.Kind,
				"checkpoint", scope, "checkpoint_bytes", len(blob))
		default:
			// More interrupted jobs than queue capacity: fail the overflow
			// durably instead of blocking startup forever.
			job.finish(StateFailed, nil, nil,
				fmt.Errorf("service: recovered job exceeds queue capacity %d", m.cfg.QueueDepth),
				time.Now())
			m.jobs[job.ID] = job
			m.finished = append(m.finished, job.ID)
			job.wal = nil // avoid persisting through a log we will not reuse
			logger.Warn("service: recovered job dropped, queue full", "job", job.ID)
		}
	}
	if len(terminal)+len(requeue) > 0 {
		logger.Info("service: recovered durable state",
			"terminal", len(terminal), "requeued", len(requeue), "next_seq", m.seq+1)
	}
}

// evictFinishedLocked drops the oldest finished job from the result store
// and its durable log. Caller holds m.mu (or is inside single-threaded
// recovery).
func (m *Manager) evictFinishedLocked() {
	id := m.finished[0]
	delete(m.jobs, id)
	m.finished = m.finished[1:]
	if m.store != nil {
		if err := m.store.Remove(id); err != nil {
			obs.Logger().Warn("service: evict job log failed", "job", id, "error", err)
		}
	}
}
