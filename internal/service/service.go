// Package service turns the one-shot GDSII-Guard library flows into a
// long-running hardening service: a job manager with a bounded FIFO queue
// and a fixed worker pool executes harden, explore and attack jobs
// against cached designs, with per-job context cancellation, timeouts,
// and an in-memory result store with retention limits. The HTTP front-end
// (Handler, served by cmd/guardd) exposes the manager as a JSON API.
//
// Security-closure flows run for minutes per design on realistic inputs,
// so the service treats every flow invocation as an asynchronous job:
// submission is cheap and bounded, execution is concurrent up to the
// worker-pool size, and clients poll (or cancel) by job ID.
package service

import (
	"fmt"
	"sync"
	"time"

	"gdsiiguard"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/durable"
)

// Kind selects what a job runs.
type Kind string

// The three job kinds map onto the public library operations.
const (
	// KindHarden applies one flow configuration (Design.HardenCtx).
	KindHarden Kind = "harden"
	// KindExplore runs the NSGA-II exploration (Design.ExploreCtx).
	KindExplore Kind = "explore"
	// KindAttack simulates a Trojan insertion on the unhardened baseline.
	KindAttack Kind = "attack"
)

// State is a job's lifecycle state. Transitions are
// queued → running → done | failed | cancelled, plus queued → cancelled
// for jobs cancelled before a worker picks them up.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec describes one job submission. Exactly one of Benchmark or DEF
// selects the design.
type Spec struct {
	Kind Kind
	// Benchmark names a built-in benchmark design.
	Benchmark string
	// DEF is an uploaded placed DEF layout (alternative to Benchmark);
	// ClockPS and Assets configure its constraints and critical instances.
	DEF     []byte
	ClockPS float64
	Assets  []string
	// Params configures a harden job (nil: default flow).
	Params *gdsiiguard.FlowParams
	// Explore configures an explore job.
	Explore gdsiiguard.ExploreOptions
	// Timeout overrides the manager's default per-job timeout (0: default).
	Timeout time.Duration
}

// Validate checks the spec before it is queued.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindHarden, KindExplore, KindAttack:
	default:
		return fmt.Errorf("service: unknown job kind %q (want %q, %q or %q)",
			s.Kind, KindHarden, KindExplore, KindAttack)
	}
	if (s.Benchmark == "") == (len(s.DEF) == 0) {
		return fmt.Errorf("service: exactly one of Benchmark or DEF must be set")
	}
	if len(s.DEF) > 0 && s.ClockPS <= 0 {
		return fmt.Errorf("service: DEF jobs need a positive ClockPS")
	}
	if s.Timeout < 0 {
		return fmt.Errorf("service: negative timeout")
	}
	return nil
}

// Result is the payload of a finished job. Fields are set according to the
// job kind.
type Result struct {
	// Baseline is the design's unhardened metrics (all kinds).
	Baseline gdsiiguard.Metrics
	// Hardened is the hardened layout's metrics (harden jobs).
	Hardened *gdsiiguard.Metrics
	// Exploration is the explored Pareto front (explore jobs).
	Exploration *gdsiiguard.Exploration
	// Attack is the simulated insertion outcome (attack jobs).
	Attack *gdsiiguard.AttackResult
	// CacheHit reports whether the design came from the design cache.
	CacheHit bool
}

// Job is one queued or executed unit of work. All accessors are safe for
// concurrent use.
type Job struct {
	ID   string
	Spec Spec

	// wal is the job's durable log (nil when the manager has no store).
	wal *durable.Log

	mu        sync.Mutex
	state     State
	err       error
	result    *Result
	hardened  *gdsiiguard.Hardened
	cancel    func()
	attempts  int
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
	// resumeScope/resume hold the latest exploration checkpoint (from a
	// recovered log or emitted live), so retries and restarts continue the
	// run instead of starting over. ckpts counts checkpoints since the last
	// log compaction; userCancelled distinguishes a user's cancel from a
	// shutdown drain when the terminal state is persisted.
	resumeScope   string
	resume        []byte
	ckpts         int
	userCancelled bool
}

func newJob(id string, spec Spec, now time.Time) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		state:     StateQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause for failed jobs (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Attempts returns how many execution attempts the job has consumed
// (0 while queued; >1 after transient-failure retries).
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// noteAttempt records the start of one execution attempt.
func (j *Job) noteAttempt() {
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
	jobAttempts.Inc()
}

// Result returns the finished job's payload (nil until done).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Hardened returns the hardened layout of a finished harden job (nil
// otherwise), for DEF/GDSII export.
func (j *Job) Hardened() *gdsiiguard.Hardened {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hardened
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state and returns it.
func (j *Job) Wait() State {
	<-j.done
	return j.State()
}

// Snapshot is a consistent copy of the job's observable state, used by the
// HTTP layer.
type Snapshot struct {
	ID    string
	Kind  Kind
	State State
	Error string
	// ErrorClass is the core error taxonomy class of a failed job
	// ("transient", "permanent" or "panic"; empty otherwise).
	ErrorClass string
	// Attempts counts execution attempts, including transient retries.
	Attempts  int
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Result    *Result
}

// Snapshot returns a consistent copy of the job's observable state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Attempts:  j.attempts,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Result:    j.result,
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.ErrorClass = string(core.Classify(j.err))
	}
	return s
}

// start moves a queued job to running; it reports false if the job was
// cancelled while queued (the worker then skips it).
func (j *Job) start(cancel func(), now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	return true
}

// finish records the terminal state exactly once.
func (j *Job) finish(state State, res *Result, h *gdsiiguard.Hardened, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.hardened = h
	j.err = err
	j.finished = now
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	close(j.done)
}

// setCheckpoint records the latest exploration checkpoint blob.
func (j *Job) setCheckpoint(scope string, blob []byte) {
	j.mu.Lock()
	j.resumeScope, j.resume = scope, blob
	j.mu.Unlock()
}

// resumeState returns the latest checkpoint's scope and blob (empty when
// the job has never checkpointed).
func (j *Job) resumeState() (string, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumeScope, j.resume
}

// bumpCheckpointCount increments and returns the persisted-checkpoint
// counter driving periodic log compaction.
func (j *Job) bumpCheckpointCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ckpts++
	return j.ckpts
}

// wasUserCancelled reports whether a client (not a shutdown drain)
// requested the job's cancellation.
func (j *Job) wasUserCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancelled
}

// requestCancel cancels a queued job immediately or signals a running
// job's context; it is a no-op on terminal jobs.
func (j *Job) requestCancel(now time.Time) {
	j.mu.Lock()
	j.userCancelled = true
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = now
		close(j.done)
		j.mu.Unlock()
		return
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
