package service

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"gdsiiguard/internal/fault"
)

func armFaults(t *testing.T, rules map[fault.Point]fault.Rule) {
	t.Helper()
	fault.Arm(rules)
	t.Cleanup(fault.Disarm)
}

// prewarm loads testBench into the manager's design cache (including its
// baseline evaluation) so that faults armed afterwards hit only the job
// under test, not the shared cache fill.
func prewarm(t *testing.T, m *Manager) {
	t.Helper()
	job, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("prewarm job = %s (err %v)", got, job.Err())
	}
}

func TestTransientFailureIsRetried(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, RetryBackoff: 5 * time.Millisecond})
	prewarm(t, m)
	armFaults(t, map[fault.Point]fault.Rule{
		fault.Route: {Every: 1, Limit: 1, Transient: true, Msg: "router hiccup"},
	})

	job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("job = %s (err %v), want %s after one retry", got, job.Err(), StateDone)
	}
	if job.Attempts() != 2 {
		t.Errorf("Attempts = %d, want 2 (one transient failure, one retry)", job.Attempts())
	}
	if got := m.Stats().Retries; got < 1 {
		t.Errorf("Stats().Retries = %d, want ≥ 1", got)
	}
	if fault.Fired(fault.Route) != 1 {
		t.Errorf("fault fired %d times, want 1", fault.Fired(fault.Route))
	}
}

func TestPermanentFailureIsNotRetried(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxAttempts: 3, RetryBackoff: 5 * time.Millisecond})
	prewarm(t, m)
	armFaults(t, map[fault.Point]fault.Rule{
		fault.Route: {Every: 1, Msg: "congestion unroutable"},
	})

	job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateFailed {
		t.Fatalf("job = %s, want %s", got, StateFailed)
	}
	if job.Attempts() != 1 {
		t.Errorf("Attempts = %d, want 1 (permanent failures must not retry)", job.Attempts())
	}
	if snap := job.Snapshot(); snap.ErrorClass != "permanent" {
		t.Errorf("ErrorClass = %q, want %q", snap.ErrorClass, "permanent")
	}
}

// TestPanicFailsJobNotService is the robustness acceptance scenario: a
// panic injected into a flow stage marks that job failed with error class
// "panic" while guardd keeps serving subsequent jobs, end to end through
// the HTTP API.
func TestPanicFailsJobNotService(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, RetryBackoff: 5 * time.Millisecond})
	prewarm(t, m)
	armFaults(t, map[fault.Point]fault.Rule{
		fault.STA: {Every: 1, Limit: 1, Panic: true, Msg: "sta engine blew up"},
	})

	sub := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench,
	}, http.StatusAccepted)
	id := sub["id"].(string)

	var got map[string]any
	deadline := time.Now().Add(2 * time.Minute)
	for {
		got = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs/"+id, nil, http.StatusOK)
		if State(got["state"].(string)).Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal in time: %v", id, got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got["state"] != string(StateFailed) {
		t.Fatalf("job state = %v, want %s", got["state"], StateFailed)
	}
	if got["error_class"] != "panic" {
		t.Errorf("error_class = %v, want %q (body: %v)", got["error_class"], "panic", got)
	}
	if msg, _ := got["error"].(string); !strings.Contains(msg, "panic") {
		t.Errorf("error message %q does not mention the panic", msg)
	}

	// The worker survived: the next job on the same manager completes.
	fault.Disarm()
	sub2 := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench,
	}, http.StatusAccepted)
	pollJobDone(t, srv.URL, sub2["id"].(string), 2*time.Minute)
}

func TestWorkerPanicIsCountedInStats(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, RetryBackoff: 5 * time.Millisecond})
	armFaults(t, map[fault.Point]fault.Rule{
		fault.Service: {Every: 1, Limit: 1, Panic: true},
	})

	job, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, time.Minute); got != StateFailed {
		t.Fatalf("job = %s, want %s", got, StateFailed)
	}
	if snap := job.Snapshot(); snap.ErrorClass != "panic" {
		t.Errorf("ErrorClass = %q, want %q", snap.ErrorClass, "panic")
	}
	if got := m.Stats().PanicsRecovered; got != 1 {
		t.Errorf("Stats().PanicsRecovered = %d, want 1", got)
	}
}

func TestRetryBackoffHonorsCancellation(t *testing.T) {
	// An always-transient fault with a long backoff: without cancellation
	// the job would sit in backoff for 30s+. Cancel must cut that short.
	m := newTestManager(t, Config{Workers: 1, MaxAttempts: 5, RetryBackoff: 30 * time.Second})
	armFaults(t, map[fault.Point]fault.Rule{
		fault.Service: {Every: 1, Transient: true},
	})

	job, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first failed attempt so the worker is inside backoff.
	deadline := time.Now().Add(5 * time.Second)
	for job.Attempts() < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if job.Attempts() < 1 {
		t.Fatal("job never started its first attempt")
	}
	start := time.Now()
	if _, err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 5*time.Second); got != StateCancelled {
		t.Fatalf("job = %s, want %s", got, StateCancelled)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want well under the 30s backoff", elapsed)
	}
}

func TestHTTPBodyLimits(t *testing.T) {
	old := maxRequestBody
	maxRequestBody = 256
	t.Cleanup(func() { maxRequestBody = old })
	srv, _ := newTestServer(t, Config{Workers: 1})

	// Oversized body: clear 400, not a hung or reset connection.
	big := `{"kind":"harden","benchmark":"` + strings.Repeat("X", 512) + `"}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want %d (body: %s)", resp.StatusCode, http.StatusBadRequest, body)
	}
	if !strings.Contains(body.String(), "exceeds") {
		t.Errorf("oversized-body error %q does not name the limit", body)
	}

	// Malformed JSON under the limit: also a clear 400.
	resp2, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"kind": `))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want %d", resp2.StatusCode, http.StatusBadRequest)
	}
}

func TestHTTPRetryAfterOnOverload(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"attack","benchmark":"`+testBench+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post after shutdown = %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("Retry-After = %q, want %q", got, retryAfterSeconds)
	}
}
