package service

import "gdsiiguard/internal/obs"

// Job-lifecycle and cache telemetry (exposed by cmd/guardd at /metrics).
var (
	jobsSubmitted = obs.Default().Counter(
		"gdsiiguard_jobs_submitted_total",
		"Jobs accepted into the queue by kind.", "kind")
	jobsFinished = obs.Default().Counter(
		"gdsiiguard_jobs_finished_total",
		"Jobs reaching a terminal state by kind and state (done, failed, cancelled).",
		"kind", "state")
	jobAttempts = obs.Default().Counter(
		"gdsiiguard_job_attempts_total",
		"Job execution attempts, including transient-failure retries.").With()
	queueWaitSeconds = obs.Default().Histogram(
		"gdsiiguard_job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", nil).With()
	execSeconds = obs.Default().Histogram(
		"gdsiiguard_job_exec_seconds",
		"Job execution wall time (all attempts) by kind.", nil, "kind")
	workersBusy = obs.Default().Gauge(
		"gdsiiguard_service_workers_busy",
		"Workers currently executing a job.").With()
	workersBusyPeak = obs.Default().Gauge(
		"gdsiiguard_service_workers_busy_peak",
		"High watermark of concurrently busy workers.").With()
	cacheLookups = obs.Default().Counter(
		"gdsiiguard_design_cache_lookups_total",
		"Design-cache lookups by result (hit, miss).", "result")
)
