package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdsiiguard"
)

func TestDesignCacheLRUAndCounters(t *testing.T) {
	c := NewDesignCache(2)
	loads := map[string]int{}
	get := func(key string) {
		t.Helper()
		_, _, err := c.Get(key, func() (*gdsiiguard.Design, error) {
			loads[key]++
			return nil, nil
		})
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
	}
	get("a")
	get("b")
	get("a") // hit, refreshes a
	get("c") // evicts b (LRU)
	get("b") // reload
	if loads["a"] != 1 || loads["b"] != 2 || loads["c"] != 1 {
		t.Errorf("loads = %v, want a:1 b:2 c:1", loads)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 4 {
		t.Errorf("stats = %+v, want 1 hit / 4 misses", s)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
	if got := s.HitRate(); got != 0.2 {
		t.Errorf("hit rate = %g, want 0.2", got)
	}
}

func TestDesignCacheSingleflight(t *testing.T) {
	c := NewDesignCache(4)
	var calls atomic.Int32
	load := func() (*gdsiiguard.Design, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond)
		return nil, nil
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Get("shared", load); err != nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("loader ran %d times, want 1 (singleflight)", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != n-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", s, n-1)
	}
}

func TestDesignCacheFailedLoadNotCached(t *testing.T) {
	c := NewDesignCache(2)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, cached, err := c.Get("bad", func() (*gdsiiguard.Design, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("Get err = %v, want boom", err)
		}
		if cached {
			t.Error("failed load reported as cache hit")
		}
	}
	if calls != 2 {
		t.Errorf("loader ran %d times, want 2 (errors are not cached)", calls)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("entries = %d after failed loads, want 0", s.Entries)
	}
}

func TestDEFKeyDistinguishesInputs(t *testing.T) {
	base := DEFKey([]byte("DESIGN X ;"), 2000, []string{"k0"})
	same := DEFKey([]byte("DESIGN X ;"), 2000, []string{"k0"})
	if base != same {
		t.Error("identical inputs produced different keys")
	}
	for name, other := range map[string]string{
		"content": DEFKey([]byte("DESIGN Y ;"), 2000, []string{"k0"}),
		"clock":   DEFKey([]byte("DESIGN X ;"), 2500, []string{"k0"}),
		"assets":  DEFKey([]byte("DESIGN X ;"), 2000, []string{"k1"}),
	} {
		if other == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if bk := BenchmarkKey("AES_1"); bk == base || bk != "bench:AES_1" {
		t.Errorf("BenchmarkKey = %q", bk)
	}
}
