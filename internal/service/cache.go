package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"gdsiiguard"
)

// DesignCache is an LRU cache of loaded, baseline-evaluated designs.
// LoadBenchmark/EvalBaseline dominate short-job latency, and a *Design is
// immutable under Harden/Explore (the flow clones the baseline layout), so
// one cached instance safely serves any number of concurrent jobs.
//
// Concurrent loads of the same key are collapsed into a single load
// (singleflight): latecomers wait for the first loader and count as hits.
type DesignCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → *cacheEntry element
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key    string
	design *gdsiiguard.Design
	err    error
	ready  chan struct{} // closed when design/err are set
}

// NewDesignCache creates a cache holding at most capacity designs
// (minimum 1).
func NewDesignCache(capacity int) *DesignCache {
	if capacity < 1 {
		capacity = 1
	}
	return &DesignCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// BenchmarkKey is the cache key for a built-in benchmark design.
func BenchmarkKey(name string) string { return "bench:" + name }

// DEFKey is the cache key for an uploaded DEF layout: a content hash of
// the DEF bytes plus the evaluation parameters, so identical uploads hit
// and any change to the layout or its constraints misses.
func DEFKey(def []byte, clockPS float64, assets []string) string {
	h := sha256.New()
	h.Write(def)
	fmt.Fprintf(h, "|clock=%g", clockPS)
	for _, a := range assets {
		fmt.Fprintf(h, "|asset=%s", a)
	}
	return "def:" + hex.EncodeToString(h.Sum(nil)[:16])
}

// Get returns the design for key, loading it with load on a miss. The
// second return reports whether the call was served from cache (including
// waiting on a concurrent loader). Failed loads are not cached.
func (c *DesignCache) Get(key string, load func() (*gdsiiguard.Design, error)) (*gdsiiguard.Design, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		cacheLookups.With("hit").Inc()
		ent := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-ent.ready
		return ent.design, true, ent.err
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.order.PushFront(ent)
	c.entries[key] = el
	c.misses++
	cacheLookups.With("miss").Inc()
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		if oldest == el {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	ent.design, ent.err = load()
	close(ent.ready)
	if ent.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return ent.design, false, ent.err
}

// Load resolves a job spec's design through the cache.
func (c *DesignCache) Load(spec Spec) (*gdsiiguard.Design, bool, error) {
	if spec.Benchmark != "" {
		return c.Get(BenchmarkKey(spec.Benchmark), func() (*gdsiiguard.Design, error) {
			return gdsiiguard.LoadBenchmark(spec.Benchmark)
		})
	}
	return c.Get(DEFKey(spec.DEF, spec.ClockPS, spec.Assets), func() (*gdsiiguard.Design, error) {
		return gdsiiguard.LoadDEF(bytes.NewReader(spec.DEF), spec.ClockPS, spec.Assets)
	})
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// HitRate is hits / (hits + misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's counters.
func (c *DesignCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.order.Len(), Hits: c.hits, Misses: c.misses}
}
