package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gdsiiguard"
	"gdsiiguard/internal/durable"
)

// openStore opens a durable store rooted at dir, failing the test on error.
func openStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// waitCheckpoint polls until the job has recorded at least one exploration
// checkpoint.
func waitCheckpoint(t *testing.T, job *Job, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, blob := job.resumeState(); len(blob) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s produced no checkpoint within %v", job.ID, timeout)
}

// testExploreSpec is the exploration used by the durability tests: long
// enough to checkpoint mid-run, deterministic under a fixed seed.
func testExploreSpec() Spec {
	return Spec{
		Kind:      KindExplore,
		Benchmark: testBench,
		Explore: gdsiiguard.ExploreOptions{
			PopSize:     6,
			Generations: 8,
			Parallelism: 1,
			Seed:        42,
		},
	}
}

// interruptExplore submits testExploreSpec against a durable manager, waits
// for a mid-run checkpoint, then drains the manager with an expired context
// (the shutdown path, not a user cancel) and closes the store — leaving dir
// holding an interrupted job with a resumable checkpoint. Returns the job ID.
func interruptExplore(t *testing.T, dir string) string {
	t.Helper()
	st := openStore(t, dir)
	m := New(Config{Workers: 1, QueueDepth: 4, Store: st, JitterSeed: 1})
	job, err := m.Submit(testExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning, time.Minute)
	waitCheckpoint(t, job, time.Minute)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain hard-cancels the running job
	_ = m.Shutdown(ctx)
	if got := job.State(); got != StateCancelled {
		t.Fatalf("drained job = %s, want cancelled", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return job.ID
}

// stripRuntime zeroes the measured wall-clock Runtime on every front point:
// it is the one metric that is timed, not computed, so it is the one metric
// a bit-identical resume legitimately cannot reproduce.
func stripRuntime(ex *gdsiiguard.Exploration) *gdsiiguard.Exploration {
	if ex == nil {
		return nil
	}
	out := *ex
	out.Front = append([]gdsiiguard.ParetoPoint(nil), ex.Front...)
	for i := range out.Front {
		out.Front[i].Metrics.Runtime = 0
	}
	// Delta reuse counters depend on how many evaluations the resumed run
	// actually executed (a resume re-runs only the tail), not on the
	// results; the front/metric equality below is the real gate.
	out.Delta = gdsiiguard.DeltaStats{}
	return &out
}

// goldenExploration runs the same spec to completion on a non-durable
// manager: the reference an interrupted-and-resumed run must reproduce
// bit-identically.
func goldenExploration(t *testing.T) *gdsiiguard.Exploration {
	t.Helper()
	m := newTestManager(t, Config{Workers: 1, JitterSeed: 1})
	job, err := m.Submit(testExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("golden job = %s (err %v)", got, job.Err())
	}
	return job.Result().Exploration
}

// A finished job must survive a restart: same ID, same terminal state, same
// result payload — with the hardened layout artifact deliberately absent
// (re-derivable, not persisted) — and the ID sequence must continue past
// recovered jobs instead of colliding with them.
func TestDurableTerminalJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m1 := New(Config{Workers: 1, Store: st, JitterSeed: 1})
	job, err := m1.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("job = %s (err %v)", got, job.Err())
	}
	wantMetrics := job.Result().Hardened
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := newTestManager(t, Config{Workers: 1, Store: st2, JitterSeed: 1})
	got, err := m2.Get(job.ID)
	if err != nil {
		t.Fatalf("recovered Get(%s): %v", job.ID, err)
	}
	if got.State() != StateDone {
		t.Errorf("recovered job = %s, want done", got.State())
	}
	if res := got.Result(); res == nil || res.Hardened == nil {
		t.Fatalf("recovered job lost its result: %+v", got.Result())
	} else if !reflect.DeepEqual(res.Hardened, wantMetrics) {
		t.Errorf("recovered metrics = %+v, want %+v", res.Hardened, wantMetrics)
	}
	if got.Hardened() != nil {
		t.Error("recovered job resurrected the hardened layout artifact (not persisted by design)")
	}

	next, err := m2.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID == job.ID {
		t.Errorf("post-recovery submission reused recovered job ID %s", next.ID)
	}
	waitTerminal(t, next, time.Minute)
}

// The tentpole invariant end to end at the service layer: an exploration
// interrupted by a drain re-queues on restart, resumes from its durable
// checkpoint, and finishes with a front bit-identical to an uninterrupted
// run of the same spec.
func TestDurableInterruptedExploreResumesOnRestart(t *testing.T) {
	dir := t.TempDir()
	id := interruptExplore(t, dir)

	st := openStore(t, dir)
	t.Cleanup(func() { st.Close() })
	m := New(Config{Workers: 1, QueueDepth: 4, Store: st, JitterSeed: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	job, err := m.Get(id)
	if err != nil {
		t.Fatalf("interrupted job not recovered: %v", err)
	}
	if scope, blob := job.resumeState(); scope != scopeLocal || len(blob) == 0 {
		t.Fatalf("recovered job has no local checkpoint (scope %q, %d bytes)", scope, len(blob))
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("resumed job = %s (err %v)", got, job.Err())
	}
	got := stripRuntime(job.Result().Exploration)
	want := stripRuntime(goldenExploration(t))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed exploration diverged from uninterrupted run:\n got: %+v\nwant: %+v", got, want)
	}
}

// A torn final write (crash mid-append) must cost at most the un-synced
// tail, never the job: the log recovers to the last valid checkpoint and
// the exploration still resumes to the golden front.
func TestDurableCorruptTailResumesFromLastCheckpoint(t *testing.T) {
	dir := t.TempDir()
	id := interruptExplore(t, dir)

	// Tear the log's tail: a partial record with a bogus CRC and no newline,
	// exactly what a crash mid-write leaves behind.
	wal := filepath.Join(dir, "jobs", id+".wal")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"t":"state","d":{"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st := openStore(t, dir)
	t.Cleanup(func() { st.Close() })
	m := New(Config{Workers: 1, QueueDepth: 4, Store: st, JitterSeed: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	job, err := m.Get(id)
	if err != nil {
		t.Fatalf("torn-tail job quarantined instead of recovered: %v", err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("resumed job = %s (err %v)", got, job.Err())
	}
	if want := stripRuntime(goldenExploration(t)); !reflect.DeepEqual(stripRuntime(job.Result().Exploration), want) {
		t.Error("torn-tail resume diverged from uninterrupted run")
	}
}

// A log whose surviving records cannot identify the job (no spec) is
// quarantined aside — startup proceeds, the bytes stay on disk for
// post-mortem, and the ID sequence still advances past the quarantined ID.
func TestDurableQuarantinesSpeclessLog(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	l, err := st.Log("job-9")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recCheckpoint, checkpointRecord{Scope: scopeLocal, Data: []byte("{}")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m := newTestManager(t, Config{Workers: 1, Store: st2, JitterSeed: 1})
	if _, err := m.Get("job-9"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(quarantined) = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "job-9.wal.bad")); err != nil {
		t.Errorf("quarantined log bytes missing: %v", err)
	}
	job, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-10" {
		t.Errorf("post-quarantine ID = %s, want job-10 (sequence must clear the quarantined ID)", job.ID)
	}
	waitTerminal(t, job, time.Minute)
}

// Retention eviction must stay correct under concurrent Submit and Get
// traffic: terminal jobs never exceed the retention bound, evicted jobs
// drop their durable logs, and lookups race-free throughout (the race
// detector patrols this test).
func TestRetentionEvictionConcurrent(t *testing.T) {
	const retention, submitters, perSubmitter = 4, 3, 4
	dir := t.TempDir()
	st := openStore(t, dir)
	t.Cleanup(func() { st.Close() })
	m := newTestManager(t, Config{
		Workers: 4, QueueDepth: 32, Retention: retention,
		Store: st, JitterSeed: 1,
	})

	var mu sync.Mutex
	var ids []string
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			var id string
			if len(ids) > 0 {
				id = ids[i%len(ids)]
			}
			mu.Unlock()
			if id != "" {
				if job, err := m.Get(id); err == nil {
					_ = job.Snapshot()
				}
			}
		}
	}()

	var subs sync.WaitGroup
	for s := 0; s < submitters; s++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for i := 0; i < perSubmitter; i++ {
				job, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, job.ID)
				mu.Unlock()
				job.Wait()
			}
		}()
	}
	subs.Wait()
	close(stop)
	readers.Wait()

	// Job.Wait returns when the terminal state lands; retirement (and so
	// eviction) trails it by one worker step, so poll until it settles.
	deadline := time.Now().Add(30 * time.Second)
	for {
		terminal := 0
		for _, n := range m.Stats().JobsByState {
			terminal += n
		}
		kept, err := st.List()
		if err != nil {
			t.Fatal(err)
		}
		if terminal <= retention && len(kept) <= retention {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs / %d durable logs retained, want ≤ %d (eviction must drop both)",
				terminal, len(kept), retention)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Drain ordering: readiness flips to 503 while the in-flight exploration is
// still draining, and once the drain completes the job's log ends with the
// interrupted marker after its last flushed checkpoint — the exact state a
// restart resumes from.
func TestReadyzDrainThenFinalCheckpointOrdering(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m := New(Config{Workers: 1, QueueDepth: 4, Store: st, JitterSeed: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	job, err := m.Submit(testExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning, time.Minute)
	waitCheckpoint(t, job, time.Minute)

	resp, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", resp.StatusCode)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		shutdownDone <- m.Shutdown(ctx)
	}()

	// Readiness must flip before the drain finishes, so load balancers
	// stop routing while in-flight work winds down.
	flipped := false
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		resp, err := http.Get(srv.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flipped {
		t.Fatal("readyz never returned 503 during drain")
	}
	<-shutdownDone
	if got := job.State(); got != StateCancelled {
		t.Fatalf("drained job = %s, want cancelled", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay the log the drain left behind: the final record must be the
	// interrupted marker, with the last checkpoint flushed before it.
	st2 := openStore(t, dir)
	defer st2.Close()
	l, err := st2.Log(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap, tail, err := l.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) == 0 {
		t.Fatal("drained job log has no tail records")
	}
	last := tail[len(tail)-1]
	if last.Type != recState {
		t.Fatalf("final record type = %s, want %s", last.Type, recState)
	}
	var s stateRecord
	if err := json.Unmarshal(last.Data, &s); err != nil {
		t.Fatal(err)
	}
	if s.State != stateInterrupted {
		t.Errorf("final state record = %s, want %s", s.State, stateInterrupted)
	}
	sawCheckpoint := snap != nil
	for _, rec := range tail[:len(tail)-1] {
		if rec.Type == recCheckpoint {
			sawCheckpoint = true
		}
	}
	if !sawCheckpoint {
		t.Error("no checkpoint flushed before the interrupted marker")
	}
}
