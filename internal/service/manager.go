package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gdsiiguard"
)

// Config sizes the manager. Zero values take defaults.
type Config struct {
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the FIFO submission queue (default 64); Submit
	// fails with ErrQueueFull beyond it instead of buffering unboundedly.
	QueueDepth int
	// JobTimeout is the default per-job execution timeout
	// (default 15 minutes); Spec.Timeout overrides it per job.
	JobTimeout time.Duration
	// CacheSize is the design-cache capacity in designs (default 8).
	CacheSize int
	// Retention bounds how many finished jobs the result store keeps
	// (default 256); the oldest finished jobs are evicted first.
	Retention int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 8
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	return c
}

// Submission and lookup errors.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: manager is shutting down")
	ErrNotFound     = errors.New("service: no such job")
)

// Manager owns the job queue, the worker pool, the design cache and the
// result store. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	cache *DesignCache
	queue chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job IDs in retirement order
	seq      uint64
	busy     int
	peakBusy int
	closed   bool
}

// New starts a manager with cfg's worker pool running.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      NewDesignCache(cfg.CacheSize),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates and enqueues a job, returning it in StateQueued. It
// fails fast with ErrQueueFull when the queue is at capacity and with
// ErrShuttingDown after Shutdown has begun.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.seq++
	job := newJob(fmt.Sprintf("job-%d", m.seq), spec, time.Now())
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
		return job, nil
	default:
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// Cancel requests cancellation of a job: a queued job is cancelled
// immediately, a running job's context is cancelled (it stops at the
// flow's next cancellation point), and a terminal job is left untouched.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	job.requestCancel(time.Now())
	return job, nil
}

// Benchmarks lists the built-in designs the service can harden.
func (m *Manager) Benchmarks() []string { return gdsiiguard.Benchmarks() }

// Shutdown stops accepting submissions, lets workers drain queued and
// running jobs, and returns once the pool has exited. If ctx expires
// first, running jobs are hard-cancelled via their contexts and Shutdown
// returns ctx.Err() after the pool exits.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// Stats is a point-in-time view of the service.
type Stats struct {
	Workers       int
	WorkersBusy   int
	PeakBusy      int
	QueueDepth    int
	QueueCapacity int
	JobsByState   map[State]int
	Cache         CacheStats
}

// Stats reports queue depth, worker occupancy, job-state counts and cache
// effectiveness.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Workers:       m.cfg.Workers,
		WorkersBusy:   m.busy,
		PeakBusy:      m.peakBusy,
		QueueDepth:    len(m.queue),
		QueueCapacity: m.cfg.QueueDepth,
		JobsByState:   make(map[State]int),
	}
	for _, job := range m.jobs {
		s.JobsByState[job.State()]++
	}
	m.mu.Unlock()
	s.Cache = m.cache.Stats()
	return s
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
		m.retire(job)
	}
}

func (m *Manager) runJob(job *Job) {
	timeout := job.Spec.Timeout
	if timeout <= 0 {
		timeout = m.cfg.JobTimeout
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	defer cancel()
	if !job.start(cancel, time.Now()) {
		return // cancelled while queued
	}
	m.mu.Lock()
	m.busy++
	if m.busy > m.peakBusy {
		m.peakBusy = m.busy
	}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.busy--
		m.mu.Unlock()
	}()

	res, hardened, err := m.execute(ctx, job)
	now := time.Now()
	switch {
	case err == nil:
		job.finish(StateDone, res, hardened, nil, now)
	case errors.Is(err, context.DeadlineExceeded):
		job.finish(StateFailed, nil, nil,
			fmt.Errorf("service: job timed out after %v", timeout), now)
	case errors.Is(err, context.Canceled):
		job.finish(StateCancelled, nil, nil, nil, now)
	default:
		job.finish(StateFailed, nil, nil, err, now)
	}
}

func (m *Manager) execute(ctx context.Context, job *Job) (*Result, *gdsiiguard.Hardened, error) {
	d, hit, err := m.cache.Load(job.Spec)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	res := &Result{Baseline: d.Baseline(), CacheHit: hit}
	switch job.Spec.Kind {
	case KindHarden:
		h, err := d.HardenCtx(ctx, job.Spec.Params)
		if err != nil {
			return nil, nil, err
		}
		res.Hardened = &h.Metrics
		return res, h, nil
	case KindExplore:
		ex, err := d.ExploreCtx(ctx, job.Spec.Explore)
		if err != nil {
			return nil, nil, err
		}
		res.Exploration = ex
		return res, nil, nil
	case KindAttack:
		a, err := d.SimulateAttack()
		if err != nil {
			return nil, nil, err
		}
		res.Attack = a
		return res, nil, nil
	}
	return nil, nil, fmt.Errorf("service: unknown job kind %q", job.Spec.Kind)
}

// retire enforces the result store's retention limit after a job reaches
// a terminal state.
func (m *Manager) retire(job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = append(m.finished, job.ID)
	for len(m.finished) > m.cfg.Retention {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
}
