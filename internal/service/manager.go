package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gdsiiguard"
	"gdsiiguard/internal/cluster"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/durable"
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/obs"
)

// Config sizes the manager. Zero values take defaults.
type Config struct {
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the FIFO submission queue (default 64); Submit
	// fails with ErrQueueFull beyond it instead of buffering unboundedly.
	QueueDepth int
	// JobTimeout is the default per-job execution timeout
	// (default 15 minutes); Spec.Timeout overrides it per job.
	JobTimeout time.Duration
	// CacheSize is the design-cache capacity in designs (default 8).
	CacheSize int
	// Retention bounds how many finished jobs the result store keeps
	// (default 256); the oldest finished jobs are evicted first.
	Retention int
	// MaxAttempts caps execution attempts per job (default 2, i.e. one
	// retry). Only failures the core taxonomy classifies as transient are
	// retried; permanent failures, panics, timeouts and cancellations
	// fail the job on the first attempt.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry; it doubles per
	// further attempt with ±50% jitter and is cut short by job
	// cancellation (default 250ms).
	RetryBackoff time.Duration
	// Cluster, when set, fans explore jobs out over a distributed
	// island-model cluster instead of running NSGA-II in-process. Harden
	// and attack jobs always run locally.
	Cluster *cluster.Driver
	// Store, when set, makes jobs durable: specs, state transitions,
	// exploration checkpoints and results are written to a per-job
	// crash-safe WAL, and New replays the store — re-queueing interrupted
	// jobs (explorations resume from their last checkpoint) and restoring
	// finished jobs into the result store.
	Store *durable.Store
	// SnapshotEvery compacts a job's WAL into one snapshot record after
	// that many persisted checkpoints (default 8).
	SnapshotEvery int
	// JitterSeed seeds the manager-owned retry-jitter RNG; 0 derives a
	// seed from the clock. A fixed seed makes backoff schedules
	// reproducible in tests.
	JitterSeed int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 8
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 8
	}
	return c
}

// Submission and lookup errors.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: manager is shutting down")
	ErrNotFound     = errors.New("service: no such job")
)

// Manager owns the job queue, the worker pool, the design cache and the
// result store. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	cache *DesignCache
	queue chan *Job
	store *durable.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// jmu guards jrand, the manager-owned seeded RNG behind retry jitter
	// (workers draw concurrently; the global math/rand source would make
	// backoff schedules irreproducible even under Config.JitterSeed).
	jmu   sync.Mutex
	jrand *rand.Rand

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job IDs in retirement order
	seq      uint64
	busy     int
	peakBusy int
	closed   bool
	// Robustness telemetry: transient-failure retries performed and
	// panics recovered by workers since start.
	retries         uint64
	panicsRecovered uint64
}

// New starts a manager with cfg's worker pool running. When cfg.Store is
// set, the store is replayed first: finished jobs re-enter the result
// store and interrupted jobs re-queue (resuming explorations from their
// last durable checkpoint) before any worker runs.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	m := &Manager{
		cfg:        cfg,
		cache:      NewDesignCache(cfg.CacheSize),
		queue:      make(chan *Job, cfg.QueueDepth),
		store:      cfg.Store,
		baseCtx:    ctx,
		baseCancel: cancel,
		jrand:      rand.New(rand.NewSource(seed)),
		jobs:       make(map[string]*Job),
	}
	if m.store != nil {
		m.recover()
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates and enqueues a job, returning it in StateQueued. It
// fails fast with ErrQueueFull when the queue is at capacity and with
// ErrShuttingDown after Shutdown has begun.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.seq++
	job := newJob(fmt.Sprintf("job-%d", m.seq), spec, time.Now())
	if m.store != nil {
		if err := m.persistSubmit(job); err != nil {
			return nil, err
		}
	}
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
		jobsSubmitted.With(string(spec.Kind)).Inc()
		obs.Logger().Info("service: job submitted",
			"job", job.ID, "kind", spec.Kind, "queue_depth", len(m.queue))
		return job, nil
	default:
		if job.wal != nil {
			// The spec record is durable but the job was never accepted:
			// drop the log so a restart does not resurrect a job the
			// client was told to resubmit.
			_ = m.store.Remove(job.ID)
		}
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// Cancel requests cancellation of a job: a queued job is cancelled
// immediately, a running job's context is cancelled (it stops at the
// flow's next cancellation point), and a terminal job is left untouched.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	job.requestCancel(time.Now())
	return job, nil
}

// Benchmarks lists the built-in designs the service can harden.
func (m *Manager) Benchmarks() []string { return gdsiiguard.Benchmarks() }

// Ready reports whether the manager accepts new submissions: true until
// Shutdown begins, false while draining. Backs GET /v1/readyz, so load
// balancers stop routing to a draining instance while in-flight jobs
// finish.
func (m *Manager) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed
}

// Shutdown stops accepting submissions, lets workers drain queued and
// running jobs, and returns once the pool has exited. If ctx expires
// first, running jobs are hard-cancelled via their contexts and Shutdown
// returns ctx.Err() after the pool exits.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// Stats is a point-in-time view of the service.
type Stats struct {
	Workers       int
	WorkersBusy   int
	PeakBusy      int
	QueueDepth    int
	QueueCapacity int
	JobsByState   map[State]int
	// Retries counts transient-failure retries performed;
	// PanicsRecovered counts worker-level panics contained. Both since
	// manager start.
	Retries         uint64
	PanicsRecovered uint64
	Cache           CacheStats
}

// Stats reports queue depth, worker occupancy, job-state counts and cache
// effectiveness.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Workers:         m.cfg.Workers,
		WorkersBusy:     m.busy,
		PeakBusy:        m.peakBusy,
		QueueDepth:      len(m.queue),
		QueueCapacity:   m.cfg.QueueDepth,
		JobsByState:     make(map[State]int),
		Retries:         m.retries,
		PanicsRecovered: m.panicsRecovered,
	}
	for _, job := range m.jobs {
		s.JobsByState[job.State()]++
	}
	m.mu.Unlock()
	s.Cache = m.cache.Stats()
	return s
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
		m.retire(job)
	}
}

func (m *Manager) runJob(job *Job) {
	timeout := job.Spec.Timeout
	if timeout <= 0 {
		timeout = m.cfg.JobTimeout
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	defer cancel()
	started := time.Now()
	if !job.start(cancel, started) {
		return // cancelled while queued
	}
	queueWaitSeconds.Observe(started.Sub(job.submitted).Seconds())
	obs.Logger().Info("service: job started",
		"job", job.ID, "kind", job.Spec.Kind,
		"queue_wait", started.Sub(job.submitted))
	m.mu.Lock()
	m.busy++
	if m.busy > m.peakBusy {
		m.peakBusy = m.busy
	}
	m.mu.Unlock()
	workersBusy.Inc()
	workersBusyPeak.SetMax(workersBusy.Peak())
	defer func() {
		m.mu.Lock()
		m.busy--
		m.mu.Unlock()
		workersBusy.Dec()
	}()
	defer execSeconds.With(string(job.Spec.Kind)).ObserveSince(started)

	// Transient failures are retried with exponential backoff and jitter
	// up to MaxAttempts; anything else terminates the job on the spot. A
	// retry never outlives the job's context: cancellation or deadline
	// expiry cuts the backoff sleep short.
	var res *Result
	var hardened *gdsiiguard.Hardened
	var err error
	for {
		job.noteAttempt()
		m.persistState(job, StateRunning, job.Attempts(), "")
		res, hardened, err = m.executeSafe(ctx, job)
		if err == nil || ctx.Err() != nil ||
			job.Attempts() >= m.cfg.MaxAttempts || !core.IsTransient(err) {
			break
		}
		if !m.sleepBackoff(ctx, job.Attempts()) {
			err = ctx.Err()
			break
		}
		m.mu.Lock()
		m.retries++
		m.mu.Unlock()
	}
	now := time.Now()
	switch {
	case err == nil:
		job.finish(StateDone, res, hardened, nil, now)
	case errors.Is(err, context.DeadlineExceeded):
		job.finish(StateFailed, nil, nil,
			fmt.Errorf("service: job timed out after %v", timeout), now)
	case errors.Is(err, context.Canceled):
		job.finish(StateCancelled, nil, nil, nil, now)
	default:
		job.finish(StateFailed, nil, nil, err, now)
	}
}

// sleepBackoff waits out the backoff delay before retry attempt+1: the
// base delay doubled per completed attempt, with ±50% jitter, capped at
// 30s. It returns false immediately when ctx is done first.
func (m *Manager) sleepBackoff(ctx context.Context, attempt int) bool {
	d := m.cfg.RetryBackoff
	for i := 1; i < attempt && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	// Jitter to d/2 + rand(d): desynchronizes retry storms across workers.
	d = d/2 + m.jitter(d)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// jitter draws a uniform duration in [0, d) from the manager's seeded RNG.
func (m *Manager) jitter(d time.Duration) time.Duration {
	m.jmu.Lock()
	defer m.jmu.Unlock()
	return time.Duration(m.jrand.Int63n(int64(d)))
}

// executeSafe runs one execution attempt with worker-level panic
// containment: a panic anywhere outside the flow's own stage recovery
// (cache loading, result assembly, the executor itself) fails the job —
// never the process — as a core.ClassPanic error.
func (m *Manager) executeSafe(ctx context.Context, job *Job) (res *Result, h *gdsiiguard.Hardened, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.mu.Lock()
			m.panicsRecovered++
			m.mu.Unlock()
			err = &core.FlowPanicError{Stage: "service", Value: r, Stack: debug.Stack()}
		}
	}()
	if err := fault.Hit(fault.Service); err != nil {
		return nil, nil, err
	}
	return m.execute(ctx, job)
}

func (m *Manager) execute(ctx context.Context, job *Job) (*Result, *gdsiiguard.Hardened, error) {
	d, hit, err := m.cache.Load(job.Spec)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	res := &Result{Baseline: d.Baseline(), CacheHit: hit}
	switch job.Spec.Kind {
	case KindHarden:
		h, err := d.HardenCtx(ctx, job.Spec.Params)
		if err != nil {
			return nil, nil, err
		}
		res.Hardened = &h.Metrics
		return res, h, nil
	case KindExplore:
		var ex *gdsiiguard.Exploration
		if m.cfg.Cluster != nil {
			ex, err = m.executeClusterExplore(ctx, job)
		} else {
			// The checkpoint hook always runs (cheap in-memory when the
			// manager has no store), so a transient-failure retry resumes
			// the exploration instead of restarting it.
			opt := job.Spec.Explore
			opt.Checkpoint = func(blob []byte) error {
				return m.persistCheckpoint(job, scopeLocal, blob)
			}
			if scope, blob := job.resumeState(); scope == scopeLocal && len(blob) > 0 {
				opt.Resume = blob
			}
			ex, err = d.ExploreCtx(ctx, opt)
		}
		if err != nil {
			return nil, nil, err
		}
		res.Exploration = ex
		return res, nil, nil
	case KindAttack:
		a, err := d.SimulateAttack()
		if err != nil {
			return nil, nil, err
		}
		res.Attack = a
		return res, nil, nil
	}
	return nil, nil, fmt.Errorf("service: unknown job kind %q", job.Spec.Kind)
}

// retire enforces the result store's retention limit after a job reaches
// a terminal state. It is the single chokepoint every job passes on its
// way out (including jobs cancelled while queued), so terminal-state
// accounting lives here.
func (m *Manager) retire(job *Job) {
	state := job.State()
	jobsFinished.With(string(job.Spec.Kind), string(state)).Inc()
	logger := obs.Logger()
	if state == StateFailed {
		logger.Warn("service: job failed",
			"job", job.ID, "kind", job.Spec.Kind,
			"attempts", job.Attempts(), "error", job.Err())
	} else {
		logger.Info("service: job finished",
			"job", job.ID, "kind", job.Spec.Kind,
			"state", state, "attempts", job.Attempts())
	}
	m.persistRetire(job)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = append(m.finished, job.ID)
	for len(m.finished) > m.cfg.Retention {
		m.evictFinishedLocked()
	}
}
