package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gdsiiguard"
)

// NewHandler wraps a Manager in the guardd JSON API:
//
//	POST   /v1/jobs           submit a harden/explore/attack job
//	GET    /v1/jobs/{id}      job status, metrics and results
//	DELETE /v1/jobs/{id}      cancel a job
//	GET    /v1/jobs/{id}/def  hardened layout as DEF (harden jobs)
//	GET    /v1/jobs/{id}/gdsii  hardened layout as binary GDSII
//	GET    /v1/benchmarks     built-in benchmark designs
//	GET    /v1/stats          queue/worker/cache statistics
//	GET    /v1/healthz        process liveness
//	GET    /v1/readyz        drain-aware readiness (503 while shutting down)
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !m.Ready() {
			// Draining: in-flight jobs finish but new work must go
			// elsewhere, so readiness (and only readiness) flips.
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"ready": false, "reason": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookupJob(m, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, jobJSON(job.Snapshot()))
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, jobJSON(job.Snapshot()))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/def", func(w http.ResponseWriter, r *http.Request) {
		handleExport(m, w, r, "def")
	})
	mux.HandleFunc("GET /v1/jobs/{id}/gdsii", func(w http.ResponseWriter, r *http.Request) {
		handleExport(m, w, r, "gdsii")
	})
	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"benchmarks": m.Benchmarks()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsJSON(m.Stats()))
	})
	return mux
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	// Kind is "harden", "explore" or "attack".
	Kind string `json:"kind"`
	// Benchmark names a built-in design; alternatively DEF carries a
	// placed DEF layout (with ClockPS and optional Assets).
	Benchmark string   `json:"benchmark,omitempty"`
	DEF       string   `json:"def,omitempty"`
	ClockPS   float64  `json:"clock_ps,omitempty"`
	Assets    []string `json:"assets,omitempty"`
	// Params configures harden jobs.
	Params *flowParamsJSON `json:"params,omitempty"`
	// Explore configures explore jobs.
	Explore *exploreJSON `json:"explore,omitempty"`
	// TimeoutSec overrides the server's per-job timeout.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

type flowParamsJSON struct {
	Op       string    `json:"op,omitempty"`
	LDAGridN int       `json:"lda_grid_n,omitempty"`
	LDAIters int       `json:"lda_iters,omitempty"`
	ScaleM   []float64 `json:"scale_m,omitempty"`
}

type exploreJSON struct {
	PopSize     int   `json:"pop_size,omitempty"`
	Generations int   `json:"generations,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	// Islands, MigrationInterval and MigrationCount shape the island-model
	// run on a cluster-enabled server; a single-node server ignores them.
	Islands           int `json:"islands,omitempty"`
	MigrationInterval int `json:"migration_interval,omitempty"`
	MigrationCount    int `json:"migration_count,omitempty"`
}

func (r *submitRequest) toSpec() Spec {
	spec := Spec{
		Kind:      Kind(r.Kind),
		Benchmark: r.Benchmark,
		DEF:       []byte(r.DEF),
		ClockPS:   r.ClockPS,
		Assets:    r.Assets,
		Timeout:   time.Duration(r.TimeoutSec * float64(time.Second)),
	}
	if r.Params != nil {
		spec.Params = &gdsiiguard.FlowParams{
			Op:       gdsiiguard.Operator(r.Params.Op),
			LDAGridN: r.Params.LDAGridN,
			LDAIters: r.Params.LDAIters,
			ScaleM:   r.Params.ScaleM,
		}
	}
	if r.Explore != nil {
		spec.Explore = gdsiiguard.ExploreOptions{
			PopSize:           r.Explore.PopSize,
			Generations:       r.Explore.Generations,
			Parallelism:       r.Explore.Parallelism,
			Seed:              r.Explore.Seed,
			Islands:           r.Explore.Islands,
			MigrationInterval: r.Explore.MigrationInterval,
			MigrationCount:    r.Explore.MigrationCount,
		}
	}
	return spec
}

// maxRequestBody bounds POST bodies; DEF uploads dominate legitimate
// request size, so the cap is generous but finite. A variable so tests can
// shrink it.
var maxRequestBody int64 = 32 << 20 // 32 MiB

// retryAfterSeconds is the client back-off hint sent with 503 responses.
const retryAfterSeconds = "5"

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	// Bound the body before decoding: json.Decoder would otherwise read
	// an unbounded stream into memory.
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	job, err := m.Submit(req.toSpec())
	switch {
	case errors.Is(err, ErrQueueFull):
		// A full queue is the client's pace problem (429): this instance
		// is healthy, just saturated — back off and retry here. Draining
		// (below) is the server's problem (503): go elsewhere. Conflating
		// them makes load balancers eject saturated-but-healthy instances.
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobJSON(job.Snapshot()))
}

func lookupJob(m *Manager, w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return job, true
}

func handleExport(m *Manager, w http.ResponseWriter, r *http.Request, format string) {
	job, ok := lookupJob(m, w, r)
	if !ok {
		return
	}
	if state := job.State(); state != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("service: job %s is %s, artifacts need state %s", job.ID, state, StateDone))
		return
	}
	h := job.Hardened()
	if h == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("service: job %s (%s) produced no layout artifact", job.ID, job.Spec.Kind))
		return
	}
	var err error
	switch format {
	case "def":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = h.WriteDEF(w)
	case "gdsii":
		w.Header().Set("Content-Type", "application/octet-stream")
		err = h.WriteGDSII(w)
	}
	if err != nil {
		// Headers are already out; the truncated body is the best signal.
		return
	}
}

// metricsJSON mirrors gdsiiguard.Metrics with stable lower-case keys.
type metricsJSON struct {
	Security  float64 `json:"security"`
	ERSites   int     `json:"er_sites"`
	ERTracks  float64 `json:"er_tracks"`
	TNSPs     float64 `json:"tns_ps"`
	WNSPs     float64 `json:"wns_ps"`
	PowerMW   float64 `json:"power_mw"`
	DRC       int     `json:"drc"`
	RuntimeMS float64 `json:"runtime_ms"`
}

func fromMetrics(m gdsiiguard.Metrics) metricsJSON {
	return metricsJSON{
		Security:  m.Security,
		ERSites:   m.ERSites,
		ERTracks:  m.ERTracks,
		TNSPs:     m.TNS,
		WNSPs:     m.WNS,
		PowerMW:   m.PowerMW,
		DRC:       m.DRC,
		RuntimeMS: float64(m.Runtime) / float64(time.Millisecond),
	}
}

type paretoPointJSON struct {
	Params  flowParamsJSON `json:"params"`
	Metrics metricsJSON    `json:"metrics"`
}

type explorationJSON struct {
	Front       []paretoPointJSON `json:"front"`
	Evaluations int               `json:"evaluations"`
	Knee        int               `json:"knee"`
	// Failures counts evaluations that failed and were degraded during
	// the exploration (see RunLog.Failures).
	Failures int `json:"failures,omitempty"`
	// Islands/Migrations/Degraded describe a distributed island-model run
	// (all empty for single-process explorations).
	Islands    int                     `json:"islands,omitempty"`
	Migrations int                     `json:"migrations,omitempty"`
	Degraded   []islandDegradationJSON `json:"degraded,omitempty"`
	// Delta reports cross-chromosome evaluation reuse (operator memo and
	// arena hits, warm-started routes); see gdsiiguard.DeltaStats.
	Delta gdsiiguard.DeltaStats `json:"delta"`
}

type islandDegradationJSON struct {
	Island int    `json:"island"`
	Node   string `json:"node,omitempty"`
	Epoch  int    `json:"epoch"`
	Stage  string `json:"stage,omitempty"`
	Class  string `json:"class,omitempty"`
	Error  string `json:"error,omitempty"`
}

type attackJSON struct {
	Inserted     bool    `json:"inserted"`
	Reason       string  `json:"reason,omitempty"`
	Victim       string  `json:"victim,omitempty"`
	TapDistUM    float64 `json:"tap_dist_um,omitempty"`
	SlackAfterPS float64 `json:"slack_after_ps,omitempty"`
}

type jobResponse struct {
	ID         string           `json:"id"`
	Kind       string           `json:"kind"`
	State      string           `json:"state"`
	Error      string           `json:"error,omitempty"`
	ErrorClass string           `json:"error_class,omitempty"`
	Attempts   int              `json:"attempts,omitempty"`
	Submitted  string           `json:"submitted"`
	Started    string           `json:"started,omitempty"`
	Finished   string           `json:"finished,omitempty"`
	CacheHit   bool             `json:"cache_hit,omitempty"`
	Baseline   *metricsJSON     `json:"baseline,omitempty"`
	Hardened   *metricsJSON     `json:"hardened,omitempty"`
	Explore    *explorationJSON `json:"exploration,omitempty"`
	Attack     *attackJSON      `json:"attack,omitempty"`
}

func jobJSON(s Snapshot) jobResponse {
	out := jobResponse{
		ID:         s.ID,
		Kind:       string(s.Kind),
		State:      string(s.State),
		Error:      s.Error,
		ErrorClass: s.ErrorClass,
		Attempts:   s.Attempts,
		Submitted:  s.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if !s.Started.IsZero() {
		out.Started = s.Started.UTC().Format(time.RFC3339Nano)
	}
	if !s.Finished.IsZero() {
		out.Finished = s.Finished.UTC().Format(time.RFC3339Nano)
	}
	if s.Result == nil {
		return out
	}
	res := s.Result
	out.CacheHit = res.CacheHit
	base := fromMetrics(res.Baseline)
	out.Baseline = &base
	if res.Hardened != nil {
		h := fromMetrics(*res.Hardened)
		out.Hardened = &h
	}
	if res.Exploration != nil {
		ex := &explorationJSON{
			Evaluations: res.Exploration.Evaluations,
			Knee:        res.Exploration.Knee,
			Failures:    res.Exploration.Failures,
			Islands:     res.Exploration.Islands,
			Migrations:  res.Exploration.Migrations,
			Delta:       res.Exploration.Delta,
			Front:       []paretoPointJSON{},
		}
		for _, d := range res.Exploration.Degraded {
			ex.Degraded = append(ex.Degraded, islandDegradationJSON{
				Island: d.Island,
				Node:   d.Node,
				Epoch:  d.Epoch,
				Stage:  d.Stage,
				Class:  d.Class,
				Error:  d.Err,
			})
		}
		for _, pt := range res.Exploration.Front {
			ex.Front = append(ex.Front, paretoPointJSON{
				Params: flowParamsJSON{
					Op:       string(pt.Params.Op),
					LDAGridN: pt.Params.LDAGridN,
					LDAIters: pt.Params.LDAIters,
					ScaleM:   pt.Params.ScaleM,
				},
				Metrics: fromMetrics(pt.Metrics),
			})
		}
		out.Explore = ex
	}
	if res.Attack != nil {
		out.Attack = &attackJSON{
			Inserted:     res.Attack.Inserted,
			Reason:       res.Attack.Reason,
			Victim:       res.Attack.Victim,
			TapDistUM:    res.Attack.TapDistUM,
			SlackAfterPS: res.Attack.SlackAfterPS,
		}
	}
	return out
}

type statsResponse struct {
	Workers         int            `json:"workers"`
	WorkersBusy     int            `json:"workers_busy"`
	PeakBusy        int            `json:"peak_busy"`
	QueueDepth      int            `json:"queue_depth"`
	QueueCapacity   int            `json:"queue_capacity"`
	JobsByState     map[string]int `json:"jobs_by_state"`
	Retries         uint64         `json:"retries"`
	PanicsRecovered uint64         `json:"panics_recovered"`
	CacheEntries    int            `json:"cache_entries"`
	CacheHits       uint64         `json:"cache_hits"`
	CacheMisses     uint64         `json:"cache_misses"`
	CacheHitRate    float64        `json:"cache_hit_rate"`
}

func statsJSON(s Stats) statsResponse {
	out := statsResponse{
		Workers:         s.Workers,
		WorkersBusy:     s.WorkersBusy,
		PeakBusy:        s.PeakBusy,
		QueueDepth:      s.QueueDepth,
		QueueCapacity:   s.QueueCapacity,
		JobsByState:     make(map[string]int),
		Retries:         s.Retries,
		PanicsRecovered: s.PanicsRecovered,
		CacheEntries:    s.Cache.Entries,
		CacheHits:       s.Cache.Hits,
		CacheMisses:     s.Cache.Misses,
		CacheHitRate:    s.Cache.HitRate(),
	}
	for state, n := range s.JobsByState {
		out.JobsByState[string(state)] = n
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
