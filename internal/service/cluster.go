package service

import (
	"context"

	"gdsiiguard"
	"gdsiiguard/internal/cluster"
	"gdsiiguard/internal/experiments"
	"gdsiiguard/internal/obs"
)

// executeClusterExplore fans an explore job out over the configured
// cluster driver instead of running NSGA-II in-process: the job's design
// becomes a DesignRef, islands execute on worker nodes, and the merged
// deduplicated Pareto front comes back as a regular Exploration (with the
// island, migration and degradation extras filled in). The design cache
// has already resolved the baseline, so the response carries baseline
// metrics exactly like the single-process path.
func (m *Manager) executeClusterExplore(ctx context.Context, job *Job) (*gdsiiguard.Exploration, error) {
	opt := job.Spec.Explore
	spec := cluster.ExploreSpec{
		Design: cluster.DesignRef{
			Benchmark: job.Spec.Benchmark,
			DEF:       job.Spec.DEF,
			ClockPS:   job.Spec.ClockPS,
			Assets:    job.Spec.Assets,
		},
		Islands:           opt.Islands,
		PopSize:           opt.PopSize,
		Generations:       opt.Generations,
		Seed:              opt.Seed,
		MigrationInterval: opt.MigrationInterval,
		MigrationCount:    opt.MigrationCount,
	}
	// Epoch checkpoints persist through the job's WAL; a retried or
	// restarted coordinator resumes at the last completed epoch instead of
	// re-running the exploration from scratch.
	spec.Checkpoint = func(cp *cluster.EpochCheckpoint) error {
		blob, err := cp.Marshal()
		if err != nil {
			return err
		}
		return m.persistCheckpoint(job, scopeCluster, blob)
	}
	if scope, blob := job.resumeState(); scope == scopeCluster && len(blob) > 0 {
		cp, err := cluster.UnmarshalEpochCheckpoint(blob)
		if err != nil {
			obs.Logger().Warn("service: discarding undecodable cluster checkpoint",
				"job", job.ID, "error", err)
		} else {
			spec.Resume = cp
		}
	}
	res, err := m.cfg.Cluster.Explore(ctx, spec)
	if err != nil {
		return nil, err
	}
	out := &gdsiiguard.Exploration{
		Evaluations: res.Evaluations,
		Knee:        -1,
		Failures:    res.Failures,
		Islands:     res.Islands,
		Migrations:  res.Migrations,
		Delta: gdsiiguard.DeltaStats{
			OpRuns:       res.Delta.OpRuns,
			OpMemoHits:   res.Delta.OpMemoHits,
			OpArenaHits:  res.Delta.OpArenaHits,
			OpIterSteps:  res.Delta.OpIterSteps,
			RoutesWarm:   res.Delta.RoutesWarm,
			RoutesCold:   res.Delta.RoutesCold,
			NetsReplayed: res.Delta.NetsReplayed,
			NetsRerouted: res.Delta.NetsRerouted,
			StaFull:      res.Delta.StaFull,
			StaDelta:     res.Delta.StaDelta,
			StaConeInsts: res.Delta.StaConeInsts,
			StaConeNets:  res.Delta.StaConeNets,
		},
	}
	for _, in := range res.Front {
		out.Front = append(out.Front, gdsiiguard.ParetoPoint{
			Params: gdsiiguard.FlowParams{
				Op:       gdsiiguard.Operator(in.Params.Op),
				LDAGridN: in.Params.LDAGridN,
				LDAIters: in.Params.LDAIters,
				ScaleM:   append([]float64(nil), in.Params.ScaleM...),
			},
			Metrics: gdsiiguard.Metrics{
				Security: in.Metrics.Security,
				ERSites:  in.Metrics.ERSites,
				ERTracks: in.Metrics.ERTracks,
				TNS:      in.Metrics.TNS,
				WNS:      in.Metrics.WNS,
				PowerMW:  in.Metrics.PowerMW,
				DRC:      in.Metrics.DRC,
				Runtime:  in.Metrics.Runtime,
			},
		})
	}
	if knee := experiments.SelectKnee(res.Front); knee != nil {
		for i, in := range res.Front {
			if in.Params.Key() == knee.Params.Key() {
				out.Knee = i
				break
			}
		}
	}
	for _, d := range res.Degraded {
		out.Degraded = append(out.Degraded, gdsiiguard.IslandDegradation{
			Island: d.Island,
			Node:   d.Node,
			Epoch:  d.Epoch,
			Stage:  string(d.Stage),
			Class:  string(d.Class),
			Err:    d.Err,
		})
	}
	return out, nil
}
