package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gdsiiguard"
)

// testBench is the smallest/fastest built-in benchmark, used throughout.
const testBench = "PRESENT"

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m
}

func waitState(t *testing.T, job *Job, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if job.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s state = %s, want %s within %v", job.ID, job.State(), want, timeout)
}

func waitTerminal(t *testing.T, job *Job, timeout time.Duration) State {
	t.Helper()
	select {
	case <-job.Done():
		return job.State()
	case <-time.After(timeout):
		t.Fatalf("job %s still %s after %v", job.ID, job.State(), timeout)
		return ""
	}
}

func TestConcurrentJobsBoundedWorkers(t *testing.T) {
	const workers, jobs = 2, 5
	m := newTestManager(t, Config{Workers: workers, QueueDepth: 16})
	var submitted []*Job
	for i := 0; i < jobs; i++ {
		job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		submitted = append(submitted, job)
	}
	for _, job := range submitted {
		if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
			t.Fatalf("job %s = %s (err %v), want done", job.ID, got, job.Err())
		}
		res := job.Result()
		if res == nil || res.Hardened == nil {
			t.Fatalf("job %s has no hardened metrics", job.ID)
		}
		if res.Hardened.Security >= 1.0 {
			t.Errorf("job %s hardened security = %g, want < 1", job.ID, res.Hardened.Security)
		}
	}
	s := m.Stats()
	if s.PeakBusy > workers {
		t.Errorf("peak busy workers = %d, want ≤ %d (bounded pool)", s.PeakBusy, workers)
	}
	if s.JobsByState[StateDone] != jobs {
		t.Errorf("done jobs = %d, want %d", s.JobsByState[StateDone], jobs)
	}
	// One load, four cache hits: all five jobs target the same design.
	if s.Cache.Misses != 1 || s.Cache.Hits != jobs-1 {
		t.Errorf("cache = %+v, want 1 miss / %d hits", s.Cache, jobs-1)
	}
}

func TestSecondJobHitsDesignCache(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	first, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, first, time.Minute); got != StateDone {
		t.Fatalf("first job = %s (err %v)", got, first.Err())
	}
	if first.Result().CacheHit {
		t.Error("first job reported a cache hit")
	}
	hitsBefore := m.Stats().Cache.Hits

	second, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, second, time.Minute); got != StateDone {
		t.Fatalf("second job = %s (err %v)", got, second.Err())
	}
	if !second.Result().CacheHit {
		t.Error("second job on the same benchmark missed the design cache")
	}
	if second.Result().Attack == nil {
		t.Error("attack job has no attack result")
	}
	if hits := m.Stats().Cache.Hits; hits <= hitsBefore {
		t.Errorf("cache hits did not increment: %d → %d", hitsBefore, hits)
	}
}

func TestCancelRunningJobStopsPromptly(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	// Big enough that the exploration would run far longer than the
	// cancellation bound if ctx were ignored.
	job, err := m.Submit(Spec{
		Kind:      KindExplore,
		Benchmark: testBench,
		Explore:   gdsiiguard.ExploreOptions{PopSize: 8, Generations: 8, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning, time.Minute)
	canceledAt := time.Now()
	if _, err := m.Cancel(job.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got := waitTerminal(t, job, 30*time.Second); got != StateCancelled {
		t.Fatalf("cancelled job = %s (err %v), want cancelled", got, job.Err())
	}
	// The flow observes ctx between stages/evaluations, so cancellation
	// latency is bounded by roughly one flow evaluation, not the full run.
	if took := time.Since(canceledAt); took > 15*time.Second {
		t.Errorf("cancellation took %v, want prompt stop", took)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	blocker, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// Cancelled while queued: terminal immediately, no execution.
	if got := queued.State(); got != StateCancelled {
		t.Errorf("queued job = %s after cancel, want cancelled", got)
	}
	if got := waitTerminal(t, blocker, time.Minute); got != StateDone {
		t.Fatalf("blocker = %s (err %v)", got, blocker.Err())
	}
	if queued.Result() != nil {
		t.Error("cancelled queued job has a result")
	}
}

func TestJobTimeout(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench, Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, time.Minute); got != StateFailed {
		t.Fatalf("timed-out job = %s, want failed", got)
	}
	if err := job.Err(); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("timeout error = %v, want 'timed out'", err)
	}
}

func TestQueueFullRejectsFast(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1})
	full := false
	var accepted []*Job
	for i := 0; i < 4; i++ {
		job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
		switch {
		case errors.Is(err, ErrQueueFull):
			full = true
		case err != nil:
			t.Fatalf("Submit %d: %v", i, err)
		default:
			accepted = append(accepted, job)
		}
	}
	if !full {
		t.Error("bounded queue never reported ErrQueueFull under burst submission")
	}
	for _, job := range accepted {
		waitTerminal(t, job, 2*time.Minute)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	cases := map[string]Spec{
		"unknown kind":      {Kind: "frobnicate", Benchmark: testBench},
		"no design":         {Kind: KindHarden},
		"both designs":      {Kind: KindHarden, Benchmark: testBench, DEF: []byte("DESIGN X ;")},
		"def without clock": {Kind: KindHarden, DEF: []byte("DESIGN X ;")},
		"negative timeout":  {Kind: KindHarden, Benchmark: testBench, Timeout: -time.Second},
	}
	for name, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnknownBenchmarkFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: "NO_SUCH_DESIGN"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, time.Minute); got != StateFailed {
		t.Fatalf("job = %s, want failed", got)
	}
	if job.Err() == nil {
		t.Error("failed job has nil error")
	}
}

func TestShutdownDrains(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 8})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, job := range jobs {
		if got := job.State(); got != StateDone {
			t.Errorf("job %s = %s after graceful shutdown, want done (err %v)",
				job.ID, got, job.Err())
		}
	}
	if _, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
	// Shutdown is idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestResultRetention(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Retention: 2, QueueDepth: 8})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		job, err := m.Submit(Spec{Kind: KindAttack, Benchmark: testBench})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		waitTerminal(t, job, time.Minute)
	}
	// Retirement happens in the worker just after the job finishes; poll
	// for the eviction of the two oldest jobs.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, err0 := m.Get(jobs[0].ID)
		_, err1 := m.Get(jobs[1].ID)
		if errors.Is(err0, ErrNotFound) && errors.Is(err1, ErrNotFound) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Get(jobs[0].ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest job still retained: %v", err)
	}
	for _, job := range jobs[2:] {
		if _, err := m.Get(job.ID); err != nil {
			t.Errorf("recent job %s evicted: %v", job.ID, err)
		}
	}
}
