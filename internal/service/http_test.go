package service

import (
	"gdsiiguard"

	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
	}
	return out
}

func pollJobDone(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		got := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, http.StatusOK)
		switch got["state"] {
		case string(StateDone):
			return got
		case string(StateFailed), string(StateCancelled):
			t.Fatalf("job %s reached %s: %v", id, got["state"], got["error"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s not done within %v", id, timeout)
	return nil
}

func TestHTTPHardenEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// Discover benchmarks.
	benches := doJSON(t, http.MethodGet, srv.URL+"/v1/benchmarks", nil, http.StatusOK)
	found := false
	for _, v := range benches["benchmarks"].([]any) {
		if v == testBench {
			found = true
		}
	}
	if !found {
		t.Fatalf("benchmarks list lacks %s: %v", testBench, benches)
	}

	// Submit a harden job with explicit flow parameters.
	sub := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind":      "harden",
		"benchmark": testBench,
		"params":    map[string]any{"op": "CS"},
	}, http.StatusAccepted)
	id, _ := sub["id"].(string)
	if id == "" || sub["state"] != string(StateQueued) {
		t.Fatalf("submit response = %v", sub)
	}

	done := pollJobDone(t, srv.URL, id, 2*time.Minute)
	hardened, _ := done["hardened"].(map[string]any)
	if hardened == nil {
		t.Fatalf("done job has no hardened metrics: %v", done)
	}
	if sec := hardened["security"].(float64); sec >= 1.0 {
		t.Errorf("hardened security = %g, want < 1", sec)
	}
	if done["baseline"] == nil {
		t.Error("done job has no baseline metrics")
	}

	// Export artifacts.
	defResp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/def")
	if err != nil {
		t.Fatal(err)
	}
	defBody, _ := io.ReadAll(defResp.Body)
	defResp.Body.Close()
	if defResp.StatusCode != http.StatusOK || !strings.Contains(string(defBody), "DESIGN "+testBench+" ;") {
		t.Errorf("DEF export: status %d, %d bytes", defResp.StatusCode, len(defBody))
	}
	gdsResp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/gdsii")
	if err != nil {
		t.Fatal(err)
	}
	gdsBody, _ := io.ReadAll(gdsResp.Body)
	gdsResp.Body.Close()
	if gdsResp.StatusCode != http.StatusOK || len(gdsBody) < 100 {
		t.Errorf("GDSII export: status %d, %d bytes", gdsResp.StatusCode, len(gdsBody))
	}

	// A second job on the same design reports a cache hit.
	sub2 := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "attack", "benchmark": testBench,
	}, http.StatusAccepted)
	done2 := pollJobDone(t, srv.URL, sub2["id"].(string), time.Minute)
	if done2["cache_hit"] != true {
		t.Errorf("second job cache_hit = %v, want true", done2["cache_hit"])
	}
	if done2["attack"] == nil {
		t.Error("attack job has no attack payload")
	}

	// Stats reflect the work done.
	stats := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", nil, http.StatusOK)
	if stats["cache_hits"].(float64) < 1 {
		t.Errorf("stats cache_hits = %v, want ≥ 1", stats["cache_hits"])
	}
	byState := stats["jobs_by_state"].(map[string]any)
	if byState[string(StateDone)].(float64) < 2 {
		t.Errorf("stats done jobs = %v, want ≥ 2", byState)
	}
}

func TestHTTPCancel(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	// Occupy the single worker so the second job stays queued.
	doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench,
	}, http.StatusAccepted)
	sub := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench,
	}, http.StatusAccepted)
	id := sub["id"].(string)
	got := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil, http.StatusOK)
	if got["state"] != string(StateCancelled) {
		t.Errorf("cancelled queued job state = %v, want cancelled", got["state"])
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})

	doJSON(t, http.MethodGet, srv.URL+"/v1/jobs/job-999", nil, http.StatusNotFound)
	doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/job-999", nil, http.StatusNotFound)
	doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "frobnicate", "benchmark": testBench,
	}, http.StatusBadRequest)
	doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench, "bogus_field": 1,
	}, http.StatusBadRequest)

	// Artifacts of a non-done job are a conflict.
	sub := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench,
	}, http.StatusAccepted)
	id := sub["id"].(string)
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/def")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DEF of unfinished job = %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	// An attack job finishes done but has no layout artifact.
	done := pollJobDone(t, srv.URL, id, 2*time.Minute)
	_ = done
	sub2 := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "attack", "benchmark": testBench,
	}, http.StatusAccepted)
	pollJobDone(t, srv.URL, sub2["id"].(string), time.Minute)
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + sub2["id"].(string) + "/gdsii")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("GDSII of attack job = %d, want %d", resp2.StatusCode, http.StatusConflict)
	}

	// After shutdown the API sheds load.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind": "harden", "benchmark": testBench,
	}, http.StatusServiceUnavailable)
}

func TestHTTPSubmitDEFJob(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	// Produce a real DEF via the library, then harden it through the API.
	m2 := newTestManager(t, Config{Workers: 1})
	job, err := m2.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, job, 2*time.Minute); got != StateDone {
		t.Fatalf("seed job = %s (err %v)", got, job.Err())
	}
	var def bytes.Buffer
	if err := job.Hardened().WriteDEF(&def); err != nil {
		t.Fatal(err)
	}

	sub := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", map[string]any{
		"kind":     "attack",
		"def":      def.String(),
		"clock_ps": 2000,
	}, http.StatusAccepted)
	done := pollJobDone(t, srv.URL, sub["id"].(string), 2*time.Minute)
	if done["attack"] == nil {
		t.Fatalf("DEF attack job has no attack payload: %v", done)
	}
	if fmt.Sprint(done["cache_hit"]) == "true" {
		t.Error("first DEF job unexpectedly hit the cache")
	}
}

// A saturated queue is the client's pace problem, not a server outage:
// it must surface as 429 (with Retry-After), distinct from the 503 a
// draining server returns. Load balancers key on this split — a 503
// ejects the instance, a 429 just slows the client down.
func TestHTTPQueueFullReturns429(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Occupy the single worker with a long exploration, then fill the
	// one-slot queue, so the next submission deterministically overflows.
	running, err := m.Submit(Spec{
		Kind:      KindExplore,
		Benchmark: testBench,
		Explore:   gdsiiguard.ExploreOptions{PopSize: 8, Generations: 16, Parallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, time.Minute)
	queued, err := m.Submit(Spec{Kind: KindHarden, Benchmark: testBench})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"attack","benchmark":"`+testBench+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post with full queue = %d, want %d", resp.StatusCode, http.StatusTooManyRequests)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("Retry-After = %q, want %q", got, retryAfterSeconds)
	}

	for _, job := range []*Job{running, queued} {
		if _, err := m.Cancel(job.ID); err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, job, time.Minute)
	}
}
