// Package drc is the design-rule check engine. With a coarse global-routing
// model, the dominant rule classes reduce to:
//
//   - shorts/spacing from routing over-subscription: every GCell whose track
//     usage exceeds capacity on some layer produces violations;
//   - wide-wire spacing under non-default rules: when a scaled wire width
//     eats into the inter-track spacing budget of its layer, congested
//     GCells on that layer produce violations proportional to how crowded
//     they are;
//   - placement legality (overlaps, off-core cells), normally guaranteed by
//     the layout database but re-checked defensively.
//
// The violation count feeds the N_DRC hard constraint of the optimizer.
package drc

import (
	"math"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/route"
)

// Result is a DRC report.
type Result struct {
	// Violations is the total count, the paper's #DRC column.
	Violations int
	// Overflow counts routing over-subscription violations.
	Overflow int
	// WideWireSpacing counts NDR-induced spacing violations.
	WideWireSpacing int
	// Placement counts placement-legality violations.
	Placement int
}

// Check runs all rule classes over the layout and its routing.
func Check(l *layout.Layout, routes *route.Result) Result {
	var res Result
	res.Placement = checkPlacement(l)
	if routes != nil {
		res.Overflow = checkOverflow(routes)
		res.WideWireSpacing = checkWideWireSpacing(l, routes)
	}
	res.Violations = res.Placement + res.Overflow + res.WideWireSpacing
	return res
}

// checkPlacement re-validates the occupancy grid.
func checkPlacement(l *layout.Layout) int {
	if err := l.Validate(); err != nil {
		return 1
	}
	return 0
}

// DetourHeadroom is the over-subscription a detail router is assumed to
// absorb by detouring within neighboring GCells; only demand beyond
// headroom × capacity manifests as shorts/spacing violations. The global
// routing model books straight pattern routes, so raw usage overstates the
// final detail-routed demand.
const DetourHeadroom = 1.8

// checkOverflow counts a violation for every whole track of demand beyond
// the detour headroom in every (layer, GCell).
func checkOverflow(routes *route.Result) int {
	v := 0
	for li := range routes.Usage {
		for i := range routes.Usage[li] {
			if d := routes.Usage[li][i] - DetourHeadroom*routes.Cap[li][i]; d > 0 {
				v += int(math.Ceil(d))
			}
		}
	}
	return v
}

// checkWideWireSpacing flags layers where the scaled wire width exceeds the
// spacing budget (width·scale > pitch − minSpacing): on such layers,
// adjacent occupied tracks are too close. The expected number of adjacent
// pairs in a GCell grows quadratically with its utilization, so violations
// are counted on GCells above 70% usage.
func checkWideWireSpacing(l *layout.Layout, routes *route.Result) int {
	lib := l.Lib()
	v := 0
	for metal := 1; metal <= lib.NumLayers(); metal++ {
		layer := lib.Layer(metal)
		scale := l.NDR.LayerScale(metal)
		if scale <= 1.0 {
			continue
		}
		widthScaled := float64(layer.Width) * scale
		budget := float64(layer.Pitch - layer.Spacing)
		if widthScaled <= budget {
			continue // still legal at this width
		}
		severity := (widthScaled - budget) / float64(layer.Width)
		for i, u := range routes.Usage[metal-1] {
			c := routes.Cap[metal-1][i]
			if c <= 0 {
				continue
			}
			util := u / c
			if util > 0.7 {
				v += int(math.Ceil((util - 0.7) * u * severity))
			}
		}
	}
	return v
}
