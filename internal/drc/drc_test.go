package drc

import (
	"fmt"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/route"
)

func mesh(t testing.TB, chains, stages int, util float64) *layout.Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("d", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	for c := 0; c < chains; c++ {
		in, _ := nl.AddPort(fmt.Sprintf("i%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("ci%d", c))
		_ = nl.ConnectPort(in, prev)
		for s := 0; s < stages; s++ {
			g, err := nl.AddInstance(fmt.Sprintf("c%dg%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			nx, _ := nl.AddNet(fmt.Sprintf("c%dn%d", c, s))
			_ = nl.Connect(g, "A", prev)
			_ = nl.Connect(g, "ZN", nx)
			prev = nx
		}
		ff, _ := nl.AddInstance(fmt.Sprintf("ff%d", c), "DFF_X1")
		q, _ := nl.AddNet(fmt.Sprintf("q%d", c))
		_ = nl.Connect(ff, "D", prev)
		_ = nl.Connect(ff, "CK", clkNet)
		_ = nl.Connect(ff, "Q", q)
		out, _ := nl.AddPort(fmt.Sprintf("o%d", c), netlist.Out)
		_ = nl.ConnectPort(out, q)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: util, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCleanLayoutHasNoViolations(t *testing.T) {
	l := mesh(t, 4, 15, 0.5)
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := Check(l, routes)
	if res.Placement != 0 {
		t.Errorf("placement violations = %d", res.Placement)
	}
	if res.WideWireSpacing != 0 {
		t.Errorf("wide-wire violations without NDR = %d", res.WideWireSpacing)
	}
	if res.Violations != res.Placement+res.Overflow+res.WideWireSpacing {
		t.Error("total does not sum components")
	}
}

func TestCheckWithoutRoutes(t *testing.T) {
	l := mesh(t, 2, 5, 0.5)
	res := Check(l, nil)
	if res.Overflow != 0 || res.WideWireSpacing != 0 {
		t.Errorf("routeless check = %+v", res)
	}
}

func TestNDRSpacingViolationsAppearWhenCongested(t *testing.T) {
	l := mesh(t, 8, 25, 0.8)
	// Aggressive scaling on the mid stack, where the pitch budget is tight
	// (metal4-6: width 140, pitch 280, spacing 140 → any scale > 1.0 eats
	// the budget).
	l.NDR.Scale[3] = 1.5
	l.NDR.Scale[4] = 1.5
	l.NDR.Scale[5] = 1.5
	routes, err := route.Route(l, route.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Force congestion on metal4: small toy cores route everything on the
	// low stack, so load the mid layer explicitly.
	for i := range routes.Usage[3] {
		routes.Usage[3][i] = routes.Cap[3][i] * 0.95
	}
	resNDR := Check(l, routes)
	if resNDR.WideWireSpacing == 0 {
		t.Error("over-budget NDR scaling on congested layer produced no violations")
	}

	// Same congestion without scaling: no wide-wire violations.
	base := l.Clone()
	for i := range base.NDR.Scale {
		base.NDR.Scale[i] = 1.0
	}
	resBase := Check(base, routes)
	if resBase.WideWireSpacing != 0 {
		t.Errorf("unscaled layout flagged %d wide-wire violations", resBase.WideWireSpacing)
	}
}

func TestMildNDRWithinBudgetIsFree(t *testing.T) {
	l := mesh(t, 4, 10, 0.5)
	// metal1: width 70, pitch 190, spacing 65 → budget 125; 70·1.5=105 OK.
	l.NDR.Scale[0] = 1.5
	routes, err := route.Route(l, route.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := Check(l, routes)
	if res.WideWireSpacing != 0 {
		t.Errorf("within-budget scaling flagged: %d", res.WideWireSpacing)
	}
}

func TestOverflowCounting(t *testing.T) {
	l := mesh(t, 2, 5, 0.5)
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Force synthetic overflow beyond the detour headroom.
	routes.Usage[0][0] = DetourHeadroom*routes.Cap[0][0] + 2.4
	res := Check(l, routes)
	if res.Overflow != 3 { // ceil(2.4)
		t.Errorf("overflow = %d, want 3", res.Overflow)
	}
	// Demand within headroom is absorbed by detouring.
	routes.Usage[0][0] = 1.2 * routes.Cap[0][0]
	if res := Check(l, routes); res.Overflow != 0 {
		t.Errorf("within-headroom overflow = %d, want 0", res.Overflow)
	}
}
