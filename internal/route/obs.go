package route

import "gdsiiguard/internal/obs"

// routeSeconds times each Route call end to end (grid build, initial
// routing, rip-up passes, finalize).
var routeSeconds = obs.Default().Histogram(
	"gdsiiguard_route_seconds",
	"Global-route wall time per Route call.", nil).With()
