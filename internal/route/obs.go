package route

import "gdsiiguard/internal/obs"

// routeSeconds times each Route call end to end (grid build, initial
// routing, rip-up passes, finalize).
var routeSeconds = obs.Default().Histogram(
	"gdsiiguard_route_seconds",
	"Global-route wall time per Route call.", nil).With()

// warmDeclineTotal counts warm-start declines by reason, so a
// routes_warm: 0 on a real design is diagnosable from /metrics: no_donor
// (no compatible donor route cached), dirty_frac (too many dirty nets to be
// worth replaying), victims (donor was reshaped by rip-up), netlist (net
// count mismatch), ndr (NDR scale mismatch), grid (GCell grid mismatch),
// layers (fewer than 2 routing layers).
var warmDeclineTotal = obs.Default().Counter(
	"gdsiiguard_route_warm_decline_total",
	"Warm-start route declines by reason (the route fell back to a cold run).",
	"reason")

// CountWarmDecline records a warm-start decline. Warm calls it for every
// precondition it checks itself; callers that decline before reaching Warm
// (no donor cached, dirty fraction too high) record their reason through
// the same counter.
func CountWarmDecline(reason string) { warmDeclineTotal.With(reason).Inc() }
