package route

import (
	"sort"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// Geometry is the placement-derived routing precomputation for one layout
// state: the routable-net list, each net's two-pin connection decomposition
// (nearest-terminal spanning tree), its terminal bounding box, and the
// routing order (descending HPWL, stable). Everything the router derives
// from the placement before touching congestion state lives here, so two
// evaluations that share a post-operator placement (same operator-gene
// prefix) can share one Geometry and skip straight to congestion-aware
// pattern routing.
//
// A Geometry is arena-independent — it stores net IDs and DBU points, not
// pointers into any particular layout clone — and immutable once built, so
// it is safe to cache in a cross-worker memo and use concurrently.
type Geometry struct {
	// NetIDs lists the routable nets (≥2 terminals, driver present) in
	// netlist order.
	NetIDs []int32
	// Order holds indices into NetIDs in routing order: descending
	// half-perimeter wirelength, ties kept in netlist order (long nets
	// first — they need the scarce upper layers).
	Order []int32
	// Conns[i] is NetIDs[i]'s two-pin connection sequence.
	Conns [][]Conn
	// BBox[i] is the bounding box of NetIDs[i]'s located terminals. Every
	// L/Z candidate waypoint of every connection lies inside it, so it
	// bounds the GCells the net's routing can ever read or write.
	BBox []geom.Rect
}

// Conn is one two-pin connection between DBU terminal points.
type Conn struct {
	A, B geom.Point
}

// BuildGeometry computes the routing geometry of the layout's current
// placement. The decomposition reproduces the router's historical
// Prim-style nearest-terminal order bit-identically.
func BuildGeometry(l *layout.Layout) *Geometry {
	nl := l.Netlist
	g := &Geometry{}
	for _, n := range nl.Nets {
		if n.NumTerms() >= 2 && n.HasDriver() {
			g.NetIDs = append(g.NetIDs, int32(n.ID))
		}
	}
	g.Conns = make([][]Conn, len(g.NetIDs))
	g.BBox = make([]geom.Rect, len(g.NetIDs))
	g.Order = make([]int32, len(g.NetIDs))
	hpwl := make([]int64, len(g.NetIDs))
	for i, id := range g.NetIDs {
		n := nl.Nets[id]
		g.Order[i] = int32(i)
		hpwl[i] = l.NetHPWL(n)
		pts := l.NetTermPoints(n)
		if len(pts) < 2 {
			continue
		}
		bb := geom.Rect{Lo: pts[0], Hi: pts[0]}
		for _, p := range pts[1:] {
			if p.X < bb.Lo.X {
				bb.Lo.X = p.X
			}
			if p.Y < bb.Lo.Y {
				bb.Lo.Y = p.Y
			}
			if p.X > bb.Hi.X {
				bb.Hi.X = p.X
			}
			if p.Y > bb.Hi.Y {
				bb.Hi.Y = p.Y
			}
		}
		g.BBox[i] = bb
		g.Conns[i] = decompose(pts)
	}
	sort.SliceStable(g.Order, func(a, b int) bool {
		return hpwl[g.Order[a]] > hpwl[g.Order[b]]
	})
	return g
}

// largeNetTerms bounds the exact Prim decomposition. The nearest-pair scan
// is cubic in terminal count, which is invisible for data nets (fanout ≤ a
// few dozen) but makes a SoC-scale clock net — thousands of register clock
// pins on one net — the single slowest step of the whole evaluation. Above
// this bound the decomposition switches to the Morton-window tree.
const largeNetTerms = 96

// mortonWindow is how many Morton-order predecessors a terminal considers
// when choosing its tree parent.
const mortonWindow = 8

// decompose turns a net's terminal points (driver first) into its two-pin
// connection sequence: exact Prim for ordinary nets, and for huge-fanout
// nets (clock and other die-spanning trees) a Morton-ordered window tree —
// terminals sort along the Z-order curve and each connects to its nearest
// predecessor within a fixed window. Z-order preserves spatial locality,
// so the tree stays near the MST's wirelength at O(n log n) instead of the
// exact scan's O(n³). Both paths are pure functions of the point list, so
// determinism and Geometry immutability are unaffected.
func decompose(pts []geom.Point) []Conn {
	if len(pts) > largeNetTerms {
		return decomposeMorton(pts)
	}
	// Prim-style: start from the driver (pts[0]), connect the nearest
	// unconnected terminal to its nearest connected terminal.
	connected := []geom.Point{pts[0]}
	remaining := append([]geom.Point(nil), pts[1:]...)
	conns := make([]Conn, 0, len(remaining))
	for len(remaining) > 0 {
		bi, bj, best := 0, 0, int64(1)<<62
		for ri, p := range remaining {
			for ci, q := range connected {
				if d := p.ManhattanDist(q); d < best {
					bi, bj, best = ri, ci, d
				}
			}
		}
		conns = append(conns, Conn{A: connected[bj], B: remaining[bi]})
		connected = append(connected, remaining[bi])
		remaining = append(remaining[:bi], remaining[bi+1:]...)
	}
	return conns
}

// decomposeMorton builds the large-net window tree. Sinks sort by Morton
// code (ties by X, Y, then original terminal order, so equal points cannot
// reorder nondeterministically); the driver leads the sequence and each
// sink connects to the nearest of its mortonWindow predecessors.
func decomposeMorton(pts []geom.Point) []Conn {
	type term struct {
		p    geom.Point
		code uint64
		idx  int
	}
	sinks := make([]term, len(pts)-1)
	for i, p := range pts[1:] {
		sinks[i] = term{p: p, code: mortonCode(p), idx: i}
	}
	sort.Slice(sinks, func(a, b int) bool {
		sa, sb := sinks[a], sinks[b]
		if sa.code != sb.code {
			return sa.code < sb.code
		}
		if sa.p.X != sb.p.X {
			return sa.p.X < sb.p.X
		}
		if sa.p.Y != sb.p.Y {
			return sa.p.Y < sb.p.Y
		}
		return sa.idx < sb.idx
	})
	// chain[0] is the driver; chain[1+i] is the i-th sorted sink.
	conns := make([]Conn, len(sinks))
	for i, s := range sinks {
		lo := i + 1 - mortonWindow
		if lo < 0 {
			lo = 0
		}
		bp, best := pts[0], s.p.ManhattanDist(pts[0])
		for j := lo; j < i; j++ {
			if d := s.p.ManhattanDist(sinks[j].p); d < best {
				bp, best = sinks[j].p, d
			}
		}
		conns[i] = Conn{A: bp, B: s.p}
	}
	return conns
}

// mortonCode interleaves the low 32 bits of X and Y (clamped at zero) into
// the Z-order curve index of the point.
func mortonCode(p geom.Point) uint64 {
	return spreadBits(clamp32(p.X))<<1 | spreadBits(clamp32(p.Y))
}

func clamp32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(v)
}

// spreadBits spaces the 32 bits of v one apart (the classic Morton spread).
func spreadBits(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}
