package route

import (
	"sort"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// Geometry is the placement-derived routing precomputation for one layout
// state: the routable-net list, each net's two-pin connection decomposition
// (nearest-terminal spanning tree), its terminal bounding box, and the
// routing order (descending HPWL, stable). Everything the router derives
// from the placement before touching congestion state lives here, so two
// evaluations that share a post-operator placement (same operator-gene
// prefix) can share one Geometry and skip straight to congestion-aware
// pattern routing.
//
// A Geometry is arena-independent — it stores net IDs and DBU points, not
// pointers into any particular layout clone — and immutable once built, so
// it is safe to cache in a cross-worker memo and use concurrently.
type Geometry struct {
	// NetIDs lists the routable nets (≥2 terminals, driver present) in
	// netlist order.
	NetIDs []int32
	// Order holds indices into NetIDs in routing order: descending
	// half-perimeter wirelength, ties kept in netlist order (long nets
	// first — they need the scarce upper layers).
	Order []int32
	// Conns[i] is NetIDs[i]'s two-pin connection sequence.
	Conns [][]Conn
	// BBox[i] is the bounding box of NetIDs[i]'s located terminals. Every
	// L/Z candidate waypoint of every connection lies inside it, so it
	// bounds the GCells the net's routing can ever read or write.
	BBox []geom.Rect
}

// Conn is one two-pin connection between DBU terminal points.
type Conn struct {
	A, B geom.Point
}

// BuildGeometry computes the routing geometry of the layout's current
// placement. The decomposition reproduces the router's historical
// Prim-style nearest-terminal order bit-identically.
func BuildGeometry(l *layout.Layout) *Geometry {
	nl := l.Netlist
	g := &Geometry{}
	for _, n := range nl.Nets {
		if n.NumTerms() >= 2 && n.HasDriver() {
			g.NetIDs = append(g.NetIDs, int32(n.ID))
		}
	}
	g.Conns = make([][]Conn, len(g.NetIDs))
	g.BBox = make([]geom.Rect, len(g.NetIDs))
	g.Order = make([]int32, len(g.NetIDs))
	hpwl := make([]int64, len(g.NetIDs))
	for i, id := range g.NetIDs {
		n := nl.Nets[id]
		g.Order[i] = int32(i)
		hpwl[i] = l.NetHPWL(n)
		pts := l.NetTermPoints(n)
		if len(pts) < 2 {
			continue
		}
		bb := geom.Rect{Lo: pts[0], Hi: pts[0]}
		for _, p := range pts[1:] {
			if p.X < bb.Lo.X {
				bb.Lo.X = p.X
			}
			if p.Y < bb.Lo.Y {
				bb.Lo.Y = p.Y
			}
			if p.X > bb.Hi.X {
				bb.Hi.X = p.X
			}
			if p.Y > bb.Hi.Y {
				bb.Hi.Y = p.Y
			}
		}
		g.BBox[i] = bb
		// Prim-style: start from the driver (pts[0]), connect the nearest
		// unconnected terminal to its nearest connected terminal.
		connected := []geom.Point{pts[0]}
		remaining := append([]geom.Point(nil), pts[1:]...)
		conns := make([]Conn, 0, len(remaining))
		for len(remaining) > 0 {
			bi, bj, best := 0, 0, int64(1)<<62
			for ri, p := range remaining {
				for ci, q := range connected {
					if d := p.ManhattanDist(q); d < best {
						bi, bj, best = ri, ci, d
					}
				}
			}
			conns = append(conns, Conn{A: connected[bj], B: remaining[bi]})
			connected = append(connected, remaining[bi])
			remaining = append(remaining[:bi], remaining[bi+1:]...)
		}
		g.Conns[i] = conns
	}
	sort.SliceStable(g.Order, func(a, b int) bool {
		return hpwl[g.Order[a]] > hpwl[g.Order[b]]
	})
	return g
}
