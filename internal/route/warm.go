package route

import (
	"math/rand"

	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// WarmStats reports what a warm-started routing reused.
type WarmStats struct {
	// Replayed nets had their donor route copied verbatim.
	Replayed int
	// Rerouted nets were pattern-routed fresh (dirty nets plus promotions).
	Rerouted int
	// Promoted counts clean nets that still had to reroute because their
	// terminal bounding box intersected the accumulated change region.
	Promoted int
}

// Warm routes l by replaying a donor result's routes for every net whose
// routing decision provably cannot have changed, and pattern-routing only
// the rest. The caller marks dirty[netID] for every net with a terminal on
// a cell that moved between the donor's placement and l's.
//
// The result is bit-identical to RouteWithGeometry(l, opt, geo). The
// argument is decision equality along the main routing loop:
//
//   - Nets route in descending-HPWL order; a clean (not dirty) net has the
//     same terminals, hence the same HPWL and the same position relative
//     to every other clean net, so the replayed loop visits clean nets in
//     the donor's relative order.
//   - The router's only inputs besides geometry are Usage/Cap over the
//     GCells of the net's candidate paths, all of which lie inside the
//     endpoint rectangles of its two-pin connections (see touchesDelta).
//     A change region Δ — a per-GCell mask —
//     covers every cell where usage can differ from the donor run at the
//     equivalent point: it starts as the donor paths of all dirty nets
//     (their usage is absent or different here) and grows by the old and
//     new paths of every net routed fresh. Segments are axis-aligned and
//     commit marks exactly the cells on the straight run between segment
//     endpoints, so Δ stays thin even for die-spanning nets like the
//     clock tree. A clean net whose connection rectangles all miss Δ
//     therefore reads exactly the usage the donor's run read at its turn
//     and must decide identically — its donor route is committed
//     verbatim. Anything else reroutes, which only grows Δ and keeps the
//     invariant.
//   - Rip-up passes then run on a usage/route state identical to the cold
//     run's, with a fresh rng(seed) — the shuffle draws the same stream.
//
// Preconditions (checked; failing any returns a nil Result and the caller
// falls back to a cold route): the donor routed the same netlist under an
// exactly equal NDR scale and grid, and had zero rip-up victims — a donor
// whose final routes were reshaped by rip-up no longer reflects the usage
// each net saw at its main-loop turn, so the equivalence cannot be argued.
func Warm(l *layout.Layout, opt Options, geo *Geometry, donor *Result, dirty []bool) (*Result, WarmStats, error) {
	var st WarmStats
	if err := fault.Hit(fault.Route); err != nil {
		return nil, st, err
	}
	opt = opt.withDefaults()
	lib := l.Lib()
	if lib.NumLayers() < 2 || donor == nil || donor.Victims != 0 ||
		len(donor.NetRoutes) != len(l.Netlist.Nets) || len(dirty) != len(l.Netlist.Nets) {
		return nil, st, nil
	}
	if len(donor.NDRScale) != len(l.NDR.Scale) {
		return nil, st, nil
	}
	for i, s := range donor.NDRScale {
		if s != l.NDR.Scale[i] {
			return nil, st, nil
		}
	}
	grid := buildGrid(l, opt)
	if grid != donor.Grid {
		return nil, st, nil
	}

	defer routeSeconds.Start().Stop()
	res := &Result{
		Grid:      grid,
		NetRoutes: make([]*NetRoute, len(l.Netlist.Nets)),
		Core:      l.CoreRect(),
		NDRScale:  append([]float64(nil), l.NDR.Scale...),
	}
	n := grid.Cols * grid.Rows
	for li := 0; li < lib.NumLayers(); li++ {
		res.Usage = append(res.Usage, make([]float64, n))
		res.Cap = append(res.Cap, make([]float64, n))
	}
	fillCapacity(l, res)
	r := &router{l: l, res: res, geo: geo, rng: rand.New(rand.NewSource(opt.Seed))}

	// Δ starts as the donor paths of every dirty net: wherever those
	// committed usage in the donor run, usage here is already different —
	// regardless of where the dirty net lands in the order.
	delta := newDeltaMask(grid)
	for _, id := range geo.NetIDs {
		if dirty[id] {
			if dnr := donor.NetRoutes[id]; dnr != nil {
				delta.addSegments(dnr.Segments)
			}
		}
	}

	for _, oi := range geo.Order {
		id := geo.NetIDs[oi]
		dnr := donor.NetRoutes[id]
		clean := !dirty[id] && dnr != nil
		if clean && !r.touchesDelta(delta, oi) {
			r.replay(int(id), dnr)
			st.Replayed++
			continue
		}
		if clean {
			st.Promoted++
		}
		if len(geo.Conns[oi]) == 0 {
			continue
		}
		r.routeGeoNet(int(oi))
		st.Rerouted++
		nr := res.NetRoutes[id]
		if clean && nr != nil && sameSegments(nr.Segments, dnr.Segments) {
			// The promoted net re-decided identically: it commits exactly
			// the increments the donor run committed at this turn, so the
			// usage-difference set — and therefore Δ — is unchanged. This
			// is what stops one promotion from cascading down a chain of
			// spatially adjacent nets.
			continue
		}
		if clean {
			// Its donor usage is not being committed where the donor
			// committed it, so the donor path joins Δ too (dirty nets'
			// donor paths are in Δ from initialization).
			delta.addSegments(dnr.Segments)
		}
		if nr != nil {
			delta.addSegments(nr.Segments)
		}
	}
	for p := 0; p < opt.RipupPasses; p++ {
		r.ripupAndReroute()
	}
	res.finalize()
	return res, st, nil
}

func sameSegments(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// touchesDelta reports whether routing the net could read a cell of Δ.
// The router evaluates L- and Z-shaped candidates per two-pin connection,
// all of whose waypoints lie inside the connection's endpoint rectangle,
// so the net's true read set is the union of its per-connection
// rectangles — much tighter than the whole-net terminal bounding box for
// multi-terminal nets like the clock tree (the net bbox serves as a cheap
// pre-filter only).
func (r *router) touchesDelta(delta *deltaMask, oi int32) bool {
	if !delta.overlaps(gcellRectOf(r.res.Grid, r.geo.BBox[oi])) {
		return false
	}
	for _, c := range r.geo.Conns[oi] {
		q := gcellRectOf(r.res.Grid, geom.Rect{
			Lo: geom.Pt(minI64(c.A.X, c.B.X), minI64(c.A.Y, c.B.Y)),
			Hi: geom.Pt(maxI64(c.A.X, c.B.X), maxI64(c.A.Y, c.B.Y)),
		})
		if delta.overlaps(q) {
			return true
		}
	}
	return false
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// replay commits a donor net route verbatim: usage is booked along every
// segment exactly as commit would, and the route record is copied. The
// donor's segment slice is shared (donor results are immutable; a later
// rip-up of this net replaces the NetRoute rather than mutating segments),
// while LenByMetal is copied because uncommit zeroes it in place.
func (r *router) replay(id int, dnr *NetRoute) {
	nr := &NetRoute{
		Net:        r.l.Netlist.Nets[id],
		Segments:   dnr.Segments,
		LenByMetal: append([]int64(nil), dnr.LenByMetal...),
	}
	for _, s := range nr.Segments {
		scale := r.l.NDR.LayerScale(s.Metal)
		r.walk(s.A, s.B, func(idx int) {
			r.res.Usage[s.Metal-1][idx] += scale
		})
	}
	r.res.NetRoutes[id] = nr
}

// gcellRect is an inclusive GCell-index rectangle.
type gcellRect struct {
	c0, r0, c1, r1 int
}

// gcellRectOf converts a DBU rectangle to the inclusive GCell rectangle
// containing it (AtDBU is monotonic and clamped, so any DBU point inside
// the rectangle maps into it).
func gcellRectOf(g Grid, bb geom.Rect) gcellRect {
	c0, r0 := g.AtDBU(bb.Lo)
	c1, r1 := g.AtDBU(bb.Hi)
	return gcellRect{c0: c0, r0: r0, c1: c1, r1: r1}
}

// deltaMask is the change region Δ: one bit per GCell. Segment-granular
// (each axis-aligned segment marks only the cells on its straight run), so
// a die-spanning net contributes thin lines rather than its bounding box.
type deltaMask struct {
	g Grid
	m []bool
}

func newDeltaMask(g Grid) *deltaMask {
	return &deltaMask{g: g, m: make([]bool, g.Cols*g.Rows)}
}

// addSegments marks the GCells of every straight run — exactly the cells
// walk visits when committing or uncommitting these segments.
func (d *deltaMask) addSegments(segs []Segment) {
	for _, s := range segs {
		c0, r0 := d.g.AtDBU(s.A)
		c1, r1 := d.g.AtDBU(s.B)
		if c1 < c0 {
			c0, c1 = c1, c0
		}
		if r1 < r0 {
			r0, r1 = r1, r0
		}
		for r := r0; r <= r1; r++ {
			row := d.m[r*d.g.Cols : (r+1)*d.g.Cols]
			for c := c0; c <= c1; c++ {
				row[c] = true
			}
		}
	}
}

// overlaps reports whether any GCell of the inclusive rectangle is marked.
func (d *deltaMask) overlaps(q gcellRect) bool {
	if q.c1 < q.c0 || q.r1 < q.r0 {
		return false
	}
	for r := q.r0; r <= q.r1; r++ {
		row := d.m[r*d.g.Cols : (r+1)*d.g.Cols]
		for c := q.c0; c <= q.c1; c++ {
			if row[c] {
				return true
			}
		}
	}
	return false
}
