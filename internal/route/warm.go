package route

import (
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// WarmStats reports what a warm-started routing reused.
type WarmStats struct {
	// Replayed nets had their donor route copied verbatim.
	Replayed int
	// Rerouted nets were pattern-routed fresh (dirty nets plus promotions).
	Rerouted int
	// Promoted counts clean nets that still had to reroute because their
	// terminal bounding box intersected the accumulated change region.
	Promoted int
	// ChangedNets (filled only on success) marks every net whose timing
	// characterization inputs may differ from the donor evaluation's:
	// its route segments differ, or its route crosses the accumulated
	// change region Δ so the congestion it reads may have moved. Nets
	// outside this mask provably see identical LenByMetal and identical
	// usage along their route — delta-STA re-propagates only their cones.
	ChangedNets []bool
	// ChangedCount is the number of true entries in ChangedNets.
	ChangedCount int
	// Decline names the failed precondition when Warm returns a nil
	// Result ("" on success): "layers", "no_donor", "victims", "netlist",
	// "ndr", or "grid". The same reasons feed the
	// gdsiiguard_route_warm_decline_total metric.
	Decline string
}

// Warm routes l by replaying a donor result's routes for every net whose
// routing decision provably cannot have changed, and pattern-routing only
// the rest. The caller marks dirty[netID] for every net with a terminal on
// a cell that moved between the donor's placement and l's.
//
// The result is bit-identical to RouteWithGeometry(l, opt, geo). The
// argument is decision equality along the main routing loop:
//
//   - Nets route in descending-HPWL order; a clean (not dirty) net has the
//     same terminals, hence the same HPWL and the same position relative
//     to every other clean net, so the replayed loop visits clean nets in
//     the donor's relative order.
//   - The router's only inputs besides geometry are Usage/Cap over the
//     GCells of the net's candidate paths, all of which lie inside the
//     endpoint rectangles of its two-pin connections (see touchesDelta).
//     A change region Δ — a per-GCell mask —
//     covers every cell where usage can differ from the donor run at the
//     equivalent point: it starts as the donor paths of all dirty nets
//     (their usage is absent or different here) and grows by the old and
//     new paths of every net routed fresh. Segments are axis-aligned and
//     commit marks exactly the cells on the straight run between segment
//     endpoints, so Δ stays thin even for die-spanning nets like the
//     clock tree. A clean net whose connection rectangles all miss Δ
//     therefore reads exactly the usage the donor's run read at its turn
//     and must decide identically — its donor route is committed
//     verbatim. Anything else reroutes, which only grows Δ and keeps the
//     invariant.
//   - Rip-up passes then run on a usage/route state identical to the cold
//     run's; the victim order is a per-net hash of (seed, net ID), so it is
//     a pure function of the victim set and matches the cold run's.
//
// Preconditions (checked; failing any returns a nil Result and the caller
// falls back to a cold route): the donor routed the same netlist under an
// exactly equal NDR scale and grid, and had zero rip-up victims — a donor
// whose final routes were reshaped by rip-up no longer reflects the usage
// each net saw at its main-loop turn, so the equivalence cannot be argued.
func Warm(l *layout.Layout, opt Options, geo *Geometry, donor *Result, dirty []bool) (*Result, WarmStats, error) {
	var st WarmStats
	if err := fault.Hit(fault.Route); err != nil {
		return nil, st, err
	}
	opt = opt.withDefaults()
	lib := l.Lib()
	decline := func(reason string) (*Result, WarmStats, error) {
		st.Decline = reason
		CountWarmDecline(reason)
		return nil, st, nil
	}
	switch {
	case lib.NumLayers() < 2:
		return decline("layers")
	case donor == nil:
		return decline("no_donor")
	case donor.Victims != 0:
		return decline("victims")
	case len(donor.NetRoutes) != len(l.Netlist.Nets) || len(dirty) != len(l.Netlist.Nets):
		return decline("netlist")
	case len(donor.NDRScale) != len(l.NDR.Scale):
		return decline("ndr")
	}
	for i, s := range donor.NDRScale {
		if s != l.NDR.Scale[i] {
			return decline("ndr")
		}
	}
	grid := buildGrid(l, opt)
	if grid != donor.Grid {
		return decline("grid")
	}

	defer routeSeconds.Start().Stop()
	res := &Result{
		Grid:      grid,
		NetRoutes: make([]*NetRoute, len(l.Netlist.Nets)),
		Core:      l.CoreRect(),
		NDRScale:  append([]float64(nil), l.NDR.Scale...),
	}
	n := grid.Cols * grid.Rows
	for li := 0; li < lib.NumLayers(); li++ {
		res.Usage = append(res.Usage, make([]float64, n))
		res.Cap = append(res.Cap, make([]float64, n))
	}
	fillCapacity(l, res)
	r := &router{l: l, res: res, geo: geo, seed: opt.Seed}

	// Δ starts as the donor paths of every dirty net: wherever those
	// committed usage in the donor run, usage here is already different —
	// regardless of where the dirty net lands in the order.
	delta := newDeltaMask(grid)
	for _, id := range geo.NetIDs {
		if dirty[id] {
			if dnr := donor.NetRoutes[id]; dnr != nil {
				delta.addSegments(dnr.Segments)
			}
		}
	}

	for _, oi := range geo.Order {
		id := geo.NetIDs[oi]
		dnr := donor.NetRoutes[id]
		clean := !dirty[id] && dnr != nil
		if clean && !r.touchesDelta(delta, oi) {
			r.replay(int(id), dnr)
			st.Replayed++
			continue
		}
		if clean {
			st.Promoted++
		}
		if len(geo.Conns[oi]) == 0 {
			continue
		}
		r.routeGeoNet(int(oi))
		st.Rerouted++
		nr := res.NetRoutes[id]
		if clean && nr != nil && sameSegments(nr.Segments, dnr.Segments) {
			// The promoted net re-decided identically: it commits exactly
			// the increments the donor run committed at this turn, so the
			// usage-difference set — and therefore Δ — is unchanged. This
			// is what stops one promotion from cascading down a chain of
			// spatially adjacent nets.
			continue
		}
		if clean {
			// Its donor usage is not being committed where the donor
			// committed it, so the donor path joins Δ too (dirty nets'
			// donor paths are in Δ from initialization).
			delta.addSegments(dnr.Segments)
		}
		if nr != nil {
			delta.addSegments(nr.Segments)
		}
	}
	// Rip-up changes usage too: the ripped nets' old paths and their new
	// paths join Δ, keeping the invariant that Δ covers every GCell whose
	// final usage can differ from the donor run's.
	r.track = delta
	for p := 0; p < opt.RipupPasses; p++ {
		r.ripupAndReroute()
	}
	res.finalize()

	// Per-net change mask for delta-STA: a net's timing inputs are its
	// LenByMetal (a function of its segments) and the usage along its
	// route (NetCongestion). Identical segments + a route that misses Δ
	// means both are provably identical to the donor evaluation's.
	st.ChangedNets = make([]bool, len(l.Netlist.Nets))
	for id := range st.ChangedNets {
		dnr, nnr := donor.NetRoutes[id], res.NetRoutes[id]
		changed := false
		switch {
		case dnr == nil && nnr == nil:
		case dnr == nil || nnr == nil:
			changed = true
		case !sameSegments(nnr.Segments, dnr.Segments):
			changed = true
		case delta.touchesSegments(nnr.Segments):
			changed = true
		}
		if changed {
			st.ChangedNets[id] = true
			st.ChangedCount++
		}
	}
	return res, st, nil
}

func sameSegments(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true // replayed nets share the donor's segment slice
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// touchesDelta reports whether routing the net could read a cell of Δ.
// The router evaluates L- and Z-shaped candidates per two-pin connection,
// whose waypoints lie inside the connection's read rectangle (the endpoint
// rectangle, padded one GCell sideways for degenerate connections whose
// candidates include U-detours), so the net's true read set is the union
// of its per-connection read rectangles — much tighter than the whole-net
// terminal bounding box for multi-terminal nets like the clock tree (the
// net bbox, padded the same way, serves as a cheap pre-filter only).
func (r *router) touchesDelta(delta *deltaMask, oi int32) bool {
	bb := gcellRectOf(r.res.Grid, r.geo.BBox[oi])
	bb = padRect(r.res.Grid, bb, 1, 1)
	if !delta.overlaps(bb) {
		return false
	}
	for _, c := range r.geo.Conns[oi] {
		if delta.overlaps(connReadRect(r.res.Grid, c)) {
			return true
		}
	}
	return false
}

// connReadRect is the inclusive GCell rectangle routing the connection can
// read or write: the endpoint rectangle, padded one GCell perpendicular to
// a degenerate (straight-line) connection to cover its U-detour candidates
// (see routeTwoPin).
func connReadRect(g Grid, c Conn) gcellRect {
	q := gcellRectOf(g, geom.Rect{
		Lo: geom.Pt(minI64(c.A.X, c.B.X), minI64(c.A.Y, c.B.Y)),
		Hi: geom.Pt(maxI64(c.A.X, c.B.X), maxI64(c.A.Y, c.B.Y)),
	})
	switch {
	case c.A.X == c.B.X && absInt64(c.A.Y-c.B.Y) > g.CellH:
		q = padRect(g, q, 1, 0)
	case c.A.Y == c.B.Y && absInt64(c.A.X-c.B.X) > g.CellW:
		q = padRect(g, q, 0, 1)
	}
	return q
}

// padRect grows the rectangle by dc columns and dr rows on each side,
// clamped to the grid.
func padRect(g Grid, q gcellRect, dc, dr int) gcellRect {
	q.c0, q.r0 = g.Clamp(q.c0-dc, q.r0-dr)
	q.c1, q.r1 = g.Clamp(q.c1+dc, q.r1+dr)
	return q
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// replay commits a donor net route verbatim: usage is booked along every
// segment exactly as commit would, and the route record is copied. The
// donor's segment slice is shared (donor results are immutable; a later
// rip-up of this net replaces the NetRoute rather than mutating segments),
// while LenByMetal is copied because uncommit zeroes it in place.
func (r *router) replay(id int, dnr *NetRoute) {
	nr := &NetRoute{
		Net:        r.l.Netlist.Nets[id],
		Segments:   dnr.Segments,
		LenByMetal: append([]int64(nil), dnr.LenByMetal...),
	}
	for _, s := range nr.Segments {
		scale := r.l.NDR.LayerScale(s.Metal)
		r.walk(s.A, s.B, func(idx int) {
			r.res.Usage[s.Metal-1][idx] += scale
		})
	}
	r.res.NetRoutes[id] = nr
}

// gcellRect is an inclusive GCell-index rectangle.
type gcellRect struct {
	c0, r0, c1, r1 int
}

// gcellRectOf converts a DBU rectangle to the inclusive GCell rectangle
// containing it (AtDBU is monotonic and clamped, so any DBU point inside
// the rectangle maps into it).
func gcellRectOf(g Grid, bb geom.Rect) gcellRect {
	c0, r0 := g.AtDBU(bb.Lo)
	c1, r1 := g.AtDBU(bb.Hi)
	return gcellRect{c0: c0, r0: r0, c1: c1, r1: r1}
}

// deltaMask is the change region Δ: one bit per GCell. Segment-granular
// (each axis-aligned segment marks only the cells on its straight run), so
// a die-spanning net contributes thin lines rather than its bounding box.
type deltaMask struct {
	g Grid
	m []bool
}

func newDeltaMask(g Grid) *deltaMask {
	return &deltaMask{g: g, m: make([]bool, g.Cols*g.Rows)}
}

// addSegments marks the GCells of every straight run — exactly the cells
// walk visits when committing or uncommitting these segments.
func (d *deltaMask) addSegments(segs []Segment) {
	for _, s := range segs {
		c0, r0 := d.g.AtDBU(s.A)
		c1, r1 := d.g.AtDBU(s.B)
		if c1 < c0 {
			c0, c1 = c1, c0
		}
		if r1 < r0 {
			r0, r1 = r1, r0
		}
		for r := r0; r <= r1; r++ {
			row := d.m[r*d.g.Cols : (r+1)*d.g.Cols]
			for c := c0; c <= c1; c++ {
				row[c] = true
			}
		}
	}
}

// touchesSegments reports whether any GCell on the straight runs of the
// segments is marked — exactly the cells NetCongestion reads.
func (d *deltaMask) touchesSegments(segs []Segment) bool {
	for _, s := range segs {
		c0, r0 := d.g.AtDBU(s.A)
		c1, r1 := d.g.AtDBU(s.B)
		if c1 < c0 {
			c0, c1 = c1, c0
		}
		if r1 < r0 {
			r0, r1 = r1, r0
		}
		for r := r0; r <= r1; r++ {
			row := d.m[r*d.g.Cols : (r+1)*d.g.Cols]
			for c := c0; c <= c1; c++ {
				if row[c] {
					return true
				}
			}
		}
	}
	return false
}

// overlaps reports whether any GCell of the inclusive rectangle is marked.
func (d *deltaMask) overlaps(q gcellRect) bool {
	if q.c1 < q.c0 || q.r1 < q.r0 {
		return false
	}
	for r := q.r0; r <= q.r1; r++ {
		row := d.m[r*d.g.Cols : (r+1)*d.g.Cols]
		for c := q.c0; c <= q.c1; c++ {
			if row[c] {
				return true
			}
		}
	}
	return false
}
