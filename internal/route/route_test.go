package route

import (
	"fmt"
	"math"
	"testing"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
)

// meshNetlist builds chains with cross-links for routing pressure.
func meshNetlist(t testing.TB, chains, stages int) *netlist.Netlist {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New(fmt.Sprintf("mesh_%dx%d", chains, stages), lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	var lastNets []*netlist.Net
	for c := 0; c < chains; c++ {
		inPort, _ := nl.AddPort(fmt.Sprintf("in%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("m%d_in", c))
		_ = nl.ConnectPort(inPort, prev)
		for s := 0; s < stages; s++ {
			master := "INV_X1"
			if s%3 == 1 {
				master = "NAND2_X1"
			}
			inst, err := nl.AddInstance(fmt.Sprintf("m%d_g%d", c, s), master)
			if err != nil {
				t.Fatal(err)
			}
			next, _ := nl.AddNet(fmt.Sprintf("m%d_n%d", c, s))
			if master == "NAND2_X1" {
				_ = nl.Connect(inst, "A1", prev)
				// cross-link to previous chain for 2-D routing demand
				other := prev
				if c > 0 && s < len(lastNets) {
					other = lastNets[s]
				}
				_ = nl.Connect(inst, "A2", other)
				_ = nl.Connect(inst, "ZN", next)
			} else {
				_ = nl.Connect(inst, "A", prev)
				_ = nl.Connect(inst, "ZN", next)
			}
			prev = next
		}
		dff, _ := nl.AddInstance(fmt.Sprintf("m%d_dff", c), "DFF_X1")
		q, _ := nl.AddNet(fmt.Sprintf("m%d_q", c))
		_ = nl.Connect(dff, "D", prev)
		_ = nl.Connect(dff, "CK", clkNet)
		_ = nl.Connect(dff, "Q", q)
		outPort, _ := nl.AddPort(fmt.Sprintf("out%d", c), netlist.Out)
		_ = nl.ConnectPort(outPort, q)
		var nets []*netlist.Net
		for s := 0; s < stages; s++ {
			nets = append(nets, nl.Net(fmt.Sprintf("m%d_n%d", c, s)))
		}
		lastNets = nets
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func placedMesh(t testing.TB, chains, stages int, util float64) *layout.Layout {
	t.Helper()
	nl := meshNetlist(t, chains, stages)
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: util, RefinePasses: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRouteBasics(t *testing.T) {
	l := placedMesh(t, 6, 20, 0.6)
	res, err := Route(l, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	routed := 0
	for _, nr := range res.NetRoutes {
		if nr == nil {
			continue
		}
		routed++
		if len(nr.Segments) == 0 && nr.Net.NumTerms() >= 2 {
			// zero-length connections are possible when terminals share a
			// point, but multi-terminal nets normally produce segments
			continue
		}
		for _, s := range nr.Segments {
			if s.A.X != s.B.X && s.A.Y != s.B.Y {
				t.Fatalf("non-axis-aligned segment %v on net %s", s, nr.Net.Name)
			}
			if s.Metal < 1 || s.Metal > l.Lib().NumLayers() {
				t.Fatalf("segment layer %d out of range", s.Metal)
			}
		}
	}
	if routed == 0 {
		t.Fatal("no nets routed")
	}
	if res.TotalWL <= 0 {
		t.Error("zero total wirelength")
	}
}

func TestRouteWirelengthMatchesSegments(t *testing.T) {
	l := placedMesh(t, 4, 12, 0.6)
	res, err := Route(l, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, nr := range res.NetRoutes {
		if nr == nil {
			continue
		}
		var segSum int64
		for _, s := range nr.Segments {
			segSum += s.Len()
		}
		if segSum != nr.TotalLen() {
			t.Fatalf("net %s: segments %d vs LenByMetal %d", nr.Net.Name, segSum, nr.TotalLen())
		}
		// Routed length at least the HPWL of the net.
		if hp := l.NetHPWL(nr.Net); segSum < hp {
			t.Fatalf("net %s routed %d < HPWL %d", nr.Net.Name, segSum, hp)
		}
	}
}

func TestUsageConservation(t *testing.T) {
	l := placedMesh(t, 6, 20, 0.6)
	res, err := Route(l, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for li := range res.Usage {
		for i, u := range res.Usage[li] {
			if u < -1e-9 {
				t.Fatalf("negative usage %g at layer %d gcell %d", u, li+1, i)
			}
		}
	}
	// Free tracks over the whole core equal per-gcell accounting.
	whole := res.FreeTracksInRect(l.CoreRect())
	total := res.TotalFreeTracks()
	if math.Abs(whole-total)/total > 0.05 {
		t.Errorf("FreeTracksInRect(core) = %g vs TotalFreeTracks %g", whole, total)
	}
}

func TestNDRScalingConsumesMoreTracks(t *testing.T) {
	base := placedMesh(t, 6, 20, 0.6)
	res1, err := Route(base, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	scaled := base.Clone()
	for i := range scaled.NDR.Scale {
		scaled.NDR.Scale[i] = 1.5
	}
	res2, err := Route(scaled, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalFreeTracks() >= res1.TotalFreeTracks() {
		t.Errorf("1.5x NDR should consume more tracks: free %g vs %g",
			res2.TotalFreeTracks(), res1.TotalFreeTracks())
	}
}

func TestCongestionOverflowAtHighUtil(t *testing.T) {
	// At very high utilization and a tiny grid, some overflow is expected;
	// the router must report it rather than fail.
	l := placedMesh(t, 10, 30, 0.92)
	res, err := Route(l, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow < 0 {
		t.Error("negative overflow")
	}
}

func TestFreeTracksInRectSubsetMonotone(t *testing.T) {
	l := placedMesh(t, 6, 20, 0.6)
	res, err := Route(l, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	core := l.CoreRect()
	half := geom.R(core.Lo.X, core.Lo.Y, core.Lo.X+core.W()/2, core.Hi.Y)
	quarter := geom.R(core.Lo.X, core.Lo.Y, core.Lo.X+core.W()/4, core.Hi.Y)
	fHalf := res.FreeTracksInRect(half)
	fQuarter := res.FreeTracksInRect(quarter)
	if fQuarter > fHalf {
		t.Errorf("quarter free tracks %g > half %g", fQuarter, fHalf)
	}
	if res.FreeTracksInRect(geom.Rect{}) != 0 {
		t.Error("empty rect should have zero free tracks")
	}
}

func TestClockNetsUseMidStack(t *testing.T) {
	l := placedMesh(t, 4, 10, 0.6)
	res, err := Route(l, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	clk := l.Netlist.Net("clk")
	nr := res.NetRoutes[clk.ID]
	if nr == nil {
		t.Fatal("clock not routed")
	}
	for _, s := range nr.Segments {
		if s.Metal < 5 || s.Metal > 6 {
			t.Errorf("clock segment on metal%d, want 5/6", s.Metal)
		}
	}
}

func TestDeterministicRouting(t *testing.T) {
	l := placedMesh(t, 4, 12, 0.6)
	res1, err := Route(l, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Route(l, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalWL != res2.TotalWL || res1.Overflow != res2.Overflow {
		t.Errorf("nondeterministic: WL %d/%d overflow %g/%g",
			res1.TotalWL, res2.TotalWL, res1.Overflow, res2.Overflow)
	}
}

func TestGridGeometry(t *testing.T) {
	l := placedMesh(t, 4, 10, 0.6)
	res, err := Route(l, Options{GCellSites: 8, GCellRows: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Grid
	if g.Cols*g.GCellSites < l.SitesPerRow || g.Rows*g.GCellRows < l.NumRows {
		t.Errorf("grid %dx%d does not cover core %dx%d", g.Cols, g.Rows, l.SitesPerRow, l.NumRows)
	}
	// AtDBU of a gcell center returns the gcell.
	for _, probe := range [][2]int{{0, 0}, {g.Cols - 1, g.Rows - 1}, {g.Cols / 2, g.Rows / 2}} {
		c, r := g.AtDBU(g.Center(probe[0], probe[1]))
		if c != probe[0] || r != probe[1] {
			t.Errorf("AtDBU(Center(%v)) = (%d,%d)", probe, c, r)
		}
	}
	// Clamping.
	if c, r := g.AtDBU(geom.Pt(-1e9, 1e9)); c != 0 || r != g.Rows-1 {
		t.Errorf("clamp = (%d,%d)", c, r)
	}
}

func TestGDSWires(t *testing.T) {
	l := placedMesh(t, 4, 10, 0.6)
	res, err := Route(l, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wires := res.GDSWires(l)
	if len(wires) == 0 {
		t.Fatal("no wires exported")
	}
	for _, w := range wires {
		if len(w.Pts) != 2 || w.Width <= 0 {
			t.Fatalf("bad wire %+v", w)
		}
	}
	// Width scales with NDR.
	l2 := l.Clone()
	for i := range l2.NDR.Scale {
		l2.NDR.Scale[i] = 1.5
	}
	res2, err := Route(l2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w1 := wires[0].Width
	var w2 int64
	for _, w := range res2.GDSWires(l2) {
		if w.Metal == wires[0].Metal {
			w2 = w.Width
			break
		}
	}
	if w2 <= w1 {
		t.Errorf("scaled wire width %d not larger than %d", w2, w1)
	}
}

func TestRouteRejectsThinStack(t *testing.T) {
	lib := opencell45.MustLoad()
	nl := netlist.New("x", lib)
	l, _ := layout.New(nl, 2, 10)
	// Chop the layer stack via a shallow library copy is not possible on the
	// shared library; instead verify the NumLayers guard path directly is
	// unreachable here, and that routing an empty design succeeds.
	res, err := Route(l, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWL != 0 {
		t.Error("empty design routed nonzero wirelength")
	}
}

func BenchmarkRoute(b *testing.B) {
	l := placedMesh(b, 10, 30, 0.65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(l, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNetCongestion(t *testing.T) {
	l := placedMesh(t, 6, 20, 0.6)
	res, err := Route(l, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	anyPositive := false
	for _, nr := range res.NetRoutes {
		if nr == nil {
			continue
		}
		cg := res.NetCongestion(nr.Net.ID)
		if cg < 0 {
			t.Fatalf("negative congestion %g", cg)
		}
		if cg > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("no net reports congestion")
	}
	// Out-of-range and unrouted IDs are safe.
	if res.NetCongestion(-1) != 0 || res.NetCongestion(1<<20) != 0 {
		t.Error("bad IDs should report zero")
	}
}

func TestLayerPairsSpillBothWays(t *testing.T) {
	l := placedMesh(t, 2, 5, 0.5)
	res, err := Route(l, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	r := &router{l: l, res: res}
	pairs := r.layerPairs(30_000, false) // mid class
	if len(pairs) != l.Lib().NumLayers()/2 {
		t.Fatalf("pairs = %d, want full ladder", len(pairs))
	}
	// The preferred pair comes first; both spill directions appear.
	first := pairs[0]
	if first[0] != 3 && first[1] != 3 {
		t.Errorf("mid-class preferred pair = %v, want metal3/4", first)
	}
	seen := map[int]bool{}
	for _, p := range pairs {
		seen[p[0]] = true
		seen[p[1]] = true
	}
	for m := 1; m <= l.Lib().NumLayers(); m++ {
		if !seen[m] {
			t.Errorf("metal%d missing from ladder", m)
		}
	}
}
