// Package route is the global router: it decomposes every signal net into
// two-pin connections, pattern-routes them over a GCell grid with per-layer
// track capacities, and accounts track usage under the active non-default
// rule (wire width scaling consumes proportionally more track resource —
// the mechanism behind the Routing Width Scaling operator).
//
// The result exposes per-net routed length by layer (consumed by the timing
// engine), per-GCell congestion (consumed by the DRC engine), and free-track
// queries over arbitrary regions (consumed by the security metric).
package route

import (
	"fmt"
	"math"
	"sort"

	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/tech"
)

// Options configures the router.
type Options struct {
	// GCellSites and GCellRows set the GCell size (default 10 sites × 2
	// rows).
	GCellSites, GCellRows int
	// RipupPasses is the number of rip-up-and-reroute passes over
	// congested nets. Zero means "unset" and defaults to 1. To route with
	// no rip-up passes at all, set DisableRipup; negative values are
	// accepted as a disable too, for callers that already relied on that.
	RipupPasses int
	// DisableRipup turns rip-up-and-reroute off explicitly, distinguishing
	// "zero passes" from an unset (zero) RipupPasses.
	DisableRipup bool
	// Seed drives tie-breaking.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.GCellSites <= 0 {
		o.GCellSites = 10
	}
	if o.GCellRows <= 0 {
		o.GCellRows = 2
	}
	switch {
	case o.DisableRipup || o.RipupPasses < 0:
		o.RipupPasses = 0
	case o.RipupPasses == 0:
		o.RipupPasses = 1
	}
	return o
}

// Grid describes the GCell tessellation of the core.
type Grid struct {
	Cols, Rows            int
	GCellSites, GCellRows int
	// CellW, CellH are the GCell dimensions in DBU.
	CellW, CellH int64
	Origin       geom.Point
}

// Index returns the linear index of GCell (c, r).
func (g Grid) Index(c, r int) int { return r*g.Cols + c }

// Clamp constrains (c, r) into the grid.
func (g Grid) Clamp(c, r int) (int, int) {
	if c < 0 {
		c = 0
	}
	if c >= g.Cols {
		c = g.Cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= g.Rows {
		r = g.Rows - 1
	}
	return c, r
}

// AtDBU returns the GCell containing the DBU point (clamped to the grid).
func (g Grid) AtDBU(p geom.Point) (int, int) {
	c := int((p.X - g.Origin.X) / g.CellW)
	r := int((p.Y - g.Origin.Y) / g.CellH)
	return g.Clamp(c, r)
}

// Center returns the DBU center of GCell (c, r).
func (g Grid) Center(c, r int) geom.Point {
	return geom.Pt(
		g.Origin.X+int64(c)*g.CellW+g.CellW/2,
		g.Origin.Y+int64(r)*g.CellH+g.CellH/2,
	)
}

// Rect returns the DBU rectangle of GCell (c, r).
func (g Grid) Rect(c, r int) geom.Rect {
	lo := geom.Pt(g.Origin.X+int64(c)*g.CellW, g.Origin.Y+int64(r)*g.CellH)
	return geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(g.CellW, g.CellH))}
}

// Segment is one axis-aligned routed segment on a metal layer.
type Segment struct {
	Metal int // 1-based metal index
	A, B  geom.Point
}

// Len returns the segment length in DBU.
func (s Segment) Len() int64 { return s.A.ManhattanDist(s.B) }

// NetRoute is the routing of one net.
type NetRoute struct {
	Net      *netlist.Net
	Segments []Segment
	// LenByMetal is routed length in DBU per 1-based metal index
	// (index 0 unused).
	LenByMetal []int64
}

// TotalLen returns the net's total routed length in DBU.
func (nr *NetRoute) TotalLen() int64 {
	var t int64
	for _, v := range nr.LenByMetal {
		t += v
	}
	return t
}

// Result is the outcome of global routing.
type Result struct {
	Grid Grid
	// Usage and Cap are track usage/capacity per layer (0-based metal-1)
	// per GCell.
	Usage [][]float64
	Cap   [][]float64
	// NetRoutes is indexed by net ID.
	NetRoutes []*NetRoute
	// Overflow is the total track over-subscription across all GCells.
	Overflow float64
	// OverflowGCells is the number of (layer, gcell) pairs over capacity.
	OverflowGCells int
	// TotalWL is the total routed wirelength in DBU.
	TotalWL int64
	// Core is the core rectangle capacities were clipped to.
	Core geom.Rect
	// NDRScale is the per-layer NDR width scale the routing was committed
	// under (a snapshot of the layout's NDR at route time). Warm-starting
	// from this result requires an exactly equal NDR, since the scale
	// multiplies every track-usage commit.
	NDRScale []float64
	// Victims counts nets ripped up across all rip-up-and-reroute passes.
	// Only a result with zero victims can donate routes to a warm start:
	// with victims, the final per-net routes no longer reflect the usage
	// state each net saw at its main-loop turn, so replay equivalence
	// cannot be argued net by net.
	Victims int
}

// Route globally routes every net of the layout under its current NDR.
func Route(l *layout.Layout, opt Options) (*Result, error) {
	if err := fault.Hit(fault.Route); err != nil {
		return nil, err
	}
	return routeWithGeometry(l, opt, BuildGeometry(l))
}

// RouteWithGeometry is Route with a precomputed placement geometry (which
// must describe l's current placement). It produces bit-identical results
// to Route; callers that evaluate many NDR variants of one placement build
// the geometry once.
func RouteWithGeometry(l *layout.Layout, opt Options, geo *Geometry) (*Result, error) {
	if err := fault.Hit(fault.Route); err != nil {
		return nil, err
	}
	return routeWithGeometry(l, opt, geo)
}

func routeWithGeometry(l *layout.Layout, opt Options, geo *Geometry) (*Result, error) {
	defer routeSeconds.Start().Stop()
	opt = opt.withDefaults()
	lib := l.Lib()
	if lib.NumLayers() < 2 {
		return nil, fmt.Errorf("route: need at least 2 routing layers, have %d", lib.NumLayers())
	}
	grid := buildGrid(l, opt)
	res := &Result{
		Grid:      grid,
		NetRoutes: make([]*NetRoute, len(l.Netlist.Nets)),
		Core:      l.CoreRect(),
		NDRScale:  append([]float64(nil), l.NDR.Scale...),
	}
	n := grid.Cols * grid.Rows
	for li := 0; li < lib.NumLayers(); li++ {
		res.Usage = append(res.Usage, make([]float64, n))
		res.Cap = append(res.Cap, make([]float64, n))
	}
	fillCapacity(l, res)

	r := &router{l: l, res: res, geo: geo, seed: opt.Seed}
	r.routeAll(geo.Order)
	for p := 0; p < opt.RipupPasses; p++ {
		r.ripupAndReroute()
	}
	res.finalize()
	return res, nil
}

func buildGrid(l *layout.Layout, opt Options) Grid {
	site := l.Lib().Site
	g := Grid{
		GCellSites: opt.GCellSites,
		GCellRows:  opt.GCellRows,
		CellW:      int64(opt.GCellSites) * site.Width,
		CellH:      int64(opt.GCellRows) * site.Height,
		Origin:     l.Origin,
	}
	g.Cols = (l.SitesPerRow + opt.GCellSites - 1) / opt.GCellSites
	g.Rows = (l.NumRows + opt.GCellRows - 1) / opt.GCellRows
	if g.Cols < 1 {
		g.Cols = 1
	}
	if g.Rows < 1 {
		g.Rows = 1
	}
	return g
}

// fillCapacity computes per-layer per-GCell track capacity: the number of
// preferred-direction tracks crossing the GCell, scaled by the fraction of
// the GCell inside the core (boundary GCells overhang the core). Metal1
// capacity is halved: it is mostly consumed by intra-cell routing.
func fillCapacity(l *layout.Layout, res *Result) {
	lib := l.Lib()
	g := res.Grid
	core := l.CoreRect()
	for li := 0; li < lib.NumLayers(); li++ {
		layer := lib.Layer(li + 1)
		var tracks float64
		if layer.Dir == tech.Horizontal {
			tracks = float64(g.CellH) / float64(layer.Pitch)
		} else {
			tracks = float64(g.CellW) / float64(layer.Pitch)
		}
		if li == 0 {
			tracks /= 2
		}
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				cell := g.Rect(c, r)
				frac := float64(cell.Intersect(core).Area()) / float64(cell.Area())
				res.Cap[li][g.Index(c, r)] = tracks * frac
			}
		}
	}
}

type router struct {
	l   *layout.Layout
	res *Result
	geo *Geometry
	// seed drives per-net tie-breaking. The rip-up victim order is a hash
	// of (seed, net ID) per net, so it is self-contained: it does not
	// depend on how many nets any other router instance processed before,
	// on worker count, or on batch order.
	seed int64
	// spec, when non-nil, makes this a speculative worker router: usage
	// reads see committed usage through the overlay and usage writes land
	// in the overlay only (wave-parallel routing; see parallel.go).
	spec *usageOverlay
	// track, when non-nil, accumulates the GCells whose usage rip-up
	// changes — route.Warm's Δ mask, extended through the rip-up passes so
	// the caller can tell which nets' surroundings moved.
	track *deltaMask
}

// routeAll routes the given geometry nets — a subsequence of geo.Order, in
// canonical (descending-HPWL) order — dispatching to the wave-parallel path
// when enough nets and workers are available. Both paths are bit-identical
// (see parallel.go for the commit-protocol argument).
func (r *router) routeAll(order []int32) {
	if w := ResolvedWorkers(len(order)); w > 1 && r.spec == nil {
		r.routeWaves(order, w)
		return
	}
	for _, oi := range order {
		r.routeGeoNet(int(oi))
	}
}

// routeGeoNet pattern-routes the oi-th geometry net's precomputed two-pin
// connections. Nets whose geometry has no connections (fewer than two
// located terminals) stay unrouted, exactly as before.
func (r *router) routeGeoNet(oi int) {
	if nr := r.buildGeoNet(oi); nr != nil {
		r.res.NetRoutes[nr.Net.ID] = nr
	}
}

// buildGeoNet routes the net and returns its NetRoute without recording it
// in the result — the speculative path keeps the route private until the
// commit pass accepts it.
func (r *router) buildGeoNet(oi int) *NetRoute {
	conns := r.geo.Conns[oi]
	if len(conns) == 0 {
		return nil
	}
	net := r.l.Netlist.Nets[r.geo.NetIDs[oi]]
	nr := &NetRoute{Net: net, LenByMetal: make([]int64, r.l.Lib().NumLayers()+1)}
	for _, c := range conns {
		r.routeTwoPin(nr, c.A, c.B, net.IsClock)
	}
	return nr
}

// layerPairs returns the candidate (hLayer, vLayer) metal pairs for a
// connection of the given DBU length: the pair preferred by length class
// plus the pairs above it, so congested low metal spills upward. Clock nets
// start on the mid stack.
func (r *router) layerPairs(lenDBU int64, clock bool) [][2]int {
	k := r.l.Lib().NumLayers()
	ladder := make([][2]int, 0, k/2)
	for h := 1; h+1 <= k; h += 2 {
		hh, vv := h, h+1
		if r.l.Lib().Layer(hh).Dir != tech.Horizontal {
			hh, vv = vv, hh
		}
		ladder = append(ladder, [2]int{hh, vv})
	}
	start := 0
	switch {
	case clock:
		start = 2
	case lenDBU < 20_000: // < 20 µm
		start = 0
	case lenDBU < 60_000:
		start = 1
	case lenDBU < 150_000:
		start = 2
	default:
		start = 3
	}
	if start >= len(ladder) {
		start = len(ladder) - 1
	}
	// Return the full ladder rotated so the preferred pair is first; the
	// router taxes candidates by their distance from the preferred pair, so
	// congested preferred layers spill in both directions.
	out := make([][2]int, 0, len(ladder))
	out = append(out, ladder[start])
	for d := 1; d < len(ladder); d++ {
		if start+d < len(ladder) {
			out = append(out, ladder[start+d])
		}
		if start-d >= 0 {
			out = append(out, ladder[start-d])
		}
	}
	return out
}

// routeTwoPin routes an L- or Z-shaped connection between two DBU points,
// choosing the pattern and layer pair with the lowest congestion cost.
// Degenerate connections (terminals sharing an exact row or column — the
// common case between replicated tile stamps) additionally consider
// one-GCell U-detours to either side: their L and Z candidates all collapse
// onto the same straight line, so without a detour every such connection
// between the same track pair piles onto one GCell column no matter how
// congested it gets.
func (r *router) routeTwoPin(nr *NetRoute, a, b geom.Point, clock bool) {
	pairs := r.layerPairs(a.ManhattanDist(b), clock)
	mid := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
	// Candidate patterns as waypoint sequences: two Ls and two Zs.
	candidates := [][]geom.Point{
		{a, geom.Pt(b.X, a.Y), b},                        // L via (bx, ay)
		{a, geom.Pt(a.X, b.Y), b},                        // L via (ax, by)
		{a, geom.Pt(mid.X, a.Y), geom.Pt(mid.X, b.Y), b}, // HVH Z
		{a, geom.Pt(a.X, mid.Y), geom.Pt(b.X, mid.Y), b}, // VHV Z
	}
	g := r.res.Grid
	if a.X == b.X && absInt64(a.Y-b.Y) > g.CellH {
		for _, x := range [2]int64{a.X - g.CellW, a.X + g.CellW} {
			candidates = append(candidates, []geom.Point{a, geom.Pt(x, a.Y), geom.Pt(x, b.Y), b})
		}
	} else if a.Y == b.Y && absInt64(a.X-b.X) > g.CellW {
		for _, y := range [2]int64{a.Y - g.CellH, a.Y + g.CellH} {
			candidates = append(candidates, []geom.Point{a, geom.Pt(a.X, y), geom.Pt(b.X, y), b})
		}
	}
	bestCost := math.Inf(1)
	var bestPath []geom.Point
	var bestPair [2]int
	for i, p := range pairs {
		// Non-preferred pairs pay a via/ascent tax so they are used only
		// under congestion; the sparse top pair (metal9/10, in real stacks
		// mostly power and clock) is strongly discouraged for signals.
		tax := float64(i) * 2
		if p[0] >= 9 || p[1] >= 9 {
			tax += 10
		}
		for ci, path := range candidates {
			cost := tax
			if ci >= 2 {
				cost += 1 // extra via pair for Z shapes
			}
			for j := 1; j < len(path); j++ {
				cost += r.pathCost(path[j-1], path[j], r.segLayer(path[j-1], path[j], p))
			}
			if cost < bestCost {
				bestCost = cost
				bestPath = path
				bestPair = p
			}
		}
	}
	for j := 1; j < len(bestPath); j++ {
		r.commit(nr, bestPath[j-1], bestPath[j], r.segLayer(bestPath[j-1], bestPath[j], bestPair))
	}
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// segLayer picks the metal of an axis-aligned segment from the layer pair:
// horizontal runs take the pair's horizontal layer, vertical runs the
// vertical one (zero-length runs default to horizontal).
func (r *router) segLayer(a, b geom.Point, pair [2]int) int {
	if a.X == b.X && a.Y != b.Y {
		return pair[1]
	}
	return pair[0]
}

// pathCost estimates congestion cost of an axis-aligned run on a metal
// layer: 1 per GCell plus a quadratic penalty above 80% usage. Congestion
// is priced at the usage the GCell would have AFTER this wire commits
// (current usage plus this net's track demand) — pricing the pre-existing
// usage instead lets the wire that pushes a GCell from just-under to
// just-over capacity through almost free, which is exactly the wire the
// penalty exists to deter.
func (r *router) pathCost(a, b geom.Point, metal int) float64 {
	cost := 0.0
	demand := r.l.NDR.LayerScale(metal)
	r.walk(a, b, func(idx int) {
		u, c := r.usageAt(metal-1, idx)+demand, r.res.Cap[metal-1][idx]
		cost++
		if c > 0 {
			util := u / c
			if util > 0.8 {
				d := util - 0.8
				cost += 25 * d * d * c
			}
			if u > c {
				// outright overflow: strongly repel additional wires
				cost += 50 * (u - c + 1)
			}
		}
	})
	return cost
}

// walk visits the linear GCell indices crossed by the axis-aligned run a→b.
func (r *router) walk(a, b geom.Point, f func(idx int)) {
	g := r.res.Grid
	c0, r0 := g.AtDBU(a)
	c1, r1 := g.AtDBU(b)
	if r0 == r1 {
		if c1 < c0 {
			c0, c1 = c1, c0
		}
		for c := c0; c <= c1; c++ {
			f(g.Index(c, r0))
		}
		return
	}
	if r1 < r0 {
		r0, r1 = r1, r0
	}
	for rr := r0; rr <= r1; rr++ {
		f(g.Index(c0, rr))
	}
}

// usageAt reads track usage as the router sees it: committed usage, or the
// speculative overlay's effective value when this router is a wave worker.
func (r *router) usageAt(li, idx int) float64 {
	if r.spec != nil {
		if v, ok := r.spec.get(li, idx); ok {
			return v
		}
	}
	return r.res.Usage[li][idx]
}

// commit books track usage for the run and records the segment. Usage per
// crossed GCell equals the NDR width scale of the layer: a 1.5× wide wire
// consumes 1.5 tracks. Speculative routers book into their private overlay;
// the overlay stores effective values seeded from the committed snapshot, so
// within a net the floating-point additions associate exactly as they would
// against the live grid.
func (r *router) commit(nr *NetRoute, a, b geom.Point, metal int) {
	if a == b {
		return
	}
	scale := r.l.NDR.LayerScale(metal)
	if r.spec != nil {
		r.walk(a, b, func(idx int) {
			r.spec.add(metal-1, idx, r.res.Usage[metal-1][idx], scale)
		})
	} else {
		r.walk(a, b, func(idx int) {
			r.res.Usage[metal-1][idx] += scale
		})
	}
	nr.Segments = append(nr.Segments, Segment{Metal: metal, A: a, B: b})
	nr.LenByMetal[metal] += a.ManhattanDist(b)
}

// uncommit releases the usage of a routed net (for rip-up).
func (r *router) uncommit(nr *NetRoute) {
	for _, s := range nr.Segments {
		scale := r.l.NDR.LayerScale(s.Metal)
		r.walk(s.A, s.B, func(idx int) {
			r.res.Usage[s.Metal-1][idx] -= scale
		})
	}
	nr.Segments = nil
	for i := range nr.LenByMetal {
		nr.LenByMetal[i] = 0
	}
}

// ripupAndReroute rips up nets that cross overflowed GCells and re-routes
// them in a congestion-aware order.
func (r *router) ripupAndReroute() {
	over := make([]bool, r.res.Grid.Cols*r.res.Grid.Rows)
	any := false
	for li := range r.res.Usage {
		for i := range r.res.Usage[li] {
			if r.res.Usage[li][i] > r.res.Cap[li][i] {
				over[i] = true
				any = true
			}
		}
	}
	if !any {
		return
	}
	var victims []int32
	for _, oi := range r.geo.Order {
		nr := r.res.NetRoutes[r.geo.NetIDs[oi]]
		if nr == nil {
			continue
		}
		hit := false
		for _, s := range nr.Segments {
			r.walk(s.A, s.B, func(idx int) {
				if over[idx] {
					hit = true
				}
			})
			if hit {
				break
			}
		}
		if hit {
			victims = append(victims, oi)
			if r.track != nil {
				r.track.addSegments(nr.Segments)
			}
			r.uncommit(nr)
		}
	}
	r.res.Victims += len(victims)
	// Victim order is a per-net hash of (seed, net ID): deterministic,
	// independent of worker count and of how many nets this router has
	// already processed, unlike the shared math/rand shuffle it replaced.
	sort.Slice(victims, func(i, j int) bool {
		a, b := r.geo.NetIDs[victims[i]], r.geo.NetIDs[victims[j]]
		ha, hb := netOrderHash(r.seed, a), netOrderHash(r.seed, b)
		if ha != hb {
			return ha < hb
		}
		return a < b
	})
	r.routeAll(victims)
	if r.track != nil {
		for _, oi := range victims {
			if nr := r.res.NetRoutes[r.geo.NetIDs[oi]]; nr != nil {
				r.track.addSegments(nr.Segments)
			}
		}
	}
}

// finalize computes overflow and wirelength summaries.
func (res *Result) finalize() {
	res.Overflow, res.OverflowGCells, res.TotalWL = 0, 0, 0
	for li := range res.Usage {
		for i := range res.Usage[li] {
			if d := res.Usage[li][i] - res.Cap[li][i]; d > 1e-9 {
				res.Overflow += d
				res.OverflowGCells++
			}
		}
	}
	for _, nr := range res.NetRoutes {
		if nr != nil {
			res.TotalWL += nr.TotalLen()
		}
	}
}

// FreeTracksInRect sums the unused track capacity of every layer over the
// GCells intersecting the DBU rectangle, weighted by the overlapped area
// fraction of each GCell.
func (res *Result) FreeTracksInRect(rect geom.Rect) float64 {
	if rect.Empty() {
		return 0
	}
	g := res.Grid
	c0, r0 := g.AtDBU(rect.Lo)
	c1, r1 := g.AtDBU(geom.Pt(rect.Hi.X-1, rect.Hi.Y-1))
	total := 0.0
	for rr := r0; rr <= r1; rr++ {
		for c := c0; c <= c1; c++ {
			// Weight by the overlapped fraction of the GCell's *in-core*
			// area, since capacity was clipped to the core.
			cell := g.Rect(c, rr).Intersect(res.Core)
			ov := cell.Intersect(rect)
			if ov.Empty() || cell.Empty() {
				continue
			}
			frac := float64(ov.Area()) / float64(cell.Area())
			idx := g.Index(c, rr)
			for li := range res.Usage {
				free := res.Cap[li][idx] - res.Usage[li][idx]
				if free > 0 {
					total += free * frac
				}
			}
		}
	}
	return total
}

// TotalFreeTracks sums unused track capacity over the entire grid.
func (res *Result) TotalFreeTracks() float64 {
	total := 0.0
	for li := range res.Usage {
		for i := range res.Usage[li] {
			if free := res.Cap[li][i] - res.Usage[li][i]; free > 0 {
				total += free
			}
		}
	}
	return total
}

// NetCongestion returns the average track utilization (usage/capacity) of
// the GCells crossed by the net's route, or 0 for unrouted nets. The timing
// engine uses it to model detour and coupling delay in congested areas.
func (res *Result) NetCongestion(netID int) float64 {
	if netID < 0 || netID >= len(res.NetRoutes) || res.NetRoutes[netID] == nil {
		return 0
	}
	nr := res.NetRoutes[netID]
	total, n := 0.0, 0
	for _, s := range nr.Segments {
		g := res.Grid
		c0, r0 := g.AtDBU(s.A)
		c1, r1 := g.AtDBU(s.B)
		if r1 < r0 {
			r0, r1 = r1, r0
		}
		if c1 < c0 {
			c0, c1 = c1, c0
		}
		for rr := r0; rr <= r1; rr++ {
			for c := c0; c <= c1; c++ {
				idx := g.Index(c, rr)
				u, cp := res.Usage[s.Metal-1][idx], res.Cap[s.Metal-1][idx]
				if cp > 0 {
					total += u / cp
					n++
				}
			}
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
