package route

// Wave-parallel pattern routing. Workers route batches of pending nets
// speculatively against an immutable snapshot of committed track usage
// (private overlays absorb each net's own writes); a sequential commit pass
// then walks the pending nets in canonical order and accepts each net only
// if its two-pin connection rectangles miss the wave's conflict mask. The
// mask accumulates (a) the segments of nets committed earlier in this wave
// and (b) the full connection rectangles of nets requeued earlier in this
// wave, so an accepted net provably read exactly the usage the sequential
// router would have shown it, and a requeued net shadows its whole
// read/write region until it actually routes.
//
// Bit-identity to the sequential loop follows from three facts:
//
//   - The router's reads and writes for a net are confined to the GCells
//     inside its per-connection endpoint rectangles (the same containment
//     touchesDelta relies on for warm starts). A committed net's rects miss
//     every earlier same-wave commit and every earlier requeued net's
//     rects, so the snapshot it speculated against equals the usage state
//     of the sequential run at its turn — its own writes are replayed
//     through the overlay with effective values, preserving the exact
//     floating-point accumulation order within the net.
//   - Two nets that write a shared GCell can never commit in the same wave
//     (the earlier one's segments mark the cell before the later one is
//     tested), and a requeued earlier net forces every overlapping later
//     net to requeue with it, so per-cell usage additions happen in
//     canonical net order across waves — float sums associate exactly as
//     in the sequential run.
//   - The first pending net of every wave always commits (the mask is
//     empty at its turn), so the fixpoint terminates in at most N waves.
//
// Tie-breaking needs no coordination: candidate selection is strict-less
// cost comparison (first-best wins deterministically) and rip-up victim
// ordering is a per-net hash of the seed, so no shared rand stream exists
// to race on.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// routeWorkersSetting is the configured worker count; 0 means auto
// (GOMAXPROCS).
var routeWorkersSetting atomic.Int32

// SetWorkers sets the number of workers wave-parallel routing uses. 0 (the
// default) selects GOMAXPROCS; 1 forces the sequential path. The setting is
// process-wide and safe to change between route invocations.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	routeWorkersSetting.Store(int32(n))
}

// Workers returns the configured worker count (0 = auto).
func Workers() int { return int(routeWorkersSetting.Load()) }

const (
	// parallelMinNets is the batch size below which the sequential loop
	// always wins (goroutine + overlay overhead beats the speculation).
	parallelMinNets = 192
	// minNetsPerWorker bounds how small a speculation batch may get.
	minNetsPerWorker = 24
)

// ResolvedWorkers reports how many workers the router will actually use for
// a batch of numNets nets under the current setting — 1 means the
// sequential path (single CPU, small batch, or an explicit SetWorkers(1)).
func ResolvedWorkers(numNets int) int {
	if numNets < parallelMinNets {
		return 1
	}
	n := int(routeWorkersSetting.Load())
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if max := numNets / minNetsPerWorker; n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// netOrderHash is a splitmix64-style mix of (seed, net ID): the
// self-contained per-net tie-break key used to order rip-up victims.
func netOrderHash(seed int64, id int32) uint64 {
	x := uint64(seed) ^ (uint64(uint32(id))+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// usageOverlay is a worker's private view of track usage during
// speculation: a sparse map from (layer, GCell) to the *effective* usage
// value there. Storing effective values — seeded from the committed
// snapshot on first write — rather than deltas keeps the floating-point
// addition order within a net identical to committing against the live
// grid: base + s1 + s2 associates left-to-right in both.
type usageOverlay struct {
	m map[uint64]float64
}

func newUsageOverlay() *usageOverlay {
	return &usageOverlay{m: make(map[uint64]float64, 512)}
}

func (o *usageOverlay) reset() {
	for k := range o.m {
		delete(o.m, k)
	}
}

func overlayKey(li, idx int) uint64 { return uint64(li)<<48 | uint64(uint32(idx)) }

func (o *usageOverlay) get(li, idx int) (float64, bool) {
	v, ok := o.m[overlayKey(li, idx)]
	return v, ok
}

// add books scale at (li, idx), seeding the effective value from base (the
// committed snapshot) on first touch.
func (o *usageOverlay) add(li, idx int, base, scale float64) {
	k := overlayKey(li, idx)
	if v, ok := o.m[k]; ok {
		o.m[k] = v + scale
	} else {
		o.m[k] = base + scale
	}
}

// reset clears the mask for reuse across waves.
func (d *deltaMask) reset() {
	for i := range d.m {
		d.m[i] = false
	}
}

// addRect marks every GCell of the inclusive rectangle.
func (d *deltaMask) addRect(q gcellRect) {
	for r := q.r0; r <= q.r1; r++ {
		row := d.m[r*d.g.Cols : (r+1)*d.g.Cols]
		for c := q.c0; c <= q.c1; c++ {
			row[c] = true
		}
	}
}

// blockConns paints the net's per-connection read rectangles into the
// mask — the superset of every GCell the net can read or write.
func (r *router) blockConns(d *deltaMask, oi int32) {
	for _, c := range r.geo.Conns[oi] {
		d.addRect(connReadRect(r.res.Grid, c))
	}
}

// applySpec commits a speculatively routed net: usage is booked along every
// segment exactly as the sequential commit would, and the route is
// recorded.
func (r *router) applySpec(nr *NetRoute) {
	for _, s := range nr.Segments {
		scale := r.l.NDR.LayerScale(s.Metal)
		r.walk(s.A, s.B, func(idx int) {
			r.res.Usage[s.Metal-1][idx] += scale
		})
	}
	r.res.NetRoutes[nr.Net.ID] = nr
}

// routeWaves routes the given nets (canonical order) with w speculative
// workers and a deterministic commit pass per wave.
func (r *router) routeWaves(order []int32, w int) {
	pending := append([]int32(nil), order...)
	next := make([]int32, 0, len(pending))
	specs := make([]*NetRoute, len(pending))
	workers := make([]*router, w)
	for i := range workers {
		workers[i] = &router{l: r.l, res: r.res, geo: r.geo, seed: r.seed, spec: newUsageOverlay()}
	}
	conflict := newDeltaMask(r.res.Grid)

	for len(pending) > 0 {
		// Speculate: each worker routes a contiguous batch against the
		// committed snapshot (res.Usage is not written during this phase).
		sp := specs[:len(pending)]
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			lo, hi := wi*len(pending)/w, (wi+1)*len(pending)/w
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(rw *router, lo, hi int) {
				defer wg.Done()
				rw.spec.reset()
				for i := lo; i < hi; i++ {
					sp[i] = rw.buildGeoNet(int(pending[i]))
				}
			}(workers[wi], lo, hi)
		}
		wg.Wait()

		// Commit in canonical order; conflicted nets requeue for the next
		// wave, preserving their relative order.
		conflict.reset()
		next = next[:0]
		painted := false
		for i, oi := range pending {
			nr := sp[i]
			sp[i] = nil
			if nr == nil {
				continue // no connections: routes nothing, conflicts with nothing
			}
			if painted && r.touchesDelta(conflict, oi) {
				next = append(next, oi)
				r.blockConns(conflict, oi)
				continue
			}
			r.applySpec(nr)
			conflict.addSegments(nr.Segments)
			painted = true
		}
		pending, next = next, pending[:0]
	}
}
