package route

import (
	"math/rand"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// placedLocalMesh places a mesh netlist with strong locality: instances go
// into rows in netlist order (chains are built consecutively), with free
// sites interleaved so cells can relocate nearby. Global placement at low
// utilization scatters connected cells across the die, which makes every
// two-pin connection span most of the routing grid and leaves a warm start
// nothing provably unaffected to replay; real ECO placements keep
// connected cells close, and so does this.
func placedLocalMesh(t testing.TB, chains, stages, numRows, sitesPerRow int) *layout.Layout {
	t.Helper()
	nl := meshNetlist(t, chains, stages)
	l, err := layout.New(nl, numRows, sitesPerRow)
	if err != nil {
		t.Fatal(err)
	}
	// Serpentine fill: odd rows run right-to-left, so the connection
	// across a row boundary stays short instead of spanning the die.
	// site is the next free start (dir > 0) or the exclusive right edge
	// of the free span (dir < 0).
	row, site, dir := 0, 0, 1
	for _, in := range nl.Insts {
		w := in.Master.WidthSites
		if (dir > 0 && site+w > sitesPerRow) || (dir < 0 && site-w < 0) {
			row, dir = row+1, -dir
			if row >= numRows {
				t.Fatal("mesh does not fit the die")
			}
			if dir > 0 {
				site = 0
			} else {
				site = sitesPerRow
			}
		}
		at := site
		if dir < 0 {
			at = site - w
		}
		if err := l.Place(in, row, at); err != nil {
			t.Fatal(err)
		}
		site += dir * (w + 2) // leave free sites for local relocation
	}
	return l
}

// perturb relocates up to n movable instances of l to random free sites
// and returns the dirty-net mask (nets with a terminal on a moved cell).
func perturb(t *testing.T, l *layout.Layout, n int, rng *rand.Rand) []bool {
	t.Helper()
	dirty := make([]bool, len(l.Netlist.Nets))
	moved := 0
	var cands []*netlist.Instance
	for _, in := range l.Netlist.Insts {
		if !in.Fixed && l.PlacementOf(in).Placed {
			cands = append(cands, in)
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	for _, in := range cands {
		if moved >= n {
			break
		}
		w := in.Master.WidthSites
		// Relocate near the current position (ECO operators move cells
		// locally, which is what keeps the change region small).
		from := l.PlacementOf(in)
		row, site := -1, -1
		for dr := -2; dr <= 2 && site < 0; dr++ {
			r := from.Row + dr
			if r < 0 || r >= l.NumRows {
				continue
			}
			for _, run := range l.FreeRuns(r) {
				if run.Len >= w && (r != from.Row || run.Start != from.Site) {
					row, site = r, run.Start
					break
				}
			}
		}
		if site < 0 {
			continue
		}
		l.Unplace(in)
		if err := l.Place(in, row, site); err != nil {
			t.Fatalf("re-place %s: %v", in.Name, err)
		}
		for _, c := range in.Conns {
			dirty[c.Net.ID] = true
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("perturb moved nothing")
	}
	return dirty
}

func sameResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.TotalWL != want.TotalWL {
		t.Errorf("%s: TotalWL %d != %d", label, got.TotalWL, want.TotalWL)
	}
	if got.Victims != want.Victims {
		t.Errorf("%s: Victims %d != %d", label, got.Victims, want.Victims)
	}
	if got.Grid != want.Grid {
		t.Fatalf("%s: grids differ", label)
	}
	for id := range want.NetRoutes {
		g, w := got.NetRoutes[id], want.NetRoutes[id]
		if (g == nil) != (w == nil) {
			t.Fatalf("%s: net %d routed-ness differs", label, id)
			continue
		}
		if g == nil {
			continue
		}
		if len(g.Segments) != len(w.Segments) {
			t.Fatalf("%s: net %d has %d segments, want %d", label, id, len(g.Segments), len(w.Segments))
		}
		for i := range w.Segments {
			if g.Segments[i] != w.Segments[i] {
				t.Fatalf("%s: net %d segment %d %+v != %+v", label, id, i, g.Segments[i], w.Segments[i])
			}
		}
		for m := range w.LenByMetal {
			if g.LenByMetal[m] != w.LenByMetal[m] {
				t.Errorf("%s: net %d LenByMetal[%d] %d != %d", label, id, m, g.LenByMetal[m], w.LenByMetal[m])
			}
		}
	}
	for li := range want.Usage {
		for i := range want.Usage[li] {
			if got.Usage[li][i] != want.Usage[li][i] {
				t.Fatalf("%s: usage[%d][%d] %g != %g", label, li, i, got.Usage[li][i], want.Usage[li][i])
			}
		}
	}
}

// TestWarmMatchesColdChain is the warm-start equivalence gate: across a
// chain of placement perturbations, routing warm from the previous clean
// result must be bit-identical — routes, usage grid, wirelength — to
// routing the same layout cold, while actually replaying most nets.
func TestWarmMatchesColdChain(t *testing.T) {
	l := placedLocalMesh(t, 8, 60, 40, 160)
	opt := Options{Seed: 1}
	rng := rand.New(rand.NewSource(5))

	donor, err := Route(l, opt)
	if err != nil {
		t.Fatal(err)
	}
	if donor.Victims != 0 {
		t.Fatal("fixture routes with rip-up victims; warm start needs a clean donor")
	}
	totalReplayed := 0
	for step := 0; step < 4; step++ {
		dirty := perturb(t, l, 3+step, rng)
		geo := BuildGeometry(l)
		cold, err := RouteWithGeometry(l, opt, geo)
		if err != nil {
			t.Fatal(err)
		}
		warm, st, err := Warm(l, opt, geo, donor, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if warm == nil {
			t.Fatalf("step %d: warm start declined; preconditions should hold", step)
		}
		sameResults(t, "step", warm, cold)
		if st.Replayed == 0 {
			t.Errorf("step %d: no nets replayed (stats %+v)", step, st)
		}
		totalReplayed += st.Replayed
		if cold.Victims == 0 {
			donor = warm // chain: the new clean result donates to the next step
		}
	}
	if totalReplayed == 0 {
		t.Fatal("chain never replayed a net")
	}
}

// TestWarmPreconditions checks that Warm declines (returning a nil result,
// signalling cold fallback) whenever the donor cannot prove equivalence:
// NDR mismatch, rip-up victims in the donor, or a missing donor.
func TestWarmPreconditions(t *testing.T) {
	l := placedMesh(t, 4, 10, 0.5)
	opt := Options{Seed: 1}
	donor, err := Route(l, opt)
	if err != nil {
		t.Fatal(err)
	}
	geo := BuildGeometry(l)
	dirty := make([]bool, len(l.Netlist.Nets))

	if res, _, err := Warm(l, opt, geo, nil, dirty); err != nil || res != nil {
		t.Errorf("nil donor: got (%v, %v), want decline", res, err)
	}

	if donor.Victims == 0 {
		bad := *donor
		bad.Victims = 3
		if res, _, err := Warm(l, opt, geo, &bad, dirty); err != nil || res != nil {
			t.Errorf("victim donor: got (%v, %v), want decline", res, err)
		}
	}

	l.NDR.Scale[0] *= 1.5
	if res, _, err := Warm(l, opt, geo, donor, dirty); err != nil || res != nil {
		t.Errorf("NDR mismatch: got (%v, %v), want decline", res, err)
	}
	l.NDR.Scale[0] /= 1.5

	// With matching state and an all-clean mask, warm must replay all
	// routed nets and reproduce the donor exactly.
	res, st, err := Warm(l, opt, geo, donor, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("identity warm start declined")
	}
	if st.Rerouted != 0 || st.Promoted != 0 {
		t.Errorf("identity warm start rerouted nets: %+v", st)
	}
	sameResults(t, "identity", res, donor)
}
