package route

import "testing"

// Regression: withDefaults silently rewrote RipupPasses 0 to 1 with no way
// to request zero passes except an undocumented negative value. The zero
// value stays the documented default of 1, and DisableRipup (or a negative
// count) is the explicit off switch.
func TestOptionsRipupDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want int
	}{
		{"unset defaults to one pass", Options{}, 1},
		{"explicit count kept", Options{RipupPasses: 3}, 3},
		{"DisableRipup means zero passes", Options{DisableRipup: true}, 0},
		{"DisableRipup overrides a count", Options{RipupPasses: 3, DisableRipup: true}, 0},
		{"negative still disables", Options{RipupPasses: -1}, 0},
	}
	for _, c := range cases {
		if got := c.in.withDefaults().RipupPasses; got != c.want {
			t.Errorf("%s: RipupPasses = %d, want %d", c.name, got, c.want)
		}
	}
}

// Routing with rip-up disabled must still produce a complete result (the
// rip-up passes only improve congestion, they are not required for
// correctness).
func TestRouteWithRipupDisabled(t *testing.T) {
	l := placedMesh(t, 4, 12, 0.6)
	res, err := Route(l, Options{Seed: 1, DisableRipup: true})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if res.TotalWL <= 0 {
		t.Error("zero total wirelength with rip-up disabled")
	}
}
