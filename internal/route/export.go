package route

import (
	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// GDSWires converts the routed segments into GDSII path descriptors, with
// widths from the layer stack scaled by the layout's active NDR. For
// SoC-scale exports prefer WireSource, which streams the same wires without
// materializing the slice.
func (res *Result) GDSWires(l *layout.Layout) []gdsii.Wire {
	var wires []gdsii.Wire
	_ = res.WireSource(l)(func(w gdsii.Wire) error {
		wires = append(wires, w)
		return nil
	})
	return wires
}

// WireSource streams the routed segments as GDSII wires one at a time —
// the streaming-export counterpart of GDSWires. The emitted Wire's Pts
// slice is freshly allocated per wire (the exporter may retain it).
func (res *Result) WireSource(l *layout.Layout) gdsii.WireSource {
	lib := l.Lib()
	return func(emit func(gdsii.Wire) error) error {
		for _, nr := range res.NetRoutes {
			if nr == nil {
				continue
			}
			for _, s := range nr.Segments {
				layer := lib.Layer(s.Metal)
				if layer == nil || s.A == s.B {
					continue
				}
				err := emit(gdsii.Wire{
					Metal: s.Metal,
					Width: int64(float64(layer.Width) * l.NDR.LayerScale(s.Metal)),
					Pts:   []geom.Point{s.A, s.B},
				})
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
}
