package route

import (
	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// GDSWires converts the routed segments into GDSII path descriptors, with
// widths from the layer stack scaled by the layout's active NDR.
func (res *Result) GDSWires(l *layout.Layout) []gdsii.Wire {
	lib := l.Lib()
	var wires []gdsii.Wire
	for _, nr := range res.NetRoutes {
		if nr == nil {
			continue
		}
		for _, s := range nr.Segments {
			layer := lib.Layer(s.Metal)
			if layer == nil || s.A == s.B {
				continue
			}
			wires = append(wires, gdsii.Wire{
				Metal: s.Metal,
				Width: int64(float64(layer.Width) * l.NDR.LayerScale(s.Metal)),
				Pts:   []geom.Point{s.A, s.B},
			})
		}
	}
	return wires
}
