package route

import (
	"runtime"
	"sync"
	"testing"

	"gdsiiguard/internal/layout"
)

// withWorkers forces the wave-parallel worker count for the duration of the
// test and restores auto-selection afterwards. The test machine may have a
// single CPU, so parallelism is always forced explicitly rather than
// inherited from GOMAXPROCS.
func withWorkers(t testing.TB, n int) {
	t.Helper()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(0) })
}

func TestResolvedWorkers(t *testing.T) {
	withWorkers(t, 4)
	if got := ResolvedWorkers(parallelMinNets - 1); got != 1 {
		t.Errorf("below threshold: %d workers, want 1", got)
	}
	if got := ResolvedWorkers(10 * parallelMinNets); got != 4 {
		t.Errorf("large batch: %d workers, want 4", got)
	}
	// The per-worker floor keeps speculation batches from getting uselessly
	// small.
	if got := ResolvedWorkers(parallelMinNets); got > parallelMinNets/minNetsPerWorker {
		t.Errorf("tiny batch resolved to %d workers", got)
	}
	SetWorkers(1)
	if got := ResolvedWorkers(10 * parallelMinNets); got != 1 {
		t.Errorf("SetWorkers(1): %d workers, want 1", got)
	}
}

// TestNetOrderHashSelfContained pins the tie-break key down: it must be
// deterministic, seed-sensitive, and collision-free over realistic net-ID
// ranges, because the rip-up victim order (and therefore every routed
// result) follows from it.
func TestNetOrderHashSelfContained(t *testing.T) {
	if netOrderHash(1, 42) != netOrderHash(1, 42) {
		t.Fatal("hash is not deterministic")
	}
	if netOrderHash(1, 42) == netOrderHash(2, 42) {
		t.Error("hash ignores the seed")
	}
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		seen := make(map[uint64]int32, 1<<14)
		for id := int32(0); id < 1<<14; id++ {
			h := netOrderHash(seed, id)
			if prev, dup := seen[h]; dup {
				t.Fatalf("seed %d: ids %d and %d collide", seed, prev, id)
			}
			seen[h] = id
		}
	}
}

// routeForced routes l with an explicitly forced worker count and asserts
// the batch was large enough for the setting to actually bind (so a silent
// fall-through to the sequential path cannot fake a pass).
func routeForced(t *testing.T, l *layout.Layout, seed int64, workers int) *Result {
	t.Helper()
	SetWorkers(workers)
	if workers > 1 {
		if got := ResolvedWorkers(len(l.Netlist.Nets)); got < 2 {
			t.Fatalf("fixture too small: %d nets resolve to %d workers", len(l.Netlist.Nets), got)
		}
	}
	res, err := Route(l, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelMatchesSequential is the wave-parallel equivalence gate:
// routing with any worker count must be bit-identical — routes, usage grid,
// wirelength, victims — to the sequential loop, across seeds and fixtures.
// Worker counts also move the speculation batch boundaries, so this doubles
// as the batch-order regression test.
func TestParallelMatchesSequential(t *testing.T) {
	t.Cleanup(func() { SetWorkers(0) })
	fixtures := map[string]*layout.Layout{
		"globalMesh": placedMesh(t, 8, 30, 0.6),
		"localMesh":  placedLocalMesh(t, 8, 60, 40, 160),
	}
	for name, l := range fixtures {
		for _, seed := range []int64{1, 2, 9} {
			want := routeForced(t, l, seed, 1)
			for _, w := range []int{2, 3, 4, 8} {
				got := routeForced(t, l, seed, w)
				sameResults(t, name, got, want)
				if got.Victims != want.Victims {
					t.Errorf("%s seed %d workers %d: victims %d != %d",
						name, seed, w, got.Victims, want.Victims)
				}
			}
		}
	}
}

// TestParallelIndependentOfGOMAXPROCS pins scheduler independence: the same
// forced worker count must produce the same bits whether the runtime runs
// goroutines one at a time or genuinely in parallel.
func TestParallelIndependentOfGOMAXPROCS(t *testing.T) {
	withWorkers(t, 8)
	l := placedLocalMesh(t, 8, 60, 40, 160)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serial, err := Route(l, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	parallel, err := Route(l, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "gomaxprocs", parallel, serial)
}

// TestParallelUnderPressure forces rip-up (wide NDR on a dense mesh) so the
// hashed victim ordering and the wave-parallel reroute of the victim batch
// are both exercised and stay bit-identical to the sequential run.
func TestParallelUnderPressure(t *testing.T) {
	t.Cleanup(func() { SetWorkers(0) })
	l := placedMesh(t, 10, 30, 0.75)
	for i := range l.NDR.Scale {
		l.NDR.Scale[i] = 1.5
	}
	want := routeForced(t, l, 4, 1)
	t.Logf("pressure fixture: victims=%d overflow=%.1f", want.Victims, want.Overflow)
	for _, w := range []int{2, 4} {
		got := routeForced(t, l, 4, w)
		sameResults(t, "pressure", got, want)
		if got.Victims != want.Victims {
			t.Errorf("workers %d: victims %d != %d", w, got.Victims, want.Victims)
		}
	}
}

// TestParallelRouteConcurrentCallers routes the same layout from several
// goroutines at once, each with wave-parallel workers enabled — the
// exploration loop's shape (concurrent arenas, shared geometry) — and
// checks every result. Run under -race this is the router's data-race gate.
func TestParallelRouteConcurrentCallers(t *testing.T) {
	withWorkers(t, 4)
	l := placedLocalMesh(t, 8, 60, 40, 160)
	geo := BuildGeometry(l)
	want, err := RouteWithGeometry(l, Options{Seed: 5}, geo)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RouteWithGeometry(l, Options{Seed: 5}, geo)
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			results[c] = res
		}()
	}
	wg.Wait()
	for c, res := range results {
		if res == nil {
			continue
		}
		_ = c
		sameResults(t, "concurrent", res, want)
	}
}
