// Fuzz target for the GDSII codec, in an external test package so it can
// seed the corpus from a benchmark-style design export (benchdesigns sits
// above gdsii in the import graph).
package gdsii_test

import (
	"bytes"
	"math"
	"testing"

	"gdsiiguard/internal/gdsii"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/verilog"
)

const fuzzToySrc = `
module toy ( in0, in1, clk, out0 );
  input in0, in1, clk ;
  output out0 ;
  wire n1, n2 ;
  INV_X1 u1 ( .A(in0), .ZN(n1) );
  NAND2_X1 u2 ( .A1(n1), .A2(in1), .ZN(n2) );
  DFF_X1 u3 ( .D(n2), .CK(clk), .Q(out0) );
endmodule
`

// designSeed exports a small placed design — the shape of every real
// stream the codec sees in the flow.
func designSeed(f *testing.F) []byte {
	f.Helper()
	lib := opencell45.MustLoad()
	nl, err := verilog.ParseString(fuzzToySrc, lib)
	if err != nil {
		f.Fatal(err)
	}
	nl.Instance("u3").SecurityCritical = true
	l, err := layout.New(nl, 4, 40)
	if err != nil {
		f.Fatal(err)
	}
	for i, name := range []string{"u1", "u2", "u3"} {
		if err := l.Place(nl.Instance(name), i, 5*i); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	wires := []gdsii.Wire{
		{Metal: 1, Width: 70, Pts: []geom.Point{geom.Pt(0, 700), geom.Pt(1000, 700)}},
	}
	if err := gdsii.StreamLayout(&buf, l, gdsii.SliceWires(wires)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// longXYSeed exercises the multi-record XY split path.
func longXYSeed(f *testing.F) []byte {
	f.Helper()
	lib := gdsii.NewLibrary("long")
	s := lib.AddStruct("S")
	pts := make([]geom.Point, 9000)
	for i := range pts {
		pts[i] = geom.Pt(int64(i), int64(i%977))
	}
	s.Elements = append(s.Elements, gdsii.Path{Layer: 11, Width: 70, XY: pts})
	var buf bytes.Buffer
	if err := gdsii.Write(&buf, lib); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// saneUnit reports whether the real8 value survives an encode round trip
// byte-exactly: the excess-64 base-16 exponent only covers ~[1e-77, 1e76],
// and extreme decoded values re-encode lossily. Valid GDSII units are
// around 1e-3/1e-9; the guard is generous.
func saneUnit(f float64) bool {
	if f == 0 {
		return true
	}
	a := math.Abs(f)
	return a >= 1e-30 && a <= 1e30
}

// FuzzGDSIIRead feeds arbitrary bytes to the reader. Inputs the reader
// accepts must re-emit and re-read cleanly, and the emitted stream must be
// a write fixpoint: Write(Read(Write(Read(data)))) == Write(Read(data)).
func FuzzGDSIIRead(f *testing.F) {
	f.Add(designSeed(f))
	f.Add(longXYSeed(f))
	var empty bytes.Buffer
	if err := gdsii.Write(&empty, gdsii.NewLibrary("empty")); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}) // lone HEADER
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := gdsii.Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected: fine
		}
		var w1 bytes.Buffer
		if err := gdsii.Write(&w1, lib); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		lib2, err := gdsii.Read(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of own output: %v", err)
		}
		if !saneUnit(lib.UserUnit) || !saneUnit(lib.MeterUnit) {
			return // extreme units re-encode lossily; fixpoint not expected
		}
		var w2 bytes.Buffer
		if err := gdsii.Write(&w2, lib2); err != nil {
			t.Fatalf("second Write: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write fixpoint violated: first %d bytes, second %d bytes", w1.Len(), w2.Len())
		}
		// Streaming stats must agree with the in-memory view.
		st, name, err := gdsii.StreamStats(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("StreamStats on own output: %v", err)
		}
		ls := lib.Stats()
		if name != lib.Name || st.Structs != ls.Structs || st.Boundaries != ls.Boundaries ||
			st.Paths != ls.Paths || st.SRefs != ls.SRefs || st.Texts != ls.Texts {
			t.Fatalf("StreamStats %+v (name %q) != Library.Stats %+v (name %q)", st, name, ls, lib.Name)
		}
	})
}
