package gdsii

import (
	"fmt"
	"io"
	"sort"

	"gdsiiguard/internal/geom"
)

// Library is a GDSII stream library: named structures holding geometry.
// It is the in-memory view of a stream; SoC-scale flows should prefer the
// streaming reader/writer (see stream.go), which never materialize it.
type Library struct {
	Name string
	// UserUnit is database units per user unit (typically 1e-3: 1 DBU =
	// 0.001 µm). MeterUnit is meters per database unit (typically 1e-9).
	UserUnit  float64
	MeterUnit float64
	Structs   []*Struct

	byName map[string]*Struct
}

// NewLibrary returns an empty library with 1nm database units.
func NewLibrary(name string) *Library {
	return &Library{
		Name:      name,
		UserUnit:  1e-3,
		MeterUnit: 1e-9,
		byName:    make(map[string]*Struct),
	}
}

// AddStruct creates (or returns the existing) structure with the name.
func (l *Library) AddStruct(name string) *Struct {
	if l.byName == nil {
		l.byName = make(map[string]*Struct)
	}
	if s, ok := l.byName[name]; ok {
		return s
	}
	s := &Struct{Name: name}
	l.Structs = append(l.Structs, s)
	l.byName[name] = s
	return s
}

// Struct returns the named structure, or nil.
func (l *Library) Struct(name string) *Struct {
	if l.byName == nil {
		return nil
	}
	return l.byName[name]
}

// Struct is one GDSII structure (a cell).
type Struct struct {
	Name     string
	Elements []Element
}

// Element is any geometry element within a structure.
type Element interface {
	elem()
}

// Boundary is a closed polygon on a layer. XY need not repeat the first
// point; the writer closes the ring.
type Boundary struct {
	Layer    int16
	DataType int16
	XY       []geom.Point
}

func (Boundary) elem() {}

// Path is a wire centerline with a width, on a layer.
type Path struct {
	Layer    int16
	DataType int16
	PathType int16
	Width    int32
	XY       []geom.Point
}

func (Path) elem() {}

// SRef places an instance of another structure.
type SRef struct {
	Name string
	At   geom.Point
}

func (SRef) elem() {}

// Text is a text label.
type Text struct {
	Layer    int16
	TextType int16
	At       geom.Point
	String   string
}

func (Text) elem() {}

// Write emits the library as a GDSII stream. It is a thin adapter over
// StreamWriter; element point lists of any length are legal (long XY
// payloads are split across consecutive XY records).
func Write(w io.Writer, lib *Library) error {
	sw := NewStreamWriter(w)
	if err := sw.BeginLibrary(lib.Name, lib.UserUnit, lib.MeterUnit); err != nil {
		return err
	}
	for _, s := range lib.Structs {
		if err := sw.BeginStruct(s.Name); err != nil {
			return err
		}
		for _, e := range s.Elements {
			if err := sw.Element(e); err != nil {
				return err
			}
		}
		if err := sw.EndStruct(); err != nil {
			return err
		}
	}
	return sw.EndLibrary()
}

// Read parses a GDSII stream into a Library. It is a thin adapter over
// ReadStream; malformed streams — truncation, ENDLIB with an open
// structure, duplicate structure names — are errors, never silent loss.
func Read(r io.Reader) (*Library, error) {
	lib := NewLibrary("")
	var cur *Struct
	err := ReadStream(r, StreamHandler{
		OnLibrary: func(name string, uu, mu float64) error {
			lib.Name, lib.UserUnit, lib.MeterUnit = name, uu, mu
			return nil
		},
		OnBeginStruct: func(name string) error {
			if lib.Struct(name) != nil {
				return fmt.Errorf("gdsii: duplicate structure %q", name)
			}
			cur = lib.AddStruct(name)
			return nil
		},
		OnElement: func(e Element) error {
			cur.Elements = append(cur.Elements, e)
			return nil
		},
		OnEndStruct: func(string) error {
			cur = nil
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return lib, nil
}

// elemBuilder assembles one element from its records.
type elemBuilder struct {
	kind     uint16
	layer    int16
	dataType int16
	textType int16
	pathType int16
	width    int32
	xy       []geom.Point
	sname    string
	str      string
}

func (b *elemBuilder) build() (Element, error) {
	switch b.kind {
	case recBOUNDARY:
		xy := b.xy
		if len(xy) >= 2 && xy[0] == xy[len(xy)-1] {
			xy = xy[:len(xy)-1] // strip closing point
		}
		if len(xy) < 3 {
			return nil, fmt.Errorf("gdsii: boundary with %d points", len(xy))
		}
		return Boundary{Layer: b.layer, DataType: b.dataType, XY: xy}, nil
	case recPATH:
		if len(b.xy) < 2 {
			return nil, fmt.Errorf("gdsii: path with %d points", len(b.xy))
		}
		return Path{Layer: b.layer, DataType: b.dataType, PathType: b.pathType, Width: b.width, XY: b.xy}, nil
	case recSREF:
		if b.sname == "" || len(b.xy) != 1 {
			return nil, fmt.Errorf("gdsii: malformed SREF")
		}
		return SRef{Name: b.sname, At: b.xy[0]}, nil
	case recTEXT:
		if len(b.xy) != 1 {
			return nil, fmt.Errorf("gdsii: malformed TEXT")
		}
		return Text{Layer: b.layer, TextType: b.textType, At: b.xy[0], String: b.str}, nil
	}
	return nil, fmt.Errorf("gdsii: unknown element kind 0x%04x", b.kind)
}

// Stats summarizes a library for reports and inspection tools.
type Stats struct {
	Structs, Boundaries, Paths, SRefs, Texts int
	LayersUsed                               []int16
}

// add folds one element into the stats.
func (s *Stats) add(e Element, layers map[int16]bool) {
	switch el := e.(type) {
	case Boundary:
		s.Boundaries++
		layers[el.Layer] = true
	case Path:
		s.Paths++
		layers[el.Layer] = true
	case SRef:
		s.SRefs++
	case Text:
		s.Texts++
		layers[el.Layer] = true
	}
}

func finishLayers(s *Stats, layers map[int16]bool) {
	for ly := range layers {
		s.LayersUsed = append(s.LayersUsed, ly)
	}
	sort.Slice(s.LayersUsed, func(i, j int) bool { return s.LayersUsed[i] < s.LayersUsed[j] })
}

// Stats computes summary statistics over the library.
func (l *Library) Stats() Stats {
	var s Stats
	layers := map[int16]bool{}
	s.Structs = len(l.Structs)
	for _, st := range l.Structs {
		for _, e := range st.Elements {
			s.add(e, layers)
		}
	}
	finishLayers(&s, layers)
	return s
}

// StreamStats computes the same summary as Library.Stats directly from a
// stream, with O(record) memory — the inspection path for SoC-scale files.
// It also returns the library name.
func StreamStats(r io.Reader) (Stats, string, error) {
	var s Stats
	var name string
	layers := map[int16]bool{}
	err := ReadStream(r, StreamHandler{
		OnLibrary: func(n string, _, _ float64) error {
			name = n
			return nil
		},
		OnBeginStruct: func(string) error {
			s.Structs++
			return nil
		},
		OnElement: func(e Element) error {
			s.add(e, layers)
			return nil
		},
	})
	if err != nil {
		return Stats{}, "", err
	}
	finishLayers(&s, layers)
	return s, name, nil
}
