package gdsii

import (
	"fmt"
	"io"
	"sort"

	"gdsiiguard/internal/geom"
)

// Library is a GDSII stream library: named structures holding geometry.
type Library struct {
	Name string
	// UserUnit is database units per user unit (typically 1e-3: 1 DBU =
	// 0.001 µm). MeterUnit is meters per database unit (typically 1e-9).
	UserUnit  float64
	MeterUnit float64
	Structs   []*Struct

	byName map[string]*Struct
}

// NewLibrary returns an empty library with 1nm database units.
func NewLibrary(name string) *Library {
	return &Library{
		Name:      name,
		UserUnit:  1e-3,
		MeterUnit: 1e-9,
		byName:    make(map[string]*Struct),
	}
}

// AddStruct creates (or returns the existing) structure with the name.
func (l *Library) AddStruct(name string) *Struct {
	if l.byName == nil {
		l.byName = make(map[string]*Struct)
	}
	if s, ok := l.byName[name]; ok {
		return s
	}
	s := &Struct{Name: name}
	l.Structs = append(l.Structs, s)
	l.byName[name] = s
	return s
}

// Struct returns the named structure, or nil.
func (l *Library) Struct(name string) *Struct {
	if l.byName == nil {
		return nil
	}
	return l.byName[name]
}

// Struct is one GDSII structure (a cell).
type Struct struct {
	Name     string
	Elements []Element
}

// Element is any geometry element within a structure.
type Element interface {
	elem()
}

// Boundary is a closed polygon on a layer. XY need not repeat the first
// point; the writer closes the ring.
type Boundary struct {
	Layer    int16
	DataType int16
	XY       []geom.Point
}

func (Boundary) elem() {}

// Path is a wire centerline with a width, on a layer.
type Path struct {
	Layer    int16
	DataType int16
	PathType int16
	Width    int32
	XY       []geom.Point
}

func (Path) elem() {}

// SRef places an instance of another structure.
type SRef struct {
	Name string
	At   geom.Point
}

func (SRef) elem() {}

// Text is a text label.
type Text struct {
	Layer    int16
	TextType int16
	At       geom.Point
	String   string
}

func (Text) elem() {}

// Write emits the library as a GDSII stream.
func Write(w io.Writer, lib *Library) error {
	if err := writeRecord(w, recHEADER, int16Data(600)); err != nil {
		return err
	}
	// Fixed timestamps keep output deterministic.
	ts := int16Data(2023, 1, 1, 0, 0, 0, 2023, 1, 1, 0, 0, 0)
	if err := writeRecord(w, recBGNLIB, ts); err != nil {
		return err
	}
	if err := writeRecord(w, recLIBNAME, stringData(lib.Name)); err != nil {
		return err
	}
	units := append(encodeReal8(lib.UserUnit), encodeReal8(lib.MeterUnit)...)
	if err := writeRecord(w, recUNITS, units); err != nil {
		return err
	}
	for _, s := range lib.Structs {
		if err := writeStruct(w, s, ts); err != nil {
			return err
		}
	}
	return writeRecord(w, recENDLIB, nil)
}

func writeStruct(w io.Writer, s *Struct, ts []byte) error {
	if err := writeRecord(w, recBGNSTR, ts); err != nil {
		return err
	}
	if err := writeRecord(w, recSTRNAME, stringData(s.Name)); err != nil {
		return err
	}
	for _, e := range s.Elements {
		if err := writeElement(w, e); err != nil {
			return err
		}
	}
	return writeRecord(w, recENDSTR, nil)
}

func writeElement(w io.Writer, e Element) error {
	emitXY := func(pts []geom.Point) error {
		vals := make([]int32, 0, 2*len(pts))
		for _, p := range pts {
			vals = append(vals, int32(p.X), int32(p.Y))
		}
		return writeRecord(w, recXY, int32Data(vals...))
	}
	switch el := e.(type) {
	case Boundary:
		if len(el.XY) < 3 {
			return fmt.Errorf("gdsii: boundary with %d points", len(el.XY))
		}
		if err := writeRecord(w, recBOUNDARY, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recLAYER, int16Data(el.Layer)); err != nil {
			return err
		}
		if err := writeRecord(w, recDATATYPE, int16Data(el.DataType)); err != nil {
			return err
		}
		ring := el.XY
		if ring[0] != ring[len(ring)-1] {
			ring = append(append([]geom.Point(nil), ring...), ring[0])
		}
		if err := emitXY(ring); err != nil {
			return err
		}
	case Path:
		if len(el.XY) < 2 {
			return fmt.Errorf("gdsii: path with %d points", len(el.XY))
		}
		if err := writeRecord(w, recPATH, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recLAYER, int16Data(el.Layer)); err != nil {
			return err
		}
		if err := writeRecord(w, recDATATYPE, int16Data(el.DataType)); err != nil {
			return err
		}
		if err := writeRecord(w, recPATHTYPE, int16Data(el.PathType)); err != nil {
			return err
		}
		if err := writeRecord(w, recWIDTH, int32Data(el.Width)); err != nil {
			return err
		}
		if err := emitXY(el.XY); err != nil {
			return err
		}
	case SRef:
		if err := writeRecord(w, recSREF, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recSNAME, stringData(el.Name)); err != nil {
			return err
		}
		if err := emitXY([]geom.Point{el.At}); err != nil {
			return err
		}
	case Text:
		if err := writeRecord(w, recTEXT, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recLAYER, int16Data(el.Layer)); err != nil {
			return err
		}
		if err := writeRecord(w, recTEXTTYPE, int16Data(el.TextType)); err != nil {
			return err
		}
		if err := emitXY([]geom.Point{el.At}); err != nil {
			return err
		}
		if err := writeRecord(w, recSTRING, stringData(el.String)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("gdsii: unknown element %T", e)
	}
	return writeRecord(w, recENDEL, nil)
}

// Read parses a GDSII stream into a Library.
func Read(r io.Reader) (*Library, error) {
	lib := NewLibrary("")
	var cur *Struct
	var el *elemBuilder
	sawHeader := false
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return nil, fmt.Errorf("gdsii: missing ENDLIB")
		}
		if err != nil {
			return nil, err
		}
		switch rec.Type {
		case recHEADER:
			sawHeader = true
		case recBGNLIB, recBGNSTR:
			if rec.Type == recBGNSTR {
				cur = &Struct{}
			}
		case recLIBNAME:
			lib.Name = decodeString(rec.Data)
		case recUNITS:
			if len(rec.Data) < 16 {
				return nil, fmt.Errorf("gdsii: short UNITS record")
			}
			uu, err := decodeReal8(rec.Data[0:8])
			if err != nil {
				return nil, err
			}
			mu, err := decodeReal8(rec.Data[8:16])
			if err != nil {
				return nil, err
			}
			lib.UserUnit, lib.MeterUnit = uu, mu
		case recSTRNAME:
			if cur == nil {
				return nil, fmt.Errorf("gdsii: STRNAME outside structure")
			}
			cur.Name = decodeString(rec.Data)
		case recENDSTR:
			if cur == nil {
				return nil, fmt.Errorf("gdsii: ENDSTR outside structure")
			}
			s := lib.AddStruct(cur.Name)
			s.Elements = cur.Elements
			cur = nil
		case recBOUNDARY, recPATH, recSREF, recTEXT:
			if cur == nil {
				return nil, fmt.Errorf("gdsii: element outside structure")
			}
			el = &elemBuilder{kind: rec.Type}
		case recLAYER:
			v, err := decodeInt16(rec.Data)
			if err != nil {
				return nil, err
			}
			if el != nil {
				el.layer = v
			}
		case recDATATYPE:
			v, err := decodeInt16(rec.Data)
			if err != nil {
				return nil, err
			}
			if el != nil {
				el.dataType = v
			}
		case recTEXTTYPE:
			v, err := decodeInt16(rec.Data)
			if err != nil {
				return nil, err
			}
			if el != nil {
				el.textType = v
			}
		case recPATHTYPE:
			v, err := decodeInt16(rec.Data)
			if err != nil {
				return nil, err
			}
			if el != nil {
				el.pathType = v
			}
		case recWIDTH:
			vals, err := decodeInt32s(rec.Data)
			if err != nil {
				return nil, err
			}
			if el != nil && len(vals) > 0 {
				el.width = vals[0]
			}
		case recXY:
			vals, err := decodeInt32s(rec.Data)
			if err != nil {
				return nil, err
			}
			if len(vals)%2 != 0 {
				return nil, fmt.Errorf("gdsii: odd XY coordinate count")
			}
			if el != nil {
				for i := 0; i < len(vals); i += 2 {
					el.xy = append(el.xy, geom.Pt(int64(vals[i]), int64(vals[i+1])))
				}
			}
		case recSNAME:
			if el != nil {
				el.sname = decodeString(rec.Data)
			}
		case recSTRING:
			if el != nil {
				el.str = decodeString(rec.Data)
			}
		case recSTRANS, recPRESENTATION:
			// orientation/presentation flags: accepted, not modeled
		case recENDEL:
			if cur == nil || el == nil {
				return nil, fmt.Errorf("gdsii: ENDEL without element")
			}
			built, err := el.build()
			if err != nil {
				return nil, err
			}
			cur.Elements = append(cur.Elements, built)
			el = nil
		case recENDLIB:
			if !sawHeader {
				return nil, fmt.Errorf("gdsii: missing HEADER")
			}
			return lib, nil
		default:
			// Unknown records are legal to skip per the format.
		}
	}
}

type elemBuilder struct {
	kind     uint16
	layer    int16
	dataType int16
	textType int16
	pathType int16
	width    int32
	xy       []geom.Point
	sname    string
	str      string
}

func (b *elemBuilder) build() (Element, error) {
	switch b.kind {
	case recBOUNDARY:
		xy := b.xy
		if len(xy) >= 2 && xy[0] == xy[len(xy)-1] {
			xy = xy[:len(xy)-1] // strip closing point
		}
		if len(xy) < 3 {
			return nil, fmt.Errorf("gdsii: boundary with %d points", len(xy))
		}
		return Boundary{Layer: b.layer, DataType: b.dataType, XY: xy}, nil
	case recPATH:
		if len(b.xy) < 2 {
			return nil, fmt.Errorf("gdsii: path with %d points", len(b.xy))
		}
		return Path{Layer: b.layer, DataType: b.dataType, PathType: b.pathType, Width: b.width, XY: b.xy}, nil
	case recSREF:
		if b.sname == "" || len(b.xy) != 1 {
			return nil, fmt.Errorf("gdsii: malformed SREF")
		}
		return SRef{Name: b.sname, At: b.xy[0]}, nil
	case recTEXT:
		if len(b.xy) != 1 {
			return nil, fmt.Errorf("gdsii: malformed TEXT")
		}
		return Text{Layer: b.layer, TextType: b.textType, At: b.xy[0], String: b.str}, nil
	}
	return nil, fmt.Errorf("gdsii: unknown element kind 0x%04x", b.kind)
}

// Stats summarizes a library for reports and inspection tools.
type Stats struct {
	Structs, Boundaries, Paths, SRefs, Texts int
	LayersUsed                               []int16
}

// Stats computes summary statistics over the library.
func (l *Library) Stats() Stats {
	var s Stats
	layers := map[int16]bool{}
	s.Structs = len(l.Structs)
	for _, st := range l.Structs {
		for _, e := range st.Elements {
			switch el := e.(type) {
			case Boundary:
				s.Boundaries++
				layers[el.Layer] = true
			case Path:
				s.Paths++
				layers[el.Layer] = true
			case SRef:
				s.SRefs++
			case Text:
				s.Texts++
				layers[el.Layer] = true
			}
		}
	}
	for ly := range layers {
		s.LayersUsed = append(s.LayersUsed, ly)
	}
	sort.Slice(s.LayersUsed, func(i, j int) bool { return s.LayersUsed[i] < s.LayersUsed[j] })
	return s
}
