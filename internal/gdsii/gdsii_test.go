package gdsii

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gdsiiguard/internal/geom"
)

func sampleLib() *Library {
	lib := NewLibrary("testlib")
	inv := lib.AddStruct("INV_X1")
	inv.Elements = append(inv.Elements, Boundary{
		Layer: 1,
		XY:    []geom.Point{geom.Pt(0, 0), geom.Pt(380, 0), geom.Pt(380, 1400), geom.Pt(0, 1400)},
	})
	top := lib.AddStruct("top")
	top.Elements = append(top.Elements,
		SRef{Name: "INV_X1", At: geom.Pt(1900, 2800)},
		SRef{Name: "INV_X1", At: geom.Pt(3800, 0)},
		Path{Layer: 11, Width: 70, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 0), geom.Pt(1000, 900)}},
		Text{Layer: 63, At: geom.Pt(5, 5), String: "key_reg[0]"},
	)
	return lib
}

func TestRoundTrip(t *testing.T) {
	lib := sampleLib()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != "testlib" {
		t.Errorf("Name = %q", got.Name)
	}
	if got.UserUnit != lib.UserUnit || got.MeterUnit != lib.MeterUnit {
		t.Errorf("units = %g/%g, want %g/%g", got.UserUnit, got.MeterUnit, lib.UserUnit, lib.MeterUnit)
	}
	if len(got.Structs) != 2 {
		t.Fatalf("structs = %d", len(got.Structs))
	}
	inv := got.Struct("INV_X1")
	if inv == nil || len(inv.Elements) != 1 {
		t.Fatalf("INV_X1 = %+v", inv)
	}
	b, ok := inv.Elements[0].(Boundary)
	if !ok || b.Layer != 1 || len(b.XY) != 4 {
		t.Errorf("boundary = %+v", inv.Elements[0])
	}
	top := got.Struct("top")
	if len(top.Elements) != 4 {
		t.Fatalf("top elements = %d", len(top.Elements))
	}
	if s, ok := top.Elements[0].(SRef); !ok || s.Name != "INV_X1" || s.At != geom.Pt(1900, 2800) {
		t.Errorf("sref = %+v", top.Elements[0])
	}
	if p, ok := top.Elements[2].(Path); !ok || p.Layer != 11 || p.Width != 70 || len(p.XY) != 3 {
		t.Errorf("path = %+v", top.Elements[2])
	}
	if txt, ok := top.Elements[3].(Text); !ok || txt.String != "key_reg[0]" {
		t.Errorf("text = %+v", top.Elements[3])
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, sampleLib()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, sampleLib()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("output not deterministic")
	}
}

func TestReal8Codec(t *testing.T) {
	cases := []float64{0, 1, -1, 1e-3, 1e-9, 0.5, 1024, -3.14159, 1e-6, 2e-2}
	for _, f := range cases {
		got, err := decodeReal8(encodeReal8(f))
		if err != nil {
			t.Fatalf("decode(%g): %v", f, err)
		}
		if f == 0 {
			if got != 0 {
				t.Errorf("0 -> %g", got)
			}
			continue
		}
		if rel := math.Abs(got-f) / math.Abs(f); rel > 1e-12 {
			t.Errorf("real8(%g) = %g (rel err %g)", f, got, rel)
		}
	}
}

func TestQuickReal8(t *testing.T) {
	f := func(mant int32, exp int8) bool {
		v := float64(mant) * math.Pow(2, float64(exp)/8)
		got, err := decodeReal8(encodeReal8(v))
		if err != nil {
			return false
		}
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v)/math.Abs(v) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadErrors(t *testing.T) {
	// Truncated stream.
	var buf bytes.Buffer
	if err := Write(&buf, sampleLib()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := Read(bytes.NewReader(data[:7])); err == nil {
		t.Error("mid-record truncation accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Garbage header size.
	if _, err := Read(bytes.NewReader([]byte{0, 2, 0, 2})); err == nil {
		t.Error("impossible record size accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	lib := NewLibrary("bad")
	s := lib.AddStruct("s")
	s.Elements = append(s.Elements, Boundary{Layer: 1, XY: []geom.Point{geom.Pt(0, 0)}})
	var buf bytes.Buffer
	if err := Write(&buf, lib); err == nil {
		t.Error("degenerate boundary accepted")
	}
	lib2 := NewLibrary("bad2")
	s2 := lib2.AddStruct("s")
	s2.Elements = append(s2.Elements, Path{Layer: 1, XY: []geom.Point{geom.Pt(0, 0)}})
	buf.Reset()
	if err := Write(&buf, lib2); err == nil {
		t.Error("single-point path accepted")
	}
}

func TestAddStructDedup(t *testing.T) {
	lib := NewLibrary("x")
	a := lib.AddStruct("s")
	b := lib.AddStruct("s")
	if a != b {
		t.Error("AddStruct created duplicate")
	}
	if len(lib.Structs) != 1 {
		t.Errorf("structs = %d", len(lib.Structs))
	}
	if lib.Struct("nope") != nil {
		t.Error("missing struct should be nil")
	}
}

func TestStats(t *testing.T) {
	s := sampleLib().Stats()
	if s.Structs != 2 || s.Boundaries != 1 || s.Paths != 1 || s.SRefs != 2 || s.Texts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if len(s.LayersUsed) != 3 { // 1, 11, 63
		t.Errorf("layers = %v", s.LayersUsed)
	}
}

func TestBoundaryClosureStripped(t *testing.T) {
	// A boundary written with explicit closure reads back unclosed.
	lib := sampleLib()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := got.Struct("INV_X1").Elements[0].(Boundary)
	if b.XY[0] == b.XY[len(b.XY)-1] {
		t.Error("closing point not stripped on read")
	}
}
