package gdsii

import (
	"fmt"
	"io"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// GDSII layer assignments for exported layouts. Cell outlines go on the
// outline layer of their masters' structures; routed wires go on
// WireLayerBase+metalIndex; annotations use the label layer.
const (
	OutlineLayer  = 1
	WireLayerBase = 10 // metal i => GDS layer WireLayerBase + i
	LabelLayer    = 63
	DieLayer      = 235
)

// Wire is one routed net segment to export: a centerline polyline on a
// metal layer (1-based index) with a width in DBU.
type Wire struct {
	Metal int
	Width int64
	Pts   []geom.Point
}

// WireSource streams routed wires to the exporter one at a time, so a
// SoC-scale route never has to be materialized as a []Wire. It must call
// emit once per wire and propagate emit's error.
type WireSource func(emit func(Wire) error) error

// SliceWires adapts an in-memory wire list to a WireSource.
func SliceWires(ws []Wire) WireSource {
	return func(emit func(Wire) error) error {
		for _, w := range ws {
			if err := emit(w); err != nil {
				return err
			}
		}
		return nil
	}
}

// masterSink receives the per-master outline structures of a layout export.
type masterSink func(name string, outline Boundary) error

// emitMasters sends one outline structure per used master cell, in first-use
// (instance) order for deterministic output.
func emitMasters(l *layout.Layout, sink masterSink) error {
	techLib := l.Lib()
	used := map[string]bool{}
	for _, in := range l.Netlist.Insts {
		if !l.PlacementOf(in).Placed || used[in.Master.Name] {
			continue
		}
		used[in.Master.Name] = true
		w := int64(in.Master.WidthSites) * techLib.Site.Width
		h := techLib.Site.Height
		outline := Boundary{
			Layer: OutlineLayer,
			XY:    []geom.Point{geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, h), geom.Pt(0, h)},
		}
		if err := sink(in.Master.Name, outline); err != nil {
			return err
		}
	}
	return nil
}

// dieBoundary returns the die-outline boundary of the layout.
func dieBoundary(l *layout.Layout) Boundary {
	core := l.CoreRect()
	return Boundary{
		Layer: DieLayer,
		XY: []geom.Point{
			core.Lo, geom.Pt(core.Hi.X, core.Lo.Y), core.Hi, geom.Pt(core.Lo.X, core.Hi.Y),
		},
	}
}

// wireElement converts one routed wire to its Path element.
func wireElement(w Wire) (Path, error) {
	if len(w.Pts) < 2 {
		return Path{}, fmt.Errorf("gdsii: wire on metal%d with %d points", w.Metal, len(w.Pts))
	}
	return Path{
		Layer: int16(WireLayerBase + w.Metal),
		Width: int32(w.Width),
		XY:    w.Pts,
	}, nil
}

// FromLayout converts a placed layout (plus optional routed wires) into an
// in-memory GDSII library: one structure per used master cell holding its
// outline boundary, and a top structure with the die outline, one SRef per
// placed instance, a name label per security-critical instance, and one
// Path per wire segment. For SoC-scale layouts prefer StreamLayout, which
// writes the identical stream without materializing the library.
func FromLayout(l *layout.Layout, wires []Wire) (*Library, error) {
	lib := NewLibrary(l.Netlist.Name)
	err := emitMasters(l, func(name string, outline Boundary) error {
		s := lib.AddStruct(name)
		s.Elements = append(s.Elements, outline)
		return nil
	})
	if err != nil {
		return nil, err
	}
	top := lib.AddStruct(l.Netlist.Name)
	top.Elements = append(top.Elements, dieBoundary(l))
	for _, in := range l.Netlist.Insts {
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		at := l.SiteDBU(p.Row, p.Site)
		top.Elements = append(top.Elements, SRef{Name: in.Master.Name, At: at})
		if in.SecurityCritical {
			top.Elements = append(top.Elements, Text{
				Layer: LabelLayer, At: at, String: in.Name,
			})
		}
	}
	for _, w := range wires {
		p, err := wireElement(w)
		if err != nil {
			return nil, err
		}
		top.Elements = append(top.Elements, p)
	}
	return lib, nil
}

// StreamLayout writes a placed layout (plus streamed routed wires) as a
// GDSII stream with O(record) memory: elements are emitted as they are
// produced and the library is never materialized. The stream is byte-for-
// byte identical to Write(FromLayout(...)) for the same inputs. wires may
// be nil.
func StreamLayout(w io.Writer, l *layout.Layout, wires WireSource) error {
	sw := NewStreamWriter(w)
	if err := sw.BeginLibrary(l.Netlist.Name, 1e-3, 1e-9); err != nil {
		return err
	}
	err := emitMasters(l, func(name string, outline Boundary) error {
		if err := sw.BeginStruct(name); err != nil {
			return err
		}
		if err := sw.Element(outline); err != nil {
			return err
		}
		return sw.EndStruct()
	})
	if err != nil {
		return err
	}
	if err := sw.BeginStruct(l.Netlist.Name); err != nil {
		return err
	}
	if err := sw.Element(dieBoundary(l)); err != nil {
		return err
	}
	for _, in := range l.Netlist.Insts {
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		at := l.SiteDBU(p.Row, p.Site)
		if err := sw.Element(SRef{Name: in.Master.Name, At: at}); err != nil {
			return err
		}
		if in.SecurityCritical {
			if err := sw.Element(Text{Layer: LabelLayer, At: at, String: in.Name}); err != nil {
				return err
			}
		}
	}
	if wires != nil {
		err := wires(func(wi Wire) error {
			p, err := wireElement(wi)
			if err != nil {
				return err
			}
			return sw.Element(p)
		})
		if err != nil {
			return err
		}
	}
	if err := sw.EndStruct(); err != nil {
		return err
	}
	return sw.EndLibrary()
}

// TileGrid describes a uniform tile hierarchy over the core in site
// coordinates: tiles are TileRows × TileSites site-rectangles anchored at
// the core origin. SoC-scale generated designs carry their stamping grid
// here so the export preserves the hierarchy as SREFs.
type TileGrid struct {
	TileRows, TileSites int
	// NamePrefix names the tile structures (default "TILE"); tile (r,c)
	// becomes NamePrefix_r_c.
	NamePrefix string
}

// StreamLayoutTiles writes the layout as a hierarchical GDSII stream: one
// structure per used master, one structure per non-empty tile of the grid
// holding its cells' SRefs in tile-local coordinates, and a top structure
// SRef-ing each tile at its origin (plus the die outline, critical-asset
// labels in absolute coordinates, and wires). Peak memory is O(record)
// plus one instance-id bucket list for the tile partition.
func StreamLayoutTiles(w io.Writer, l *layout.Layout, wires WireSource, grid TileGrid) error {
	if grid.TileRows <= 0 || grid.TileSites <= 0 {
		return fmt.Errorf("gdsii: non-positive tile grid %dx%d", grid.TileRows, grid.TileSites)
	}
	prefix := grid.NamePrefix
	if prefix == "" {
		prefix = "TILE"
	}
	tilesY := (l.NumRows + grid.TileRows - 1) / grid.TileRows
	tilesX := (l.SitesPerRow + grid.TileSites - 1) / grid.TileSites

	// Partition placed instances by tile (the only O(instances) state).
	buckets := make([][]int32, tilesY*tilesX)
	for _, in := range l.Netlist.Insts {
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		t := (p.Row/grid.TileRows)*tilesX + p.Site/grid.TileSites
		buckets[t] = append(buckets[t], int32(in.ID))
	}

	sw := NewStreamWriter(w)
	if err := sw.BeginLibrary(l.Netlist.Name, 1e-3, 1e-9); err != nil {
		return err
	}
	err := emitMasters(l, func(name string, outline Boundary) error {
		if err := sw.BeginStruct(name); err != nil {
			return err
		}
		if err := sw.Element(outline); err != nil {
			return err
		}
		return sw.EndStruct()
	})
	if err != nil {
		return err
	}
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			ids := buckets[ty*tilesX+tx]
			if len(ids) == 0 {
				continue
			}
			origin := l.SiteDBU(ty*grid.TileRows, tx*grid.TileSites)
			if err := sw.BeginStruct(fmt.Sprintf("%s_%d_%d", prefix, ty, tx)); err != nil {
				return err
			}
			for _, id := range ids {
				in := l.Netlist.Insts[id]
				p := l.PlacementOf(in)
				at := l.SiteDBU(p.Row, p.Site)
				local := geom.Pt(at.X-origin.X, at.Y-origin.Y)
				if err := sw.Element(SRef{Name: in.Master.Name, At: local}); err != nil {
					return err
				}
			}
			if err := sw.EndStruct(); err != nil {
				return err
			}
		}
	}
	if err := sw.BeginStruct(l.Netlist.Name); err != nil {
		return err
	}
	if err := sw.Element(dieBoundary(l)); err != nil {
		return err
	}
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			if len(buckets[ty*tilesX+tx]) == 0 {
				continue
			}
			name := fmt.Sprintf("%s_%d_%d", prefix, ty, tx)
			at := l.SiteDBU(ty*grid.TileRows, tx*grid.TileSites)
			if err := sw.Element(SRef{Name: name, At: at}); err != nil {
				return err
			}
		}
	}
	for _, in := range l.Netlist.Insts {
		if !in.SecurityCritical {
			continue
		}
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		at := l.SiteDBU(p.Row, p.Site)
		if err := sw.Element(Text{Layer: LabelLayer, At: at, String: in.Name}); err != nil {
			return err
		}
	}
	if wires != nil {
		err := wires(func(wi Wire) error {
			p, err := wireElement(wi)
			if err != nil {
				return err
			}
			return sw.Element(p)
		})
		if err != nil {
			return err
		}
	}
	if err := sw.EndStruct(); err != nil {
		return err
	}
	return sw.EndLibrary()
}
