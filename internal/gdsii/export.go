package gdsii

import (
	"fmt"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
)

// GDSII layer assignments for exported layouts. Cell outlines go on the
// outline layer of their masters' structures; routed wires go on
// WireLayerBase+metalIndex; annotations use the label layer.
const (
	OutlineLayer  = 1
	WireLayerBase = 10 // metal i => GDS layer WireLayerBase + i
	LabelLayer    = 63
	DieLayer      = 235
)

// Wire is one routed net segment to export: a centerline polyline on a
// metal layer (1-based index) with a width in DBU.
type Wire struct {
	Metal int
	Width int64
	Pts   []geom.Point
}

// FromLayout converts a placed layout (plus optional routed wires) into a
// GDSII library: one structure per used master cell holding its outline
// boundary, and a top structure with the die outline, one SRef per placed
// instance, a name label per security-critical instance, and one Path per
// wire segment.
func FromLayout(l *layout.Layout, wires []Wire) (*Library, error) {
	lib := NewLibrary(l.Netlist.Name)
	techLib := l.Lib()

	// Master structures for every used cell type.
	used := map[string]bool{}
	for _, in := range l.Netlist.Insts {
		if !l.PlacementOf(in).Placed || used[in.Master.Name] {
			continue
		}
		used[in.Master.Name] = true
		s := lib.AddStruct(in.Master.Name)
		w := int64(in.Master.WidthSites) * techLib.Site.Width
		h := techLib.Site.Height
		s.Elements = append(s.Elements, Boundary{
			Layer: OutlineLayer,
			XY:    []geom.Point{geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, h), geom.Pt(0, h)},
		})
	}

	top := lib.AddStruct(l.Netlist.Name)
	core := l.CoreRect()
	top.Elements = append(top.Elements, Boundary{
		Layer: DieLayer,
		XY: []geom.Point{
			core.Lo, geom.Pt(core.Hi.X, core.Lo.Y), core.Hi, geom.Pt(core.Lo.X, core.Hi.Y),
		},
	})
	for _, in := range l.Netlist.Insts {
		p := l.PlacementOf(in)
		if !p.Placed {
			continue
		}
		at := l.SiteDBU(p.Row, p.Site)
		top.Elements = append(top.Elements, SRef{Name: in.Master.Name, At: at})
		if in.SecurityCritical {
			top.Elements = append(top.Elements, Text{
				Layer: LabelLayer, At: at, String: in.Name,
			})
		}
	}
	for _, w := range wires {
		if len(w.Pts) < 2 {
			return nil, fmt.Errorf("gdsii: wire on metal%d with %d points", w.Metal, len(w.Pts))
		}
		top.Elements = append(top.Elements, Path{
			Layer: int16(WireLayerBase + w.Metal),
			Width: int32(w.Width),
			XY:    w.Pts,
		})
	}
	return lib, nil
}
