package gdsii

import (
	"bytes"
	"testing"

	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/verilog"
)

const toySrc = `
module toy ( in0, in1, clk, out0 );
  input in0, in1, clk ;
  output out0 ;
  wire n1, n2 ;
  INV_X1 u1 ( .A(in0), .ZN(n1) );
  NAND2_X1 u2 ( .A1(n1), .A2(in1), .ZN(n2) );
  DFF_X1 u3 ( .D(n2), .CK(clk), .Q(out0) );
endmodule
`

func exportToy(t *testing.T) (*layout.Layout, *Library) {
	t.Helper()
	lib := opencell45.MustLoad()
	nl, err := verilog.ParseString(toySrc, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl.Instance("u3").SecurityCritical = true
	l, _ := layout.New(nl, 4, 40)
	_ = l.Place(nl.Instance("u1"), 0, 0)
	_ = l.Place(nl.Instance("u2"), 1, 5)
	_ = l.Place(nl.Instance("u3"), 2, 10)
	wires := []Wire{
		{Metal: 1, Width: 70, Pts: []geom.Point{geom.Pt(0, 700), geom.Pt(1000, 700)}},
		{Metal: 2, Width: 70, Pts: []geom.Point{geom.Pt(1000, 700), geom.Pt(1000, 2100)}},
	}
	g, err := FromLayout(l, wires)
	if err != nil {
		t.Fatal(err)
	}
	return l, g
}

func TestFromLayoutStructure(t *testing.T) {
	_, g := exportToy(t)
	// One struct per used master + top.
	for _, name := range []string{"INV_X1", "NAND2_X1", "DFF_X1", "toy"} {
		if g.Struct(name) == nil {
			t.Errorf("struct %s missing", name)
		}
	}
	top := g.Struct("toy")
	stats := g.Stats()
	if stats.SRefs != 3 {
		t.Errorf("SRefs = %d, want 3", stats.SRefs)
	}
	if stats.Paths != 2 {
		t.Errorf("Paths = %d, want 2", stats.Paths)
	}
	// Critical-cell label present.
	foundLabel := false
	for _, e := range top.Elements {
		if txt, ok := e.(Text); ok && txt.String == "u3" {
			foundLabel = true
		}
	}
	if !foundLabel {
		t.Error("security-critical label missing")
	}
}

func TestFromLayoutSRefPositions(t *testing.T) {
	l, g := exportToy(t)
	top := g.Struct("toy")
	wantU1 := l.SiteDBU(0, 0)
	found := false
	for _, e := range top.Elements {
		if s, ok := e.(SRef); ok && s.Name == "INV_X1" && s.At == wantU1 {
			found = true
		}
	}
	if !found {
		t.Errorf("u1 SRef at %v missing", wantU1)
	}
}

func TestFromLayoutRoundTripsThroughBinary(t *testing.T) {
	_, g := exportToy(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	gs, rs := g.Stats(), got.Stats()
	if gs.Structs != rs.Structs || gs.Boundaries != rs.Boundaries ||
		gs.Paths != rs.Paths || gs.SRefs != rs.SRefs || gs.Texts != rs.Texts ||
		len(gs.LayersUsed) != len(rs.LayersUsed) {
		t.Errorf("stats changed: %+v vs %+v", rs, gs)
	}
}

func TestFromLayoutRejectsBadWire(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, _ := verilog.ParseString(toySrc, lib)
	l, _ := layout.New(nl, 4, 40)
	_, err := FromLayout(l, []Wire{{Metal: 1, Width: 70, Pts: []geom.Point{geom.Pt(0, 0)}}})
	if err == nil {
		t.Error("single-point wire accepted")
	}
}

func TestFromLayoutSkipsUnplaced(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, _ := verilog.ParseString(toySrc, lib)
	l, _ := layout.New(nl, 4, 40)
	_ = l.Place(nl.Instance("u1"), 0, 0)
	g, err := FromLayout(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().SRefs != 1 {
		t.Errorf("SRefs = %d, want 1 (u2/u3 unplaced)", g.Stats().SRefs)
	}
	if g.Struct("NAND2_X1") != nil {
		t.Error("master struct created for unplaced-only cell type")
	}
}
